// Package telemetry is the run-observability substrate of the simulation
// engine: periodic time-series snapshots of a run's cumulative signalling
// counters (Frame), fixed-bucket latency histograms with deterministic
// merge (Hist), and live per-shard progress counters safe to poll from
// another goroutine while a sharded run is in flight (Progress).
//
// Determinism contract: every aggregate a merged Frame exposes is either
// an exact integer sum (order-independent by construction) or a Welford
// accumulator folded over per-terminal states in global terminal-id order
// — the same reduction order sim.Metrics uses — so the merged snapshot
// series of a seeded run is bit-identical for every shard count,
// property-tested alongside the engine's metrics invariance.
package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config switches the telemetry subsystem on for a run. The zero value
// records nothing beyond the final metrics.
type Config struct {
	// SnapshotEvery is the snapshot cadence in slots: every SnapshotEvery
	// completed slots each shard captures a ShardFrame, and one final
	// frame is always captured when the run drains. 0 disables snapshots.
	// Snapshots take no RNG draws and schedule no events, so they never
	// perturb the simulation. Each shard frame transiently holds a copy
	// of the shard's per-terminal accumulator states (needed for the
	// id-order fold), so the cadence should stay modest for very large
	// populations.
	SnapshotEvery int64
	// Progress, when non-nil, receives live per-shard progress updates
	// (current slot, terminal-slots of work completed, events processed)
	// over atomic counters; poll Progress.Snapshot from another goroutine
	// (e.g. an expvar handler) while the run is in flight. Update
	// granularity is engine-dependent: the reference engine publishes
	// after every slot, the fast engine once per slot batch (the
	// telemetry cadence, or the whole run when SnapshotEvery is zero),
	// and the columnar engine additionally publishes work/events after
	// every finished cohort inside a batch. All engines agree at every
	// batch boundary, so polled values are always a prefix of the same
	// trajectory.
	Progress *Progress
}

// Counters is the cumulative-counter section shared by snapshot frames:
// the signalling operations and fault/recovery activity observed since
// the start of the run.
type Counters struct {
	// Updates counts location-update transmission attempts (first sends
	// and retransmissions alike); LostUpdates the attempts dropped by the
	// injected uplink loss; Retransmissions the attempts triggered by ack
	// timeouts.
	Updates         int64 `json:"updates"`
	LostUpdates     int64 `json:"lost_updates"`
	Retransmissions int64 `json:"retransmissions"`
	// Calls, PolledCells, DroppedCalls and RePolls count the paging side:
	// incoming calls, per-cell polls broadcast, calls abandoned after the
	// retry budget, and recovery re-poll rounds.
	Calls        int64 `json:"calls"`
	PolledCells  int64 `json:"polled_cells"`
	DroppedCalls int64 `json:"dropped_calls"`
	RePolls      int64 `json:"re_polls"`
	// Events counts scheduler events dispatched (slot sweeps counted once
	// in a merged frame, matching the sim.Metrics convention).
	Events uint64 `json:"events"`
}

// add folds o's counters into c by plain summation.
func (c *Counters) add(o Counters) {
	c.Updates += o.Updates
	c.LostUpdates += o.LostUpdates
	c.Retransmissions += o.Retransmissions
	c.Calls += o.Calls
	c.PolledCells += o.PolledCells
	c.DroppedCalls += o.DroppedCalls
	c.RePolls += o.RePolls
	c.Events += o.Events
}

// Summary is a JSON-able view of a Welford accumulator: sample count,
// mean, standard deviation and exact extrema (all zero when N is 0).
type Summary struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize extracts a Summary from an accumulator.
func Summarize(a *stats.Accumulator) Summary {
	return Summary{N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(), Min: a.Min(), Max: a.Max()}
}

// Frame is one merged snapshot of a run at a slot boundary: cumulative
// counters, the per-slot per-terminal cost averages up to that boundary,
// and summaries of the delay and recovery-latency accumulators.
type Frame struct {
	// Slot is the number of completed slots this frame covers. The final
	// frame of a run has Slot equal to the run length and additionally
	// reflects any events drained after the last slot (late
	// retransmission timers).
	Slot int64 `json:"slot"`
	Counters
	// UpdateCost, PagingCost and TotalCost are per-slot per-terminal
	// averages over the first Slot slots, in the paper's U/V units.
	UpdateCost float64 `json:"update_cost"`
	PagingCost float64 `json:"paging_cost"`
	TotalCost  float64 `json:"total_cost"`
	// Delay summarizes the per-call paging delay (polling cycles) and
	// Recovery the HLR desync→recovery latency (slots), both folded over
	// per-terminal accumulators in global id order.
	Delay    Summary `json:"delay"`
	Recovery Summary `json:"recovery"`
}

// ShardFrame is one shard's snapshot at a slot boundary: its share of the
// counters plus a copy of its per-terminal delay/recovery accumulator
// states, which MergeFrames re-folds in global id order. The per-terminal
// copies exist only until the merge; the merged Frame keeps summaries.
type ShardFrame struct {
	// Slot is the boundary (completed slots) this frame captures.
	Slot int64
	// First is the global id of the shard's first terminal; shard frames
	// are folded in ascending First order.
	First int
	// Counters carries only this shard's share; Events counts sub-slot
	// events only (the merge adds the slot sweeps back once).
	Counters
	// Delay and Recovery hold the shard's per-terminal accumulator states
	// in ascending global id order.
	Delay, Recovery []stats.Accumulator
}

// MergeFrames folds per-shard snapshot series into the global series.
// All shards of a run capture frames at the same slot boundaries, so the
// series must be equally long and aligned; anything else is an engine bug
// and panics. Counters merge by exact integer sums, costs are recomputed
// from the merged counters, and the delay/recovery summaries are folded
// over the per-terminal accumulators in global id order — making the
// result independent of how the population was sharded.
func MergeFrames(shards [][]ShardFrame, terminals int, updateCost, pollCost float64) []Frame {
	if len(shards) == 0 || len(shards[0]) == 0 {
		return nil
	}
	frames := len(shards[0])
	ordered := make([][]ShardFrame, len(shards))
	copy(ordered, shards)
	for _, s := range ordered {
		if len(s) != frames {
			panic(fmt.Sprintf("telemetry: shard captured %d frames, want %d", len(s), frames))
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i][0].First < ordered[j][0].First })

	out := make([]Frame, frames)
	for k := range out {
		f := Frame{Slot: ordered[0][k].Slot}
		var delay, recovery stats.Accumulator
		for _, s := range ordered {
			sf := s[k]
			if sf.Slot != f.Slot {
				panic(fmt.Sprintf("telemetry: misaligned shard frames: slot %d vs %d", sf.Slot, f.Slot))
			}
			f.Counters.add(sf.Counters)
			for i := range sf.Delay {
				delay.Merge(&sf.Delay[i])
			}
			for i := range sf.Recovery {
				recovery.Merge(&sf.Recovery[i])
			}
		}
		// Shards report sub-slot events only; count the slot sweeps once.
		f.Events += uint64(f.Slot)
		denom := float64(f.Slot) * float64(terminals)
		f.UpdateCost = float64(f.Updates) * updateCost / denom
		f.PagingCost = float64(f.PolledCells) * pollCost / denom
		f.TotalCost = f.UpdateCost + f.PagingCost
		f.Delay = Summarize(&delay)
		f.Recovery = Summarize(&recovery)
		out[k] = f
	}
	return out
}
