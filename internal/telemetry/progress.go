package telemetry

import "sync/atomic"

// Progress holds live per-shard progress counters for an in-flight run.
// The engine calls Init once with the shard count and then Set from each
// shard's slot loop; any other goroutine may call Snapshot concurrently
// (an expvar handler, a progress bar). All updates are atomic, so
// watching a run costs one atomic store per shard per slot and never
// blocks the simulation.
type Progress struct {
	shards atomic.Pointer[[]shardProgress]
}

type shardProgress struct {
	slot   atomic.Int64
	work   atomic.Int64
	events atomic.Uint64
}

// ShardStatus is one shard's live progress: the slots every terminal of
// the shard has completed, the terminal-slots of work completed, and the
// scheduler events processed. Work is at least Slot × the shard's
// terminal count and can run ahead of it when the engine publishes at
// sub-batch granularity (the columnar engine reports each finished
// cohort), so consumers that want a smooth completion figure read Work
// and never multiply Slot themselves.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Slot   int64  `json:"slot"`
	Work   int64  `json:"work"`
	Events uint64 `json:"events"`
}

// Init (re)sizes the counter set for a run with the given shard count,
// resetting all counters. The engine calls it before the shards start.
func (p *Progress) Init(shards int) {
	if p == nil {
		return
	}
	s := make([]shardProgress, shards)
	p.shards.Store(&s)
}

// Set records shard's current progress: the slot floor every terminal
// has reached, the terminal-slots of work completed, and the events
// processed. Calls before Init, or with an out-of-range shard index, are
// dropped.
func (p *Progress) Set(shard int, slot, work int64, events uint64) {
	if p == nil {
		return
	}
	sp := p.shards.Load()
	if sp == nil || shard < 0 || shard >= len(*sp) {
		return
	}
	(*sp)[shard].slot.Store(slot)
	(*sp)[shard].work.Store(work)
	(*sp)[shard].events.Store(events)
}

// Snapshot returns the current per-shard progress (empty before Init).
func (p *Progress) Snapshot() []ShardStatus {
	if p == nil {
		return nil
	}
	sp := p.shards.Load()
	if sp == nil {
		return nil
	}
	out := make([]ShardStatus, len(*sp))
	for i := range *sp {
		out[i] = ShardStatus{
			Shard:  i,
			Slot:   (*sp)[i].slot.Load(),
			Work:   (*sp)[i].work.Load(),
			Events: (*sp)[i].events.Load(),
		}
	}
	return out
}
