package telemetry

import (
	"reflect"
	"testing"
)

func TestHistAddAndQuantiles(t *testing.T) {
	h := NewHist(1, 8)
	for _, x := range []float64{1, 1, 1, 2, 3, 3, 5, 20} {
		h.Add(x)
	}
	if h.N != 8 {
		t.Fatalf("N = %d, want 8", h.N)
	}
	if h.Min != 1 || h.Max != 20 {
		t.Errorf("extrema (%v, %v), want (1, 20)", h.Min, h.Max)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d, want 1 (the 20)", h.Overflow)
	}
	if got := h.Counts[1]; got != 3 {
		t.Errorf("Counts[1] = %d, want 3", got)
	}
	// The 4th of 8 samples is the 2, in bucket [2,3): p50 reports the
	// bucket's upper edge.
	if got := h.P50(); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	// p95 needs 7.6 samples; cumulative reaches 8 only via overflow → Max.
	if got := h.P95(); got != 20 {
		t.Errorf("p95 = %v, want 20", got)
	}
	if got := h.P99(); got != 20 {
		t.Errorf("p99 = %v, want 20", got)
	}
}

func TestHistConstantStreamReportsExactly(t *testing.T) {
	h := NewHist(1, 16)
	for i := 0; i < 100; i++ {
		h.Add(3)
	}
	// The bucket upper edge (4) is clamped to the exact Max.
	for _, p := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(p); got != 3 {
			t.Errorf("quantile(%v) = %v, want exactly 3", p, got)
		}
	}
}

func TestHistEmptyAndBounds(t *testing.T) {
	h := NewHist(2, 4)
	if got := h.P50(); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
	h.Add(-1) // negatives clamp into bucket 0
	if h.Counts[0] != 1 || h.Min != -1 {
		t.Errorf("negative sample: counts %v, min %v", h.Counts, h.Min)
	}
	for _, p := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantile(%v) did not panic", p)
				}
			}()
			h.Quantile(p)
		}()
	}
	for _, bad := range []func(){
		func() { NewHist(0, 4) },
		func() { NewHist(1, 0) },
		func() { NewHist(-2, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram shape accepted")
				}
			}()
			bad()
		}()
	}
}

// TestHistMergePartitionInvariant is the determinism contract: reducing
// any partition of the same samples, in any order, yields bit-identical
// histogram state.
func TestHistMergePartitionInvariant(t *testing.T) {
	samples := []float64{0, 1, 1, 2, 5, 7, 7, 9, 31, 64, 120}
	whole := NewHist(4, 16)
	for _, x := range samples {
		whole.Add(x)
	}
	for _, cut := range []int{1, 4, len(samples) - 1} {
		a, b := NewHist(4, 16), NewHist(4, 16)
		for _, x := range samples[:cut] {
			a.Add(x)
		}
		for _, x := range samples[cut:] {
			b.Add(x)
		}
		// Merge in both orders; each must equal the single-stream state.
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !reflect.DeepEqual(ab, whole) || !reflect.DeepEqual(ba, whole) {
			t.Errorf("cut %d: merged state diverged:\nab %+v\nba %+v\nwant %+v", cut, ab, ba, whole)
		}
	}
}

func TestHistMergeEdgeCases(t *testing.T) {
	a := NewHist(1, 4)
	a.Merge(nil) // no-op
	empty := NewHist(1, 4)
	a.Merge(empty) // empty is a no-op, extrema untouched
	if a.N != 0 || a.Min != 0 || a.Max != 0 {
		t.Errorf("empty merge changed state: %+v", a)
	}
	b := NewHist(1, 4)
	b.Add(-3)
	b.Add(2)
	a.Merge(b) // into empty: adopts extrema
	if a.Min != -3 || a.Max != 2 || a.N != 2 {
		t.Errorf("merge into empty: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch accepted")
		}
	}()
	c := NewHist(2, 4)
	c.Add(1)
	a.Merge(c)
}

func TestHistClone(t *testing.T) {
	a := NewHist(1, 4)
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	if a.N != 1 || a.Counts[2] != 0 {
		t.Errorf("clone aliased the original: %+v", a)
	}
}
