package telemetry

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/stats"
)

// buildShardFrame makes a shard frame whose per-terminal accumulators
// hold the given delay samples (one slice per terminal).
func buildShardFrame(slot int64, first int, updates int64, delays ...[]float64) ShardFrame {
	sf := ShardFrame{
		Slot:     slot,
		First:    first,
		Counters: Counters{Updates: updates, Calls: int64(len(delays))},
		Delay:    make([]stats.Accumulator, len(delays)),
		Recovery: make([]stats.Accumulator, len(delays)),
	}
	for i, ds := range delays {
		for _, d := range ds {
			sf.Delay[i].Add(d)
		}
	}
	return sf
}

// TestMergeFramesShardingInvariant is the package's core contract: a
// population folded as one shard and as several produces bit-identical
// merged frames, whatever order the shard series are passed in.
func TestMergeFramesShardingInvariant(t *testing.T) {
	perTerm := [][]float64{{1, 2}, {3}, {1, 1, 4}, {2, 2}}
	single := [][]ShardFrame{{buildShardFrame(10, 0, 8, perTerm...)}}
	split := [][]ShardFrame{
		{buildShardFrame(10, 0, 5, perTerm[:2]...)},
		{buildShardFrame(10, 2, 3, perTerm[2:]...)},
	}
	reversed := [][]ShardFrame{split[1], split[0]}

	want := MergeFrames(single, 4, 100, 10)
	for name, shards := range map[string][][]ShardFrame{"split": split, "reversed": reversed} {
		got := MergeFrames(shards, 4, 100, 10)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: merged frames diverged\nwant %+v\ngot  %+v", name, want, got)
		}
	}
	f := want[0]
	if f.Updates != 8 || f.Calls != 4 {
		t.Errorf("counters did not sum: %+v", f)
	}
	if f.Delay.N != 8 {
		t.Errorf("delay summary folded %d samples, want 8", f.Delay.N)
	}
	// 8 updates × U=100 over 10 slots × 4 terminals = 20 per slot per
	// terminal.
	if f.UpdateCost != 20 || f.TotalCost != f.UpdateCost+f.PagingCost {
		t.Errorf("costs %+v", f)
	}
	// Events: no sub-slot events reported, slot sweeps added back once.
	if f.Events != 10 {
		t.Errorf("events = %d, want 10 slot sweeps", f.Events)
	}
}

func TestMergeFramesEmptyAndMisaligned(t *testing.T) {
	if got := MergeFrames(nil, 4, 1, 1); got != nil {
		t.Errorf("nil shards produced %v", got)
	}
	if got := MergeFrames([][]ShardFrame{{}}, 4, 1, 1); got != nil {
		t.Errorf("empty series produced %v", got)
	}
	for name, shards := range map[string][][]ShardFrame{
		"length mismatch": {
			{buildShardFrame(10, 0, 1, []float64{1})},
			{buildShardFrame(10, 1, 1, []float64{1}), buildShardFrame(20, 1, 2, []float64{1})},
		},
		"slot mismatch": {
			{buildShardFrame(10, 0, 1, []float64{1})},
			{buildShardFrame(20, 1, 1, []float64{1})},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			MergeFrames(shards, 2, 1, 1)
		}()
	}
}

func TestSummarize(t *testing.T) {
	var a stats.Accumulator
	if got := Summarize(&a); got != (Summary{}) {
		t.Errorf("empty summary %+v", got)
	}
	for _, x := range []float64{-2, 4, 1} {
		a.Add(x)
	}
	got := Summarize(&a)
	if got.N != 3 || got.Mean != 1 || got.Min != -2 || got.Max != 4 || got.StdDev != 3 {
		t.Errorf("summary %+v", got)
	}
}

func TestProgressLifecycle(t *testing.T) {
	var nilProg *Progress
	nilProg.Set(0, 1, 1, 1) // nil receiver is a no-op
	if got := nilProg.Snapshot(); got != nil {
		t.Errorf("nil progress snapshot %v", got)
	}

	p := &Progress{}
	p.Set(0, 5, 5, 5) // before Init: dropped
	if got := p.Snapshot(); got != nil {
		t.Errorf("pre-Init snapshot %v", got)
	}
	p.Init(2)
	p.Set(0, 100, 800, 250)
	p.Set(1, 90, 720, 200)
	p.Set(7, 1, 1, 1)  // out of range: dropped
	p.Set(-1, 1, 1, 1) // out of range: dropped
	want := []ShardStatus{
		{Shard: 0, Slot: 100, Work: 800, Events: 250},
		{Shard: 1, Slot: 90, Work: 720, Events: 200},
	}
	if got := p.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot %+v, want %+v", got, want)
	}
}

// TestProgressConcurrent hammers Set and Snapshot from racing goroutines;
// meaningful under -race.
func TestProgressConcurrent(t *testing.T) {
	p := &Progress{}
	p.Init(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				p.Set(shard, i, 8*i, uint64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, s := range p.Snapshot() {
				if s.Slot < 0 || s.Slot > 1000 {
					t.Errorf("torn read: %+v", s)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}
