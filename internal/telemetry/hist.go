package telemetry

import "fmt"

// Hist is a fixed-bucket latency histogram: bucket i counts observations
// in [i·Width, (i+1)·Width), with everything at or beyond the last edge
// in Overflow, and the exact extrema tracked on the side. All fields are
// exported so histograms marshal to JSON and merge across shards; mutate
// them only through Add and Merge.
//
// Because bucket counts merge by exact integer addition and the extrema
// by min/max, a histogram reduced over any partition of the same samples
// is bit-identical — the shard-count-invariance property the simulation
// engine's metrics merge relies on.
type Hist struct {
	// Width is the bucket width in the sample's unit (cycles, slots, …).
	Width float64 `json:"width"`
	// Counts[i] counts observations in [i·Width, (i+1)·Width); negative
	// observations (never produced by the simulator) land in bucket 0.
	Counts []int64 `json:"counts"`
	// Overflow counts observations at or beyond len(Counts)·Width.
	Overflow int64 `json:"overflow"`
	// N is the total observation count.
	N int64 `json:"n"`
	// Min and Max are the exact extrema (0 when N is 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewHist returns an empty histogram with the given bucket width and
// count; both must be positive.
func NewHist(width float64, buckets int) *Hist {
	if width <= 0 || buckets <= 0 {
		panic(fmt.Sprintf("telemetry: histogram shape %v x %d must be positive", width, buckets))
	}
	return &Hist{Width: width, Counts: make([]int64, buckets)}
}

// Add records one observation.
func (h *Hist) Add(x float64) {
	if h.N == 0 || x < h.Min {
		h.Min = x
	}
	if h.N == 0 || x > h.Max {
		h.Max = x
	}
	h.N++
	if x < 0 {
		h.Counts[0]++
		return
	}
	if i := int(x / h.Width); i < len(h.Counts) {
		h.Counts[i]++
	} else {
		h.Overflow++
	}
}

// Clone returns an independent copy of h.
func (h *Hist) Clone() *Hist {
	c := *h
	c.Counts = append([]int64(nil), h.Counts...)
	return &c
}

// Merge folds o into h. Both histograms must have the same shape (width
// and bucket count); merging mismatched shapes is always a bug and
// panics. Merging is commutative and associative, so any reduction order
// over the same sample partition yields bit-identical state.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.N == 0 {
		return
	}
	if h.Width != o.Width || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("telemetry: merging mismatched histogram shapes %v x %d and %v x %d",
			h.Width, len(h.Counts), o.Width, len(o.Counts)))
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.N == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Overflow += o.Overflow
	h.N += o.N
}

// Quantile returns an upper bound on the p-quantile (p in (0, 1]): the
// upper edge of the first bucket whose cumulative count reaches p·N,
// clamped to the exact observed Max (so constant streams report exactly).
// Observations that overflowed the bucket range report Max. An empty
// histogram returns 0.
func (h *Hist) Quantile(p float64) float64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("telemetry: quantile probability %v outside (0,1]", p))
	}
	if h.N == 0 {
		return 0
	}
	target := p * float64(h.N)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			if edge := float64(i+1) * h.Width; edge < h.Max {
				return edge
			}
			return h.Max
		}
	}
	return h.Max
}

// P50 returns the median upper bound.
func (h *Hist) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (h *Hist) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound.
func (h *Hist) P99() float64 { return h.Quantile(0.99) }
