package markov

import (
	"fmt"

	"repro/internal/chain"
)

// DistanceChain builds the full transition matrix of the paper's distance
// Markov chain (states 0..d) for the given model and parameters, directly
// from the mechanism: a call arrival (probability c) or an update-triggering
// move out of ring d resets the state to 0; other moves shift the ring
// index; the remainder self-loops.
//
// It is the generic-matrix counterpart of chain.Stationary and exists so
// the structured O(d) solver can be cross-validated against a dense direct
// solution.
func DistanceChain(m chain.Model, p chain.Params, d int) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("markov: negative threshold %d", d)
	}
	mat := make([][]float64, d+1)
	for i := range mat {
		mat[i] = make([]float64, d+1)
	}
	for i := 0; i <= d; i++ {
		up := m.Up(p, i)
		down := m.Down(p, i)
		if i == 0 {
			if d >= 1 {
				mat[0][1] += up
				mat[0][0] += 1 - up
			} else {
				mat[0][0] = 1
			}
			continue
		}
		mat[i][0] += p.C
		if i < d {
			mat[i][i+1] += up
		} else {
			mat[i][0] += up
		}
		mat[i][i-1] += down
		mat[i][i] += 1 - p.C - up - down
	}
	return New(mat)
}
