package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chain"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := New([][]float64{{0.5, 0.5}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := New([][]float64{{0.5, 0.4}, {0.5, 0.5}}); err == nil {
		t.Error("row not summing to 1 accepted")
	}
	if _, err := New([][]float64{{1.5, -0.5}, {0.5, 0.5}}); err == nil {
		t.Error("negative entry accepted")
	}
	c, err := New([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.At(0, 1) != 0.1 {
		t.Error("accessors wrong")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// π for P = [[1-a, a], [b, 1-b]] is (b, a)/(a+b).
	a, b := 0.3, 0.12
	c, err := New([][]float64{{1 - a, a}, {b, 1 - b}})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-b/(a+b)) > 1e-12 || math.Abs(pi[1]-a/(a+b)) > 1e-12 {
		t.Errorf("pi = %v", pi)
	}
}

func TestStationarySingularReported(t *testing.T) {
	// Two absorbing states: no unique stationary distribution.
	c, err := New([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stationary(); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestPowerIterationMatchesDirect(t *testing.T) {
	c, err := New([][]float64{
		{0.5, 0.3, 0.2},
		{0.1, 0.8, 0.1},
		{0.4, 0.1, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := c.PowerIteration(1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-iter[i]) > 1e-9 {
			t.Errorf("state %d: direct %v vs power %v", i, direct[i], iter[i])
		}
	}
}

func TestPowerIterationPeriodicChain(t *testing.T) {
	// A 2-cycle is periodic; Cesàro damping must still converge to (.5,.5).
	c, err := New([][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.PowerIteration(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 || math.Abs(pi[1]-0.5) > 1e-9 {
		t.Errorf("pi = %v", pi)
	}
}

func TestPowerIterationArgErrors(t *testing.T) {
	c, _ := New([][]float64{{1}})
	if _, err := c.PowerIteration(0, 10); err == nil {
		t.Error("tol=0 accepted")
	}
	if _, err := c.PowerIteration(1e-9, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
}

func TestDistanceChainMatchesStructuredSolver(t *testing.T) {
	params := []chain.Params{
		{Q: 0.05, C: 0.01},
		{Q: 0.5, C: 0.1},
		{Q: 0.01, C: 0.3},
	}
	for _, m := range []chain.Model{chain.OneDim, chain.TwoDimExact, chain.TwoDimApprox} {
		for _, p := range params {
			for _, d := range []int{0, 1, 2, 5, 12} {
				mc, err := DistanceChain(m, p, d)
				if err != nil {
					t.Fatalf("%v %+v d=%d: %v", m, p, d, err)
				}
				dense, err := mc.Stationary()
				if err != nil {
					t.Fatalf("%v %+v d=%d: %v", m, p, d, err)
				}
				structured, err := chain.Stationary(m, p, d)
				if err != nil {
					t.Fatal(err)
				}
				for i := range dense {
					if math.Abs(dense[i]-structured[i]) > 1e-10 {
						t.Errorf("%v %+v d=%d state %d: dense %v vs structured %v",
							m, p, d, i, dense[i], structured[i])
					}
				}
			}
		}
	}
}

func TestDistanceChainProperty(t *testing.T) {
	f := func(qr, cr uint16, dr uint8) bool {
		q := float64(qr)/65535.0*0.9 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.9
		d := int(dr % 15)
		mc, err := DistanceChain(chain.TwoDimExact, chain.Params{Q: q, C: c}, d)
		if err != nil {
			return false
		}
		dense, err := mc.Stationary()
		if err != nil {
			return false
		}
		structured, err := chain.Stationary(chain.TwoDimExact, chain.Params{Q: q, C: c}, d)
		if err != nil {
			return false
		}
		for i := range dense {
			if math.Abs(dense[i]-structured[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistanceChainErrors(t *testing.T) {
	if _, err := DistanceChain(chain.OneDim, chain.Params{Q: 2, C: 0}, 3); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := DistanceChain(chain.OneDim, chain.Params{Q: 0.1, C: 0}, -1); err == nil {
		t.Error("negative d accepted")
	}
}
