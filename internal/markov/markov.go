// Package markov provides generic finite discrete-time Markov chain (DTMC)
// utilities: transition-matrix construction and validation, stationary
// distributions via direct linear solution (Gaussian elimination with
// partial pivoting) and via power iteration.
//
// The location-management model of the paper is a small structured chain
// with its own O(d) solver in package chain; this package exists as an
// independent general-purpose solver used to cross-validate that solver and
// the paper's closed forms, and as a substrate for the baseline schemes
// whose chains do not share the distance chain's structure.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain is a finite DTMC described by its one-step transition matrix:
// P[i][j] is the probability of moving from state i to state j in one step.
type Chain struct {
	p [][]float64
}

// New validates rows (non-negative entries, each summing to 1 within tol)
// and returns the chain. The matrix is used directly, not copied.
func New(p [][]float64) (*Chain, error) {
	n := len(p)
	if n == 0 {
		return nil, errors.New("markov: empty transition matrix")
	}
	const tol = 1e-9
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("markov: row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if math.IsNaN(v) || v < -tol {
				return nil, fmt.Errorf("markov: P[%d][%d] = %v invalid", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return nil, fmt.Errorf("markov: row %d sums to %v, want 1", i, sum)
		}
	}
	return &Chain{p: p}, nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.p) }

// At returns P[i][j].
func (c *Chain) At(i, j int) float64 { return c.p[i][j] }

// Stationary solves π = πP, Σπ = 1 directly by Gaussian elimination on the
// system (Pᵀ − I)π = 0 with one equation replaced by the normalization
// constraint. It requires the chain to have a unique stationary
// distribution (a single recurrent class); otherwise the linear system is
// singular and an error is returned.
func (c *Chain) Stationary() ([]float64, error) {
	n := len(c.p)
	// Build A = Pᵀ − I, replace last row with all-ones (normalization).
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.p[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1

	pi, err := solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	// Clamp tiny negative round-off and renormalize.
	sum := 0.0
	for i, v := range pi {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("markov: stationary solution has negative component π_%d = %v", i, v)
			}
			pi[i] = 0
		}
		sum += pi[i]
	}
	if sum <= 0 {
		return nil, errors.New("markov: stationary solution sums to zero")
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// PowerIteration approximates the stationary distribution by repeated
// multiplication π ← πP from the uniform distribution, stopping when the
// L1 change falls below tol or after maxIter sweeps. For periodic chains it
// averages consecutive iterates (Cesàro damping) to ensure convergence.
func (c *Chain) PowerIteration(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		return nil, errors.New("markov: tolerance must be positive")
	}
	if maxIter <= 0 {
		return nil, errors.New("markov: maxIter must be positive")
	}
	n := len(c.p)
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			pi := cur[i]
			if pi == 0 {
				continue
			}
			row := c.p[i]
			for j, v := range row {
				next[j] += pi * v
			}
		}
		// Cesàro damping: next ← (next + cur)/2.
		diff := 0.0
		for j := range next {
			next[j] = 0.5 * (next[j] + cur[j])
			diff += math.Abs(next[j] - cur[j])
		}
		cur, next = next, cur
		if diff < tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d sweeps", maxIter)
}

// solve performs Gaussian elimination with partial pivoting on a·x = b,
// destroying a and b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-13 {
			return nil, errors.New("singular linear system (no unique stationary distribution)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i][k] * x[k]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
