package core

import (
	"fmt"
	"math"
	"math/rand"
)

// AnnealOptions tunes the simulated-annealing optimizer of Section 6. The
// zero value selects the defaults documented on each field.
type AnnealOptions struct {
	// MaxThreshold bounds the search space to 0..MaxThreshold;
	// 0 selects DefaultMaxThreshold.
	MaxThreshold int
	// Y is the cooling-schedule constant in T = y/(y+k); 0 selects 50.
	// Larger values cool more slowly and explore more.
	Y float64
	// ExitT is the temperature at which the annealing stops; 0 selects
	// 0.01. The paper: "the values of y and exit_T are adjusted based on
	// the required accuracy of the result".
	ExitT float64
	// Step is the maximum distance between d and the candidate generated
	// from it; 0 selects 3.
	Step int
	// Seed seeds the random source; annealing runs are reproducible for a
	// fixed seed.
	Seed int64
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.MaxThreshold <= 0 {
		o.MaxThreshold = DefaultMaxThreshold
	}
	if o.Y == 0 {
		o.Y = 50
	}
	if o.ExitT == 0 {
		o.ExitT = 0.01
	}
	if o.Step <= 0 {
		o.Step = 3
	}
	return o
}

// Anneal finds a (near-)optimal threshold by simulated annealing, following
// the algorithmic structure in Section 6 of the paper: starting from a
// random threshold at temperature T = 1, it repeatedly proposes a nearby
// threshold, always accepts improvements, accepts degradations with
// probability exp(Δ/T) per the Boltzmann law, and cools with the paper's
// schedule T = y/(y+k) until T ≤ exitT.
//
// Cost evaluations are memoized: the chain solution for a given d never
// changes, so each threshold is evaluated at most once. The returned
// Result has a nil Curve.
func Anneal(cfg Config, opts AnnealOptions) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	res := Result{}
	memo := make(map[int]Breakdown)
	cost := func(d int) (Breakdown, error) {
		if b, ok := memo[d]; ok {
			return b, nil
		}
		b, err := cfg.Evaluate(d)
		if err != nil {
			return Breakdown{}, err
		}
		memo[d] = b
		res.Evaluations++
		return b, nil
	}

	// Random_Init().
	d := rng.Intn(opts.MaxThreshold + 1)
	cur, err := cost(d)
	if err != nil {
		return Result{}, err
	}
	best := cur

	t := 1.0
	for k := 1; t > opts.ExitT; k++ {
		// generate(d): a random non-zero step of at most ±Step, clamped to
		// the search space.
		nd := d + deltaStep(rng, opts.Step)
		if nd < 0 {
			nd = 0
		}
		if nd > opts.MaxThreshold {
			nd = opts.MaxThreshold
		}
		cand, err := cost(nd)
		if err != nil {
			return Result{}, err
		}
		delta := cur.Total - cand.Total // > 0 means the candidate is better
		if delta >= 0 || rng.Float64() < math.Exp(delta/t) {
			d, cur = nd, cand
		}
		if cur.Total < best.Total {
			best = cur
		}
		t = opts.Y / (opts.Y + float64(k))
	}
	if math.IsInf(best.Total, 1) {
		return Result{}, ErrNoImprovement
	}
	res.Best = best
	return res, nil
}

// deltaStep draws a uniform non-zero step in [−step, step].
func deltaStep(rng *rand.Rand, step int) int {
	if step <= 0 {
		panic(fmt.Sprintf("core: non-positive step %d", step))
	}
	v := rng.Intn(2*step) + 1 // 1..2*step
	if v > step {
		return step - v // −1..−step
	}
	return v
}
