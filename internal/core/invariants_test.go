package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chain"
)

// Invariant tests: structural properties of the cost model that must hold
// across the whole parameter space, beyond the paper's specific numbers.

// TestUpdateCostDecreasesWithThreshold: a larger residing area can only
// make threshold crossings rarer, so Cu(d) is non-increasing in d.
func TestUpdateCostDecreasesWithThreshold(t *testing.T) {
	for _, model := range []chain.Model{chain.OneDim, chain.TwoDimExact, chain.TwoDimApprox} {
		for _, p := range []chain.Params{{Q: 0.05, C: 0.01}, {Q: 0.4, C: 0.1}, {Q: 0.01, C: 0.3}} {
			cfg := Config{Model: model, Params: p, Costs: Costs{Update: 100, Poll: 10}, MaxDelay: 1}
			prev := math.Inf(1)
			for d := 0; d <= 25; d++ {
				b, err := cfg.Evaluate(d)
				if err != nil {
					t.Fatal(err)
				}
				if b.Update > prev+1e-12 {
					t.Errorf("%v %+v: Cu(%d)=%v > Cu(%d)=%v", model, p, d, b.Update, d-1, prev)
				}
				prev = b.Update
			}
		}
	}
}

// TestBlanketPagingCostIncreasesWithThreshold: with m = 1 the paging cost
// is c·g(d)·V, strictly increasing in d.
func TestBlanketPagingCostIncreasesWithThreshold(t *testing.T) {
	cfg := Config{
		Model:    chain.TwoDimExact,
		Params:   chain.Params{Q: 0.1, C: 0.02},
		Costs:    Costs{Update: 100, Poll: 10},
		MaxDelay: 1,
	}
	prev := -1.0
	for d := 0; d <= 20; d++ {
		b, err := cfg.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		if b.Paging <= prev {
			t.Errorf("Cv(%d)=%v not above Cv(%d)=%v", d, b.Paging, d-1, prev)
		}
		want := 0.02 * 10 * float64(3*d*(d+1)+1)
		if math.Abs(b.Paging-want) > 1e-9 {
			t.Errorf("Cv(%d)=%v, closed form %v", d, b.Paging, want)
		}
		prev = b.Paging
	}
}

// TestOptimalCostMonotoneInUpdateCost: raising U can never lower the
// optimal total cost, and d* can never decrease (updates get relatively
// more expensive).
func TestOptimalCostMonotoneInUpdateCost(t *testing.T) {
	prevCost := -1.0
	prevD := -1
	for _, u := range []float64{1, 5, 20, 50, 100, 300, 1000} {
		cfg := Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: 0.05, C: 0.01},
			Costs:    Costs{Update: u, Poll: 10},
			MaxDelay: 3,
		}
		res, err := Scan(cfg, 60)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Total < prevCost-1e-12 {
			t.Errorf("U=%v: optimal cost %v below previous %v", u, res.Best.Total, prevCost)
		}
		if res.Best.Threshold < prevD {
			t.Errorf("U=%v: d*=%d below previous %d", u, res.Best.Threshold, prevD)
		}
		prevCost, prevD = res.Best.Total, res.Best.Threshold
	}
}

// TestUnboundedDelayIsCheapestBound: the unconstrained optimum lower-bounds
// every delay-constrained optimum.
func TestUnboundedDelayIsCheapestBound(t *testing.T) {
	f := func(qr, cr uint16, ur uint8, mr uint8) bool {
		q := float64(qr)/65535.0*0.5 + 0.005
		c := (1 - q) * (float64(cr)/65535.0*0.2 + 0.001)
		u := float64(ur%200) + 1
		m := int(mr%6) + 1
		base := Config{
			Model:  chain.TwoDimExact,
			Params: chain.Params{Q: q, C: c},
			Costs:  Costs{Update: u, Poll: 10},
		}
		bounded := base
		bounded.MaxDelay = m
		rb, err := Scan(bounded, 40)
		if err != nil {
			return false
		}
		ru, err := Scan(base, 40) // MaxDelay 0 = unbounded
		if err != nil {
			return false
		}
		return ru.Best.Total <= rb.Best.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExpectedDelayWithinBound: for every configuration the expected delay
// lies in [1, ℓ] and ℓ ≤ m.
func TestExpectedDelayWithinBound(t *testing.T) {
	f := func(qr, cr uint16, dr, mr uint8) bool {
		q := float64(qr)/65535.0*0.8 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.5
		d := int(dr % 25)
		m := int(mr % 8)
		cfg := Config{
			Model:    chain.OneDim,
			Params:   chain.Params{Q: q, C: c},
			Costs:    Costs{Update: 10, Poll: 1},
			MaxDelay: m,
		}
		b, err := cfg.Evaluate(d)
		if err != nil {
			return false
		}
		if m >= 1 && b.MaxCycles > m {
			return false
		}
		return b.ExpectedDelay >= 1-1e-12 && b.ExpectedDelay <= float64(b.MaxCycles)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCostScalesLinearlyInUnitCosts: C_T is linear in (U, V) by
// construction; scaling both scales the optimum without moving d*.
func TestCostScalesLinearlyInUnitCosts(t *testing.T) {
	base := Config{
		Model:    chain.TwoDimExact,
		Params:   chain.Params{Q: 0.05, C: 0.01},
		Costs:    Costs{Update: 100, Poll: 10},
		MaxDelay: 2,
	}
	r1, err := Scan(base, 40)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.Costs = Costs{Update: 700, Poll: 70}
	r7, err := Scan(scaled, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r7.Best.Threshold != r1.Best.Threshold {
		t.Errorf("d* moved: %d vs %d", r7.Best.Threshold, r1.Best.Threshold)
	}
	if math.Abs(r7.Best.Total-7*r1.Best.Total) > 1e-9 {
		t.Errorf("cost not linear: %v vs 7×%v", r7.Best.Total, r1.Best.Total)
	}
}
