package core

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/paging"
)

func TestEvaluateGroupedNeverWorseThanSDF(t *testing.T) {
	for _, m := range []int{1, 2, 3, 0} {
		cfg := tableConfig(chain.TwoDimExact, 300, m, false)
		for d := 0; d <= 10; d++ {
			sdf, err := cfg.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			grouped, err := cfg.EvaluateGrouped(d)
			if err != nil {
				t.Fatal(err)
			}
			if grouped.Total > sdf.Total+1e-9 {
				t.Errorf("m=%d d=%d: grouped %v worse than SDF %v", m, d, grouped.Total, sdf.Total)
			}
			if grouped.Update != sdf.Update {
				t.Errorf("m=%d d=%d: update cost changed", m, d)
			}
			if m > 0 && grouped.MaxCycles > m {
				t.Errorf("m=%d d=%d: %d cycles", m, d, grouped.MaxCycles)
			}
		}
	}
}

func TestScanGroupedImprovesOptimalCost(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 300, 3, false)
	sdf, err := Scan(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := ScanGrouped(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Best.Total > sdf.Best.Total+1e-9 {
		t.Errorf("grouped optimum %v worse than SDF optimum %v", grouped.Best.Total, sdf.Best.Total)
	}
	if len(grouped.Curve) != 41 {
		t.Errorf("curve length %d", len(grouped.Curve))
	}
}

func TestDelayDistribution(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 100, 3, false)
	dist, err := cfg.DelayDistribution(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 3 {
		t.Fatalf("%d cycles, want 3", len(dist))
	}
	sum := 0.0
	mean := 0.0
	for j, p := range dist {
		if p < 0 {
			t.Errorf("negative probability at cycle %d", j+1)
		}
		sum += p
		mean += p * float64(j+1)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("distribution sums to %v", sum)
	}
	b, err := cfg.Evaluate(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-b.ExpectedDelay) > 1e-12 {
		t.Errorf("mean %v vs Breakdown.ExpectedDelay %v", mean, b.ExpectedDelay)
	}
}

func TestOptimizeMeanDelayRespectsBound(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	for _, bound := range []float64{1.0, 1.3, 1.8, 2.5, 4} {
		res, err := OptimizeMeanDelay(cfg, bound, 30)
		if err != nil {
			t.Fatalf("bound %v: %v", bound, err)
		}
		if res.Best.ExpectedDelay > bound+1e-9 {
			t.Errorf("bound %v: expected delay %v", bound, res.Best.ExpectedDelay)
		}
	}
}

func TestOptimizeMeanDelayMonotone(t *testing.T) {
	// A looser mean-delay bound can never cost more.
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	prev := math.Inf(1)
	for _, bound := range []float64{1.0, 1.2, 1.5, 2.0, 3.0, 5.0} {
		res, err := OptimizeMeanDelay(cfg, bound, 30)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Total > prev+1e-9 {
			t.Errorf("bound %v: cost %v above tighter bound's %v", bound, res.Best.Total, prev)
		}
		prev = res.Best.Total
	}
}

func TestOptimizeMeanDelayUnitBoundIsBlanket(t *testing.T) {
	// Mean delay ≤ 1 forces single-cycle paging everywhere, so the result
	// must match the m=1 worst-case optimum.
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	res, err := OptimizeMeanDelay(cfg, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	m1 := tableConfig(chain.TwoDimExact, 300, 1, false)
	want, err := Scan(m1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best.Total-want.Best.Total) > 1e-9 {
		t.Errorf("mean-delay-1 optimum %v vs m=1 optimum %v", res.Best.Total, want.Best.Total)
	}
}

func TestOptimizeMeanDelayBeatsWorstCaseBound(t *testing.T) {
	// A mean-delay budget of 2 cycles admits configurations a worst-case
	// m=2 bound forbids, so it can only do better (or equal).
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	mean, err := OptimizeMeanDelay(cfg, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Scan(tableConfig(chain.TwoDimExact, 300, 2, false), 30)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Best.Total > worst.Best.Total+1e-9 {
		t.Errorf("mean-bound %v worse than worst-case bound %v", mean.Best.Total, worst.Best.Total)
	}
}

func TestOptimizeMeanDelayErrors(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	if _, err := OptimizeMeanDelay(cfg, 0.5, 10); err == nil {
		t.Error("sub-unit bound accepted")
	}
	bad := cfg
	bad.Params = chain.Params{Q: 2}
	if _, err := OptimizeMeanDelay(bad, 2, 10); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := cfg.EvaluateGrouped(-1); err == nil {
		t.Error("negative d accepted by EvaluateGrouped")
	}
	if _, err := bad.EvaluateGrouped(1); err == nil {
		t.Error("invalid config accepted by EvaluateGrouped")
	}
	if _, err := bad.DelayDistribution(1); err == nil {
		t.Error("invalid config accepted by DelayDistribution")
	}
	if _, err := ScanGrouped(bad, 5); err == nil {
		t.Error("invalid config accepted by ScanGrouped")
	}
}

func TestOptimizeMeanDelayWithDPScheme(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 300, 0, false)
	cfg.Scheme = paging.OptimalDP{}
	res, err := OptimizeMeanDelay(cfg, 1.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.ExpectedDelay > 1.5 {
		t.Errorf("expected delay %v", res.Best.ExpectedDelay)
	}
}
