// Package core implements the primary contribution of Akyildiz & Ho
// (SIGCOMM '95): the combined cost model for distance-based location update
// and delay-constrained terminal paging (Section 5), and the selection of
// the optimal update threshold distance (Section 6).
//
// Given a mobility model, per-slot parameters (q, c), unit costs (U for a
// location update, V for polling one cell) and a maximum paging delay of m
// polling cycles, the per-slot average costs are
//
//	Cu(d)   = p_{d,d} · a_{d,d+1} · U                 (eq. 61)
//	Cv(d,m) = c · V · Σ_j π_j · w_j                   (eqs. 62–65)
//	C_T(d,m) = Cu(d) + Cv(d,m)                        (eq. 66)
//
// where p_{i,d} are the stationary ring probabilities of the distance chain,
// π_j the per-subarea probabilities and w_j the cumulative polled cells of
// the paging partition. The optimal threshold d* minimizes C_T; the paper
// notes the curve may have local minima under SDF partitioning, so the
// default optimizer is an exhaustive scan over 0..D (Section 6's first
// method), with simulated annealing as the alternative (second method).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chain"
	"repro/internal/paging"
)

// Costs holds the unit costs of the two signalling operations.
type Costs struct {
	// Update is U, the cost of one location-update transaction.
	Update float64
	// Poll is V, the cost of polling a single cell.
	Poll float64
}

// Validate reports whether the costs are usable.
func (c Costs) Validate() error {
	if math.IsNaN(c.Update) || c.Update < 0 {
		return fmt.Errorf("core: update cost U=%v invalid", c.Update)
	}
	if math.IsNaN(c.Poll) || c.Poll < 0 {
		return fmt.Errorf("core: poll cost V=%v invalid", c.Poll)
	}
	return nil
}

// Config describes one terminal's location-management problem.
type Config struct {
	// Model selects the mobility model (1-D, 2-D exact, or 2-D approximate).
	Model chain.Model
	// Params holds the per-slot movement and call-arrival probabilities.
	Params chain.Params
	// Costs holds the unit costs U and V.
	Costs Costs
	// MaxDelay is m, the maximum paging delay in polling cycles;
	// paging.Unbounded (0) means unconstrained.
	MaxDelay int
	// Scheme partitions the residing area; nil means the paper's SDF.
	Scheme paging.Scheme
	// LegacyZeroRate reproduces the paper's closed-form-based numerics,
	// which computed the update cost at d = 0 with the interior transition
	// rate (q/2 in 1-D, q/3 in the approximate 2-D model) instead of
	// eq. (3)/(43)'s a_{0,1} = q. The published Table 1 and the d′/C′_T
	// columns of Table 2 require this flag (see DESIGN.md §4); leave it
	// false for the faithful equation-(3) behaviour. It affects d = 0 only.
	LegacyZeroRate bool
}

// scheme returns the configured partitioner, defaulting to SDF.
func (c Config) scheme() paging.Scheme {
	if c.Scheme == nil {
		return paging.SDF{}
	}
	return c.Scheme
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("core: negative max delay %d", c.MaxDelay)
	}
	return nil
}

// Breakdown is the evaluated cost of one (threshold, delay) operating point.
type Breakdown struct {
	// Threshold is the update threshold distance d.
	Threshold int
	// Update is Cu(d), the per-slot location-update cost.
	Update float64
	// Paging is Cv(d,m), the per-slot terminal-paging cost.
	Paging float64
	// Total is C_T(d,m) = Cu + Cv.
	Total float64
	// ExpectedDelay is the mean number of polling cycles per call,
	// Σ_j π_j·j (not a paper metric; derived from the same distribution).
	ExpectedDelay float64
	// MaxCycles is the number of subareas ℓ, the worst-case paging delay.
	MaxCycles int
}

// updateProb returns the per-slot location-update probability
// p_{d,d}·a_{d,d+1}, honouring the legacy d = 0 rate when configured.
func (c Config) updateProb(pi []float64, d int) float64 {
	if c.LegacyZeroRate && d == 0 {
		return pi[0] * c.Model.Up(c.Params, 1)
	}
	return chain.UpdateProb(c.Model, c.Params, pi)
}

// Evaluate computes the cost breakdown at threshold d using the exact
// stationary distribution for the configured model.
func (c Config) Evaluate(d int) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	pi, err := chain.Stationary(c.Model, c.Params, d)
	if err != nil {
		return Breakdown{}, err
	}
	return c.evaluateWith(pi, d), nil
}

// evaluateWith computes the breakdown from an externally supplied
// stationary distribution (used by the near-optimal pipeline, which scans
// with approximate probabilities but reports exact costs).
func (c Config) evaluateWith(pi []float64, d int) Breakdown {
	rings := c.Model.Grid().RingSizes(d)
	part := c.scheme().Partition(rings, pi, c.MaxDelay)
	cu := c.updateProb(pi, d) * c.Costs.Update
	cv := c.Params.C * c.Costs.Poll * part.ExpectedCells(pi)
	return Breakdown{
		Threshold:     d,
		Update:        cu,
		Paging:        cv,
		Total:         cu + cv,
		ExpectedDelay: part.ExpectedDelay(pi),
		MaxCycles:     len(part),
	}
}

// Result is the outcome of a threshold optimization.
type Result struct {
	// Best is the cost breakdown at the optimal threshold d*.
	Best Breakdown
	// Curve holds C_T(d,m) for every scanned d (Curve[d] is threshold d);
	// nil for optimizers that do not scan exhaustively.
	Curve []float64
	// Evaluations counts cost-function evaluations performed.
	Evaluations int
}

// DefaultMaxThreshold bounds the exhaustive scan. The paper observes that
// "for typical call arrival and mobility values, the optimal distance
// rarely exceeds 50"; 200 leaves a wide margin.
const DefaultMaxThreshold = 200

// Scan finds the optimal threshold by evaluating every d in 0..maxD
// (Section 6, first method: D+1 iterations, immune to the local minima of
// the SDF cost curve). maxD ≤ 0 selects DefaultMaxThreshold.
func Scan(cfg Config, maxD int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if maxD <= 0 {
		maxD = DefaultMaxThreshold
	}
	res := Result{Curve: make([]float64, maxD+1)}
	best := Breakdown{Total: math.Inf(1)}
	for d := 0; d <= maxD; d++ {
		b, err := cfg.Evaluate(d)
		if err != nil {
			return Result{}, err
		}
		res.Curve[d] = b.Total
		res.Evaluations++
		if b.Total < best.Total {
			best = b
		}
	}
	res.Best = best
	return res, nil
}

// NearOptimal implements the paper's low-computation pipeline for the 2-D
// model (Sections 4.2 and 7): scan using the approximate closed-form
// stationary probabilities to choose d′ and report the exact cost C′_T of
// operating at d′. With correct set, the paper's Section 7 modification is
// applied: a selected d′ = 0 is replaced by 1 when the exact C_T(1) beats
// the exact C_T(0) (the worst cases of the uncorrected pipeline double the
// cost exactly there). The published Table 2 d′/C′_T columns are
// uncorrected, so the reproduction harness passes correct = false.
//
// The returned Curve holds the approximate-cost curve that drove the
// selection. For the 1-D model the closed form is exact, so NearOptimal
// differs from Scan only through Config.LegacyZeroRate.
func NearOptimal(cfg Config, maxD int, correct bool) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if maxD <= 0 {
		maxD = DefaultMaxThreshold
	}
	approxModel := cfg.Model
	exactModel := cfg.Model
	if cfg.Model == chain.TwoDimExact || cfg.Model == chain.TwoDimApprox {
		approxModel = chain.TwoDimApprox
		exactModel = chain.TwoDimExact
	}
	approxCfg := cfg
	approxCfg.Model = approxModel
	res := Result{Curve: make([]float64, maxD+1)}
	bestD, bestCost := 0, math.Inf(1)
	for d := 0; d <= maxD; d++ {
		pi, err := chain.StationaryClosedForm(approxModel, cfg.Params, d)
		if err != nil {
			// Closed-form overflow at extreme parameters: fall back to the
			// stable solver for the same approximate model.
			pi, err = chain.Stationary(approxModel, cfg.Params, d)
			if err != nil {
				return Result{}, err
			}
		}
		total := approxCfg.evaluateWith(pi, d).Total
		res.Curve[d] = total
		res.Evaluations++
		if total < bestCost {
			bestD, bestCost = d, total
		}
	}
	exactCfg := cfg
	exactCfg.Model = exactModel
	exactCfg.LegacyZeroRate = false
	if correct && bestD == 0 {
		// Paper Section 7 correction: a near-optimal threshold of 0 can
		// double the cost when the true optimum is 1; compare the exact
		// costs at 0 and 1 and keep the cheaper.
		b0, err := exactCfg.Evaluate(0)
		if err != nil {
			return Result{}, err
		}
		b1, err := exactCfg.Evaluate(1)
		if err != nil {
			return Result{}, err
		}
		res.Evaluations += 2
		if b1.Total < b0.Total {
			bestD = 1
		}
	}
	best, err := exactCfg.Evaluate(bestD)
	if err != nil {
		return Result{}, err
	}
	res.Best = best
	return res, nil
}

// ErrNoImprovement is returned by optimizers that fail to find any finite
// cost (should not occur for valid configurations).
var ErrNoImprovement = errors.New("core: optimizer found no finite-cost threshold")
