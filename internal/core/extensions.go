package core

import (
	"fmt"
	"math"

	"repro/internal/chain"
	"repro/internal/paging"
)

// EvaluateGrouped computes the cost breakdown at threshold d using the
// probability-ordered optimal grouping (paging.ProbOrderDP) instead of a
// contiguous partition — the strongest form of the paper's future-work
// item on optimal residing-area partitioning. The delay bound cfg.MaxDelay
// still caps the number of polling cycles.
func (c Config) EvaluateGrouped(d int) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	pi, err := chain.Stationary(c.Model, c.Params, d)
	if err != nil {
		return Breakdown{}, err
	}
	rings := c.Model.Grid().RingSizes(d)
	g := paging.ProbOrderDP(rings, pi, c.MaxDelay)
	cu := c.updateProb(pi, d) * c.Costs.Update
	cv := c.Params.C * c.Costs.Poll * g.ExpectedCells(rings, pi)
	return Breakdown{
		Threshold:     d,
		Update:        cu,
		Paging:        cv,
		Total:         cu + cv,
		ExpectedDelay: g.ExpectedDelay(pi),
		MaxCycles:     len(g),
	}, nil
}

// ScanGrouped is Scan with the probability-ordered optimal grouping.
func ScanGrouped(cfg Config, maxD int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if maxD <= 0 {
		maxD = DefaultMaxThreshold
	}
	res := Result{Curve: make([]float64, maxD+1)}
	best := Breakdown{Total: math.Inf(1)}
	for d := 0; d <= maxD; d++ {
		b, err := cfg.EvaluateGrouped(d)
		if err != nil {
			return Result{}, err
		}
		res.Curve[d] = b.Total
		res.Evaluations++
		if b.Total < best.Total {
			best = b
		}
	}
	res.Best = best
	return res, nil
}

// DelayDistribution returns the probability that a call is resolved in
// exactly cycle j+1 (index j) when operating at threshold d under the
// configured partitioning scheme and delay bound: the per-subarea
// probabilities π_j of paper eq. 63.
func (c Config) DelayDistribution(d int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pi, err := chain.Stationary(c.Model, c.Params, d)
	if err != nil {
		return nil, err
	}
	rings := c.Model.Grid().RingSizes(d)
	part := c.scheme().Partition(rings, pi, c.MaxDelay)
	return part.SubareaProbs(pi), nil
}

// OptimizeMeanDelay finds the cheapest operating point (d, m) subject to a
// bound on the *expected* paging delay instead of the paper's worst-case
// bound: it scans thresholds 0..maxD and, for each, every worst-case bound
// m from 1 to d+1, keeping the cheapest point whose expected delay (under
// the configured scheme) does not exceed meanDelay cycles.
//
// This answers a question the paper's worst-case formulation cannot: "I
// can tolerate 1.5 polling cycles on average — what is the cheapest
// configuration?". The returned Breakdown's MaxCycles is the chosen m.
func OptimizeMeanDelay(cfg Config, meanDelay float64, maxD int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if meanDelay < 1 {
		return Result{}, fmt.Errorf("core: mean delay bound %v below 1 cycle (every call takes at least one)", meanDelay)
	}
	if maxD <= 0 {
		maxD = DefaultMaxThreshold
	}
	res := Result{}
	best := Breakdown{Total: math.Inf(1)}
	for d := 0; d <= maxD; d++ {
		pi, err := chain.Stationary(cfg.Model, cfg.Params, d)
		if err != nil {
			return Result{}, err
		}
		rings := cfg.Model.Grid().RingSizes(d)
		for m := 1; m <= d+1; m++ {
			part := cfg.scheme().Partition(rings, pi, m)
			if part.ExpectedDelay(pi) > meanDelay {
				continue
			}
			mcfg := cfg
			mcfg.MaxDelay = m
			b := mcfg.evaluateWith(pi, d)
			res.Evaluations++
			if b.Total < best.Total {
				best = b
			}
		}
	}
	if math.IsInf(best.Total, 1) {
		return Result{}, fmt.Errorf("core: no operating point meets mean delay %v", meanDelay)
	}
	res.Best = best
	return res, nil
}
