package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/paging"
	"repro/internal/paperdata"
)

func tableConfig(model chain.Model, u float64, delay int, legacy bool) Config {
	return Config{
		Model:          model,
		Params:         chain.Params{Q: paperdata.TableMoveProb, C: paperdata.TableCallProb},
		Costs:          Costs{Update: u, Poll: paperdata.TablePollCost},
		MaxDelay:       delay,
		LegacyZeroRate: legacy,
	}
}

func TestEvaluateHandWorkedExamples(t *testing.T) {
	// 1-D, q=0.05, c=0.01, U=20, V=10, d=1, m=1 (Table 1 row U=20):
	// Cu = (q/(2q+c))·(q/2)·U, Cv = c·g(1)·V.
	b, err := tableConfig(chain.OneDim, 20, 1, false).Evaluate(1)
	if err != nil {
		t.Fatal(err)
	}
	wantCu := (0.05 / 0.11) * 0.025 * 20
	if math.Abs(b.Update-wantCu) > 1e-12 {
		t.Errorf("Cu = %v, want %v", b.Update, wantCu)
	}
	if math.Abs(b.Paging-0.3) > 1e-12 {
		t.Errorf("Cv = %v, want 0.3", b.Paging)
	}
	if math.Abs(b.Total-0.52727272727) > 1e-9 {
		t.Errorf("C_T = %v, want 0.527...", b.Total)
	}
	if b.MaxCycles != 1 || math.Abs(b.ExpectedDelay-1) > 1e-12 {
		t.Errorf("delay stats wrong: %+v", b)
	}

	// 2-D exact, U=1000, d=3, m=1 (Table 2): C_T = 6.056.
	b, err = tableConfig(chain.TwoDimExact, 1000, 1, false).Evaluate(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Total-6.056) > 5e-4 {
		t.Errorf("2-D C_T = %v, want 6.056", b.Total)
	}
}

func TestEvaluateDelayConstraintRespected(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 100, 3, false)
	for d := 0; d <= 12; d++ {
		b, err := cfg.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		if b.MaxCycles > 3 {
			t.Errorf("d=%d: %d polling cycles exceed m=3", d, b.MaxCycles)
		}
		if b.ExpectedDelay > float64(b.MaxCycles)+1e-12 || b.ExpectedDelay < 1-1e-12 {
			t.Errorf("d=%d: expected delay %v outside [1, %d]", d, b.ExpectedDelay, b.MaxCycles)
		}
	}
}

// TestReproduceTable1 checks every cell of the paper's Table 1 (with the
// legacy d=0 rate the published numbers require).
func TestReproduceTable1(t *testing.T) {
	for _, row := range paperdata.Table1 {
		for col, m := range paperdata.Table1Delays {
			cfg := tableConfig(chain.OneDim, row.U, m, true)
			res, err := Scan(cfg, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Best.Threshold != row.D[col] {
				t.Errorf("U=%v m=%d: d* = %d, paper %d", row.U, m, res.Best.Threshold, row.D[col])
			}
			if math.Abs(res.Best.Total-row.CT[col]) > 5e-4 {
				t.Errorf("U=%v m=%d: C_T = %.4f, paper %.3f", row.U, m, res.Best.Total, row.CT[col])
			}
		}
	}
}

// TestReproduceTable2Exact checks the exact d*/C_T columns of Table 2.
func TestReproduceTable2Exact(t *testing.T) {
	for _, row := range paperdata.Table2 {
		for col, m := range paperdata.Table2Delays {
			cfg := tableConfig(chain.TwoDimExact, row.U, m, false)
			res, err := Scan(cfg, 60)
			if err != nil {
				t.Fatal(err)
			}
			cell := row.Cells[col]
			if res.Best.Threshold != cell.DStar {
				t.Errorf("U=%v m=%d: d* = %d, paper %d", row.U, m, res.Best.Threshold, cell.DStar)
			}
			if math.Abs(res.Best.Total-cell.CT) > 5e-4 {
				t.Errorf("U=%v m=%d: C_T = %.4f, paper %.3f", row.U, m, res.Best.Total, cell.CT)
			}
		}
	}
}

// TestReproduceTable2NearOptimal checks the d′/C′_T columns of Table 2:
// the uncorrected near-optimal pipeline with the legacy zero rate.
func TestReproduceTable2NearOptimal(t *testing.T) {
	for _, row := range paperdata.Table2 {
		for col, m := range paperdata.Table2Delays {
			cfg := tableConfig(chain.TwoDimExact, row.U, m, true)
			res, err := NearOptimal(cfg, 60, false)
			if err != nil {
				t.Fatal(err)
			}
			cell := row.Cells[col]
			if res.Best.Threshold != cell.DNear {
				t.Errorf("U=%v m=%d: d′ = %d, paper %d", row.U, m, res.Best.Threshold, cell.DNear)
			}
			if math.Abs(res.Best.Total-cell.CTNear) > 5e-4 {
				t.Errorf("U=%v m=%d: C′_T = %.4f, paper %.3f", row.U, m, res.Best.Total, cell.CTNear)
			}
		}
	}
}

func TestNearOptimalCorrectionFixesZero(t *testing.T) {
	// Paper Section 7: the uncorrected pipeline picks d′=0 at U=20 (2-D,
	// m=1) and pays 1.100 where the optimum is 0.968 at d=1; the corrected
	// pipeline must pick 1.
	cfg := tableConfig(chain.TwoDimExact, 20, 1, true)
	un, err := NearOptimal(cfg, 60, false)
	if err != nil {
		t.Fatal(err)
	}
	if un.Best.Threshold != 0 || math.Abs(un.Best.Total-1.100) > 5e-4 {
		t.Fatalf("uncorrected: %+v", un.Best)
	}
	co, err := NearOptimal(cfg, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	if co.Best.Threshold != 1 || math.Abs(co.Best.Total-0.968) > 5e-4 {
		t.Errorf("corrected: %+v", co.Best)
	}
}

func TestNearOptimalWithinOneRing(t *testing.T) {
	// Paper Section 7: "the differences between d* and d′ are within 1
	// from each other almost all the time". With the correction applied,
	// assert it holds across Table 2's whole parameter range.
	for _, row := range paperdata.Table2 {
		for _, m := range paperdata.Table2Delays {
			exact, err := Scan(tableConfig(chain.TwoDimExact, row.U, m, false), 60)
			if err != nil {
				t.Fatal(err)
			}
			near, err := NearOptimal(tableConfig(chain.TwoDimExact, row.U, m, true), 60, true)
			if err != nil {
				t.Fatal(err)
			}
			diff := exact.Best.Threshold - near.Best.Threshold
			if diff < 0 {
				diff = -diff
			}
			if diff > 2 {
				t.Errorf("U=%v m=%d: d*=%d vs corrected d′=%d", row.U, m, exact.Best.Threshold, near.Best.Threshold)
			}
		}
	}
}

func TestScanCurveShape(t *testing.T) {
	cfg := tableConfig(chain.OneDim, 100, 2, false)
	res, err := Scan(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 41 || res.Evaluations != 41 {
		t.Fatalf("curve len %d, evals %d", len(res.Curve), res.Evaluations)
	}
	// The best cost must be the curve minimum.
	min := math.Inf(1)
	for _, v := range res.Curve {
		if v < min {
			min = v
		}
	}
	if res.Best.Total != min {
		t.Errorf("Best.Total = %v, curve min = %v", res.Best.Total, min)
	}
	if res.Curve[res.Best.Threshold] != min {
		t.Errorf("curve at d* = %v, min = %v", res.Curve[res.Best.Threshold], min)
	}
}

func TestScanDefaultBound(t *testing.T) {
	res, err := Scan(tableConfig(chain.OneDim, 10, 1, false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != DefaultMaxThreshold+1 {
		t.Errorf("default scan bound: %d", len(res.Curve)-1)
	}
}

func TestAnnealMatchesScan(t *testing.T) {
	// Annealing is stochastic but with the default schedule and a modest
	// search space it should land on (or extremely near) the scan optimum.
	cases := []struct {
		model chain.Model
		u     float64
		m     int
	}{
		{chain.OneDim, 100, 1},
		{chain.OneDim, 500, 3},
		{chain.TwoDimExact, 300, 0},
		{chain.TwoDimExact, 50, 3},
	}
	for _, tc := range cases {
		cfg := tableConfig(tc.model, tc.u, tc.m, false)
		scan, err := Scan(cfg, 60)
		if err != nil {
			t.Fatal(err)
		}
		ann, err := Anneal(cfg, AnnealOptions{MaxThreshold: 60, Seed: 7, Y: 200, ExitT: 0.005})
		if err != nil {
			t.Fatal(err)
		}
		if ann.Best.Total > scan.Best.Total*1.02+1e-9 {
			t.Errorf("%v U=%v m=%d: anneal %v (d=%d) vs scan %v (d=%d)",
				tc.model, tc.u, tc.m, ann.Best.Total, ann.Best.Threshold,
				scan.Best.Total, scan.Best.Threshold)
		}
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	cfg := tableConfig(chain.TwoDimExact, 200, 2, false)
	a, err := Anneal(cfg, AnnealOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(cfg, AnnealOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Evaluations != b.Evaluations {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestAnnealMemoizes(t *testing.T) {
	cfg := tableConfig(chain.OneDim, 100, 1, false)
	res, err := Anneal(cfg, AnnealOptions{MaxThreshold: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 11 {
		t.Errorf("%d evaluations for an 11-point space", res.Evaluations)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{Model: chain.OneDim, Params: chain.Params{Q: -1}, Costs: Costs{1, 1}},
		{Model: chain.OneDim, Params: chain.Params{Q: 0.1}, Costs: Costs{-1, 1}},
		{Model: chain.OneDim, Params: chain.Params{Q: 0.1}, Costs: Costs{1, -1}},
		{Model: chain.OneDim, Params: chain.Params{Q: 0.1}, Costs: Costs{1, math.NaN()}},
		{Model: chain.OneDim, Params: chain.Params{Q: 0.1}, Costs: Costs{1, 1}, MaxDelay: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := cfg.Evaluate(1); err == nil {
			t.Errorf("case %d: Evaluate accepted invalid config", i)
		}
		if _, err := Scan(cfg, 10); err == nil {
			t.Errorf("case %d: Scan accepted invalid config", i)
		}
		if _, err := NearOptimal(cfg, 10, true); err == nil {
			t.Errorf("case %d: NearOptimal accepted invalid config", i)
		}
		if _, err := Anneal(cfg, AnnealOptions{}); err == nil {
			t.Errorf("case %d: Anneal accepted invalid config", i)
		}
	}
}

func TestCustomSchemeUsed(t *testing.T) {
	// With the DP-optimal partitioner the cost can only improve on SDF.
	base := tableConfig(chain.TwoDimExact, 300, 2, false)
	sdf, err := Scan(base, 30)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.Scheme = paging.OptimalDP{}
	dp, err := Scan(opt, 30)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Best.Total > sdf.Best.Total+1e-9 {
		t.Errorf("DP scheme cost %v worse than SDF %v", dp.Best.Total, sdf.Best.Total)
	}
}

func TestCostPropertyTotalIsSum(t *testing.T) {
	f := func(qr, cr uint16, ur uint8, dr, mr uint8) bool {
		q := float64(qr)/65535.0*0.8 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.5
		u := float64(ur) * 5
		d := int(dr % 20)
		m := int(mr % 5)
		cfg := Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: q, C: c},
			Costs:    Costs{Update: u, Poll: 10},
			MaxDelay: m,
		}
		b, err := cfg.Evaluate(d)
		if err != nil {
			return false
		}
		if math.Abs(b.Total-(b.Update+b.Paging)) > 1e-12 {
			return false
		}
		return b.Update >= 0 && b.Paging >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDelayTwoClosesHalfGap asserts the paper's headline conclusion
// (Section 8): raising the delay bound from 1 to 2 polling cycles lowers
// the optimal cost to (at least) roughly half way between its m=1 and
// unbounded values.
func TestDelayTwoClosesHalfGap(t *testing.T) {
	for _, model := range []chain.Model{chain.OneDim, chain.TwoDimExact} {
		for _, u := range []float64{50, 100, 300, 1000} {
			c1, err := Scan(tableConfig(model, u, 1, false), 80)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := Scan(tableConfig(model, u, 2, false), 80)
			if err != nil {
				t.Fatal(err)
			}
			cInf, err := Scan(tableConfig(model, u, 0, false), 80)
			if err != nil {
				t.Fatal(err)
			}
			halfway := (c1.Best.Total + cInf.Best.Total) / 2
			if c2.Best.Total > halfway*1.10 {
				t.Errorf("%v U=%v: C_T(m=2)=%v above halfway %v (C1=%v, C∞=%v)",
					model, u, c2.Best.Total, halfway, c1.Best.Total, cInf.Best.Total)
			}
		}
	}
}
