// Package server is the HTTP face of the job service: a JSON API over
// jobs.Manager (submit, get, list, cancel, result), NDJSON streaming of
// a job's telemetry as it runs, and the operational endpoints a daemon
// needs (/healthz, /readyz, Prometheus-text /metrics).
//
// The API maps the manager's failure modes onto conventional statuses:
// a full queue is 429 (backpressure, the client should retry later), an
// unknown job 404, a result requested before completion 409, shutdown
// 503. Every error body is a one-field JSON object {"error": "..."}.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/results"
	"repro/internal/telemetry"
)

// Options configures a Server; the zero value selects the defaults.
type Options struct {
	// StreamInterval is the cadence of progress frames on the NDJSON
	// stream while a job runs; 0 means 500ms.
	StreamInterval time.Duration
	// Clock stamps the metrics rate window; nil means time.Now.
	Clock func() time.Time
	// Results is the analytics table POST /query answers from — the same
	// store the manager ingests done jobs into. Nil disables the endpoint
	// (503), for deployments that run the manager without analytics.
	Results *results.Store
	// Cluster, when set, makes this server the coordinator control
	// plane: worker register/heartbeat endpoints, the /cluster status
	// document, and per-node Prometheus series.
	Cluster *cluster.Coordinator
	// Worker, when set, exposes the slice lease endpoint this node
	// serves a coordinator from.
	Worker *cluster.Worker
}

// Server serves the job API for one jobs.Manager.
type Server struct {
	mgr  *jobs.Manager
	opts Options
	mux  *http.ServeMux

	// ready gates /readyz: the daemon flips it false when shutdown
	// begins so load balancers drain before the listener closes.
	ready atomic.Bool

	// scrape state for the terminal-slots/s gauge; see metrics.go.
	scrape scrapeState

	// drain estimates the job-completion rate to stamp Retry-After on
	// backpressure responses; see drain.go.
	drain drainEstimator
}

// New builds a Server over the manager. The server starts ready.
func New(mgr *jobs.Manager, opts Options) *Server {
	if opts.StreamInterval <= 0 {
		opts.StreamInterval = 500 * time.Millisecond
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	s := &Server{mgr: mgr, opts: opts, mux: http.NewServeMux()}
	s.ready.Store(true)

	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Cluster != nil {
		s.mux.HandleFunc("POST /api/v1/cluster/register", s.handleClusterRegister)
		s.mux.HandleFunc("POST /api/v1/cluster/heartbeat", s.handleClusterHeartbeat)
		s.mux.HandleFunc("GET /cluster", s.handleClusterStatus)
	}
	if opts.Worker != nil {
		s.mux.Handle("POST /api/v1/slices", opts.Worker.SliceHandler())
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady flips the /readyz signal; the daemon calls SetReady(false)
// when graceful shutdown begins.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// writeJSON writes v as an indented JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a manager error onto its HTTP status and a JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrShuttingDown), errors.Is(err, jobs.ErrRecovering):
		status = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrNotDone):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("invalid job spec: %v", err)})
		return
	}
	v, err := s.mgr.Submit(spec)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			// Backpressure: tell the client when a queue slot is likely
			// to free up, from the observed job-completion rate.
			s.drain.observe(s.opts.Clock(), terminalJobs(s.mgr.Stats()))
			w.Header().Set("Retry-After", strconv.Itoa(s.drain.retryAfter()))
			writeError(w, err)
			return
		}
		if errors.Is(err, jobs.ErrShuttingDown) || errors.Is(err, jobs.ErrRecovering) {
			writeError(w, err)
			return
		}
		// Validation failures are the client's fault.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"schema": jobs.SpecSchema,
		"jobs":   s.mgr.List(),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, err := s.mgr.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	// The stored bytes are the determinism guarantee: they are written
	// verbatim, never re-encoded, so the client receives exactly what
	// pcnsim -json would have printed for the same spec.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// handleQuery answers an analytics query against the results table. The
// response is deterministic for a given table content (canonical row
// order, sorted groups — see the results package), so two daemons over
// the same completed sweep answer byte-identically; the CI restart leg
// holds pcnserve to that across a journal-replay reboot.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.opts.Results == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "results store not configured"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("reading query request: %v", err)})
		return
	}
	req, err := results.DecodeRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.opts.Results.Query(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Journal replay runs before the manager accepts work: a freshly
	// restarted daemon serves traffic (health, metrics, job reads) but
	// reports itself unready, as "recovering" rather than "draining", so
	// an operator can tell a booting instance from a stopping one.
	if s.mgr.Recovering() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
		return
	}
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// StreamFrame is one NDJSON line of a job stream. Frames come in three
// types, all carrying the job id and lifecycle state at emission time:
//
//   - "state": emitted once when the stream opens and once per observed
//     state change.
//   - "progress": emitted every StreamInterval while the job runs, with
//     the live telemetry snapshot (terminal-slots completed and the
//     per-shard positions).
//   - "result": the final frame. For a done job it embeds the full
//     report document; for failed jobs it carries the error.
type StreamFrame struct {
	Type  string     `json:"type"`
	Job   string     `json:"job"`
	State jobs.State `json:"state"`

	TerminalSlots      int64                   `json:"terminal_slots,omitempty"`
	TotalTerminalSlots int64                   `json:"total_terminal_slots,omitempty"`
	Shards             []telemetry.ShardStatus `json:"shards,omitempty"`

	Error  string          `json:"error,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

// handleStream serves the job's life as newline-delimited JSON: a state
// frame now, progress frames on a ticker while it runs, state frames on
// transitions, and a final result frame when it lands — then the
// connection closes. A client disconnect just stops the stream; the job
// itself is unaffected.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	done, err := s.mgr.Done(id)
	if err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(f StreamFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	last := v.State
	if !emit(StreamFrame{Type: "state", Job: id, State: v.State}) {
		return
	}
	ticker := time.NewTicker(s.opts.StreamInterval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			s.emitResult(id, emit)
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			v, err := s.mgr.Get(id)
			if err != nil {
				return
			}
			if v.State != last {
				last = v.State
				if !emit(StreamFrame{Type: "state", Job: id, State: v.State}) {
					return
				}
			}
			if v.State == jobs.StateRunning {
				ok := emit(StreamFrame{
					Type:               "progress",
					Job:                id,
					State:              v.State,
					TerminalSlots:      v.TerminalSlots,
					TotalTerminalSlots: v.TotalTerminalSlots,
					Shards:             v.Shards,
				})
				if !ok {
					return
				}
			}
		}
	}
}

// emitResult writes the terminal frame for a finished job.
func (s *Server) emitResult(id string, emit func(StreamFrame) bool) {
	v, err := s.mgr.Get(id)
	if err != nil {
		return
	}
	f := StreamFrame{
		Type:               "result",
		Job:                id,
		State:              v.State,
		TerminalSlots:      v.TerminalSlots,
		TotalTerminalSlots: v.TotalTerminalSlots,
		Error:              v.Error,
	}
	if v.State == jobs.StateDone {
		if raw, err := s.mgr.Result(id); err == nil {
			f.Report = raw
		}
	}
	emit(f)
}
