package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestClusterExchange drives the coordinator control plane end to end
// over HTTP: register, heartbeat, the unknown-id re-register signal, the
// /cluster document, per-node metrics — and a distributed job submitted
// through the normal jobs API whose result must be byte-identical to the
// same spec run on a plain single-node server.
func TestClusterExchange(t *testing.T) {
	spec := testSpec()

	// Reference result from a plain server.
	plain, _ := newTestServer(t, jobs.Options{}, Options{})
	status, raw := doJSON(t, http.MethodPost, plain.URL+"/api/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	var pv jobs.View
	if err := json.Unmarshal(raw, &pv); err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, plain.URL, pv.ID); final.State != jobs.StateDone {
		t.Fatalf("single-node job finished %s (%s)", final.State, final.Error)
	}
	status, want := doJSON(t, http.MethodGet, plain.URL+"/api/v1/jobs/"+pv.ID+"/result", nil)
	if status != http.StatusOK {
		t.Fatalf("single-node result: status %d", status)
	}

	// Coordinator server plus two worker servers, wired the way
	// pcnserve -coordinator / -worker wires them. The generous registry
	// timeout stands in for the heartbeat loop Worker.Run would drive.
	coord := cluster.NewCoordinator(cluster.NewRegistry(time.Minute, nil), cluster.Options{})
	coordSrv, _ := newTestServer(t,
		jobs.Options{Runner: coord}, Options{Cluster: coord})

	for i := 0; i < 2; i++ {
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			Join:        coordSrv.URL,
			Advertise:   "http://advertise.invalid", // real URL registered below
			StreamEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wsrv, _ := newTestServer(t, jobs.Options{}, Options{Worker: w})

		// Join through the real endpoints, as Worker.Run would.
		status, body := doJSON(t, http.MethodPost, coordSrv.URL+"/api/v1/cluster/register",
			cluster.RegisterRequest{Schema: cluster.WireSchema, Addr: wsrv.URL})
		if status != http.StatusOK {
			t.Fatalf("register: %d %s", status, body)
		}
		var rr cluster.RegisterResponse
		if err := json.Unmarshal(body, &rr); err != nil || rr.ID == "" {
			t.Fatalf("register response %s: %v", body, err)
		}
		if st, _ := doJSON(t, http.MethodPost, coordSrv.URL+"/api/v1/cluster/heartbeat",
			cluster.HeartbeatRequest{Schema: cluster.WireSchema, ID: rr.ID}); st != http.StatusNoContent {
			t.Fatalf("heartbeat: %d", st)
		}
	}
	// A malformed address and a heartbeat for an id the coordinator never
	// issued are both client errors; the latter is the re-register signal.
	if st, _ := doJSON(t, http.MethodPost, coordSrv.URL+"/api/v1/cluster/register",
		cluster.RegisterRequest{Schema: cluster.WireSchema, Addr: "not a url"}); st != http.StatusBadRequest {
		t.Fatalf("bad-addr register: %d, want 400", st)
	}
	if st, _ := doJSON(t, http.MethodPost, coordSrv.URL+"/api/v1/cluster/heartbeat",
		cluster.HeartbeatRequest{Schema: cluster.WireSchema, ID: "n999"}); st != http.StatusNotFound {
		t.Fatalf("unknown-node heartbeat: %d, want 404", st)
	}

	// The same spec through the coordinator's jobs API.
	status, raw = doJSON(t, http.MethodPost, coordSrv.URL+"/api/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("distributed submit: status %d: %s", status, raw)
	}
	var dv jobs.View
	if err := json.Unmarshal(raw, &dv); err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, coordSrv.URL, dv.ID); final.State != jobs.StateDone {
		t.Fatalf("distributed job finished %s (%s)", final.State, final.Error)
	}
	status, got := doJSON(t, http.MethodGet, coordSrv.URL+"/api/v1/jobs/"+dv.ID+"/result", nil)
	if status != http.StatusOK {
		t.Fatalf("distributed result: status %d", status)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("distributed result diverged from the single-node result")
	}

	// The /cluster document reflects the fleet and the finished job.
	status, body := doJSON(t, http.MethodGet, coordSrv.URL+"/cluster", nil)
	if status != http.StatusOK {
		t.Fatalf("/cluster: %d %s", status, body)
	}
	var doc cluster.Status
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != cluster.WireSchema || len(doc.Nodes) != 2 {
		t.Fatalf("/cluster document: %s", body)
	}
	if len(doc.Leases) != 0 || doc.Releases != 0 {
		t.Fatalf("leftover leases after a clean run: %s", body)
	}
	var partials int64
	for _, n := range doc.Nodes {
		if !n.Alive {
			t.Errorf("node %s not alive in /cluster", n.ID)
		}
		partials += n.Partials
	}
	if partials != int64(spec.Shards) {
		t.Fatalf("nodes delivered %d partials, want %d", partials, spec.Shards)
	}

	// Per-node Prometheus series on the coordinator's /metrics.
	metrics := getBody(t, coordSrv.URL+"/metrics")
	for _, line := range []string{
		"pcnserve_cluster_nodes 2",
		"pcnserve_cluster_active_leases 0",
		"pcnserve_cluster_releases_total 0",
		`pcnserve_cluster_node_up{node="n001"`,
		`pcnserve_cluster_node_dispatches_total{node="n001"} 1`,
		`pcnserve_cluster_node_partials_total{node="n002"} 1`,
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("coordinator /metrics missing %q", line)
		}
	}
}

// TestClusterEndpointsAbsentOnPlainServer: a daemon started without a
// cluster role must not expose the cluster surface at all.
func TestClusterEndpointsAbsentOnPlainServer(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{}, Options{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/cluster"},
		{http.MethodPost, "/api/v1/cluster/register"},
		{http.MethodPost, "/api/v1/cluster/heartbeat"},
		{http.MethodPost, "/api/v1/slices"},
	} {
		status, _ := doJSON(t, probe.method, srv.URL+probe.path, nil)
		if status != http.StatusNotFound {
			t.Errorf("%s %s on a plain server: %d, want 404", probe.method, probe.path, status)
		}
	}
	if metrics := getBody(t, srv.URL+"/metrics"); strings.Contains(metrics, "pcnserve_cluster_") ||
		strings.Contains(metrics, "pcnserve_worker_slices_") {
		t.Error("plain server exposes cluster metric series")
	}
}

// TestWorkerServerServesSliceAndMetrics: a worker-role server exposes the
// slice endpoint and its own served/failed counters.
func TestWorkerServerServesSliceAndMetrics(t *testing.T) {
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Join:        "http://coordinator.invalid",
		Advertise:   "http://advertise.invalid",
		StreamEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wsrv, _ := newTestServer(t, jobs.Options{}, Options{Worker: w})

	spec := testSpec()
	shards := spec.ResolvedShards()
	status, raw := doJSON(t, http.MethodPost, wsrv.URL+"/api/v1/slices", cluster.SliceRequest{
		Schema: cluster.WireSchema, Job: "j000001",
		SpecRev: cluster.SpecRevision(spec, shards),
		Spec:    spec, Shards: shards, Lo: 0, Hi: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("slice: %d %s", status, raw)
	}
	var sawPartial bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var fr cluster.SliceFrame
		if err := json.Unmarshal([]byte(line), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		switch fr.Type {
		case cluster.FramePartial:
			sawPartial = true
			if _, err := fr.Partial.Decode(); err != nil {
				t.Fatalf("partial does not decode: %v", err)
			}
		case cluster.FrameError:
			t.Fatalf("worker reported: %s", fr.Error)
		}
	}
	if !sawPartial {
		t.Fatalf("stream never delivered a partial:\n%s", raw)
	}
	if !strings.Contains(getBody(t, wsrv.URL+"/metrics"), "pcnserve_worker_slices_served_total 1") {
		t.Error("worker /metrics does not count the served slice")
	}
}
