package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// TestReadyzRecoveringPhase: a daemon whose manager has not finished
// journal replay reports "recovering" (distinct from "draining") and
// rejects submissions with 503, then flips to ok once recovery lands.
func TestReadyzRecoveringPhase(t *testing.T) {
	mgr := jobs.New(jobs.Options{QueueDepth: 4, Workers: 1, DataDir: t.TempDir()})
	srv := httptest.NewServer(New(mgr, Options{Clock: fixedClock}))
	defer srv.Close()
	defer mgr.Shutdown(context.Background())

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || strings.TrimSpace(body) != "recovering" {
		t.Fatalf("/readyz before Recover: %d %q, want 503 recovering", status, body)
	}
	if status, body := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec()); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while recovering: %d %s, want 503", status, body)
	}
	if status, body := get("/metrics"); status != http.StatusOK || !strings.Contains(body, "pcnserve_recovering 1") {
		t.Fatalf("/metrics while recovering: %d, want pcnserve_recovering 1", status)
	}

	if err := mgr.Recover(); err != nil {
		t.Fatal(err)
	}
	if status, body := get("/readyz"); status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/readyz after Recover: %d %q, want 200 ok", status, body)
	}
	status, body := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	if status != http.StatusAccepted {
		t.Fatalf("submit after Recover: %d %s", status, body)
	}
	if status, body := get("/metrics"); status != http.StatusOK ||
		!strings.Contains(body, "pcnserve_recovering 0") ||
		!strings.Contains(body, "pcnserve_journal_bytes") ||
		!strings.Contains(body, "pcnserve_jobs_resumed_total") {
		t.Fatalf("/metrics after Recover missing durability series: %d\n%s", status, body)
	}
}
