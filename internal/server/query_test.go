package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/results"
)

// TestQueryEndpoint drives the analytics path end to end over HTTP: a
// job submitted and completed through the API must be answerable via
// POST /query, with the validation errors surfacing as 400s.
func TestQueryEndpoint(t *testing.T) {
	store := results.NewStore()
	srv, _ := newTestServer(t,
		jobs.Options{QueueDepth: 4, Workers: 1, Results: store},
		Options{Results: store})

	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, srv.URL, v.ID); final.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}

	query := map[string]any{
		"schema":     results.QuerySchema,
		"filter":     []map[string]any{{"column": "job", "op": "eq", "value": v.ID}},
		"group_by":   []string{"scenario", "d"},
		"aggregates": []map[string]any{{"op": "count"}, {"op": "mean", "column": "total_cost"}},
	}
	status, raw = doJSON(t, http.MethodPost, srv.URL+"/query", query)
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, raw)
	}
	var resp results.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode response: %v\n%s", err, raw)
	}
	if resp.Schema != results.QuerySchema || resp.RowsScanned != 1 || resp.RowsMatched != 1 {
		t.Fatalf("response = %s", raw)
	}
	if len(resp.Groups) != 1 || resp.Groups[0].Values[0] != float64(1) {
		t.Fatalf("groups = %s", raw)
	}

	// Validation failures surface as 400 with the enumerating message.
	for name, body := range map[string]string{
		"unknown column": `{"filter":[{"column":"nope","op":"eq","value":1}],"aggregates":[{"op":"count"}]}`,
		"no aggregates":  `{"group_by":["d"]}`,
		"metric grouped": `{"group_by":["total_cost"],"aggregates":[{"op":"count"}]}`,
		"not json":       `{{{`,
	} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, hr.StatusCode)
		}
	}

	// GET is not part of the endpoint's contract.
	status, _ = doJSON(t, http.MethodGet, srv.URL+"/query", nil)
	if status != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", status)
	}
}

// TestQueryEndpointDisabled: a server without a results store refuses
// queries instead of answering from nothing.
func TestQueryEndpointDisabled(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{QueueDepth: 4, Workers: 1}, Options{})
	status, raw := doJSON(t, http.MethodPost, srv.URL+"/query",
		map[string]any{"aggregates": []map[string]any{{"op": "count"}}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query without store: status %d: %s", status, raw)
	}
}
