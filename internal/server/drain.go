package server

import (
	"math"
	"sync"
	"time"
)

// drainEstimator turns the manager's cumulative terminal-job counter
// into a Retry-After hint for 429 responses. Each observation folds the
// completion rate over the window since the previous one into an EWMA;
// the advised wait is the expected time for one queue slot to free up
// (1/rate seconds), clamped to a sane range. With no signal yet — first
// scrape, or a service that has not finished a job recently — it falls
// back to a fixed hint rather than advising 0 or infinity.
type drainEstimator struct {
	mu       sync.Mutex
	lastTime time.Time
	lastDone int64
	rate     float64 // EWMA of completed jobs per second
}

const (
	// drainAlpha weights the newest window; 0.5 tracks load shifts
	// within a few observations without thrashing on a single burst.
	drainAlpha = 0.5
	// drainFallbackSeconds is advised when no completion rate is known.
	drainFallbackSeconds = 5
	// drainMinSeconds / drainMaxSeconds bound the advice: never tell a
	// client "retry immediately" while the queue is full, and never
	// push it out more than ten minutes.
	drainMinSeconds = 1
	drainMaxSeconds = 600
)

// observe folds a (now, cumulative terminal-job count) sample.
func (d *drainEstimator) observe(now time.Time, done int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lastTime.IsZero() {
		d.lastTime, d.lastDone = now, done
		return
	}
	dt := now.Sub(d.lastTime).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(done-d.lastDone) / dt
	d.rate = drainAlpha*inst + (1-drainAlpha)*d.rate
	d.lastTime, d.lastDone = now, done
}

// retryAfter returns the advised wait in whole seconds.
func (d *drainEstimator) retryAfter() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rate <= 0 {
		return drainFallbackSeconds
	}
	secs := int(math.Ceil(1 / d.rate))
	if secs < drainMinSeconds {
		return drainMinSeconds
	}
	if secs > drainMaxSeconds {
		return drainMaxSeconds
	}
	return secs
}
