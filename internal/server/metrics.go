package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
)

// scrapeState remembers the previous /metrics scrape so the
// terminal-slots/s gauge can report the throughput over the last scrape
// window without any background sampling goroutine.
type scrapeState struct {
	mu        sync.Mutex
	lastTime  time.Time
	lastSlots int64
	lastRate  float64
}

// rate folds a new (time, cumulative terminal-slots) sample and returns
// the slots/s over the window since the previous scrape; the first
// scrape reports 0. A zero-length window re-reports the previous rate
// rather than dividing by zero.
func (sc *scrapeState) rate(now time.Time, slots int64) float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.lastTime.IsZero() {
		sc.lastTime, sc.lastSlots, sc.lastRate = now, slots, 0
		return 0
	}
	dt := now.Sub(sc.lastTime).Seconds()
	if dt <= 0 {
		return sc.lastRate
	}
	rate := float64(slots-sc.lastSlots) / dt
	sc.lastTime, sc.lastSlots, sc.lastRate = now, slots, rate
	return rate
}

// terminalJobs counts jobs that have reached an end state — the signal
// the drain estimator integrates into a completion rate.
func terminalJobs(st jobs.Stats) int64 {
	var n int64
	for state, count := range st.States {
		if state.Terminal() {
			n += count
		}
	}
	return n
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// handleMetrics serves the operational counters in Prometheus text
// exposition format: queue depth and capacity, worker occupancy,
// per-state job counts, the cumulative terminal-slot counter (exact for
// finished jobs plus live telemetry.Progress for running ones), the
// terminal-slots/s throughput over the last scrape window, and the
// durability counters (journal size, replay and resume totals).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	now := s.opts.Clock()
	rate := s.scrape.rate(now, st.TerminalSlots)
	s.drain.observe(now, terminalJobs(st))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP pcnserve_queue_depth Jobs waiting in the bounded submission queue.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_queue_depth gauge\n")
	fmt.Fprintf(w, "pcnserve_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP pcnserve_queue_capacity Capacity of the submission queue.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_queue_capacity gauge\n")
	fmt.Fprintf(w, "pcnserve_queue_capacity %d\n", st.QueueCap)
	fmt.Fprintf(w, "# HELP pcnserve_workers Size of the simulation worker pool.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_workers gauge\n")
	fmt.Fprintf(w, "pcnserve_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# HELP pcnserve_workers_busy Workers currently running a job.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_workers_busy gauge\n")
	fmt.Fprintf(w, "pcnserve_workers_busy %d\n", st.BusyWorkers)
	fmt.Fprintf(w, "# HELP pcnserve_jobs Jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_jobs gauge\n")
	for _, state := range jobs.States() {
		fmt.Fprintf(w, "pcnserve_jobs{state=%q} %d\n", string(state), st.States[state])
	}
	fmt.Fprintf(w, "# HELP pcnserve_terminal_slots_total Cumulative terminal-slots simulated across all jobs.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_terminal_slots_total counter\n")
	fmt.Fprintf(w, "pcnserve_terminal_slots_total %d\n", st.TerminalSlots)
	fmt.Fprintf(w, "# HELP pcnserve_terminal_slots_per_second Simulation throughput over the last scrape window.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_terminal_slots_per_second gauge\n")
	fmt.Fprintf(w, "pcnserve_terminal_slots_per_second %g\n", rate)
	fmt.Fprintf(w, "# HELP pcnserve_recovering Whether journal replay is still in progress (1 during boot recovery).\n")
	fmt.Fprintf(w, "# TYPE pcnserve_recovering gauge\n")
	fmt.Fprintf(w, "pcnserve_recovering %d\n", boolGauge(st.Recovering))
	fmt.Fprintf(w, "# HELP pcnserve_journal_bytes Size of the durable job journal on disk.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_journal_bytes gauge\n")
	fmt.Fprintf(w, "pcnserve_journal_bytes %d\n", st.JournalBytes)
	fmt.Fprintf(w, "# HELP pcnserve_journal_records Records in the durable job journal.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_journal_records gauge\n")
	fmt.Fprintf(w, "pcnserve_journal_records %d\n", st.JournalRecords)
	fmt.Fprintf(w, "# HELP pcnserve_journal_replayed_records_total Journal records replayed during the last boot recovery.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_journal_replayed_records_total counter\n")
	fmt.Fprintf(w, "pcnserve_journal_replayed_records_total %d\n", st.ReplayedRecords)
	fmt.Fprintf(w, "# HELP pcnserve_jobs_recovered_total Interrupted or queued jobs re-enqueued by boot recovery.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_jobs_recovered_total counter\n")
	fmt.Fprintf(w, "pcnserve_jobs_recovered_total %d\n", st.RecoveredJobs)
	fmt.Fprintf(w, "# HELP pcnserve_jobs_resumed_total Runs resumed from a persisted checkpoint instead of restarting.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_jobs_resumed_total counter\n")
	fmt.Fprintf(w, "pcnserve_jobs_resumed_total %d\n", st.ResumedJobs)
	fmt.Fprintf(w, "# HELP pcnserve_checkpoints_written_total Checkpoint files persisted.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_checkpoints_written_total counter\n")
	fmt.Fprintf(w, "pcnserve_checkpoints_written_total %d\n", st.CheckpointsWritten)
	fmt.Fprintf(w, "# HELP pcnserve_checkpoint_fallbacks_total Resumes abandoned for a clean run (unreadable or rejected checkpoint).\n")
	fmt.Fprintf(w, "# TYPE pcnserve_checkpoint_fallbacks_total counter\n")
	fmt.Fprintf(w, "pcnserve_checkpoint_fallbacks_total %d\n", st.CheckpointFallbacks)
	fmt.Fprintf(w, "# HELP pcnserve_journal_errors_total Failed best-effort journal or checkpoint writes.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_journal_errors_total counter\n")
	fmt.Fprintf(w, "pcnserve_journal_errors_total %d\n", st.JournalErrors)
	fmt.Fprintf(w, "# HELP pcnserve_results_rows Rows in the analytics results table (one per done job).\n")
	fmt.Fprintf(w, "# TYPE pcnserve_results_rows gauge\n")
	fmt.Fprintf(w, "pcnserve_results_rows %d\n", st.ResultRows)
	fmt.Fprintf(w, "# HELP pcnserve_results_backfilled_total Analytics rows rebuilt from the journal during the last boot recovery.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_results_backfilled_total counter\n")
	fmt.Fprintf(w, "pcnserve_results_backfilled_total %d\n", st.ResultsBackfilled)
	fmt.Fprintf(w, "# HELP pcnserve_results_errors_total Analytics rows that failed to flatten, ingest or persist.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_results_errors_total counter\n")
	fmt.Fprintf(w, "pcnserve_results_errors_total %d\n", st.ResultsErrors)
	s.writeClusterMetrics(w)
}

// writeClusterMetrics appends the coordinator's per-node series and the
// worker's lease counters; both blocks are absent on a plain
// single-node daemon, so its exposition is unchanged.
func (s *Server) writeClusterMetrics(w http.ResponseWriter) {
	if c := s.opts.Cluster; c != nil {
		status := c.Status()
		fmt.Fprintf(w, "# HELP pcnserve_cluster_nodes Worker nodes known to the coordinator.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_nodes gauge\n")
		fmt.Fprintf(w, "pcnserve_cluster_nodes %d\n", len(status.Nodes))
		fmt.Fprintf(w, "# HELP pcnserve_cluster_active_leases Shard slices currently leased to workers.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_active_leases gauge\n")
		fmt.Fprintf(w, "pcnserve_cluster_active_leases %d\n", len(status.Leases))
		fmt.Fprintf(w, "# HELP pcnserve_cluster_releases_total Leases that ended without a partial and were re-queued.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_releases_total counter\n")
		fmt.Fprintf(w, "pcnserve_cluster_releases_total %d\n", status.Releases)
		fmt.Fprintf(w, "# HELP pcnserve_cluster_node_up Whether the node's last heartbeat is within the liveness timeout.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_node_up gauge\n")
		for _, n := range status.Nodes {
			fmt.Fprintf(w, "pcnserve_cluster_node_up{node=%q,addr=%q} %d\n", n.ID, n.Addr, boolGauge(n.Alive))
		}
		fmt.Fprintf(w, "# HELP pcnserve_cluster_node_dispatches_total Slices leased to the node.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_node_dispatches_total counter\n")
		for _, n := range status.Nodes {
			fmt.Fprintf(w, "pcnserve_cluster_node_dispatches_total{node=%q} %d\n", n.ID, n.Dispatches)
		}
		fmt.Fprintf(w, "# HELP pcnserve_cluster_node_partials_total Partial results the node delivered.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_node_partials_total counter\n")
		for _, n := range status.Nodes {
			fmt.Fprintf(w, "pcnserve_cluster_node_partials_total{node=%q} %d\n", n.ID, n.Partials)
		}
		fmt.Fprintf(w, "# HELP pcnserve_cluster_node_failures_total Leases to the node that ended without a partial.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_cluster_node_failures_total counter\n")
		for _, n := range status.Nodes {
			fmt.Fprintf(w, "pcnserve_cluster_node_failures_total{node=%q} %d\n", n.ID, n.Failures)
		}
	}
	if wk := s.opts.Worker; wk != nil {
		fmt.Fprintf(w, "# HELP pcnserve_worker_slices_served_total Slice leases this worker completed with a partial.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_worker_slices_served_total counter\n")
		fmt.Fprintf(w, "pcnserve_worker_slices_served_total %d\n", wk.SlicesServed())
		fmt.Fprintf(w, "# HELP pcnserve_worker_slices_failed_total Slice leases this worker failed.\n")
		fmt.Fprintf(w, "# TYPE pcnserve_worker_slices_failed_total counter\n")
		fmt.Fprintf(w, "pcnserve_worker_slices_failed_total %d\n", wk.SlicesFailed())
	}
}
