package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
)

// scrapeState remembers the previous /metrics scrape so the
// terminal-slots/s gauge can report the throughput over the last scrape
// window without any background sampling goroutine.
type scrapeState struct {
	mu        sync.Mutex
	lastTime  time.Time
	lastSlots int64
	lastRate  float64
}

// rate folds a new (time, cumulative terminal-slots) sample and returns
// the slots/s over the window since the previous scrape; the first
// scrape reports 0. A zero-length window re-reports the previous rate
// rather than dividing by zero.
func (sc *scrapeState) rate(now time.Time, slots int64) float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.lastTime.IsZero() {
		sc.lastTime, sc.lastSlots, sc.lastRate = now, slots, 0
		return 0
	}
	dt := now.Sub(sc.lastTime).Seconds()
	if dt <= 0 {
		return sc.lastRate
	}
	rate := float64(slots-sc.lastSlots) / dt
	sc.lastTime, sc.lastSlots, sc.lastRate = now, slots, rate
	return rate
}

// handleMetrics serves the operational counters in Prometheus text
// exposition format: queue depth and capacity, worker occupancy,
// per-state job counts, the cumulative terminal-slot counter (exact for
// finished jobs plus live telemetry.Progress for running ones) and the
// terminal-slots/s throughput over the last scrape window.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	rate := s.scrape.rate(s.opts.Clock(), st.TerminalSlots)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP pcnserve_queue_depth Jobs waiting in the bounded submission queue.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_queue_depth gauge\n")
	fmt.Fprintf(w, "pcnserve_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "# HELP pcnserve_queue_capacity Capacity of the submission queue.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_queue_capacity gauge\n")
	fmt.Fprintf(w, "pcnserve_queue_capacity %d\n", st.QueueCap)
	fmt.Fprintf(w, "# HELP pcnserve_workers Size of the simulation worker pool.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_workers gauge\n")
	fmt.Fprintf(w, "pcnserve_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# HELP pcnserve_workers_busy Workers currently running a job.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_workers_busy gauge\n")
	fmt.Fprintf(w, "pcnserve_workers_busy %d\n", st.BusyWorkers)
	fmt.Fprintf(w, "# HELP pcnserve_jobs Jobs by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_jobs gauge\n")
	for _, state := range jobs.States() {
		fmt.Fprintf(w, "pcnserve_jobs{state=%q} %d\n", string(state), st.States[state])
	}
	fmt.Fprintf(w, "# HELP pcnserve_terminal_slots_total Cumulative terminal-slots simulated across all jobs.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_terminal_slots_total counter\n")
	fmt.Fprintf(w, "pcnserve_terminal_slots_total %d\n", st.TerminalSlots)
	fmt.Fprintf(w, "# HELP pcnserve_terminal_slots_per_second Simulation throughput over the last scrape window.\n")
	fmt.Fprintf(w, "# TYPE pcnserve_terminal_slots_per_second gauge\n")
	fmt.Fprintf(w, "pcnserve_terminal_slots_per_second %g\n", rate)
}
