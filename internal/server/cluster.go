package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cluster"
)

// Cluster endpoints. A coordinator-mode server exposes the control plane
// (register, heartbeat, /cluster status); a worker-mode server exposes
// the slice lease endpoint. Both modes keep the whole ordinary job API —
// a coordinator is still a pcnserve, it just runs jobs elsewhere.

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("invalid register request: %v", err)})
		return
	}
	if req.Schema != cluster.WireSchema {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("wire schema %d, want %d", req.Schema, cluster.WireSchema)})
		return
	}
	id, err := s.opts.Cluster.Registry().Register(req.Addr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{Schema: cluster.WireSchema, ID: id})
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("invalid heartbeat request: %v", err)})
		return
	}
	if req.Schema != cluster.WireSchema {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("wire schema %d, want %d", req.Schema, cluster.WireSchema)})
		return
	}
	if err := s.opts.Cluster.Registry().Heartbeat(req.ID); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, cluster.ErrUnknownNode) {
			// The re-register signal: the worker's id predates this
			// coordinator process.
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterStatus serves the /cluster document: node table, active
// leases, release counter.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opts.Cluster.Status())
}
