package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/locman"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock pins every lifecycle timestamp so API documents are
// byte-reproducible for the golden exchange.
func fixedClock() time.Time {
	return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
}

func testSpec() jobs.Spec {
	return jobs.Spec{
		Model:      "2d",
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
		Terminals:  10,
		Slots:      2_000,
		Shards:     2,
		Seed:       1,
	}
}

// newTestServer boots a manager+server pair on an httptest listener.
func newTestServer(t *testing.T, mopts jobs.Options, sopts Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if mopts.QueueDepth == 0 {
		mopts.QueueDepth = 8
	}
	if mopts.Workers == 0 {
		mopts.Workers = 2
	}
	mgr := jobs.New(mopts)
	srv := httptest.NewServer(New(mgr, sopts))
	t.Cleanup(func() {
		srv.Close()
		_ = mgr.Shutdown(context.Background())
	})
	return srv, mgr
}

// doJSON performs a request with an optional JSON body and returns the
// status and raw response body.
func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}

// waitState polls the API until the job reports a terminal state.
func waitDone(t *testing.T, base, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, raw := doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("get %s: status %d: %s", id, status, raw)
		}
		var v jobs.View
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode view: %v", err)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGoldenExchange replays the canonical submit→stream→done exchange
// against a checked-in golden transcript: the submit response, the job
// document after completion, and the full NDJSON stream of the finished
// job (state frame + result frame embedding the report). Timestamps come
// from a fixed clock and the simulation from a fixed seed, so every byte
// is reproducible; regenerate with -update after intentional schema
// changes.
func TestGoldenExchange(t *testing.T) {
	srv, _ := newTestServer(t,
		jobs.Options{QueueDepth: 4, Workers: 1, Clock: fixedClock},
		Options{StreamInterval: time.Hour}) // no timer-driven frames: deterministic stream
	var transcript bytes.Buffer

	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	fmt.Fprintf(&transcript, "== POST /api/v1/jobs -> %d\n%s", status, raw)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}

	final := waitDone(t, srv.URL, v.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	status, raw = doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs/"+v.ID, nil)
	fmt.Fprintf(&transcript, "== GET /api/v1/jobs/%s -> %d\n%s", v.ID, status, raw)

	// The job is done, so the stream replays deterministically: one
	// state frame and one result frame carrying the full report.
	status, raw = doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs/"+v.ID+"/stream", nil)
	fmt.Fprintf(&transcript, "== GET /api/v1/jobs/%s/stream -> %d\n%s", v.ID, status, raw)
	if status != http.StatusOK {
		t.Fatalf("stream: status %d", status)
	}

	golden := filepath.Join("testdata", "exchange_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, transcript.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(transcript.Bytes(), want) {
		t.Errorf("exchange diverged from golden transcript.\n--- got ---\n%s\n--- want ---\n%s",
			transcript.Bytes(), want)
	}
}

// TestServerResultByteIdentical is the acceptance criterion at the HTTP
// boundary: the result document served for a job is byte-identical to
// the same configuration run directly through
// locman.SimulateNetworkSharded and encoded as pcnsim -json encodes it.
func TestServerResultByteIdentical(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{}, Options{})
	spec := testSpec()
	spec.SnapshotEvery = 500

	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, srv.URL, v.ID); final.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	status, viaHTTP := doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs/"+v.ID+"/result", nil)
	if status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}

	cfg, err := spec.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := locman.SimulateNetworkSharded(cfg, spec.Slots, spec.Shards)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	enc := json.NewEncoder(&direct)
	enc.SetIndent("", "  ")
	if err := enc.Encode(locman.NewReport(metrics)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaHTTP, direct.Bytes()) {
		t.Fatal("HTTP result diverged from direct engine run")
	}
}

// TestServerQueueOverflow429 pins the backpressure contract at the HTTP
// boundary: a full queue answers 429, not 5xx and not unbounded queuing.
func TestServerQueueOverflow429(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{QueueDepth: 2, Workers: 1}, Options{})

	slow := testSpec()
	slow.Terminals = 200
	slow.Slots = 2_000_000
	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", slow)
	if status != http.StatusAccepted {
		t.Fatalf("blocker: status %d: %s", status, raw)
	}
	var blocker jobs.View
	if err := json.Unmarshal(raw, &blocker); err != nil {
		t.Fatal(err)
	}
	// Wait for pickup so the queue is empty, then fill it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, raw := doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs/"+blocker.ID, nil)
		var v jobs.View
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec()); status != http.StatusAccepted {
			t.Fatalf("fill %d: status %d: %s", i, status, raw)
		}
	}
	status, raw = doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429: %s", status, raw)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Fatalf("overflow body %q, err %v", raw, err)
	}
	// Unblock so cleanup shutdown stays fast.
	doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs/"+blocker.ID+"/cancel", nil)
}

// TestServerStreamLive drives a real mid-flight stream: progress frames
// while the job runs, then a result frame once it is cancelled.
func TestServerStreamLive(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{QueueDepth: 4, Workers: 1},
		Options{StreamInterval: 10 * time.Millisecond})

	big := testSpec()
	big.Terminals = 1_000
	big.Slots = 50_000_000
	big.SnapshotEvery = 1_000 // fast-path progress publishes per batch
	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", big)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", status, raw)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var frames []StreamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawProgress := false
	go func() {
		// Let a few progress frames through, then cancel.
		time.Sleep(150 * time.Millisecond)
		doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs/"+v.ID+"/cancel", nil)
	}()
	for sc.Scan() {
		var f StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
		if f.Type == "progress" {
			sawProgress = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(frames) < 2 {
		t.Fatalf("stream carried %d frames, want at least state+result", len(frames))
	}
	if frames[0].Type != "state" {
		t.Fatalf("first frame %q, want state", frames[0].Type)
	}
	last := frames[len(frames)-1]
	if last.Type != "result" || last.State != jobs.StateCancelled {
		t.Fatalf("last frame %q/%s, want result/cancelled", last.Type, last.State)
	}
	if !sawProgress {
		t.Error("no progress frame observed on a 150ms window with 10ms cadence")
	}
}

// TestServerErrorsAndReadiness sweeps the API's edge responses: unknown
// ids, premature results, malformed specs, and the readiness flip.
func TestServerErrorsAndReadiness(t *testing.T) {
	mgr := jobs.New(jobs.Options{QueueDepth: 2, Workers: 1})
	t.Cleanup(func() { _ = mgr.Shutdown(context.Background()) })
	s := New(mgr, Options{})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	if status, _ := doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs/j999999", nil); status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", status)
	}
	if status, _ := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs/j999999/cancel", nil); status != http.StatusNotFound {
		t.Errorf("cancel unknown: status %d, want 404", status)
	}
	bad := testSpec()
	bad.Terminals = 0
	if status, _ := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", bad); status != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", status)
	}
	if status, _ := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs",
		map[string]any{"no_such_field": 1}); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}

	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv.URL, v.ID)

	if status, _ := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("healthz: status %d", status)
	}
	if status, _ := doJSON(t, http.MethodGet, srv.URL+"/readyz", nil); status != http.StatusOK {
		t.Errorf("readyz: status %d", status)
	}
	s.SetReady(false)
	if status, _ := doJSON(t, http.MethodGet, srv.URL+"/readyz", nil); status != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: status %d, want 503", status)
	}

	// List carries the finished job.
	status, raw = doJSON(t, http.MethodGet, srv.URL+"/api/v1/jobs", nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	var list struct {
		Schema int         `json:"schema"`
		Jobs   []jobs.View `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &list); err != nil || len(list.Jobs) != 1 {
		t.Fatalf("list decode: %v, %d jobs", err, len(list.Jobs))
	}
}

// TestServerMetrics checks the Prometheus exposition: the gauges exist,
// the per-state counts track reality and the slots counter lands on the
// exact completed total.
func TestServerMetrics(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{QueueDepth: 4, Workers: 1}, Options{})
	status, raw := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", testSpec())
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv.URL, v.ID)

	status, body := doJSON(t, http.MethodGet, srv.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"pcnserve_queue_depth 0",
		"pcnserve_queue_capacity 4",
		"pcnserve_workers 1",
		"pcnserve_workers_busy 0",
		`pcnserve_jobs{state="done"} 1`,
		`pcnserve_jobs{state="queued"} 0`,
		"pcnserve_terminal_slots_total 20000",
		"pcnserve_terminal_slots_per_second",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
