package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/jobs"
)

// TestDrainEstimatorRetryAfter drives the estimator through sample
// sequences and pins the advised Retry-After for each.
func TestDrainEstimatorRetryAfter(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	type sample struct {
		after time.Duration
		done  int64
	}
	tests := []struct {
		name    string
		samples []sample
		want    int
	}{
		{
			name: "no samples falls back",
			want: drainFallbackSeconds,
		},
		{
			name:    "single sample has no window yet",
			samples: []sample{{0, 10}},
			want:    drainFallbackSeconds,
		},
		{
			name: "steady one job per second converges near one second",
			// EWMA after three 1/s windows: 0.875 jobs/s → ceil(1/0.875) = 2.
			samples: []sample{{0, 0}, {time.Second, 1}, {2 * time.Second, 2}, {3 * time.Second, 3}},
			want:    2,
		},
		{
			name: "slow drain advises a proportionally long wait",
			// Two 0.1/s windows: rate = 0.5*0.1 + 0.5*0.05 = 0.075 → ceil 14.
			samples: []sample{{0, 0}, {10 * time.Second, 1}, {20 * time.Second, 2}},
			want:    14,
		},
		{
			name: "fast drain clamps up to the minimum",
			// 100 jobs/s → 0.01s per slot, clamped to 1s.
			samples: []sample{{0, 0}, {time.Second, 100}, {2 * time.Second, 200}},
			want:    drainMinSeconds,
		},
		{
			name: "glacial drain clamps down to the maximum",
			// One job per hour → 3600s per slot, clamped to 600s.
			samples: []sample{{0, 0}, {time.Hour, 1}, {2 * time.Hour, 2}},
			want:    drainMaxSeconds,
		},
		{
			name: "stalled service advises the fallback",
			// No job has finished across any window, so the rate is
			// exactly 0 and the estimator refuses to advise infinity.
			samples: []sample{{0, 5}, {time.Second, 5}, {2 * time.Second, 5}},
			want:    drainFallbackSeconds,
		},
		{
			name: "zero-length window is ignored",
			// The dt=0 sample (with its absurd count) must not perturb the
			// rate: windows fold as 0.5 then 0.75 jobs/s → ceil(1/0.75) = 2.
			samples: []sample{{0, 0}, {time.Second, 1}, {time.Second, 1000},
				{2 * time.Second, 2}},
			want: 2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var d drainEstimator
			for _, s := range tc.samples {
				d.observe(t0.Add(s.after), s.done)
			}
			if got := d.retryAfter(); got != tc.want {
				t.Errorf("retryAfter() = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestSubmitBackpressureRetryAfter checks that a 429 carries a parseable
// Retry-After header.
func TestSubmitBackpressureRetryAfter(t *testing.T) {
	// One worker, one queue slot; a long-running spec keeps the worker
	// busy while we overfill.
	srv, _ := newTestServer(t, jobs.Options{QueueDepth: 1, Workers: 1}, Options{Clock: fixedClock})
	spec := testSpec()
	// Long enough that the worker is still busy when the third submit
	// lands (microseconds later), short enough that the cleanup drain
	// in newTestServer doesn't stall the suite.
	spec.Slots = 2_000_000
	// Fill the worker and the queue.
	for i := 0; i < 2; i++ {
		status, body := doJSON(t, http.MethodPost, srv.URL+"/api/v1/jobs", spec)
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, status, body)
		}
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < drainMinSeconds || secs > drainMaxSeconds {
		t.Errorf("Retry-After %q not a sane whole-second count", ra)
	}
}
