package walk

import (
	"math"
	"testing"

	"repro/internal/chain"
)

func TestRunParallelMatchesAnalysis(t *testing.T) {
	c := cfg(chain.TwoDimExact, 0.05, 0.01, 100, 10, 2)
	const d = 3
	want, err := c.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunParallel(c, d, 4_000_000, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots != 4_000_000 {
		t.Fatalf("slots = %d", got.Slots)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.02 {
		t.Errorf("parallel cost %v vs analytical %v", got.TotalCost, want.Total)
	}
	if math.Abs(got.Delay.Mean()-want.ExpectedDelay) > 0.03 {
		t.Errorf("delay %v vs %v", got.Delay.Mean(), want.ExpectedDelay)
	}
	sum := 0.0
	for _, v := range got.RingOccupancy {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("occupancy sums to %v", sum)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	c := cfg(chain.OneDim, 0.1, 0.02, 10, 1, 1)
	a, err := RunParallel(c, 2, 200_000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(c, 2, 200_000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.PolledCells != b.PolledCells || a.Calls != b.Calls {
		t.Error("same (seed, workers) diverged")
	}
}

func TestRunParallelUnevenSplit(t *testing.T) {
	// slots not divisible by workers: the remainder must not be lost.
	c := cfg(chain.OneDim, 0.1, 0.02, 10, 1, 1)
	got, err := RunParallel(c, 2, 100_003, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slots != 100_003 {
		t.Errorf("slots = %d", got.Slots)
	}
}

func TestRunParallelErrors(t *testing.T) {
	c := cfg(chain.OneDim, 0.1, 0.02, 10, 1, 1)
	if _, err := RunParallel(c, 2, 1000, 1, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := RunParallel(c, 2, 3, 1, 8); err == nil {
		t.Error("fewer slots than workers accepted")
	}
	bad := cfg(chain.OneDim, 2, 0, 1, 1, 1)
	if _, err := RunParallel(bad, 2, 1000, 1, 2); err == nil {
		t.Error("invalid config accepted")
	}
}
