package walk

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/paging"
)

func cfg(model chain.Model, q, c, u, v float64, m int) core.Config {
	return core.Config{
		Model:    model,
		Params:   chain.Params{Q: q, C: c},
		Costs:    core.Costs{Update: u, Poll: v},
		MaxDelay: m,
	}
}

func TestRunMatchesAnalysis1D(t *testing.T) {
	c := cfg(chain.OneDim, 0.05, 0.01, 100, 10, 2)
	const d = 3
	want, err := c.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(c, d, 4_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.02 {
		t.Errorf("total cost: simulated %v vs analytical %v (rel %v)", got.TotalCost, want.Total, rel)
	}
	if rel := math.Abs(got.UpdateCost-want.Update) / want.Update; rel > 0.05 {
		t.Errorf("update cost: simulated %v vs analytical %v", got.UpdateCost, want.Update)
	}
	if rel := math.Abs(got.PagingCost-want.Paging) / want.Paging; rel > 0.05 {
		t.Errorf("paging cost: simulated %v vs analytical %v", got.PagingCost, want.Paging)
	}
	if math.Abs(got.Delay.Mean()-want.ExpectedDelay) > 0.03 {
		t.Errorf("delay: simulated %v vs analytical %v", got.Delay.Mean(), want.ExpectedDelay)
	}
}

func TestRunMatchesAnalysis2DExact(t *testing.T) {
	// The hex walk exercises the true per-cell geometry; its long-run cost
	// must match the exact 2-D chain, validating the ring-averaged
	// transition probabilities (paper eqs. 39-42).
	c := cfg(chain.TwoDimExact, 0.05, 0.01, 100, 10, 3)
	const d = 4
	want, err := c.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(c, d, 4_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.02 {
		t.Errorf("total cost: simulated %v vs analytical %v (rel %v)", got.TotalCost, want.Total, rel)
	}
	if math.Abs(got.Delay.Mean()-want.ExpectedDelay) > 0.03 {
		t.Errorf("delay: simulated %v vs analytical %v", got.Delay.Mean(), want.ExpectedDelay)
	}
}

func TestRingOccupancyMatchesStationary(t *testing.T) {
	// The 1-D ring process is exactly lumpable (both cells of a ring are
	// symmetric), so occupancy must match the chain to within noise. In
	// 2-D the ring process is NOT exactly lumpable — corner and edge cells
	// of a hexagonal ring have different outward-neighbor counts, and the
	// paper's chain uses the ring-averaged rates (eqs. 39-40) — so a small
	// systematic deviation (≈1-2% relative) is expected and tolerated.
	p := chain.Params{Q: 0.2, C: 0.05}
	const d = 5
	for _, tc := range []struct {
		model chain.Model
		tol   float64
	}{
		{chain.OneDim, 0.004},
		{chain.TwoDimExact, 0.012},
	} {
		pi, err := chain.Stationary(tc.model, p, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg(tc.model, p.Q, p.C, 50, 1, 1), d, 3_000_000, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pi {
			if diff := math.Abs(res.RingOccupancy[i] - pi[i]); diff > tc.tol {
				t.Errorf("%v: ring %d occupancy %v vs stationary %v", tc.model, i, res.RingOccupancy[i], pi[i])
			}
		}
	}
}

func TestRunDelayBoundNeverExceeded(t *testing.T) {
	c := cfg(chain.TwoDimExact, 0.3, 0.1, 10, 1, 2)
	res, err := Run(c, 7, 200_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 {
		t.Fatal("no calls simulated")
	}
	// The paper's hard guarantee: the worst observed paging delay never
	// exceeds m = 2 polling cycles.
	if res.Delay.Max() > 2 {
		t.Errorf("worst delay %v exceeds bound", res.Delay.Max())
	}
	if res.Delay.Min() < 1 {
		t.Errorf("delay below one cycle: %v", res.Delay.Min())
	}
}

func TestRunThresholdZero(t *testing.T) {
	// d=0: every move is an update, every call polls exactly one cell.
	c := cfg(chain.OneDim, 0.3, 0.2, 1, 1, 1)
	res, err := Run(c, 0, 1_000_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Updates) / float64(res.Slots); math.Abs(got-0.3) > 0.01 {
		t.Errorf("update rate %v, want ≈ q", got)
	}
	if got := float64(res.PolledCells) / float64(res.Calls); got != 1 {
		t.Errorf("cells per call = %v, want 1", got)
	}
}

func TestRunNoMovement(t *testing.T) {
	c := cfg(chain.TwoDimExact, 0, 0.5, 10, 1, 1)
	res, err := Run(c, 2, 100_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 0 {
		t.Errorf("stationary terminal performed %d updates", res.Updates)
	}
	if res.RingOccupancy[0] != 1 {
		t.Errorf("ring-0 occupancy %v", res.RingOccupancy[0])
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	c := cfg(chain.TwoDimExact, 0.1, 0.05, 10, 1, 2)
	a, err := Run(c, 3, 100_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, 3, 100_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.Calls != b.Calls || a.PolledCells != b.PolledCells {
		t.Error("same seed produced different runs")
	}
	d, err := Run(c, 3, 100_000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates == d.Updates && a.PolledCells == d.PolledCells {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestRunWithOptimalDPScheme(t *testing.T) {
	base := cfg(chain.TwoDimExact, 0.05, 0.01, 100, 10, 2)
	dp := base
	dp.Scheme = paging.OptimalDP{}
	want, err := dp.Evaluate(6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(dp, 6, 2_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("DP scheme: simulated %v vs analytical %v", got.TotalCost, want.Total)
	}
}

func TestRunErrors(t *testing.T) {
	good := cfg(chain.OneDim, 0.1, 0.1, 1, 1, 1)
	if _, err := Run(good, -1, 1000, 0); err == nil {
		t.Error("negative d accepted")
	}
	if _, err := Run(good, 1, 0, 0); err == nil {
		t.Error("zero slots accepted")
	}
	bad := cfg(chain.OneDim, 0.9, 0.9, 1, 1, 1)
	if _, err := Run(bad, 1, 1000, 0); err == nil {
		t.Error("invalid params accepted")
	}
}
