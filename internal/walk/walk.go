// Package walk is a Monte-Carlo simulator of the paper's location-update
// and paging mechanism on the *actual* cell grids (not on the distance
// abstraction): a terminal performs the discrete-time random walk of
// Section 2.1 over the 1-D line or the 2-D hexagonal plane, calls arrive
// geometrically, paging polls subareas per the configured partition, and
// threshold crossings trigger location updates.
//
// Because the walk moves between real cells, the 2-D results reflect the
// exact ring-transition probabilities — including the within-ring cell
// inhomogeneity the Markov chain averages over — making the package an
// end-to-end statistical check of the analysis: long-run per-slot cost must
// converge to core.Config.Evaluate's C_T for the TwoDimExact model, and the
// measured delay to its ExpectedDelay.
package walk

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/paging"
	"repro/internal/stats"
)

// Result aggregates the measurements of one simulation run.
type Result struct {
	// Slots is the number of simulated time slots.
	Slots int64
	// Updates is the number of location updates performed.
	Updates int64
	// Calls is the number of incoming calls (each triggering one paging
	// operation).
	Calls int64
	// PolledCells is the total number of cells polled across all calls.
	PolledCells int64
	// UpdateCost, PagingCost and TotalCost are per-slot averages, directly
	// comparable with core.Breakdown's Update, Paging and Total.
	UpdateCost, PagingCost, TotalCost float64
	// Delay accumulates the per-call paging delay in polling cycles; its
	// mean is comparable with core.Breakdown.ExpectedDelay.
	Delay stats.Accumulator
	// RingOccupancy[i] is the fraction of slots (boundaries) the terminal
	// spent at ring distance i from its center cell — the empirical
	// counterpart of the chain's stationary distribution.
	RingOccupancy []float64
}

// Run simulates the mechanism of cfg at threshold d for the given number of
// slots. cfg.Model selects the grid: OneDim walks the line, TwoDimExact and
// TwoDimApprox both walk the hexagonal plane (the approximation exists only
// in the analysis; the physical process is the same).
//
// Slot structure, mirroring the Markov chain: with probability c a call
// arrives — the network pages the residing area subarea by subarea, pays
// V per polled cell, and the center cell resets to the terminal's current
// cell; otherwise, with probability q the terminal moves to a uniform
// neighbor, and if its distance then exceeds d it performs a location
// update (cost U) and the center resets.
func Run(cfg core.Config, d int, slots int64, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if d < 0 {
		return Result{}, fmt.Errorf("walk: negative threshold %d", d)
	}
	if slots <= 0 {
		return Result{}, errors.New("walk: slots must be positive")
	}
	kind := cfg.Model.Grid()
	rings := kind.RingSizes(d)
	// The partition is fixed per (d, m): precompute it and the cumulative
	// poll counts once. Probability-aware schemes see the analytical
	// stationary distribution, as the network would compute it.
	var pi []float64
	if _, needsPi := scheme(cfg).(paging.OptimalDP); needsPi {
		var err error
		pi, err = chain.Stationary(cfg.Model, cfg.Params, d)
		if err != nil {
			return Result{}, err
		}
	}
	part := scheme(cfg).Partition(rings, pi, cfg.MaxDelay)
	w := part.CumulativeCells()
	// ringSubarea[i] is the (0-based) subarea index holding ring i.
	ringSubarea := make([]int, d+1)
	for j, s := range part {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			ringSubarea[i] = j
		}
	}

	rng := stats.NewRNG(seed)
	res := Result{Slots: slots, RingOccupancy: make([]float64, d+1)}

	if kind == grid.OneDim {
		runLine(cfg, d, slots, rng, ringSubarea, w, &res)
	} else {
		runHex(cfg, d, slots, rng, ringSubarea, w, &res)
	}

	res.UpdateCost = float64(res.Updates) * cfg.Costs.Update / float64(slots)
	res.PagingCost = float64(res.PolledCells) * cfg.Costs.Poll / float64(slots)
	res.TotalCost = res.UpdateCost + res.PagingCost
	for i := range res.RingOccupancy {
		res.RingOccupancy[i] /= float64(slots)
	}
	return res, nil
}

func scheme(cfg core.Config) paging.Scheme {
	if cfg.Scheme == nil {
		return paging.SDF{}
	}
	return cfg.Scheme
}

func runLine(cfg core.Config, d int, slots int64, rng *stats.RNG,
	ringSubarea []int, w []int, res *Result) {
	pos := grid.Line(0)
	center := grid.Line(0)
	// Conditional probability: P(move | no call) = q/(1−c), so the
	// unconditional per-slot move probability is exactly q.
	moveProb := 0.0
	if cfg.Params.Q > 0 {
		moveProb = cfg.Params.Q / (1 - cfg.Params.C)
	}
	for t := int64(0); t < slots; t++ {
		res.RingOccupancy[pos.Dist(center)]++
		switch {
		case rng.Bernoulli(cfg.Params.C):
			j := ringSubarea[pos.Dist(center)]
			res.Calls++
			res.PolledCells += int64(w[j])
			res.Delay.Add(float64(j + 1))
			center = pos
		case rng.Bernoulli(moveProb):
			pos = pos.Neighbor(rng.Intn(2))
			if pos.Dist(center) > d {
				res.Updates++
				center = pos
			}
		}
	}
}

func runHex(cfg core.Config, d int, slots int64, rng *stats.RNG,
	ringSubarea []int, w []int, res *Result) {
	pos := grid.Hex{}
	center := grid.Hex{}
	moveProb := 0.0
	if cfg.Params.Q > 0 {
		moveProb = cfg.Params.Q / (1 - cfg.Params.C)
	}
	for t := int64(0); t < slots; t++ {
		res.RingOccupancy[pos.Dist(center)]++
		switch {
		case rng.Bernoulli(cfg.Params.C):
			j := ringSubarea[pos.Dist(center)]
			res.Calls++
			res.PolledCells += int64(w[j])
			res.Delay.Add(float64(j + 1))
			center = pos
		case rng.Bernoulli(moveProb):
			pos = pos.Neighbor(rng.Intn(6))
			if pos.Dist(center) > d {
				res.Updates++
				center = pos
			}
		}
	}
}
