package walk

import (
	"errors"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// RunParallel splits a Monte-Carlo run across workers independent streams
// (each with a seed derived deterministically from seed) and merges the
// measurements. Cost and delay estimates are statistically equivalent to a
// single Run of the same total length — each stream reaches stationarity
// within a negligible warm-up — but wall-clock time divides by the worker
// count. Results are reproducible for a fixed (seed, workers) pair.
func RunParallel(cfg core.Config, d int, slots int64, seed uint64, workers int) (Result, error) {
	if workers <= 0 {
		return Result{}, errors.New("walk: workers must be positive")
	}
	if slots < int64(workers) {
		return Result{}, errors.New("walk: fewer slots than workers")
	}
	seeds := make([]uint64, workers)
	root := stats.NewRNG(seed)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	share := slots / int64(workers)
	rem := slots % int64(workers)

	parts, err := sweep.Map(workers, workers, func(i int) (Result, error) {
		n := share
		if int64(i) < rem {
			n++
		}
		return Run(cfg, d, n, seeds[i])
	})
	if err != nil {
		return Result{}, err
	}

	merged := Result{RingOccupancy: make([]float64, d+1)}
	for _, p := range parts {
		merged.Slots += p.Slots
		merged.Updates += p.Updates
		merged.Calls += p.Calls
		merged.PolledCells += p.PolledCells
		merged.Delay.Merge(&p.Delay)
		for i := range merged.RingOccupancy {
			// Re-weight per-stream fractions by stream length.
			merged.RingOccupancy[i] += p.RingOccupancy[i] * float64(p.Slots)
		}
	}
	for i := range merged.RingOccupancy {
		merged.RingOccupancy[i] /= float64(merged.Slots)
	}
	merged.UpdateCost = float64(merged.Updates) * cfg.Costs.Update / float64(merged.Slots)
	merged.PagingCost = float64(merged.PolledCells) * cfg.Costs.Poll / float64(merged.Slots)
	merged.TotalCost = merged.UpdateCost + merged.PagingCost
	return merged, nil
}
