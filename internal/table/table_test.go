package table

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tb := New("U", "d*", "C_T")
	tb.AddRow("100", "3", "0.897")
	tb.AddRow("1000", "6", "1.563")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "U ") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule: %q", lines[1])
	}
	if !strings.Contains(lines[3], "1000") || !strings.Contains(lines[3], "1.563") {
		t.Errorf("row: %q", lines[3])
	}
	// Columns align: "d*" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "d*")
	if strings.Index(lines[2], "3") != off && lines[2][off] != '3' {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := New("a", "b", "c")
	tb.AddRowf(7, 0.123456, float32(2.0))
	out := tb.String()
	if !strings.Contains(out, "0.123") || strings.Contains(out, "0.1234") {
		t.Errorf("float formatting: %s", out)
	}
	if !strings.Contains(out, "2.000") {
		t.Errorf("float32 formatting: %s", out)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("x", "y")
	tb.AddRow("1")
	out := tb.String()
	if !strings.Contains(out, "1") {
		t.Errorf("row lost: %s", out)
	}
}

func TestOverlongRowPanics(t *testing.T) {
	tb := New("only")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.AddRow("a", "b")
}

func TestSeries(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0.001, 0.01, 0.1}
	curves := map[string][]float64{
		"m=1": {1, 2, 3},
		"m=2": {0.5, 1.5, 2.5},
	}
	if err := Series(&sb, "q", xs, []string{"m=1", "m=2"}, curves); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "q") || !strings.Contains(lines[0], "m=1") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.001") || !strings.Contains(lines[2], "1.0000") {
		t.Errorf("first row: %q", lines[2])
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	var sb strings.Builder
	err := Series(&sb, "x", []float64{1, 2}, []string{"a"}, map[string][]float64{"a": {1}})
	if err == nil {
		t.Error("length mismatch accepted")
	}
}
