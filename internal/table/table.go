// Package table renders fixed-width text tables and x/y series, used by the
// benchmark harness and the command-line tools to print the paper's tables
// and figure data in a diff-friendly plain-text form.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are
// rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("table: row with %d cells in a %d-column table", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values; each value is rendered with
// %v except floats, which use %.3f (the paper's precision).
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			cells = append(cells, fmt.Sprintf("%.3f", x))
		case float32:
			cells = append(cells, fmt.Sprintf("%.3f", x))
		default:
			cells = append(cells, fmt.Sprintf("%v", x))
		}
	}
	t.AddRow(cells...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	emit := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		total += int64(n)
		return err
	}
	if err := emit(t.headers); err != nil {
		return total, err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := emit(rule); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := emit(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		// strings.Builder never errors; keep the method total anyway.
		return err.Error()
	}
	return sb.String()
}

// Series renders one or more y-curves over a shared x-axis as a table —
// the plain-text equivalent of the paper's figures. Curve order follows
// names; each curves[name] must have len(xs) points.
func Series(w io.Writer, xLabel string, xs []float64, names []string, curves map[string][]float64) error {
	headers := append([]string{xLabel}, names...)
	t := New(headers...)
	for i, x := range xs {
		cells := make([]string, 0, len(headers))
		cells = append(cells, fmt.Sprintf("%g", x))
		for _, n := range names {
			c := curves[n]
			if len(c) != len(xs) {
				return fmt.Errorf("table: curve %q has %d points, want %d", n, len(c), len(xs))
			}
			cells = append(cells, fmt.Sprintf("%.4f", c[i]))
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}
