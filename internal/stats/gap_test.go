package stats

import "testing"

// scanGap is the scalar reference: a BernoulliT-per-slot loop returning
// the failure count before the first success, capped at limit.
func scanGap(r *RNG, t uint64, limit int64) (int64, bool) {
	for gap := int64(0); gap < limit; gap++ {
		if r.BernoulliT(t) {
			return gap, true
		}
	}
	return limit, false
}

// scanEventGap is the scalar reference for the two-event scan in the
// slot sweep's draw order: first draw, and only on failure the second.
func scanEventGap(r *RNG, first, second uint64, limit int64) (int64, bool, bool) {
	for gap := int64(0); gap < limit; gap++ {
		if r.BernoulliT(first) {
			return gap, true, true
		}
		if r.BernoulliT(second) {
			return gap, false, true
		}
	}
	return limit, false, false
}

// checkGapCase asserts both primitives agree with their scalar
// references on result and — the positional contract — on the exact
// generator state left behind.
func checkGapCase(t *testing.T, seed, t1, t2 uint64, limit int64) {
	t.Helper()
	ref, got := NewRNG(seed), NewRNG(seed)
	wantGap, wantHit := scanGap(ref, t1, limit)
	gap, hit := got.GapSample(t1, limit)
	if gap != wantGap || hit != wantHit {
		t.Fatalf("GapSample(t=%d, limit=%d) seed %d = (%d, %v), scalar scan = (%d, %v)",
			t1, limit, seed, gap, hit, wantGap, wantHit)
	}
	if ref.s != got.s {
		t.Fatalf("GapSample(t=%d, limit=%d) seed %d left state %v, scalar scan %v",
			t1, limit, seed, got.s, ref.s)
	}

	ref, got = NewRNG(seed), NewRNG(seed)
	wantGap, wantFirst, wantHit := scanEventGap(ref, t1, t2, limit)
	gap, first, hit := got.EventGap(t1, t2, limit)
	if gap != wantGap || first != wantFirst || hit != wantHit {
		t.Fatalf("EventGap(%d, %d, limit=%d) seed %d = (%d, %v, %v), scalar scan = (%d, %v, %v)",
			t1, t2, limit, seed, gap, first, hit, wantGap, wantFirst, wantHit)
	}
	if ref.s != got.s {
		t.Fatalf("EventGap(%d, %d, limit=%d) seed %d left state %v, scalar scan %v",
			t1, t2, limit, seed, got.s, ref.s)
	}
}

// TestGapSamplePositionalEquivalence is the property the columnar engine
// rests on: across 10k random (p, seed) cases the gap-sampled event slot
// and the post-scan generator state equal the slot-by-slot BernoulliT
// scan's, draw position for draw position.
func TestGapSamplePositionalEquivalence(t *testing.T) {
	meta := NewRNG(20260808)
	for i := 0; i < 10_000; i++ {
		seed := meta.Uint64()
		// Bias toward the simulator's regime (small p) but cover the
		// whole range: thresholds are uniform over [0, 2^53] on a third
		// of the cases, tiny on the rest.
		t1 := meta.Uint64() % (1<<53 + 1)
		t2 := meta.Uint64() % (1<<53 + 1)
		if i%3 != 0 {
			t1 = BernoulliThreshold(meta.Float64() * 0.1)
			t2 = BernoulliThreshold(meta.Float64() * 0.5)
		}
		limit := int64(meta.Intn(300))
		checkGapCase(t, seed, t1, t2, limit)
	}
}

// TestGapSampleEdgeThresholds pins the degenerate thresholds: p=0 must
// consume one draw per slot without ever firing, p=1 must fire on the
// first slot, and a zero limit must consume nothing.
func TestGapSampleEdgeThresholds(t *testing.T) {
	for _, seed := range []uint64{0, 1, 99} {
		checkGapCase(t, seed, 0, 0, 64)
		checkGapCase(t, seed, 1<<53, 1<<53, 64)
		checkGapCase(t, seed, 0, 1<<53, 64)
		checkGapCase(t, seed, 1<<53, 0, 64)
		checkGapCase(t, seed, BernoulliThreshold(0.3), BernoulliThreshold(0.7), 0)
	}

	r := NewRNG(7)
	before := r.s
	if gap, hit := r.GapSample(0, 0); gap != 0 || hit {
		t.Fatalf("GapSample(0, 0) = (%d, %v), want (0, false)", gap, hit)
	}
	if r.s != before {
		t.Fatal("GapSample with limit 0 consumed draws")
	}
}

// TestSeedSubStreamMatchesSubStream asserts the in-place seeder lands on
// the exact SubStream state for a spread of (seed, id) pairs, so flat
// generator columns and per-terminal heap generators are interchangeable.
func TestSeedSubStreamMatchesSubStream(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		for _, id := range []uint64{0, 1, 2, 1000, 1 << 40} {
			want := SubStream(seed, id)
			var got RNG
			got.SeedSubStream(seed, id)
			if got.s != want.s {
				t.Fatalf("SeedSubStream(%d, %d) state %v, SubStream %v", seed, id, got.s, want.s)
			}
			if a, b := got.Uint64(), want.Uint64(); a != b {
				t.Fatalf("SeedSubStream(%d, %d) first draw %d, SubStream %d", seed, id, a, b)
			}
		}
	}
}

// FuzzGapSample fuzzes the positional-equivalence property over
// arbitrary seeds, thresholds and limits.
func FuzzGapSample(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0), int64(16))
	f.Add(uint64(2), uint64(1)<<53, uint64(1)<<53, int64(1))
	f.Add(uint64(99), BernoulliThreshold(0.01), BernoulliThreshold(0.15), int64(256))
	f.Add(uint64(12345), BernoulliThreshold(0.5), BernoulliThreshold(0.5), int64(64))
	f.Fuzz(func(t *testing.T, seed, t1, t2 uint64, limit int64) {
		if t1 > 1<<53 {
			t1 %= 1<<53 + 1
		}
		if t2 > 1<<53 {
			t2 %= 1<<53 + 1
		}
		if limit < 0 {
			limit = -limit
		}
		limit %= 4096
		checkGapCase(t, seed, t1, t2, limit)
	})
}
