package stats

// Geometric gap-sampling: draw the slot of the next event directly
// instead of asking "did it happen?" once per slot at the caller.
//
// The columnar simulation engine advances each terminal by whole
// event-free stretches, so the question it asks the RNG is not "does an
// event happen this slot?" but "how many slots until the next event?".
// A textbook geometric sampler would answer with one uniform draw and a
// logarithm — and destroy the positional-stream contract the sharded
// simulator is built on: every engine must consume the exact same draw
// at the exact same stream position so that results are bit-identical
// across engines and shard counts (see stats.SubStream and
// sim.TestFastPathEquivalence).
//
// These primitives therefore sample the geometric gap by running the
// per-slot threshold scan itself — one BernoulliT draw (or one
// call-draw/move-draw pair) per slot, in the caller's exact draw order —
// and returning how far the scan got. Equivalence with the scalar loop
// is by construction, not approximation: the loop bodies below are the
// scalar engine's per-slot draws verbatim, so the generator state after
// a gap-sampled stretch equals the state after the same stretch of
// scalar draws, position for position (property-tested and fuzzed in
// gap_test.go). What the restructuring buys is the caller's side: the
// per-slot branch-and-return dance collapses into one call that keeps
// the generator state in registers for the whole stretch.

// GapSample scans for the next success of a Bernoulli sequence with the
// precomputed integer threshold t (see BernoulliThreshold), consuming
// one draw per slot exactly like a BernoulliT-per-slot loop. It returns
// the number of failure slots consumed before the success. When no
// success occurs within limit slots it stops having consumed exactly
// limit draws and returns (limit, false).
func (r *RNG) GapSample(t uint64, limit int64) (gap int64, hit bool) {
	for gap = 0; gap < limit; gap++ {
		if r.BernoulliT(t) {
			return gap, true
		}
	}
	return limit, false
}

// EventGap scans for the next slot in which either of two ordered
// Bernoulli events fires: each slot draws against first, and only on a
// failure draws against second — the call-then-move draw order of the
// simulator's slot sweep (sim.network.sweepSlot). It returns the number
// of event-free slots consumed before the hit and which event fired
// (firstHit). When neither fires within limit slots it returns
// (limit, false, false) with exactly 2·limit draws consumed.
//
// An event slot consumes only the draws up to its deciding one — one
// draw when first fires, two when second fires — leaving the generator
// positioned exactly where the scalar loop's event handling would pick
// it up (the direction draw of a move, the loss draws of a paging
// chain).
func (r *RNG) EventGap(first, second uint64, limit int64) (gap int64, firstHit, hit bool) {
	for gap = 0; gap < limit; gap++ {
		if r.BernoulliT(first) {
			return gap, true, true
		}
		if r.BernoulliT(second) {
			return gap, false, true
		}
	}
	return limit, false, false
}
