package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Sample variance of the classic dataset: Σ(x−5)² = 32, /7.
	if want := 32.0 / 7.0; math.Abs(a.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), want)
	}
	if math.Abs(a.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", a.StdDev())
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAccumulatorMinMax(t *testing.T) {
	var a Accumulator
	if a.Min() != 0 || a.Max() != 0 {
		t.Error("empty accumulator extrema not zero")
	}
	for _, x := range []float64{3, -1, 7, 2} {
		a.Add(x)
	}
	if a.Min() != -1 || a.Max() != 7 {
		t.Errorf("min %v max %v", a.Min(), a.Max())
	}
	// Merge combines extrema.
	var b Accumulator
	b.Add(-9)
	b.Add(100)
	a.Merge(&b)
	if a.Min() != -9 || a.Max() != 100 {
		t.Errorf("after merge: min %v max %v", a.Min(), a.Max())
	}
	// All-positive streams must not report a spurious zero minimum.
	var c Accumulator
	c.Add(5)
	c.Add(8)
	if c.Min() != 5 {
		t.Errorf("positive-stream min %v", c.Min())
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 {
		t.Errorf("mean %v var %v", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(mean))
		if math.Abs(a.Mean()-mean)/scale > 1e-9 {
			return false
		}
		vscale := math.Max(1, variance)
		return math.Abs(a.Variance()-variance)/vscale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeEquivalentToSequential(t *testing.T) {
	var whole, left, right Accumulator
	rng := NewRNG(9)
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*10 - 5
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("N %d vs %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("variance %v vs %v", left.Variance(), whole.Variance())
	}
	// Merging an empty accumulator is a no-op in both directions.
	var empty Accumulator
	before := left
	left.Merge(&empty)
	if left != before {
		t.Error("merging empty changed accumulator")
	}
	empty.Merge(&left)
	if empty != left {
		t.Error("merge into empty did not copy")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := NewRNG(4)
	var small, large Accumulator
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.Float64())
	}
	if large.CI(0.95) >= small.CI(0.95) {
		t.Errorf("CI did not shrink: %v vs %v", large.CI(0.95), small.CI(0.95))
	}
}

func TestZQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.841344746, 1.0},
		{0.025, -1.959964},
	}
	for _, tc := range cases {
		if got := zQuantile(tc.p); math.Abs(got-tc.z) > 1e-4 {
			t.Errorf("zQuantile(%v) = %v, want %v", tc.p, got, tc.z)
		}
	}
}

func TestZQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("zQuantile(%v) did not panic", p)
				}
			}()
			zQuantile(p)
		}()
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(0) // seed 0 must still work (splitmix64 seeding)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(77)
	const n = 6
	counts := make([]int, n)
	const draws = 120000
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expected 20000 per bucket; allow ±3%.
		if c < draws/n*97/100 || c > draws/n*103/100 {
			t.Errorf("bucket %d: %d draws", i, c)
		}
	}
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

// TestBernoulliThresholdMatchesBernoulli checks the exact-equivalence
// claim on BernoulliThreshold: for any p, BernoulliT(BernoulliThreshold(p))
// agrees with Bernoulli(p) on every draw of the same stream — including p
// values engineered to sit a single ulp away from a representable draw.
func TestBernoulliThresholdMatchesBernoulli(t *testing.T) {
	ps := []float64{0, 1, 0.5, 0.3, 0.05, 0.01, 1e-9, 1 - 1e-12,
		math.Nextafter(0.5, 0), math.Nextafter(0.5, 1),
		1.0 / (1 << 53), math.Nextafter(1.0/(1<<53), 0),
		-0.2, 1.5, // clamped like Bernoulli's comparison treats them
	}
	for _, p := range ps {
		thr := BernoulliThreshold(p)
		a, b := NewRNG(77), NewRNG(77)
		for i := 0; i < 4096; i++ {
			if got, want := a.BernoulliT(thr), b.Bernoulli(p); got != want {
				t.Fatalf("p=%v draw %d: BernoulliT=%v Bernoulli=%v", p, i, got, want)
			}
		}
	}
	// Adversarial: p exactly on each representable draw boundary must keep
	// the strict inequality (draw == p stays false).
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		u := r.Uint64() >> 11
		p := float64(u) / (1 << 53)
		thr := BernoulliThreshold(p)
		if (u < thr) != (float64(u)/(1<<53) < p) {
			t.Fatalf("boundary p=%v u=%d: threshold %d flips the strict compare", p, u, thr)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(11)
	a := parent.Split()
	b := parent.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("split streams look correlated: %d/100 equal", equal)
	}
}

// TestMergeExtremaNegativeStreams checks min/max propagation when every
// observation is negative: the zero-valued min/max fields must never leak
// a spurious 0 into the merged extrema.
func TestMergeExtremaNegativeStreams(t *testing.T) {
	var a, b Accumulator
	for _, x := range []float64{-5, -3, -8} {
		a.Add(x)
	}
	for _, x := range []float64{-1, -12} {
		b.Add(x)
	}
	a.Merge(&b)
	if a.Min() != -12 || a.Max() != -1 {
		t.Errorf("merged extrema (%v, %v), want (-12, -1)", a.Min(), a.Max())
	}
	if a.N() != 5 {
		t.Errorf("merged n = %d, want 5", a.N())
	}
}

// TestMergeEmptyIntoNonempty: folding an empty accumulator must be a
// no-op — in particular its zero min/max must not clamp the extrema.
func TestMergeEmptyIntoNonempty(t *testing.T) {
	var a, empty Accumulator
	a.Add(3)
	a.Add(7)
	want := a
	a.Merge(&empty)
	if a != want {
		t.Errorf("merging empty changed the accumulator: %+v vs %+v", a, want)
	}
}

// TestMergeNonemptyIntoEmpty: the receiver adopts the argument wholesale,
// extrema included.
func TestMergeNonemptyIntoEmpty(t *testing.T) {
	var a, b Accumulator
	b.Add(-4)
	b.Add(9)
	a.Merge(&b)
	if a != b {
		t.Errorf("empty receiver did not adopt the argument: %+v vs %+v", a, b)
	}
	if a.Min() != -4 || a.Max() != 9 {
		t.Errorf("extrema (%v, %v), want (-4, 9)", a.Min(), a.Max())
	}
}

// TestMergeExtremaAcrossPartitions: whatever the partition of a stream
// with negative and positive values, the merged extrema equal the
// sequential ones.
func TestMergeExtremaAcrossPartitions(t *testing.T) {
	xs := []float64{3, -7, 0, 15, -2, 8, -7, 15}
	var seq Accumulator
	for _, x := range xs {
		seq.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var lo, hi Accumulator
		for _, x := range xs[:split] {
			lo.Add(x)
		}
		for _, x := range xs[split:] {
			hi.Add(x)
		}
		lo.Merge(&hi)
		if lo.Min() != seq.Min() || lo.Max() != seq.Max() || lo.N() != seq.N() {
			t.Errorf("split %d: merged (n=%d, min=%v, max=%v), want (n=%d, min=%v, max=%v)",
				split, lo.N(), lo.Min(), lo.Max(), seq.N(), seq.Min(), seq.Max())
		}
	}
}
