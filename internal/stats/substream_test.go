package stats

import (
	"math"
	"testing"
)

func TestSubStreamDeterministic(t *testing.T) {
	a := SubStream(42, 7)
	b := SubStream(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, id) diverged at draw %d", i)
		}
	}
}

func TestSubStreamIndependentOfAllocationOrder(t *testing.T) {
	// Drawing stream 5 first and stream 2 second (or never drawing the
	// streams between them) must not change either stream — the property
	// Split lacks and sharded simulations need.
	five := SubStream(9, 5).Uint64()
	two := SubStream(9, 2).Uint64()
	if SubStream(9, 5).Uint64() != five || SubStream(9, 2).Uint64() != two {
		t.Fatal("stream value depends on allocation order")
	}
}

func TestSubStreamDistinctStreams(t *testing.T) {
	// Adjacent ids and adjacent seeds must give distinct streams; compare a
	// prefix of draws, not just the first value.
	prefix := func(r *RNG) [8]uint64 {
		var p [8]uint64
		for i := range p {
			p[i] = r.Uint64()
		}
		return p
	}
	base := prefix(SubStream(1, 0))
	for id := uint64(1); id < 100; id++ {
		if prefix(SubStream(1, id)) == base {
			t.Fatalf("stream id %d equals stream 0", id)
		}
	}
	if prefix(SubStream(2, 0)) == base {
		t.Fatal("seed 2 stream equals seed 1 stream")
	}
}

func TestSubStreamUniformity(t *testing.T) {
	// Pool draws across many streams of one seed: the ensemble should be
	// uniform, catching gross inter-stream correlation.
	var acc Accumulator
	for id := uint64(0); id < 200; id++ {
		r := SubStream(3, id)
		for i := 0; i < 500; i++ {
			acc.Add(r.Float64())
		}
	}
	if math.Abs(acc.Mean()-0.5) > 0.01 {
		t.Errorf("ensemble mean %v, want ≈ 0.5", acc.Mean())
	}
	if math.Abs(acc.Variance()-1.0/12) > 0.01 {
		t.Errorf("ensemble variance %v, want ≈ 1/12", acc.Variance())
	}
}

// TestSubStreamInterleavingInvariance pins the contract the fast-path
// engine rests on: a stream's draw sequence depends only on (seed, id),
// never on how draws on sibling streams interleave with it. The fast
// engine iterates terminals in a completely different order than the
// event-driven engine, so any cross-stream coupling would break their
// bit-identity.
func TestSubStreamInterleavingInvariance(t *testing.T) {
	const seed, id = 9, 5
	want := make([]uint64, 64)
	r := SubStream(seed, id)
	for i := range want {
		want[i] = r.Uint64()
	}

	// Replay the same stream one draw at a time, firing bursts of mixed
	// draw kinds on neighbours and far-away siblings between draws.
	replay := SubStream(seed, id)
	siblings := []*RNG{
		SubStream(seed, id-1),
		SubStream(seed, id+1),
		SubStream(seed, 1<<40),
	}
	for i := range want {
		for j, s := range siblings {
			for k := 0; k <= (i+j)%3; k++ {
				switch k % 3 {
				case 0:
					s.Uint64()
				case 1:
					s.Float64()
				case 2:
					s.Intn(6)
				}
			}
		}
		if got := replay.Uint64(); got != want[i] {
			t.Fatalf("draw %d = %x under interleaving, want %x", i, got, want[i])
		}
	}
}

func TestSubStreamMatchesSplitmixBlocks(t *testing.T) {
	// The documented construction: stream id's state words are the four
	// splitmix64 outputs at positions 4·id+1 … 4·id+4 of the sequence
	// rooted at mix64(seed). Verify against a direct evaluation so the
	// stream layout (and therefore cross-version reproducibility) is
	// locked in by test.
	const seed, id = 77, 13
	base := mix64(seed)
	var want [4]uint64
	for i := range want {
		want[i] = mix64(base + (4*id+uint64(i)+1)*splitmixGamma)
	}
	got := SubStream(seed, id)
	if got.s != want {
		t.Fatalf("state %x, want %x", got.s, want)
	}
}
