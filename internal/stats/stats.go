// Package stats provides the small measurement substrate used by the
// simulators: streaming mean/variance accumulators (Welford), normal
// confidence intervals, and a fast deterministic random number generator
// (splitmix64 seeding an xoshiro256**-style core) so simulation results
// are reproducible across runs and platforms.
package stats

import (
	"fmt"
	"math"
)

// Accumulator tracks count, mean, variance and extrema of a stream of
// observations using Welford's online algorithm. The zero value is ready
// to use.
type Accumulator struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 || x < a.min {
		a.min = x
	}
	if a.n == 1 || x > a.max {
		a.max = x
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Min returns the smallest observation (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI returns the half-width of the normal-approximation confidence
// interval of the mean at the given confidence level (e.g. 0.95). It uses
// the z quantile, appropriate for the large sample counts the simulators
// produce.
func (a *Accumulator) CI(level float64) float64 {
	return zQuantile(0.5+level/2) * a.StdErr()
}

// String formats "mean ± 95% CI (n=N)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", a.Mean(), a.CI(0.95), a.n)
}

// AccumulatorState is the exported, serializable form of an Accumulator's
// Welford state. All fields are plain numbers, so any exact encoding
// (gob, binary) round-trips the accumulator bit-for-bit — the property
// simulation checkpoints rely on: an accumulator restored from state and
// then fed the remaining observations is indistinguishable from one that
// saw the whole stream.
type AccumulatorState struct {
	N        int64
	Mean, M2 float64
	Min, Max float64
}

// State exports the accumulator's exact internal state.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// SetState reinstates a state captured by State.
func (a *Accumulator) SetState(st AccumulatorState) {
	a.n, a.mean, a.m2, a.min, a.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// Merge folds another accumulator into a (parallel reduction).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	a.n = n
}

// zQuantile approximates the standard normal quantile function using the
// Beasley–Springer–Moro rational approximation (|error| < 3e-9 over the
// central region, ample for confidence intervals).
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v outside (0,1)", p))
	}
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		return y * (((a[3]*r+a[2])*r+a[1])*r + a[0]) /
			((((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1)
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x
}
