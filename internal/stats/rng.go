package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** with splitmix64 seeding). It is not cryptographically
// secure; it exists so simulations are reproducible bit-for-bit for a
// given seed, independent of math/rand version changes.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, guaranteeing
// a well-mixed non-zero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// rejection sampling over the top 53 bits keeps it simple and unbiased
	// for the small n used here.
	bound := uint64(n)
	threshold := (math.MaxUint64 - bound + 1) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Split derives an independent generator, for giving each simulated
// terminal its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
