package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** with splitmix64 seeding). It is not cryptographically
// secure; it exists so simulations are reproducible bit-for-bit for a
// given seed, independent of math/rand version changes.
type RNG struct {
	s [4]uint64
}

// splitmixGamma is the Weyl-sequence increment of splitmix64.
const splitmixGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output function: a bijective avalanche mixer
// turning a sequential counter into well-distributed 64-bit values.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via splitmix64, guaranteeing
// a well-mixed non-zero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += splitmixGamma
		r.s[i] = mix64(sm)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// rejection sampling over the top 53 bits keeps it simple and unbiased
	// for the small n used here.
	bound := uint64(n)
	threshold := (math.MaxUint64 - bound + 1) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// BernoulliThreshold precomputes the integer threshold T for which
// BernoulliT(T) draws exactly like Bernoulli(p): both consume one Uint64
// and agree on every draw. The equivalence is exact, not approximate:
// Float64 is float64(u>>11) / 2^53 with u>>11 < 2^53, and both the int-to-
// float conversion and the division by a power of two are lossless, so
// Float64() < p holds iff u>>11 < p·2^53 in real arithmetic. p·2^53 is
// itself exact (a float64 scaled by a power of two), so comparing against
// its ceiling as an integer reproduces the strict inequality bit for bit.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// BernoulliT draws a Bernoulli outcome against a threshold precomputed by
// BernoulliThreshold. Hot loops hoist the threshold out of the per-draw
// path, replacing Bernoulli's float conversion and comparison with one
// integer compare while consuming the identical stream position.
func (r *RNG) BernoulliT(t uint64) bool {
	return r.Uint64()>>11 < t
}

// Split derives an independent generator, for giving each simulated
// terminal its own stream. The derived stream depends on how many times
// the parent has been consumed, so Split is order-dependent; use SubStream
// when streams must be addressable by a stable index.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SubStream returns stream id of the deterministic generator family rooted
// at seed. The family partitions a single splitmix64 sequence (rooted at
// mix64(seed)) into disjoint four-word blocks: stream id's xoshiro state is
// words 4·id+1 … 4·id+4 of that sequence, so streams never overlap and
// SubStream(seed, id) depends only on the pair (seed, id) — never on the
// order or number of other streams drawn. That positional addressing is
// what makes the sharded simulator's results invariant under re-partitioning
// terminals across shards (sim.RunSharded).
func SubStream(seed, id uint64) *RNG {
	r := new(RNG)
	r.SeedSubStream(seed, id)
	return r
}

// State exports the generator's positional state — the four xoshiro256**
// words — for checkpointing. SetState(State()) reproduces the stream
// bit-for-bit from the captured position.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState reinstates a positional state captured by State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// SeedSubStream reseeds r in place to stream id of the family rooted at
// seed, bit-identical to SubStream(seed, id). Engines that keep their
// per-terminal generators in one flat slice seed the elements with this
// method instead of paying one heap allocation per terminal.
func (r *RNG) SeedSubStream(seed, id uint64) {
	sm := mix64(seed) + 4*id*splitmixGamma
	for i := range r.s {
		sm += splitmixGamma
		r.s[i] = mix64(sm)
	}
}
