// Package paperdata holds the published evaluation data of Akyildiz & Ho
// (SIGCOMM '95) — every row of Tables 1 and 2 and the parameter grids of
// Figures 4 and 5 — as Go values. Tests, the benchmark harness and the
// experiment reports all read from this single transcription.
package paperdata

// Params1D / Params2D are the fixed parameters of Tables 1 and 2:
// c = 0.01, q = 0.05, V = 10, U varying per row.
const (
	TableCallProb = 0.01
	TableMoveProb = 0.05
	TablePollCost = 10.0
)

// Table1Row is one row of Table 1 (one-dimensional model): the optimal
// threshold distance and average total cost per maximum paging delay.
type Table1Row struct {
	U float64
	// D and CT are indexed by delay column: 0 → m=1, 1 → m=2, 2 → m=3,
	// 3 → unbounded.
	D  [4]int
	CT [4]float64
}

// Table1Delays maps the column index of Table1Row to the paging delay m
// (0 = unbounded).
var Table1Delays = [4]int{1, 2, 3, 0}

// Table1 is the paper's Table 1, "Optimal Threshold Distance and Average
// Total Cost for One-Dimensional Mobility Model". Note DESIGN.md §4: the
// published numbers require the legacy d=0 update rate (q/2).
var Table1 = []Table1Row{
	{1, [4]int{0, 0, 0, 0}, [4]float64{0.125, 0.125, 0.125, 0.125}},
	{2, [4]int{0, 0, 0, 0}, [4]float64{0.150, 0.150, 0.150, 0.150}},
	{3, [4]int{0, 0, 0, 0}, [4]float64{0.175, 0.175, 0.175, 0.175}},
	{4, [4]int{0, 0, 0, 0}, [4]float64{0.200, 0.200, 0.200, 0.200}},
	{5, [4]int{0, 0, 0, 0}, [4]float64{0.225, 0.225, 0.225, 0.225}},
	{6, [4]int{0, 0, 0, 0}, [4]float64{0.250, 0.250, 0.250, 0.250}},
	{7, [4]int{0, 1, 1, 1}, [4]float64{0.275, 0.270, 0.270, 0.270}},
	{8, [4]int{0, 1, 1, 1}, [4]float64{0.300, 0.282, 0.282, 0.282}},
	{9, [4]int{0, 1, 2, 2}, [4]float64{0.325, 0.293, 0.291, 0.291}},
	{10, [4]int{0, 1, 2, 2}, [4]float64{0.350, 0.305, 0.296, 0.296}},
	{20, [4]int{1, 1, 2, 3}, [4]float64{0.527, 0.418, 0.339, 0.338}},
	{30, [4]int{2, 2, 2, 3}, [4]float64{0.630, 0.465, 0.382, 0.357}},
	{40, [4]int{2, 3, 3, 4}, [4]float64{0.673, 0.486, 0.415, 0.371}},
	{50, [4]int{2, 3, 3, 4}, [4]float64{0.716, 0.506, 0.435, 0.381}},
	{60, [4]int{2, 3, 3, 5}, [4]float64{0.760, 0.526, 0.454, 0.386}},
	{70, [4]int{2, 3, 3, 6}, [4]float64{0.803, 0.545, 0.474, 0.391}},
	{80, [4]int{2, 3, 3, 6}, [4]float64{0.846, 0.565, 0.494, 0.394}},
	{90, [4]int{3, 4, 5, 7}, [4]float64{0.878, 0.579, 0.510, 0.396}},
	{100, [4]int{3, 4, 5, 7}, [4]float64{0.897, 0.589, 0.515, 0.397}},
	{200, [4]int{3, 4, 6, 12}, [4]float64{1.095, 0.686, 0.548, 0.401}},
	{300, [4]int{4, 6, 7, 17}, [4]float64{1.193, 0.724, 0.565, 0.402}},
	{400, [4]int{4, 6, 7, 22}, [4]float64{1.290, 0.750, 0.579, 0.402}},
	{500, [4]int{5, 6, 7, 27}, [4]float64{1.351, 0.776, 0.593, 0.402}},
	{600, [4]int{5, 6, 7, 32}, [4]float64{1.401, 0.803, 0.607, 0.402}},
	{700, [4]int{5, 6, 7, 37}, [4]float64{1.451, 0.829, 0.621, 0.402}},
	{800, [4]int{5, 6, 7, 42}, [4]float64{1.501, 0.855, 0.635, 0.402}},
	{900, [4]int{6, 8, 7, 47}, [4]float64{1.537, 0.868, 0.649, 0.402}},
	{1000, [4]int{6, 8, 7, 52}, [4]float64{1.563, 0.876, 0.663, 0.402}},
}

// Table2Cell is one delay column of a Table 2 row: the exact optimum
// (d*, C_T) and the uncorrected near-optimal result (d′, C′_T).
type Table2Cell struct {
	DStar  int
	DNear  int
	CT     float64
	CTNear float64
}

// Table2Row is one row of Table 2 (two-dimensional model). Columns are
// indexed 0 → m=1, 1 → m=3, 2 → unbounded.
type Table2Row struct {
	U     float64
	Cells [3]Table2Cell
}

// Table2Delays maps the column index of Table2Row to the paging delay m
// (0 = unbounded).
var Table2Delays = [3]int{1, 3, 0}

// Table2 is the paper's Table 2, "Optimal Threshold Distance and Average
// Total Cost for Two-Dimensional Mobility Model". The d′/C′_T columns are
// the uncorrected near-optimal pipeline with the legacy d=0 update rate
// (q/3); C_T columns are the exact recursive solution.
var Table2 = []Table2Row{
	{1, [3]Table2Cell{{0, 0, 0.150, 0.150}, {0, 0, 0.150, 0.150}, {0, 0, 0.150, 0.150}}},
	{2, [3]Table2Cell{{0, 0, 0.200, 0.200}, {0, 0, 0.200, 0.200}, {0, 0, 0.200, 0.200}}},
	{3, [3]Table2Cell{{0, 0, 0.250, 0.250}, {0, 0, 0.250, 0.250}, {0, 0, 0.250, 0.250}}},
	{4, [3]Table2Cell{{0, 0, 0.300, 0.300}, {0, 0, 0.300, 0.300}, {0, 0, 0.300, 0.300}}},
	{5, [3]Table2Cell{{0, 0, 0.350, 0.350}, {0, 0, 0.350, 0.350}, {0, 0, 0.350, 0.350}}},
	{6, [3]Table2Cell{{0, 0, 0.400, 0.400}, {0, 0, 0.400, 0.400}, {0, 0, 0.400, 0.400}}},
	{7, [3]Table2Cell{{0, 0, 0.450, 0.450}, {0, 0, 0.450, 0.450}, {0, 0, 0.450, 0.450}}},
	{8, [3]Table2Cell{{0, 0, 0.500, 0.500}, {0, 0, 0.500, 0.500}, {0, 0, 0.500, 0.500}}},
	{9, [3]Table2Cell{{0, 0, 0.550, 0.550}, {1, 0, 0.542, 0.550}, {1, 0, 0.542, 0.550}}},
	{10, [3]Table2Cell{{0, 0, 0.600, 0.600}, {1, 0, 0.555, 0.600}, {1, 0, 0.555, 0.600}}},
	{20, [3]Table2Cell{{1, 0, 0.968, 1.100}, {1, 0, 0.689, 1.100}, {1, 0, 0.689, 1.100}}},
	{30, [3]Table2Cell{{1, 0, 1.102, 1.600}, {1, 0, 0.823, 1.600}, {1, 0, 0.823, 1.600}}},
	{40, [3]Table2Cell{{1, 0, 1.236, 2.100}, {1, 0, 0.957, 2.100}, {1, 0, 0.957, 2.100}}},
	{50, [3]Table2Cell{{1, 0, 1.370, 2.600}, {2, 2, 1.074, 1.074}, {2, 2, 1.074, 1.074}}},
	{60, [3]Table2Cell{{1, 0, 1.504, 3.100}, {2, 2, 1.126, 1.126}, {2, 2, 1.126, 1.126}}},
	{70, [3]Table2Cell{{1, 0, 1.638, 3.600}, {2, 2, 1.178, 1.178}, {2, 2, 1.178, 1.178}}},
	{80, [3]Table2Cell{{1, 1, 1.771, 1.771}, {2, 2, 1.231, 1.231}, {2, 2, 1.231, 1.231}}},
	{90, [3]Table2Cell{{1, 1, 1.905, 1.905}, {2, 2, 1.283, 1.283}, {2, 2, 1.283, 1.283}}},
	{100, [3]Table2Cell{{1, 1, 2.039, 2.039}, {2, 2, 1.335, 1.335}, {2, 2, 1.335, 1.335}}},
	{200, [3]Table2Cell{{2, 1, 2.945, 3.379}, {2, 2, 1.858, 1.858}, {3, 3, 1.683, 1.683}}},
	{300, [3]Table2Cell{{2, 2, 3.468, 3.468}, {3, 2, 2.372, 2.381}, {4, 3, 1.912, 1.918}}},
	{400, [3]Table2Cell{{2, 2, 3.991, 3.991}, {3, 3, 2.608, 2.608}, {4, 4, 2.025, 2.025}}},
	{500, [3]Table2Cell{{2, 2, 4.514, 4.514}, {3, 3, 2.843, 2.843}, {4, 4, 2.138, 2.138}}},
	{600, [3]Table2Cell{{2, 2, 5.036, 5.036}, {5, 3, 2.955, 3.079}, {5, 5, 2.204, 2.204}}},
	{700, [3]Table2Cell{{3, 2, 5.349, 5.559}, {5, 5, 3.011, 3.011}, {5, 5, 2.260, 2.260}}},
	{800, [3]Table2Cell{{3, 2, 5.585, 6.082}, {5, 5, 3.066, 3.066}, {5, 5, 2.315, 2.315}}},
	{900, [3]Table2Cell{{3, 2, 5.820, 6.604}, {5, 5, 3.122, 3.122}, {6, 6, 2.346, 2.346}}},
	{1000, [3]Table2Cell{{3, 2, 6.056, 7.127}, {5, 5, 3.177, 3.177}, {6, 6, 2.374, 2.374}}},
}

// Figure parameter grids (Section 7): Figures 4(a)/(b) sweep the movement
// probability at fixed c = 0.01, U = 100, V = 1; Figures 5(a)/(b) sweep the
// call-arrival probability at fixed q = 0.05, U = 100, V = 1. Both use
// delays m ∈ {1, 2, 3, unbounded}.
const (
	FigUpdateCost = 100.0
	FigPollCost   = 1.0
	Fig4CallProb  = 0.01
	Fig5MoveProb  = 0.05
)

// FigDelays lists the four delay curves of every figure (0 = unbounded).
var FigDelays = [4]int{1, 2, 3, 0}

// Fig4MoveProbs is the movement-probability sweep of Figures 4(a)/(b)
// ("varied from 0.001 to 0.5", log-spaced).
var Fig4MoveProbs = []float64{
	0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
}

// Fig5CallProbs is the call-probability sweep of Figures 5(a)/(b)
// ("varied between 0.001 and 0.1", log-spaced).
var Fig5CallProbs = []float64{
	0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
}
