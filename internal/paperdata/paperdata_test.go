package paperdata

import "testing"

// Sanity checks on the transcription itself. (The stronger check — that
// every value equals what this repository computes — lives in
// internal/core's TestReproduceTable1/2.)

func TestTable1Shape(t *testing.T) {
	if len(Table1) != 28 {
		t.Fatalf("%d rows, want 28", len(Table1))
	}
	prevU := 0.0
	for _, row := range Table1 {
		if row.U <= prevU {
			t.Errorf("U=%v not increasing", row.U)
		}
		prevU = row.U
		// Looser delay bounds never published a higher optimal cost.
		for col := 1; col < 4; col++ {
			if row.CT[col] > row.CT[col-1]+1e-9 {
				t.Errorf("U=%v: C_T column %d (%v) above column %d (%v)",
					row.U, col, row.CT[col], col-1, row.CT[col-1])
			}
		}
		for col := 0; col < 4; col++ {
			if row.D[col] < 0 || row.CT[col] <= 0 {
				t.Errorf("U=%v column %d: nonsensical values", row.U, col)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if len(Table2) != 28 {
		t.Fatalf("%d rows, want 28", len(Table2))
	}
	prevU := 0.0
	for _, row := range Table2 {
		if row.U <= prevU {
			t.Errorf("U=%v not increasing", row.U)
		}
		prevU = row.U
		for col, cell := range row.Cells {
			if cell.DStar < 0 || cell.DNear < 0 || cell.CT <= 0 || cell.CTNear <= 0 {
				t.Errorf("U=%v column %d: nonsensical values", row.U, col)
			}
			// The exact optimum never exceeds the near-optimal cost.
			if cell.CT > cell.CTNear+1e-9 {
				t.Errorf("U=%v column %d: C_T %v above C'_T %v", row.U, col, cell.CT, cell.CTNear)
			}
			if col > 0 && cell.CT > row.Cells[col-1].CT+1e-9 {
				t.Errorf("U=%v: exact cost not improving with looser delay", row.U)
			}
		}
		// When the *unbounded* optimum fits in 3 rings (d* ≤ 2), the m=3
		// bound is not binding at the optimum, so the columns coincide.
		m3, un := row.Cells[1], row.Cells[2]
		if un.DStar <= 2 && (m3.DStar != un.DStar || m3.CT != un.CT) {
			t.Errorf("U=%v: m=3 and unbounded disagree despite unbounded d*=%d", row.U, un.DStar)
		}
	}
}

func TestFigureGrids(t *testing.T) {
	if len(Fig4MoveProbs) == 0 || len(Fig5CallProbs) == 0 {
		t.Fatal("empty figure grids")
	}
	check := func(name string, xs []float64, lo, hi float64) {
		prev := 0.0
		for _, x := range xs {
			if x <= prev {
				t.Errorf("%s not increasing at %v", name, x)
			}
			if x < lo || x > hi {
				t.Errorf("%s value %v outside paper range [%v, %v]", name, x, lo, hi)
			}
			prev = x
		}
	}
	check("Fig4MoveProbs", Fig4MoveProbs, 0.001, 0.5)
	check("Fig5CallProbs", Fig5CallProbs, 0.001, 0.1)
	if Table1Delays != [4]int{1, 2, 3, 0} {
		t.Error("Table1Delays drifted")
	}
	if Table2Delays != [3]int{1, 3, 0} {
		t.Error("Table2Delays drifted")
	}
}
