package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestUpdateRoundTrip(t *testing.T) {
	f := func(term uint32, q, r int32, seq uint32, thr uint16) bool {
		in := Update{Terminal: term, Cell: Cell{Q: q, R: r}, Seq: seq, Threshold: thr}
		buf := in.Encode(nil)
		if len(buf) != UpdateSize {
			return false
		}
		out, err := DecodeUpdate(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPollRoundTrip(t *testing.T) {
	f := func(term uint32, q, r int32, call uint32, cycle uint8) bool {
		in := Poll{Terminal: term, Cell: Cell{Q: q, R: r}, Call: call, Cycle: cycle}
		buf := in.Encode(nil)
		if len(buf) != PollSize {
			return false
		}
		out, err := DecodePoll(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	f := func(term uint32, q, r int32, call uint32) bool {
		in := Reply{Terminal: term, Cell: Cell{Q: q, R: r}, Call: call}
		buf := in.Encode(nil)
		if len(buf) != ReplySize {
			return false
		}
		out, err := DecodeReply(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	f := func(term uint32, seq uint32) bool {
		in := Ack{Terminal: term, Seq: seq}
		buf := in.Encode(nil)
		if len(buf) != AckSize {
			return false
		}
		out, err := DecodeAck(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := Update{Terminal: 1}.Encode(prefix)
	if !bytes.HasPrefix(buf, prefix) {
		t.Error("Encode did not append")
	}
	if len(buf) != 2+UpdateSize {
		t.Errorf("len = %d", len(buf))
	}
	if _, err := DecodeUpdate(buf[2:]); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	u := Update{Terminal: 7, Cell: Cell{1, -2}, Seq: 3}.Encode(nil)
	p := Poll{Terminal: 7}.Encode(nil)
	r := Reply{Terminal: 7}.Encode(nil)
	for i := 0; i < UpdateSize; i++ {
		if _, err := DecodeUpdate(u[:i]); !errors.Is(err, ErrShort) {
			t.Errorf("DecodeUpdate(%d bytes): %v", i, err)
		}
	}
	for i := 0; i < PollSize; i++ {
		if _, err := DecodePoll(p[:i]); !errors.Is(err, ErrShort) {
			t.Errorf("DecodePoll(%d bytes): %v", i, err)
		}
	}
	for i := 0; i < ReplySize; i++ {
		if _, err := DecodeReply(r[:i]); !errors.Is(err, ErrShort) {
			t.Errorf("DecodeReply(%d bytes): %v", i, err)
		}
	}
	a := Ack{Terminal: 7, Seq: 3}.Encode(nil)
	for i := 0; i < AckSize; i++ {
		if _, err := DecodeAck(a[:i]); !errors.Is(err, ErrShort) {
			t.Errorf("DecodeAck(%d bytes): %v", i, err)
		}
	}
}

func TestDecodeTypeMismatch(t *testing.T) {
	u := Update{Terminal: 9}.Encode(nil)
	if _, err := DecodePoll(append(u, 0)); !errors.Is(err, ErrType) {
		t.Errorf("poll from update bytes: %v", err)
	}
	p := Poll{Terminal: 9}.Encode(nil)
	if _, err := DecodeUpdate(append(p, 0)); !errors.Is(err, ErrType) {
		t.Errorf("update from poll bytes: %v", err)
	}
	if _, err := DecodeReply(p); !errors.Is(err, ErrType) {
		t.Errorf("reply from poll bytes: %v", err)
	}
	if _, err := DecodeAck(u); !errors.Is(err, ErrType) {
		t.Errorf("ack from update bytes: %v", err)
	}
	a := Ack{Terminal: 9}.Encode(nil)
	if _, err := DecodeUpdate(append(a, make([]byte, UpdateSize)...)); !errors.Is(err, ErrType) {
		t.Errorf("update from ack bytes: %v", err)
	}
}

func TestPeek(t *testing.T) {
	if _, err := Peek(nil); !errors.Is(err, ErrShort) {
		t.Error("Peek(nil) should fail")
	}
	cases := []struct {
		buf  []byte
		want MsgType
	}{
		{Update{}.Encode(nil), TypeUpdate},
		{Poll{}.Encode(nil), TypePoll},
		{Reply{}.Encode(nil), TypeReply},
		{Ack{}.Encode(nil), TypeAck},
	}
	for _, tc := range cases {
		got, err := Peek(tc.buf)
		if err != nil || got != tc.want {
			t.Errorf("Peek = %v, %v; want %v", got, err, tc.want)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeUpdate.String() != "update" || TypePoll.String() != "poll" ||
		TypeReply.String() != "reply" || TypeAck.String() != "ack" {
		t.Error("known type names wrong")
	}
	if MsgType(0xFF).String() != "MsgType(0xff)" {
		t.Errorf("unknown type name: %s", MsgType(0xFF))
	}
}

func TestNegativeCoordinatesSurvive(t *testing.T) {
	in := Update{Terminal: 1, Cell: Cell{Q: -2147483648, R: 2147483647}, Seq: 0}
	out, err := DecodeUpdate(in.Encode(nil))
	if err != nil || out.Cell != in.Cell {
		t.Errorf("extreme coords: %+v, %v", out, err)
	}
}
