package wire

import (
	"bytes"
	"testing"
)

// corpusUpdates, corpusPolls and corpusReplies are valid messages spanning
// the field edge cases: zero values, negative cell coordinates, and
// saturated integers. They seed every byte-level fuzz target with
// structure-aware inputs, so mutation starts from decodable messages
// instead of having to rediscover the framing.
var (
	corpusUpdates = []Update{
		{},
		{Terminal: 1, Cell: Cell{2, -3}, Seq: 4, Threshold: 5},
		{Terminal: ^uint32(0), Cell: Cell{1 << 30, -(1 << 30)}, Seq: ^uint32(0), Threshold: ^uint16(0)},
	}
	corpusPolls = []Poll{
		{},
		{Terminal: 9, Cell: Cell{-7, 1}, Call: 3, Cycle: 2},
		{Terminal: ^uint32(0), Cell: Cell{-1, -1}, Call: ^uint32(0), Cycle: 255},
	}
	corpusReplies = []Reply{
		{},
		{Terminal: 8, Cell: Cell{0, 0}, Call: 12},
		{Terminal: ^uint32(0), Cell: Cell{1 << 30, -(1 << 30)}, Call: ^uint32(0)},
	}
	corpusAcks = []Ack{
		{},
		{Terminal: 6, Seq: 11},
		{Terminal: ^uint32(0), Seq: ^uint32(0)},
	}
)

// FuzzDecodeUpdate checks that arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to the same prefix.
func FuzzDecodeUpdate(f *testing.F) {
	for _, u := range corpusUpdates {
		f.Add(u.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TypeUpdate)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		re := u.Encode(nil)
		if !bytes.Equal(re, data[:UpdateSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:UpdateSize])
		}
	})
}

// FuzzDecodePoll is the poll-message analogue.
func FuzzDecodePoll(f *testing.F) {
	for _, p := range corpusPolls {
		f.Add(p.Encode(nil))
	}
	f.Add([]byte{byte(TypePoll), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePoll(data)
		if err != nil {
			return
		}
		re := p.Encode(nil)
		if !bytes.Equal(re, data[:PollSize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzDecodeReply is the reply-message analogue.
func FuzzDecodeReply(f *testing.F) {
	for _, r := range corpusReplies {
		f.Add(r.Encode(nil))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := r.Encode(nil)
		if !bytes.Equal(re, data[:ReplySize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzDecodeAck is the ack-message analogue of the byte-level targets.
func FuzzDecodeAck(f *testing.F) {
	for _, a := range corpusAcks {
		f.Add(a.Encode(nil))
	}
	f.Add([]byte{byte(TypeAck), 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAck(data)
		if err != nil {
			return
		}
		re := a.Encode(nil)
		if !bytes.Equal(re, data[:AckSize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzAckRoundTrip fuzzes over ack *fields* (every input is a valid
// message by construction) and asserts the codec's round-trip law, the
// Peek tag, and that the other decoders reject the ack framing — the ack
// joined the protocol after the original three classes, so the
// cross-decoder rejections are what a wire-compatibility regression would
// break first.
func FuzzAckRoundTrip(f *testing.F) {
	for _, a := range corpusAcks {
		f.Add(a.Terminal, a.Seq)
	}
	f.Fuzz(func(t *testing.T, term, seq uint32) {
		a := Ack{Terminal: term, Seq: seq}
		enc := a.Encode(nil)
		if len(enc) != AckSize {
			t.Fatalf("encoded %d bytes, want %d", len(enc), AckSize)
		}
		got, err := DecodeAck(enc)
		if err != nil {
			t.Fatalf("decode valid ack: %v", err)
		}
		if got != a {
			t.Fatalf("round trip: %+v != %+v", got, a)
		}
		if tag, err := Peek(enc); err != nil || tag != TypeAck {
			t.Fatalf("Peek = (%v, %v), want %v", tag, err, TypeAck)
		}
		// An ack must never be mistaken for the other message classes,
		// even padded out to their lengths.
		padded := append(enc, make([]byte, UpdateSize)...)
		if _, err := DecodeUpdate(padded); err == nil {
			t.Fatal("update decoder accepted an ack")
		}
		if _, err := DecodePoll(padded); err == nil {
			t.Fatal("poll decoder accepted an ack")
		}
		if _, err := DecodeReply(padded); err == nil {
			t.Fatal("reply decoder accepted an ack")
		}
	})
}

// FuzzRoundTrip is the structure-aware complement of the byte-level
// targets: it fuzzes over message *fields* (so every input is a valid
// message by construction) and asserts the codec's round-trip law
// decode(encode(x)) == x for all three message classes, plus Peek and the
// cross-decoder type-tag rejections.
func FuzzRoundTrip(f *testing.F) {
	add := func(kind uint8, term uint32, q, r int32, x uint32, aux uint16) {
		f.Add(kind, term, q, r, x, aux)
	}
	for _, u := range corpusUpdates {
		add(0, u.Terminal, u.Cell.Q, u.Cell.R, u.Seq, u.Threshold)
	}
	for _, p := range corpusPolls {
		add(1, p.Terminal, p.Cell.Q, p.Cell.R, p.Call, uint16(p.Cycle))
	}
	for _, r := range corpusReplies {
		add(2, r.Terminal, r.Cell.Q, r.Cell.R, r.Call, 0)
	}
	f.Fuzz(func(t *testing.T, kind uint8, term uint32, q, r int32, x uint32, aux uint16) {
		cell := Cell{Q: q, R: r}
		var enc []byte
		var want MsgType
		switch kind % 3 {
		case 0:
			u := Update{Terminal: term, Cell: cell, Seq: x, Threshold: aux}
			enc = u.Encode(nil)
			want = TypeUpdate
			got, err := DecodeUpdate(enc)
			if err != nil {
				t.Fatalf("decode valid update: %v", err)
			}
			if got != u {
				t.Fatalf("round trip: %+v != %+v", got, u)
			}
			if _, err := DecodePoll(enc); err == nil {
				t.Fatal("poll decoder accepted an update")
			}
		case 1:
			p := Poll{Terminal: term, Cell: cell, Call: x, Cycle: uint8(aux)}
			enc = p.Encode(nil)
			want = TypePoll
			got, err := DecodePoll(enc)
			if err != nil {
				t.Fatalf("decode valid poll: %v", err)
			}
			if got != p {
				t.Fatalf("round trip: %+v != %+v", got, p)
			}
			if _, err := DecodeReply(enc); err == nil {
				t.Fatal("reply decoder accepted a poll")
			}
		case 2:
			rp := Reply{Terminal: term, Cell: cell, Call: x}
			enc = rp.Encode(nil)
			want = TypeReply
			got, err := DecodeReply(enc)
			if err != nil {
				t.Fatalf("decode valid reply: %v", err)
			}
			if got != rp {
				t.Fatalf("round trip: %+v != %+v", got, rp)
			}
			if _, err := DecodeUpdate(enc); err == nil {
				t.Fatal("update decoder accepted a reply")
			}
		}
		if tag, err := Peek(enc); err != nil || tag != want {
			t.Fatalf("Peek = (%v, %v), want %v", tag, err, want)
		}
	})
}
