package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeUpdate checks that arbitrary bytes never panic the decoder and
// that anything it accepts re-encodes to the same prefix.
func FuzzDecodeUpdate(f *testing.F) {
	f.Add(Update{Terminal: 1, Cell: Cell{2, -3}, Seq: 4, Threshold: 5}.Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{byte(TypeUpdate)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		re := u.Encode(nil)
		if !bytes.Equal(re, data[:UpdateSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:UpdateSize])
		}
	})
}

// FuzzDecodePoll is the poll-message analogue.
func FuzzDecodePoll(f *testing.F) {
	f.Add(Poll{Terminal: 9, Cell: Cell{-7, 1}, Call: 3, Cycle: 2}.Encode(nil))
	f.Add([]byte{byte(TypePoll), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePoll(data)
		if err != nil {
			return
		}
		re := p.Encode(nil)
		if !bytes.Equal(re, data[:PollSize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzDecodeReply is the reply-message analogue.
func FuzzDecodeReply(f *testing.F) {
	f.Add(Reply{Terminal: 8, Cell: Cell{0, 0}, Call: 12}.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := r.Encode(nil)
		if !bytes.Equal(re, data[:ReplySize]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
