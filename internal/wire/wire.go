// Package wire defines the binary signalling messages exchanged between
// mobile terminals and the fixed network in the PCN system simulator:
// location updates (uplink), paging polls (downlink, one per polled cell)
// and paging replies (uplink). The encodings are compact fixed-layout
// big-endian structures framed by a one-byte type tag, so the simulator can
// account for signalling bandwidth in bytes as well as in the paper's
// abstract U/V cost units.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType tags a message on the wire.
type MsgType uint8

const (
	// TypeUpdate is a terminal→network location update: "my current cell
	// is now my center cell".
	TypeUpdate MsgType = 0x01
	// TypePoll is a network→cell paging poll: "is terminal T in this
	// cell?" broadcast on the cell's paging channel.
	TypePoll MsgType = 0x02
	// TypeReply is a terminal→network paging reply: "terminal T is here".
	TypeReply MsgType = 0x03
	// TypeAck is a network→terminal acknowledgement of a location update,
	// turning updates into an acked exchange so the terminal can
	// retransmit when the uplink loses its message or the HLR is down.
	TypeAck MsgType = 0x04
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypePoll:
		return "poll"
	case TypeReply:
		return "reply"
	case TypeAck:
		return "ack"
	default:
		return fmt.Sprintf("MsgType(0x%02x)", uint8(t))
	}
}

// Cell is a wire-encoded cell identifier: axial coordinates for the
// hexagonal grid, (index, 0) for the line.
type Cell struct {
	Q, R int32
}

// Sizes of the fixed-layout encodings, including the type tag.
const (
	UpdateSize = 1 + 4 + 8 + 4 + 2 // tag, terminal, cell, seq, threshold
	PollSize   = 1 + 4 + 8 + 4 + 1
	ReplySize  = 1 + 4 + 8 + 4
	AckSize    = 1 + 4 + 4 // tag, terminal, seq
)

// Update is the location-update message (paper Section 2.2: the terminal
// reports its location when its distance from the center cell exceeds the
// threshold).
type Update struct {
	Terminal uint32
	Cell     Cell
	// Seq numbers the terminal's updates, letting the HLR discard
	// reordered duplicates.
	Seq uint32
	// Threshold is the update threshold distance the terminal is now
	// operating with, so the network can bound its paging area. Static
	// schemes send a constant; the dynamic per-user scheme (paper
	// Section 8, "determined continuously on a per-user basis") sends the
	// latest re-optimized value.
	Threshold uint16
}

// Poll is one polling-cycle probe for one cell (paper Section 2.2's polling
// cycle, step 1: "sends a polling signal to the target cell").
type Poll struct {
	Terminal uint32
	Cell     Cell
	// Call identifies the incoming call being routed.
	Call uint32
	// Cycle is the polling-cycle index (1-based), bounded by the maximum
	// paging delay m.
	Cycle uint8
}

// Reply is the terminal's answer to a poll received in its current cell.
type Reply struct {
	Terminal uint32
	Cell     Cell
	Call     uint32
}

var (
	// ErrShort reports a truncated buffer.
	ErrShort = errors.New("wire: short buffer")
	// ErrType reports a type-tag mismatch.
	ErrType = errors.New("wire: unexpected message type")
)

func putCell(b []byte, c Cell) {
	binary.BigEndian.PutUint32(b, uint32(c.Q))
	binary.BigEndian.PutUint32(b[4:], uint32(c.R))
}

func getCell(b []byte) Cell {
	return Cell{
		Q: int32(binary.BigEndian.Uint32(b)),
		R: int32(binary.BigEndian.Uint32(b[4:])),
	}
}

// Encode appends the update's wire form to dst and returns the result.
func (u Update) Encode(dst []byte) []byte {
	var b [UpdateSize]byte
	b[0] = byte(TypeUpdate)
	binary.BigEndian.PutUint32(b[1:], u.Terminal)
	putCell(b[5:], u.Cell)
	binary.BigEndian.PutUint32(b[13:], u.Seq)
	binary.BigEndian.PutUint16(b[17:], u.Threshold)
	return append(dst, b[:]...)
}

// DecodeUpdate parses an update message.
func DecodeUpdate(b []byte) (Update, error) {
	if len(b) < UpdateSize {
		return Update{}, ErrShort
	}
	if MsgType(b[0]) != TypeUpdate {
		return Update{}, fmt.Errorf("%w: got %v, want %v", ErrType, MsgType(b[0]), TypeUpdate)
	}
	return Update{
		Terminal:  binary.BigEndian.Uint32(b[1:]),
		Cell:      getCell(b[5:]),
		Seq:       binary.BigEndian.Uint32(b[13:]),
		Threshold: binary.BigEndian.Uint16(b[17:]),
	}, nil
}

// Encode appends the poll's wire form to dst and returns the result.
func (p Poll) Encode(dst []byte) []byte {
	var b [PollSize]byte
	b[0] = byte(TypePoll)
	binary.BigEndian.PutUint32(b[1:], p.Terminal)
	putCell(b[5:], p.Cell)
	binary.BigEndian.PutUint32(b[13:], p.Call)
	b[17] = p.Cycle
	return append(dst, b[:]...)
}

// DecodePoll parses a poll message.
func DecodePoll(b []byte) (Poll, error) {
	if len(b) < PollSize {
		return Poll{}, ErrShort
	}
	if MsgType(b[0]) != TypePoll {
		return Poll{}, fmt.Errorf("%w: got %v, want %v", ErrType, MsgType(b[0]), TypePoll)
	}
	return Poll{
		Terminal: binary.BigEndian.Uint32(b[1:]),
		Cell:     getCell(b[5:]),
		Call:     binary.BigEndian.Uint32(b[13:]),
		Cycle:    b[17],
	}, nil
}

// Encode appends the reply's wire form to dst and returns the result.
func (r Reply) Encode(dst []byte) []byte {
	var b [ReplySize]byte
	b[0] = byte(TypeReply)
	binary.BigEndian.PutUint32(b[1:], r.Terminal)
	putCell(b[5:], r.Cell)
	binary.BigEndian.PutUint32(b[13:], r.Call)
	return append(dst, b[:]...)
}

// DecodeReply parses a reply message.
func DecodeReply(b []byte) (Reply, error) {
	if len(b) < ReplySize {
		return Reply{}, ErrShort
	}
	if MsgType(b[0]) != TypeReply {
		return Reply{}, fmt.Errorf("%w: got %v, want %v", ErrType, MsgType(b[0]), TypeReply)
	}
	return Reply{
		Terminal: binary.BigEndian.Uint32(b[1:]),
		Cell:     getCell(b[5:]),
		Call:     binary.BigEndian.Uint32(b[13:]),
	}, nil
}

// Ack is the network's acknowledgement of a location update: it echoes the
// update's sequence number so the terminal can match it against its pending
// exchange and stop retransmitting.
type Ack struct {
	Terminal uint32
	// Seq echoes the acknowledged update's sequence number.
	Seq uint32
}

// Encode appends the ack's wire form to dst and returns the result.
func (a Ack) Encode(dst []byte) []byte {
	var b [AckSize]byte
	b[0] = byte(TypeAck)
	binary.BigEndian.PutUint32(b[1:], a.Terminal)
	binary.BigEndian.PutUint32(b[5:], a.Seq)
	return append(dst, b[:]...)
}

// DecodeAck parses an ack message.
func DecodeAck(b []byte) (Ack, error) {
	if len(b) < AckSize {
		return Ack{}, ErrShort
	}
	if MsgType(b[0]) != TypeAck {
		return Ack{}, fmt.Errorf("%w: got %v, want %v", ErrType, MsgType(b[0]), TypeAck)
	}
	return Ack{
		Terminal: binary.BigEndian.Uint32(b[1:]),
		Seq:      binary.BigEndian.Uint32(b[5:]),
	}, nil
}

// Peek returns the type tag of an encoded message without decoding it.
func Peek(b []byte) (MsgType, error) {
	if len(b) == 0 {
		return 0, ErrShort
	}
	return MsgType(b[0]), nil
}
