package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	got, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("r%d", i), nil }
	one, err := Map(37, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		many, err := Map(37, workers, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range one {
			if one[i] != many[i] {
				t.Fatalf("workers=%d: out[%d] = %q vs %q", workers, i, many[i], one[i])
			}
		}
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	e3 := errors.New("three")
	e7 := errors.New("seven")
	_, err := Map(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, e7
		case 3:
			return 0, e3
		}
		return i, nil
	})
	if !errors.Is(err, e3) {
		t.Errorf("got %v, want lowest-index error", err)
	}
}

func TestMapAllTasksRunDespiteError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(50, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 50 {
		t.Errorf("%d tasks ran, want 50", ran.Load())
	}
}

func TestMapEdgeCases(t *testing.T) {
	if _, err := Map(-1, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Map[int](5, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
	out, err := Map(0, 4, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=0: %v, %v", out, err)
	}
	// workers > n and workers <= 0 both work.
	if _, err := Map(3, 100, func(i int) (int, error) { return i, nil }); err != nil {
		t.Error(err)
	}
	if _, err := Map(3, 0, func(i int) (int, error) { return i, nil }); err != nil {
		t.Error(err)
	}
}

func TestMapActuallyParallel(t *testing.T) {
	// With enough workers, at least two tasks overlap: detect via a
	// barrier that only releases when two goroutines arrive.
	gate := make(chan struct{})
	arrived := make(chan struct{}, 2)
	_, err := Map(2, 2, func(i int) (int, error) {
		arrived <- struct{}{}
		if i == 0 {
			<-gate // waits for task 1 to release it
		} else {
			<-arrived
			<-arrived
			close(gate)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapPanicDoesNotDeadlock is the regression test for the worker-pool
// deadlock: a panicking fn used to kill its worker after wg.Done, leaving
// the producer blocked forever on the unbuffered task channel. Now every
// task runs, and the lowest-index panic is re-raised on the caller.
// (Before the per-task recovery this test hung until the test timeout.)
func TestMapPanicDoesNotDeadlock(t *testing.T) {
	var ran atomic.Int64
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic swallowed")
		}
		if v != "boom-1" {
			t.Errorf("recovered %v, want lowest-index panic boom-1", v)
		}
		if ran.Load() != 8 {
			t.Errorf("%d tasks ran, want all 8", ran.Load())
		}
	}()
	_, _ = Map(8, 2, func(i int) (int, error) {
		ran.Add(1)
		if i%2 == 1 {
			panic(fmt.Sprintf("boom-%d", i))
		}
		return i, nil
	})
	t.Fatal("Map returned despite panicking tasks")
}

// TestMapPanicBeatsError: a panic anywhere outranks an earlier error —
// it is a bug signal, not a failed experiment.
func TestMapPanicBeatsError(t *testing.T) {
	defer func() {
		if v := recover(); v != "bug" {
			t.Errorf("recovered %v, want the panic", v)
		}
	}()
	_, _ = Map(4, 2, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("failed experiment")
		}
		if i == 3 {
			panic("bug")
		}
		return i, nil
	})
	t.Fatal("Map returned despite a panicking task")
}
