// Package sweep runs embarrassingly parallel experiment grids across a
// bounded pool of goroutines while preserving result order and
// determinism: element i of the result always comes from fn(i), whatever
// the execution interleaving. It is the engine behind the parameter sweeps
// of the benchmark harness and the parallel Monte-Carlo runners.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// taskPanic records a recovered panic from one task so it can be
// re-raised on the caller's goroutine after the pool drains.
type taskPanic struct {
	val any
}

// Map evaluates fn(0..n−1) using at most workers concurrent goroutines
// (workers ≤ 0 selects GOMAXPROCS) and returns the results in index order.
// If any call fails, Map returns the error with the lowest index; all
// in-flight calls still complete (fn is never abandoned mid-run).
//
// A panicking fn does not kill its worker: the panic is recovered
// per-task, every remaining task still runs, and once the pool has
// drained the panic with the lowest index is re-raised on the caller's
// goroutine. Panics take precedence over errors — they indicate a bug,
// not a failed experiment — and without the per-task recovery a single
// panic would strand the producer on the unbuffered task channel and
// deadlock Map forever.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative task count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil task function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	if n == 0 {
		return out, nil
	}

	call := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panics[i] = &taskPanic{val: v}
			}
		}()
		out[i], errs[i] = fn(i)
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, p := range panics {
		if p != nil {
			panic(p.val)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
