// Package sweep runs embarrassingly parallel experiment grids across a
// bounded pool of goroutines while preserving result order and
// determinism: element i of the result always comes from fn(i), whatever
// the execution interleaving. It is the engine behind the parameter sweeps
// of the benchmark harness and the parallel Monte-Carlo runners.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// taskPanic records a recovered panic from one task so it can be
// re-raised on the caller's goroutine after the pool drains.
type taskPanic struct {
	val any
}

// Map evaluates fn(0..n−1) using at most workers concurrent goroutines
// (workers ≤ 0 selects GOMAXPROCS) and returns the results in index order.
// If any call fails, Map returns the error with the lowest index; all
// in-flight calls still complete (fn is never abandoned mid-run).
//
// A panicking fn does not kill its worker: the panic is recovered
// per-task, every remaining task still runs, and once the pool has
// drained the panic with the lowest index is re-raised on the caller's
// goroutine. Panics take precedence over errors — they indicate a bug,
// not a failed experiment — and without the per-task recovery a single
// panic would strand the producer on the unbuffered task channel and
// deadlock Map forever.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil task function")
	}
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cooperative cancellation: once ctx is cancelled no
// new task is dispatched (the undispatched indices are charged ctx.Err())
// and every in-flight fn receives ctx so it can stop early. The error
// returned is still the one with the lowest index, so a run cancelled
// mid-flight deterministically reports the first index that did not
// complete, whichever worker goroutines happened to be ahead.
//
// fn must treat ctx as advisory — returning promptly once it is done —
// but is never abandoned: MapCtx always waits for in-flight calls to
// return before it does. The panic semantics match Map exactly.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative task count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil task function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	if n == 0 {
		return out, nil
	}

	call := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panics[i] = &taskPanic{val: v}
			}
		}()
		out[i], errs[i] = fn(ctx, i)
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				call(i)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			// Charge every undispatched task the cancellation error; the
			// workers drain naturally once idx closes.
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	for _, p := range panics {
		if p != nil {
			panic(p.val)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
