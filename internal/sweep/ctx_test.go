package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapCtxCompletes checks that a background context changes nothing:
// MapCtx with a never-cancelled context behaves exactly like Map.
func TestMapCtxCompletes(t *testing.T) {
	got, err := MapCtx(context.Background(), 100, 4, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("MapCtx: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapCtxCancelStopsDispatch checks that cancelling the context stops
// new tasks from being dispatched: with one worker and a cancel fired by
// the first task, almost all of the remaining tasks must never run, and
// the call returns the context's error.
func TestMapCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 1000, 1, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The producer may have one task in hand when cancel lands; anything
	// beyond a small constant means dispatch kept going.
	if n := ran.Load(); n > 4 {
		t.Fatalf("%d tasks ran after cancellation, want ≤ 4", n)
	}
}

// TestMapCtxCancelReachesInflight checks that in-flight tasks receive the
// cancelled context and that MapCtx waits for them rather than abandoning
// them.
func TestMapCtxCancelReachesInflight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int64
	start := make(chan struct{})
	go func() {
		<-start
		cancel()
	}()
	_, err := MapCtx(ctx, 4, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			close(start)
		}
		select {
		case <-ctx.Done():
			finished.Add(1)
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return 0, errors.New("cancellation never reached the task")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := finished.Load(); n == 0 {
		t.Fatal("no in-flight task observed the cancellation")
	}
}

// TestMapCtxPanicPrecedence checks the panic contract carries over from
// Map: a panicking task still re-raises after a cancellation.
func TestMapCtxPanicPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	_, _ = MapCtx(ctx, 8, 1, func(_ context.Context, i int) (int, error) {
		if i == 0 {
			cancel()
			panic("boom")
		}
		return i, nil
	})
	t.Fatal("MapCtx returned instead of panicking")
}
