package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Checkpoint is a complete, serializable snapshot of a sharded run at a
// slot boundary: enough state to Resume the run (RunShardedOpts) such
// that the final Metrics — every counter, accumulator, histogram,
// telemetry frame and the event count — are bit-identical to an
// uninterrupted run of the same configuration. That equivalence is the
// crash-recovery analogue of the engines' shard-count invariance, and is
// enforced by locman's checkpoint-equivalence property test.
//
// A checkpoint is taken with every shard aligned at the same completed
// slot count (Slot): the captured state reflects slots [0, Slot) and
// nothing of slot Slot itself. All fields are exported and concrete so
// the whole structure round-trips exactly through gob
// (EncodeCheckpoint/DecodeCheckpoint); float64 fields round-trip
// bit-for-bit, which the RNG positions, Welford accumulators and EWMA
// estimators require.
type Checkpoint struct {
	// Slot is the boundary the checkpoint was taken at: the number of
	// completed slots, 0 < Slot < Slots.
	Slot int64
	// Slots, Shards, StartD and Seed echo the run shape the checkpoint
	// belongs to; Resume validates them against the offered configuration
	// rather than silently producing a run that matches nothing.
	Slots  int64
	Shards int
	StartD int
	Seed   uint64
	// Engine records which engine took the checkpoint. The reference
	// engine (EngineDES) keeps one scheduler per shard, the batch engines
	// (EngineFast, EngineCols) one per terminal; checkpoints are
	// interchangeable within a class but not across (see engineClass).
	Engine Engine
	// Scheme and SchemeParam record the update scheme the run uses
	// (SchemeNames / UpdateScheme.Param); resuming under a different
	// trigger would replay a different mechanism entirely. Checkpoints
	// written before schemes existed decode with an empty Scheme, which
	// validateResume reads as "distance".
	Scheme      string
	SchemeParam int64
	// Shard holds the per-shard state, indexed by shard.
	Shard []ShardCheckpoint
}

// ShardCheckpoint is one shard's share of a Checkpoint.
type ShardCheckpoint struct {
	// Slot echoes Checkpoint.Slot; Lo and Hi are the shard's global
	// terminal range [Lo, Hi).
	Slot   int64
	Lo, Hi int
	// CallSeq is the shard network's call sequence counter.
	CallSeq uint32
	// Terms and HLR hold the per-terminal mobile-side and registry state,
	// indexed by terminal position within the shard.
	Terms []TermCheckpoint
	HLR   []HLRCheckpoint
	// Metrics is the shard's accumulated measurement state.
	Metrics MetricsCheckpoint
	// Frames is the telemetry snapshot series captured so far (including
	// a frame at this boundary when it lies on the telemetry cadence).
	Frames []FrameCheckpoint
	// SubEvents is the batch engines' cumulative dispatched sub-slot
	// event count (unused by the reference engine, which derives its
	// count from the scheduler's Processed counter).
	SubEvents uint64
	// Scheds, PreSweep, CurD and RunLen are the batch engines'
	// per-terminal scheduler state, reference-tie-break marks and batched
	// threshold-usage accounting; nil for the reference engine.
	Scheds   []SchedCheckpoint
	PreSweep []uint64
	CurD     []int64
	RunLen   []int64
	// DES is the reference engine's single shard scheduler; nil for the
	// batch engines.
	DES *DESCheckpoint
}

// TermCheckpoint is one terminal's mobile-side state.
type TermCheckpoint struct {
	Pos, Center wire.Cell
	Threshold   int
	Seq         uint32
	AckedSeq    uint32
	Retries     int
	Desynced    bool
	DesyncedAt  uint64
	EstQ, EstC  float64
	RNG         [4]uint64
	// Moves and LastContact are the movement and timer schemes' trigger
	// state (terminal.moves / terminal.lastContact); zero in distance
	// runs and in checkpoints written before schemes existed.
	Moves       int64
	LastContact int64
}

// HLRCheckpoint is one terminal's registry record.
type HLRCheckpoint struct {
	Center    wire.Cell
	Seq       uint32
	Threshold int
}

// MetricsCheckpoint is the serializable mid-run state of a shard's
// Metrics: the counters, the latency histograms, the threshold-usage map
// and the per-terminal accumulators. Run-shape fields (Slots, Terminals,
// ids) and the derived aggregates are rebuilt on resume.
type MetricsCheckpoint struct {
	Updates, Calls, PolledCells         int64
	UpdateBytes, PollBytes, ReplyBytes  int64
	NotFound                            int64
	LostUpdates, LostPolls, LostReplies int64
	FallbackCalls, Retransmissions      int64
	Acks, AckBytes                      int64
	RePolls, DroppedCalls               int64
	OutageDeferred                      int64
	DelayHist, RecoveryHist             *telemetry.Hist
	ThresholdSlots                      map[int]int64
	PerTerminal                         []TermStatsCheckpoint
}

// TermStatsCheckpoint is one terminal's measurement state (the id is its
// index within the shard).
type TermStatsCheckpoint struct {
	Updates, Calls, PolledCells int64
	Delay, Recovery             stats.AccumulatorState
}

// FrameCheckpoint is one captured telemetry shard frame in serializable
// form.
type FrameCheckpoint struct {
	Slot            int64
	First           int
	Counters        telemetry.Counters
	Delay, Recovery []stats.AccumulatorState
}

// SchedCheckpoint is one scheduler's exported state (des.Checkpoint).
type SchedCheckpoint struct {
	Now     uint64
	Seq     uint64
	Ran     uint64
	Pending []des.PendingEvent
}

// DESCheckpoint is the reference engine's extra state: the shard
// scheduler (with the currently-running slot event excluded from Ran, as
// if it had not yet been dispatched) and that slot event's insertion
// stamp, so resume can re-create it losing exactly the ties it lost
// originally.
type DESCheckpoint struct {
	Sched        SchedCheckpoint
	SlotEventSeq uint64
}

// engineClass groups engines by checkpoint representation: the reference
// engine's single-scheduler state versus the batch engines' per-terminal
// state. Checkpoints resume on any engine of the same class.
func engineClass(e Engine) string {
	if e == EngineDES {
		return "des"
	}
	return "batch"
}

// ackTag packs an ack-timer's identity — shard-local terminal index and
// update sequence number — into a des event tag. Update sequence numbers
// start at 2 (the initial registration consumes 1), so the tag is never
// zero.
func ackTag(idx uint32, seq uint32) uint64 {
	return uint64(idx)<<32 | uint64(seq)
}

// ackBind returns the tag-to-closure binder for restoring ack timers:
// the inverse of ackTag, closing over the shard's terminals.
func ackBind(n *network, terms []terminal) func(tag uint64) func() {
	return func(tag uint64) func() {
		i := int(tag >> 32)
		seq := uint32(tag)
		t := &terms[i]
		return func() { n.ackTimeout(t, seq) }
	}
}

// schedCheckpoint exports one scheduler's state.
func schedCheckpoint(s *des.Scheduler) SchedCheckpoint {
	now, seq, ran, pending := s.Checkpoint()
	return SchedCheckpoint{Now: uint64(now), Seq: seq, Ran: ran, Pending: pending}
}

// captureShardCore snapshots the state every engine shares: terminals,
// registry, metrics and the telemetry series. The caller adds its
// engine-class scheduler state. All reference types (slices, maps,
// histograms) are deep-copied: the live run keeps mutating them after
// the capture returns.
func captureShardCore(n *network, terms []terminal, rngs []stats.RNG,
	boundary int64, lo, hi int, frames []telemetry.ShardFrame) ShardCheckpoint {
	sc := ShardCheckpoint{
		Slot:    boundary,
		Lo:      lo,
		Hi:      hi,
		CallSeq: n.callSeq,
		Terms:   make([]TermCheckpoint, len(terms)),
		HLR:     make([]HLRCheckpoint, len(n.hlr)),
	}
	for i := range terms {
		t := &terms[i]
		sc.Terms[i] = TermCheckpoint{
			Pos:         t.pos,
			Center:      t.center,
			Threshold:   t.threshold,
			Seq:         t.seq,
			AckedSeq:    t.ackedSeq,
			Retries:     t.retries,
			Desynced:    t.desynced,
			DesyncedAt:  uint64(t.desyncedAt),
			EstQ:        t.est.q,
			EstC:        t.est.c,
			RNG:         rngs[i].State(),
			Moves:       t.moves,
			LastContact: t.lastContact,
		}
	}
	for i, rec := range n.hlr {
		sc.HLR[i] = HLRCheckpoint{Center: rec.center, Seq: rec.seq, Threshold: rec.threshold}
	}

	sc.Metrics = exportMetrics(n.metrics)
	sc.Frames = exportFrames(frames)
	return sc
}

// exportMetrics converts a shard's live Metrics into the serializable
// checkpoint form, deep-copying every reference type (the live run may
// keep mutating them after the export returns). Shared by checkpoint
// capture and the partial-result wire path (RunPartial).
func exportMetrics(m *Metrics) MetricsCheckpoint {
	mc := MetricsCheckpoint{
		Updates: m.Updates, Calls: m.Calls, PolledCells: m.PolledCells,
		UpdateBytes: m.UpdateBytes, PollBytes: m.PollBytes, ReplyBytes: m.ReplyBytes,
		NotFound:    m.NotFound,
		LostUpdates: m.LostUpdates, LostPolls: m.LostPolls, LostReplies: m.LostReplies,
		FallbackCalls: m.FallbackCalls, Retransmissions: m.Retransmissions,
		Acks: m.Acks, AckBytes: m.AckBytes,
		RePolls: m.RePolls, DroppedCalls: m.DroppedCalls,
		OutageDeferred: m.OutageDeferred,
		DelayHist:      m.DelayHist.Clone(),
		RecoveryHist:   m.RecoveryHist.Clone(),
		ThresholdSlots: make(map[int]int64, len(m.ThresholdSlots)),
		PerTerminal:    make([]TermStatsCheckpoint, len(m.PerTerminal)),
	}
	for d, c := range m.ThresholdSlots {
		mc.ThresholdSlots[d] = c
	}
	for i := range m.PerTerminal {
		ts := &m.PerTerminal[i]
		mc.PerTerminal[i] = TermStatsCheckpoint{
			Updates: ts.Updates, Calls: ts.Calls, PolledCells: ts.PolledCells,
			Delay: ts.Delay.State(), Recovery: ts.Recovery.State(),
		}
	}
	return mc
}

// exportFrames converts a telemetry shard-frame series into its
// serializable form (the inverse of restoreFrames).
func exportFrames(frames []telemetry.ShardFrame) []FrameCheckpoint {
	if len(frames) == 0 {
		return nil
	}
	out := make([]FrameCheckpoint, len(frames))
	for i := range frames {
		f := &frames[i]
		fc := FrameCheckpoint{
			Slot:     f.Slot,
			First:    f.First,
			Counters: f.Counters,
			Delay:    make([]stats.AccumulatorState, len(f.Delay)),
			Recovery: make([]stats.AccumulatorState, len(f.Recovery)),
		}
		for j := range f.Delay {
			fc.Delay[j] = f.Delay[j].State()
		}
		for j := range f.Recovery {
			fc.Recovery[j] = f.Recovery[j].State()
		}
		out[i] = fc
	}
	return out
}

// restoreShardCore overlays a shard checkpoint onto freshly-built shard
// state (newShardNetwork output): terminal structs, RNG positions,
// registry records, the network's counters and the metrics state. The
// engine restores its own scheduler state afterwards.
func restoreShardCore(n *network, terms []terminal, rngs []stats.RNG, sc *ShardCheckpoint) error {
	if len(sc.Terms) != len(terms) || len(sc.HLR) != len(n.hlr) ||
		len(sc.Metrics.PerTerminal) != len(terms) {
		return fmt.Errorf("sim: checkpoint shard holds %d terminals, run has %d", len(sc.Terms), len(terms))
	}
	for i := range terms {
		t := &terms[i]
		tc := &sc.Terms[i]
		t.pos = tc.Pos
		t.center = tc.Center
		t.threshold = tc.Threshold
		t.seq = tc.Seq
		t.ackedSeq = tc.AckedSeq
		t.retries = tc.Retries
		t.desynced = tc.Desynced
		t.desyncedAt = des.Time(tc.DesyncedAt)
		t.est.q, t.est.c = tc.EstQ, tc.EstC
		t.moves = tc.Moves
		t.lastContact = tc.LastContact
		rngs[i].SetState(tc.RNG)
	}
	for i := range n.hlr {
		hc := &sc.HLR[i]
		n.hlr[i] = hlrRecord{center: hc.Center, seq: hc.Seq, threshold: hc.Threshold}
	}
	n.callSeq = sc.CallSeq

	m := n.metrics
	mc := &sc.Metrics
	m.Updates, m.Calls, m.PolledCells = mc.Updates, mc.Calls, mc.PolledCells
	m.UpdateBytes, m.PollBytes, m.ReplyBytes = mc.UpdateBytes, mc.PollBytes, mc.ReplyBytes
	m.NotFound = mc.NotFound
	m.LostUpdates, m.LostPolls, m.LostReplies = mc.LostUpdates, mc.LostPolls, mc.LostReplies
	m.FallbackCalls, m.Retransmissions = mc.FallbackCalls, mc.Retransmissions
	m.Acks, m.AckBytes = mc.Acks, mc.AckBytes
	m.RePolls, m.DroppedCalls = mc.RePolls, mc.DroppedCalls
	m.OutageDeferred = mc.OutageDeferred
	m.DelayHist = mc.DelayHist.Clone()
	m.RecoveryHist = mc.RecoveryHist.Clone()
	m.ThresholdSlots = make(map[int]int64, len(mc.ThresholdSlots))
	for d, c := range mc.ThresholdSlots {
		m.ThresholdSlots[d] = c
	}
	for i := range mc.PerTerminal {
		tsc := &mc.PerTerminal[i]
		ts := &m.PerTerminal[i]
		ts.Updates, ts.Calls, ts.PolledCells = tsc.Updates, tsc.Calls, tsc.PolledCells
		ts.Delay.SetState(tsc.Delay)
		ts.Recovery.SetState(tsc.Recovery)
	}
	return nil
}

// restoreFrames rebuilds the engine's telemetry shard-frame series from
// its checkpointed form.
func restoreFrames(fcs []FrameCheckpoint) []telemetry.ShardFrame {
	if len(fcs) == 0 {
		return nil
	}
	frames := make([]telemetry.ShardFrame, len(fcs))
	for i := range fcs {
		fc := &fcs[i]
		f := telemetry.ShardFrame{
			Slot:     fc.Slot,
			First:    fc.First,
			Counters: fc.Counters,
			Delay:    make([]stats.Accumulator, len(fc.Delay)),
			Recovery: make([]stats.Accumulator, len(fc.Recovery)),
		}
		for j := range fc.Delay {
			f.Delay[j].SetState(fc.Delay[j])
		}
		for j := range fc.Recovery {
			f.Recovery[j].SetState(fc.Recovery[j])
		}
		frames[i] = f
	}
	return frames
}

// ckptMagic versions the checkpoint wire format.
var ckptMagic = []byte("PCNCKPT1")

// EncodeCheckpoint serializes a checkpoint to a self-checking byte
// format: a magic/version header, the gob payload, and a CRC32 trailer
// over the payload. Gob encodes float64 values by bit pattern, so
// decoding reproduces every RNG position, accumulator and estimator
// exactly.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(ckptMagic)
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	payload := buf.Bytes()[len(ckptMagic):]
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	buf.Write(tail[:])
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses bytes produced by EncodeCheckpoint, rejecting
// unknown formats and corrupted payloads (checksum mismatch).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+4 || !bytes.Equal(data[:len(ckptMagic)], ckptMagic) {
		return nil, fmt.Errorf("sim: not a checkpoint (bad magic)")
	}
	payload := data[len(ckptMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("sim: checkpoint checksum mismatch")
	}
	cp := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(cp); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	return cp, nil
}

// ckptAggregator assembles per-shard captures into whole Checkpoints. A
// consistent checkpoint needs every shard at the same boundary, but the
// shards run freely — nothing blocks at a boundary — so captures for a
// boundary accumulate until the last shard delivers, at which point the
// assembled checkpoint is handed to the sink. Because each shard
// delivers its boundaries in order, boundary B's checkpoint always
// completes before B+every's, so the sink observes checkpoints in
// increasing slot order.
type ckptAggregator struct {
	mu      sync.Mutex
	shards  int
	shape   Checkpoint // Slot/Shard unset; the shared header fields
	pending map[int64][]ShardCheckpoint
	count   map[int64]int
	sink    func(*Checkpoint)
}

func newCkptAggregator(shape Checkpoint, shards int, sink func(*Checkpoint)) *ckptAggregator {
	return &ckptAggregator{
		shards:  shards,
		shape:   shape,
		pending: make(map[int64][]ShardCheckpoint),
		count:   make(map[int64]int),
		sink:    sink,
	}
}

// add delivers one shard's capture for a boundary; the completing
// delivery assembles the checkpoint and invokes the sink synchronously
// (on the delivering shard's goroutine).
func (a *ckptAggregator) add(shard int, sc ShardCheckpoint) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := sc.Slot
	if a.pending[b] == nil {
		a.pending[b] = make([]ShardCheckpoint, a.shards)
	}
	a.pending[b][shard] = sc
	a.count[b]++
	if a.count[b] < a.shards {
		return
	}
	cp := a.shape
	cp.Slot = b
	cp.Shard = a.pending[b]
	delete(a.pending, b)
	delete(a.count, b)
	a.sink(&cp)
}
