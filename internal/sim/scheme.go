package sim

import (
	"fmt"
	"strings"
)

// UpdateScheme selects the trigger that decides when a mobile terminal
// reports its location to the network — the "update" half of the paper's
// update/paging trade-off. The paper studies the distance-based trigger;
// the comparative literature (timer-, movement- and distance-based
// schemes) frames the alternatives, and all three ride the same engines,
// fault machinery and determinism contract: for any scheme, the three
// engines produce bit-identical Metrics at every shard count.
//
// Whatever the trigger, Config.Threshold keeps its meaning as the paging
// radius: the network pages the residing area of that radius around the
// registered center. Distance updates guarantee the terminal stays inside
// it; timer and movement updates do not, so calls to terminals that
// drifted out resolve through the recovery rounds (FaultPlan.PageRetries)
// or are dropped — exactly the accounting the fault machinery already
// does for desynced terminals.
//
// The interface is sealed: the engines compile a scheme to an internal
// plan, so only this package can implement it. Construct instances with
// DistanceScheme, TimerScheme, MovementScheme or SchemeByName.
type UpdateScheme interface {
	// Name is the scheme's registry name, one of SchemeNames.
	Name() string
	// Param is the scheme's operating parameter: the timer period in
	// slots, the movement count in cell crossings, or 0 for distance.
	Param() int64
	// plan compiles the scheme for the engines (and seals the interface).
	plan() (schemePlan, error)
}

// schemeKind is the engines' compact scheme dispatch tag.
type schemeKind uint8

const (
	schemeDistance schemeKind = iota
	schemeTimer
	schemeMovement
)

func (k schemeKind) String() string {
	switch k {
	case schemeDistance:
		return "distance"
	case schemeTimer:
		return "timer"
	case schemeMovement:
		return "movement"
	default:
		return fmt.Sprintf("schemeKind(%d)", int(k))
	}
}

// schemePlan is a validated, compiled UpdateScheme: the dispatch tag and
// the operating parameter, in the form the engine hot loops branch on.
type schemePlan struct {
	kind  schemeKind
	param int64
}

// DistanceScheme is the paper's trigger: update when the distance from
// the last registered center exceeds the terminal's threshold. It is the
// default (a nil Config.Scheme) and the only scheme the dynamic per-user
// mechanism can re-optimize, since the threshold is its decision
// variable.
type DistanceScheme struct{}

// Name implements UpdateScheme.
func (DistanceScheme) Name() string { return "distance" }

// Param implements UpdateScheme; the distance scheme's parameter is the
// threshold itself, carried by Config.Threshold.
func (DistanceScheme) Param() int64 { return 0 }

func (DistanceScheme) plan() (schemePlan, error) {
	return schemePlan{kind: schemeDistance}, nil
}

// TimerScheme updates every Every slots since the terminal's last
// contact with the network — an update transmission or a successfully
// answered page, both of which re-center the registered area. Movement
// never triggers an update, so a fast terminal can drift beyond the
// paging radius between refreshes; such calls resolve through the
// recovery rounds or count as dropped.
type TimerScheme struct {
	// Every is the refresh period in slots; it must be positive.
	Every int64
}

// Name implements UpdateScheme.
func (TimerScheme) Name() string { return "timer" }

// Param implements UpdateScheme.
func (s TimerScheme) Param() int64 { return s.Every }

func (s TimerScheme) plan() (schemePlan, error) {
	if s.Every <= 0 {
		return schemePlan{}, fmt.Errorf("sim: timer scheme period %d slots, want positive", s.Every)
	}
	return schemePlan{kind: schemeTimer, param: s.Every}, nil
}

// MovementScheme updates after Count cell crossings since the last
// contact. Unlike distance, back-and-forth motion between two cells
// counts every crossing, so the terminal can trigger while still at
// distance 1 — the classical inefficiency the distance scheme was
// proposed to fix, reproduced here for comparison.
type MovementScheme struct {
	// Count is the crossing budget; it must be positive.
	Count int64
}

// Name implements UpdateScheme.
func (MovementScheme) Name() string { return "movement" }

// Param implements UpdateScheme.
func (s MovementScheme) Param() int64 { return s.Count }

func (s MovementScheme) plan() (schemePlan, error) {
	if s.Count <= 0 {
		return schemePlan{}, fmt.Errorf("sim: movement scheme count %d crossings, want positive", s.Count)
	}
	return schemePlan{kind: schemeMovement, param: s.Count}, nil
}

// SchemeNames lists the names SchemeByName resolves, in resolution
// order; like EngineNames, help strings and error messages are built
// from this single list.
func SchemeNames() []string {
	return []string{
		DistanceScheme{}.Name(),
		TimerScheme{}.Name(),
		MovementScheme{}.Name(),
	}
}

// SchemeByName resolves a scheme name and its operating parameter, for
// CLI flags and job specs. The empty name means distance (the default).
// The error for an unknown name enumerates every valid one.
func SchemeByName(name string, param int64) (UpdateScheme, error) {
	switch name {
	case "", DistanceScheme{}.Name():
		if param != 0 {
			return nil, fmt.Errorf("sim: the distance scheme takes no parameter (got %d); its threshold is the -d flag", param)
		}
		return DistanceScheme{}, nil
	case TimerScheme{}.Name():
		s := TimerScheme{Every: param}
		if _, err := s.plan(); err != nil {
			return nil, err
		}
		return s, nil
	case MovementScheme{}.Name():
		s := MovementScheme{Count: param}
		if _, err := s.plan(); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, fmt.Errorf("sim: unknown update scheme %q (valid schemes: %s)",
		name, strings.Join(SchemeNames(), ", "))
}

// resolveScheme compiles a Config.Scheme for the engines; nil is the
// distance default.
func resolveScheme(s UpdateScheme) (schemePlan, error) {
	if s == nil {
		return schemePlan{kind: schemeDistance}, nil
	}
	return s.plan()
}
