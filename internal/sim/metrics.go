package sim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Metrics aggregates a run's measurements.
type Metrics struct {
	// Slots and Terminals echo the run shape.
	Slots     int64
	Terminals int
	// Updates, Calls and PolledCells count mechanism operations.
	Updates, Calls, PolledCells int64
	// UpdateBytes, PollBytes and ReplyBytes count signalling bytes on the
	// wire per message class.
	UpdateBytes, PollBytes, ReplyBytes int64
	// Delay is the per-call paging delay in polling cycles, aggregated
	// over terminals in id order (so its value is independent of the
	// shard count, see RunSharded).
	Delay stats.Accumulator
	// UpdateCost, PagingCost and TotalCost are per-slot per-terminal
	// averages in the paper's U/V units, comparable to core.Breakdown.
	UpdateCost, PagingCost, TotalCost float64
	// NotFound counts paging failures outside the recovery machinery. The
	// fault subsystem converts every plan miss into recovery rounds and,
	// past the retry budget, DroppedCalls, so any nonzero value indicates
	// a mechanism bug. It is retained so regressions surface as a counter
	// rather than a panic.
	NotFound int64
	// LostUpdates counts update transmissions (including retransmissions)
	// dropped by the injected uplink loss (FaultPlan.UpdateLoss).
	LostUpdates int64
	// LostPolls counts paging polls that failed to reach the terminal's
	// cell (FaultPlan.PollLoss); LostReplies counts paging replies dropped
	// on the uplink (FaultPlan.ReplyLoss).
	LostPolls, LostReplies int64
	// FallbackCalls counts calls whose nominal residing-area plan could
	// not contain the terminal (drift after lost or outage-deferred
	// updates) and escalated to the expanding recovery rounds.
	FallbackCalls int64
	// Retransmissions counts acked-update retransmissions triggered by
	// ack timeouts (FaultPlan.UpdateRetries).
	Retransmissions int64
	// Acks counts HLR acknowledgements sent for applied updates, and
	// AckBytes their wire bytes.
	Acks     int64
	AckBytes int64
	// RePolls counts recovery paging rounds: blanket re-polls of the
	// (expanding) residing area after the nominal plan came up empty.
	RePolls int64
	// DroppedCalls counts calls abandoned after the paging retry budget
	// (FaultPlan.PageRetries) was exhausted; dropped calls contribute no
	// delay sample, so Delay.N() == Calls − DroppedCalls.
	DroppedCalls int64
	// OutageDeferred counts updates that reached the HLR during a
	// scheduled outage window (FaultPlan.Outages) and were not applied.
	OutageDeferred int64
	// Recovery is the HLR desync→recovery latency in slots: one sample
	// per episode in which the network's record diverged from the
	// terminal's view (lost or outage-deferred update) and later
	// re-synced (successful update or page re-center). Aggregated over
	// terminals in id order, like Delay.
	Recovery stats.Accumulator
	// DelayHist and RecoveryHist are fixed-bucket histograms of the same
	// samples Delay and Recovery accumulate, exposing the tail quantiles
	// (p50/p95/p99/max) the Welford state cannot. Bucket counts merge by
	// exact integer addition, so they are shard-count invariant like
	// every other aggregate. Always populated by the engine; may be nil
	// on hand-built Metrics.
	DelayHist    *telemetry.Hist
	RecoveryHist *telemetry.Hist
	// Snapshots is the merged run-telemetry snapshot series, captured
	// every Config.Telemetry.SnapshotEvery slots (empty when telemetry is
	// off). It is assembled once by RunSharded from the per-shard series
	// in global terminal-id order; Merge deliberately leaves it untouched
	// (partial series from different engines cannot be combined).
	Snapshots []telemetry.Frame
	// ThresholdSlots[d] counts terminal-slots spent operating at
	// threshold d (interesting under Dynamic).
	ThresholdSlots map[int]int64
	// Events counts the scheduler events a single-engine run dispatches:
	// one slot sweep per slot plus every sub-slot paging event. Shard
	// metrics carry only their per-terminal share (the slot sweeps are
	// added back once after merging), keeping the count shard-invariant.
	Events uint64
	// PerTerminal holds per-terminal breakdowns in global id order.
	PerTerminal []TerminalStats
	// costs retains the unit costs so Merge can recompute the per-slot
	// averages from merged counters.
	costs core.Costs
}

// TerminalStats is one terminal's share of the run.
type TerminalStats struct {
	// ID is the terminal's global id (its index in a single-engine run).
	ID int
	// Updates, Calls and PolledCells count this terminal's operations.
	Updates, Calls, PolledCells int64
	// Delay is this terminal's per-call paging delay in polling cycles.
	Delay stats.Accumulator
	// Recovery holds this terminal's desync→recovery latency samples in
	// slots (see Metrics.Recovery).
	Recovery stats.Accumulator
	// TotalCost is the terminal's per-slot average cost in U/V units.
	TotalCost float64
	// FinalThreshold is the threshold in effect when the run ended.
	FinalThreshold int
}

// Merge folds o — the metrics of a disjoint set of terminals simulated
// over the same slots with the same unit costs — into m, which may be the
// zero value. Counters are summed, the ThresholdSlots and latency
// histograms are added bucket-wise, PerTerminal records are concatenated
// and kept sorted by global id, and the aggregates (Delay, the per-slot
// cost averages) are recomputed from the merged per-terminal records in
// id order. Because the recomputation order is the global id order
// regardless of how terminals were grouped, folding any partition of the
// same population yields bit-identical Metrics — the
// shard-count-invariance contract of RunSharded.
//
// Merging metrics simulated over different slot counts is meaningless
// (the per-slot averages would mix incompatible denominators) and panics;
// a zero Slots on either side is treated as "not yet set" and adopts the
// other. Snapshots are left untouched: the snapshot series is assembled
// once by the engine, not by pairwise merging.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	if m.Slots == 0 {
		m.Slots = o.Slots
		m.costs = o.costs
	} else if o.Slots != 0 && o.Slots != m.Slots {
		panic(fmt.Sprintf("sim: merging metrics over mismatched slot counts %d and %d", m.Slots, o.Slots))
	}
	m.Terminals += o.Terminals
	m.Updates += o.Updates
	m.Calls += o.Calls
	m.PolledCells += o.PolledCells
	m.UpdateBytes += o.UpdateBytes
	m.PollBytes += o.PollBytes
	m.ReplyBytes += o.ReplyBytes
	m.NotFound += o.NotFound
	m.LostUpdates += o.LostUpdates
	m.LostPolls += o.LostPolls
	m.LostReplies += o.LostReplies
	m.FallbackCalls += o.FallbackCalls
	m.Retransmissions += o.Retransmissions
	m.Acks += o.Acks
	m.AckBytes += o.AckBytes
	m.RePolls += o.RePolls
	m.DroppedCalls += o.DroppedCalls
	m.OutageDeferred += o.OutageDeferred
	m.Events += o.Events
	if o.DelayHist != nil {
		if m.DelayHist == nil {
			m.DelayHist = o.DelayHist.Clone()
		} else {
			m.DelayHist.Merge(o.DelayHist)
		}
	}
	if o.RecoveryHist != nil {
		if m.RecoveryHist == nil {
			m.RecoveryHist = o.RecoveryHist.Clone()
		} else {
			m.RecoveryHist.Merge(o.RecoveryHist)
		}
	}
	if len(o.ThresholdSlots) > 0 && m.ThresholdSlots == nil {
		m.ThresholdSlots = make(map[int]int64, len(o.ThresholdSlots))
	}
	for d, n := range o.ThresholdSlots {
		m.ThresholdSlots[d] += n
	}
	m.PerTerminal = append(m.PerTerminal, o.PerTerminal...)
	sort.Slice(m.PerTerminal, func(i, j int) bool {
		return m.PerTerminal[i].ID < m.PerTerminal[j].ID
	})
	m.recompute()
}

// recompute rebuilds the aggregate fields that are not plain counter sums:
// the delay accumulator (folded over terminals in id order, so the
// floating-point reduction order never depends on the sharding) and the
// per-slot cost averages.
func (m *Metrics) recompute() {
	m.Delay = stats.Accumulator{}
	m.Recovery = stats.Accumulator{}
	for i := range m.PerTerminal {
		m.Delay.Merge(&m.PerTerminal[i].Delay)
		m.Recovery.Merge(&m.PerTerminal[i].Recovery)
	}
	denom := float64(m.Slots) * float64(m.Terminals)
	if denom == 0 {
		m.UpdateCost, m.PagingCost, m.TotalCost = 0, 0, 0
		return
	}
	m.UpdateCost = float64(m.Updates) * m.costs.Update / denom
	m.PagingCost = float64(m.PolledCells) * m.costs.Poll / denom
	m.TotalCost = m.UpdateCost + m.PagingCost
}
