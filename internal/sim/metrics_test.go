package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// shardMetrics builds a plausible one-shard Metrics for terminals with the
// given global ids: each terminal contributes one update, one call with a
// one-cycle delay, and two polled cells per call.
func shardMetrics(slots int64, ids ...int) *Metrics {
	m := &Metrics{
		Slots:          slots,
		Terminals:      len(ids),
		ThresholdSlots: make(map[int]int64),
		costs:          core.Costs{Update: 100, Poll: 10},
	}
	for _, id := range ids {
		ts := TerminalStats{ID: id, Updates: 1, Calls: 1, PolledCells: 2, FinalThreshold: 3}
		ts.Delay.Add(1)
		m.PerTerminal = append(m.PerTerminal, ts)
		m.Updates++
		m.Calls++
		m.PolledCells += 2
		m.Events += 4
		m.ThresholdSlots[3] += slots
	}
	m.recompute()
	return m
}

// faultShardMetrics is shardMetrics with every fault-subsystem counter set
// to one per terminal and one recovery episode of two slots each.
func faultShardMetrics(slots int64, ids ...int) *Metrics {
	m := shardMetrics(slots, ids...)
	for i := range m.PerTerminal {
		m.PerTerminal[i].Recovery.Add(2)
	}
	n := int64(len(ids))
	m.LostUpdates, m.LostPolls, m.LostReplies = n, n, n
	m.Retransmissions, m.Acks, m.AckBytes = n, n, n
	m.RePolls, m.DroppedCalls, m.OutageDeferred = n, n, n
	m.recompute()
	return m
}

func TestMetricsMerge(t *testing.T) {
	for _, tc := range []struct {
		name   string
		into   *Metrics
		merge  []*Metrics
		verify func(t *testing.T, m *Metrics)
	}{
		{
			name:  "empty merge",
			into:  &Metrics{},
			merge: nil,
			verify: func(t *testing.T, m *Metrics) {
				if !reflect.DeepEqual(m, &Metrics{}) {
					t.Errorf("zero metrics changed: %+v", m)
				}
			},
		},
		{
			name:  "nil shard is a no-op",
			into:  shardMetrics(50, 0, 1),
			merge: []*Metrics{nil},
			verify: func(t *testing.T, m *Metrics) {
				if !reflect.DeepEqual(m, shardMetrics(50, 0, 1)) {
					t.Errorf("nil merge changed the receiver: %+v", m)
				}
			},
		},
		{
			name:  "single shard into empty",
			into:  &Metrics{},
			merge: []*Metrics{shardMetrics(50, 0, 1, 2)},
			verify: func(t *testing.T, m *Metrics) {
				want := shardMetrics(50, 0, 1, 2)
				if m.Slots != want.Slots || m.Terminals != want.Terminals ||
					m.Updates != want.Updates || m.Events != want.Events {
					t.Errorf("merged %+v, want %+v", m, want)
				}
				if m.UpdateCost != want.UpdateCost || m.TotalCost != want.TotalCost {
					t.Errorf("costs (%v, %v), want (%v, %v)",
						m.UpdateCost, m.TotalCost, want.UpdateCost, want.TotalCost)
				}
				if m.Delay.N() != 3 || m.Delay.Mean() != 1 {
					t.Errorf("delay %v", m.Delay)
				}
			},
		},
		{
			name:  "overlapping ThresholdSlots keys",
			into:  &Metrics{},
			merge: []*Metrics{shardMetrics(50, 0), shardMetrics(50, 1, 2)},
			verify: func(t *testing.T, m *Metrics) {
				// Both shards operate at threshold 3: keys must add, not
				// overwrite.
				if got := m.ThresholdSlots[3]; got != 150 {
					t.Errorf("ThresholdSlots[3] = %d, want 150", got)
				}
				if len(m.ThresholdSlots) != 1 {
					t.Errorf("histogram %v, want a single key", m.ThresholdSlots)
				}
			},
		},
		{
			name:  "distinct ThresholdSlots keys are kept",
			into:  shardMetrics(50, 0),
			merge: []*Metrics{{ThresholdSlots: map[int]int64{7: 9}}},
			verify: func(t *testing.T, m *Metrics) {
				if m.ThresholdSlots[3] != 50 || m.ThresholdSlots[7] != 9 {
					t.Errorf("histogram %v", m.ThresholdSlots)
				}
			},
		},
		{
			name:  "PerTerminal sorted by global id",
			into:  &Metrics{},
			merge: []*Metrics{shardMetrics(50, 4, 5), shardMetrics(50, 0, 1), shardMetrics(50, 2, 3)},
			verify: func(t *testing.T, m *Metrics) {
				if len(m.PerTerminal) != 6 {
					t.Fatalf("%d records", len(m.PerTerminal))
				}
				for i, ts := range m.PerTerminal {
					if ts.ID != i {
						t.Errorf("record %d has id %d", i, ts.ID)
					}
				}
			},
		},
		{
			name: "fault counters and recovery latency reduce across shards",
			into: &Metrics{},
			merge: []*Metrics{
				faultShardMetrics(50, 0, 1),
				faultShardMetrics(50, 2),
			},
			verify: func(t *testing.T, m *Metrics) {
				for name, got := range map[string]int64{
					"LostUpdates":     m.LostUpdates,
					"LostPolls":       m.LostPolls,
					"LostReplies":     m.LostReplies,
					"Retransmissions": m.Retransmissions,
					"Acks":            m.Acks,
					"AckBytes":        m.AckBytes,
					"RePolls":         m.RePolls,
					"DroppedCalls":    m.DroppedCalls,
					"OutageDeferred":  m.OutageDeferred,
				} {
					if got != 3 {
						t.Errorf("%s = %d, want 3", name, got)
					}
				}
				// One 2-slot recovery episode per terminal, re-reduced
				// from the per-terminal accumulators in id order.
				if m.Recovery.N() != 3 || m.Recovery.Mean() != 2 {
					t.Errorf("recovery %v, want 3 samples of mean 2", m.Recovery)
				}
			},
		},
		{
			name:  "counters and costs reduce across shards",
			into:  &Metrics{},
			merge: []*Metrics{shardMetrics(50, 0, 1), shardMetrics(50, 2)},
			verify: func(t *testing.T, m *Metrics) {
				if m.Terminals != 3 || m.Updates != 3 || m.PolledCells != 6 || m.Events != 12 {
					t.Errorf("counters %+v", m)
				}
				// 3 updates × U=100 over 50 slots × 3 terminals = 2 per
				// slot per terminal; 6 cells × V=10 → 0.4.
				if m.UpdateCost != 2 || m.PagingCost != 0.4 || m.TotalCost != 2.4 {
					t.Errorf("costs (%v, %v, %v)", m.UpdateCost, m.PagingCost, m.TotalCost)
				}
				if m.Delay.N() != 3 {
					t.Errorf("delay samples %d", m.Delay.N())
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, o := range tc.merge {
				tc.into.Merge(o)
			}
			tc.verify(t, tc.into)
		})
	}
}

// TestMetricsMergeGroupingInvariant checks the floating-point reduction is
// grouping-independent: folding shards {0,1}+{2,3} and {0}+{1,2}+{3} must
// give bit-identical aggregates, because Merge always re-reduces from the
// per-terminal records in id order.
func TestMetricsMergeGroupingInvariant(t *testing.T) {
	delays := map[int][]float64{
		0: {1, 2, 3}, 1: {2}, 2: {1, 1, 2}, 3: {3, 1},
	}
	build := func(ids ...int) *Metrics {
		m := &Metrics{Slots: 10, Terminals: len(ids), ThresholdSlots: map[int]int64{}}
		for _, id := range ids {
			ts := TerminalStats{ID: id}
			for _, d := range delays[id] {
				ts.Delay.Add(d)
			}
			m.PerTerminal = append(m.PerTerminal, ts)
		}
		m.recompute()
		return m
	}
	var a Metrics
	a.Merge(build(0, 1))
	a.Merge(build(2, 3))
	var b Metrics
	b.Merge(build(0))
	b.Merge(build(1, 2))
	b.Merge(build(3))
	if !reflect.DeepEqual(&a, &b) {
		t.Errorf("grouping changed the merged metrics:\n%+v\n%+v", a, b)
	}
	if a.Delay.N() != 9 {
		t.Errorf("delay samples %d, want 9", a.Delay.N())
	}
}

// TestMergeMismatchedSlotsPanics: merging metrics simulated over
// different slot counts would mix incompatible per-slot denominators, so
// Merge rejects it loudly. A zero Slots on either side still means "not
// yet set" and adopts the other.
func TestMergeMismatchedSlotsPanics(t *testing.T) {
	a := &Metrics{Slots: 1_000, Terminals: 2}
	b := &Metrics{Slots: 2_000, Terminals: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merge over mismatched slot counts accepted")
			}
		}()
		a.Merge(b)
	}()

	// Zero receiver adopts; zero argument folds in.
	var zero Metrics
	zero.Merge(&Metrics{Slots: 500, Terminals: 1})
	if zero.Slots != 500 {
		t.Errorf("zero receiver has slots %d, want 500", zero.Slots)
	}
	zero.Merge(&Metrics{Terminals: 1})
	if zero.Slots != 500 || zero.Terminals != 2 {
		t.Errorf("zero-slot argument mishandled: %+v", zero)
	}
}
