package sim

import (
	"fmt"

	"repro/internal/des"
)

// Default fault-recovery parameters, substituted for zero values by
// Config.withDefaults.
const (
	// DefaultAckTimeout is the first retransmission timeout in scheduler
	// ticks when acked updates are enabled; it doubles on every retry.
	DefaultAckTimeout = 16
	// DefaultPageRetries is the recovery paging round budget: after the
	// nominal plan comes up empty, the network re-polls (and expands) this
	// many times before dropping the call.
	DefaultPageRetries = 8
	// maxUpdateRetries bounds the retransmission budget so the exponential
	// backoff shift can never overflow the tick arithmetic.
	maxUpdateRetries = 32
)

// ExplicitZero requests a literal zero for the FaultPlan knobs whose zero
// value means "use the default" (AckTimeout, PageRetries). Config
// validation folds the sentinel to zero before the engines see it, so
// FaultPlan{PageRetries: ExplicitZero} drops unanswered calls after the
// nominal plan with no recovery rounds at all.
const ExplicitZero = -1

// FaultPlan injects independent signalling-plane failure modes into a run
// and configures the recovery machinery that absorbs them. The zero value
// is the perfect signalling plane the paper assumes: no losses, no
// outages, fire-and-forget updates — and, by contract, a run with a zero
// FaultPlan is bit-identical to one without the fault subsystem at all (no
// extra RNG draws, no extra scheduler events).
//
// Every Bernoulli draw a fault mode takes comes from the affected
// terminal's own positional RNG stream (stats.SubStream), so injected
// faults preserve RunSharded's shard-count invariance.
type FaultPlan struct {
	// UpdateLoss is the probability an uplink location-update message is
	// lost in transit (per transmission, including retransmissions).
	UpdateLoss float64
	// PollLoss is the probability the downlink poll broadcast into the
	// terminal's current cell fails to reach it during a paging cycle.
	PollLoss float64
	// ReplyLoss is the probability the terminal's uplink paging reply is
	// lost in transit; the network times the cycle out and keeps searching.
	ReplyLoss float64
	// UpdateRetries > 0 turns location updates into an acked exchange:
	// the HLR answers each applied update with a wire.Ack, and the
	// terminal retransmits after a timeout with exponential backoff, up
	// to this many retransmissions. An exhausted budget leaves the
	// terminal desynced until the next page re-centers it. 0 keeps the
	// paper's unacknowledged datagrams.
	UpdateRetries int
	// AckTimeout is the first retransmission timeout in scheduler ticks
	// (0 means DefaultAckTimeout); retry k waits AckTimeout<<k ticks.
	// ExplicitZero requests a literal zero, which is valid only while
	// UpdateRetries is 0 (an acked exchange needs a positive timeout).
	AckTimeout int64
	// PageRetries is the recovery paging round budget (0 means
	// DefaultPageRetries, ExplicitZero means no recovery rounds: calls
	// unanswered after the nominal plan are dropped immediately).
	// Recovery round r blanket-polls every cell
	// within radius threshold+r of the registered center — re-covering
	// in-area terminals whose poll or reply was lost and expanding
	// ring by ring toward terminals that drifted out after lost updates.
	// A call still unanswered after the last round is dropped and
	// counted in Metrics.DroppedCalls.
	PageRetries int
	// Outages lists scheduled HLR maintenance windows. While a window is
	// open, incoming location updates are not applied (and not acked);
	// they are counted in Metrics.OutageDeferred. Paging still works off
	// the last applied record.
	Outages []Outage
}

// Outage is one scheduled HLR outage window: registrations arriving in
// slots [Start, End) are not applied.
type Outage struct {
	Start, End int64
}

// active reports whether any failure mode or the ack machinery is enabled;
// an inactive plan must leave the simulation bit-identical to the
// pre-fault-subsystem engine.
func (f FaultPlan) active() bool {
	return f.UpdateLoss > 0 || f.PollLoss > 0 || f.ReplyLoss > 0 ||
		f.UpdateRetries > 0 || len(f.Outages) > 0
}

// ackBackoff returns the retransmission timeout after the given number of
// already-spent retries.
func (f FaultPlan) ackBackoff(retries int) des.Time {
	return des.Time(f.AckTimeout) << uint(retries)
}

// covers reports whether slot falls inside a scheduled outage window.
func (f FaultPlan) covers(slot int64) bool {
	for _, w := range f.Outages {
		if slot >= w.Start && slot < w.End {
			return true
		}
	}
	return false
}

// validate rejects malformed fault plans; f must already carry its
// defaults.
func (f FaultPlan) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"update", f.UpdateLoss},
		{"poll", f.PollLoss},
		{"reply", f.ReplyLoss},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("sim: %s loss probability %v outside [0,1)", p.name, p.v)
		}
	}
	if f.UpdateRetries < 0 {
		return fmt.Errorf("sim: negative update retry budget %d", f.UpdateRetries)
	}
	if f.UpdateRetries > maxUpdateRetries {
		return fmt.Errorf("sim: update retry budget %d exceeds %d (backoff overflow)",
			f.UpdateRetries, maxUpdateRetries)
	}
	if f.AckTimeout < 0 {
		return fmt.Errorf("sim: ack timeout %d ticks must not be negative", f.AckTimeout)
	}
	if f.AckTimeout == 0 && f.UpdateRetries > 0 {
		return fmt.Errorf("sim: ack timeout 0 with update retries %d: acked exchanges need a positive timeout",
			f.UpdateRetries)
	}
	if f.PageRetries < 0 {
		return fmt.Errorf("sim: negative paging retry budget %d", f.PageRetries)
	}
	for i, w := range f.Outages {
		if w.Start < 0 {
			return fmt.Errorf("sim: outage window %d starts at negative slot %d", i, w.Start)
		}
		if w.End <= w.Start {
			return fmt.Errorf("sim: outage window %d is inverted or empty: [%d, %d)", i, w.Start, w.End)
		}
	}
	return nil
}
