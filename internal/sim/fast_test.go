package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/chain"
)

// TestFastPathEquivalence is the derived engines' contract: for every
// configuration class — both grids, static and dynamic thresholds, zero
// and nonzero fault plans, telemetry on and off — EngineFast and
// EngineCols produce bit-identical Metrics to the reference EngineDES,
// at every shard count. reflect.DeepEqual on the full Metrics covers the
// counters, the per-terminal records, the Welford accumulator states,
// both latency histograms and the telemetry snapshot series; a JSON
// comparison guards the serialized view on top. Run under -race in CI.
// (locman's TestEngineEquivalence covers the same cross-product at the
// public Report-bytes level.)
func TestFastPathEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cfg   func() Config
		slots int64
		// alive asserts the configuration actually exercised the
		// machinery it is in the table to cover, so a regression cannot
		// hide behind an idle run.
		alive func(*testing.T, *Metrics)
	}{
		{
			name: "hex static",
			cfg: func() Config {
				cfg := baseConfig(chain.TwoDimExact, 0.2, 0.05, 2, 3)
				cfg.Terminals = 12
				return cfg
			},
			slots: 3_000,
			alive: func(t *testing.T, m *Metrics) {
				if m.Updates == 0 || m.Calls == 0 {
					t.Fatalf("idle run: %d updates, %d calls", m.Updates, m.Calls)
				}
			},
		},
		{
			name: "line static with losses",
			cfg: func() Config {
				cfg := baseConfig(chain.OneDim, 0.3, 0.04, 2, 2)
				cfg.Terminals = 10
				cfg.Faults = FaultPlan{
					UpdateLoss:    0.3,
					PollLoss:      0.2,
					ReplyLoss:     0.2,
					UpdateRetries: 2,
					PageRetries:   2,
				}
				return cfg
			},
			slots: 3_000,
			alive: func(t *testing.T, m *Metrics) {
				if m.LostUpdates == 0 || m.Retransmissions == 0 || m.RePolls == 0 {
					t.Fatalf("losses idle: %+d lost, %d retransmissions, %d re-polls",
						m.LostUpdates, m.Retransmissions, m.RePolls)
				}
			},
		},
		{
			name: "hex dynamic heterogeneous with snapshots",
			cfg: func() Config {
				cfg := baseConfig(chain.TwoDimExact, 0.2, 0.02, 3, 2)
				cfg.Terminals = 9
				cfg.Dynamic = true
				cfg.ReoptimizeEvery = 500
				cfg.PerTerminal = func(i int) chain.Params {
					return chain.Params{
						Q: 0.05 + 0.06*float64(i%5),
						C: 0.01 + 0.01*float64(i%3),
					}
				}
				// A cadence that divides neither the reoptimization
				// period nor the slot count, so captures land mid-batch.
				cfg.Telemetry.SnapshotEvery = 700
				return cfg
			},
			slots: 2_500,
			alive: func(t *testing.T, m *Metrics) {
				if len(m.ThresholdSlots) < 2 {
					t.Fatalf("dynamic scheme never moved a threshold: %v", m.ThresholdSlots)
				}
				if len(m.Snapshots) != 4 { // 700, 1400, 2100, 2500
					t.Fatalf("snapshots = %d, want 4", len(m.Snapshots))
				}
			},
		},
		{
			name: "all faults with snapshots and trailing outage",
			cfg: func() Config {
				cfg := faultyConfig()
				// An outage covering the end of the run leaves desynced
				// terminals with retransmission timers still pending at
				// drain time, covering the past-the-end drain path.
				cfg.Faults.Outages = append(cfg.Faults.Outages, Outage{Start: 3_600, End: 4_000})
				return cfg
			},
			slots: 4_000,
			alive: func(t *testing.T, m *Metrics) {
				if m.OutageDeferred == 0 || m.DroppedCalls == 0 || m.Recovery.N() == 0 {
					t.Fatalf("fault machinery idle: %d deferred, %d dropped, %d recoveries",
						m.OutageDeferred, m.DroppedCalls, m.Recovery.N())
				}
			},
		},
		{
			name: "threshold zero",
			cfg: func() Config {
				cfg := baseConfig(chain.TwoDimExact, 0.5, 0.05, 1, 0)
				cfg.Terminals = 6
				return cfg
			},
			slots: 2_000,
			alive: func(t *testing.T, m *Metrics) {
				if m.Updates == 0 {
					t.Fatal("d=0 run sent no updates")
				}
			},
		},
		{
			name: "explicit zero page retries",
			cfg: func() Config {
				cfg := baseConfig(chain.TwoDimExact, 0.2, 0.05, 2, 3)
				cfg.Terminals = 8
				cfg.Faults = FaultPlan{PollLoss: 0.4, PageRetries: ExplicitZero}
				return cfg
			},
			slots: 2_000,
			alive: func(t *testing.T, m *Metrics) {
				if m.DroppedCalls == 0 {
					t.Fatal("zero retry budget dropped no calls")
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg()
			ref.Engine = EngineDES
			want, err := RunSharded(ref, tc.slots, 1)
			if err != nil {
				t.Fatal(err)
			}
			tc.alive(t, want)
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}

			for _, engine := range []Engine{EngineFast, EngineCols} {
				for _, shards := range []int{1, 3} {
					cfg := tc.cfg()
					cfg.Engine = engine
					got, err := RunSharded(cfg, tc.slots, shards)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s engine diverged from DES at %d shard(s):\n%s: %+v\ndes:  %+v",
							engine, shards, engine, got, want)
					}
					gotJSON, err := json.Marshal(got)
					if err != nil {
						t.Fatal(err)
					}
					if string(gotJSON) != string(wantJSON) {
						t.Errorf("%s serialized metrics diverged at %d shard(s)", engine, shards)
					}
				}
			}
		})
	}
}

// TestEngineValidation pins the engine selector's edges: the zero value is
// the fast path, names round-trip, and junk is rejected up front.
func TestEngineValidation(t *testing.T) {
	if (Config{}).Engine != EngineFast {
		t.Error("zero-value engine is not the fast path")
	}
	for _, name := range []string{"fast", "des", "cols"} {
		e, err := EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.String() != name {
			t.Errorf("EngineByName(%q).String() = %q", name, e)
		}
	}
	if _, err := EngineByName("warp"); err == nil {
		t.Error("unknown engine name accepted")
	}

	cfg := baseConfig(chain.TwoDimExact, 0.2, 0.05, 2, 3)
	cfg.Engine = Engine(99)
	if _, err := RunSharded(cfg, 100, 1); err == nil {
		t.Error("unknown engine value accepted by validation")
	}
}
