package sim

import (
	"context"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// The slot-batched fast path (EngineFast).
//
// The reference engine pays the full discrete-event machinery for every
// slot of every terminal — a heap-driven sweep event, a map increment and
// two Bernoulli draws per terminal-slot — even though under the paper's
// parameters (q, c ≪ 1) the overwhelming majority of terminal-slots do
// nothing that needs an event queue at all. The fast path inverts the
// loop: it walks terminals in memory order and advances each one
// slot-by-slot in a tight loop, drawing the call/movement outcomes
// straight from the terminal's positional RNG stream with precomputed
// integer Bernoulli thresholds. On a pure slot — no queued timers — the
// scheduler is not touched at all: paging exchanges run inline through
// fastPage (allocation-free, with explicit tick bookkeeping), and only
// update/ack/retry machinery arms the small per-terminal scheduler, after
// which the affected slots fall back to the event path until the queue
// drains.
//
// Bit-identity with the reference engine is a contract, not an accident
// (see TestFastPathEquivalence). It rests on three facts:
//
//  1. Per-terminal draw order is untouched. The pure-slot loop replicates
//     network.sweepSlot's draw order — call, then movement, then the
//     in-move direction — with stats.BernoulliT draws that consume the
//     identical stream positions (stats.BernoulliThreshold documents the
//     exactness), fastPage replays the paging chain's loss draws in chain
//     order, and fallback slots run sweepSlot itself.
//
//  2. Cross-terminal state is commutative. Terminals meet only in
//     integer counters, fixed-bucket histograms, per-terminal HLR
//     records and the threshold-keyed paging-plan cache, so reordering
//     the sweeps across terminals cannot change any result. (callSeq
//     values are assigned in a different order, but calls are compared
//     only for equality within one terminal's paging chain and wire
//     encodings are fixed-length, so nothing observable shifts.)
//
//  3. Per-terminal event timing replays the reference tie-break. Within
//     one terminal, the reference engine orders a queued event against a
//     slot boundary by (time, insertion order) against that slot's sweep
//     event, whose insertion stamp is assigned at the end of the
//     previous slot's sweep. The fast path reproduces the stamp with
//     SeqMark after each sweep that touches the scheduler
//     (fastTerm.preSweep) and splits each armed slot into the same two
//     phases with RunBefore: events due before the sweep, then the
//     sweep, then events due before the next boundary. Pure slots leave
//     the mark alone — the per-terminal insertion counter only advances
//     when something is scheduled, so the stale mark still classifies
//     every queued event exactly as the reference engine's growing
//     global counter would.
type fastTerm struct {
	sched des.Scheduler
	// preSweep is where the reference engine's next slot-sweep event
	// would sit in this terminal's insertion order: the SeqMark taken
	// after the previous scheduler-touching slot's sweep. A queued event
	// on the slot boundary runs before the boundary's sweep (and before
	// any telemetry capture) exactly when its stamp is below the mark.
	preSweep uint64
	// curD and runLen batch the per-slot threshold-usage accounting:
	// runLen consecutive slots spent at threshold curD, flushed to
	// Metrics.ThresholdSlots only when the threshold changes or the run
	// ends — the reference engine's per-terminal-slot map increment is
	// the single largest cost it pays.
	curD   int
	runLen int64
}

// flushThreshold credits the batched threshold-usage run. Flushes always
// carry runLen ≥ 1 once a slot has run, so the map never grows
// zero-valued keys the reference engine would not have.
func (ft *fastTerm) flushThreshold(m *Metrics) {
	if ft.runLen > 0 {
		m.ThresholdSlots[ft.curD] += ft.runLen
	}
}

// fastPage is network.page run to completion inline, without scheduling a
// single event: the polling-cycle chain is a per-terminal linear sequence
// of strictly later ticks, so with an empty terminal queue (the caller's
// precondition) executing it synchronously is indistinguishable from the
// event-driven version — the loss draws come in identical chain order,
// pageSuccessAt is stamped with the tick the resolution event would have
// carried, and the return value is exactly the number of events the
// reference engine's chain would have processed, so Metrics.Events still
// matches. Structurally this is page() with each sched.After(τ, step)
// replaced by falling through to step's body and counting the event.
func (n *network) fastPage(t *terminal, base des.Time) uint64 {
	rec := *n.hlrAt(t.id)
	n.callSeq++
	call := n.callSeq
	info := n.partitionFor(rec.threshold)
	ring := n.loc.dist(t.pos, rec.center)
	n.metrics.Calls++
	n.term(t.id).Calls++

	// See page(): the subarea whose polls reach the terminal, or −1 when
	// the registered record cannot contain it.
	target := -1
	if ring < len(info.ringSubarea) {
		target = info.ringSubarea[ring]
	} else {
		n.metrics.FallbackCalls++
	}

	events := uint64(1) // the kickoff event that carries the first cycle
	for j := 0; j < len(info.part); j++ {
		sub := info.part[j]
		cyc := uint8(j + 1)
		if j+1 > 255 {
			cyc = 255
		}
		poll := wire.Poll{Terminal: t.id, Cell: rec.center, Call: call, Cycle: cyc}
		n.scratch = poll.Encode(n.scratch[:0])
		n.metrics.PolledCells += int64(sub.Cells)
		n.term(t.id).PolledCells += int64(sub.Cells)
		n.metrics.PollBytes += int64(sub.Cells * len(n.scratch))
		if j == target && n.pollHeard(t) {
			events++ // the reply-resolution event one tick later
			if n.replyDelivered(t, call) {
				// Cycle j runs at base+1+2j; its reply resolves at +1.
				n.pageSuccessAt(t, j+1, base+des.Time(2+2*j))
				return events
			}
		}
		events++ // the event carrying the next cycle (or the first round)
	}
	for r := 1; ; r++ {
		if r > n.cfg.Faults.PageRetries {
			n.metrics.DroppedCalls++
			return events
		}
		n.metrics.RePolls++
		radius := rec.threshold + r
		cells := n.diskCells(radius)
		cyc := uint8(255)
		if c := len(info.part) + r; c <= 255 {
			cyc = uint8(c)
		}
		poll := wire.Poll{Terminal: t.id, Cell: rec.center, Call: call, Cycle: cyc}
		n.scratch = poll.Encode(n.scratch[:0])
		n.metrics.PolledCells += int64(cells)
		n.term(t.id).PolledCells += int64(cells)
		n.metrics.PollBytes += int64(cells * len(n.scratch))
		if ring <= radius && n.pollHeard(t) {
			events++ // the reply-resolution event one tick later
			if n.replyDelivered(t, call) {
				// Round r runs at base+1+2·len(part)+2(r−1); reply at +1.
				n.pageSuccessAt(t, len(info.part)+r, base+des.Time(2*len(info.part)+2*r))
				return events
			}
		}
		events++ // the event carrying the next round
	}
}

// runShardFast simulates terminals [r.lo, r.hi) with the slot-batched
// fast path. It produces bit-identical shardResults to runShard for
// every configuration: same Metrics, same telemetry frame series, same
// histograms. Slots are processed in batches bounded by the telemetry
// cadence so each snapshot observes exactly the state the reference
// engine would capture at that boundary.
//
// Checkpoint boundaries also bound the batches. Subdividing batches is
// harmless — cross-terminal state is commutative (contract note 2) and
// each terminal's per-slot work is identical wherever the batch edges
// fall — so inserting checkpoint boundaries cannot change results. A
// checkpoint captures each terminal's scheduler verbatim (clock, stamp
// counter, pending retransmission timers by tag) plus the preSweep mark
// and the batched threshold-usage accumulator, exactly the state the
// engine itself carries across a batch edge; resume reinstates it and
// re-enters the loop at the boundary.
//
// A cancellable ctx is polled between per-terminal slot chunks, with
// pure stretches additionally capped at ctxCheckSlots slots, so the
// shard stops within a bounded amount of work whether the population is
// wide (many terminals, few slots each) or deep (one terminal, many
// slots). A background context takes the check-free path and the
// stretch cap never engages, keeping the hot loop byte-for-byte as fast
// as before.
func runShardFast(ctx context.Context, r shardRun) (shardResult, error) {
	cfg, slots := r.cfg, r.slots
	n, terms, rngs, err := newShardNetwork(cfg, slots, r.lo, r.hi, r.startD, r.loc)
	if err != nil {
		return shardResult{}, err
	}

	fts := make([]fastTerm, len(terms))
	for i := range fts {
		fts[i].curD = r.startD
	}

	every := cfg.Telemetry.SnapshotEvery
	prog := cfg.Telemetry.Progress
	dyn := cfg.Dynamic
	kind, param := n.upd.kind, n.upd.param
	done := ctx.Done()
	var frames []telemetry.ShardFrame
	// subEvents counts dispatched sub-slot events across all terminals —
	// the fast path schedules no sweep events, so this is directly the
	// reference engine's Processed() minus its slot sweeps.
	var subEvents uint64
	start := int64(0)
	if r.resume != nil {
		if err := restoreShardCore(n, terms, rngs, r.resume); err != nil {
			return shardResult{}, err
		}
		frames = restoreFrames(r.resume.Frames)
		subEvents = r.resume.SubEvents
		start = r.resume.Slot
		bind := ackBind(n, terms)
		for i := range fts {
			sc := &r.resume.Scheds[i]
			fts[i].sched.Restore(des.Time(sc.Now), sc.Seq, sc.Ran, sc.Pending, bind)
			fts[i].preSweep = r.resume.PreSweep[i]
			fts[i].curD = int(r.resume.CurD[i])
			fts[i].runLen = r.resume.RunLen[i]
		}
	}

	for cur := start; cur < slots; {
		next := slots
		if every > 0 {
			if b := (cur/every + 1) * every; b < next {
				next = b
			}
		}
		if r.every > 0 {
			if b := (cur/r.every + 1) * r.every; b < next {
				next = b
			}
		}
		last := next == slots
		for i := range terms {
			t := &terms[i]
			ft := &fts[i]
			sched := &ft.sched
			n.sched = sched
			rng := t.rng
			callT := stats.BernoulliThreshold(t.params.C)
			moveT := stats.BernoulliThreshold(t.moveProb)
			for s := cur; s < next; {
				if done != nil {
					select {
					case <-done:
						return shardResult{}, ctx.Err()
					default:
					}
				}
				if sched.Pending() > 0 || (dyn && s > 0 && s%cfg.ReoptimizeEvery == 0) {
					// Slow slot: queued timers force the full two-phase
					// event path around the sweep, and a reoptimization
					// boundary needs the scheduler clock either way.
					base := des.Time(s) * SlotTicks
					if sched.Pending() > 0 {
						subEvents += sched.RunBefore(base, ft.preSweep)
					}
					sched.AdvanceTo(base)
					if t.threshold == ft.curD {
						ft.runLen++
					} else {
						ft.flushThreshold(n.metrics)
						ft.curD = t.threshold
						ft.runLen = 1
					}
					n.sweepSlot(t, s)
					if dyn && s > 0 && s%cfg.ReoptimizeEvery == 0 {
						n.reoptimize(t)
					}
					ft.preSweep = sched.SeqMark()
					if sched.Pending() > 0 {
						subEvents += sched.RunBefore(base+SlotTicks, ft.preSweep)
					}
					s++
					continue
				}
				// Pure stretch: nothing queued and no reoptimization
				// boundary until stop, so the scheduler stays cold unless
				// a slot arms it — and the threshold is invariant (only
				// reoptimize moves it), letting the whole stretch's usage
				// be accounted in one batch afterwards.
				stop := next
				if dyn {
					if b := (s/cfg.ReoptimizeEvery + 1) * cfg.ReoptimizeEvery; b < stop {
						stop = b
					}
				}
				if done != nil && stop-s > ctxCheckSlots {
					// Bound the stretch so deep single-terminal runs still
					// observe cancellation; the loop re-enters and checks.
					stop = s + ctxCheckSlots
				}
				start := s
				for s < stop {
					called := rng.BernoulliT(callT)
					moved := false
					touched := false
					if called {
						subEvents += n.fastPage(t, des.Time(s)*SlotTicks)
					} else if rng.BernoulliT(moveT) {
						moved = true
						t.pos = n.loc.move(t.pos, rng)
						switch kind {
						case schemeDistance:
							if n.loc.dist(t.pos, t.center) > t.threshold {
								// sendUpdate reads the clock (outage windows)
								// and may arm the ack timer, so the scheduler
								// must be advanced to this slot first.
								sched.AdvanceTo(des.Time(s) * SlotTicks)
								t.center = t.pos
								n.sendUpdate(t)
								touched = true
							}
						case schemeMovement:
							t.moves++
							if t.moves >= param {
								sched.AdvanceTo(des.Time(s) * SlotTicks)
								t.center = t.pos
								n.sendUpdate(t)
								touched = true
							}
							// schemeTimer: movement never triggers.
						}
					}
					if kind == schemeTimer && !called && s-t.lastContact >= param {
						// Refresh deadline reached without contact; same
						// clock/timer discipline as a triggering move.
						sched.AdvanceTo(des.Time(s) * SlotTicks)
						t.center = t.pos
						n.sendUpdate(t)
						touched = true
					}
					if dyn {
						t.est.observe(moved, called)
					}
					s++
					if touched {
						// Same phase-two tail as a slow slot: refresh the
						// sweep mark, dispatch anything due before the
						// next boundary, and drop back to the per-slot
						// path while the scheduler stays armed.
						ft.preSweep = sched.SeqMark()
						if sched.Pending() > 0 {
							subEvents += sched.RunBefore(des.Time(s)*SlotTicks, ft.preSweep)
							break
						}
					}
				}
				// The slots of [start, s) all ran at the current (and
				// unchanged) threshold.
				if t.threshold == ft.curD {
					ft.runLen += s - start
				} else {
					ft.flushThreshold(n.metrics)
					ft.curD = t.threshold
					ft.runLen = s - start
				}
			}
			if last {
				// Late timers (retransmission backoffs reaching past the
				// run's end) still resolve, exactly as the reference
				// engine's final drain runs them.
				subEvents += sched.Drain()
				ft.flushThreshold(n.metrics)
			}
		}
		cur = next
		prog.Set(r.shard, cur, cur*int64(len(terms)), uint64(cur)+subEvents)
		if every > 0 && (cur%every == 0 || last) {
			// Telemetry-cadence boundaries and the final run boundary get
			// frames (checkpoint-only boundaries do not — the reference
			// engine captures no frame there); the final frame covers the
			// whole run including the drained late timers.
			frames = append(frames, n.snapshot(cur, subEvents))
		}
		if r.every > 0 && cur%r.every == 0 && !last {
			sc := captureShardCore(n, terms, rngs, cur, r.lo, r.hi, frames)
			sc.SubEvents = subEvents
			sc.Scheds = make([]SchedCheckpoint, len(fts))
			sc.PreSweep = make([]uint64, len(fts))
			sc.CurD = make([]int64, len(fts))
			sc.RunLen = make([]int64, len(fts))
			for i := range fts {
				sc.Scheds[i] = schedCheckpoint(&fts[i].sched)
				sc.PreSweep[i] = fts[i].preSweep
				sc.CurD[i] = int64(fts[i].curD)
				sc.RunLen[i] = fts[i].runLen
			}
			r.emit(sc)
		}
	}

	n.metrics.Events = subEvents
	return shardResult{metrics: finishShard(n, terms, slots), frames: frames}, nil
}
