package sim

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"repro/internal/chain"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Partial is the serializable outcome of running a contiguous slice
// [Lo, Hi) of the shards of a shards-way sharded run — the unit of work a
// cluster worker executes and ships back to its coordinator. Because every
// terminal's RNG stream is addressed by (Seed, terminal id) and shard s
// always covers terminals [s·T/shards, (s+1)·T/shards), a shard's partial
// is bit-identical no matter which machine produced it, and MergePartials
// folds any complete, disjoint set of partials into Metrics bit-identical
// to RunSharded on one machine — the cross-machine extension of the
// shard-count-invariance contract.
//
// All fields are exported and concrete so the structure round-trips
// exactly through gob (EncodePartial/DecodePartial): float64 values are
// encoded by bit pattern, which the Welford accumulator states and the
// per-terminal cost rates require.
type Partial struct {
	// Slots, Shards and Seed echo the run shape the partial belongs to;
	// MergePartials validates them against the offered configuration
	// rather than silently folding results from a different run.
	Slots  int64
	Shards int
	Seed   uint64
	// Lo and Hi delimit the shard slice [Lo, Hi) this partial covers.
	Lo, Hi int
	// Shard holds the per-shard results, indexed by shard − Lo.
	Shard []ShardPartial
}

// ShardPartial is one global shard's share of a Partial: everything the
// merge needs to rebuild the shard's Metrics exactly as finishShard left
// them on the producing machine.
type ShardPartial struct {
	// Shard is the global shard index; Lo and Hi are the shard's global
	// terminal range [Lo, Hi).
	Shard  int
	Lo, Hi int
	// SubEvents is the shard's sub-slot event count (the slot-sweep chain
	// is added back once by MergePartials, like RunSharded's merge).
	SubEvents uint64
	// Metrics is the shard's measurement state in checkpoint form.
	Metrics MetricsCheckpoint
	// TotalCost and FinalThreshold carry finishShard's per-terminal tail
	// fields (indexed by terminal position within the shard); shipping
	// the computed float64 bit patterns keeps the merge arithmetic-free.
	TotalCost      []float64
	FinalThreshold []int
	// Frames is the shard's telemetry snapshot series; MergePartials
	// re-assembles the global series with telemetry.MergeFrames exactly
	// as a single-node run would.
	Frames []FrameCheckpoint
}

// RunPartial runs shards [lo, hi) of a shards-way partition of the
// configured population — the worker half of a distributed run. The
// shard geometry (terminal ranges, RNG streams, start threshold) is
// derived exactly as RunShardedOpts derives it, so the returned partial
// is bit-identical to the same shards' share of a single-node run.
// Unlike RunSharded, shards must be explicit (a GOMAXPROCS default would
// differ across machines). cfg.Telemetry.Progress, when set, is
// initialized for the full global shard count; only entries [lo, hi)
// receive updates. Cancelling ctx stops in-flight shards within a
// bounded amount of work and returns ctx.Err().
func RunPartial(ctx context.Context, cfg Config, slots int64, shards, lo, hi int) (*Partial, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, slots); err != nil {
		return nil, err
	}
	if shards < 1 || shards > cfg.Terminals {
		return nil, fmt.Errorf("sim: partial run needs an explicit shard count in [1, %d], got %d", cfg.Terminals, shards)
	}
	if lo < 0 || hi > shards || lo >= hi {
		return nil, fmt.Errorf("sim: shard slice [%d,%d) outside [0,%d)", lo, hi, shards)
	}
	startD, err := startThreshold(cfg)
	if err != nil {
		return nil, err
	}
	var loc locator = hexLocator{}
	if cfg.Core.Model == chain.OneDim {
		loc = lineLocator{}
	}
	engine := runShard
	switch cfg.Engine {
	case EngineFast:
		engine = runShardFast
	case EngineCols:
		engine = runShardCols
	}
	cfg.Telemetry.Progress.Init(shards)
	parts, err := sweep.MapCtx(ctx, hi-lo, 0, func(ctx context.Context, i int) (shardResult, error) {
		s := lo + i
		return engine(ctx, shardRun{
			cfg:    cfg,
			slots:  slots,
			shard:  s,
			lo:     s * cfg.Terminals / shards,
			hi:     (s + 1) * cfg.Terminals / shards,
			startD: startD,
			loc:    loc,
		})
	})
	if err != nil {
		return nil, err
	}
	p := &Partial{
		Slots:  slots,
		Shards: shards,
		Seed:   cfg.Seed,
		Lo:     lo,
		Hi:     hi,
		Shard:  make([]ShardPartial, hi-lo),
	}
	for i, pr := range parts {
		s := lo + i
		p.Shard[i] = exportShardPartial(s, s*cfg.Terminals/shards, (s+1)*cfg.Terminals/shards, pr)
	}
	return p, nil
}

// exportShardPartial converts one engine shard result into its wire form.
func exportShardPartial(shard, lo, hi int, r shardResult) ShardPartial {
	m := r.metrics
	sp := ShardPartial{
		Shard:          shard,
		Lo:             lo,
		Hi:             hi,
		SubEvents:      m.Events,
		Metrics:        exportMetrics(m),
		TotalCost:      make([]float64, len(m.PerTerminal)),
		FinalThreshold: make([]int, len(m.PerTerminal)),
		Frames:         exportFrames(r.frames),
	}
	for i := range m.PerTerminal {
		sp.TotalCost[i] = m.PerTerminal[i].TotalCost
		sp.FinalThreshold[i] = m.PerTerminal[i].FinalThreshold
	}
	return sp
}

// PartialMismatchError reports a partial that does not describe the run
// it is being merged into: a different run shape (slots, shard count,
// seed) or a shard slice that does not tile the expected partition.
// Distinguishing it from structural corruption lets a coordinator treat
// the sender as confused (re-dispatch elsewhere) rather than the bytes
// as damaged.
type PartialMismatchError struct {
	// Field names the mismatched dimension ("slots", "shards", "seed",
	// "slice", "coverage"); Got and Want are its two sides, stringified.
	Field string
	Got   string
	Want  string
}

func (e *PartialMismatchError) Error() string {
	return fmt.Sprintf("sim: partial %s mismatch: got %s, want %s", e.Field, e.Got, e.Want)
}

// Validate checks a Partial's internal structural consistency — the
// shard slice tiling, per-shard vector lengths, histogram presence —
// without reference to any configuration. DecodePartial output should be
// validated before use; the checks make a hostile document an error, not
// a panic (FuzzPartialDecode).
func (p *Partial) Validate() error {
	if p.Slots <= 0 {
		return fmt.Errorf("sim: partial with %d slots", p.Slots)
	}
	if p.Shards < 1 {
		return fmt.Errorf("sim: partial with %d shards", p.Shards)
	}
	if p.Lo < 0 || p.Hi > p.Shards || p.Lo >= p.Hi {
		return fmt.Errorf("sim: partial shard slice [%d,%d) outside [0,%d)", p.Lo, p.Hi, p.Shards)
	}
	if len(p.Shard) != p.Hi-p.Lo {
		return fmt.Errorf("sim: partial holds %d shard(s), slice [%d,%d) needs %d", len(p.Shard), p.Lo, p.Hi, p.Hi-p.Lo)
	}
	for i := range p.Shard {
		sp := &p.Shard[i]
		if sp.Shard != p.Lo+i {
			return fmt.Errorf("sim: partial shard %d out of place (want shard %d)", sp.Shard, p.Lo+i)
		}
		width := sp.Hi - sp.Lo
		if sp.Lo < 0 || width <= 0 {
			return fmt.Errorf("sim: partial shard %d covers [%d,%d)", sp.Shard, sp.Lo, sp.Hi)
		}
		mc := &sp.Metrics
		if len(mc.PerTerminal) != width || len(sp.TotalCost) != width || len(sp.FinalThreshold) != width {
			return fmt.Errorf("sim: partial shard %d holds %d terminal record(s), range [%d,%d) needs %d",
				sp.Shard, len(mc.PerTerminal), sp.Lo, sp.Hi, width)
		}
		if mc.DelayHist == nil || mc.RecoveryHist == nil {
			return fmt.Errorf("sim: partial shard %d missing latency histogram(s)", sp.Shard)
		}
		for j := range sp.Frames {
			f := &sp.Frames[j]
			if len(f.Delay) != width || len(f.Recovery) != width {
				return fmt.Errorf("sim: partial shard %d frame %d holds %d accumulator(s), want %d",
					sp.Shard, j, len(f.Delay), width)
			}
		}
	}
	return nil
}

// MergePartials folds a complete set of partials — every shard of the
// shards-way partition exactly once, in any grouping and order — into
// the Metrics a single-node RunSharded of the same configuration would
// produce, bit for bit: per-shard Metrics are rebuilt from the wire
// state, merged in global shard order, the slot-sweep event chain is
// added back once, and the telemetry series is assembled with
// telemetry.MergeFrames over all shards. A partial describing a
// different run shape is rejected with *PartialMismatchError; missing or
// duplicated shards and malformed per-shard state are plain errors.
func MergePartials(cfg Config, slots int64, shards int, parts []*Partial) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, slots); err != nil {
		return nil, err
	}
	if shards < 1 || shards > cfg.Terminals {
		return nil, fmt.Errorf("sim: partial merge needs an explicit shard count in [1, %d], got %d", cfg.Terminals, shards)
	}
	byShard := make([]*ShardPartial, shards)
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("sim: nil partial")
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Slots != slots {
			return nil, &PartialMismatchError{Field: "slots",
				Got: fmt.Sprint(p.Slots), Want: fmt.Sprint(slots)}
		}
		if p.Shards != shards {
			return nil, &PartialMismatchError{Field: "shards",
				Got: fmt.Sprint(p.Shards), Want: fmt.Sprint(shards)}
		}
		if p.Seed != cfg.Seed {
			return nil, &PartialMismatchError{Field: "seed",
				Got: fmt.Sprint(p.Seed), Want: fmt.Sprint(cfg.Seed)}
		}
		for i := range p.Shard {
			sp := &p.Shard[i]
			if byShard[sp.Shard] != nil {
				return nil, &PartialMismatchError{Field: "coverage",
					Got: fmt.Sprintf("shard %d twice", sp.Shard), Want: "each shard once"}
			}
			byShard[sp.Shard] = sp
		}
	}
	merged := &Metrics{}
	series := make([][]telemetry.ShardFrame, shards)
	for s := 0; s < shards; s++ {
		sp := byShard[s]
		if sp == nil {
			return nil, &PartialMismatchError{Field: "coverage",
				Got: fmt.Sprintf("shard %d missing", s), Want: fmt.Sprintf("all %d shards", shards)}
		}
		lo, hi := s*cfg.Terminals/shards, (s+1)*cfg.Terminals/shards
		if sp.Lo != lo || sp.Hi != hi {
			return nil, &PartialMismatchError{Field: "slice",
				Got:  fmt.Sprintf("shard %d over terminals [%d,%d)", s, sp.Lo, sp.Hi),
				Want: fmt.Sprintf("[%d,%d)", lo, hi)}
		}
		merged.Merge(restorePartialMetrics(cfg, slots, sp))
		series[s] = restoreFrames(sp.Frames)
	}
	// Each shard reported only its sub-slot events; add the slot-sweep
	// chain once, exactly as RunShardedOpts does after its merge.
	merged.Events += uint64(slots)
	if cfg.Telemetry.SnapshotEvery > 0 {
		merged.Snapshots = telemetry.MergeFrames(series, cfg.Terminals,
			cfg.Core.Costs.Update, cfg.Core.Costs.Poll)
	}
	return merged, nil
}

// restorePartialMetrics rebuilds one shard's Metrics exactly as
// finishShard left them on the producing machine: counters and histogram
// copies, accumulator states restored bit-for-bit, global ids
// re-derived from the shard's terminal range, and the shipped tail
// fields (TotalCost, FinalThreshold) taken verbatim. The shard's
// structural consistency was checked by Partial.Validate.
func restorePartialMetrics(cfg Config, slots int64, sp *ShardPartial) *Metrics {
	mc := &sp.Metrics
	width := sp.Hi - sp.Lo
	m := &Metrics{
		Slots:     slots,
		Terminals: width,
		Updates:   mc.Updates, Calls: mc.Calls, PolledCells: mc.PolledCells,
		UpdateBytes: mc.UpdateBytes, PollBytes: mc.PollBytes, ReplyBytes: mc.ReplyBytes,
		NotFound:    mc.NotFound,
		LostUpdates: mc.LostUpdates, LostPolls: mc.LostPolls, LostReplies: mc.LostReplies,
		FallbackCalls: mc.FallbackCalls, Retransmissions: mc.Retransmissions,
		Acks: mc.Acks, AckBytes: mc.AckBytes,
		RePolls: mc.RePolls, DroppedCalls: mc.DroppedCalls,
		OutageDeferred: mc.OutageDeferred,
		DelayHist:      mc.DelayHist.Clone(),
		RecoveryHist:   mc.RecoveryHist.Clone(),
		ThresholdSlots: make(map[int]int64, len(mc.ThresholdSlots)),
		Events:         sp.SubEvents,
		PerTerminal:    make([]TerminalStats, width),
		costs:          cfg.Core.Costs,
	}
	for d, c := range mc.ThresholdSlots {
		m.ThresholdSlots[d] = c
	}
	for i := range mc.PerTerminal {
		tsc := &mc.PerTerminal[i]
		ts := &m.PerTerminal[i]
		ts.ID = sp.Lo + i
		ts.Updates, ts.Calls, ts.PolledCells = tsc.Updates, tsc.Calls, tsc.PolledCells
		ts.Delay.SetState(tsc.Delay)
		ts.Recovery.SetState(tsc.Recovery)
		ts.TotalCost = sp.TotalCost[i]
		ts.FinalThreshold = sp.FinalThreshold[i]
	}
	return m
}

// partMagic versions the partial wire format.
var partMagic = []byte("PCNPART1")

// EncodePartial serializes a partial to the same self-checking byte
// format checkpoints use: a magic/version header, the gob payload, and a
// CRC32 trailer over the payload. Gob encodes float64 values by bit
// pattern, so decoding on another machine reproduces every accumulator
// and cost rate exactly.
func EncodePartial(p *Partial) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(partMagic)
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("sim: encoding partial: %w", err)
	}
	payload := buf.Bytes()[len(partMagic):]
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	buf.Write(tail[:])
	return buf.Bytes(), nil
}

// DecodePartial parses bytes produced by EncodePartial, rejecting
// unknown formats and corrupted payloads (checksum mismatch). The
// decoded structure is not yet validated; callers must run
// Partial.Validate before trusting it.
func DecodePartial(data []byte) (*Partial, error) {
	if len(data) < len(partMagic)+4 || !bytes.Equal(data[:len(partMagic)], partMagic) {
		return nil, fmt.Errorf("sim: not a partial (bad magic)")
	}
	payload := data[len(partMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("sim: partial checksum mismatch")
	}
	p := &Partial{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(p); err != nil {
		return nil, fmt.Errorf("sim: decoding partial: %w", err)
	}
	return p, nil
}
