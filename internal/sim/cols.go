package sim

import (
	"context"

	"repro/internal/des"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// The columnar cohort engine (EngineCols).
//
// The fast path already inverted the reference engine's loop — terminals
// advance through whole slot batches in memory order — but each terminal
// still drags its full struct (parameters, estimator, fault bookkeeping;
// well over a cache line) through the hot loop, and still asks the RNG
// one question per slot. At millions of terminals the struct walk is
// what blows the cache: BENCH_engine.json shows fast-path throughput
// falling between 100k and 1M terminals.
//
// The columnar engine splits the state by temperature. The few words the
// per-slot decision actually needs — position, center, threshold, the
// precomputed call/move thresholds, the RNG state and the scheduler
// bookkeeping — live in flat parallel slices (one cache-dense column
// each), while the terminal structs are kept as a cold mirror that only
// event handling touches: scheduled closures (ack timers) capture
// *terminal, so those pointers must stay stable and the struct fields
// must be current whenever network code runs. The engine walks terminals
// in cohorts of colsCohortTerminals per slot batch, which bounds how
// stale the cohort-granular progress accounting can get and gives
// cancellation a natural check boundary.
//
// Inside a terminal's event-free stretch the engine stops asking "did
// anything happen this slot?" and instead asks "how many slots until
// something happens?" — stats.RNG.EventGap draws the gap to the next
// call-or-move event directly. The gap sampler is the per-slot threshold
// scan itself (one call draw, then one move draw, per slot, in sweepSlot
// order), so it consumes the identical stream positions as the scalar
// engines and bit-identity is preserved by construction; what it buys is
// that the generator state, position and center stay in registers for
// the whole stretch instead of round-tripping through memory every slot.
// Cell geometry is inlined on a concrete grid.Hex/grid.Line branch
// rather than called through the locator interface: an interface call
// would force the register-resident RNG copy to escape to the heap,
// and the hot loop must not allocate at any population size.
//
// Everything the fast path established about equivalence carries over
// unchanged (see the contract notes in fast.go): slow slots run the
// reference sweepSlot on the struct mirror, per-terminal event timing
// replays the reference tie-break via preSweep marks and RunBefore, and
// telemetry frames are captured at the same batch boundaries with the
// same accounting.

// colsCohortTerminals is the cohort width: terminals are advanced
// through each slot batch in blocks of this many. The hot columns of a
// cohort (~100 B/terminal) fit comfortably in L2, and a cohort is the
// granularity of progress publication.
const colsCohortTerminals = 4096

// colsState holds the hot columns, indexed by terminal position within
// the shard. The RNG column is the flat slice newShardNetwork seeds —
// terminal i's rng pointer aliases element i, so the cold paths and the
// columnar kernel consume one and the same stream.
type colsState struct {
	rngs []stats.RNG
	// pos and ctr mirror terminal.pos and terminal.center; thr mirrors
	// terminal.threshold. The columns are authoritative between cold
	// calls; syncTerminal/syncColumns move the values across.
	pos []wire.Cell
	ctr []wire.Cell
	thr []int32
	// callT and moveT are the precomputed integer Bernoulli thresholds
	// for the per-slot call and movement draws (stats.BernoulliThreshold
	// of params.C and moveProb; both are fixed for the whole run).
	callT []uint64
	moveT []uint64
	// sched and preSweep are the per-terminal scheduler machinery, and
	// curD/runLen the batched threshold-usage accounting — exactly
	// fastTerm's fields, as columns.
	sched    []des.Scheduler
	preSweep []uint64
	curD     []int32
	runLen   []int64
}

func newColsState(terms []terminal, rngs []stats.RNG, startD int) *colsState {
	n := len(terms)
	c := &colsState{
		rngs:     rngs,
		pos:      make([]wire.Cell, n),
		ctr:      make([]wire.Cell, n),
		thr:      make([]int32, n),
		callT:    make([]uint64, n),
		moveT:    make([]uint64, n),
		sched:    make([]des.Scheduler, n),
		preSweep: make([]uint64, n),
		curD:     make([]int32, n),
		runLen:   make([]int64, n),
	}
	for i := range terms {
		t := &terms[i]
		c.pos[i] = t.pos
		c.ctr[i] = t.center
		c.thr[i] = int32(t.threshold)
		c.callT[i] = stats.BernoulliThreshold(t.params.C)
		c.moveT[i] = stats.BernoulliThreshold(t.moveProb)
		c.curD[i] = int32(startD)
	}
	return c
}

// syncTerminal refreshes the cold struct mirror from the columns, so
// network code (sweeps, paging, update exchanges, queued timers) sees
// the terminal's current state.
func (c *colsState) syncTerminal(t *terminal, i int) {
	t.pos = c.pos[i]
	t.center = c.ctr[i]
	t.threshold = int(c.thr[i])
}

// syncColumns writes the struct mirror back to the columns after cold
// code may have changed it.
func (c *colsState) syncColumns(t *terminal, i int) {
	c.pos[i] = t.pos
	c.ctr[i] = t.center
	c.thr[i] = int32(t.threshold)
}

// flushThreshold credits terminal i's batched threshold-usage run; see
// fastTerm.flushThreshold.
func (c *colsState) flushThreshold(i int, m *Metrics) {
	if c.runLen[i] > 0 {
		m.ThresholdSlots[int(c.curD[i])] += c.runLen[i]
	}
}

// runShardCols simulates terminals [lo, hi) with the columnar cohort
// engine, bit-identical to runShard and runShardFast for every
// configuration. The batch structure matches the fast path (slot batches
// bounded by the telemetry cadence, frames captured at the boundaries,
// final drain of late timers); within a batch, terminals advance in
// cohorts, and within a terminal, event-free stretches collapse into
// EventGap draws on register-resident state.
func runShardCols(ctx context.Context, r shardRun) (shardResult, error) {
	cfg, slots := r.cfg, r.slots
	n, terms, rngs, err := newShardNetwork(cfg, slots, r.lo, r.hi, r.startD, r.loc)
	if err != nil {
		return shardResult{}, err
	}
	_, isHex := r.loc.(hexLocator)
	// Resume restores the struct mirrors (and RNG columns) first, so
	// newColsState seeds the hot columns from the checkpointed state; the
	// scheduler/preSweep/threshold-accounting columns are then overlaid
	// from the checkpoint directly.
	start := int64(0)
	if r.resume != nil {
		if err := restoreShardCore(n, terms, rngs, r.resume); err != nil {
			return shardResult{}, err
		}
		start = r.resume.Slot
	}
	c := newColsState(terms, rngs, r.startD)

	every := cfg.Telemetry.SnapshotEvery
	prog := cfg.Telemetry.Progress
	dyn := cfg.Dynamic
	kind, param := n.upd.kind, n.upd.param
	done := ctx.Done()
	width := int64(r.hi - r.lo)
	var frames []telemetry.ShardFrame
	// subEvents counts dispatched sub-slot events across all terminals,
	// same convention as the fast path.
	var subEvents uint64
	if r.resume != nil {
		frames = restoreFrames(r.resume.Frames)
		subEvents = r.resume.SubEvents
		bind := ackBind(n, terms)
		for i := range terms {
			sc := &r.resume.Scheds[i]
			c.sched[i].Restore(des.Time(sc.Now), sc.Seq, sc.Ran, sc.Pending, bind)
			c.preSweep[i] = r.resume.PreSweep[i]
			c.curD[i] = int32(r.resume.CurD[i])
			c.runLen[i] = r.resume.RunLen[i]
		}
	}

	for cur := start; cur < slots; {
		next := slots
		if every > 0 {
			if b := (cur/every + 1) * every; b < next {
				next = b
			}
		}
		if r.every > 0 {
			if b := (cur/r.every + 1) * r.every; b < next {
				next = b
			}
		}
		last := next == slots
		for first := 0; first < len(terms); first += colsCohortTerminals {
			endT := first + colsCohortTerminals
			if endT > len(terms) {
				endT = len(terms)
			}
			for i := first; i < endT; i++ {
				t := &terms[i]
				sched := &c.sched[i]
				n.sched = sched
				for s := cur; s < next; {
					if done != nil {
						select {
						case <-done:
							return shardResult{}, ctx.Err()
						default:
						}
					}
					if sched.Pending() > 0 || (dyn && s > 0 && s%cfg.ReoptimizeEvery == 0) {
						// Slow slot: run the reference two-phase event
						// path on the struct mirror. The mirror must be
						// current before any queued event dispatches
						// (retransmissions read t.pos), and the columns
						// are refreshed after the sweep.
						c.syncTerminal(t, i)
						base := des.Time(s) * SlotTicks
						if sched.Pending() > 0 {
							subEvents += sched.RunBefore(base, c.preSweep[i])
						}
						sched.AdvanceTo(base)
						if int32(t.threshold) == c.curD[i] {
							c.runLen[i]++
						} else {
							c.flushThreshold(i, n.metrics)
							c.curD[i] = int32(t.threshold)
							c.runLen[i] = 1
						}
						n.sweepSlot(t, s)
						if dyn && s > 0 && s%cfg.ReoptimizeEvery == 0 {
							n.reoptimize(t)
						}
						c.preSweep[i] = sched.SeqMark()
						if sched.Pending() > 0 {
							subEvents += sched.RunBefore(base+SlotTicks, c.preSweep[i])
						}
						c.syncColumns(t, i)
						s++
						continue
					}
					// Pure stretch: load the terminal's hot state into
					// registers and consume event gaps until the stretch
					// ends or the scheduler is armed.
					stop := next
					if dyn {
						if b := (s/cfg.ReoptimizeEvery + 1) * cfg.ReoptimizeEvery; b < stop {
							stop = b
						}
					}
					if done != nil && stop-s > ctxCheckSlots {
						stop = s + ctxCheckSlots
					}
					start := s
					lr := rngs[i]
					pos, ctr := c.pos[i], c.ctr[i]
					thr := int(c.thr[i])
					callT, moveT := c.callT[i], c.moveT[i]
					for s < stop {
						limit := stop - s
						deadlined := false
						if kind == schemeTimer {
							// The gap sampler may not run past the timer's
							// refresh deadline: that slot takes its call and
							// move draws individually and then fires the
							// update, so the budget stops just short of it.
							// An overdue deadline (a dropped call left
							// lastContact stale) clamps to a zero budget —
							// EventGap consumes no draws on a zero limit —
							// and the slot is processed manually below.
							if dl := t.lastContact + param; dl < stop {
								if dl < s {
									dl = s
								}
								limit = dl - s
								deadlined = true
							}
						}
						gap, called, hit := lr.EventGap(callT, moveT, limit)
						if dyn {
							// The estimator's float sequence must match
							// the scalar per-slot updates exactly, so
							// event-free slots are replayed one by one —
							// no closed-form decay.
							for k := int64(0); k < gap; k++ {
								t.est.observe(false, false)
							}
						}
						s += gap
						if !hit {
							if !deadlined {
								break
							}
							// s reached the refresh deadline without an
							// event. Replay the slot's draws in sweepSlot
							// order — call, then movement (with its
							// direction draw), neither of which can trigger
							// in timer mode — then fire the timer update.
							if lr.BernoulliT(callT) {
								rngs[i] = lr
								t.pos, t.center, t.threshold = pos, ctr, thr
								subEvents += n.fastPage(t, des.Time(s)*SlotTicks)
								ctr = t.center
								lr = rngs[i]
								s++
								continue
							}
							if lr.BernoulliT(moveT) {
								if isHex {
									h := grid.Hex{Q: int(pos.Q), R: int(pos.R)}.Neighbor(lr.Intn(6))
									pos = wire.Cell{Q: int32(h.Q), R: int32(h.R)}
								} else {
									pos = wire.Cell{Q: int32(grid.Line(pos.Q).Neighbor(lr.Intn(2)))}
								}
							}
							rngs[i] = lr
							sched.AdvanceTo(des.Time(s) * SlotTicks)
							ctr = pos
							t.pos, t.center, t.threshold = pos, ctr, thr
							n.sendUpdate(t)
							lr = rngs[i]
							s++
							c.preSweep[i] = sched.SeqMark()
							if sched.Pending() > 0 {
								subEvents += sched.RunBefore(des.Time(s)*SlotTicks, c.preSweep[i])
								lr = rngs[i]
								pos, ctr = t.pos, t.center
								break
							}
							continue
						}
						if called {
							// Inline paging exchange through the cold
							// path: publish registers, run, reload (the
							// chain draws losses from the shared RNG
							// column and may re-center the terminal).
							rngs[i] = lr
							t.pos, t.center, t.threshold = pos, ctr, thr
							subEvents += n.fastPage(t, des.Time(s)*SlotTicks)
							ctr = t.center
							lr = rngs[i]
							if dyn {
								t.est.observe(false, true)
							}
							s++
							continue
						}
						// Move event: direction draw, then the scheme's
						// trigger decision, on concrete grid math (an
						// interface call here would heap-escape lr). The
						// timer scheme never triggers on movement; its
						// deadline handling sits above.
						trigger := false
						if isHex {
							h := grid.Hex{Q: int(pos.Q), R: int(pos.R)}.Neighbor(lr.Intn(6))
							pos = wire.Cell{Q: int32(h.Q), R: int32(h.R)}
							if kind == schemeDistance {
								trigger = h.Dist(grid.Hex{Q: int(ctr.Q), R: int(ctr.R)}) > thr
							}
						} else {
							l := grid.Line(pos.Q).Neighbor(lr.Intn(2))
							pos = wire.Cell{Q: int32(l)}
							if kind == schemeDistance {
								trigger = l.Dist(grid.Line(ctr.Q)) > thr
							}
						}
						if kind == schemeMovement {
							t.moves++
							trigger = t.moves >= param
						}
						touched := false
						if trigger {
							rngs[i] = lr
							sched.AdvanceTo(des.Time(s) * SlotTicks)
							ctr = pos
							t.pos, t.center, t.threshold = pos, ctr, thr
							n.sendUpdate(t)
							lr = rngs[i]
							touched = true
						}
						if dyn {
							t.est.observe(true, false)
						}
						s++
						if touched {
							c.preSweep[i] = sched.SeqMark()
							if sched.Pending() > 0 {
								subEvents += sched.RunBefore(des.Time(s)*SlotTicks, c.preSweep[i])
								// Dispatched retransmissions consume RNG
								// draws and may re-center; reload before
								// falling back to the per-slot path.
								lr = rngs[i]
								pos, ctr = t.pos, t.center
								break
							}
						}
					}
					rngs[i] = lr
					c.pos[i], c.ctr[i] = pos, ctr
					// The whole stretch ran at one threshold (only
					// reoptimize moves it, never inside a stretch).
					if int32(thr) == c.curD[i] {
						c.runLen[i] += s - start
					} else {
						c.flushThreshold(i, n.metrics)
						c.curD[i] = int32(thr)
						c.runLen[i] = s - start
					}
				}
				if last {
					// Late timers resolve against the current mirror,
					// exactly as the reference engine's final drain.
					c.syncTerminal(t, i)
					subEvents += sched.Drain()
					c.syncColumns(t, i)
					c.flushThreshold(i, n.metrics)
				}
			}
			if endT < len(terms) {
				// Cohort-granular progress: slot stays at the batch
				// floor while completed work and events advance, so
				// pollers watch a run move through a deep batch instead
				// of seeing it jump at the boundary.
				prog.Set(r.shard, cur, cur*width+int64(endT)*(next-cur), uint64(cur)+subEvents)
			}
		}
		cur = next
		prog.Set(r.shard, cur, cur*width, uint64(cur)+subEvents)
		if every > 0 && (cur%every == 0 || last) {
			frames = append(frames, n.snapshot(cur, subEvents))
		}
		if r.every > 0 && cur%r.every == 0 && !last {
			// The struct mirrors may be stale (columns are authoritative
			// between cold calls); refresh them so the capture sees the
			// current positions, centers and thresholds.
			for i := range terms {
				c.syncTerminal(&terms[i], i)
			}
			sc := captureShardCore(n, terms, rngs, cur, r.lo, r.hi, frames)
			sc.SubEvents = subEvents
			sc.Scheds = make([]SchedCheckpoint, len(terms))
			sc.PreSweep = make([]uint64, len(terms))
			sc.CurD = make([]int64, len(terms))
			sc.RunLen = make([]int64, len(terms))
			for i := range terms {
				sc.Scheds[i] = schedCheckpoint(&c.sched[i])
				sc.PreSweep[i] = c.preSweep[i]
				sc.CurD[i] = int64(c.curD[i])
				sc.RunLen[i] = c.runLen[i]
			}
			r.emit(sc)
		}
	}

	n.metrics.Events = subEvents
	return shardResult{metrics: finishShard(n, terms, slots), frames: frames}, nil
}
