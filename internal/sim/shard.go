package sim

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// RunSharded simulates the network for the given number of slots with the
// terminal population partitioned into shards independent shard
// simulations — each with its own discrete-event scheduler, HLR slice and
// RNG streams — executed concurrently on the sweep.Map pool and merged
// with Metrics.Merge. Terminals interact only through their own HLR
// record, so the partition is exact, not an approximation.
//
// Results are shard-count invariant: every terminal's RNG stream is
// derived from (cfg.Seed, terminal id) via stats.SubStream, and the merge
// reduces per-terminal records in global id order, so a given seed yields
// bit-identical Metrics for every shard count (including Run, the
// one-shard case). shards == 0 selects GOMAXPROCS; negative shard counts
// are rejected; shard counts beyond the population are clamped to one
// terminal per shard.
func RunSharded(cfg Config, slots int64, shards int) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, slots); err != nil {
		return nil, err
	}
	if shards < 0 {
		return nil, fmt.Errorf("sim: negative shard count %d", shards)
	}
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > cfg.Terminals {
		shards = cfg.Terminals
	}
	startD, err := startThreshold(cfg)
	if err != nil {
		return nil, err
	}
	var loc locator = hexLocator{}
	if cfg.Core.Model == chain.OneDim {
		loc = lineLocator{}
	}

	parts, err := sweep.Map(shards, 0, func(s int) (*Metrics, error) {
		lo := s * cfg.Terminals / shards
		hi := (s + 1) * cfg.Terminals / shards
		return runShard(cfg, slots, lo, hi, startD, loc)
	})
	if err != nil {
		return nil, err
	}

	merged := &Metrics{}
	for _, p := range parts {
		merged.Merge(p)
	}
	// Each shard reported only its sub-slot events; add the slot-sweep
	// chain once, restoring the single-engine convention.
	merged.Events += uint64(slots)
	return merged, nil
}

// validate rejects unusable configurations; cfg must already carry its
// defaults.
func validate(cfg Config, slots int64) error {
	if err := cfg.Core.Validate(); err != nil {
		return err
	}
	if slots <= 0 {
		return errors.New("sim: slots must be positive")
	}
	if err := cfg.Faults.validate(); err != nil {
		return err
	}
	if cfg.Threshold > cfg.MaxThreshold {
		return fmt.Errorf("sim: threshold %d exceeds MaxThreshold %d", cfg.Threshold, cfg.MaxThreshold)
	}
	// A full paging exchange — the nominal plan (at most MaxThreshold+2
	// cycles) plus every recovery round — must finish inside the arrival
	// slot, or paging would overlap the next movement opportunity.
	if 2*(cfg.MaxThreshold+2+cfg.Faults.PageRetries) >= SlotTicks {
		return fmt.Errorf("sim: MaxThreshold %d with %d paging retries needs more polling ticks than a slot holds (%d)",
			cfg.MaxThreshold, cfg.Faults.PageRetries, SlotTicks)
	}
	return nil
}

// startThreshold resolves the static threshold every terminal starts with;
// negative Config.Threshold means network-optimized. It runs once before
// sharding so every shard starts from the same d.
func startThreshold(cfg Config) (int, error) {
	if cfg.Threshold >= 0 {
		return cfg.Threshold, nil
	}
	res, err := core.Scan(cfg.Core, cfg.MaxThreshold)
	if err != nil {
		return 0, err
	}
	return res.Best.Threshold, nil
}

// runShard simulates terminals [lo, hi) of the global population on one
// discrete-event engine. Its Metrics carry only this shard's share:
// Terminals is hi−lo, PerTerminal holds records for ids lo..hi−1 and
// Events counts sub-slot events only (the caller adds the slot sweeps
// once after merging).
func runShard(cfg Config, slots int64, lo, hi, startD int, loc locator) (*Metrics, error) {
	n := &network{
		cfg:   cfg,
		loc:   loc,
		first: uint32(lo),
		hlr:   make(map[uint32]hlrRecord, hi-lo),
		metrics: &Metrics{
			Slots:          slots,
			Terminals:      hi - lo,
			ThresholdSlots: make(map[int]int64),
			PerTerminal:    make([]TerminalStats, hi-lo),
			costs:          cfg.Core.Costs,
		},
		parts: make(map[int]partInfo),
	}

	terms := make([]*terminal, hi-lo)
	for g := lo; g < hi; g++ {
		p := cfg.Core.Params
		if cfg.PerTerminal != nil {
			p = cfg.PerTerminal(g)
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("sim: terminal %d: %w", g, err)
			}
		}
		t := &terminal{
			id:        uint32(g),
			params:    p,
			rng:       stats.SubStream(cfg.Seed, uint64(g)),
			est:       estimator{alpha: cfg.EWMAAlpha},
			threshold: startD,
		}
		if p.Q > 0 {
			t.moveProb = p.Q / (1 - p.C)
		}
		terms[g-lo] = t
		n.metrics.PerTerminal[g-lo].ID = g
		// Initial registration (subscription-time provisioning, not a
		// mechanism update, so it is implicitly acknowledged).
		n.register(t.makeUpdate())
		t.ackedSeq = t.seq
	}

	var sched des.Scheduler
	n.sched = &sched

	// One event per slot sweeps the shard's terminals: movement/update and
	// call arrivals; paging cycles run as sub-slot events.
	var slot func()
	cur := int64(0)
	slot = func() {
		for _, t := range terms {
			n.metrics.ThresholdSlots[t.threshold]++
			called := t.rng.Bernoulli(t.params.C)
			moved := false
			if called {
				n.page(t)
			} else if t.rng.Bernoulli(t.moveProb) {
				moved = true
				t.pos = loc.move(t.pos, t.rng)
				if loc.dist(t.pos, t.center) > t.threshold {
					t.center = t.pos
					n.sendUpdate(t)
				}
			}
			if cfg.Dynamic {
				t.est.observe(moved, called)
			}
		}
		if cfg.Dynamic && cur > 0 && cur%cfg.ReoptimizeEvery == 0 {
			for _, t := range terms {
				n.reoptimize(t)
			}
		}
		cur++
		if cur < slots {
			sched.After(SlotTicks, slot)
		}
	}
	sched.At(0, slot)
	sched.Drain()

	m := n.metrics
	m.Events = sched.Processed() - uint64(slots)
	for i := range m.PerTerminal {
		ts := &m.PerTerminal[i]
		ts.TotalCost = (float64(ts.Updates)*cfg.Core.Costs.Update +
			float64(ts.PolledCells)*cfg.Core.Costs.Poll) / float64(slots)
		ts.FinalThreshold = terms[i].threshold
	}
	m.recompute()
	return m, nil
}
