package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Latency histogram shapes: paging delay in polling cycles (unit
// buckets; a nominal plan never exceeds MaxThreshold+2 cycles) and
// desync-recovery latency in slots.
const (
	delayHistWidth      = 1
	delayHistBuckets    = 64
	recoveryHistWidth   = 64
	recoveryHistBuckets = 64
)

// RunSharded simulates the network for the given number of slots with the
// terminal population partitioned into shards independent shard
// simulations — each with its own discrete-event scheduler, HLR slice and
// RNG streams — executed concurrently on the sweep.Map pool and merged
// with Metrics.Merge. Terminals interact only through their own HLR
// record, so the partition is exact, not an approximation.
//
// Results are shard-count invariant: every terminal's RNG stream is
// derived from (cfg.Seed, terminal id) via stats.SubStream, and the merge
// reduces per-terminal records in global id order, so a given seed yields
// bit-identical Metrics for every shard count (including Run, the
// one-shard case). shards == 0 selects GOMAXPROCS; negative shard counts
// are rejected; shard counts beyond the population are clamped to one
// terminal per shard.
func RunSharded(cfg Config, slots int64, shards int) (*Metrics, error) {
	return RunShardedCtx(context.Background(), cfg, slots, shards)
}

// ctxCheckSlots bounds how many slots the fast path's pure stretch may
// run between cancellation checks when a cancellable context is in
// force. A stretch this long costs well under a millisecond, so the
// shard notices cancellation orders of magnitude inside any human
// deadline while a background context pays no per-slot check at all.
const ctxCheckSlots = 1 << 16

// RunShardedCtx is RunSharded under cooperative cancellation: when ctx is
// cancelled, shards that have not started are never dispatched and every
// in-flight shard stops within a bounded amount of work (the reference
// engine checks at each slot boundary, the fast path at least every
// ctxCheckSlots terminal-slots), so the call returns promptly with
// ctx.Err() instead of after run completion. A run that completes
// normally is untouched by the context machinery: results remain
// bit-identical to RunSharded for every shard count.
func RunShardedCtx(ctx context.Context, cfg Config, slots int64, shards int) (*Metrics, error) {
	return RunShardedOpts(ctx, cfg, slots, shards, RunOpts{})
}

// RunOpts carries the durability extensions to a sharded run: periodic
// checkpoint capture and resumption from a prior checkpoint. The zero
// value reproduces RunShardedCtx exactly.
type RunOpts struct {
	// Resume, when non-nil, continues the run recorded in the checkpoint
	// instead of starting from slot 0. The offered configuration must
	// match the checkpoint's run shape (slots, seed, shard count, start
	// threshold, engine class); the final Metrics are then bit-identical
	// to an uninterrupted run.
	Resume *Checkpoint
	// CheckpointEvery > 0 captures a consistent whole-run checkpoint at
	// every interior multiple of that many slots and hands it to
	// CheckpointSink. The sink is called on a shard goroutine (the last
	// shard to reach the boundary), in increasing slot order; it must not
	// retain the pointer past the call unless it finishes with it.
	CheckpointEvery int64
	CheckpointSink  func(*Checkpoint)
}

// RunShardedOpts is RunShardedCtx with checkpoint capture and resume.
// Checkpointing does not perturb results: a run observed through its
// sink checkpoints, or resumed from any of them, still produces
// bit-identical Metrics for every shard count and engine.
func RunShardedOpts(ctx context.Context, cfg Config, slots int64, shards int, opts RunOpts) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg, slots); err != nil {
		return nil, err
	}
	if shards < 0 {
		return nil, fmt.Errorf("sim: negative shard count %d", shards)
	}
	if shards == 0 {
		if opts.Resume != nil {
			// A checkpoint is only valid for its own partition; an
			// unspecified shard count adopts it rather than guessing.
			shards = opts.Resume.Shards
		} else {
			shards = runtime.GOMAXPROCS(0)
		}
	}
	if shards > cfg.Terminals {
		shards = cfg.Terminals
	}
	startD, err := startThreshold(cfg)
	if err != nil {
		return nil, err
	}
	var loc locator = hexLocator{}
	if cfg.Core.Model == chain.OneDim {
		loc = lineLocator{}
	}
	if opts.CheckpointEvery < 0 {
		return nil, fmt.Errorf("sim: negative checkpoint cadence %d", opts.CheckpointEvery)
	}
	if opts.CheckpointEvery > 0 && opts.CheckpointSink == nil {
		return nil, errors.New("sim: checkpoint cadence without a sink")
	}
	if opts.Resume != nil {
		if err := validateResume(opts.Resume, cfg, slots, shards, startD); err != nil {
			return nil, err
		}
	}

	engine := runShard
	switch cfg.Engine {
	case EngineFast:
		engine = runShardFast
	case EngineCols:
		engine = runShardCols
	}
	var agg *ckptAggregator
	if opts.CheckpointEvery > 0 {
		upd, _ := resolveScheme(cfg.Scheme) // validated above
		shape := Checkpoint{Slots: slots, Shards: shards, StartD: startD,
			Seed: cfg.Seed, Engine: cfg.Engine,
			Scheme: upd.kind.String(), SchemeParam: upd.param}
		agg = newCkptAggregator(shape, shards, opts.CheckpointSink)
	}
	cfg.Telemetry.Progress.Init(shards)
	parts, err := sweep.MapCtx(ctx, shards, 0, func(ctx context.Context, s int) (shardResult, error) {
		r := shardRun{
			cfg:    cfg,
			slots:  slots,
			shard:  s,
			lo:     s * cfg.Terminals / shards,
			hi:     (s + 1) * cfg.Terminals / shards,
			startD: startD,
			loc:    loc,
			every:  opts.CheckpointEvery,
		}
		if opts.Resume != nil {
			r.resume = &opts.Resume.Shard[s]
		}
		if agg != nil {
			r.emit = func(sc ShardCheckpoint) { agg.add(s, sc) }
		}
		return engine(ctx, r)
	})
	if err != nil {
		return nil, err
	}

	merged := &Metrics{}
	for _, p := range parts {
		merged.Merge(p.metrics)
	}
	// Each shard reported only its sub-slot events; add the slot-sweep
	// chain once, restoring the single-engine convention.
	merged.Events += uint64(slots)
	if cfg.Telemetry.SnapshotEvery > 0 {
		series := make([][]telemetry.ShardFrame, len(parts))
		for i, p := range parts {
			series[i] = p.frames
		}
		merged.Snapshots = telemetry.MergeFrames(series, cfg.Terminals,
			cfg.Core.Costs.Update, cfg.Core.Costs.Poll)
	}
	return merged, nil
}

// shardResult is one shard's share of a run: its metrics plus its
// telemetry snapshot series (nil when telemetry is off).
type shardResult struct {
	metrics *Metrics
	frames  []telemetry.ShardFrame
}

// shardRun is everything one engine invocation needs: the run shape, the
// shard's slice of the population, and the checkpoint plumbing (resume
// source and capture cadence/sink), both inactive in a plain run.
type shardRun struct {
	cfg    Config
	slots  int64
	shard  int
	lo, hi int
	startD int
	loc    locator
	// resume, when non-nil, is this shard's slice of the checkpoint the
	// run continues from (already validated against the run shape).
	resume *ShardCheckpoint
	// every > 0 asks the engine to capture a shard checkpoint at every
	// interior multiple of every slots and hand it to emit.
	every int64
	emit  func(ShardCheckpoint)
}

// validateResume rejects checkpoints that do not describe the offered
// run: resuming under a different shape would not merely be lossy, it
// would produce a report matching no configuration at all.
func validateResume(cp *Checkpoint, cfg Config, slots int64, shards, startD int) error {
	if cp.Slots != slots {
		return fmt.Errorf("sim: checkpoint is for %d slots, run wants %d", cp.Slots, slots)
	}
	if cp.Seed != cfg.Seed {
		return fmt.Errorf("sim: checkpoint seed %d does not match configured seed %d", cp.Seed, cfg.Seed)
	}
	if cp.StartD != startD {
		return fmt.Errorf("sim: checkpoint start threshold %d does not match run's %d", cp.StartD, startD)
	}
	upd, _ := resolveScheme(cfg.Scheme) // cfg was validated before resume
	cpScheme := cp.Scheme
	if cpScheme == "" {
		// Checkpoints written before the scheme field existed are all
		// distance-scheme runs; the gob zero value reads back as such.
		cpScheme = schemeDistance.String()
	}
	if cpScheme != upd.kind.String() || cp.SchemeParam != upd.param {
		return fmt.Errorf("sim: checkpoint is for update scheme %s(%d), run wants %s(%d)",
			cpScheme, cp.SchemeParam, upd.kind, upd.param)
	}
	if engineClass(cp.Engine) != engineClass(cfg.Engine) {
		return fmt.Errorf("sim: %s-engine checkpoint cannot resume on engine %s",
			engineClass(cp.Engine), cfg.Engine)
	}
	if cp.Shards != shards || len(cp.Shard) != cp.Shards {
		return fmt.Errorf("sim: checkpoint partitions %d terminals into %d shards (%d recorded), run wants %d",
			cfg.Terminals, cp.Shards, len(cp.Shard), shards)
	}
	if cp.Slot <= 0 || cp.Slot >= slots {
		return fmt.Errorf("sim: checkpoint boundary %d outside (0, %d)", cp.Slot, slots)
	}
	for s := range cp.Shard {
		sc := &cp.Shard[s]
		lo := s * cfg.Terminals / shards
		hi := (s + 1) * cfg.Terminals / shards
		if sc.Lo != lo || sc.Hi != hi || sc.Slot != cp.Slot {
			return fmt.Errorf("sim: checkpoint shard %d covers [%d,%d) at slot %d, run wants [%d,%d) at %d",
				s, sc.Lo, sc.Hi, sc.Slot, lo, hi, cp.Slot)
		}
		width := hi - lo
		if len(sc.Terms) != width || len(sc.HLR) != width || len(sc.Metrics.PerTerminal) != width {
			return fmt.Errorf("sim: checkpoint shard %d holds %d terminals, run wants %d", s, len(sc.Terms), width)
		}
		if engineClass(cp.Engine) == "des" {
			if sc.DES == nil {
				return fmt.Errorf("sim: checkpoint shard %d missing reference-engine scheduler state", s)
			}
		} else if len(sc.Scheds) != width || len(sc.PreSweep) != width ||
			len(sc.CurD) != width || len(sc.RunLen) != width {
			return fmt.Errorf("sim: checkpoint shard %d missing batch-engine scheduler state", s)
		}
	}
	return nil
}

// validate rejects unusable configurations; cfg must already carry its
// defaults.
func validate(cfg Config, slots int64) error {
	if err := cfg.Core.Validate(); err != nil {
		return err
	}
	if slots <= 0 {
		return errors.New("sim: slots must be positive")
	}
	if err := cfg.Faults.validate(); err != nil {
		return err
	}
	upd, err := resolveScheme(cfg.Scheme)
	if err != nil {
		return err
	}
	if cfg.Dynamic && upd.kind != schemeDistance {
		// The dynamic mechanism's decision variable is the distance
		// threshold; re-optimizing it under a trigger that ignores
		// distance would be meaningless.
		return fmt.Errorf("sim: the dynamic per-user mechanism requires the distance update scheme (got %s)", upd.kind)
	}
	if cfg.Threshold > cfg.MaxThreshold {
		return fmt.Errorf("sim: threshold %d exceeds MaxThreshold %d", cfg.Threshold, cfg.MaxThreshold)
	}
	if cfg.Telemetry.SnapshotEvery < 0 {
		return fmt.Errorf("sim: negative telemetry snapshot cadence %d", cfg.Telemetry.SnapshotEvery)
	}
	switch cfg.Engine {
	case EngineFast, EngineDES, EngineCols:
	default:
		return fmt.Errorf("sim: unknown engine %d", int(cfg.Engine))
	}
	// A full paging exchange — the nominal plan (at most MaxThreshold+2
	// cycles) plus every recovery round — must finish inside the arrival
	// slot, or paging would overlap the next movement opportunity.
	if 2*(cfg.MaxThreshold+2+cfg.Faults.PageRetries) >= SlotTicks {
		return fmt.Errorf("sim: MaxThreshold %d with %d paging retries needs more polling ticks than a slot holds (%d)",
			cfg.MaxThreshold, cfg.Faults.PageRetries, SlotTicks)
	}
	return nil
}

// startThreshold resolves the static threshold every terminal starts with;
// negative Config.Threshold means network-optimized. It runs once before
// sharding so every shard starts from the same d.
func startThreshold(cfg Config) (int, error) {
	if cfg.Threshold >= 0 {
		return cfg.Threshold, nil
	}
	res, err := core.Scan(cfg.Core, cfg.MaxThreshold)
	if err != nil {
		return 0, err
	}
	return res.Best.Threshold, nil
}

// newShardNetwork builds the starting state the engines share for
// terminals [lo, hi) of the global population: the network (HLR
// provisioned with every terminal's initial registration, shard-sized
// metrics) and the terminal population itself, laid out contiguously so
// the engines' sweeps walk memory in order. The per-terminal generators
// live in one flat returned slice — terminal i's rng points at element
// i — so engines that walk generator state columnarly (runShardCols)
// share the identical state the terminal structs use, and no engine
// pays a heap allocation per terminal.
func newShardNetwork(cfg Config, slots int64, lo, hi, startD int, loc locator) (*network, []terminal, []stats.RNG, error) {
	upd, err := resolveScheme(cfg.Scheme)
	if err != nil {
		return nil, nil, nil, err
	}
	n := &network{
		cfg:   cfg,
		loc:   loc,
		upd:   upd,
		first: uint32(lo),
		hlr:   make([]hlrRecord, hi-lo),
		lastD: -1, // 0 is a valid threshold; the plan memo starts empty
		metrics: &Metrics{
			Slots:          slots,
			Terminals:      hi - lo,
			ThresholdSlots: make(map[int]int64),
			PerTerminal:    make([]TerminalStats, hi-lo),
			DelayHist:      telemetry.NewHist(delayHistWidth, delayHistBuckets),
			RecoveryHist:   telemetry.NewHist(recoveryHistWidth, recoveryHistBuckets),
			costs:          cfg.Core.Costs,
		},
		parts: make(map[int]partInfo),
	}

	terms := make([]terminal, hi-lo)
	rngs := make([]stats.RNG, hi-lo)
	for g := lo; g < hi; g++ {
		p := cfg.Core.Params
		if cfg.PerTerminal != nil {
			p = cfg.PerTerminal(g)
			if err := p.Validate(); err != nil {
				return nil, nil, nil, fmt.Errorf("sim: terminal %d: %w", g, err)
			}
		}
		t := &terms[g-lo]
		t.id = uint32(g)
		t.params = p
		rngs[g-lo].SeedSubStream(cfg.Seed, uint64(g))
		t.rng = &rngs[g-lo]
		t.est = estimator{alpha: cfg.EWMAAlpha}
		t.threshold = startD
		if p.Q > 0 {
			t.moveProb = p.Q / (1 - p.C)
		}
		n.metrics.PerTerminal[g-lo].ID = g
		// Initial registration (subscription-time provisioning, not a
		// mechanism update, so it is implicitly acknowledged).
		n.register(t.makeUpdate())
		t.ackedSeq = t.seq
	}
	return n, terms, rngs, nil
}

// finishShard folds the per-terminal tail metrics (mean cost rate, final
// threshold) and recomputes the shard's aggregates; both engines end here.
func finishShard(n *network, terms []terminal, slots int64) *Metrics {
	m := n.metrics
	for i := range m.PerTerminal {
		ts := &m.PerTerminal[i]
		ts.TotalCost = (float64(ts.Updates)*n.cfg.Core.Costs.Update +
			float64(ts.PolledCells)*n.cfg.Core.Costs.Poll) / float64(slots)
		ts.FinalThreshold = terms[i].threshold
	}
	m.recompute()
	return m
}

// runShard simulates terminals [r.lo, r.hi) of the global population on
// one discrete-event engine — the reference EngineDES implementation the
// fast path is differentially tested against. Its Metrics carry only
// this shard's share: Terminals is hi−lo, PerTerminal holds records for
// ids lo..hi−1 and Events counts sub-slot events only (the caller adds
// the slot sweeps once after merging). r.shard is the shard's index,
// used only for telemetry (progress reporting). Cancelling ctx stops the
// run at the next slot boundary (in-flight sub-slot events still drain)
// and returns ctx.Err().
//
// Checkpoints are captured at the top of a boundary slot's sweep event —
// after the telemetry frame, before the sweeps — so boundary B means "B
// slots completed" and the checkpoint embeds the boundary frame. The
// scheduler state is stored as if the boundary sweep event had not yet
// been dispatched (Ran excludes it, SlotEventSeq preserves its insertion
// stamp): resume re-creates that event with its original (time, stamp)
// key via InsertAt, so it keeps losing exactly the ties it lost against
// any retransmission timer due on the boundary, and the dispatch itself
// restores the event count. Everything downstream of the boundary then
// replays identically to the uninterrupted run.
func runShard(ctx context.Context, r shardRun) (shardResult, error) {
	cfg, slots := r.cfg, r.slots
	n, terms, rngs, err := newShardNetwork(cfg, slots, r.lo, r.hi, r.startD, r.loc)
	if err != nil {
		return shardResult{}, err
	}

	var sched des.Scheduler
	n.sched = &sched

	// Telemetry: frames capture the shard's cumulative state at slot
	// boundaries. Capturing at the top of the slot event — before the
	// sweep — covers exactly the events dispatched before the boundary
	// tick, an ordering that is identical for every shard count because
	// each terminal's events interleave with its own slot sweeps the same
	// way on any engine. The Events field subtracts this shard's slot
	// sweeps (slotEvents); the merge adds them back once globally.
	every := cfg.Telemetry.SnapshotEvery
	prog := cfg.Telemetry.Progress
	var frames []telemetry.ShardFrame
	capture := func(boundary int64, slotEvents uint64) {
		frames = append(frames, n.snapshot(boundary, sched.Processed()-slotEvents))
	}

	// One event per slot sweeps the shard's terminals: movement/update and
	// call arrivals; paging cycles run as sub-slot events. A cancelled
	// context stops the chain by not scheduling the next sweep: the
	// scheduler then drains only the bounded tail of sub-slot events
	// already queued, so the shard returns promptly.
	done := ctx.Done()
	cancelled := false
	var slot func()
	start := int64(0)
	cur := int64(0)
	// slotStamp is the insertion stamp of the currently-running slot
	// event, recorded when it was scheduled (checkpoints persist it as
	// SlotEventSeq).
	var slotStamp uint64
	slot = func() {
		if done != nil {
			select {
			case <-done:
				cancelled = true
				return
			default:
			}
		}
		if every > 0 && cur > start && cur%every == 0 {
			// The current slot event is already counted in Processed.
			// A resumed run skips the boundary it resumed at: that frame
			// was captured before the checkpoint and restored with it.
			capture(cur, uint64(cur)+1)
		}
		if r.every > 0 && cur > start && cur%r.every == 0 {
			sc := captureShardCore(n, terms, rngs, cur, r.lo, r.hi, frames)
			now, seq, ran, pending := sched.Checkpoint()
			sc.DES = &DESCheckpoint{
				Sched:        SchedCheckpoint{Now: uint64(now), Seq: seq, Ran: ran - 1, Pending: pending},
				SlotEventSeq: slotStamp,
			}
			r.emit(sc)
		}
		for i := range terms {
			t := &terms[i]
			n.metrics.ThresholdSlots[t.threshold]++
			n.sweepSlot(t, cur)
		}
		if cfg.Dynamic && cur > 0 && cur%cfg.ReoptimizeEvery == 0 {
			for i := range terms {
				n.reoptimize(&terms[i])
			}
		}
		cur++
		prog.Set(r.shard, cur, cur*int64(len(terms)), sched.Processed())
		if cur < slots {
			slotStamp = sched.SeqMark()
			sched.After(SlotTicks, slot)
		}
	}
	if r.resume != nil {
		if err := restoreShardCore(n, terms, rngs, r.resume); err != nil {
			return shardResult{}, err
		}
		frames = restoreFrames(r.resume.Frames)
		start = r.resume.Slot
		cur = start
		ds := r.resume.DES
		sched.Restore(des.Time(ds.Sched.Now), ds.Sched.Seq, ds.Sched.Ran, ds.Sched.Pending,
			ackBind(n, terms))
		slotStamp = ds.SlotEventSeq
		sched.InsertAt(des.Time(start)*SlotTicks, slotStamp, slot)
	} else {
		slotStamp = sched.SeqMark()
		sched.At(0, slot)
	}
	sched.Drain()
	if cancelled {
		return shardResult{}, ctx.Err()
	}
	if every > 0 {
		// The final frame always lands on the run boundary, covering the
		// whole run including any events drained after the last slot.
		capture(slots, uint64(slots))
	}
	prog.Set(r.shard, slots, slots*int64(len(terms)), sched.Processed())

	n.metrics.Events = sched.Processed() - uint64(slots)
	return shardResult{metrics: finishShard(n, terms, slots), frames: frames}, nil
}

// snapshot captures one telemetry frame of the shard's cumulative state:
// the counters plus a copy of the per-terminal delay/recovery accumulator
// states, which telemetry.MergeFrames re-folds in global id order so the
// merged series is independent of the shard count. events must already
// exclude this shard's slot sweeps.
func (n *network) snapshot(boundary int64, events uint64) telemetry.ShardFrame {
	m := n.metrics
	sf := telemetry.ShardFrame{
		Slot:  boundary,
		First: int(n.first),
		Counters: telemetry.Counters{
			Updates:         m.Updates,
			LostUpdates:     m.LostUpdates,
			Retransmissions: m.Retransmissions,
			Calls:           m.Calls,
			PolledCells:     m.PolledCells,
			DroppedCalls:    m.DroppedCalls,
			RePolls:         m.RePolls,
			Events:          events,
		},
		Delay:    make([]stats.Accumulator, len(m.PerTerminal)),
		Recovery: make([]stats.Accumulator, len(m.PerTerminal)),
	}
	for i := range m.PerTerminal {
		sf.Delay[i] = m.PerTerminal[i].Delay
		sf.Recovery[i] = m.PerTerminal[i].Recovery
	}
	return sf
}
