package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/chain"
)

// cancelConfig is a run big enough that it cannot finish before the test
// cancels it: a wide population with a slot count in the millions. The
// population exceeds the columnar engine's cohort width after sharding,
// so its shards hold more than one cohort.
func cancelConfig(engine Engine) Config {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 2)
	cfg.Terminals = 10_000
	cfg.Engine = engine
	return cfg
}

// TestRunShardedCtxCancelPrompt checks the service-layer contract every
// engine must honour: cancelling the context of an in-flight run makes
// RunShardedCtx return ctx.Err() promptly — well inside the 2-second
// bound pcnserve promises for job cancellation — instead of running to
// completion. For the columnar engine the population spans multiple
// cohorts, so cancellation must be observed mid-batch, without waiting
// for the cohort walk to finish the slot batch.
func TestRunShardedCtxCancelPrompt(t *testing.T) {
	for _, engine := range []Engine{EngineFast, EngineDES, EngineCols} {
		t.Run(engine.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type res struct {
				m   *Metrics
				err error
			}
			ch := make(chan res, 1)
			go func() {
				m, err := RunShardedCtx(ctx, cancelConfig(engine), 2_000_000, 2)
				ch <- res{m, err}
			}()
			time.Sleep(50 * time.Millisecond)
			cancel()
			select {
			case r := <-ch:
				if !errors.Is(r.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", r.err)
				}
				if r.m != nil {
					t.Fatal("cancelled run returned metrics")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancelled run did not return within 2s")
			}
		})
	}
}

// TestRunShardedCtxDeadline checks that an already-expired deadline stops
// the run before any shard work happens.
func TestRunShardedCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunShardedCtx(ctx, cancelConfig(EngineFast), 1_000, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunShardedCtxBackgroundIdentical checks that the context plumbing
// never perturbs a run that completes: RunShardedCtx with a cancellable
// (but never cancelled) context is bit-identical to RunSharded.
func TestRunShardedCtxBackgroundIdentical(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.15, 0.03, 2, 2)
	cfg.Terminals = 40
	cfg.Telemetry.SnapshotEvery = 500
	want, err := RunSharded(cfg, 2_000, 4)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := RunShardedCtx(ctx, cfg, 2_000, 4)
	if err != nil {
		t.Fatalf("RunShardedCtx: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunShardedCtx with a live context diverged from RunSharded")
	}
}
