package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/chain"
)

// TestSchemeByName pins the scheme registry's resolution behaviour: the
// valid (name, param) combinations, the default spelling, and every
// rejection — each error naming the offending value and, for unknown
// names, enumerating the valid ones so CLI and API users can self-serve.
func TestSchemeByName(t *testing.T) {
	for _, tc := range []struct {
		name  string
		param int64
		want  string // resolved scheme name; "" means an error
		err   string
	}{
		{"", 0, "distance", ""},
		{"distance", 0, "distance", ""},
		{"timer", 100, "timer", ""},
		{"movement", 4, "movement", ""},
		{"distance", 3, "", "takes no parameter"},
		{"", 3, "", "takes no parameter"},
		{"timer", 0, "", "timer scheme period 0 slots, want positive"},
		{"timer", -5, "", "timer scheme period -5 slots, want positive"},
		{"movement", 0, "", "movement scheme count 0 crossings, want positive"},
		{"movement", -1, "", "movement scheme count -1 crossings, want positive"},
		{"bogus", 0, "", `unknown update scheme "bogus" (valid schemes: distance, timer, movement)`},
		{"Distance", 0, "", "unknown update scheme"}, // names are case-sensitive
	} {
		got, err := SchemeByName(tc.name, tc.param)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("SchemeByName(%q, %d) err = %v, want containing %q", tc.name, tc.param, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("SchemeByName(%q, %d): %v", tc.name, tc.param, err)
			continue
		}
		if got.Name() != tc.want || got.Param() != tc.param {
			t.Errorf("SchemeByName(%q, %d) = %s(%d), want %s(%d)",
				tc.name, tc.param, got.Name(), got.Param(), tc.want, tc.param)
		}
	}
}

// TestSchemeNamesMatchKinds checks the registry list, the public Name
// methods and the engines' internal dispatch tags all agree on spelling,
// since error messages and checkpoint identity are built from both.
func TestSchemeNamesMatchKinds(t *testing.T) {
	names := SchemeNames()
	kinds := []schemeKind{schemeDistance, schemeTimer, schemeMovement}
	if len(names) != len(kinds) {
		t.Fatalf("%d names for %d kinds", len(names), len(kinds))
	}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d spells %q, registry says %q", i, k.String(), names[i])
		}
	}
}

// TestValidateSchemeConstraints covers start-of-run rejection: an
// invalid scheme parameter smuggled in as a literal, and the dynamic
// mechanism combined with a trigger it cannot re-optimize.
func TestValidateSchemeConstraints(t *testing.T) {
	run := func(mutate func(*Config)) error {
		cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 2)
		mutate(&cfg)
		_, err := Run(cfg, 1_000)
		return err
	}
	if err := run(func(c *Config) { c.Scheme = TimerScheme{Every: 0} }); err == nil ||
		!strings.Contains(err.Error(), "timer scheme period 0") {
		t.Errorf("zero timer period accepted: %v", err)
	}
	if err := run(func(c *Config) { c.Scheme = MovementScheme{Count: -2} }); err == nil ||
		!strings.Contains(err.Error(), "movement scheme count -2") {
		t.Errorf("negative movement count accepted: %v", err)
	}
	err := run(func(c *Config) {
		c.Dynamic = true
		c.Scheme = TimerScheme{Every: 50}
	})
	if err == nil || !strings.Contains(err.Error(), "dynamic per-user mechanism requires the distance update scheme (got timer)") {
		t.Errorf("dynamic+timer accepted: %v", err)
	}
	// The distance scheme (explicit or nil) stays dynamic-compatible.
	if err := run(func(c *Config) { c.Dynamic = true; c.Scheme = DistanceScheme{} }); err != nil {
		t.Errorf("dynamic+distance rejected: %v", err)
	}
}

// TestPerTerminalInvalidRejected pins the heterogeneous-fleet validation
// fix: a PerTerminal callback producing invalid parameters for one
// terminal must fail the run up front with an error naming that
// terminal, not silently simulate garbage (or panic mid-run).
func TestPerTerminalInvalidRejected(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 2)
	cfg.Terminals = 8
	cfg.PerTerminal = func(i int) chain.Params {
		if i == 5 {
			return chain.Params{Q: 0.9, C: 0.4} // q + c > 1
		}
		return chain.Params{Q: 0.1, C: 0.02}
	}
	_, err := RunSharded(cfg, 1_000, 3)
	if err == nil {
		t.Fatal("invalid per-terminal parameters accepted")
	}
	if !strings.Contains(err.Error(), "terminal 5") {
		t.Errorf("error %q does not name the offending terminal", err)
	}
}

// TestResumeSchemeIdentity checks checkpoints carry the update scheme:
// resuming under a different scheme or parameter is rejected, and a
// legacy checkpoint with no scheme field (pre-scheme gob payloads decode
// it as "") folds to distance.
func TestResumeSchemeIdentity(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.15, 0.03, 2, 2)
	cfg.Terminals = 4
	cfg.Scheme = TimerScheme{Every: 60}
	const slots = 2_000

	var cp *Checkpoint
	if _, err := RunShardedOpts(context.Background(), cfg, slots, 2, RunOpts{
		CheckpointEvery: 1_000,
		CheckpointSink:  func(c *Checkpoint) { cp = c },
	}); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}

	resume := func(scheme UpdateScheme, c *Checkpoint) error {
		rcfg := cfg
		rcfg.Scheme = scheme
		_, err := RunShardedOpts(context.Background(), rcfg, slots, 2, RunOpts{Resume: c})
		return err
	}

	if err := resume(TimerScheme{Every: 60}, cp); err != nil {
		t.Errorf("same-scheme resume failed: %v", err)
	}
	if err := resume(TimerScheme{Every: 61}, cp); err == nil ||
		!strings.Contains(err.Error(), "checkpoint is for update scheme timer(60), run wants timer(61)") {
		t.Errorf("parameter drift accepted: %v", err)
	}
	if err := resume(MovementScheme{Count: 60}, cp); err == nil ||
		!strings.Contains(err.Error(), "run wants movement(60)") {
		t.Errorf("scheme drift accepted: %v", err)
	}

	// Legacy compatibility: distance checkpoints written before the
	// scheme field decode with Scheme == "", which must read as distance.
	dcfg := cfg
	dcfg.Scheme = nil
	var dcp *Checkpoint
	if _, err := RunShardedOpts(context.Background(), dcfg, slots, 2, RunOpts{
		CheckpointEvery: 1_000,
		CheckpointSink:  func(c *Checkpoint) { dcp = c },
	}); err != nil {
		t.Fatal(err)
	}
	dcp.Scheme = ""
	rcfg := dcfg
	want, err := RunSharded(dcfg, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Scheme = DistanceScheme{}
	got, err := RunShardedOpts(context.Background(), rcfg, slots, 2, RunOpts{Resume: dcp})
	if err != nil {
		t.Fatalf("legacy scheme-less checkpoint rejected: %v", err)
	}
	if got.TotalCost != want.TotalCost || got.Updates != want.Updates {
		t.Errorf("legacy resume diverged: %v/%d vs %v/%d",
			got.TotalCost, got.Updates, want.TotalCost, want.Updates)
	}
}
