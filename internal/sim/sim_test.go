package sim

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/wire"
)

func baseConfig(model chain.Model, q, c float64, m, d int) Config {
	return Config{
		Core: core.Config{
			Model:    model,
			Params:   chain.Params{Q: q, C: c},
			Costs:    core.Costs{Update: 100, Poll: 10},
			MaxDelay: m,
		},
		Terminals: 1,
		Threshold: d,
		Seed:      1,
	}
}

func TestRunMatchesAnalysis(t *testing.T) {
	for _, tc := range []struct {
		model chain.Model
		d     int
		m     int
	}{
		{chain.OneDim, 3, 2},
		{chain.TwoDimExact, 2, 1},
		{chain.TwoDimExact, 4, 3},
	} {
		cfg := baseConfig(tc.model, 0.05, 0.01, tc.m, tc.d)
		want, err := cfg.Core.Evaluate(tc.d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(cfg, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if got.NotFound != 0 {
			t.Fatalf("%v d=%d: %d paging failures", tc.model, tc.d, got.NotFound)
		}
		if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
			t.Errorf("%v d=%d m=%d: simulated %v vs analytical %v",
				tc.model, tc.d, tc.m, got.TotalCost, want.Total)
		}
		if math.Abs(got.Delay.Mean()-want.ExpectedDelay) > 0.05 {
			t.Errorf("%v d=%d: delay %v vs analytical %v",
				tc.model, tc.d, got.Delay.Mean(), want.ExpectedDelay)
		}
		// The paper's hard guarantee: no call ever takes more than m
		// polling cycles (the mean-based checks above cannot see a rare
		// violation; the maximum can).
		if got.Delay.Max() > float64(tc.m) {
			t.Errorf("%v d=%d m=%d: worst observed delay %v cycles breaks the bound",
				tc.model, tc.d, tc.m, got.Delay.Max())
		}
		if got.Delay.Min() < 1 {
			t.Errorf("%v d=%d: delay below one cycle: %v", tc.model, tc.d, got.Delay.Min())
		}
	}
}

func TestRunMultipleTerminalsAggregates(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	cfg.Terminals = 20
	want, err := cfg.Core.Evaluate(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Terminals != 20 {
		t.Fatalf("Terminals = %d", got.Terminals)
	}
	if got.NotFound != 0 {
		t.Fatalf("%d paging failures", got.NotFound)
	}
	// 20 terminals × 100k slots gives 2M samples: per-terminal averages
	// should be close to the analytical values.
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("per-terminal cost %v vs analytical %v", got.TotalCost, want.Total)
	}
}

func TestRunNetworkOptimizedThreshold(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.05, 0.01, 3, -1)
	res, err := core.Scan(cfg.Core, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// All slots must have been spent at the scan optimum.
	if got.ThresholdSlots[res.Best.Threshold] != 50_000 {
		t.Errorf("threshold histogram %v, want all at %d", got.ThresholdSlots, res.Best.Threshold)
	}
}

func TestRunByteAccounting(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	got, err := Run(cfg, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Updates == 0 || got.Calls == 0 {
		t.Fatal("no traffic simulated")
	}
	if got.UpdateBytes != got.Updates*wire.UpdateSize {
		t.Errorf("update bytes %d, want %d", got.UpdateBytes, got.Updates*wire.UpdateSize)
	}
	if got.PollBytes != got.PolledCells*wire.PollSize {
		t.Errorf("poll bytes %d, want %d", got.PollBytes, got.PolledCells*wire.PollSize)
	}
	if got.ReplyBytes != got.Calls*wire.ReplySize {
		t.Errorf("reply bytes %d, want %d (calls=%d)", got.ReplyBytes, got.Calls*wire.ReplySize, got.Calls)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.03, 2, 3)
	a, err := Run(cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.PolledCells != b.PolledCells || a.Calls != b.Calls {
		t.Error("same seed diverged")
	}
	cfg.Seed = 2
	c, err := Run(cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates == c.Updates && a.PolledCells == c.PolledCells {
		t.Error("different seeds identical (suspicious)")
	}
}

func TestRunDynamicConvergesToOptimal(t *testing.T) {
	// A terminal whose true parameters differ from the network default:
	// the dynamic scheme must steer its threshold toward the optimum for
	// its true parameters.
	trueParams := chain.Params{Q: 0.3, C: 0.005}
	cfg := baseConfig(chain.TwoDimExact, 0.05, 0.05, 2, 1) // wrong default
	cfg.Dynamic = true
	cfg.PerTerminal = func(int) chain.Params { return trueParams }
	cfg.ReoptimizeEvery = 1000
	cfg.EWMAAlpha = 0.01

	optCfg := cfg.Core
	optCfg.Params = trueParams
	want, err := core.Scan(optCfg, 50)
	if err != nil {
		t.Fatal(err)
	}

	got, err := Run(cfg, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.NotFound != 0 {
		t.Fatalf("%d paging failures under dynamic thresholds", got.NotFound)
	}
	// The most-occupied threshold over the run's second half should be
	// within 1 ring of the true optimum; check the histogram's mode.
	var mode int
	var best int64
	for d, n := range got.ThresholdSlots {
		if n > best {
			mode, best = d, n
		}
	}
	diff := mode - want.Best.Threshold
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Errorf("dynamic threshold mode %d, true optimum %d (hist %v)",
			mode, want.Best.Threshold, got.ThresholdSlots)
	}
}

func TestRunHeterogeneousPopulation(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.05, 0.01, 2, 2)
	cfg.Terminals = 10
	cfg.PerTerminal = func(i int) chain.Params {
		return chain.Params{Q: 0.02 + 0.03*float64(i%5), C: 0.01}
	}
	got, err := Run(cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.NotFound != 0 {
		t.Errorf("%d paging failures", got.NotFound)
	}
	if got.Calls == 0 || got.Updates == 0 {
		t.Error("no traffic")
	}
}

func TestRunErrors(t *testing.T) {
	good := baseConfig(chain.OneDim, 0.1, 0.1, 1, 1)
	if _, err := Run(good, 0); err == nil {
		t.Error("zero slots accepted")
	}
	bad := good
	bad.Core.Params = chain.Params{Q: 0.9, C: 0.9}
	if _, err := Run(bad, 100); err == nil {
		t.Error("invalid params accepted")
	}
	tooBig := good
	tooBig.Threshold = 100 // above default MaxThreshold 50
	if _, err := Run(tooBig, 100); err == nil {
		t.Error("threshold above MaxThreshold accepted")
	}
	badTerm := good
	badTerm.PerTerminal = func(int) chain.Params { return chain.Params{Q: 2} }
	if _, err := Run(badTerm, 100); err == nil {
		t.Error("invalid per-terminal params accepted")
	}
	hugeM := good
	hugeM.MaxThreshold = SlotTicks
	if _, err := Run(hugeM, 100); err == nil {
		t.Error("MaxThreshold exceeding slot capacity accepted")
	}
}

func TestEstimatorTracksTruth(t *testing.T) {
	e := estimator{alpha: 0.01}
	rngQ, rngC := 0.23, 0.07
	r := newTestRNG()
	for i := 0; i < 200_000; i++ {
		e.observe(r.Bernoulli(rngQ), r.Bernoulli(rngC))
	}
	p := e.params()
	if math.Abs(p.Q-rngQ) > 0.02 {
		t.Errorf("q estimate %v, truth %v", p.Q, rngQ)
	}
	if math.Abs(p.C-rngC) > 0.02 {
		t.Errorf("c estimate %v, truth %v", p.C, rngC)
	}
}

func TestEstimatorClampsInvalid(t *testing.T) {
	e := estimator{alpha: 0.5, q: 0.8, c: 0.8}
	p := e.params()
	if err := p.Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
	e = estimator{alpha: 0.5, q: -0.1, c: -0.1}
	p = e.params()
	if p.Q != 0 || p.C != 0 {
		t.Errorf("negative estimates not clamped: %+v", p)
	}
}
