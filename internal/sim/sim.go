// Package sim is a discrete-event simulator of a small personal
// communication network running the paper's location-management mechanism
// end to end: mobile terminals random-walk over the cell grid and send
// binary location-update messages when they cross their threshold distance;
// the fixed network keeps an HLR of (center cell, threshold) records and,
// on each incoming call, pages the residing area subarea by subarea with
// per-cell poll messages and waits one polling cycle per subarea for a
// reply.
//
// The paper evaluates this mechanism purely analytically; this package is
// the system the analysis describes. Its per-slot signalling costs converge
// to the analytical C_T (asserted in tests), and it additionally measures
// what the analysis cannot: wire bytes, per-call delay distributions, and
// the behaviour of the dynamic per-user scheme the paper's conclusions
// propose, in which each terminal estimates its own movement and call
// probabilities online (EWMA) and periodically re-optimizes its threshold
// with the cheap near-optimal closed form.
package sim

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SlotTicks is the number of scheduler ticks per time slot. Polling cycles
// occupy ticks inside the slot of the call's arrival, so the whole paging
// exchange completes before the next movement opportunity — matching the
// analytical model's assumption that paging is instantaneous relative to
// mobility.
const SlotTicks = 2048

// Engine selects the simulation engine implementation. All engines
// produce bit-identical Metrics, telemetry series and histograms for every
// configuration — the equivalence contract enforced by
// TestFastPathEquivalence and locman's TestEngineEquivalence — so the
// choice is purely about speed.
type Engine int

const (
	// EngineFast is the slot-batched fast path (the default): terminals
	// advance slot by slot in a tight terminal-major loop that draws
	// movement/call outcomes straight from their RNG streams, touching
	// event-queue machinery only for the slots where paging, ack/retry or
	// fault handling actually fires. See runShardFast.
	EngineFast Engine = iota
	// EngineDES is the reference event-driven engine: one discrete-event
	// scheduler per shard sweeps the whole population every slot. It is
	// the specification the other engines are differentially tested
	// against.
	EngineDES
	// EngineCols is the columnar cohort engine: per-terminal hot state
	// lives in flat parallel slices walked in cache-sized cohorts, and
	// event-free stretches are skipped with exact geometric gap-sampling
	// (stats.EventGap) instead of per-slot draws. See runShardCols.
	EngineCols
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineDES:
		return "des"
	case EngineCols:
		return "cols"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// EngineNames lists the names EngineByName resolves, in resolution
// order; CLI help strings and error messages are built from this single
// list so they can never drift from the parser.
func EngineNames() []string {
	return []string{EngineFast.String(), EngineDES.String(), EngineCols.String()}
}

// EngineByName resolves an engine name, for CLI flags. The error for an
// unknown name enumerates every valid one.
func EngineByName(name string) (Engine, error) {
	for _, e := range []Engine{EngineFast, EngineDES, EngineCols} {
		if name == e.String() {
			return e, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown engine %q (valid engines: %s)",
		name, strings.Join(EngineNames(), ", "))
}

// Config parameterizes a simulation run.
type Config struct {
	// Core carries the mobility model, default per-terminal parameters,
	// unit costs, the paging delay bound and the partitioning scheme.
	Core core.Config
	// Terminals is the population size; 0 means 1.
	Terminals int
	// Threshold is the static update threshold every terminal starts
	// with. Negative means "network-optimized": the optimal threshold for
	// Core's average parameters is computed once with core.Scan — the
	// static network-wide scheme of the paper's conclusions.
	Threshold int
	// Dynamic enables the per-user dynamic scheme: each terminal
	// estimates its q and c online and re-optimizes its threshold every
	// ReoptimizeEvery slots using the near-optimal pipeline.
	Dynamic bool
	// EWMAAlpha is the estimator's smoothing constant; 0 means 0.005.
	EWMAAlpha float64
	// ReoptimizeEvery is the dynamic re-optimization period in slots;
	// 0 means 2000.
	ReoptimizeEvery int64
	// MaxThreshold clamps optimized thresholds; 0 means 50 (the paper:
	// "the optimal distance rarely exceeds 50").
	MaxThreshold int
	// PerTerminal, when non-nil, supplies heterogeneous parameters for
	// terminal i, overriding Core.Params (used by the dynamic scheme
	// examples: the network cannot know individual behaviour a priori).
	PerTerminal func(i int) chain.Params
	// Scheme selects the location-update trigger. nil means
	// DistanceScheme{} — the paper's distance-based mechanism. The
	// dynamic per-user mechanism (Dynamic) requires the distance scheme,
	// whose threshold is its decision variable. See UpdateScheme.
	Scheme UpdateScheme
	// Faults injects signalling-plane failures (update/poll/reply loss,
	// HLR outage windows) and configures the recovery machinery (acked
	// updates with retransmission, recovery paging rounds). The zero
	// value is the paper's perfect signalling plane. See FaultPlan.
	Faults FaultPlan
	// Telemetry switches on the run-telemetry subsystem: periodic
	// snapshot frames of the cumulative counters (Metrics.Snapshots) and
	// live per-shard progress counters. Snapshots take no RNG draws and
	// schedule no events, so they never perturb the simulation; the
	// latency histograms (Metrics.DelayHist, Metrics.RecoveryHist) are
	// always on. The zero value records nothing beyond the final Metrics.
	Telemetry telemetry.Config
	// Seed seeds the simulation's deterministic RNG streams: terminal i
	// draws from stats.SubStream(Seed, i), so its stream depends only on
	// (Seed, i) — never on the population size ordering or the shard
	// partition (see RunSharded).
	Seed uint64
	// Engine selects the simulation engine. The zero value is EngineFast,
	// the slot-batched fast path; EngineDES selects the reference
	// event-driven engine. Both produce bit-identical results.
	Engine Engine
}

func (c Config) withDefaults() Config {
	if c.Terminals <= 0 {
		c.Terminals = 1
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.005
	}
	if c.ReoptimizeEvery == 0 {
		c.ReoptimizeEvery = 2000
	}
	if c.MaxThreshold == 0 {
		c.MaxThreshold = 50
	}
	// A zero AckTimeout/PageRetries means "unset": most callers never
	// touch the recovery knobs. Callers that genuinely want zero say so
	// with the ExplicitZero sentinel, which is folded to a literal zero
	// here so the engines and validation never see the sentinel.
	switch c.Faults.AckTimeout {
	case 0:
		c.Faults.AckTimeout = DefaultAckTimeout
	case ExplicitZero:
		c.Faults.AckTimeout = 0
	}
	switch c.Faults.PageRetries {
	case 0:
		c.Faults.PageRetries = DefaultPageRetries
	case ExplicitZero:
		c.Faults.PageRetries = 0
	}
	return c
}

// locator abstracts cell geometry over the two grids using wire.Cell as a
// universal coordinate (line cells encode as (index, 0)).
type locator interface {
	dist(a, b wire.Cell) int
	move(c wire.Cell, rng *stats.RNG) wire.Cell
}

type hexLocator struct{}

func (hexLocator) dist(a, b wire.Cell) int {
	return grid.Hex{Q: int(a.Q), R: int(a.R)}.Dist(grid.Hex{Q: int(b.Q), R: int(b.R)})
}

func (hexLocator) move(c wire.Cell, rng *stats.RNG) wire.Cell {
	n := grid.Hex{Q: int(c.Q), R: int(c.R)}.Neighbor(rng.Intn(6))
	return wire.Cell{Q: int32(n.Q), R: int32(n.R)}
}

type lineLocator struct{}

func (lineLocator) dist(a, b wire.Cell) int {
	return grid.Line(a.Q).Dist(grid.Line(b.Q))
}

func (lineLocator) move(c wire.Cell, rng *stats.RNG) wire.Cell {
	n := grid.Line(c.Q).Neighbor(rng.Intn(2))
	return wire.Cell{Q: int32(n)}
}

// hlrRecord is the network's view of one terminal.
type hlrRecord struct {
	center    wire.Cell
	seq       uint32
	threshold int
}

// estimator tracks EWMA estimates of a terminal's per-slot movement and
// call probabilities.
type estimator struct {
	alpha float64
	q, c  float64
}

func (e *estimator) observe(moved, called bool) {
	mv, cl := 0.0, 0.0
	if moved {
		mv = 1
	}
	if called {
		cl = 1
	}
	e.q += e.alpha * (mv - e.q)
	e.c += e.alpha * (cl - e.c)
}

// params returns the current estimates clamped to a valid chain.Params.
func (e *estimator) params() chain.Params {
	q, c := e.q, e.c
	if q < 0 {
		q = 0
	}
	if c < 0 {
		c = 0
	}
	if q+c > 1 {
		s := q + c
		q, c = q/s, c/s
	}
	return chain.Params{Q: q, C: c}
}

type terminal struct {
	id     uint32
	pos    wire.Cell
	params chain.Params
	rng    *stats.RNG
	est    estimator
	// center is the terminal's own view of its center cell. It matches
	// the HLR record exactly unless an update message was lost in
	// transit or deferred by an HLR outage (Config.Faults).
	center wire.Cell
	// threshold is the terminal's own view of d; the HLR learns it from
	// update messages.
	threshold int
	seq       uint32
	moveProb  float64 // q/(1−c), cached
	// ackedSeq is the highest update sequence number the HLR has
	// acknowledged (meaningful only with FaultPlan.UpdateRetries > 0).
	ackedSeq uint32
	// retries counts retransmissions spent on the pending update
	// exchange; it resets when a fresh exchange starts.
	retries int
	// desynced marks that the HLR's record has diverged from the
	// terminal's own view (a lost or outage-deferred update);
	// desyncedAt stamps its onset for the recovery-latency metric.
	desynced   bool
	desyncedAt des.Time
	// moves counts cell crossings since the terminal's last contact with
	// the network — the movement scheme's trigger state. Contact (an
	// update transmission or a successfully answered page) resets it, in
	// every scheme, so the counter carries no scheme-specific branches.
	moves int64
	// lastContact is the slot of that last contact — the timer scheme's
	// reference point. The initial registration at slot 0 counts.
	lastContact int64
}

// Run simulates the network for the given number of slots on a single
// discrete-event engine. It is exactly RunSharded(cfg, slots, 1): each
// terminal's RNG stream is addressed by (cfg.Seed, terminal id), so the
// results are bit-identical to any sharded run of the same configuration.
func Run(cfg Config, slots int64) (*Metrics, error) {
	return RunSharded(cfg, slots, 1)
}

func (t *terminal) makeUpdate() wire.Update {
	t.seq++
	return wire.Update{
		Terminal:  t.id,
		Cell:      t.pos,
		Seq:       t.seq,
		Threshold: uint16(t.threshold),
	}
}
