// Package sim is a discrete-event simulator of a small personal
// communication network running the paper's location-management mechanism
// end to end: mobile terminals random-walk over the cell grid and send
// binary location-update messages when they cross their threshold distance;
// the fixed network keeps an HLR of (center cell, threshold) records and,
// on each incoming call, pages the residing area subarea by subarea with
// per-cell poll messages and waits one polling cycle per subarea for a
// reply.
//
// The paper evaluates this mechanism purely analytically; this package is
// the system the analysis describes. Its per-slot signalling costs converge
// to the analytical C_T (asserted in tests), and it additionally measures
// what the analysis cannot: wire bytes, per-call delay distributions, and
// the behaviour of the dynamic per-user scheme the paper's conclusions
// propose, in which each terminal estimates its own movement and call
// probabilities online (EWMA) and periodically re-optimizes its threshold
// with the cheap near-optimal closed form.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/grid"
	"repro/internal/stats"
	"repro/internal/wire"
)

// SlotTicks is the number of scheduler ticks per time slot. Polling cycles
// occupy ticks inside the slot of the call's arrival, so the whole paging
// exchange completes before the next movement opportunity — matching the
// analytical model's assumption that paging is instantaneous relative to
// mobility.
const SlotTicks = 2048

// Config parameterizes a simulation run.
type Config struct {
	// Core carries the mobility model, default per-terminal parameters,
	// unit costs, the paging delay bound and the partitioning scheme.
	Core core.Config
	// Terminals is the population size; 0 means 1.
	Terminals int
	// Threshold is the static update threshold every terminal starts
	// with. Negative means "network-optimized": the optimal threshold for
	// Core's average parameters is computed once with core.Scan — the
	// static network-wide scheme of the paper's conclusions.
	Threshold int
	// Dynamic enables the per-user dynamic scheme: each terminal
	// estimates its q and c online and re-optimizes its threshold every
	// ReoptimizeEvery slots using the near-optimal pipeline.
	Dynamic bool
	// EWMAAlpha is the estimator's smoothing constant; 0 means 0.005.
	EWMAAlpha float64
	// ReoptimizeEvery is the dynamic re-optimization period in slots;
	// 0 means 2000.
	ReoptimizeEvery int64
	// MaxThreshold clamps optimized thresholds; 0 means 50 (the paper:
	// "the optimal distance rarely exceeds 50").
	MaxThreshold int
	// PerTerminal, when non-nil, supplies heterogeneous parameters for
	// terminal i, overriding Core.Params (used by the dynamic scheme
	// examples: the network cannot know individual behaviour a priori).
	PerTerminal func(i int) chain.Params
	// UpdateLossProb injects signalling failures: each location-update
	// message is lost in transit with this probability. The terminal
	// (unaware — updates are unacknowledged datagrams) re-centers its own
	// residing area anyway, so the HLR's view drifts until the next
	// successful update or page. Paging that misses the nominal residing
	// area falls back to an expanding ring search, which always succeeds
	// but costs extra cells and cycles — quantifying the mechanism's
	// sensitivity to update loss, something the paper's analysis cannot.
	UpdateLossProb float64
	// Seed seeds the simulation's deterministic RNG tree.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Terminals <= 0 {
		c.Terminals = 1
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.005
	}
	if c.ReoptimizeEvery == 0 {
		c.ReoptimizeEvery = 2000
	}
	if c.MaxThreshold == 0 {
		c.MaxThreshold = 50
	}
	return c
}

// Metrics aggregates a run's measurements.
type Metrics struct {
	// Slots and Terminals echo the run shape.
	Slots     int64
	Terminals int
	// Updates, Calls and PolledCells count mechanism operations.
	Updates, Calls, PolledCells int64
	// UpdateBytes, PollBytes and ReplyBytes count signalling bytes on the
	// wire per message class.
	UpdateBytes, PollBytes, ReplyBytes int64
	// Delay is the per-call paging delay in polling cycles.
	Delay stats.Accumulator
	// UpdateCost, PagingCost and TotalCost are per-slot per-terminal
	// averages in the paper's U/V units, comparable to core.Breakdown.
	UpdateCost, PagingCost, TotalCost float64
	// NotFound counts paging failures. The distance-update invariant
	// guarantees the terminal is inside its residing area, so any nonzero
	// value indicates a mechanism bug (lossy-update misses are counted as
	// FallbackCalls instead and always recover).
	NotFound int64
	// LostUpdates counts update messages dropped by the injected
	// signalling loss (Config.UpdateLossProb).
	LostUpdates int64
	// FallbackCalls counts calls whose nominal residing-area plan missed
	// (possible only under update loss) and were resolved by the
	// expanding-ring fallback search.
	FallbackCalls int64
	// ThresholdSlots[d] counts terminal-slots spent operating at
	// threshold d (interesting under Dynamic).
	ThresholdSlots map[int]int64
	// Events is the number of scheduler events dispatched.
	Events uint64
	// PerTerminal holds per-terminal breakdowns, indexed by terminal id.
	PerTerminal []TerminalStats
}

// TerminalStats is one terminal's share of the run.
type TerminalStats struct {
	// Updates, Calls and PolledCells count this terminal's operations.
	Updates, Calls, PolledCells int64
	// TotalCost is the terminal's per-slot average cost in U/V units.
	TotalCost float64
	// FinalThreshold is the threshold in effect when the run ended.
	FinalThreshold int
}

// locator abstracts cell geometry over the two grids using wire.Cell as a
// universal coordinate (line cells encode as (index, 0)).
type locator interface {
	dist(a, b wire.Cell) int
	move(c wire.Cell, rng *stats.RNG) wire.Cell
}

type hexLocator struct{}

func (hexLocator) dist(a, b wire.Cell) int {
	return grid.Hex{Q: int(a.Q), R: int(a.R)}.Dist(grid.Hex{Q: int(b.Q), R: int(b.R)})
}

func (hexLocator) move(c wire.Cell, rng *stats.RNG) wire.Cell {
	n := grid.Hex{Q: int(c.Q), R: int(c.R)}.Neighbor(rng.Intn(6))
	return wire.Cell{Q: int32(n.Q), R: int32(n.R)}
}

type lineLocator struct{}

func (lineLocator) dist(a, b wire.Cell) int {
	return grid.Line(a.Q).Dist(grid.Line(b.Q))
}

func (lineLocator) move(c wire.Cell, rng *stats.RNG) wire.Cell {
	n := grid.Line(c.Q).Neighbor(rng.Intn(2))
	return wire.Cell{Q: int32(n)}
}

// hlrRecord is the network's view of one terminal.
type hlrRecord struct {
	center    wire.Cell
	seq       uint32
	threshold int
}

// estimator tracks EWMA estimates of a terminal's per-slot movement and
// call probabilities.
type estimator struct {
	alpha float64
	q, c  float64
}

func (e *estimator) observe(moved, called bool) {
	mv, cl := 0.0, 0.0
	if moved {
		mv = 1
	}
	if called {
		cl = 1
	}
	e.q += e.alpha * (mv - e.q)
	e.c += e.alpha * (cl - e.c)
}

// params returns the current estimates clamped to a valid chain.Params.
func (e *estimator) params() chain.Params {
	q, c := e.q, e.c
	if q < 0 {
		q = 0
	}
	if c < 0 {
		c = 0
	}
	if q+c > 1 {
		s := q + c
		q, c = q/s, c/s
	}
	return chain.Params{Q: q, C: c}
}

type terminal struct {
	id     uint32
	pos    wire.Cell
	params chain.Params
	rng    *stats.RNG
	est    estimator
	// center is the terminal's own view of its center cell. It matches
	// the HLR record exactly unless an update message was lost in
	// transit (Config.UpdateLossProb).
	center wire.Cell
	// threshold is the terminal's own view of d; the HLR learns it from
	// update messages.
	threshold int
	seq       uint32
	moveProb  float64 // q/(1−c), cached
}

// Run simulates the network for the given number of slots.
func Run(cfg Config, slots int64) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if slots <= 0 {
		return nil, errors.New("sim: slots must be positive")
	}
	if cfg.UpdateLossProb < 0 || cfg.UpdateLossProb >= 1 {
		return nil, fmt.Errorf("sim: update loss probability %v outside [0,1)", cfg.UpdateLossProb)
	}
	if cfg.Threshold > cfg.MaxThreshold {
		return nil, fmt.Errorf("sim: threshold %d exceeds MaxThreshold %d", cfg.Threshold, cfg.MaxThreshold)
	}
	if 2*(cfg.MaxThreshold+2) >= SlotTicks {
		return nil, fmt.Errorf("sim: MaxThreshold %d needs more polling ticks than a slot holds (%d)", cfg.MaxThreshold, SlotTicks)
	}

	var loc locator = hexLocator{}
	if cfg.Core.Model == chain.OneDim {
		loc = lineLocator{}
	}

	startD := cfg.Threshold
	if startD < 0 {
		res, err := core.Scan(cfg.Core, cfg.MaxThreshold)
		if err != nil {
			return nil, err
		}
		startD = res.Best.Threshold
	}

	n := &network{
		cfg: cfg,
		loc: loc,
		hlr: make(map[uint32]hlrRecord, cfg.Terminals),
		metrics: &Metrics{
			Terminals:      cfg.Terminals,
			ThresholdSlots: make(map[int]int64),
			PerTerminal:    make([]TerminalStats, cfg.Terminals),
		},
		parts: make(map[int]partInfo),
	}

	root := stats.NewRNG(cfg.Seed)
	terms := make([]*terminal, cfg.Terminals)
	for i := range terms {
		p := cfg.Core.Params
		if cfg.PerTerminal != nil {
			p = cfg.PerTerminal(i)
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("sim: terminal %d: %w", i, err)
			}
		}
		t := &terminal{
			id:        uint32(i),
			params:    p,
			rng:       root.Split(),
			est:       estimator{alpha: cfg.EWMAAlpha},
			threshold: startD,
		}
		if p.Q > 0 {
			t.moveProb = p.Q / (1 - p.C)
		}
		terms[i] = t
		// Initial registration (subscription-time provisioning, not a
		// mechanism update).
		n.register(t.makeUpdate())
	}

	var sched des.Scheduler
	n.sched = &sched

	// One event per slot sweeps all terminals: movement/update and call
	// arrivals; paging cycles run as sub-slot events.
	var slot func()
	cur := int64(0)
	slot = func() {
		for _, t := range terms {
			n.metrics.ThresholdSlots[t.threshold]++
			called := t.rng.Bernoulli(t.params.C)
			moved := false
			if called {
				n.page(t)
			} else if t.rng.Bernoulli(t.moveProb) {
				moved = true
				t.pos = loc.move(t.pos, t.rng)
				if loc.dist(t.pos, t.center) > t.threshold {
					t.center = t.pos
					n.sendUpdate(t)
				}
			}
			if cfg.Dynamic {
				t.est.observe(moved, called)
			}
		}
		if cfg.Dynamic && cur > 0 && cur%cfg.ReoptimizeEvery == 0 {
			for _, t := range terms {
				n.reoptimize(t)
			}
		}
		cur++
		if cur < slots {
			sched.After(SlotTicks, slot)
		}
	}
	sched.At(0, slot)
	sched.Drain()

	m := n.metrics
	m.Slots = slots
	m.Events = sched.Processed()
	denom := float64(slots) * float64(cfg.Terminals)
	m.UpdateCost = float64(m.Updates) * cfg.Core.Costs.Update / denom
	m.PagingCost = float64(m.PolledCells) * cfg.Core.Costs.Poll / denom
	m.TotalCost = m.UpdateCost + m.PagingCost
	for i := range m.PerTerminal {
		ts := &m.PerTerminal[i]
		ts.TotalCost = (float64(ts.Updates)*cfg.Core.Costs.Update +
			float64(ts.PolledCells)*cfg.Core.Costs.Poll) / float64(slots)
		ts.FinalThreshold = terms[i].threshold
	}
	return m, nil
}

func (t *terminal) makeUpdate() wire.Update {
	t.seq++
	return wire.Update{
		Terminal:  t.id,
		Cell:      t.pos,
		Seq:       t.seq,
		Threshold: uint16(t.threshold),
	}
}
