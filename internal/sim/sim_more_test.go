package sim

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/paging"
)

func TestRunUnboundedDelay(t *testing.T) {
	// Unbounded delay: the partition is per-ring, so a call for a
	// terminal at ring i takes i+1 cycles; all within one slot.
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, paging.Unbounded, 5)
	want, err := cfg.Core.Evaluate(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.NotFound != 0 {
		t.Fatalf("%d paging failures", got.NotFound)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("simulated %v vs analytical %v", got.TotalCost, want.Total)
	}
	if math.Abs(got.Delay.Mean()-want.ExpectedDelay) > 0.05 {
		t.Errorf("delay %v vs %v", got.Delay.Mean(), want.ExpectedDelay)
	}
}

func TestRunWithOptimalDPScheme(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.05, 0.01, 3, 4)
	cfg.Core.Scheme = paging.OptimalDP{}
	want, err := cfg.Core.Evaluate(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cfg, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.NotFound != 0 {
		t.Fatalf("%d paging failures", got.NotFound)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("DP scheme: simulated %v vs analytical %v", got.TotalCost, want.Total)
	}
}

func TestRunMaxThresholdAtSlotCapacityBoundary(t *testing.T) {
	// The largest MaxThreshold that still fits all polling ticks inside a
	// slot — nominal plan plus the (default) recovery paging rounds —
	// must be accepted; one above must not.
	ok := baseConfig(chain.OneDim, 0.1, 0.05, 0, 1)
	ok.MaxThreshold = SlotTicks/2 - 3 - DefaultPageRetries
	if _, err := Run(ok, 1000); err != nil {
		t.Errorf("boundary MaxThreshold rejected: %v", err)
	}
	bad := ok
	bad.MaxThreshold = SlotTicks/2 - 2 - DefaultPageRetries
	if _, err := Run(bad, 1000); err == nil {
		t.Error("over-capacity MaxThreshold accepted")
	}
}

func TestThresholdSlotsAccounting(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.1, 0.05, 1, 2)
	cfg.Terminals = 3
	const slots = 10_000
	m, err := Run(cfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range m.ThresholdSlots {
		total += n
	}
	if total != slots*3 {
		t.Errorf("threshold histogram sums to %d, want %d", total, slots*3)
	}
}

func TestPerTerminalAccountingSumsToGlobal(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	cfg.Terminals = 6
	m, err := Run(cfg, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerTerminal) != 6 {
		t.Fatalf("%d terminal records", len(m.PerTerminal))
	}
	var up, calls, cells int64
	var cost float64
	for _, ts := range m.PerTerminal {
		up += ts.Updates
		calls += ts.Calls
		cells += ts.PolledCells
		cost += ts.TotalCost
		if ts.FinalThreshold != 3 {
			t.Errorf("final threshold %d", ts.FinalThreshold)
		}
	}
	if up != m.Updates || calls != m.Calls || cells != m.PolledCells {
		t.Errorf("per-terminal sums (%d,%d,%d) vs global (%d,%d,%d)",
			up, calls, cells, m.Updates, m.Calls, m.PolledCells)
	}
	// Mean per-terminal cost equals the global per-terminal average.
	if diff := math.Abs(cost/6 - m.TotalCost); diff > 1e-12 {
		t.Errorf("per-terminal mean cost %v vs global %v", cost/6, m.TotalCost)
	}
}

func TestDynamicReoptimizationSendsUpdates(t *testing.T) {
	// When the network default is far from a terminal's optimum, dynamic
	// re-optimization must fire at least one threshold change, visible as
	// a second threshold in the histogram.
	cfg := baseConfig(chain.TwoDimExact, 0.3, 0.002, 2, 0)
	cfg.Dynamic = true
	cfg.ReoptimizeEvery = 500
	cfg.EWMAAlpha = 0.02
	m, err := Run(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ThresholdSlots) < 2 {
		t.Errorf("dynamic run never changed threshold: %v", m.ThresholdSlots)
	}
	if m.NotFound != 0 {
		t.Errorf("%d paging failures across threshold changes", m.NotFound)
	}
}
