package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/telemetry"
)

// telemetryConfig is a faulty, snapshot-enabled configuration that
// exercises every counter a frame carries.
func telemetryConfig() Config {
	cfg := faultyConfig()
	cfg.Telemetry.SnapshotEvery = 500
	return cfg
}

// TestSnapshotSeriesContents checks the shape and semantics of the
// snapshot series: boundaries at every cadence multiple plus the final
// slot, cumulative counters monotone non-decreasing, and the final frame
// agreeing exactly with the final Metrics.
func TestSnapshotSeriesContents(t *testing.T) {
	cfg := telemetryConfig()
	const slots = 4_000
	m, err := RunSharded(cfg, slots, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Snapshots) != slots/500 {
		t.Fatalf("%d frames, want %d", len(m.Snapshots), slots/500)
	}
	prev := telemetry.Frame{}
	for i, f := range m.Snapshots {
		if want := int64(i+1) * 500; f.Slot != want {
			t.Errorf("frame %d at slot %d, want %d", i, f.Slot, want)
		}
		if f.Updates < prev.Updates || f.Calls < prev.Calls || f.PolledCells < prev.PolledCells ||
			f.Events < prev.Events || f.Delay.N < prev.Delay.N || f.Recovery.N < prev.Recovery.N {
			t.Errorf("frame %d counters regressed: %+v after %+v", i, f, prev)
		}
		if f.TotalCost != f.UpdateCost+f.PagingCost {
			t.Errorf("frame %d cost identity broken: %+v", i, f)
		}
		prev = f
	}

	// The final frame is the final state, bit for bit.
	last := m.Snapshots[len(m.Snapshots)-1]
	if last.Slot != slots || last.Updates != m.Updates || last.Calls != m.Calls ||
		last.PolledCells != m.PolledCells || last.Events != m.Events ||
		last.LostUpdates != m.LostUpdates || last.DroppedCalls != m.DroppedCalls ||
		last.Retransmissions != m.Retransmissions || last.RePolls != m.RePolls {
		t.Errorf("final frame %+v does not match metrics", last)
	}
	if math.Float64bits(last.TotalCost) != math.Float64bits(m.TotalCost) ||
		math.Float64bits(last.UpdateCost) != math.Float64bits(m.UpdateCost) {
		t.Errorf("final frame costs (%v, %v) != metrics (%v, %v)",
			last.UpdateCost, last.TotalCost, m.UpdateCost, m.TotalCost)
	}
	if want := telemetry.Summarize(&m.Delay); last.Delay != want {
		t.Errorf("final delay summary %+v, want %+v", last.Delay, want)
	}
	if want := telemetry.Summarize(&m.Recovery); last.Recovery != want {
		t.Errorf("final recovery summary %+v, want %+v", last.Recovery, want)
	}
}

// TestSnapshotSeriesShardInvariant is the tentpole acceptance property:
// the full snapshot series and both latency histograms are bit-identical
// for 1, 2 and N shards on the same seed, under a nonzero FaultPlan.
func TestSnapshotSeriesShardInvariant(t *testing.T) {
	cfg := telemetryConfig()
	const slots = 3_000
	want, err := RunSharded(cfg, slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Snapshots) == 0 || want.DelayHist.N == 0 || want.RecoveryHist.N == 0 {
		t.Fatalf("reference run captured no telemetry: %d frames, hists (%d, %d)",
			len(want.Snapshots), want.DelayHist.N, want.RecoveryHist.N)
	}
	for _, shards := range shardCounts() {
		got, err := RunSharded(cfg, slots, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want.Snapshots, got.Snapshots) {
			t.Errorf("shards=%d: snapshot series diverged", shards)
		}
		if !reflect.DeepEqual(want.DelayHist, got.DelayHist) ||
			!reflect.DeepEqual(want.RecoveryHist, got.RecoveryHist) {
			t.Errorf("shards=%d: histograms diverged", shards)
		}
	}
}

// TestHistogramsAgreeWithAccumulators pins the histograms to the Welford
// aggregates they sit alongside: same sample counts and extrema, ordered
// quantiles, and buckets that account for every sample.
func TestHistogramsAgreeWithAccumulators(t *testing.T) {
	cfg := telemetryConfig()
	m, err := Run(cfg, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string]struct {
		hist *telemetry.Hist
		n    int64
		max  float64
	}{
		"delay":    {m.DelayHist, m.Delay.N(), m.Delay.Max()},
		"recovery": {m.RecoveryHist, m.Recovery.N(), m.Recovery.Max()},
	} {
		h := pair.hist
		if h.N != pair.n {
			t.Errorf("%s: hist N %d != accumulator N %d", name, h.N, pair.n)
		}
		if h.Max != pair.max {
			t.Errorf("%s: hist max %v != accumulator max %v", name, h.Max, pair.max)
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		if sum+h.Overflow != h.N {
			t.Errorf("%s: buckets %d + overflow %d != N %d", name, sum, h.Overflow, h.N)
		}
		p50, p95, p99 := h.P50(), h.P95(), h.P99()
		if p50 > p95 || p95 > p99 || p99 > h.Max {
			t.Errorf("%s: quantiles not ordered: %v %v %v max %v", name, p50, p95, p99, h.Max)
		}
	}
}

// TestTelemetryOffByDefault checks the zero config records no snapshot
// series (the histograms are always on) and that a negative cadence is
// rejected.
func TestTelemetryOffByDefault(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 3
	m, err := Run(cfg, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Snapshots) != 0 {
		t.Errorf("telemetry off captured %d frames", len(m.Snapshots))
	}
	if m.DelayHist == nil || m.DelayHist.N != m.Delay.N() {
		t.Errorf("delay histogram not populated: %+v", m.DelayHist)
	}
	cfg.Telemetry.SnapshotEvery = -1
	if _, err := Run(cfg, 1_000); err == nil {
		t.Error("negative snapshot cadence accepted")
	}
}

// TestSnapshotCadenceBeyondRun still captures the single final frame.
func TestSnapshotCadenceBeyondRun(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 3
	cfg.Telemetry.SnapshotEvery = 10_000
	m, err := RunSharded(cfg, 1_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Snapshots) != 1 || m.Snapshots[0].Slot != 1_000 {
		t.Fatalf("snapshots %+v, want exactly one final frame", m.Snapshots)
	}
}

// TestProgressTracksRun checks the live progress counters land on the
// final slot for every shard once the run drains.
func TestProgressTracksRun(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 8
	prog := &telemetry.Progress{}
	cfg.Telemetry.Progress = prog
	const slots = 1_000
	if _, err := RunSharded(cfg, slots, 4); err != nil {
		t.Fatal(err)
	}
	statuses := prog.Snapshot()
	if len(statuses) != 4 {
		t.Fatalf("%d shard statuses, want 4", len(statuses))
	}
	for _, s := range statuses {
		if s.Slot != slots {
			t.Errorf("shard %d finished at slot %d, want %d", s.Shard, s.Slot, slots)
		}
		if s.Events < slots {
			t.Errorf("shard %d processed %d events, want ≥ %d", s.Shard, s.Events, slots)
		}
	}
}
