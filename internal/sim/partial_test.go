package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/chain"
)

// partialConfig is a run that exercises every merged surface: faults and
// recovery (accumulators with real samples), dynamic re-optimization
// (diverging final thresholds), and the telemetry snapshot series.
func partialConfig(engine Engine) Config {
	cfg := baseConfig(chain.TwoDimExact, 0.2, 0.05, 2, 2)
	cfg.Terminals = 23
	cfg.Dynamic = true
	cfg.ReoptimizeEvery = 100
	cfg.Faults = FaultPlan{UpdateLoss: 0.2, PollLoss: 0.1, ReplyLoss: 0.05, UpdateRetries: 2}
	cfg.Telemetry.SnapshotEvery = 100
	cfg.Seed = 42
	cfg.Engine = engine
	return cfg
}

// TestPartialMergeMatchesSharded is the cross-machine determinism
// contract at the sim layer: running the shard partition in arbitrary
// contiguous slices via RunPartial — round-tripped through the wire
// encoding — and folding with MergePartials reproduces the single-node
// RunSharded Metrics bit for bit, for every engine and slicing.
func TestPartialMergeMatchesSharded(t *testing.T) {
	const slots, shards = 400, 5
	for _, engine := range []Engine{EngineFast, EngineDES, EngineCols} {
		cfg := partialConfig(engine)
		want, err := RunSharded(cfg, slots, shards)
		if err != nil {
			t.Fatalf("%v: RunSharded: %v", engine, err)
		}
		for _, cuts := range [][]int{
			{0, 5},             // one worker holds everything
			{0, 1, 2, 3, 4, 5}, // one shard per worker
			{0, 2, 5},          // uneven two-worker split
			{0, 4, 5},
		} {
			var parts []*Partial
			for i := 0; i+1 < len(cuts); i++ {
				p, err := RunPartial(context.Background(), cfg, slots, shards, cuts[i], cuts[i+1])
				if err != nil {
					t.Fatalf("%v: RunPartial[%d,%d): %v", engine, cuts[i], cuts[i+1], err)
				}
				data, err := EncodePartial(p)
				if err != nil {
					t.Fatalf("%v: EncodePartial: %v", engine, err)
				}
				rt, err := DecodePartial(data)
				if err != nil {
					t.Fatalf("%v: DecodePartial: %v", engine, err)
				}
				if err := rt.Validate(); err != nil {
					t.Fatalf("%v: round-tripped partial invalid: %v", engine, err)
				}
				parts = append(parts, rt)
			}
			// Merge order must not matter; feed the slices reversed.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			got, err := MergePartials(cfg, slots, shards, parts)
			if err != nil {
				t.Fatalf("%v: MergePartials(%v): %v", engine, cuts, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%v: merged partials over cuts %v differ from single-node run", engine, cuts)
			}
		}
	}
}

func TestRunPartialRejectsBadSlices(t *testing.T) {
	cfg := partialConfig(EngineFast)
	for _, tc := range []struct{ shards, lo, hi int }{
		{0, 0, 1},   // shards must be explicit
		{100, 0, 1}, // more shards than terminals
		{4, -1, 2},
		{4, 2, 2},
		{4, 3, 5},
	} {
		if _, err := RunPartial(context.Background(), cfg, 10, tc.shards, tc.lo, tc.hi); err == nil {
			t.Errorf("RunPartial(shards=%d, [%d,%d)) accepted", tc.shards, tc.lo, tc.hi)
		}
	}
}

// TestMergePartialsMismatch pins the typed rejection: partials from a
// different run shape surface as *PartialMismatchError, never as a
// Metrics.Merge panic or a silently wrong report.
func TestMergePartialsMismatch(t *testing.T) {
	const slots, shards = 50, 2
	cfg := partialConfig(EngineFast)
	run := func(c Config, slots int64, shards, lo, hi int) *Partial {
		t.Helper()
		p, err := RunPartial(context.Background(), c, slots, shards, lo, hi)
		if err != nil {
			t.Fatalf("RunPartial: %v", err)
		}
		return p
	}
	a := run(cfg, slots, shards, 0, 1)
	b := run(cfg, slots, shards, 1, 2)

	otherSeed := cfg
	otherSeed.Seed = 7
	for _, tc := range []struct {
		name  string
		parts []*Partial
		field string
	}{
		{"wrong slots", []*Partial{a, run(cfg, slots+1, shards, 1, 2)}, "slots"},
		{"wrong shards", []*Partial{run(cfg, slots, 3, 0, 3)}, "shards"},
		{"wrong seed", []*Partial{a, run(otherSeed, slots, shards, 1, 2)}, "seed"},
		{"duplicate shard", []*Partial{a, a, b}, "coverage"},
		{"missing shard", []*Partial{a}, "coverage"},
	} {
		_, err := MergePartials(cfg, slots, shards, tc.parts)
		var mis *PartialMismatchError
		if !errors.As(err, &mis) {
			t.Errorf("%s: got %v, want *PartialMismatchError", tc.name, err)
			continue
		}
		if mis.Field != tc.field {
			t.Errorf("%s: mismatch field %q, want %q", tc.name, mis.Field, tc.field)
		}
	}
}

func TestDecodePartialRejectsCorruption(t *testing.T) {
	p, err := RunPartial(context.Background(), partialConfig(EngineFast), 20, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePartial(data[:4]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DecodePartial(append([]byte("XXNOPE99"), data[8:]...)); err == nil {
		t.Error("bad magic accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := DecodePartial(flipped); err == nil {
		t.Error("corrupt payload accepted")
	}
}

// TestPartialValidate drives the structural checks a hostile or damaged
// document must fail.
func TestPartialValidate(t *testing.T) {
	fresh := func() *Partial {
		p, err := RunPartial(context.Background(), partialConfig(EngineFast), 20, 3, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name   string
		break_ func(*Partial)
	}{
		{"zero slots", func(p *Partial) { p.Slots = 0 }},
		{"zero shards", func(p *Partial) { p.Shards = 0 }},
		{"inverted slice", func(p *Partial) { p.Lo, p.Hi = 2, 1 }},
		{"slice past shards", func(p *Partial) { p.Hi = 9 }},
		{"shard count drift", func(p *Partial) { p.Shard = p.Shard[:1] }},
		{"shard out of place", func(p *Partial) { p.Shard[0].Shard = 0 }},
		{"empty terminal range", func(p *Partial) { p.Shard[1].Hi = p.Shard[1].Lo }},
		{"terminal vector drift", func(p *Partial) { p.Shard[0].TotalCost = nil }},
		{"missing histogram", func(p *Partial) { p.Shard[0].Metrics.DelayHist = nil }},
		{"frame width drift", func(p *Partial) { p.Shard[0].Frames[0].Delay = nil }},
	} {
		p := fresh()
		tc.break_(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	if err := fresh().Validate(); err != nil {
		t.Errorf("pristine partial rejected: %v", err)
	}
}
