package sim

import "repro/internal/stats"

func newTestRNG() *stats.RNG { return stats.NewRNG(99) }
