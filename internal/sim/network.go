package sim

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/paging"
	"repro/internal/wire"
)

// partInfo caches the paging plan for one threshold: the partition and the
// per-ring subarea index.
type partInfo struct {
	part        paging.Partition
	ringSubarea []int
}

// network is the fixed-network side: the HLR location registry, the paging
// controller, and the signalling accounting. One network instance serves
// one shard of the terminal population (the whole population in a
// single-engine run).
type network struct {
	cfg     Config
	loc     locator
	sched   *des.Scheduler
	hlr     map[uint32]hlrRecord
	metrics *Metrics
	parts   map[int]partInfo
	first   uint32 // global id of the shard's first terminal
	callSeq uint32
	scratch []byte // reused encode buffer for byte accounting
}

func (n *network) term(id uint32) *TerminalStats {
	return &n.metrics.PerTerminal[id-n.first]
}

// partitionFor returns (building and caching on demand) the paging plan for
// threshold d. Probability-aware schemes receive the stationary
// distribution of the network's configured average parameters — the best
// information the fixed network has.
func (n *network) partitionFor(d int) partInfo {
	if pi, ok := n.parts[d]; ok {
		return pi
	}
	rings := n.cfg.Core.Model.Grid().RingSizes(d)
	var probs []float64
	if _, needs := n.scheme().(paging.OptimalDP); needs {
		var err error
		probs, err = chain.Stationary(n.cfg.Core.Model, n.cfg.Core.Params, d)
		if err != nil {
			// Validated config cannot fail here; treat as a bug.
			panic(fmt.Sprintf("sim: stationary distribution: %v", err))
		}
	}
	part := n.scheme().Partition(rings, probs, n.cfg.Core.MaxDelay)
	ringSub := make([]int, d+1)
	for j, s := range part {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			ringSub[i] = j
		}
	}
	pi := partInfo{part: part, ringSubarea: ringSub}
	n.parts[d] = pi
	return pi
}

func (n *network) scheme() paging.Scheme {
	if n.cfg.Core.Scheme == nil {
		return paging.SDF{}
	}
	return n.cfg.Core.Scheme
}

// sendUpdate transmits an uplink location-update message from t: the
// terminal pays for the transmission (cost and bytes) unconditionally; the
// message reaches the HLR unless the injected signalling loss drops it.
// Stale sequence numbers are discarded on delivery.
func (n *network) sendUpdate(t *terminal) {
	u := t.makeUpdate()
	n.scratch = u.Encode(n.scratch[:0])
	n.metrics.Updates++
	n.term(u.Terminal).Updates++
	n.metrics.UpdateBytes += int64(len(n.scratch))
	if n.cfg.UpdateLossProb > 0 && t.rng.Bernoulli(n.cfg.UpdateLossProb) {
		n.metrics.LostUpdates++
		return
	}
	dec, err := wire.DecodeUpdate(n.scratch)
	if err != nil {
		panic(fmt.Sprintf("sim: self-encoded update failed to decode: %v", err))
	}
	rec, ok := n.hlr[dec.Terminal]
	if ok && dec.Seq <= rec.seq {
		return // stale or duplicate
	}
	n.hlr[dec.Terminal] = hlrRecord{
		center:    dec.Cell,
		seq:       dec.Seq,
		threshold: int(dec.Threshold),
	}
}

// register stores a terminal's initial location without charging it as a
// mechanism update (it models subscription-time provisioning).
func (n *network) register(u wire.Update) {
	n.hlr[u.Terminal] = hlrRecord{center: u.Cell, seq: u.Seq, threshold: int(u.Threshold)}
}

// page handles an incoming call for terminal t: poll the residing area
// subarea by subarea, one polling cycle each, until the terminal replies.
// Cycle j's polls go out at tick 2j−1 of the exchange and its reply (or
// timeout) resolves at tick 2j, all within the arrival slot.
func (n *network) page(t *terminal) {
	rec, ok := n.hlr[t.id]
	if !ok {
		panic(fmt.Sprintf("sim: paging unregistered terminal %d", t.id))
	}
	n.callSeq++
	call := n.callSeq
	info := n.partitionFor(rec.threshold)
	ring := n.loc.dist(t.pos, rec.center)
	n.metrics.Calls++
	n.term(t.id).Calls++

	// Without update loss the residing-area invariant holds: the terminal
	// is never farther than the registered threshold from the registered
	// center. A lost update breaks it; the nominal plan then polls empty
	// and an expanding ring search takes over.
	if ring >= len(info.ringSubarea) {
		n.fallbackPage(t, rec, ring, info)
		return
	}
	target := info.ringSubarea[ring]

	var cycle func(j int)
	cycle = func(j int) {
		if j >= len(info.part) {
			// Exhausted all subareas without a reply: mechanism bug.
			n.metrics.NotFound++
			return
		}
		sub := info.part[j]
		// Broadcast one poll per cell of the subarea. The polls differ
		// only in their target cell; encode one representative message
		// and account bytes for the full broadcast.
		cyc := uint8(j + 1)
		if j+1 > 255 {
			cyc = 255
		}
		poll := wire.Poll{Terminal: t.id, Cell: rec.center, Call: call, Cycle: cyc}
		n.scratch = poll.Encode(n.scratch[:0])
		n.metrics.PolledCells += int64(sub.Cells)
		n.term(t.id).PolledCells += int64(sub.Cells)
		n.metrics.PollBytes += int64(sub.Cells * len(n.scratch))
		if j == target {
			// The terminal hears the poll in its cell and replies one
			// tick later; the HLR re-centers on the replied cell.
			n.sched.After(1, func() {
				reply := wire.Reply{Terminal: t.id, Cell: t.pos, Call: call}
				n.scratch = reply.Encode(n.scratch[:0])
				n.metrics.ReplyBytes += int64(len(n.scratch))
				dec, err := wire.DecodeReply(n.scratch)
				if err != nil {
					panic(fmt.Sprintf("sim: self-encoded reply failed to decode: %v", err))
				}
				r := n.hlr[t.id]
				r.center = dec.Cell
				n.hlr[t.id] = r
				// The terminal heard its own poll and answered: both
				// sides re-center, restoring the invariant even after
				// lost updates.
				t.center = t.pos
				// Record the delay on the terminal's own accumulator;
				// the aggregate is folded in id order at merge time so
				// it is independent of the shard count.
				n.term(t.id).Delay.Add(float64(j + 1))
			})
			return
		}
		// Timeout after one polling cycle, then poll the next subarea.
		n.sched.After(2, func() { cycle(j + 1) })
	}
	n.sched.After(1, func() { cycle(0) })
}

// fallbackPage resolves a call whose nominal residing-area plan cannot
// contain the terminal (its true ring distance exceeds the registered
// threshold after a lost update): the network polls the entire nominal
// plan, then expands ring by ring beyond it until the terminal answers.
// The search always terminates — the terminal's displacement is finite —
// and both sides re-center afterwards. Cells and cycles are accounted in
// one event (the expanding search is bounded by the drift since the last
// successful sync, which stays tiny at realistic loss rates).
func (n *network) fallbackPage(t *terminal, rec hlrRecord, ring int, info partInfo) {
	n.metrics.FallbackCalls++
	kind := n.cfg.Core.Model.Grid()
	cells := 0
	for _, sub := range info.part {
		cells += sub.Cells
	}
	for r := rec.threshold + 1; r <= ring; r++ {
		cells += kind.RingSize(r)
	}
	cycles := len(info.part) + (ring - rec.threshold)
	n.sched.After(1, func() {
		n.metrics.PolledCells += int64(cells)
		n.term(t.id).PolledCells += int64(cells)
		n.metrics.PollBytes += int64(cells * wire.PollSize)
		n.metrics.ReplyBytes += wire.ReplySize
		n.term(t.id).Delay.Add(float64(cycles))
		r := n.hlr[t.id]
		r.center = t.pos
		n.hlr[t.id] = r
		t.center = t.pos
	})
}

// reoptimize recomputes terminal t's threshold from its online estimates
// using the near-optimal pipeline (with the paper's 0→1 correction) and, if
// it changed, sends a location update carrying the new threshold so the
// HLR's paging plan stays consistent.
func (n *network) reoptimize(t *terminal) {
	est := t.est.params()
	if est.Q == 0 && est.C == 0 {
		return // no signal yet
	}
	cfg := n.cfg.Core
	cfg.Params = est
	res, err := core.NearOptimal(cfg, n.cfg.MaxThreshold, true)
	if err != nil {
		return // keep the current threshold on estimation pathologies
	}
	d := res.Best.Threshold
	if d == t.threshold {
		return
	}
	t.threshold = d
	// Re-register at the current position: the new residing area must be
	// centered somewhere the network knows.
	t.center = t.pos
	n.sendUpdate(t)
}
