package sim

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/paging"
	"repro/internal/wire"
)

// partInfo caches the paging plan for one threshold: the partition and the
// per-ring subarea index.
type partInfo struct {
	part        paging.Partition
	ringSubarea []int
}

// network is the fixed-network side: the HLR location registry, the paging
// controller, and the signalling accounting. One network instance serves
// one shard of the terminal population (the whole population in a
// single-engine run).
type network struct {
	cfg   Config
	loc   locator
	sched *des.Scheduler
	// upd is the compiled update scheme (resolveScheme of cfg.Scheme):
	// the trigger the sweeps branch on. Not to be confused with scheme(),
	// the paging partitioner.
	upd schemePlan
	// hlr holds the shard's location registry, indexed by id − first:
	// terminal ids are dense within a shard, so the registry is a flat
	// slice rather than a map. Every slot is provisioned at construction
	// time (newShardNetwork), so lookups never miss.
	hlr     []hlrRecord
	metrics *Metrics
	parts   map[int]partInfo
	// lastD/lastPart memoize the most recent partitionFor answer: paging
	// plans are keyed by threshold, and runs overwhelmingly page at one
	// (or very few) thresholds, so the map is rarely consulted twice.
	lastD    int
	lastPart partInfo
	first    uint32 // global id of the shard's first terminal
	callSeq  uint32
	scratch  []byte // reused encode buffer for byte accounting
}

func (n *network) term(id uint32) *TerminalStats {
	return &n.metrics.PerTerminal[id-n.first]
}

// hlrAt returns the registry record for terminal id. Ids outside the
// shard are a bug and fail loudly on the slice bounds check.
func (n *network) hlrAt(id uint32) *hlrRecord {
	return &n.hlr[id-n.first]
}

// partitionFor returns (building and caching on demand) the paging plan for
// threshold d. Probability-aware schemes receive the stationary
// distribution of the network's configured average parameters — the best
// information the fixed network has.
func (n *network) partitionFor(d int) partInfo {
	if d == n.lastD {
		return n.lastPart
	}
	if pi, ok := n.parts[d]; ok {
		n.lastD, n.lastPart = d, pi
		return pi
	}
	rings := n.cfg.Core.Model.Grid().RingSizes(d)
	var probs []float64
	if _, needs := n.scheme().(paging.OptimalDP); needs {
		var err error
		probs, err = chain.Stationary(n.cfg.Core.Model, n.cfg.Core.Params, d)
		if err != nil {
			// Validated config cannot fail here; treat as a bug.
			panic(fmt.Sprintf("sim: stationary distribution: %v", err))
		}
	}
	part := n.scheme().Partition(rings, probs, n.cfg.Core.MaxDelay)
	ringSub := make([]int, d+1)
	for j, s := range part {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			ringSub[i] = j
		}
	}
	pi := partInfo{part: part, ringSubarea: ringSub}
	n.parts[d] = pi
	n.lastD, n.lastPart = d, pi
	return pi
}

func (n *network) scheme() paging.Scheme {
	if n.cfg.Core.Scheme == nil {
		return paging.SDF{}
	}
	return n.cfg.Core.Scheme
}

// inOutage reports whether the HLR is inside a scheduled outage window at
// the current virtual time.
func (n *network) inOutage() bool {
	if len(n.cfg.Faults.Outages) == 0 {
		return false
	}
	return n.cfg.Faults.covers(int64(n.sched.Now() / SlotTicks))
}

// markDesynced stamps the onset of an HLR divergence: the terminal's own
// view of its record no longer matches what the network holds.
func (n *network) markDesynced(t *terminal) {
	if !t.desynced {
		t.desynced = true
		t.desyncedAt = n.sched.Now()
	}
}

// markSynced closes a divergence episode, recording its duration in slots
// on the terminal's recovery-latency accumulator (folded in id order at
// merge time, like the delay accumulator) and the fixed-bucket histogram.
func (n *network) markSynced(t *terminal) {
	n.markSyncedAt(t, n.sched.Now())
}

// markSyncedAt is markSynced at an explicit virtual time, for callers that
// run ahead of the scheduler clock (the fast path's inline paging
// exchange): the recovery latency has sub-slot resolution, so the tick the
// episode closes at must be the one the event-driven exchange would have
// reached.
func (n *network) markSyncedAt(t *terminal, now des.Time) {
	if t.desynced {
		t.desynced = false
		latency := float64(now-t.desyncedAt) / SlotTicks
		n.term(t.id).Recovery.Add(latency)
		n.metrics.RecoveryHist.Add(latency)
	}
}

// sendUpdate starts a fresh location-update exchange for t. With
// FaultPlan.UpdateRetries > 0 the exchange is acked: a transmission that
// draws no wire.Ack is retransmitted after a timeout with exponential
// backoff until the retry budget runs out, leaving the terminal desynced
// until the next page re-centers it. With a zero budget updates stay the
// paper's fire-and-forget datagrams.
func (n *network) sendUpdate(t *terminal) {
	t.retries = 0
	n.transmitUpdate(t)
}

// transmitUpdate performs one uplink transmission of t's current location:
// the terminal pays for the transmission (cost and bytes) unconditionally;
// the message reaches the HLR unless the injected signalling loss drops
// it, and is applied unless a scheduled outage window is open. Stale
// sequence numbers are discarded on delivery.
func (n *network) transmitUpdate(t *terminal) {
	u := t.makeUpdate()
	// Sending an update (re)centers the terminal's own view on the
	// reported cell, whatever becomes of the message in transit — and
	// counts as contact: the movement counter and the timer scheme's
	// reference slot reset in every scheme (the extra writes take no
	// draws, so distance results are untouched).
	t.center = t.pos
	t.moves = 0
	t.lastContact = int64(n.sched.Now() / SlotTicks)
	n.scratch = u.Encode(n.scratch[:0])
	n.metrics.Updates++
	n.term(u.Terminal).Updates++
	n.metrics.UpdateBytes += int64(len(n.scratch))

	applied := false
	if n.cfg.Faults.UpdateLoss > 0 && t.rng.Bernoulli(n.cfg.Faults.UpdateLoss) {
		n.metrics.LostUpdates++
	} else if n.inOutage() {
		// Delivered, but the HLR is down for maintenance: the
		// registration is not applied and no ack is produced.
		n.metrics.OutageDeferred++
	} else {
		dec, err := wire.DecodeUpdate(n.scratch)
		if err != nil {
			panic(fmt.Sprintf("sim: self-encoded update failed to decode: %v", err))
		}
		if rec := n.hlrAt(dec.Terminal); dec.Seq > rec.seq {
			*rec = hlrRecord{
				center:    dec.Cell,
				seq:       dec.Seq,
				threshold: int(dec.Threshold),
			}
		}
		applied = true
		if n.cfg.Faults.UpdateRetries > 0 {
			// The HLR acknowledges the registration; the downlink ack
			// rides the paging channel and is modeled as reliable.
			ack := wire.Ack{Terminal: dec.Terminal, Seq: dec.Seq}
			n.scratch = ack.Encode(n.scratch[:0])
			n.metrics.Acks++
			n.metrics.AckBytes += int64(len(n.scratch))
			t.ackedSeq = dec.Seq
		}
	}
	if applied {
		n.markSynced(t)
	} else {
		n.markDesynced(t)
	}
	if n.cfg.Faults.UpdateRetries > 0 && t.ackedSeq < u.Seq {
		// The retransmission timer is the only event species that can be
		// pending when a checkpoint is taken at a slot boundary (paging
		// chains complete within the arrival slot — validate enforces it),
		// so it carries a tag from which Resume rebuilds the closure:
		// shard-local terminal index and the update's sequence number.
		seq := u.Seq
		n.sched.AfterTag(n.cfg.Faults.ackBackoff(t.retries), ackTag(t.id-n.first, seq),
			func() { n.ackTimeout(t, seq) })
	}
}

// ackTimeout fires when the retransmission timer for the update carrying
// seq expires: if the exchange is still pending (not acked, not superseded
// by a newer update) and budget remains, the terminal retransmits its
// current location with the next backoff step.
func (n *network) ackTimeout(t *terminal, seq uint32) {
	if t.ackedSeq >= seq || t.seq != seq {
		return // acked, or superseded by a newer exchange
	}
	if t.retries >= n.cfg.Faults.UpdateRetries {
		return // budget exhausted: desynced until the next page re-centers
	}
	t.retries++
	n.metrics.Retransmissions++
	n.transmitUpdate(t)
}

// register stores a terminal's initial location without charging it as a
// mechanism update (it models subscription-time provisioning).
func (n *network) register(u wire.Update) {
	*n.hlrAt(u.Terminal) = hlrRecord{center: u.Cell, seq: u.Seq, threshold: int(u.Threshold)}
}

// pollHeard reports whether a poll broadcast covering t's current cell
// actually reaches it, drawing the injected downlink loss from the
// terminal's own stream.
func (n *network) pollHeard(t *terminal) bool {
	if n.cfg.Faults.PollLoss > 0 && t.rng.Bernoulli(n.cfg.Faults.PollLoss) {
		n.metrics.LostPolls++
		return false
	}
	return true
}

// replyDelivered transmits t's paging reply (the terminal pays the bytes
// unconditionally) and, unless the injected uplink loss drops it, delivers
// it to the HLR, which re-centers the record on the replied cell.
func (n *network) replyDelivered(t *terminal, call uint32) bool {
	reply := wire.Reply{Terminal: t.id, Cell: t.pos, Call: call}
	n.scratch = reply.Encode(n.scratch[:0])
	n.metrics.ReplyBytes += int64(len(n.scratch))
	if n.cfg.Faults.ReplyLoss > 0 && t.rng.Bernoulli(n.cfg.Faults.ReplyLoss) {
		n.metrics.LostReplies++
		return false
	}
	dec, err := wire.DecodeReply(n.scratch)
	if err != nil {
		panic(fmt.Sprintf("sim: self-encoded reply failed to decode: %v", err))
	}
	n.hlrAt(t.id).center = dec.Cell
	return true
}

// pageSuccess finishes a resolved call after cycles polling cycles: the
// terminal heard its poll and its reply got through, so both sides
// re-center and any desync episode ends. The delay lands on the terminal's
// own accumulator; the aggregate is folded in id order at merge time so it
// is independent of the shard count.
func (n *network) pageSuccess(t *terminal, cycles int) {
	n.pageSuccessAt(t, cycles, n.sched.Now())
}

// pageSuccessAt is pageSuccess at an explicit virtual time (see
// markSyncedAt).
func (n *network) pageSuccessAt(t *terminal, cycles int, now des.Time) {
	// An answered page is contact too: both sides re-center, so the
	// movement and timer schemes restart from here.
	t.center = t.pos
	t.moves = 0
	t.lastContact = int64(now / SlotTicks)
	n.term(t.id).Delay.Add(float64(cycles))
	n.metrics.DelayHist.Add(float64(cycles))
	n.markSyncedAt(t, now)
}

// diskCells counts the cells within the given ring radius of a center.
func (n *network) diskCells(radius int) int {
	kind := n.cfg.Core.Model.Grid()
	cells := 0
	for r := 0; r <= radius; r++ {
		cells += kind.RingSize(r)
	}
	return cells
}

// page handles an incoming call for terminal t: poll the residing area
// subarea by subarea, one polling cycle each, until the terminal replies.
// Cycle j's polls go out at tick 2j−1 of the exchange and its reply (or
// timeout) resolves at tick 2j, all within the arrival slot.
//
// With a perfect signalling plane the nominal plan always answers within
// the delay bound: the distance-update invariant keeps the terminal inside
// its residing area and every poll/reply round-trip succeeds. Injected
// faults break both halves, so a plan that comes up empty escalates to
// recovery rounds (see the round closure): round r blanket-polls every
// cell within radius threshold+r of the registered center, re-covering
// in-area terminals whose poll or reply was lost and expanding ring by
// ring toward terminals that drifted out after lost updates. A call still
// unanswered after FaultPlan.PageRetries rounds is dropped and counted in
// Metrics.DroppedCalls — never a NotFound panic.
func (n *network) page(t *terminal) {
	rec := *n.hlrAt(t.id)
	n.callSeq++
	call := n.callSeq
	info := n.partitionFor(rec.threshold)
	ring := n.loc.dist(t.pos, rec.center)
	n.metrics.Calls++
	n.term(t.id).Calls++

	// target is the subarea whose polls reach the terminal, or −1 when
	// the registered record cannot contain it (drift after lost or
	// outage-deferred updates): the nominal plan then polls empty and the
	// recovery rounds take over.
	target := -1
	if ring < len(info.ringSubarea) {
		target = info.ringSubarea[ring]
	} else {
		n.metrics.FallbackCalls++
	}

	// round r > 0 is one recovery paging round; see the method comment.
	var round func(r int)
	round = func(r int) {
		if r > n.cfg.Faults.PageRetries {
			n.metrics.DroppedCalls++
			return
		}
		n.metrics.RePolls++
		radius := rec.threshold + r
		cells := n.diskCells(radius)
		cyc := uint8(255)
		if c := len(info.part) + r; c <= 255 {
			cyc = uint8(c)
		}
		poll := wire.Poll{Terminal: t.id, Cell: rec.center, Call: call, Cycle: cyc}
		n.scratch = poll.Encode(n.scratch[:0])
		n.metrics.PolledCells += int64(cells)
		n.term(t.id).PolledCells += int64(cells)
		n.metrics.PollBytes += int64(cells * len(n.scratch))
		if ring <= radius && n.pollHeard(t) {
			n.sched.After(1, func() {
				if n.replyDelivered(t, call) {
					n.pageSuccess(t, len(info.part)+r)
					return
				}
				n.sched.After(1, func() { round(r + 1) })
			})
			return
		}
		n.sched.After(2, func() { round(r + 1) })
	}

	var cycle func(j int)
	cycle = func(j int) {
		if j >= len(info.part) {
			// Exhausted all subareas without a reply: recovery rounds.
			round(1)
			return
		}
		sub := info.part[j]
		// Broadcast one poll per cell of the subarea. The polls differ
		// only in their target cell; encode one representative message
		// and account bytes for the full broadcast.
		cyc := uint8(j + 1)
		if j+1 > 255 {
			cyc = 255
		}
		poll := wire.Poll{Terminal: t.id, Cell: rec.center, Call: call, Cycle: cyc}
		n.scratch = poll.Encode(n.scratch[:0])
		n.metrics.PolledCells += int64(sub.Cells)
		n.term(t.id).PolledCells += int64(sub.Cells)
		n.metrics.PollBytes += int64(sub.Cells * len(n.scratch))
		if j == target && n.pollHeard(t) {
			// The terminal hears the poll in its cell and replies one
			// tick later; if the reply survives the uplink, the HLR
			// re-centers on the replied cell and the call resolves.
			n.sched.After(1, func() {
				if n.replyDelivered(t, call) {
					n.pageSuccess(t, j+1)
					return
				}
				n.sched.After(1, func() { cycle(j + 1) })
			})
			return
		}
		// Timeout after one polling cycle, then poll the next subarea.
		n.sched.After(2, func() { cycle(j + 1) })
	}
	n.sched.After(1, func() { cycle(0) })
}

// sweepSlot runs slot's worth of terminal activity for t: the call
// arrival draw (paging on a hit), otherwise the movement draw (the
// update scheme deciding whether the move triggers an update), then the
// timer scheme's deadline check, then the dynamic scheme's estimator
// update. The draw order — call, then movement, then the in-move
// direction — is the per-terminal RNG contract the fast path's
// bit-identity rests on: the reference engine runs this method every
// slot, the batch engines replicate the same draws inline on their pure
// slots (runShardFast, runShardCols) and fall back to this method
// whenever queued events are in play. Note Bernoulli always consumes a
// draw, even at probability zero, so the sequence is the same whatever
// the outcomes; the scheme dispatch sits strictly after the draws and
// takes none of its own. Threshold-usage accounting stays with the
// callers: the reference engine counts every terminal-slot as it
// sweeps, the batch engines batch runs of unchanged thresholds.
//
// slot is the current slot index: the reference engine passes its slot
// counter, the batch engines the stretch position. It is only read by
// the timer scheme (the scheduler clock is not necessarily advanced on
// pure slots).
func (n *network) sweepSlot(t *terminal, slot int64) {
	called := t.rng.Bernoulli(t.params.C)
	moved := false
	if called {
		n.page(t)
	} else if t.rng.Bernoulli(t.moveProb) {
		moved = true
		t.pos = n.loc.move(t.pos, t.rng)
		switch n.upd.kind {
		case schemeDistance:
			if n.loc.dist(t.pos, t.center) > t.threshold {
				t.center = t.pos
				n.sendUpdate(t)
			}
		case schemeMovement:
			t.moves++
			if t.moves >= n.upd.param {
				t.center = t.pos
				n.sendUpdate(t)
			}
			// schemeTimer: movement never triggers an update.
		}
	}
	if n.upd.kind == schemeTimer && !called && slot-t.lastContact >= n.upd.param {
		// The refresh period elapsed without contact: report the current
		// position. A slot whose call was answered already re-centered;
		// one whose call was dropped stays overdue and refreshes on the
		// next call-free slot.
		t.center = t.pos
		n.sendUpdate(t)
	}
	if n.cfg.Dynamic {
		t.est.observe(moved, called)
	}
}

// reoptimize recomputes terminal t's threshold from its online estimates
// using the near-optimal pipeline (with the paper's 0→1 correction) and, if
// it changed, sends a location update carrying the new threshold so the
// HLR's paging plan stays consistent.
func (n *network) reoptimize(t *terminal) {
	est := t.est.params()
	if est.Q == 0 && est.C == 0 {
		return // no signal yet
	}
	cfg := n.cfg.Core
	cfg.Params = est
	res, err := core.NearOptimal(cfg, n.cfg.MaxThreshold, true)
	if err != nil {
		return // keep the current threshold on estimation pathologies
	}
	d := res.Best.Threshold
	if d == t.threshold {
		return
	}
	t.threshold = d
	// Re-register at the current position: the new residing area must be
	// centered somewhere the network knows.
	t.center = t.pos
	n.sendUpdate(t)
}
