package sim

import (
	"math"
	"testing"

	"repro/internal/chain"
)

func TestLossZeroIdenticalToBaseline(t *testing.T) {
	// FaultPlan{UpdateLoss: 0} must not perturb the RNG stream or any metric.
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	a, err := Run(cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	withZero := cfg
	withZero.Faults.UpdateLoss = 0
	b, err := Run(withZero, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.PolledCells != b.PolledCells || a.Calls != b.Calls {
		t.Error("explicit zero loss changed the run")
	}
	if a.LostUpdates != 0 || a.FallbackCalls != 0 {
		t.Errorf("loss metrics nonzero without loss: %d lost, %d fallback",
			a.LostUpdates, a.FallbackCalls)
	}
}

func TestLossInjectionRecoversAndCosts(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	clean, err := Run(cfg, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	lossy := cfg
	lossy.Faults.UpdateLoss = 0.3
	got, err := Run(lossy, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	// Losses occurred at roughly the configured rate.
	rate := float64(got.LostUpdates) / float64(got.Updates)
	if math.Abs(rate-0.3) > 0.03 {
		t.Errorf("loss rate %v, want ≈ 0.3", rate)
	}
	// Some pages missed the nominal plan and escalated — and every call
	// was either resolved or (past the retry budget) explicitly dropped,
	// never lost to a NotFound mechanism failure.
	if got.FallbackCalls == 0 {
		t.Error("no fallback pages despite 30% update loss")
	}
	if got.RePolls == 0 {
		t.Error("no recovery rounds despite fallback pages")
	}
	if got.NotFound != 0 {
		t.Errorf("%d unresolved calls outside the recovery machinery", got.NotFound)
	}
	if int64(got.Delay.N())+got.DroppedCalls != got.Calls {
		t.Errorf("delay samples %d + dropped %d != calls %d",
			got.Delay.N(), got.DroppedCalls, got.Calls)
	}
	// Every desync episode that ended left a recovery-latency sample.
	if got.Recovery.N() == 0 {
		t.Error("no recovery-latency samples despite lost updates")
	}
	// Loss makes paging strictly more expensive on average.
	if got.PagingCost <= clean.PagingCost {
		t.Errorf("paging cost %v not above lossless %v", got.PagingCost, clean.PagingCost)
	}
	if got.Delay.Mean() <= clean.Delay.Mean() {
		t.Errorf("mean delay %v not above lossless %v", got.Delay.Mean(), clean.Delay.Mean())
	}
}

func TestLossSensitivityMonotone(t *testing.T) {
	// More loss → more recovery work → higher paging cost.
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 2)
	prev := -1.0
	for _, loss := range []float64{0, 0.2, 0.5, 0.8} {
		c := cfg
		c.Faults.UpdateLoss = loss
		m, err := Run(c, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		if m.NotFound != 0 {
			t.Fatalf("loss=%v: %d unresolved calls", loss, m.NotFound)
		}
		if m.PagingCost < prev {
			t.Errorf("loss=%v: paging cost %v below %v at lower loss", loss, m.PagingCost, prev)
		}
		prev = m.PagingCost
	}
}

func TestLossWithDynamicThresholds(t *testing.T) {
	// Dynamic re-optimization updates can be lost too; the recovery
	// machinery must keep the system consistent.
	cfg := baseConfig(chain.TwoDimExact, 0.2, 0.02, 2, 1)
	cfg.Dynamic = true
	cfg.ReoptimizeEvery = 500
	cfg.Faults.UpdateLoss = 0.5
	m, err := Run(cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.NotFound != 0 {
		t.Errorf("%d unresolved calls under loss + dynamic thresholds", m.NotFound)
	}
	if int64(m.Delay.N())+m.DroppedCalls != m.Calls {
		t.Errorf("delay samples %d + dropped %d != calls %d",
			m.Delay.N(), m.DroppedCalls, m.Calls)
	}
}

func TestLossValidation(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.1, 0.05, 1, 1)
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		c := cfg
		c.Faults.UpdateLoss = bad
		if _, err := Run(c, 100); err == nil {
			t.Errorf("loss %v accepted", bad)
		}
	}
}
