package sim

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/chain"
)

// shardCounts are the partition sizes the invariance contract is checked
// over: trivial, even, uneven, more shards than fit evenly, and whatever
// the hardware would pick.
func shardCounts() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
}

// TestRunShardedShardCountInvariant is the engine's central contract: for
// a fixed seed, partitioning the population across any number of shards
// yields Metrics bit-identical to the single-threaded Run. The config
// exercises the lossy-update fallback path too, so the invariance covers
// every RNG consumer. Run under -race this also checks shard isolation.
func TestRunShardedShardCountInvariant(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.15, 0.03, 2, 3)
	cfg.Terminals = 12
	cfg.Faults.UpdateLoss = 0.2
	// Telemetry on: reflect.DeepEqual below then pins the snapshot series
	// and the latency histograms to be bit-identical too.
	cfg.Telemetry.SnapshotEvery = 500
	const slots = 4_000

	want, err := Run(cfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	if want.Calls == 0 || want.Updates == 0 || want.LostUpdates == 0 {
		t.Fatalf("reference run exercised too little: %+v", want)
	}
	if len(want.Snapshots) != int(slots/500) || want.DelayHist.N != want.Delay.N() {
		t.Fatalf("reference run captured no usable telemetry: %d frames, hist N %d",
			len(want.Snapshots), want.DelayHist.N)
	}
	for _, shards := range shardCounts() {
		got, err := RunSharded(cfg, slots, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: metrics diverged from single-threaded run\nwant %+v\ngot  %+v",
				shards, want, got)
		}
	}
}

// TestRunShardedDynamicInvariant repeats the contract with the per-user
// dynamic scheme and a heterogeneous population: online estimation,
// re-optimization and threshold-change updates must all stay per-terminal
// deterministic.
func TestRunShardedDynamicInvariant(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.2, 0.01, 2, 1)
	cfg.Terminals = 10
	cfg.Dynamic = true
	cfg.ReoptimizeEvery = 500
	cfg.EWMAAlpha = 0.02
	cfg.PerTerminal = func(i int) chain.Params {
		return chain.Params{Q: 0.05 + 0.05*float64(i%4), C: 0.01}
	}
	const slots = 3_000

	want, err := Run(cfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.ThresholdSlots) < 2 {
		t.Fatalf("dynamic reference run never changed threshold: %v", want.ThresholdSlots)
	}
	for _, shards := range shardCounts() {
		got, err := RunSharded(cfg, slots, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: dynamic metrics diverged from single-threaded run", shards)
		}
	}
}

// TestRunShardedPerTerminalGlobalOrder checks the merged per-terminal
// records are indexed by global id whatever the partition.
func TestRunShardedPerTerminalGlobalOrder(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 9
	m, err := RunSharded(cfg, 2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerTerminal) != 9 {
		t.Fatalf("%d terminal records, want 9", len(m.PerTerminal))
	}
	for i, ts := range m.PerTerminal {
		if ts.ID != i {
			t.Errorf("record %d has id %d", i, ts.ID)
		}
	}
}

func TestRunShardedClampsExcessShards(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 3
	want, err := Run(cfg, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	// More shards than terminals: clamped to one terminal per shard.
	got, err := RunSharded(cfg, 1_000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("clamped run diverged from single-threaded run")
	}
}

func TestRunShardedDefaultShards(t *testing.T) {
	cfg := baseConfig(chain.OneDim, 0.2, 0.05, 2, 2)
	cfg.Terminals = 5
	want, err := Run(cfg, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	// shards = 0 selects GOMAXPROCS; results must still match.
	got, err := RunSharded(cfg, 1_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("default shard count diverged from single-threaded run")
	}
}

// TestRunShardedErrors checks the defensive paths: shard-count validation
// plus the config checks shared with Run, including a per-terminal
// validation failure surfacing from inside a shard.
func TestRunShardedErrors(t *testing.T) {
	good := baseConfig(chain.OneDim, 0.1, 0.1, 1, 1)
	good.Terminals = 4
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		slots  int64
		shards int
	}{
		{"negative shards", func(*Config) {}, 100, -1},
		{"very negative shards", func(*Config) {}, 100, -64},
		{"zero slots", func(*Config) {}, 0, 2},
		{"invalid params", func(c *Config) { c.Core.Params = chain.Params{Q: 0.9, C: 0.9} }, 100, 2},
		{"loss out of range", func(c *Config) { c.Faults.UpdateLoss = 1.5 }, 100, 2},
		{"threshold above max", func(c *Config) { c.Threshold = 100 }, 100, 2},
		{"bad per-terminal params", func(c *Config) {
			c.PerTerminal = func(i int) chain.Params {
				if i == 3 {
					return chain.Params{Q: 2}
				}
				return chain.Params{Q: 0.1, C: 0.1}
			}
		}, 100, 2},
	} {
		cfg := good
		tc.mutate(&cfg)
		if _, err := RunSharded(cfg, tc.slots, tc.shards); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The good config itself must pass, so the cases above fail for their
	// stated reason and not a latent one.
	if _, err := RunSharded(good, 100, 2); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}
