package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chain"
)

// TestZeroFaultPlanGoldenBaseline pins the exact metrics the
// pre-fault-subsystem engine (commit 1847fe4) produced for two reference
// configurations. A zero FaultPlan must take no RNG draws and schedule no
// extra events, so every counter — and every floating-point aggregate, bit
// for bit — must still match after the recovery subsystem landed.
func TestZeroFaultPlanGoldenBaseline(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	cfg.Terminals = 8
	cfg.Seed = 42
	m, err := Run(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	intChecks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Updates", m.Updates, 674},
		{"Calls", m.Calls, 3268},
		{"PolledCells", m.PolledCells, 58606},
		{"UpdateBytes", m.UpdateBytes, 12806},
		{"PollBytes", m.PollBytes, 1054908},
		{"ReplyBytes", m.ReplyBytes, 55556},
		{"Events", int64(m.Events), 27727},
		{"Delay.N", m.Delay.N(), 3268},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			t.Errorf("%s = %d, want pre-PR baseline %d", c.name, c.got, c.want)
		}
	}
	bitChecks := []struct {
		name string
		got  float64
		want uint64
	}{
		{"Delay.Mean", m.Delay.Mean(), 0x3ff5d4c2458fd2e1},
		{"TotalCost", m.TotalCost, 0x40105624dd2f1aa0},
		{"UpdateCost", m.UpdateCost, 0x3fdaf5c28f5c28f6},
		{"PagingCost", m.PagingCost, 0x400d4d916872b021},
	}
	for _, c := range bitChecks {
		if math.Float64bits(c.got) != c.want {
			t.Errorf("%s = %v (bits %#x), want pre-PR baseline bits %#x",
				c.name, c.got, math.Float64bits(c.got), c.want)
		}
	}
	assertNoFaultActivity(t, m)

	// The dynamic per-user scheme consumes the RNG streams differently;
	// pin it too so the zero-fault contract covers every consumer.
	dyn := baseConfig(chain.TwoDimExact, 0.2, 0.01, 2, 1)
	dyn.Terminals = 6
	dyn.Dynamic = true
	dyn.ReoptimizeEvery = 500
	dyn.EWMAAlpha = 0.02
	dyn.Seed = 7
	dm, err := Run(dyn, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Updates != 1190 || dm.Calls != 622 || dm.PolledCells != 25882 || dm.Events != 11534 {
		t.Errorf("dynamic run diverged from pre-PR baseline: Updates=%d Calls=%d PolledCells=%d Events=%d",
			dm.Updates, dm.Calls, dm.PolledCells, dm.Events)
	}
	if math.Float64bits(dm.Delay.Mean()) != 0x3ff775b5ea991b2b ||
		math.Float64bits(dm.TotalCost) != 0x40193020c49ba5e3 {
		t.Errorf("dynamic aggregates diverged from pre-PR baseline: DelayMean bits %#x, TotalCost bits %#x",
			math.Float64bits(dm.Delay.Mean()), math.Float64bits(dm.TotalCost))
	}
	assertNoFaultActivity(t, dm)
}

func assertNoFaultActivity(t *testing.T, m *Metrics) {
	t.Helper()
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"LostUpdates", m.LostUpdates},
		{"LostPolls", m.LostPolls},
		{"LostReplies", m.LostReplies},
		{"FallbackCalls", m.FallbackCalls},
		{"Retransmissions", m.Retransmissions},
		{"Acks", m.Acks},
		{"AckBytes", m.AckBytes},
		{"RePolls", m.RePolls},
		{"DroppedCalls", m.DroppedCalls},
		{"OutageDeferred", m.OutageDeferred},
		{"NotFound", m.NotFound},
		{"Recovery.N", m.Recovery.N()},
	} {
		if c.v != 0 {
			t.Errorf("zero-fault run produced %s = %d", c.name, c.v)
		}
	}
}

// faultyConfig is a configuration with every failure mode switched on at
// once: uplink update loss, downlink poll loss, uplink reply loss, acked
// updates with retransmission, a tight paging retry budget and two HLR
// outage windows.
func faultyConfig() Config {
	cfg := baseConfig(chain.TwoDimExact, 0.15, 0.03, 2, 3)
	cfg.Terminals = 16
	// Snapshots on, so the shard-invariance checks cover the telemetry
	// series under a nonzero FaultPlan too.
	cfg.Telemetry.SnapshotEvery = 1_000
	cfg.Faults = FaultPlan{
		UpdateLoss:    0.25,
		PollLoss:      0.15,
		ReplyLoss:     0.15,
		UpdateRetries: 3,
		PageRetries:   4,
		Outages:       []Outage{{Start: 500, End: 900}, {Start: 2000, End: 2200}},
	}
	return cfg
}

// TestFaultShardInvariance is the acceptance property: with every failure
// mode injected at once, RunSharded stays bit-identical for shard counts
// 1, 3 and 8 (run under -race in CI, covering shard isolation too).
func TestFaultShardInvariance(t *testing.T) {
	cfg := faultyConfig()
	const slots = 4_000

	want, err := RunSharded(cfg, slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The reference run must actually exercise every injected mode.
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"LostUpdates", want.LostUpdates},
		{"LostPolls", want.LostPolls},
		{"LostReplies", want.LostReplies},
		{"FallbackCalls", want.FallbackCalls},
		{"Retransmissions", want.Retransmissions},
		{"RePolls", want.RePolls},
		{"OutageDeferred", want.OutageDeferred},
		{"Recovery.N", want.Recovery.N()},
	} {
		if c.v == 0 {
			t.Fatalf("reference faulty run never exercised %s", c.name)
		}
	}
	if want.NotFound != 0 {
		t.Fatalf("%d NotFound calls escaped the recovery machinery", want.NotFound)
	}
	if len(want.Snapshots) == 0 || want.RecoveryHist.N == 0 {
		t.Fatalf("faulty reference run captured no telemetry: %d frames, recovery hist N %d",
			len(want.Snapshots), want.RecoveryHist.N)
	}
	for _, shards := range []int{3, 8} {
		got, err := RunSharded(cfg, slots, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: faulty metrics diverged from single-shard run\nwant %+v\ngot  %+v",
				shards, want, got)
		}
	}
}

// TestAckRetransmissionRecoversLostUpdates checks the acked exchange does
// its job: with a retry budget, almost every lost update is retransmitted
// successfully before the next call, so far fewer pages miss the nominal
// plan than with fire-and-forget updates under the same loss.
func TestAckRetransmissionRecoversLostUpdates(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	cfg.Terminals = 4
	cfg.Faults.UpdateLoss = 0.4

	fireAndForget, err := Run(cfg, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	acked := cfg
	acked.Faults.UpdateRetries = 4
	got, err := Run(acked, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Retransmissions == 0 {
		t.Fatal("no retransmissions despite 40% update loss and a retry budget")
	}
	if got.Acks == 0 || got.AckBytes == 0 {
		t.Errorf("acked exchange produced no acks: %d acks, %d bytes", got.Acks, got.AckBytes)
	}
	// With P(all 5 transmissions lost) = 0.4^5 ≈ 1%, desync episodes are
	// ~40x rarer than fire-and-forget's 40%: the fallback rate must drop
	// by a wide margin.
	ffRate := float64(fireAndForget.FallbackCalls) / float64(fireAndForget.Calls)
	ackRate := float64(got.FallbackCalls) / float64(got.Calls)
	if ackRate > ffRate/3 {
		t.Errorf("fallback rate %v with acks not well below %v without", ackRate, ffRate)
	}
	// Retransmission recovery is much faster than waiting for the next
	// page: mean recovery latency must shrink.
	if fireAndForget.Recovery.N() == 0 || got.Recovery.N() == 0 {
		t.Fatal("no recovery episodes recorded")
	}
	if got.Recovery.Mean() >= fireAndForget.Recovery.Mean() {
		t.Errorf("mean recovery latency %v slots with acks not below %v without",
			got.Recovery.Mean(), fireAndForget.Recovery.Mean())
	}
}

// TestHLROutageDefersRegistrations checks outage windows: updates arriving
// while the HLR is down are counted and not applied, retransmission keeps
// trying past short windows, and the system recovers afterwards.
func TestHLROutageDefersRegistrations(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.3, 0.02, 2, 2)
	cfg.Terminals = 4
	cfg.Faults.Outages = []Outage{{Start: 1_000, End: 3_000}}
	m, err := Run(cfg, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.OutageDeferred == 0 {
		t.Fatal("no deferred registrations despite a 2000-slot outage")
	}
	if m.LostUpdates != 0 {
		t.Errorf("outage run lost %d updates with zero loss probability", m.LostUpdates)
	}
	if m.NotFound != 0 {
		t.Errorf("%d unresolved calls", m.NotFound)
	}
	if m.Recovery.N() == 0 {
		t.Error("no recovery episodes despite outage-deferred registrations")
	}

	// With acked updates, the terminal notices the outage (no ack) and
	// retransmits; windows shorter than the backoff horizon are ridden out.
	acked := cfg
	acked.Faults.UpdateRetries = 8
	am, err := Run(acked, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if am.Retransmissions == 0 {
		t.Error("no retransmissions despite an outage and a retry budget")
	}
	if am.OutageDeferred <= m.OutageDeferred {
		t.Errorf("retransmissions into the outage should raise deferred registrations: %d vs %d",
			am.OutageDeferred, m.OutageDeferred)
	}
}

// TestPollReplyLossRePollsAndDrops checks the downlink/uplink paging loss
// modes: lost polls and replies trigger recovery rounds, and a hostile
// loss rate with a tight budget produces dropped calls — cleanly counted,
// never NotFound.
func TestPollReplyLossRePollsAndDrops(t *testing.T) {
	cfg := baseConfig(chain.TwoDimExact, 0.1, 0.02, 2, 3)
	cfg.Terminals = 4
	clean, err := Run(cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	lossy := cfg
	lossy.Faults.PollLoss = 0.3
	lossy.Faults.ReplyLoss = 0.3
	m, err := Run(lossy, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.LostPolls == 0 || m.LostReplies == 0 {
		t.Fatalf("loss modes not exercised: %d lost polls, %d lost replies",
			m.LostPolls, m.LostReplies)
	}
	if m.RePolls == 0 {
		t.Error("no recovery rounds despite lost polls and replies")
	}
	// Updates are reliable here, so the nominal plan always contains the
	// terminal: no drift-driven fallbacks.
	if m.FallbackCalls != 0 {
		t.Errorf("%d fallback calls without update loss", m.FallbackCalls)
	}
	if m.NotFound != 0 {
		t.Errorf("%d unresolved calls", m.NotFound)
	}
	if int64(m.Delay.N())+m.DroppedCalls != m.Calls {
		t.Errorf("delay samples %d + dropped %d != calls %d",
			m.Delay.N(), m.DroppedCalls, m.Calls)
	}
	if m.Delay.Mean() <= clean.Delay.Mean() {
		t.Errorf("mean delay %v under paging loss not above clean %v",
			m.Delay.Mean(), clean.Delay.Mean())
	}

	// Hostile loss with a minimal retry budget must drop calls.
	hostile := cfg
	hostile.Faults.PollLoss = 0.9
	hostile.Faults.ReplyLoss = 0.9
	hostile.Faults.PageRetries = 2
	hm, err := Run(hostile, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if hm.DroppedCalls == 0 {
		t.Fatal("no dropped calls at 90% paging loss with a 2-round budget")
	}
	if hm.NotFound != 0 {
		t.Errorf("%d unresolved calls surfaced as NotFound instead of DroppedCalls", hm.NotFound)
	}
	if int64(hm.Delay.N())+hm.DroppedCalls != hm.Calls {
		t.Errorf("delay samples %d + dropped %d != calls %d",
			hm.Delay.N(), hm.DroppedCalls, hm.Calls)
	}
}

// TestFaultPlanValidation is the table-driven error-path coverage for
// malformed fault configurations.
func TestFaultPlanValidation(t *testing.T) {
	good := baseConfig(chain.OneDim, 0.1, 0.1, 1, 1)
	good.Terminals = 2
	for _, tc := range []struct {
		name   string
		mutate func(*FaultPlan)
		want   string
	}{
		{"negative update loss", func(f *FaultPlan) { f.UpdateLoss = -0.1 }, "update loss"},
		{"update loss of one", func(f *FaultPlan) { f.UpdateLoss = 1.0 }, "update loss"},
		{"poll loss above one", func(f *FaultPlan) { f.PollLoss = 1.5 }, "poll loss"},
		{"negative reply loss", func(f *FaultPlan) { f.ReplyLoss = -2 }, "reply loss"},
		{"negative update retries", func(f *FaultPlan) { f.UpdateRetries = -1 }, "retry budget"},
		{"overflowing update retries", func(f *FaultPlan) { f.UpdateRetries = 64 }, "retry budget"},
		{"negative ack timeout", func(f *FaultPlan) { f.AckTimeout = -5 }, "ack timeout"},
		{"negative page retries", func(f *FaultPlan) { f.PageRetries = -2 }, "paging retry budget"},
		{"page retries beyond slot ticks", func(f *FaultPlan) { f.PageRetries = SlotTicks }, "polling ticks"},
		{"inverted outage window", func(f *FaultPlan) { f.Outages = []Outage{{Start: 9, End: 3}} }, "inverted"},
		{"empty outage window", func(f *FaultPlan) { f.Outages = []Outage{{Start: 5, End: 5}} }, "inverted"},
		{"negative outage start", func(f *FaultPlan) { f.Outages = []Outage{{Start: -1, End: 4}} }, "negative slot"},
		{"second window malformed", func(f *FaultPlan) {
			f.Outages = []Outage{{Start: 0, End: 10}, {Start: 20, End: 15}}
		}, "inverted"},
	} {
		cfg := good
		tc.mutate(&cfg.Faults)
		_, err := Run(cfg, 100)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The good config itself must pass, so the cases above fail for their
	// stated reason and not a latent one.
	if _, err := Run(good, 100); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

// TestExplicitZeroFaultKnobs is the regression for the withDefaults fix:
// a zero AckTimeout/PageRetries means "unset" and takes the default, so a
// caller who wants a literal zero says so with the ExplicitZero sentinel —
// previously indistinguishable and silently overwritten.
func TestExplicitZeroFaultKnobs(t *testing.T) {
	lossy := func() Config {
		cfg := baseConfig(chain.TwoDimExact, 0.2, 0.05, 2, 3)
		cfg.Terminals = 8
		cfg.Faults = FaultPlan{PollLoss: 0.4}
		return cfg
	}

	// An unset budget takes the default and the recovery rounds absorb
	// the injected poll losses; an explicit zero budget drops every call
	// the nominal plan misses. The two runs must actually diverge, or the
	// sentinel is being folded into the default again.
	unset := lossy()
	withDefault, err := Run(unset, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	explicit := lossy()
	explicit.Faults.PageRetries = ExplicitZero
	withZero, err := Run(explicit, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if withDefault.DroppedCalls != 0 {
		t.Errorf("default retry budget dropped %d calls", withDefault.DroppedCalls)
	}
	if withZero.DroppedCalls == 0 {
		t.Error("explicit zero retry budget dropped no calls: sentinel ignored")
	}

	// An explicitly zero ack timeout is fine while updates are
	// fire-and-forget, and rejected once the acked exchange needs a
	// timer.
	fire := lossy()
	fire.Faults.AckTimeout = ExplicitZero
	if _, err := Run(fire, 100); err != nil {
		t.Errorf("explicit zero ack timeout without retries rejected: %v", err)
	}
	acked := lossy()
	acked.Faults.AckTimeout = ExplicitZero
	acked.Faults.UpdateRetries = 2
	if _, err := Run(acked, 100); err == nil {
		t.Error("explicit zero ack timeout with retries accepted")
	} else if !strings.Contains(err.Error(), "ack timeout") {
		t.Errorf("error %q does not mention the ack timeout", err)
	}
}
