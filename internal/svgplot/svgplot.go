// Package svgplot renders simple line charts as standalone SVG documents,
// used by cmd/paperfigs to emit graphical versions of the paper's figures
// (cost curves over log-scaled probability axes). It deliberately supports
// only what those figures need: multiple named series, optional log-10
// x-axis, automatic ticks, and a legend.
package svgplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot is a line chart under construction. The zero value plus a title is
// usable; add series with Line and render with WriteSVG.
type Plot struct {
	// Title, XLabel and YLabel annotate the chart.
	Title, XLabel, YLabel string
	// LogX plots the x-axis on a log-10 scale (all x must be positive).
	LogX bool
	// Width and Height are the pixel dimensions; 0 selects 720×480.
	Width, Height int

	series []series
}

type series struct {
	name string
	xs   []float64
	ys   []float64
}

// palette holds distinguishable line colors, cycled by series order.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Line adds a named series. xs and ys must have equal nonzero length.
func (p *Plot) Line(name string, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("svgplot: series %q has %d x and %d y points", name, len(xs), len(ys))
	}
	for i, x := range xs {
		if p.LogX && x <= 0 {
			return fmt.Errorf("svgplot: series %q has non-positive x=%v on a log axis", name, x)
		}
		if math.IsNaN(x) || math.IsNaN(ys[i]) || math.IsInf(x, 0) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("svgplot: series %q has a non-finite point", name)
		}
	}
	cx := make([]float64, len(xs))
	cy := make([]float64, len(ys))
	copy(cx, xs)
	copy(cy, ys)
	p.series = append(p.series, series{name: name, xs: cx, ys: cy})
	return nil
}

const (
	marginLeft   = 64.0
	marginRight  = 140.0
	marginTop    = 40.0
	marginBottom = 52.0
)

// WriteSVG renders the chart.
func (p *Plot) WriteSVG(w io.Writer) error {
	if len(p.series) == 0 {
		return errors.New("svgplot: no series")
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // cost axes start at 0, like the paper's
	for _, s := range p.series {
		for i := range s.xs {
			x := s.xs[i]
			if p.LogX {
				x = math.Log10(x)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	ymax *= 1.05 // headroom

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	px := func(x float64) float64 {
		if p.LogX {
			x = math.Log10(x)
		}
		return marginLeft + (x-xmin)/(xmax-xmin)*plotW
	}
	py := func(y float64) float64 {
		return marginTop + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%g" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(p.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Y ticks: five divisions.
	for i := 0; i <= 5; i++ {
		y := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc" stroke-dasharray="3,3"/>`+"\n",
			marginLeft, py(y), marginLeft+plotW, py(y))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%.3g</text>`+"\n",
			marginLeft-6, py(y)+4, y)
	}
	// X ticks: decades when log, six divisions otherwise.
	if p.LogX {
		for e := math.Floor(xmin); e <= math.Ceil(xmax); e++ {
			x := math.Pow(10, e)
			if math.Log10(x) < xmin-1e-9 || math.Log10(x) > xmax+1e-9 {
				continue
			}
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc" stroke-dasharray="3,3"/>`+"\n",
				px(x), marginTop, px(x), marginTop+plotH)
			fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`+"\n",
				px(x), marginTop+plotH+16, x)
		}
	} else {
		for i := 0; i <= 6; i++ {
			lx := xmin + (xmax-xmin)*float64(i)/6
			fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%.3g</text>`+"\n",
				marginLeft+plotW*float64(i)/6, marginTop+plotH+16, lx)
		}
	}
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-10, escape(p.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(p.YLabel))

	// Series.
	for i, s := range p.series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.xs {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.xs[j]), py(s.ys[j])))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for j := range s.xs {
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`+"\n",
				px(s.xs[j]), py(s.ys[j]), color)
		}
		// Legend entry.
		ly := marginTop + 18*float64(i)
		lx := marginLeft + plotW + 14
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+22, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+28, ly+4, escape(s.name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
