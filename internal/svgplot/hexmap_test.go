package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestHexMapWellFormed(t *testing.T) {
	var buf bytes.Buffer
	// d=4, m=2: rings 0-1 in cycle 1, rings 2-4 in cycle 2.
	if err := HexMap(&buf, "residing area d=4, m=2", 4, []int{0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	out := buf.String()
	// One polygon per cell of the disk.
	if got, want := strings.Count(out, "<polygon"), grid.TwoDimHex.DiskSize(4); got != want {
		t.Errorf("%d polygons, want %d", got, want)
	}
	if !strings.Contains(out, "cycle 1") || !strings.Contains(out, "cycle 2") {
		t.Error("legend incomplete")
	}
}

func TestHexMapSingleCell(t *testing.T) {
	var buf bytes.Buffer
	if err := HexMap(&buf, "d=0", 0, []int{0}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<polygon"); got != 1 {
		t.Errorf("%d polygons", got)
	}
}

func TestHexMapErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := HexMap(&buf, "x", -1, nil); err == nil {
		t.Error("negative d accepted")
	}
	if err := HexMap(&buf, "x", 2, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := HexMap(&buf, "x", 1, []int{0, -1}); err == nil {
		t.Error("negative group accepted")
	}
}
