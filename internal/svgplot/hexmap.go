package svgplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/grid"
)

// groupPalette colors hex-map groups (polling cycles); lighter to darker
// conveys earlier to later cycles.
var groupPalette = []string{
	"#c6dbef", "#9ecae1", "#6baed6", "#4292c6", "#2171b5", "#08519c",
	"#083b7a", "#062a5c", "#041d40", "#021126",
}

// HexMap renders a residing area of threshold distance d on the hexagonal
// grid as an SVG map, coloring each cell by the polling cycle that pages
// it. ringGroup[i] is the 0-based cycle index of ring i (as produced by
// paging.Partition or paging.Grouping); the center cell is outlined.
func HexMap(w io.Writer, title string, d int, ringGroup []int) error {
	if d < 0 {
		return fmt.Errorf("svgplot: negative distance %d", d)
	}
	if len(ringGroup) != d+1 {
		return fmt.Errorf("svgplot: %d ring groups for distance %d", len(ringGroup), d)
	}
	groups := 0
	for i, g := range ringGroup {
		if g < 0 {
			return fmt.Errorf("svgplot: ring %d has negative group", i)
		}
		if g+1 > groups {
			groups = g + 1
		}
	}
	if groups == 0 {
		return errors.New("svgplot: no groups")
	}

	const size = 16.0 // hex circumradius in px
	// Pointy-top axial → pixel.
	toXY := func(h grid.Hex) (float64, float64) {
		x := size * math.Sqrt(3) * (float64(h.Q) + float64(h.R)/2)
		y := size * 1.5 * float64(h.R)
		return x, y
	}
	span := size * math.Sqrt(3) * (float64(d) + 1.5)
	width := int(2*span) + 40
	height := int(size*3*(float64(d)+1.5)) + 70
	cx := float64(width) / 2
	cy := float64(height)/2 + 12

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%g" y="20" font-family="sans-serif" font-size="14" font-weight="bold" text-anchor="middle">%s</text>`+"\n",
		cx, escape(title))

	hexPath := func(x, y float64) string {
		var pts []string
		for i := 0; i < 6; i++ {
			a := math.Pi / 180 * (60*float64(i) - 30) // pointy-top
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", x+size*math.Cos(a), y+size*math.Sin(a)))
		}
		return strings.Join(pts, " ")
	}

	for _, cell := range grid.HexDisk(grid.Hex{}, d) {
		x, y := toXY(cell)
		g := ringGroup[cell.Ring()]
		color := groupPalette[g%len(groupPalette)]
		stroke := "#666"
		sw := 0.8
		if cell == (grid.Hex{}) {
			stroke, sw = "#d62728", 2.5
		}
		fmt.Fprintf(&sb, `<polygon points="%s" fill="%s" stroke="%s" stroke-width="%g"/>`+"\n",
			hexPath(cx+x, cy+y), color, stroke, sw)
	}

	// Legend: one swatch per cycle, bottom row.
	for g := 0; g < groups; g++ {
		lx := 20 + float64(g)*92
		ly := float64(height) - 18
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="14" height="14" fill="%s" stroke="#666"/>`+"\n",
			lx, ly-11, groupPalette[g%len(groupPalette)])
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">cycle %d</text>`+"\n",
			lx+18, ly, g+1)
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
