package svgplot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func validPlot(t *testing.T) *Plot {
	t.Helper()
	p := &Plot{Title: "Cost vs q", XLabel: "q", YLabel: "C_T", LogX: true}
	if err := p.Line("m=1", []float64{0.001, 0.01, 0.1}, []float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := p.Line("m=2", []float64{0.001, 0.01, 0.1}, []float64{0.05, 0.1, 0.15}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := validPlot(t).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v\n%s", err, buf.String())
		}
	}
	out := buf.String()
	if c := strings.Count(out, "<polyline"); c != 2 {
		t.Errorf("%d polylines, want 2", c)
	}
	for _, want := range []string{"Cost vs q", "m=1", "m=2", "<svg", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLogTicksAreDecades(t *testing.T) {
	var buf bytes.Buffer
	if err := validPlot(t).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, tick := range []string{">0.001<", ">0.01<", ">0.1<"} {
		if !strings.Contains(out, tick) {
			t.Errorf("missing decade tick %s", tick)
		}
	}
}

func TestLinearAxis(t *testing.T) {
	p := &Plot{Title: "linear"}
	if err := p.Line("a", []float64{0, 1, 2}, []float64{1, 4, 9}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<polyline") {
		t.Error("no polyline")
	}
}

func TestLineValidation(t *testing.T) {
	p := &Plot{LogX: true}
	if err := p.Line("bad", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := p.Line("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := p.Line("bad", []float64{0}, []float64{1}); err == nil {
		t.Error("x=0 on log axis accepted")
	}
	if err := p.Line("bad", []float64{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if err := p.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty plot rendered")
	}
}

func TestEscaping(t *testing.T) {
	p := &Plot{Title: `a<b & "c"`}
	if err := p.Line("s<1>", []float64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `a<b`) || strings.Contains(out, "s<1>") {
		t.Error("unescaped markup in output")
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed: %v", err)
		}
	}
}

func TestDegenerateRanges(t *testing.T) {
	// Single x value and constant y must not divide by zero.
	p := &Plot{}
	if err := p.Line("flat", []float64{5}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN coordinates in output")
	}
}

func TestCustomSize(t *testing.T) {
	p := &Plot{Width: 300, Height: 200}
	if err := p.Line("a", []float64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="300" height="200"`) {
		t.Error("custom size ignored")
	}
}
