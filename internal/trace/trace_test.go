package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/paging"
)

func genValid(t *testing.T, kind grid.Kind, slots int64) *Trace {
	t.Helper()
	tr, err := Generate(kind, chain.Params{Q: 0.1, C: 0.02}, slots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	return tr
}

func TestGenerateEventRates(t *testing.T) {
	tr, err := Generate(grid.TwoDimHex, chain.Params{Q: 0.2, C: 0.05}, 500_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var moves, calls int
	for _, e := range tr.Events {
		if e.Kind == Move {
			moves++
		} else {
			calls++
		}
	}
	if rate := float64(moves) / 500_000; math.Abs(rate-0.2) > 0.005 {
		t.Errorf("move rate %v", rate)
	}
	if rate := float64(calls) / 500_000; math.Abs(rate-0.05) > 0.005 {
		t.Errorf("call rate %v", rate)
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, kind := range []grid.Kind{grid.OneDim, grid.TwoDimHex} {
		genValid(t, kind, 50_000)
	}
	if _, err := Generate(grid.OneDim, chain.Params{Q: 2}, 100, 0); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Generate(grid.OneDim, chain.Params{Q: 0.1}, 0, 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	for _, kind := range []grid.Kind{grid.OneDim, grid.TwoDimHex} {
		in := genValid(t, kind, 20_000)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%v: CSV round trip mismatch (%d vs %d events)", kind, len(in.Events), len(out.Events))
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	for _, kind := range []grid.Kind{grid.OneDim, grid.TwoDimHex} {
		in := genValid(t, kind, 20_000)
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%v: JSONL round trip mismatch", kind)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"nonsense\n",
		"#trace,3d,100\nslot,kind,q,r\n",
		"#trace,2d,abc\nslot,kind,q,r\n",
		"#trace,2d,100\nslot,kind,q,r\n1,teleport,0,0\n",
		"#trace,2d,100\nslot,kind,q,r\n1,move,5,5\n", // non-adjacent move
		"#trace,2d,100\nslot,kind,q,r\n1,move\n",
		"#trace,2d,100\nslot,kind,q,r\nx,move,1,0\n",
		"#trace,2d,100\nslot,kind,q,r\n1,move,y,0\n",
		"#trace,2d,100\nslot,kind,q,r\n1,move,1,z\n",
		"#trace,2d,5\nslot,kind,q,r\n9,move,1,0\n", // slot out of range
	}
	for i, s := range bad {
		if _, err := ReadCSV(bytes.NewBufferString(s)); err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := &Trace{Grid: grid.TwoDimHex, Slots: 100, Events: []Event{
		{Slot: 5, Kind: Move, Cell: grid.Hex{Q: 1}},
		{Slot: 3, Kind: Move, Cell: grid.Hex{Q: 2}},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order events accepted")
	}
	tr = &Trace{Grid: grid.TwoDimHex, Slots: 100, Events: []Event{
		{Slot: 5, Kind: Call, Cell: grid.Hex{Q: 1}},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("call at wrong position accepted")
	}
	tr = &Trace{Grid: grid.OneDim, Slots: 100, Events: []Event{
		{Slot: 5, Kind: Move, Cell: grid.Hex{Q: 0, R: 1}},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("off-line move accepted in 1-D trace")
	}
	tr = &Trace{Grid: grid.OneDim, Slots: 0}
	if err := tr.Validate(); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestReplayMatchesAnalysis(t *testing.T) {
	// A long generated trace replayed at (d, m) must realize costs close
	// to the analytical C_T — this closes the loop generator → codec →
	// replay → analysis.
	params := chain.Params{Q: 0.05, C: 0.01}
	costs := core.Costs{Update: 100, Poll: 10}
	tr, err := Generate(grid.TwoDimHex, params, 3_000_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	const d, m = 3, 2
	got, err := Replay(tr, d, m, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ana := core.Config{Model: chain.TwoDimExact, Params: params, Costs: costs, MaxDelay: m}
	want, err := ana.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.TotalCost-want.Total) / want.Total; rel > 0.03 {
		t.Errorf("replayed %v vs analytical %v", got.TotalCost, want.Total)
	}
}

func TestReplaySurvivesCodecRoundTrip(t *testing.T) {
	tr := genValid(t, grid.OneDim, 200_000)
	costs := core.Costs{Update: 50, Poll: 5}
	direct, err := Replay(tr, 2, 1, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(decoded, 2, 1, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct != replayed {
		t.Errorf("replay differs after codec round trip:\n%+v\n%+v", direct, replayed)
	}
}

func TestReplayWithDPScheme(t *testing.T) {
	tr := genValid(t, grid.TwoDimHex, 100_000)
	costs := core.Costs{Update: 100, Poll: 10}
	if _, err := Replay(tr, 4, 2, costs, paging.OptimalDP{}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	tr := genValid(t, grid.OneDim, 1000)
	costs := core.Costs{Update: 1, Poll: 1}
	if _, err := Replay(tr, -1, 1, costs, nil); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Replay(tr, 1, 1, core.Costs{Update: -1}, nil); err == nil {
		t.Error("bad costs accepted")
	}
	broken := &Trace{Grid: grid.OneDim, Slots: 10, Events: []Event{{Slot: 99, Kind: Move}}}
	if _, err := Replay(broken, 1, 1, costs, nil); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestKindString(t *testing.T) {
	if Move.String() != "move" || Call.String() != "call" || Kind(7).String() != "Kind(7)" {
		t.Error("kind names wrong")
	}
}
