// Package trace generates, serializes and replays mobility/call-arrival
// traces. Real PCN subscriber traces from the paper's era do not exist in
// public form, so the generator synthesizes traces from the paper's own
// random-walk model (DESIGN.md's substitution rule); the CSV and JSONL
// codecs let experiments be archived and replayed deterministically, and
// Replay evaluates any threshold/delay operating point against a recorded
// trace instead of a live RNG.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/paging"
	"repro/internal/stats"
)

// Kind tags an event.
type Kind uint8

const (
	// Move records that the terminal moved to Cell during Slot.
	Move Kind = iota
	// Call records an incoming call during Slot (Cell is the terminal's
	// position at that moment).
	Call
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Move:
		return "move"
	case Call:
		return "call"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record. Slots without movement or calls produce no
// events. Cells use hex axial coordinates; 1-D traces keep R = 0.
type Event struct {
	Slot int64
	Kind Kind
	Cell grid.Hex
}

// Trace is a complete recorded workload.
type Trace struct {
	// Grid is the geometry the trace was recorded on.
	Grid grid.Kind
	// Slots is the workload length (events are sparse within it).
	Slots int64
	// Events, ordered by slot.
	Events []Event
}

// Validate checks internal consistency: ordered slots within range, moves
// between adjacent cells starting from the origin.
func (t *Trace) Validate() error {
	if t.Slots <= 0 {
		return errors.New("trace: non-positive slot count")
	}
	pos := grid.Hex{}
	last := int64(-1)
	for i, e := range t.Events {
		if e.Slot < 0 || e.Slot >= t.Slots {
			return fmt.Errorf("trace: event %d slot %d outside [0,%d)", i, e.Slot, t.Slots)
		}
		if e.Slot < last {
			return fmt.Errorf("trace: event %d out of order", i)
		}
		if e.Slot == last {
			return fmt.Errorf("trace: two events in slot %d (moves and calls are disjoint)", e.Slot)
		}
		last = e.Slot
		switch e.Kind {
		case Move:
			if pos.Dist(e.Cell) != 1 {
				return fmt.Errorf("trace: event %d moves %v→%v (distance %d)", i, pos, e.Cell, pos.Dist(e.Cell))
			}
			if t.Grid == grid.OneDim && e.Cell.R != 0 {
				return fmt.Errorf("trace: event %d leaves the line: %v", i, e.Cell)
			}
			pos = e.Cell
		case Call:
			if e.Cell != pos {
				return fmt.Errorf("trace: event %d call at %v but terminal at %v", i, e.Cell, pos)
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// Generate synthesizes a trace of the paper's workload model: per slot,
// a call with probability c, otherwise a move with probability q.
func Generate(kind grid.Kind, params chain.Params, slots int64, seed uint64) (*Trace, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if slots <= 0 {
		return nil, errors.New("trace: slots must be positive")
	}
	rng := stats.NewRNG(seed)
	moveProb := 0.0
	if params.Q > 0 {
		moveProb = params.Q / (1 - params.C)
	}
	tr := &Trace{Grid: kind, Slots: slots}
	pos := grid.Hex{}
	for s := int64(0); s < slots; s++ {
		switch {
		case rng.Bernoulli(params.C):
			tr.Events = append(tr.Events, Event{Slot: s, Kind: Call, Cell: pos})
		case rng.Bernoulli(moveProb):
			if kind == grid.OneDim {
				if rng.Intn(2) == 0 {
					pos.Q--
				} else {
					pos.Q++
				}
			} else {
				pos = pos.Neighbor(rng.Intn(6))
			}
			tr.Events = append(tr.Events, Event{Slot: s, Kind: Move, Cell: pos})
		}
	}
	return tr, nil
}

// Result reports a replay, in the same units as core.Breakdown.
type Result struct {
	Slots                             int64
	Updates, Calls, PolledCells       int64
	UpdateCost, PagingCost, TotalCost float64
	Delay                             stats.Accumulator
}

// Replay runs the paper's mechanism with threshold d and delay bound m over
// a recorded trace and returns the realized costs. scheme nil means SDF;
// probability-aware schemes receive the analytical stationary distribution
// for the trace's grid (exact 2-D model on the hex grid).
func Replay(tr *Trace, d, m int, costs core.Costs, scheme paging.Scheme) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if d < 0 {
		return Result{}, fmt.Errorf("trace: negative threshold %d", d)
	}
	if err := costs.Validate(); err != nil {
		return Result{}, err
	}
	if scheme == nil {
		scheme = paging.SDF{}
	}
	rings := tr.Grid.RingSizes(d)
	var pi []float64
	if _, needs := scheme.(paging.OptimalDP); needs {
		// A recorded trace carries no (q, c) to derive a stationary
		// distribution from; give probability-aware schemes a neutral
		// uniform prior. Callers wanting a model-informed partition can
		// precompute it and pass a fixed scheme instead.
		pi = make([]float64, d+1)
		for i := range pi {
			pi[i] = 1 / float64(d+1)
		}
	}
	part := scheme.Partition(rings, pi, m)
	w := part.CumulativeCells()
	ringSub := make([]int, d+1)
	for j, s := range part {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			ringSub[i] = j
		}
	}

	res := Result{Slots: tr.Slots}
	center := grid.Hex{}
	for _, e := range tr.Events {
		switch e.Kind {
		case Call:
			j := ringSub[e.Cell.Dist(center)]
			res.Calls++
			res.PolledCells += int64(w[j])
			res.Delay.Add(float64(j + 1))
			center = e.Cell
		case Move:
			if e.Cell.Dist(center) > d {
				res.Updates++
				center = e.Cell
			}
		}
	}
	res.UpdateCost = float64(res.Updates) * costs.Update / float64(tr.Slots)
	res.PagingCost = float64(res.PolledCells) * costs.Poll / float64(tr.Slots)
	res.TotalCost = res.UpdateCost + res.PagingCost
	return res, nil
}

// --- CSV codec -----------------------------------------------------------

// WriteCSV writes "slot,kind,q,r" records preceded by a metadata header.
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	kind := "2d"
	if tr.Grid == grid.OneDim {
		kind = "1d"
	}
	if _, err := fmt.Fprintf(bw, "#trace,%s,%d\n", kind, tr.Slots); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "slot,kind,q,r"); err != nil {
		return err
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", e.Slot, e.Kind, e.Cell.Q, e.Cell.R); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV and validates the result.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, errors.New("trace: empty input")
	}
	head := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(head) != 3 || head[0] != "#trace" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	tr := &Trace{}
	switch head[1] {
	case "1d":
		tr.Grid = grid.OneDim
	case "2d":
		tr.Grid = grid.TwoDimHex
	default:
		return nil, fmt.Errorf("trace: unknown grid %q", head[1])
	}
	slots, err := strconv.ParseInt(head[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad slot count: %w", err)
	}
	tr.Slots = slots
	if !sc.Scan() {
		return nil, errors.New("trace: missing column header")
	}
	line := 2
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: %d fields", line, len(f))
		}
		slot, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		var kind Kind
		switch f[1] {
		case "move":
			kind = Move
		case "call":
			kind = Call
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, f[1])
		}
		q, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rr, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, Event{Slot: slot, Kind: kind, Cell: grid.Hex{Q: q, R: rr}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// --- JSONL codec ---------------------------------------------------------

type jsonMeta struct {
	Grid  string `json:"grid"`
	Slots int64  `json:"slots"`
}

type jsonEvent struct {
	Slot int64  `json:"slot"`
	Kind string `json:"kind"`
	Q    int    `json:"q"`
	R    int    `json:"r"`
}

// WriteJSONL writes one metadata object followed by one JSON object per
// event.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	kind := "2d"
	if tr.Grid == grid.OneDim {
		kind = "1d"
	}
	if err := enc.Encode(jsonMeta{Grid: kind, Slots: tr.Slots}); err != nil {
		return err
	}
	for _, e := range tr.Events {
		if err := enc.Encode(jsonEvent{Slot: e.Slot, Kind: e.Kind.String(), Q: e.Cell.Q, R: e.Cell.R}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses the format written by WriteJSONL and validates the
// result.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var meta jsonMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("trace: metadata: %w", err)
	}
	tr := &Trace{Slots: meta.Slots}
	switch meta.Grid {
	case "1d":
		tr.Grid = grid.OneDim
	case "2d":
		tr.Grid = grid.TwoDimHex
	default:
		return nil, fmt.Errorf("trace: unknown grid %q", meta.Grid)
	}
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		var kind Kind
		switch je.Kind {
		case "move":
			kind = Move
		case "call":
			kind = Call
		default:
			return nil, fmt.Errorf("trace: unknown kind %q", je.Kind)
		}
		tr.Events = append(tr.Events, Event{Slot: je.Slot, Kind: kind, Cell: grid.Hex{Q: je.Q, R: je.R}})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
