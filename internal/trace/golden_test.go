package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
)

// Golden tests: the committed trace files and their replay results pin the
// codec formats and the replay semantics. If either changes, recorded
// experiments silently stop being reproducible — these tests make that a
// loud failure instead.

func TestGoldenCSVReplay(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Grid != grid.TwoDimHex || tr.Slots != 5000 || len(tr.Events) != 606 {
		t.Fatalf("golden.csv header drifted: %v slots=%d events=%d", tr.Grid, tr.Slots, len(tr.Events))
	}
	res, err := Replay(tr, 2, 2, core.Costs{Update: 100, Poll: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 47 || res.Calls != 114 || res.PolledCells != 1518 {
		t.Errorf("golden.csv replay drifted: updates=%d calls=%d cells=%d",
			res.Updates, res.Calls, res.PolledCells)
	}
	if math.Abs(res.TotalCost-3.976) > 1e-12 {
		t.Errorf("golden.csv total cost %v, want 3.976", res.TotalCost)
	}
}

func TestGoldenJSONLReplay(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Grid != grid.OneDim || tr.Slots != 5000 || len(tr.Events) != 1247 {
		t.Fatalf("golden.jsonl header drifted: %v slots=%d events=%d", tr.Grid, tr.Slots, len(tr.Events))
	}
	res, err := Replay(tr, 3, 0, core.Costs{Update: 50, Poll: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 36 || res.Calls != 250 || res.PolledCells != 726 {
		t.Errorf("golden.jsonl replay drifted: updates=%d calls=%d cells=%d",
			res.Updates, res.Calls, res.PolledCells)
	}
	if math.Abs(res.TotalCost-1.086) > 1e-12 {
		t.Errorf("golden.jsonl total cost %v, want 1.086", res.TotalCost)
	}
}

// TestGoldenGeneratorStability pins the deterministic generator itself: the
// same (params, slots, seed) must regenerate the committed traces exactly.
func TestGoldenGeneratorStability(t *testing.T) {
	tr, err := Generate(grid.TwoDimHex, paramsOf(0.1, 0.02), 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join("testdata", "golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != len(want.Events) {
		t.Fatalf("regenerated %d events, golden has %d", len(tr.Events), len(want.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != want.Events[i] {
			t.Fatalf("event %d drifted: %+v vs %+v", i, tr.Events[i], want.Events[i])
		}
	}
}

func paramsOf(q, c float64) chain.Params { return chain.Params{Q: q, C: c} }
