package trace

import (
	"bytes"
	"testing"

	"repro/internal/chain"
	"repro/internal/grid"
)

// FuzzReadCSV checks the CSV parser never panics on arbitrary input and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	tr, err := Generate(grid.TwoDimHex, chain.Params{Q: 0.2, C: 0.05}, 500, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("#trace,2d,100\nslot,kind,q,r\n1,move,1,0\n")
	f.Add("#trace,1d,10\nslot,kind,q,r\n0,call,0,0\n")
	f.Add("#trace,2d,-5\nslot,kind,q,r\n")
	f.Fuzz(func(t *testing.T, s string) {
		in, err := ReadCSV(bytes.NewBufferString(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, in); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again.Events) != len(in.Events) || again.Slots != in.Slots || again.Grid != in.Grid {
			t.Fatal("round trip changed the trace")
		}
	})
}

// FuzzReadJSONL is the JSONL analogue.
func FuzzReadJSONL(f *testing.F) {
	tr, err := Generate(grid.OneDim, chain.Params{Q: 0.2, C: 0.05}, 300, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"grid":"2d","slots":10}`)
	f.Add(`{"grid":"xyz","slots":10}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, s string) {
		in, err := ReadJSONL(bytes.NewBufferString(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, in); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		if _, err := ReadJSONL(&out); err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
	})
}
