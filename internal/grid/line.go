package grid

import "fmt"

// Line is a cell position on the one-dimensional grid: cells are indexed by
// consecutive integers, the center cell of the coverage area is 0.
type Line int

// Neighbors returns the two adjacent cells.
func (l Line) Neighbors() [2]Line { return [2]Line{l - 1, l + 1} }

// Neighbor returns the i-th of the two adjacent cells (0 = left, 1 = right).
func (l Line) Neighbor(i int) Line {
	if i == 0 {
		return l - 1
	}
	return l + 1
}

// Dist returns the distance (in rings) between l and o.
func (l Line) Dist(o Line) int { return abs(int(l) - int(o)) }

// Ring returns the ring index of l relative to the center cell 0.
func (l Line) Ring() int { return abs(int(l)) }

// String formats the cell index.
func (l Line) String() string { return fmt.Sprintf("%d", int(l)) }

// LineRing enumerates the cells of ring i around center: {center} for i = 0
// and {center−i, center+i} otherwise.
func LineRing(center Line, i int) []Line {
	if i < 0 {
		panic(fmt.Sprintf("grid: negative ring index %d", i))
	}
	if i == 0 {
		return []Line{center}
	}
	return []Line{center - Line(i), center + Line(i)}
}

// LineDisk enumerates all cells within distance d of center, ring by ring
// from the center outward. The result has exactly g(d) = 2d+1 cells.
func LineDisk(center Line, d int) []Line {
	if d < 0 {
		panic(fmt.Sprintf("grid: negative distance %d", d))
	}
	out := make([]Line, 0, OneDim.DiskSize(d))
	for i := 0; i <= d; i++ {
		out = append(out, LineRing(center, i)...)
	}
	return out
}
