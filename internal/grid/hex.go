package grid

import "fmt"

// Hex is a cell position on the two-dimensional hexagonal grid in axial
// coordinates. The center cell of the coverage area is the zero value.
//
// Axial coordinates represent a hexagon by two of the three cube
// coordinates (x, z) with the third implied (y = −x−z). Distances and
// neighbor sets below follow the standard axial-hex conventions.
type Hex struct {
	Q, R int
}

// hexDirections lists the six axial unit moves, counterclockwise.
var hexDirections = [6]Hex{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// Neighbors returns the six adjacent cells.
func (h Hex) Neighbors() [6]Hex {
	var out [6]Hex
	for i, d := range hexDirections {
		out[i] = Hex{h.Q + d.Q, h.R + d.R}
	}
	return out
}

// Neighbor returns the i-th of the six adjacent cells (0 ≤ i < 6).
func (h Hex) Neighbor(i int) Hex {
	d := hexDirections[i]
	return Hex{h.Q + d.Q, h.R + d.R}
}

// Add returns the componentwise sum h + o.
func (h Hex) Add(o Hex) Hex { return Hex{h.Q + o.Q, h.R + o.R} }

// Sub returns the componentwise difference h − o.
func (h Hex) Sub(o Hex) Hex { return Hex{h.Q - o.Q, h.R - o.R} }

// Scale returns h scaled by k.
func (h Hex) Scale(k int) Hex { return Hex{h.Q * k, h.R * k} }

// Dist returns the hex-grid distance (in rings) between h and o.
func (h Hex) Dist(o Hex) int {
	dq := h.Q - o.Q
	dr := h.R - o.R
	ds := -dq - dr
	return (abs(dq) + abs(dr) + abs(ds)) / 2
}

// Ring returns the ring index of h relative to the center cell at the
// origin; equivalently the distance to Hex{0, 0}.
func (h Hex) Ring() int { return h.Dist(Hex{}) }

// String formats the cell as "(q,r)".
func (h Hex) String() string { return fmt.Sprintf("(%d,%d)", h.Q, h.R) }

// HexRing enumerates the cells of ring i around center. Ring 0 is the
// center cell itself. The result has exactly Kind(TwoDimHex).RingSize(i)
// elements.
func HexRing(center Hex, i int) []Hex {
	if i < 0 {
		panic(fmt.Sprintf("grid: negative ring index %d", i))
	}
	if i == 0 {
		return []Hex{center}
	}
	out := make([]Hex, 0, 6*i)
	// Start i steps in direction 4 (−1, +1 scaled) and walk the six sides.
	cur := center.Add(hexDirections[4].Scale(i))
	for side := 0; side < 6; side++ {
		for step := 0; step < i; step++ {
			out = append(out, cur)
			cur = cur.Neighbor(side)
		}
	}
	return out
}

// HexDisk enumerates all cells within distance d of center, ring by ring
// from the center outward. The result has exactly g(d) = 3d(d+1)+1 cells.
func HexDisk(center Hex, d int) []Hex {
	if d < 0 {
		panic(fmt.Sprintf("grid: negative distance %d", d))
	}
	out := make([]Hex, 0, TwoDimHex.DiskSize(d))
	for i := 0; i <= d; i++ {
		out = append(out, HexRing(center, i)...)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
