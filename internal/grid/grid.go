// Package grid implements the cell geometry of a PCN coverage area as
// described in Section 2.1 of Akyildiz & Ho (SIGCOMM '95): a one-dimensional
// line of equal-length cells (two neighbors per cell) and a two-dimensional
// plane of equal-size hexagonal cells (six neighbors per cell).
//
// Distances are measured in rings: ring r_i is the set of cells exactly i
// cells away from a chosen center cell. The package provides ring sizes
// N(r_i), disk sizes g(d) (paper eq. 1), neighbor enumeration, and ring/disk
// enumeration used by the paging partitioner and the random-walk simulators.
package grid

import "fmt"

// Kind identifies one of the two mobility geometries in the paper.
type Kind int

const (
	// OneDim is the one-dimensional model: cells on a line, two
	// neighbors per cell (roads, tunnels, train lines).
	OneDim Kind = iota
	// TwoDimHex is the two-dimensional model: hexagonal cells tiling the
	// plane, six neighbors per cell (city-wide coverage).
	TwoDimHex
)

// String returns a human-readable name for the geometry kind.
func (k Kind) String() string {
	switch k {
	case OneDim:
		return "1-D"
	case TwoDimHex:
		return "2-D hex"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Degree returns the number of neighbors of every cell: 2 for the line,
// 6 for the hexagonal plane.
func (k Kind) Degree() int {
	if k == OneDim {
		return 2
	}
	return 6
}

// RingSize returns N(r_i), the number of cells in ring i around any cell.
// Ring 0 is the center cell itself.
func (k Kind) RingSize(i int) int {
	if i < 0 {
		panic(fmt.Sprintf("grid: negative ring index %d", i))
	}
	if i == 0 {
		return 1
	}
	if k == OneDim {
		return 2
	}
	return 6 * i
}

// DiskSize returns g(d), the number of cells within distance d of any cell,
// including the cell itself (paper eq. 1):
//
//	g(d) = 2d+1        for the 1-D model
//	g(d) = 3d(d+1)+1   for the 2-D model
func (k Kind) DiskSize(d int) int {
	if d < 0 {
		panic(fmt.Sprintf("grid: negative distance %d", d))
	}
	if k == OneDim {
		return 2*d + 1
	}
	return 3*d*(d+1) + 1
}

// RingSizes returns the slice [N(r_0), N(r_1), ..., N(r_d)].
func (k Kind) RingSizes(d int) []int {
	if d < 0 {
		panic(fmt.Sprintf("grid: negative distance %d", d))
	}
	sizes := make([]int, d+1)
	for i := range sizes {
		sizes[i] = k.RingSize(i)
	}
	return sizes
}

// UpProb returns p+(i): given that a terminal in ring i moves (uniformly to
// one of its neighbors), the probability the move increases its distance
// from the center (paper eq. 39 for the 2-D model). For i = 0 every move
// increases the distance, so UpProb(0) = 1.
//
// For the 2-D model the value is the ring average: individual cells in a
// ring differ (corner cells of the hexagonal ring have two outward
// neighbors on one axis), but averaged over the 6i cells of ring i exactly
// 6(2i+1) of the 36i incident half-edges lead outward.
func (k Kind) UpProb(i int) float64 {
	if i < 0 {
		panic(fmt.Sprintf("grid: negative ring index %d", i))
	}
	if i == 0 {
		return 1
	}
	if k == OneDim {
		return 0.5
	}
	return 1.0/3.0 + 1.0/(6.0*float64(i))
}

// DownProb returns p−(i): the probability a uniform neighbor move from ring
// i decreases the distance from the center (paper eq. 40). DownProb(0) = 0.
func (k Kind) DownProb(i int) float64 {
	if i < 0 {
		panic(fmt.Sprintf("grid: negative ring index %d", i))
	}
	if i == 0 {
		return 0
	}
	if k == OneDim {
		return 0.5
	}
	return 1.0/3.0 - 1.0/(6.0*float64(i))
}
