package grid

import (
	"testing"
	"testing/quick"
)

func TestLineLAStart(t *testing.T) {
	cases := []struct {
		cell  Line
		size  int
		start Line
	}{
		{0, 5, 0},
		{4, 5, 0},
		{5, 5, 5},
		{-1, 5, -5},
		{-5, 5, -5},
		{-6, 5, -10},
		{7, 1, 7},
	}
	for _, tc := range cases {
		if got := LineLAStart(tc.cell, tc.size); got != tc.start {
			t.Errorf("LineLAStart(%d, %d) = %d, want %d", tc.cell, tc.size, got, tc.start)
		}
	}
}

func TestLineLAStartPartition(t *testing.T) {
	f := func(x int16, s uint8) bool {
		size := int(s%20) + 1
		start := LineLAStart(Line(x), size)
		// The cell lies inside its segment.
		if int(x) < int(start) || int(x) >= int(start)+size {
			return false
		}
		// Every cell of the segment maps back to the same start.
		for i := 0; i < size; i++ {
			if LineLAStart(start+Line(i), size) != start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexLACenterRadiusZero(t *testing.T) {
	h := Hex{3, -5}
	if got := HexLACenter(h, 0); got != h {
		t.Errorf("radius 0: %v", got)
	}
}

func TestHexLACenterWithinRadius(t *testing.T) {
	for _, radius := range []int{1, 2, 3, 5} {
		for _, h := range HexDisk(Hex{}, 12) {
			c := HexLACenter(h, radius)
			if d := h.Dist(c); d > radius {
				t.Fatalf("radius %d: cell %v assigned to %v at distance %d", radius, h, c, d)
			}
		}
	}
}

func TestHexLACenterIdempotent(t *testing.T) {
	for _, radius := range []int{1, 2, 4} {
		for _, h := range HexDisk(Hex{}, 10) {
			c := HexLACenter(h, radius)
			if cc := HexLACenter(c, radius); cc != c {
				t.Fatalf("radius %d: center %v maps to %v", radius, c, cc)
			}
		}
	}
}

func TestHexLAClusterSizes(t *testing.T) {
	// Counting cells per center over a large disk: interior clusters must
	// have exactly g(R) cells.
	for _, radius := range []int{1, 2} {
		counts := make(map[Hex]int)
		const probe = 14
		for _, h := range HexDisk(Hex{}, probe) {
			counts[HexLACenter(h, radius)]++
		}
		want := TwoDimHex.DiskSize(radius)
		full := 0
		for c, n := range counts {
			if n > want {
				t.Errorf("radius %d: cluster %v has %d cells, max %d", radius, c, n, want)
			}
			// Clusters fully inside the probe disk must be complete.
			if c.Ring() <= probe-2*radius-1 {
				if n != want {
					t.Errorf("radius %d: interior cluster %v has %d cells, want %d", radius, c, n, want)
				}
				full++
			}
		}
		if full == 0 {
			t.Errorf("radius %d: no interior clusters probed", radius)
		}
	}
}

func TestHexLACenterLatticeProperty(t *testing.T) {
	// Centers form the lattice spanned by t1 and t2: translating a cell by
	// a basis vector translates its center likewise.
	radius := 3
	t1 := Hex{2*radius + 1, -radius}
	t2 := Hex{radius, radius + 1}
	f := func(q, r int8) bool {
		h := Hex{int(q), int(r)}
		c := HexLACenter(h, radius)
		return HexLACenter(h.Add(t1), radius) == c.Add(t1) &&
			HexLACenter(h.Add(t2), radius) == c.Add(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLAPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LineLAStart(0, 0) },
		func() { LineLAStart(3, -1) },
		func() { HexLACenter(Hex{}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
