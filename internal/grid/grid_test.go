package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if got := OneDim.String(); got != "1-D" {
		t.Errorf("OneDim.String() = %q", got)
	}
	if got := TwoDimHex.String(); got != "2-D hex" {
		t.Errorf("TwoDimHex.String() = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("Kind(99).String() = %q", got)
	}
}

func TestDegree(t *testing.T) {
	if OneDim.Degree() != 2 {
		t.Errorf("OneDim.Degree() = %d, want 2", OneDim.Degree())
	}
	if TwoDimHex.Degree() != 6 {
		t.Errorf("TwoDimHex.Degree() = %d, want 6", TwoDimHex.Degree())
	}
}

func TestRingSize(t *testing.T) {
	tests := []struct {
		kind Kind
		i    int
		want int
	}{
		{OneDim, 0, 1},
		{OneDim, 1, 2},
		{OneDim, 5, 2},
		{TwoDimHex, 0, 1},
		{TwoDimHex, 1, 6},
		{TwoDimHex, 2, 12},
		{TwoDimHex, 7, 42},
	}
	for _, tt := range tests {
		if got := tt.kind.RingSize(tt.i); got != tt.want {
			t.Errorf("%v.RingSize(%d) = %d, want %d", tt.kind, tt.i, got, tt.want)
		}
	}
}

func TestDiskSizeEquation1(t *testing.T) {
	// Paper eq. (1): g(d) = 2d+1 (1-D), 3d(d+1)+1 (2-D).
	for d := 0; d <= 50; d++ {
		if got, want := OneDim.DiskSize(d), 2*d+1; got != want {
			t.Errorf("OneDim.DiskSize(%d) = %d, want %d", d, got, want)
		}
		if got, want := TwoDimHex.DiskSize(d), 3*d*(d+1)+1; got != want {
			t.Errorf("TwoDimHex.DiskSize(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestDiskSizeIsSumOfRings(t *testing.T) {
	for _, k := range []Kind{OneDim, TwoDimHex} {
		for d := 0; d <= 40; d++ {
			sum := 0
			for i := 0; i <= d; i++ {
				sum += k.RingSize(i)
			}
			if got := k.DiskSize(d); got != sum {
				t.Errorf("%v: DiskSize(%d) = %d, sum of rings = %d", k, d, got, sum)
			}
		}
	}
}

func TestRingSizes(t *testing.T) {
	got := TwoDimHex.RingSizes(3)
	want := []int{1, 6, 12, 18}
	if len(got) != len(want) {
		t.Fatalf("RingSizes(3) len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RingSizes(3)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUpDownProbPaperEquations(t *testing.T) {
	// Paper eqs. (39)-(40): p+(i) = 1/3 + 1/6i, p−(i) = 1/3 − 1/6i.
	for i := 1; i <= 100; i++ {
		up := TwoDimHex.UpProb(i)
		down := TwoDimHex.DownProb(i)
		wantUp := 1.0/3.0 + 1.0/(6.0*float64(i))
		wantDown := 1.0/3.0 - 1.0/(6.0*float64(i))
		if math.Abs(up-wantUp) > 1e-15 {
			t.Errorf("UpProb(%d) = %v, want %v", i, up, wantUp)
		}
		if math.Abs(down-wantDown) > 1e-15 {
			t.Errorf("DownProb(%d) = %v, want %v", i, down, wantDown)
		}
	}
	// Paper Section 4.1 worked examples: ring 1 is (1/2, 1/6), ring 2 is
	// (5/12, 1/4).
	if got := TwoDimHex.UpProb(1); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("UpProb(1) = %v, want 1/2", got)
	}
	if got := TwoDimHex.DownProb(1); math.Abs(got-1.0/6.0) > 1e-15 {
		t.Errorf("DownProb(1) = %v, want 1/6", got)
	}
	if got := TwoDimHex.UpProb(2); math.Abs(got-5.0/12.0) > 1e-15 {
		t.Errorf("UpProb(2) = %v, want 5/12", got)
	}
	if got := TwoDimHex.DownProb(2); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("DownProb(2) = %v, want 1/4", got)
	}
}

func TestUpProbRingZero(t *testing.T) {
	for _, k := range []Kind{OneDim, TwoDimHex} {
		if got := k.UpProb(0); got != 1 {
			t.Errorf("%v.UpProb(0) = %v, want 1", k, got)
		}
		if got := k.DownProb(0); got != 0 {
			t.Errorf("%v.DownProb(0) = %v, want 0", k, got)
		}
	}
}

// TestUpDownProbMatchGeometry brute-forces the ring-averaged outward and
// inward move probabilities from the actual hex geometry and compares them
// with the paper's formulas.
func TestUpDownProbMatchGeometry(t *testing.T) {
	center := Hex{}
	for i := 1; i <= 12; i++ {
		ring := HexRing(center, i)
		var up, down, same int
		for _, cell := range ring {
			for _, nb := range cell.Neighbors() {
				switch d := nb.Dist(center); {
				case d == i+1:
					up++
				case d == i-1:
					down++
				case d == i:
					same++
				default:
					t.Fatalf("ring %d: neighbor of %v at distance %d", i, cell, d)
				}
			}
		}
		total := float64(6 * len(ring))
		gotUp := float64(up) / total
		gotDown := float64(down) / total
		if math.Abs(gotUp-TwoDimHex.UpProb(i)) > 1e-12 {
			t.Errorf("ring %d: geometric p+ = %v, formula = %v", i, gotUp, TwoDimHex.UpProb(i))
		}
		if math.Abs(gotDown-TwoDimHex.DownProb(i)) > 1e-12 {
			t.Errorf("ring %d: geometric p− = %v, formula = %v", i, gotDown, TwoDimHex.DownProb(i))
		}
		if up+down+same != 6*len(ring) {
			t.Errorf("ring %d: edge count mismatch", i)
		}
	}
}

func TestUpDownProbSumAtMostOne(t *testing.T) {
	f := func(raw uint8) bool {
		i := int(raw%60) + 1
		for _, k := range []Kind{OneDim, TwoDimHex} {
			s := k.UpProb(i) + k.DownProb(i)
			if s < 0 || s > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnNegative(t *testing.T) {
	cases := []func(){
		func() { OneDim.RingSize(-1) },
		func() { TwoDimHex.DiskSize(-2) },
		func() { OneDim.RingSizes(-1) },
		func() { TwoDimHex.UpProb(-1) },
		func() { TwoDimHex.DownProb(-3) },
		func() { HexRing(Hex{}, -1) },
		func() { HexDisk(Hex{}, -1) },
		func() { LineRing(0, -1) },
		func() { LineDisk(0, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
