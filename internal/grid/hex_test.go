package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHexRingSizes(t *testing.T) {
	center := Hex{}
	for i := 0; i <= 15; i++ {
		ring := HexRing(center, i)
		if got, want := len(ring), TwoDimHex.RingSize(i); got != want {
			t.Errorf("len(HexRing(%d)) = %d, want %d", i, got, want)
		}
		for _, cell := range ring {
			if d := cell.Dist(center); d != i {
				t.Errorf("ring %d contains %v at distance %d", i, cell, d)
			}
		}
	}
}

func TestHexRingNoDuplicates(t *testing.T) {
	center := Hex{3, -7}
	for i := 0; i <= 10; i++ {
		seen := make(map[Hex]bool)
		for _, cell := range HexRing(center, i) {
			if seen[cell] {
				t.Errorf("ring %d: duplicate cell %v", i, cell)
			}
			seen[cell] = true
		}
	}
}

func TestHexDiskMatchesEquation1(t *testing.T) {
	center := Hex{-2, 5}
	for d := 0; d <= 12; d++ {
		disk := HexDisk(center, d)
		if got, want := len(disk), 3*d*(d+1)+1; got != want {
			t.Errorf("len(HexDisk(%d)) = %d, want g(d)=%d", d, got, want)
		}
		seen := make(map[Hex]bool)
		for _, cell := range disk {
			if cell.Dist(center) > d {
				t.Errorf("disk %d contains %v beyond radius", d, cell)
			}
			if seen[cell] {
				t.Errorf("disk %d: duplicate %v", d, cell)
			}
			seen[cell] = true
		}
	}
}

func TestHexDiskMatchesBFS(t *testing.T) {
	// Independent enumeration: breadth-first search over neighbors.
	center := Hex{1, 1}
	const d = 8
	dist := map[Hex]int{center: 0}
	frontier := []Hex{center}
	for depth := 1; depth <= d; depth++ {
		var next []Hex
		for _, cell := range frontier {
			for _, nb := range cell.Neighbors() {
				if _, ok := dist[nb]; !ok {
					dist[nb] = depth
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	disk := HexDisk(center, d)
	if len(disk) != len(dist) {
		t.Fatalf("HexDisk has %d cells, BFS found %d", len(disk), len(dist))
	}
	for _, cell := range disk {
		want, ok := dist[cell]
		if !ok {
			t.Errorf("cell %v in disk but not reached by BFS", cell)
			continue
		}
		if got := cell.Dist(center); got != want {
			t.Errorf("cell %v: Dist = %d, BFS depth = %d", cell, got, want)
		}
	}
}

func TestHexNeighborsAreDistanceOne(t *testing.T) {
	f := func(q, r int8) bool {
		h := Hex{int(q), int(r)}
		for _, nb := range h.Neighbors() {
			if h.Dist(nb) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexNeighborsDistinct(t *testing.T) {
	h := Hex{4, -2}
	seen := make(map[Hex]bool)
	for _, nb := range h.Neighbors() {
		if nb == h {
			t.Errorf("cell is its own neighbor")
		}
		if seen[nb] {
			t.Errorf("duplicate neighbor %v", nb)
		}
		seen[nb] = true
	}
	if len(seen) != 6 {
		t.Errorf("expected 6 distinct neighbors, got %d", len(seen))
	}
}

func TestHexDistProperties(t *testing.T) {
	// Symmetry, identity, triangle inequality.
	f := func(aq, ar, bq, br, cq, cr int8) bool {
		a := Hex{int(aq), int(ar)}
		b := Hex{int(bq), int(br)}
		c := Hex{int(cq), int(cr)}
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		if a.Dist(a) != 0 {
			return false
		}
		if a.Dist(b) == 0 && a != b {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHexDistMatchesWalkLength(t *testing.T) {
	// Distance equals the minimum number of neighbor moves, verified by
	// walking greedily toward the target.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := Hex{rng.Intn(21) - 10, rng.Intn(21) - 10}
		b := Hex{rng.Intn(21) - 10, rng.Intn(21) - 10}
		steps := 0
		cur := a
		for cur != b {
			// Greedy: pick any neighbor strictly closer to b.
			moved := false
			for _, nb := range cur.Neighbors() {
				if nb.Dist(b) < cur.Dist(b) {
					cur = nb
					moved = true
					break
				}
			}
			if !moved {
				t.Fatalf("stuck at %v heading to %v", cur, b)
			}
			steps++
		}
		if steps != a.Dist(b) {
			t.Errorf("walk from %v to %v took %d steps, Dist = %d", a, b, steps, a.Dist(b))
		}
	}
}

func TestHexAddSubScale(t *testing.T) {
	a := Hex{2, -3}
	b := Hex{-1, 4}
	if got := a.Add(b); got != (Hex{1, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Hex{3, -7}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got != (Hex{6, -9}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.String(); got != "(2,-3)" {
		t.Errorf("String = %q", got)
	}
}

func TestHexRingTranslationInvariant(t *testing.T) {
	offset := Hex{7, -4}
	for i := 0; i <= 6; i++ {
		at0 := HexRing(Hex{}, i)
		atOff := HexRing(offset, i)
		if len(at0) != len(atOff) {
			t.Fatalf("ring %d: size differs after translation", i)
		}
		set := make(map[Hex]bool, len(atOff))
		for _, c := range atOff {
			set[c] = true
		}
		for _, c := range at0 {
			if !set[c.Add(offset)] {
				t.Errorf("ring %d: %v+offset missing from translated ring", i, c)
			}
		}
	}
}
