package grid

import "fmt"

// Location-area (LA) tilings for the LA-based baseline scheme
// [Xie, Tabbane & Goodman 1993]: the coverage area is statically partitioned
// into equal location areas; a terminal updates when it enters a new LA and
// the network pages the whole LA in one polling cycle.
//
// In 1-D an LA is a segment of Size consecutive cells. In 2-D it is the
// radius-R hexagonal cluster of g(R) = 3R²+3R+1 cells — the classic
// cellular reuse-cluster tiling (N = i²+ij+j² with i=R, j=R+1), whose
// centers form the lattice spanned by t1 = (2R+1, −R) and t2 = (R, R+1) in
// axial coordinates.

// LineLAStart returns the first cell of the size-cell location area
// containing l, using segments [k·size, (k+1)·size−1].
func LineLAStart(l Line, size int) Line {
	if size <= 0 {
		panic(fmt.Sprintf("grid: non-positive LA size %d", size))
	}
	x := int(l)
	k := x / size
	if x < 0 && x%size != 0 {
		k--
	}
	return Line(k * size)
}

// HexLACenter returns the center of the radius-R hexagonal location area
// containing h. Radius 0 means single-cell LAs.
func HexLACenter(h Hex, radius int) Hex {
	if radius < 0 {
		panic(fmt.Sprintf("grid: negative LA radius %d", radius))
	}
	if radius == 0 {
		return h
	}
	r := radius
	t1 := Hex{2*r + 1, -r}
	t2 := Hex{r, r + 1}
	n := 3*r*r + 3*r + 1
	// Invert the lattice basis: (a, b) = M⁻¹·(q, r) with
	// M = [[2R+1, R], [−R, R+1]] and det N = 3R²+3R+1.
	af := (float64(r+1)*float64(h.Q) - float64(r)*float64(h.R)) / float64(n)
	bf := (float64(r)*float64(h.Q) + float64(2*r+1)*float64(h.R)) / float64(n)
	a0 := int(roundHalfAway(af))
	b0 := int(roundHalfAway(bf))
	// The rounded lattice point is within one step of the true center;
	// search its neighborhood for the unique center within distance R.
	best := Hex{}
	bestDist := -1
	for da := -1; da <= 1; da++ {
		for db := -1; db <= 1; db++ {
			c := t1.Scale(a0 + da).Add(t2.Scale(b0 + db))
			d := h.Dist(c)
			if bestDist < 0 || d < bestDist {
				best, bestDist = c, d
			}
		}
	}
	if bestDist > radius {
		// The radius-R disks tile the plane exactly, so this cannot
		// happen for a correct basis; it guards the arithmetic.
		panic(fmt.Sprintf("grid: no LA center within %d of %v (nearest %v at %d)",
			radius, h, best, bestDist))
	}
	return best
}

func roundHalfAway(x float64) float64 {
	if x >= 0 {
		return float64(int(x + 0.5))
	}
	return -float64(int(-x + 0.5))
}
