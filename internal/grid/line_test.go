package grid

import (
	"testing"
	"testing/quick"
)

func TestLineNeighbors(t *testing.T) {
	l := Line(5)
	nbs := l.Neighbors()
	if nbs[0] != 4 || nbs[1] != 6 {
		t.Errorf("Neighbors(5) = %v", nbs)
	}
	if l.Neighbor(0) != 4 || l.Neighbor(1) != 6 {
		t.Errorf("Neighbor indexing wrong")
	}
}

func TestLineDistRing(t *testing.T) {
	if got := Line(-3).Dist(Line(4)); got != 7 {
		t.Errorf("Dist(-3,4) = %d, want 7", got)
	}
	if got := Line(-5).Ring(); got != 5 {
		t.Errorf("Ring(-5) = %d, want 5", got)
	}
	if got := Line(0).Ring(); got != 0 {
		t.Errorf("Ring(0) = %d, want 0", got)
	}
	if got := Line(-2).String(); got != "-2" {
		t.Errorf("String = %q", got)
	}
}

func TestLineRingEnumeration(t *testing.T) {
	if got := LineRing(10, 0); len(got) != 1 || got[0] != 10 {
		t.Errorf("LineRing(10,0) = %v", got)
	}
	got := LineRing(10, 3)
	if len(got) != 2 || got[0] != 7 || got[1] != 13 {
		t.Errorf("LineRing(10,3) = %v", got)
	}
}

func TestLineDiskMatchesEquation1(t *testing.T) {
	for d := 0; d <= 20; d++ {
		disk := LineDisk(0, d)
		if got, want := len(disk), 2*d+1; got != want {
			t.Errorf("len(LineDisk(%d)) = %d, want %d", d, got, want)
		}
		seen := make(map[Line]bool)
		for _, c := range disk {
			if c.Ring() > d {
				t.Errorf("disk %d contains %v beyond radius", d, c)
			}
			if seen[c] {
				t.Errorf("disk %d: duplicate %v", d, c)
			}
			seen[c] = true
		}
	}
}

func TestLineDistProperties(t *testing.T) {
	f := func(a, b, c int16) bool {
		x, y, z := Line(a), Line(b), Line(c)
		if x.Dist(y) != y.Dist(x) {
			return false
		}
		if x.Dist(x) != 0 {
			return false
		}
		return x.Dist(z) <= x.Dist(y)+y.Dist(z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineNeighborsAreDistanceOne(t *testing.T) {
	f := func(a int16) bool {
		l := Line(a)
		for _, nb := range l.Neighbors() {
			if l.Dist(nb) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
