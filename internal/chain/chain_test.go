package chain

import (
	"math"
	"testing"
	"testing/quick"
)

// buildMatrix constructs the full (d+1)×(d+1) one-step transition matrix of
// the distance chain, independently of the solver, directly from the
// mechanism description: call arrival (prob c) resets to 0, a move out of
// ring d (prob a_d) triggers an update and resets to 0, other moves shift
// the ring index, everything else self-loops.
func buildMatrix(m Model, p Params, d int) [][]float64 {
	P := make([][]float64, d+1)
	for i := range P {
		P[i] = make([]float64, d+1)
	}
	for i := 0; i <= d; i++ {
		up := m.Up(p, i)
		down := m.Down(p, i)
		if i == 0 {
			// A call leaves the state at 0; only movement matters.
			if d >= 1 {
				P[0][1] += up
				P[0][0] += 1 - up
			} else {
				P[0][0] = 1
			}
			continue
		}
		P[i][0] += p.C // call arrival resets
		if i < d {
			P[i][i+1] += up
		} else {
			P[i][0] += up // threshold crossing resets
		}
		P[i][i-1] += down
		P[i][i] += 1 - p.C - up - down
	}
	return P
}

func residual(pi []float64, P [][]float64) float64 {
	n := len(pi)
	worst := 0.0
	for j := 0; j < n; j++ {
		flow := 0.0
		for i := 0; i < n; i++ {
			flow += pi[i] * P[i][j]
		}
		if r := math.Abs(flow - pi[j]); r > worst {
			worst = r
		}
	}
	return worst
}

func TestStationarySolvesBalanceEquations(t *testing.T) {
	models := []Model{OneDim, TwoDimExact, TwoDimApprox}
	params := []Params{
		{Q: 0.05, C: 0.01},
		{Q: 0.5, C: 0.01},
		{Q: 0.001, C: 0.1},
		{Q: 0.3, C: 0.3},
		{Q: 0.9, C: 0.0},
	}
	for _, m := range models {
		for _, p := range params {
			for _, d := range []int{0, 1, 2, 3, 5, 10, 25} {
				pi, err := Stationary(m, p, d)
				if err != nil {
					t.Fatalf("%v %+v d=%d: %v", m, p, d, err)
				}
				sum := 0.0
				for i, v := range pi {
					if v < 0 {
						t.Errorf("%v %+v d=%d: negative p_%d = %v", m, p, d, i, v)
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Errorf("%v %+v d=%d: probabilities sum to %v", m, p, d, sum)
				}
				P := buildMatrix(m, p, d)
				if r := residual(pi, P); r > 1e-12 {
					t.Errorf("%v %+v d=%d: balance residual %v", m, p, d, r)
				}
			}
		}
	}
}

func TestStationaryPropertyRandomParams(t *testing.T) {
	f := func(qr, cr uint16, dr uint8) bool {
		q := float64(qr)/65535.0*0.9 + 1e-4
		c := (1 - q) * float64(cr) / 65535.0 * 0.99
		d := int(dr % 40)
		for _, m := range []Model{OneDim, TwoDimExact, TwoDimApprox} {
			pi, err := Stationary(m, Params{Q: q, C: c}, d)
			if err != nil {
				return false
			}
			sum := 0.0
			for _, v := range pi {
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if residual(pi, buildMatrix(m, Params{Q: q, C: c}, d)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStationaryPaperWorkedValues1D(t *testing.T) {
	// Hand-computed from paper eqs. (34)-(35) with q=0.05, c=0.01.
	p := Params{Q: 0.05, C: 0.01}
	pi, err := Stationary(OneDim, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.06 / 0.11; math.Abs(pi[0]-want) > 1e-12 {
		t.Errorf("p_{0,1} = %v, want %v", pi[0], want)
	}
	if want := 0.05 / 0.11; math.Abs(pi[1]-want) > 1e-12 {
		t.Errorf("p_{1,1} = %v, want %v", pi[1], want)
	}
}

func TestStationaryPaperWorkedValues2DExact(t *testing.T) {
	// Hand-solved exact 2-D chain for q=0.05, c=0.01, d=3 (validated against
	// paper Table 2: C_T(d=3, U=1000, m=1) = 6.056).
	p := Params{Q: 0.05, C: 0.01}
	pi, err := Stationary(TwoDimExact, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25726, 0.36954, 0.25203, 0.12117}
	for i, w := range want {
		if math.Abs(pi[i]-w) > 5e-5 {
			t.Errorf("p_{%d,3} = %v, want ≈ %v", i, pi[i], w)
		}
	}
}

func TestStationaryDegenerateCases(t *testing.T) {
	// q = 0: the terminal never moves, so all mass stays at state 0.
	pi, err := Stationary(TwoDimExact, Params{Q: 0, C: 0.3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Errorf("q=0: p_0 = %v, want 1", pi[0])
	}
	for i := 1; i < len(pi); i++ {
		if pi[i] != 0 {
			t.Errorf("q=0: p_%d = %v, want 0", i, pi[i])
		}
	}
	// d = 0: single state.
	pi, err = Stationary(OneDim, Params{Q: 0.4, C: 0.2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pi) != 1 || pi[0] != 1 {
		t.Errorf("d=0: pi = %v", pi)
	}
}

func TestStationaryLargeThresholdStable(t *testing.T) {
	// For large d with c >> q the unnormalized solution spans hundreds of
	// orders of magnitude; the rescaling in Stationary must keep it finite.
	p := Params{Q: 0.001, C: 0.5}
	pi, err := Stationary(OneDim, p, 800)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range pi {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("non-finite or negative probability: %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
	// Mass should be overwhelmingly near the center.
	if pi[0] < 0.3 {
		t.Errorf("p_0 = %v, expected concentration near 0", pi[0])
	}
}

func TestStationaryErrors(t *testing.T) {
	if _, err := Stationary(OneDim, Params{Q: -0.1, C: 0}, 3); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Stationary(OneDim, Params{Q: 0.6, C: 0.6}, 3); err == nil {
		t.Error("q+c>1 accepted")
	}
	if _, err := Stationary(OneDim, Params{Q: 0.1, C: math.NaN()}, 3); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Stationary(OneDim, Params{Q: 0.1, C: 0.1}, -1); err == nil {
		t.Error("negative d accepted")
	}
}

func TestValidate(t *testing.T) {
	good := []Params{{0, 0}, {1, 0}, {0, 1}, {0.5, 0.5}, {0.05, 0.01}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Params{{-0.1, 0}, {1.1, 0}, {0, -0.1}, {0, 1.1}, {0.7, 0.7}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestUpDownTransitionEquations(t *testing.T) {
	p := Params{Q: 0.12, C: 0.03}
	// Paper eq. (3)-(4).
	if got := OneDim.Up(p, 0); got != p.Q {
		t.Errorf("1-D a_{0,1} = %v, want q", got)
	}
	if got := OneDim.Up(p, 4); got != p.Q/2 {
		t.Errorf("1-D a_{4,5} = %v, want q/2", got)
	}
	if got := OneDim.Down(p, 4); got != p.Q/2 {
		t.Errorf("1-D b_{4,3} = %v, want q/2", got)
	}
	// Paper eq. (41)-(42).
	if got := TwoDimExact.Up(p, 0); got != p.Q {
		t.Errorf("2-D a_{0,1} = %v, want q", got)
	}
	if got, want := TwoDimExact.Up(p, 2), p.Q*(1.0/3.0+1.0/12.0); math.Abs(got-want) > 1e-15 {
		t.Errorf("2-D a_{2,3} = %v, want %v", got, want)
	}
	if got, want := TwoDimExact.Down(p, 2), p.Q*(1.0/3.0-1.0/12.0); math.Abs(got-want) > 1e-15 {
		t.Errorf("2-D b_{2,1} = %v, want %v", got, want)
	}
	// Paper eq. (43)-(44).
	if got := TwoDimApprox.Up(p, 7); got != p.Q/3 {
		t.Errorf("approx a = %v, want q/3", got)
	}
	if got := TwoDimApprox.Down(p, 7); got != p.Q/3 {
		t.Errorf("approx b = %v, want q/3", got)
	}
	if got := TwoDimApprox.Down(p, 0); got != 0 {
		t.Errorf("b_0 = %v, want 0", got)
	}
}

func TestUpdateProb(t *testing.T) {
	p := Params{Q: 0.05, C: 0.01}
	pi, err := Stationary(OneDim, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p_{1,1}·a_{1,2} = (q/(2q+c))·(q/2)
	want := (0.05 / 0.11) * 0.025
	if got := UpdateProb(OneDim, p, pi); math.Abs(got-want) > 1e-12 {
		t.Errorf("UpdateProb = %v, want %v", got, want)
	}
}

func TestModelString(t *testing.T) {
	if OneDim.String() != "1-D" || TwoDimExact.String() != "2-D exact" || TwoDimApprox.String() != "2-D approx" {
		t.Error("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Error("unknown model name wrong")
	}
}

func TestModelGrid(t *testing.T) {
	if OneDim.Grid().Degree() != 2 {
		t.Error("1-D grid degree")
	}
	if TwoDimExact.Grid().Degree() != 6 || TwoDimApprox.Grid().Degree() != 6 {
		t.Error("2-D grid degree")
	}
}
