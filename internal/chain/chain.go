// Package chain implements the discrete-time Markov chain of Sections 3 and
// 4 of Akyildiz & Ho (SIGCOMM '95): the distance of a mobile terminal from
// its center cell under a distance-based location update scheme with
// threshold d.
//
// The chain has states 0..d (the ring index of the terminal). In each time
// slot the terminal either receives a call with probability c (resetting the
// state to 0, because paging re-centers the residing area), or moves to a
// uniformly random neighboring cell with probability q. Moving from ring i
// increases the distance with probability q·p+(i) and decreases it with
// probability q·p−(i); moving out of ring d triggers a location update,
// which also resets the state to 0.
//
// Three model variants are provided:
//
//   - OneDim: the 1-D line model, a_{0,1}=q, a_{i,i+1}=b_{i,i−1}=q/2
//     (paper eqs. 3–4). Closed forms: paper eqs. 9–38.
//   - TwoDimExact: the 2-D hexagonal model with the exact state-dependent
//     transition probabilities a_{i,i+1}=q(1/3+1/6i), b_{i,i−1}=q(1/3−1/6i)
//     (paper eqs. 41–42), solved recursively (paper Section 4.1).
//   - TwoDimApprox: the 2-D model with the distance-independent
//     approximation a=b=q/3 (paper eqs. 43–44), which admits closed forms
//     (paper eqs. 45–60) and powers the cheap "near-optimal" threshold.
//
// All variants are solved by a numerically stable O(d) cut-balance
// recurrence (Stationary); the paper's closed forms are implemented
// separately (StationaryClosedForm) and cross-checked in tests.
package chain

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
)

// Model selects the mobility model variant.
type Model int

const (
	// OneDim is the one-dimensional random walk (paper Section 3).
	OneDim Model = iota
	// TwoDimExact is the two-dimensional hexagonal random walk with exact
	// transition probabilities (paper Section 4.1).
	TwoDimExact
	// TwoDimApprox is the two-dimensional model with the approximate
	// distance-independent transition probabilities (paper Section 4.2).
	TwoDimApprox
)

// String returns a human-readable model name.
func (m Model) String() string {
	switch m {
	case OneDim:
		return "1-D"
	case TwoDimExact:
		return "2-D exact"
	case TwoDimApprox:
		return "2-D approx"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Grid returns the cell geometry underlying the model.
func (m Model) Grid() grid.Kind {
	if m == OneDim {
		return grid.OneDim
	}
	return grid.TwoDimHex
}

// Params holds the per-slot stochastic parameters of a terminal.
type Params struct {
	// Q is the probability that the terminal moves to a neighboring cell
	// during a time slot (paper: probability of movement q).
	Q float64
	// C is the probability that a call arrives for the terminal during a
	// time slot (paper: call arrival probability c).
	C float64
}

// Validate reports whether the parameters describe a proper chain. Movement
// and call arrival are disjoint events within a slot, so q + c must not
// exceed 1.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.Q) || math.IsNaN(p.C):
		return errors.New("chain: NaN parameter")
	case p.Q < 0 || p.Q > 1:
		return fmt.Errorf("chain: move probability q=%v outside [0,1]", p.Q)
	case p.C < 0 || p.C > 1:
		return fmt.Errorf("chain: call probability c=%v outside [0,1]", p.C)
	case p.Q+p.C > 1+1e-12:
		return fmt.Errorf("chain: q+c=%v exceeds 1 (move and call are disjoint slot events)", p.Q+p.C)
	}
	return nil
}

// Up returns the transition probability a_{i,i+1}: the per-slot probability
// that the terminal's distance from its center cell increases from i to
// i+1. For i = d the same expression is the probability of crossing the
// update threshold (paper eqs. 3 and 41/43).
func (m Model) Up(p Params, i int) float64 {
	if i < 0 {
		panic(fmt.Sprintf("chain: negative state %d", i))
	}
	if i == 0 {
		return p.Q
	}
	switch m {
	case OneDim:
		return p.Q / 2
	case TwoDimExact:
		return p.Q * grid.TwoDimHex.UpProb(i)
	case TwoDimApprox:
		return p.Q / 3
	default:
		panic(fmt.Sprintf("chain: unknown model %d", int(m)))
	}
}

// Down returns the transition probability b_{i,i−1}: the per-slot
// probability that the distance decreases from i to i−1 (paper eqs. 4 and
// 42/44). Down(p, 0) is 0.
func (m Model) Down(p Params, i int) float64 {
	if i < 0 {
		panic(fmt.Sprintf("chain: negative state %d", i))
	}
	if i == 0 {
		return 0
	}
	switch m {
	case OneDim:
		return p.Q / 2
	case TwoDimExact:
		return p.Q * grid.TwoDimHex.DownProb(i)
	case TwoDimApprox:
		return p.Q / 3
	default:
		panic(fmt.Sprintf("chain: unknown model %d", int(m)))
	}
}

// Stationary returns the steady-state probabilities p_{i,d} for i = 0..d of
// the distance chain with update threshold d. It uses the cut-balance
// recurrence
//
//	p_i·a_i = p_{i+1}·b_{i+1} + c·Σ_{k>i} p_k + p_d·a_d ,
//
// obtained by balancing probability flow across the cut between states
// {0..i} and {i+1..d}: upward flow is a single birth transition, downward
// flow is one death transition plus every reset (call arrival from a state
// above the cut, or a location update out of state d). Solving backward
// from p_d := 1 and normalizing is exact for all three model variants and
// avoids the exponentials of the closed forms.
func Stationary(m Model, p Params, d int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("chain: negative threshold %d", d)
	}
	pi := make([]float64, d+1)
	if d == 0 || p.Q == 0 {
		// Single state, or a terminal that never moves: all mass at 0.
		pi[0] = 1
		return pi, nil
	}
	pi[d] = 1
	tail := pi[d] // Σ_{k>i} p_k for the current i
	resetFromD := pi[d] * m.Up(p, d)
	for i := d - 1; i >= 0; i-- {
		up := m.Up(p, i)
		pi[i] = (pi[i+1]*m.Down(p, i+1) + p.C*tail + resetFromD) / up
		tail += pi[i]
		if pi[i] > 1e250 {
			// The unnormalized probabilities grow geometrically toward
			// state 0 (p_0/p_d ≈ e1^d); rescale to avoid overflow for
			// very large thresholds.
			f := pi[i]
			for k := i; k <= d; k++ {
				pi[k] /= f
			}
			tail /= f
			resetFromD /= f
		}
	}
	sum := 0.0
	for _, v := range pi {
		sum += v
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// UpdateProb returns the per-slot probability that the terminal performs a
// location update under threshold d: p_{d,d}·a_{d,d+1}. The stationary
// vector pi must come from Stationary (or StationaryClosedForm) with the
// same model, parameters and threshold.
func UpdateProb(m Model, p Params, pi []float64) float64 {
	d := len(pi) - 1
	return pi[d] * m.Up(p, d)
}
