package chain

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlpha(t *testing.T) {
	p := Params{Q: 0.05, C: 0.01}
	if a, err := Alpha(OneDim, p); err != nil || math.Abs(a-2.4) > 1e-12 {
		t.Errorf("Alpha(1-D) = %v, %v; want 2.4", a, err)
	}
	if a, err := Alpha(TwoDimApprox, p); err != nil || math.Abs(a-2.6) > 1e-12 {
		t.Errorf("Alpha(2-D approx) = %v, %v; want 2.6", a, err)
	}
	if _, err := Alpha(TwoDimExact, p); err == nil {
		t.Error("Alpha(2-D exact) should error")
	}
	if _, err := Alpha(OneDim, Params{Q: 0, C: 0.1}); err == nil {
		t.Error("Alpha(q=0) should error")
	}
}

func TestRootsProperties(t *testing.T) {
	for _, alpha := range []float64{2, 2.0001, 2.4, 3, 10, 202} {
		e1, e2 := Roots(alpha)
		if math.Abs(e1+e2-alpha) > 1e-9*alpha {
			t.Errorf("α=%v: e1+e2 = %v", alpha, e1+e2)
		}
		if math.Abs(e1*e2-1) > 1e-9 {
			t.Errorf("α=%v: e1·e2 = %v", alpha, e1*e2)
		}
		if e1 < e2 {
			t.Errorf("α=%v: e1 < e2", alpha)
		}
	}
}

func TestChebSRecurrenceVsPowers(t *testing.T) {
	for _, alpha := range []float64{2, 2.2, 2.4, 3.5, 8} {
		s := chebS(alpha, 20)
		for i := 0; i <= 20; i++ {
			want := chebSPow(alpha, i)
			rel := math.Abs(s[i]-want) / math.Max(1, math.Abs(want))
			if rel > 1e-9 {
				t.Errorf("α=%v: S_%d recurrence=%v powers=%v", alpha, i, s[i], want)
			}
		}
	}
}

func TestChebSDegenerateAlphaTwo(t *testing.T) {
	// α = 2 (c = 0): S_i = i + 1.
	s := chebS(2, 10)
	for i, v := range s {
		if v != float64(i+1) {
			t.Errorf("S_%d = %v, want %d", i, v, i+1)
		}
	}
}

func TestClosedFormMatchesBoundaryEquations(t *testing.T) {
	// The general closed form must reproduce the paper's printed boundary
	// formulas (eqs. 33-38 and 55-60) exactly.
	params := []Params{
		{Q: 0.05, C: 0.01},
		{Q: 0.3, C: 0.1},
		{Q: 0.9, C: 0.05},
		{Q: 0.01, C: 0.9},
		{Q: 0.5, C: 0},
	}
	for _, p := range params {
		for d := 0; d <= 2; d++ {
			got1, err := StationaryClosedForm(OneDim, p, d)
			if err != nil {
				t.Fatalf("1-D %+v d=%d: %v", p, d, err)
			}
			want1 := boundary1D(p, d)
			for i := range want1 {
				if math.Abs(got1[i]-want1[i]) > 1e-12 {
					t.Errorf("1-D %+v d=%d: p_%d = %v, paper eq gives %v", p, d, i, got1[i], want1[i])
				}
			}
			got2, err := StationaryClosedForm(TwoDimApprox, p, d)
			if err != nil {
				t.Fatalf("2-D %+v d=%d: %v", p, d, err)
			}
			want2 := boundary2DApprox(p, d)
			for i := range want2 {
				if math.Abs(got2[i]-want2[i]) > 1e-12 {
					t.Errorf("2-D approx %+v d=%d: p_%d = %v, paper eq gives %v", p, d, i, got2[i], want2[i])
				}
			}
		}
	}
}

func TestClosedFormMatchesCutSolver(t *testing.T) {
	params := []Params{
		{Q: 0.05, C: 0.01},
		{Q: 0.5, C: 0.02},
		{Q: 0.001, C: 0.05},
		{Q: 0.2, C: 0},
		{Q: 0.1, C: 0.5},
	}
	for _, m := range []Model{OneDim, TwoDimApprox} {
		for _, p := range params {
			for _, d := range []int{0, 1, 2, 3, 4, 7, 15, 30} {
				cf, err := StationaryClosedForm(m, p, d)
				if err != nil {
					t.Fatalf("%v %+v d=%d: %v", m, p, d, err)
				}
				cut, err := Stationary(m, p, d)
				if err != nil {
					t.Fatal(err)
				}
				for i := range cf {
					if math.Abs(cf[i]-cut[i]) > 1e-10 {
						t.Errorf("%v %+v d=%d: closed p_%d=%v, cut p_%d=%v",
							m, p, d, i, cf[i], i, cut[i])
					}
				}
			}
		}
	}
}

func TestClosedFormProperty(t *testing.T) {
	f := func(qr, cr uint16, dr uint8) bool {
		q := float64(qr)/65535.0*0.9 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.5
		d := int(dr % 25)
		for _, m := range []Model{OneDim, TwoDimApprox} {
			cf, err := StationaryClosedForm(m, Params{Q: q, C: c}, d)
			if err != nil {
				return false
			}
			cut, _ := Stationary(m, Params{Q: q, C: c}, d)
			for i := range cf {
				if math.Abs(cf[i]-cut[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClosedFormRejectsExact2D(t *testing.T) {
	if _, err := StationaryClosedForm(TwoDimExact, Params{Q: 0.05, C: 0.01}, 3); err == nil {
		t.Error("expected error for exact 2-D model")
	}
}

func TestClosedFormOverflowReported(t *testing.T) {
	// α huge and d large: S_d overflows float64; the closed form must
	// report it rather than return garbage (Stationary still works there).
	p := Params{Q: 1e-6, C: 0.9}
	if _, err := StationaryClosedForm(OneDim, p, 500); err == nil {
		t.Error("expected overflow error")
	}
	if _, err := Stationary(OneDim, p, 500); err != nil {
		t.Errorf("cut solver should survive: %v", err)
	}
}

func TestClosedFormQZero(t *testing.T) {
	pi, err := StationaryClosedForm(OneDim, Params{Q: 0, C: 0.2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Errorf("p_0 = %v, want 1", pi[0])
	}
}
