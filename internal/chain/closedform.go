package chain

import (
	"fmt"
	"math"
)

// Alpha returns the recurrence coefficient of the paper's closed forms:
// α = 2 + 2c/q for the 1-D model (paper eq. 10) and α = 2 + 3c/q for the
// 2-D approximate model (paper eq. 50). In both cases α = (a+b+c)/b with
// the interior birth/death rates a = b of the model.
func Alpha(m Model, p Params) (float64, error) {
	if p.Q == 0 {
		return 0, fmt.Errorf("chain: α undefined for q=0")
	}
	switch m {
	case OneDim:
		return 2 + 2*p.C/p.Q, nil
	case TwoDimApprox:
		return 2 + 3*p.C/p.Q, nil
	case TwoDimExact:
		return 0, fmt.Errorf("chain: no closed form for the exact 2-D model (paper Section 4.1 solves it recursively)")
	default:
		return 0, fmt.Errorf("chain: unknown model %d", int(m))
	}
}

// Roots returns e1 and e2, the roots of x² − αx + 1 = 0 (paper eqs. 16–17).
// They satisfy e1·e2 = 1 and e1 + e2 = α; for α = 2 (no call arrivals) the
// roots coincide at 1.
func Roots(alpha float64) (e1, e2 float64) {
	disc := alpha*alpha - 4
	if disc < 0 {
		disc = 0
	}
	s := math.Sqrt(disc)
	return (alpha + s) / 2, (alpha - s) / 2
}

// chebS returns S_0..S_n of the paper's auxiliary sequence, defined by
// S_{-1} = 0, S_0 = 1, S_i = α·S_{i−1} − S_{i−2} (the recursive definition
// under paper eq. 11). In closed form S_i = (e1^{i+1} − e2^{i+1})/(e1 − e2),
// degenerating to S_i = i+1 when α = 2.
func chebS(alpha float64, n int) []float64 {
	s := make([]float64, n+1)
	s[0] = 1
	if n >= 1 {
		s[1] = alpha
	}
	for i := 2; i <= n; i++ {
		s[i] = alpha*s[i-1] - s[i-2]
	}
	return s
}

// chebSPow evaluates S_i directly from the root powers (paper's R_i
// expressions are differences of such powers). It is used in tests to check
// that the recursive and exponential forms of the closed solution agree.
func chebSPow(alpha float64, i int) float64 {
	e1, e2 := Roots(alpha)
	if e1 == e2 {
		return float64(i + 1)
	}
	return (math.Pow(e1, float64(i+1)) - math.Pow(e2, float64(i+1))) / (e1 - e2)
}

// StationaryClosedForm returns the steady-state probabilities p_{i,d} using
// the paper's closed-form solution (Sections 3.2 and 4.2). It applies to
// the 1-D model and the approximate 2-D model; the exact 2-D model has no
// closed form and must use Stationary.
//
// The paper expresses the solution through R_i = e1^{d−i} − e2^{d−i} and
// model-specific constants K_1..K_4 (eqs. 23–32 and 45–49), with explicit
// boundary cases for d ≤ 2 (eqs. 33–38 and 55–60). Algebraically the whole
// family collapses to
//
//	p_{i,d} ∝ S_{d−i}            for 1 ≤ i ≤ d
//	p_{0,d} ∝ (b/q)·S_d
//
// with S the Chebyshev-like sequence of chebS and b the interior death rate
// (q/2 in 1-D, q/3 in 2-D). This implementation uses that simplified form;
// tests verify it reproduces the paper's printed boundary equations exactly
// and matches the cut-balance solver for all d.
func StationaryClosedForm(m Model, p Params, d int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("chain: negative threshold %d", d)
	}
	if d == 0 || p.Q == 0 {
		pi := make([]float64, d+1)
		pi[0] = 1
		return pi, nil
	}
	alpha, err := Alpha(m, p)
	if err != nil {
		return nil, err
	}
	var ratio float64 // b / a_0 = b / q
	switch m {
	case OneDim:
		ratio = 0.5
	case TwoDimApprox:
		ratio = 1.0 / 3.0
	}
	s := chebS(alpha, d)
	pi := make([]float64, d+1)
	pi[0] = ratio * s[d]
	for i := 1; i <= d; i++ {
		pi[i] = s[d-i]
	}
	sum := 0.0
	for _, v := range pi {
		sum += v
	}
	if math.IsInf(sum, 1) || math.IsNaN(sum) {
		return nil, fmt.Errorf("chain: closed form overflow at d=%d (α=%v); use Stationary", d, alpha)
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// boundary1D returns the paper's literal boundary-case formulas for the 1-D
// model, eqs. (33)–(38). Exported to tests only, to confirm the general
// closed form reproduces the printed equations digit for digit.
func boundary1D(p Params, d int) []float64 {
	q, c := p.Q, p.C
	switch d {
	case 0:
		return []float64{1}
	case 1:
		return []float64{
			(q + c) / (2*q + c),
			q / (2*q + c),
		}
	case 2:
		den := 9*q*q + 12*q*c + 4*c*c
		return []float64{
			(2*c + q) / (2*c + 3*q),
			4 * q * (c + q) / den,
			2 * q * q / den,
		}
	}
	panic("boundary1D: d > 2")
}

// boundary2DApprox returns the paper's literal boundary-case formulas for
// the approximate 2-D model, eqs. (55)–(60).
func boundary2DApprox(p Params, d int) []float64 {
	q, c := p.Q, p.C
	switch d {
	case 0:
		return []float64{1}
	case 1:
		return []float64{
			(2*q + 3*c) / (5*q + 3*c),
			3 * q / (5*q + 3*c),
		}
	case 2:
		den := 4*q*q + 7*q*c + 3*c*c
		return []float64{
			(3*c + q) / (3*c + 4*q),
			q * (3*c + 2*q) / den,
			q * q / den,
		}
	}
	panic("boundary2DApprox: d > 2")
}
