package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// The durable job journal: an append-only NDJSON file under the
// manager's data directory recording every submission, state transition
// and result. Each line is a self-checking envelope
//
//	{"r":<record>,"c":<crc32>}
//
// where c is the IEEE CRC32 of r's exact byte serialization. Appends are
// fsynced, so every record the journal ever acknowledged survives a
// crash; a crash mid-append leaves a torn final line, which replay
// detects (short line, bad JSON or bad checksum) and truncates away —
// the journal's recovery unit is the record, never the file.
//
// Replay stops at the first invalid record: everything after a
// corruption point is untrusted, because later records' meaning depends
// on earlier ones (state transitions chain). The fully-appended prefix
// is always recovered intact (TestJournalTruncatedTail,
// FuzzJournalReplay).

// JournalSchema versions the journal record format.
const JournalSchema = 1

// Record kinds.
const (
	// KindSubmit records a job's acceptance: id and full Spec.
	KindSubmit = "submit"
	// KindState records a lifecycle transition, including the crash-
	// recovery edge running → queued written during journal replay.
	KindState = "state"
	// KindResult records a completed job's report document byte-for-byte
	// (base64 inside the envelope); it is always appended before the
	// done-state record, so a replayed done job always has its bytes.
	KindResult = "result"
	// KindCheckpoint notes that a resumable checkpoint for a running job
	// was persisted. Informational: the checkpoint bytes themselves live
	// in their own atomically-replaced file, so replay never depends on
	// this record.
	KindCheckpoint = "checkpoint"
	// KindDispatch records a distributed coordinator leasing a shard
	// slice [Lo, Hi) of a job to a worker node; KindLease records that
	// lease ending without a partial result (worker death, stream loss,
	// a mismatched partial) and the slice returning to the pending set
	// for re-dispatch. Both are informational, like KindCheckpoint: a
	// coordinator recovering from a crash re-runs the job's dispatch
	// from scratch (the replay re-queues the job), so replay never
	// depends on them — but the journal then carries the full lease
	// history of every job for post-mortems.
	KindDispatch = "dispatch"
	KindLease    = "lease"
)

// Record is one journal entry. Seq is assigned by the journal and
// strictly increases across the file; replay rejects regressions.
type Record struct {
	Schema int       `json:"schema"`
	Seq    int64     `json:"seq"`
	Kind   string    `json:"kind"`
	Time   time.Time `json:"time"`
	Job    string    `json:"job"`

	// Submit payload.
	Spec *Spec `json:"spec,omitempty"`

	// State payload.
	From  State  `json:"from,omitempty"`
	To    State  `json:"to,omitempty"`
	Error string `json:"error,omitempty"`

	// Result payload: the report document bytes.
	Result []byte `json:"result,omitempty"`

	// Checkpoint payload: the slot boundary the checkpoint covers.
	Slot int64 `json:"slot,omitempty"`

	// Dispatch/lease payload: the worker node and the shard slice
	// [Lo, Hi) leased to it. Error (shared with the state payload above)
	// carries the lease's failure reason on KindLease records.
	Node string `json:"node,omitempty"`
	Lo   int    `json:"lo,omitempty"`
	Hi   int    `json:"hi,omitempty"`
}

// envelope is the on-disk line framing: the raw record bytes plus their
// checksum. R stays a RawMessage so the checksum is computed over the
// exact bytes written, independent of field ordering or encoder quirks.
type envelope struct {
	R json.RawMessage `json:"r"`
	C uint32          `json:"c"`
}

// validateRecord checks one decoded record's internal consistency
// against the sequence number of its predecessor.
func validateRecord(rec *Record, prevSeq int64) error {
	if rec.Schema != JournalSchema {
		return fmt.Errorf("jobs: journal record schema %d, want %d", rec.Schema, JournalSchema)
	}
	if rec.Seq <= prevSeq {
		return fmt.Errorf("jobs: journal seq %d not above predecessor %d", rec.Seq, prevSeq)
	}
	if rec.Job == "" {
		return errors.New("jobs: journal record without a job id")
	}
	switch rec.Kind {
	case KindSubmit:
		if rec.Spec == nil {
			return errors.New("jobs: submit record without a spec")
		}
		if err := rec.Spec.Validate(); err != nil {
			return fmt.Errorf("jobs: submit record spec: %w", err)
		}
	case KindState:
		if !rec.From.Valid() || !rec.To.Valid() {
			return fmt.Errorf("jobs: state record %q → %q", rec.From, rec.To)
		}
		if !CanTransition(rec.From, rec.To) {
			return fmt.Errorf("jobs: state record with illegal transition %s → %s", rec.From, rec.To)
		}
	case KindResult:
		if len(rec.Result) == 0 {
			return errors.New("jobs: result record without result bytes")
		}
	case KindCheckpoint:
		if rec.Slot <= 0 {
			return fmt.Errorf("jobs: checkpoint record at slot %d", rec.Slot)
		}
	case KindDispatch, KindLease:
		if rec.Node == "" {
			return fmt.Errorf("jobs: %s record without a node id", rec.Kind)
		}
		if rec.Lo < 0 || rec.Hi <= rec.Lo {
			return fmt.Errorf("jobs: %s record with shard slice [%d,%d)", rec.Kind, rec.Lo, rec.Hi)
		}
	default:
		return fmt.Errorf("jobs: unknown journal record kind %q", rec.Kind)
	}
	return nil
}

// encodeRecord frames one record as a journal line (with trailing
// newline).
func encodeRecord(rec *Record) ([]byte, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{R: raw, C: crc32.ChecksumIEEE(raw)})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine parses and checks one journal line (without its newline).
func decodeLine(line []byte, prevSeq int64) (Record, error) {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return Record{}, fmt.Errorf("jobs: journal envelope: %w", err)
	}
	if crc32.ChecksumIEEE(env.R) != env.C {
		return Record{}, errors.New("jobs: journal record checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(env.R, &rec); err != nil {
		return Record{}, fmt.Errorf("jobs: journal record: %w", err)
	}
	if err := validateRecord(&rec, prevSeq); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// ReplayJournal scans journal records from r and returns the longest
// valid prefix: every fully-appended, checksum-clean record up to (not
// including) the first torn or corrupt one, plus that prefix's byte
// length. A truncated tail is normal after a crash, so it is not an
// error; only a failure to read r itself is.
func ReplayJournal(r io.Reader) ([]Record, int64, error) {
	br := bufio.NewReader(r)
	var recs []Record
	var valid int64
	prevSeq := int64(0)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Either a clean end or a torn final line (no newline
				// reached the disk); both end the valid prefix here.
				return recs, valid, nil
			}
			return recs, valid, err
		}
		rec, err := decodeLine(bytes.TrimSuffix(line, []byte("\n")), prevSeq)
		if err != nil {
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(len(line))
		prevSeq = rec.Seq
	}
}

// CheckJournal is the strict variant schemacheck uses: every byte of the
// document must belong to a valid record — a truncated or corrupt tail
// is an error here, not a recovery case.
func CheckJournal(data []byte) (int, error) {
	recs, valid, err := ReplayJournal(bytes.NewReader(data))
	if err != nil {
		return len(recs), err
	}
	if valid != int64(len(data)) {
		return len(recs), fmt.Errorf("jobs: invalid journal data after %d valid record(s) (byte %d of %d)",
			len(recs), valid, len(data))
	}
	return len(recs), nil
}

// Journal is an open, append-only journal file. It is not safe for
// concurrent use; the Manager serializes appends under its lock.
type Journal struct {
	f       *os.File
	seq     int64
	records int64
	size    int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its contents, truncates any torn or corrupt tail so the file ends at
// the last valid record, and returns the journal positioned for
// appending plus the replayed records.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := ReplayJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, records: int64(len(recs)), size: valid}
	if len(recs) > 0 {
		j.seq = recs[len(recs)-1].Seq
	}
	return j, recs, nil
}

// Append assigns the record's sequence number, frames it, writes it and
// fsyncs — when Append returns nil the record survives any crash.
func (j *Journal) Append(rec Record) error {
	rec.Schema = JournalSchema
	rec.Seq = j.seq + 1
	if err := validateRecord(&rec, j.seq); err != nil {
		return err
	}
	line, err := encodeRecord(&rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.seq = rec.Seq
	j.records++
	j.size += int64(len(line))
	return nil
}

// Records returns the number of records in the journal (replayed plus
// appended).
func (j *Journal) Records() int64 { return j.records }

// Size returns the journal's byte length.
func (j *Journal) Size() int64 { return j.size }

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
