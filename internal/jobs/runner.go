package jobs

import (
	"context"

	"repro/internal/telemetry"
	"repro/locman"
)

// Runner replaces the manager's in-process simulation with an external
// execution strategy — the distributed coordinator is the one
// implementation. The determinism contract is unchanged: Run must return
// NetworkMetrics bit-identical to locman.SimulateNetworkSharded invoked
// directly with the Spec's configuration, so the job's report bytes stay
// byte-identical to pcnsim -json regardless of where the shards ran. The
// manager still owns the whole job lifecycle (queueing, states, journal,
// results); the runner owns only the simulate step.
type Runner interface {
	Run(ctx context.Context, rc RunContext) (*locman.NetworkMetrics, error)
}

// RunContext is everything the manager hands a Runner for one job.
type RunContext struct {
	// ID is the job id; Spec its full descriptor.
	ID   string
	Spec Spec
	// Progress receives live per-shard counters, indexed by global shard;
	// the runner should Init it for the run's resolved shard count and
	// relay worker progress into it so /stream and /metrics see a
	// distributed run exactly like a local one.
	Progress *telemetry.Progress
	// Journal appends one informational record (dispatch/lease edges) to
	// the job journal, best-effort: failures are counted in the
	// manager's stats, never surfaced here. Nil when the manager has no
	// journal (no DataDir).
	Journal func(rec Record)
}
