package jobs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// journalFixture appends a representative record sequence and returns
// the journal path plus the records as appended.
func journalFixture(t *testing.T) (string, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jl, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := testSpec()
	appended := []Record{
		{Kind: KindSubmit, Job: "j000001", Spec: &spec},
		{Kind: KindState, Job: "j000001", From: StateQueued, To: StateRunning},
		{Kind: KindCheckpoint, Job: "j000001", Slot: 1_000},
		{Kind: KindDispatch, Job: "j000001", Node: "n001", Lo: 0, Hi: 3},
		{Kind: KindLease, Job: "j000001", Node: "n001", Lo: 0, Hi: 3,
			Error: "cluster: node n001: slice stream: unexpected EOF"},
		{Kind: KindDispatch, Job: "j000001", Node: "n002", Lo: 0, Hi: 3},
		{Kind: KindResult, Job: "j000001", Result: []byte(`{"schema":1}` + "\n")},
		{Kind: KindState, Job: "j000001", From: StateRunning, To: StateDone},
	}
	for _, rec := range appended {
		rec.Time = time.Unix(1_700_000_000, 0).UTC()
		if err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if jl.Records() != int64(len(appended)) {
		t.Fatalf("Records() = %d, want %d", jl.Records(), len(appended))
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path, appended
}

func TestJournalRoundTrip(t *testing.T) {
	path, appended := journalFixture(t)
	jl, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if len(recs) != len(appended) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(appended))
	}
	for i, rec := range recs {
		want := appended[i]
		if rec.Seq != int64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Kind != want.Kind || rec.Job != want.Job {
			t.Errorf("record %d: (%s, %s), want (%s, %s)", i, rec.Kind, rec.Job, want.Kind, want.Job)
		}
	}
	// The result bytes must round-trip exactly: the byte-identity
	// guarantee is stated over them.
	if got := recs[6].Result; !bytes.Equal(got, appended[6].Result) {
		t.Errorf("result bytes changed across the journal: %q", got)
	}
	// The lease-history payload must round-trip too: node, slice and
	// the failure reason on the lease edge.
	if d := recs[3]; d.Node != "n001" || d.Lo != 0 || d.Hi != 3 {
		t.Errorf("dispatch record did not round-trip: %+v", d)
	}
	if l := recs[4]; l.Node != "n001" || l.Error != appended[4].Error {
		t.Errorf("lease record did not round-trip: %+v", l)
	}
	if recs[0].Spec == nil || recs[0].Spec.Terminals != testSpec().Terminals {
		t.Errorf("submit spec did not round-trip: %+v", recs[0].Spec)
	}
	// Appending after reopen continues the sequence.
	if err := jl.Append(Record{Kind: KindState, Job: "j000002", From: StateQueued, To: StateCancelled, Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if jl.Records() != int64(len(appended)+1) {
		t.Errorf("Records() after reopen-append = %d", jl.Records())
	}
}

func TestJournalChecksumMismatchRejected(t *testing.T) {
	path, appended := journalFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the third record's payload: replay must keep
	// the two records before it and reject it and everything after.
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[2][len(lines[2])/2] ^= 0x01
	corrupted := bytes.Join(lines, nil)
	recs, valid, err := ReplayJournal(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
	if want := int64(len(lines[0]) + len(lines[1])); valid != want {
		t.Errorf("valid prefix %d bytes, want %d", valid, want)
	}
	if _, err := CheckJournal(corrupted); err == nil {
		t.Error("strict check accepted a corrupted journal")
	}
	_ = appended
}

func TestJournalTruncatedTail(t *testing.T) {
	path, appended := journalFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves any prefix of the final line. Every cut
	// point inside the last record must recover all earlier records, and
	// reopening must truncate the file back to that clean boundary.
	lastStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	for cut := lastStart; cut < len(data); cut++ {
		torn := filepath.Join(t.TempDir(), "journal.ndjson")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jl, recs, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != len(appended)-1 {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(recs), len(appended)-1)
		}
		// The torn tail is gone: a fresh append lands on a clean line.
		if err := jl.Append(Record{Kind: KindCheckpoint, Job: "j000001", Slot: 2_000, Time: time.Now()}); err != nil {
			t.Fatal(err)
		}
		jl.Close()
		if _, err := CheckJournal(mustRead(t, torn)); err != nil {
			t.Errorf("cut at %d: journal not clean after truncate+append: %v", cut, err)
		}
	}
	_ = path

	// The same guarantee when the crash lands mid-lease: a journal whose
	// final line is a partially-written lease record (a coordinator dying
	// while journaling a worker death) must recover everything before it
	// and stay appendable.
	leaseTail := filepath.Join(t.TempDir(), "journal.ndjson")
	jl, _, err := OpenJournal(leaseTail)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	for _, rec := range []Record{
		{Kind: KindSubmit, Job: "j000002", Spec: &spec},
		{Kind: KindState, Job: "j000002", From: StateQueued, To: StateRunning},
		{Kind: KindDispatch, Job: "j000002", Node: "n001", Lo: 2, Hi: 5},
		{Kind: KindLease, Job: "j000002", Node: "n001", Lo: 2, Hi: 5,
			Error: "cluster: node n001: lease expired after 15s of silence on shards [2,5)"},
	} {
		rec.Time = time.Unix(1_700_000_000, 0).UTC()
		if err := jl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()
	full := mustRead(t, leaseTail)
	leaseStart := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	for cut := leaseStart; cut < len(full); cut++ {
		torn := filepath.Join(t.TempDir(), "journal.ndjson")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jl, recs, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("lease cut at %d: %v", cut, err)
		}
		if len(recs) != 3 || recs[2].Kind != KindDispatch {
			t.Fatalf("lease cut at %d: recovered %d records (last %q), want 3 ending in dispatch",
				cut, len(recs), recs[len(recs)-1].Kind)
		}
		// The re-dispatch of the orphaned slice lands on a clean line.
		if err := jl.Append(Record{Kind: KindDispatch, Job: "j000002", Node: "n002",
			Lo: 2, Hi: 5, Time: time.Now()}); err != nil {
			t.Fatal(err)
		}
		jl.Close()
		if _, err := CheckJournal(mustRead(t, torn)); err != nil {
			t.Errorf("lease cut at %d: journal not clean after truncate+append: %v", cut, err)
		}
	}
}

// TestJournalRejectsMalformedLeaseRecords holds both the append path and
// replay to the dispatch/lease payload invariants: a node id is
// mandatory and the shard slice must be non-empty.
func TestJournalRejectsMalformedLeaseRecords(t *testing.T) {
	bad := map[string]Record{
		"dispatch-no-node":  {Kind: KindDispatch, Job: "j1", Lo: 0, Hi: 2},
		"lease-no-node":     {Kind: KindLease, Job: "j1", Lo: 0, Hi: 2, Error: "x"},
		"dispatch-empty":    {Kind: KindDispatch, Job: "j1", Node: "n001", Lo: 3, Hi: 3},
		"dispatch-inverted": {Kind: KindDispatch, Job: "j1", Node: "n001", Lo: 4, Hi: 2},
		"lease-negative-lo": {Kind: KindLease, Job: "j1", Node: "n001", Lo: -1, Hi: 2, Error: "x"},
	}
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	for name, rec := range bad {
		rec.Time = time.Now()
		if err := jl.Append(rec); err == nil {
			t.Errorf("%s: Append accepted the record", name)
		}
		rec.Schema = JournalSchema
		rec.Seq = 1
		line, err := encodeRecord(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if recs, _, _ := ReplayJournal(bytes.NewReader(line)); len(recs) != 0 {
			t.Errorf("%s: replay accepted the record", name)
		}
	}
	// The well-formed versions pass both paths.
	if err := jl.Append(Record{Kind: KindDispatch, Job: "j1", Node: "n001",
		Lo: 0, Hi: 2, Time: time.Now()}); err != nil {
		t.Errorf("well-formed dispatch rejected: %v", err)
	}
	if err := jl.Append(Record{Kind: KindLease, Job: "j1", Node: "n001",
		Lo: 0, Hi: 2, Error: "worker died", Time: time.Now()}); err != nil {
		t.Errorf("well-formed lease rejected: %v", err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJournalRejectsSeqRegression(t *testing.T) {
	spec := testSpec()
	var buf bytes.Buffer
	for _, seq := range []int64{1, 1} {
		rec := Record{Schema: JournalSchema, Seq: seq, Kind: KindSubmit,
			Job: fmt.Sprintf("j%06d", seq), Spec: &spec, Time: time.Now()}
		line, err := encodeRecord(&rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	recs, _, err := ReplayJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("replayed %d records, want 1 (seq must strictly increase)", len(recs))
	}
}

func TestJournalRejectsIllegalTransitionRecord(t *testing.T) {
	rec := Record{Schema: JournalSchema, Seq: 1, Kind: KindState,
		Job: "j000001", From: StateDone, To: StateQueued, Time: time.Now()}
	line, err := encodeRecord(&rec)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReplayJournal(bytes.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Error("replay accepted a done → queued transition record")
	}
}

// FuzzJournalReplay feeds arbitrary bytes through replay: it must never
// panic, must report a valid-prefix length that CheckJournal agrees
// with, and re-replaying the valid prefix must reproduce the same
// records (replay is a pure prefix function).
func FuzzJournalReplay(f *testing.F) {
	spec := testSpec()
	var data []byte
	for i, rec := range []Record{
		{Kind: KindSubmit, Job: "j000001", Spec: &spec},
		{Kind: KindState, Job: "j000001", From: StateQueued, To: StateRunning},
		{Kind: KindCheckpoint, Job: "j000001", Slot: 1_000},
		{Kind: KindDispatch, Job: "j000001", Node: "n001", Lo: 0, Hi: 2},
		{Kind: KindLease, Job: "j000001", Node: "n001", Lo: 0, Hi: 2, Error: "unexpected EOF"},
		{Kind: KindResult, Job: "j000001", Result: []byte(`{"schema":1}` + "\n")},
		{Kind: KindState, Job: "j000001", From: StateRunning, To: StateDone},
	} {
		rec.Schema = JournalSchema
		rec.Seq = int64(i + 1)
		rec.Time = time.Unix(1_700_000_000, 0).UTC()
		line, err := encodeRecord(&rec)
		if err != nil {
			f.Fatal(err)
		}
		data = append(data, line...)
	}
	f.Add(data)
	f.Add(data[:len(data)-7])
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := append([]byte{}, bytes.Join(lines[:2], nil)...)
	mid = append(mid, []byte("{\"r\":{\"garbage\":true},\"c\":0}\n")...)
	f.Add(append(mid, bytes.Join(lines[2:], nil)...))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"r":null,"c":0}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ReplayJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory replay errored: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if n, err := CheckJournal(data[:valid]); err != nil || n != len(recs) {
			t.Fatalf("valid prefix did not re-validate: n=%d err=%v, want %d records", n, err, len(recs))
		}
		again, validAgain, _ := ReplayJournal(bytes.NewReader(data[:valid]))
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("replay of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}
	})
}

// BenchmarkJournalReplay measures boot-recovery cost as a function of
// journal length: b.N records replayed per iteration.
func BenchmarkJournalReplay(b *testing.B) {
	spec := testSpec()
	var buf bytes.Buffer
	result := []byte(`{"schema":1}` + "\n")
	for i := 0; i < b.N; i++ {
		rec := Record{Schema: JournalSchema, Seq: int64(i + 1),
			Time: time.Unix(1_700_000_000, 0).UTC(),
			Job:  fmt.Sprintf("j%06d", i/4+1)}
		switch i % 4 {
		case 0:
			rec.Kind, rec.Spec = KindSubmit, &spec
		case 1:
			rec.Kind, rec.From, rec.To = KindState, StateQueued, StateRunning
		case 2:
			rec.Kind, rec.Result = KindResult, result
		case 3:
			rec.Kind, rec.From, rec.To = KindState, StateRunning, StateDone
		}
		line, err := encodeRecord(&rec)
		if err != nil {
			b.Fatal(err)
		}
		buf.Write(line)
	}
	b.SetBytes(int64(buf.Len()) / int64(b.N))
	b.ResetTimer()
	recs, _, err := ReplayJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != b.N {
		b.Fatalf("replayed %d/%d records: %v", len(recs), b.N, err)
	}
}
