// Package jobs is the job-service core behind pcnserve: JSON job
// descriptors (Spec) that map one-to-one onto engine configurations, a
// strict lifecycle state machine (State), and a Manager that runs jobs
// from a bounded FIFO queue on a fixed worker pool with per-job
// cancellation and deadlines.
//
// Determinism contract: the Manager adds nothing to a run but a
// context and a telemetry.Progress — neither perturbs the simulation —
// so a job's final report is bit-identical to
// locman.SimulateNetworkSharded invoked directly with the Spec's
// configuration, byte for byte in its JSON form (TestManagerDeterminism
// asserts this against the engine).
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/locman"
)

// Submission failure modes the API layer maps onto HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — backpressure, not unbounded growth (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun
	// (HTTP 503).
	ErrShuttingDown = errors.New("jobs: shutting down")
	// ErrNotFound reports an unknown job id (HTTP 404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone reports a result request for a job that has not
	// completed successfully (HTTP 409).
	ErrNotDone = errors.New("jobs: job has no result")
)

// Options configures a Manager; the zero value selects the defaults.
type Options struct {
	// QueueDepth bounds the FIFO submission queue; once QueueDepth jobs
	// are waiting, Submit rejects with ErrQueueFull. 0 means 64.
	QueueDepth int
	// Workers is the worker-pool size: how many jobs simulate
	// concurrently (each job additionally parallelizes internally across
	// its shards). 0 means GOMAXPROCS.
	Workers int
	// Clock stamps job lifecycle times; nil means time.Now. Injectable
	// for tests — it never feeds the simulation, which is seeded purely
	// from the Spec.
	Clock func() time.Time
}

// job is the Manager's internal record of one submission. All mutable
// fields are guarded by the Manager's mutex; progress is internally
// atomic and done is closed exactly once by transition.
type job struct {
	id      string
	spec    Spec
	state   State
	errText string

	created  time.Time
	started  time.Time
	finished time.Time

	// progress receives live per-shard counters while the job runs; the
	// engines publish completed terminal-slots directly (ShardStatus.Work).
	progress *telemetry.Progress

	// cancel aborts the running simulation; cancelRequested records that
	// a client (or shutdown) asked for it, distinguishing cancellation
	// from an engine failure when the run returns.
	cancel          context.CancelFunc
	cancelRequested bool

	// report and resultJSON hold a done job's final report; resultJSON
	// is the exact byte sequence pcnsim -json would emit for the same
	// run, which is what the byte-identity guarantee is stated over.
	report     *locman.Report
	resultJSON []byte

	// doneSlots freezes the job's terminal-slot total when it reaches a
	// terminal state.
	doneSlots int64

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// Manager owns the job table, the bounded queue and the worker pool.
type Manager struct {
	opts Options

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List
	seq    int64
	closed bool
	busy   int

	queue chan *job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New starts a Manager with its worker pool running.
func New(opts Options) *Manager {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, opts.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	for w := 0; w < opts.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m
}

// Submit validates the spec and enqueues a new job, returning its view.
// The queue is the backpressure boundary: a full queue rejects with
// ErrQueueFull immediately rather than blocking the caller or growing
// without bound.
func (m *Manager) Submit(spec Spec) (View, error) {
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrShuttingDown
	}
	m.seq++
	j := &job{
		id:       fmt.Sprintf("j%06d", m.seq),
		spec:     spec,
		state:    StateQueued,
		created:  m.opts.Clock(),
		progress: &telemetry.Progress{},
		done:     make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.seq-- // the rejected submission never existed
		return View{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return m.viewLocked(j), nil
}

// runJob executes one dequeued job through its full lifecycle.
func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue; nothing to run.
		m.mu.Unlock()
		return
	}
	j.transition(StateRunning)
	j.started = m.opts.Clock()
	ctx, cancel := context.WithCancel(m.baseCtx)
	if j.spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx,
			time.Duration(j.spec.TimeoutSec*float64(time.Second)))
	}
	j.cancel = cancel
	m.busy++
	spec := j.spec
	prog := j.progress
	m.mu.Unlock()
	defer cancel()

	report, raw, runErr := runSpec(ctx, spec, prog)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.busy--
	j.finished = m.opts.Clock()
	j.cancel = nil
	switch {
	case runErr == nil:
		j.report = report
		j.resultJSON = raw
		j.doneSlots = spec.Slots * int64(spec.Terminals)
		j.transition(StateDone)
	case j.cancelRequested || errors.Is(runErr, context.Canceled):
		j.doneSlots = j.progressSlots()
		j.transition(StateCancelled)
	case errors.Is(runErr, context.DeadlineExceeded):
		j.errText = fmt.Sprintf("deadline exceeded after %gs", spec.TimeoutSec)
		j.doneSlots = j.progressSlots()
		j.transition(StateFailed)
	default:
		j.errText = runErr.Error()
		j.doneSlots = j.progressSlots()
		j.transition(StateFailed)
	}
}

// runSpec is the deterministic heart of the worker: exactly the engine
// invocation and report encoding pcnsim performs, with a context and a
// progress sink attached (neither influences the results). The returned
// bytes are the report document, indented two spaces with a trailing
// newline — identical to pcnsim -json output for the same Spec.
func runSpec(ctx context.Context, spec Spec, prog *telemetry.Progress) (*locman.Report, []byte, error) {
	cfg, err := spec.NetworkConfig()
	if err != nil {
		return nil, nil, err
	}
	cfg.Progress = prog
	metrics, err := locman.SimulateNetworkShardedCtx(ctx, cfg, spec.Slots, spec.Shards)
	if err != nil {
		return nil, nil, err
	}
	report := locman.NewReport(metrics)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return nil, nil, err
	}
	return report, buf.Bytes(), nil
}

// progressSlots sums the live per-shard progress into completed
// terminal-slots; the caller must hold the lock (the underlying
// counters are atomic, so reading them is always safe). The engines
// report completed work directly (ShardStatus.Work), at sub-batch
// granularity where they have it (the columnar engine publishes per
// cohort), so no slot-times-size arithmetic happens here.
func (j *job) progressSlots() int64 {
	var total int64
	for _, s := range j.progress.Snapshot() {
		total += s.Work
	}
	return total
}

// Cancel requests cancellation of a job. A queued job is cancelled on
// the spot (the worker will skip it); a running job has its context
// cancelled and reaches StateCancelled as soon as its shards stop — the
// engines bound that to well under the service's two-second promise. A
// job already in a terminal state is left untouched; Cancel is
// idempotent.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.finished = m.opts.Clock()
		j.transition(StateCancelled)
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	return m.viewLocked(j), nil
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return m.viewLocked(j), nil
}

// List returns every job's view in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.viewLocked(m.jobs[id]))
	}
	return out
}

// Result returns a done job's report document: the exact bytes
// pcnsim -json would emit for the same Spec.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != StateDone {
		return nil, fmt.Errorf("%w (state %s)", ErrNotDone, j.state)
	}
	return j.resultJSON, nil
}

// Done returns a channel closed when the job reaches a terminal state,
// for watchers that want to block instead of poll.
func (m *Manager) Done(id string) (<-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Shutdown drains the service: it stops accepting submissions, cancels
// every still-queued job, then waits for in-flight jobs to finish. If
// ctx expires first, the in-flight jobs are cancelled and Shutdown
// still waits for the workers to unwind (bounded by the engines'
// cancellation latency) before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		// Drain and cancel everything still queued; the channel is
		// drained under the lock, so no worker can race a dequeue into a
		// half-cancelled state.
	drain:
		for {
			select {
			case j := <-m.queue:
				// A queue slot can hold a job already cancelled by the
				// client; only still-queued jobs need the transition.
				if j.state == StateQueued {
					j.cancelRequested = true
					j.finished = m.opts.Clock()
					j.transition(StateCancelled)
				}
			default:
				break drain
			}
		}
		close(m.queue)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-workersDone
		return ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the service's operational state,
// the source feeding the Prometheus /metrics endpoint.
type Stats struct {
	// QueueDepth is the number of jobs waiting and QueueCap the bound.
	QueueDepth int
	QueueCap   int
	// Workers is the pool size, BusyWorkers how many are simulating now.
	Workers     int
	BusyWorkers int
	// States counts every job ever submitted by current lifecycle state.
	States map[State]int64
	// TerminalSlots is the cumulative terminal-slots simulated across
	// all jobs: exact totals for finished jobs plus live
	// telemetry.Progress readings for running ones. Monotonically
	// non-decreasing, so it exports as a Prometheus counter and its rate
	// is the service's terminal-slots/s throughput.
	TerminalSlots int64
}

// Stats returns the current operational snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		QueueDepth:  len(m.queue),
		QueueCap:    m.opts.QueueDepth,
		Workers:     m.opts.Workers,
		BusyWorkers: m.busy,
		States:      make(map[State]int64, 5),
	}
	for _, s := range States() {
		st.States[s] = 0
	}
	for _, j := range m.jobs {
		st.States[j.state]++
		if j.state.Terminal() {
			st.TerminalSlots += j.doneSlots
		} else if j.state == StateRunning {
			st.TerminalSlots += j.progressSlots()
		}
	}
	return st
}
