// Package jobs is the job-service core behind pcnserve: JSON job
// descriptors (Spec) that map one-to-one onto engine configurations, a
// strict lifecycle state machine (State), and a Manager that runs jobs
// from a bounded FIFO queue on a fixed worker pool with per-job
// cancellation and deadlines.
//
// Determinism contract: the Manager adds nothing to a run but a
// context and a telemetry.Progress — neither perturbs the simulation —
// so a job's final report is bit-identical to
// locman.SimulateNetworkSharded invoked directly with the Spec's
// configuration, byte for byte in its JSON form (TestManagerDeterminism
// asserts this against the engine).
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/results"
	"repro/internal/telemetry"
	"repro/locman"
)

// Submission failure modes the API layer maps onto HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — backpressure, not unbounded growth (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun
	// (HTTP 503).
	ErrShuttingDown = errors.New("jobs: shutting down")
	// ErrRecovering rejects submissions while the journal is still being
	// replayed after a restart (HTTP 503 — temporary, unlike shutdown).
	ErrRecovering = errors.New("jobs: recovering")
	// ErrNotFound reports an unknown job id (HTTP 404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone reports a result request for a job that has not
	// completed successfully (HTTP 409).
	ErrNotDone = errors.New("jobs: job has no result")
)

// Options configures a Manager; the zero value selects the defaults.
type Options struct {
	// QueueDepth bounds the FIFO submission queue; once QueueDepth jobs
	// are waiting, Submit rejects with ErrQueueFull. 0 means 64.
	QueueDepth int
	// Workers is the worker-pool size: how many jobs simulate
	// concurrently (each job additionally parallelizes internally across
	// its shards). 0 means GOMAXPROCS.
	Workers int
	// Clock stamps job lifecycle times; nil means time.Now. Injectable
	// for tests — it never feeds the simulation, which is seeded purely
	// from the Spec.
	Clock func() time.Time
	// DataDir enables durability: the append-only job journal and the
	// per-job checkpoint files live beneath it, and New defers the worker
	// pool until Recover has replayed the journal. Empty keeps the
	// manager fully in-memory, behaving exactly as before.
	DataDir string
	// CheckpointEvery is the slot cadence at which running jobs persist
	// resumable checkpoints (only meaningful with DataDir). 0 disables
	// checkpoint capture; interrupted jobs then restart from slot 0 on
	// recovery — the result is byte-identical either way, resumption
	// only saves the already-simulated slots.
	CheckpointEvery int64
	// Results, when non-nil, receives every done job flattened into the
	// analytics table (ResultRow): live on the done edge, and backfilled
	// from the journaled result bytes during Recover — so after recovery
	// the table holds exactly the done jobs, however the process got
	// there.
	Results *results.Store
	// Runner, when non-nil, executes jobs instead of the in-process
	// engines — the distributed coordinator path. Checkpoint capture and
	// resume (CheckpointEvery) do not apply to runner-executed jobs; an
	// interrupted job is simply re-dispatched from slot 0 on recovery,
	// with a byte-identical result either way.
	Runner Runner
}

// job is the Manager's internal record of one submission. All mutable
// fields are guarded by the Manager's mutex; progress is internally
// atomic and done is closed exactly once by transition.
type job struct {
	id      string
	spec    Spec
	state   State
	errText string

	created  time.Time
	started  time.Time
	finished time.Time

	// progress receives live per-shard counters while the job runs; the
	// engines publish completed terminal-slots directly (ShardStatus.Work).
	progress *telemetry.Progress

	// cancel aborts the running simulation; cancelRequested records that
	// a client (or shutdown) asked for it, distinguishing cancellation
	// from an engine failure when the run returns.
	cancel          context.CancelFunc
	cancelRequested bool

	// report and resultJSON hold a done job's final report; resultJSON
	// is the exact byte sequence pcnsim -json would emit for the same
	// run, which is what the byte-identity guarantee is stated over.
	report     *locman.Report
	resultJSON []byte

	// doneSlots freezes the job's terminal-slot total when it reaches a
	// terminal state.
	doneSlots int64

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// Manager owns the job table, the bounded queue and the worker pool.
type Manager struct {
	opts Options

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List
	seq    int64
	closed bool
	busy   int

	queue chan *job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// Durability state (nil/zero without a DataDir). recovering is true
	// from New until Recover finishes replaying the journal; the
	// counters feed the Prometheus recovery metrics.
	journal       *Journal
	recovering    bool
	replayed      int64 // journal records replayed at boot
	recovered     int64 // jobs re-enqueued by recovery
	resumed       int64 // runs continued from a persisted checkpoint
	ckptWritten   int64 // checkpoint files persisted
	ckptFallbacks int64 // unusable checkpoints that forced a clean run
	journalErrs   int64 // failed journal/checkpoint writes (best-effort)

	// Results-store counters (zero without Options.Results).
	resultsBackfilled int64 // rows rebuilt from the journal at boot
	resultsErrs       int64 // rows that failed to flatten, ingest or persist
}

// New starts a Manager. Without a DataDir the worker pool starts
// immediately; with one, the manager boots in the recovering state —
// rejecting submissions with ErrRecovering and running nothing — until
// Recover has replayed the journal.
func New(opts Options) *Manager {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, opts.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if opts.DataDir == "" {
		m.startWorkers()
	} else {
		m.recovering = true
	}
	return m
}

func (m *Manager) startWorkers() {
	for w := 0; w < m.opts.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
}

// Recovering reports whether the manager is still replaying its journal
// (always false without a DataDir).
func (m *Manager) Recovering() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovering
}

// jobSeq extracts the numeric part of a job id ("j%06d"), so recovery
// can continue the id sequence past every journaled job.
func jobSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Recover opens and replays the journal, rebuilds the job table,
// re-enqueues every job a crash left queued or running, and starts the
// worker pool. It must be called exactly once on a DataDir-configured
// manager before any submission is accepted; without a DataDir it is a
// no-op. Completed jobs come back with their result bytes exactly as
// journaled; interrupted jobs take the recovery edge running → queued
// (itself journaled) and, when a checkpoint file survives, resume
// mid-run rather than starting over. If more jobs need re-enqueueing
// than the configured queue depth, the queue is grown to fit — recovery
// never drops acknowledged work to backpressure.
func (m *Manager) Recover() error {
	if m.opts.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Join(m.opts.DataDir, "checkpoints"), 0o755); err != nil {
		return err
	}
	jl, recs, err := OpenJournal(filepath.Join(m.opts.DataDir, "journal.ndjson"))
	if err != nil {
		return err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		jl.Close()
		return ErrShuttingDown
	}
	m.journal = jl
	m.replayed = int64(len(recs))
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case KindSubmit:
			if _, dup := m.jobs[rec.Job]; dup {
				continue
			}
			j := &job{
				id:       rec.Job,
				spec:     *rec.Spec,
				state:    StateQueued,
				created:  rec.Time,
				progress: &telemetry.Progress{},
				done:     make(chan struct{}),
			}
			m.jobs[rec.Job] = j
			m.order = append(m.order, rec.Job)
			if n := jobSeq(rec.Job); n > m.seq {
				m.seq = n
			}
		case KindState:
			j := m.jobs[rec.Job]
			if j == nil || !CanTransition(j.state, rec.To) {
				continue
			}
			if rec.To == StateDone && j.resultJSON == nil {
				// A done record without its (always-preceding) result
				// record means the journal was damaged between them;
				// leave the job running so it re-queues below.
				continue
			}
			j.state = rec.To
			j.errText = rec.Error
			if rec.To == StateRunning {
				j.started = rec.Time
			} else if rec.To.Terminal() {
				j.finished = rec.Time
			}
		case KindResult:
			if j := m.jobs[rec.Job]; j != nil {
				j.resultJSON = rec.Result
			}
		}
	}
	// Walk the rebuilt table in submission order: terminal jobs settle
	// (their done channels close), interrupted and never-started jobs
	// re-enter the queue in their original order.
	var pend []*job
	for _, id := range m.order {
		j := m.jobs[id]
		switch j.state {
		case StateRunning:
			j.state = StateQueued
			m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateRunning, To: StateQueued})
			m.recovered++
			pend = append(pend, j)
		case StateQueued:
			m.recovered++
			pend = append(pend, j)
		default:
			if j.state == StateDone {
				j.doneSlots = j.spec.Slots * int64(j.spec.Terminals)
				m.backfillResultLocked(j)
			}
			close(j.done)
		}
	}
	if len(pend) > cap(m.queue) {
		m.queue = make(chan *job, len(pend))
	}
	for _, j := range pend {
		m.queue <- j
	}
	m.recovering = false
	m.mu.Unlock()
	m.startWorkers()
	return nil
}

// appendLocked journals one record (stamped with the manager clock)
// when durability is on. Journal failures after boot are counted and
// surfaced through Stats rather than failing the live operation: the
// in-memory state machine stays authoritative for the running process.
// The one exception is Submit, which checks the error — a submission
// that cannot be journaled is rejected, because acknowledging it would
// promise durability the journal cannot honour.
func (m *Manager) appendLocked(rec Record) error {
	if m.journal == nil {
		return nil
	}
	rec.Time = m.opts.Clock().UTC()
	if err := m.journal.Append(rec); err != nil {
		m.journalErrs++
		return err
	}
	return nil
}

// appendRecord journals one record on behalf of a Runner (dispatch and
// lease edges), taking the manager lock the runner does not hold.
// Best-effort like every post-boot append: failures are counted, never
// surfaced.
func (m *Manager) appendRecord(rec Record) {
	m.mu.Lock()
	m.appendLocked(rec)
	m.mu.Unlock()
}

// Submit validates the spec and enqueues a new job, returning its view.
// The queue is the backpressure boundary: a full queue rejects with
// ErrQueueFull immediately rather than blocking the caller or growing
// without bound.
func (m *Manager) Submit(spec Spec) (View, error) {
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrShuttingDown
	}
	if m.recovering {
		return View{}, ErrRecovering
	}
	m.seq++
	j := &job{
		id:       fmt.Sprintf("j%06d", m.seq),
		spec:     spec,
		state:    StateQueued,
		created:  m.opts.Clock(),
		progress: &telemetry.Progress{},
		done:     make(chan struct{}),
	}
	// Only workers drain the queue, so under the lock a observed free
	// slot keeps the send below non-blocking; checking first lets the
	// journal record be durable before the job becomes runnable.
	if len(m.queue) == cap(m.queue) {
		m.seq-- // the rejected submission never existed
		return View{}, ErrQueueFull
	}
	if err := m.appendLocked(Record{Kind: KindSubmit, Job: j.id, Spec: &spec}); err != nil {
		m.seq--
		return View{}, fmt.Errorf("jobs: journaling submission: %w", err)
	}
	m.queue <- j
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return m.viewLocked(j), nil
}

// runJob executes one dequeued job through its full lifecycle.
func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue; nothing to run.
		m.mu.Unlock()
		return
	}
	j.transition(StateRunning)
	m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateQueued, To: StateRunning})
	j.started = m.opts.Clock()
	ctx, cancel := context.WithCancel(m.baseCtx)
	if j.spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx,
			time.Duration(j.spec.TimeoutSec*float64(time.Second)))
	}
	j.cancel = cancel
	m.busy++
	spec := j.spec
	prog := j.progress
	m.mu.Unlock()
	defer cancel()

	report, raw, runErr := m.runSpec(ctx, j.id, spec, prog)

	m.mu.Lock()
	m.busy--
	j.finished = m.opts.Clock()
	j.cancel = nil
	switch {
	case runErr == nil:
		j.report = report
		j.resultJSON = raw
		j.doneSlots = spec.Slots * int64(spec.Terminals)
		// The result record precedes the done record, so a replayed
		// done-state always finds its bytes already in place.
		m.appendLocked(Record{Kind: KindResult, Job: j.id, Result: raw})
		j.transition(StateDone)
		m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateRunning, To: StateDone})
	case j.cancelRequested || errors.Is(runErr, context.Canceled):
		j.doneSlots = j.progressSlots()
		j.transition(StateCancelled)
		m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateRunning, To: StateCancelled})
	case errors.Is(runErr, context.DeadlineExceeded):
		j.errText = fmt.Sprintf("deadline exceeded after %gs", spec.TimeoutSec)
		j.doneSlots = j.progressSlots()
		j.transition(StateFailed)
		m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateRunning, To: StateFailed, Error: j.errText})
	default:
		j.errText = runErr.Error()
		j.doneSlots = j.progressSlots()
		j.transition(StateFailed)
		m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateRunning, To: StateFailed, Error: j.errText})
	}
	// A terminal job's checkpoint is dead weight; a fresh run of a
	// resubmitted id must also never see a stale one.
	m.removeCheckpointLocked(j.id)
	done := j.state == StateDone
	m.mu.Unlock()

	// Flatten the done job into the analytics table outside the manager
	// lock: a persistence-backed store fsyncs its table file per ingest,
	// and that I/O must not stall the whole job table.
	if done && m.opts.Results != nil {
		if err := m.ingestResult(j.id, spec, report); err != nil {
			m.mu.Lock()
			m.resultsErrs++
			m.mu.Unlock()
		}
	}
}

// ingestResult flattens one done job into the results store. A
// duplicate is success — the row is already there (a journal replay
// racing a live edge, a resubmitted recovery), and the table's content
// for a job id never changes once ingested.
func (m *Manager) ingestResult(id string, spec Spec, report *locman.Report) error {
	row, err := ResultRow(id, spec, report)
	if err == nil {
		err = m.opts.Results.Ingest(row)
	}
	if errors.Is(err, results.ErrDuplicateJob) {
		return nil
	}
	return err
}

// backfillResultLocked rebuilds a recovered done job's analytics row
// from its journaled result bytes. Runs under the manager lock during
// Recover — before the recovering flag clears — so a /readyz 200
// implies the table already answers for every recovered job. Jobs the
// store already holds (its own persistence file loaded them) are left
// alone and not counted.
func (m *Manager) backfillResultLocked(j *job) {
	if m.opts.Results == nil || m.opts.Results.Has(j.id) {
		return
	}
	var report locman.Report
	if err := json.Unmarshal(j.resultJSON, &report); err != nil {
		m.resultsErrs++
		return
	}
	if err := m.ingestResult(j.id, j.spec, &report); err != nil {
		m.resultsErrs++
		return
	}
	m.resultsBackfilled++
}

// runSpec is the deterministic heart of the worker: exactly the engine
// invocation and report encoding pcnsim performs, with a context and a
// progress sink attached (neither influences the results). The returned
// bytes are the report document, indented two spaces with a trailing
// newline — identical to pcnsim -json output for the same Spec. The
// determinism contract extends across durability: checkpoint capture
// never perturbs a run, and a run resumed from a checkpoint produces
// the identical bytes (the sim layer's checkpoint-equivalence property),
// so crash recovery is invisible in the result.
func (m *Manager) runSpec(ctx context.Context, id string, spec Spec, prog *telemetry.Progress) (*locman.Report, []byte, error) {
	var metrics *locman.NetworkMetrics
	if m.opts.Runner != nil {
		var err error
		metrics, err = m.opts.Runner.Run(ctx, RunContext{
			ID:       id,
			Spec:     spec,
			Progress: prog,
			Journal:  m.appendRecord,
		})
		if err != nil {
			return nil, nil, err
		}
	} else {
		cfg, err := spec.NetworkConfig()
		if err != nil {
			return nil, nil, err
		}
		cfg.Progress = prog
		metrics, err = m.simulate(ctx, id, cfg, spec)
		if err != nil {
			return nil, nil, err
		}
	}
	report := locman.NewReport(metrics)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return nil, nil, err
	}
	return report, buf.Bytes(), nil
}

// simulate dispatches the engine run, threading the durability options
// through: resume from a surviving checkpoint file when one fits the
// spec, and persist fresh checkpoints at the configured cadence.
func (m *Manager) simulate(ctx context.Context, id string, cfg locman.NetworkConfig, spec Spec) (*locman.NetworkMetrics, error) {
	if m.journal == nil {
		return locman.SimulateNetworkShardedCtx(ctx, cfg, spec.Slots, spec.Shards)
	}
	every := m.opts.CheckpointEvery
	var sink func(*locman.Checkpoint)
	if every > 0 {
		sink = func(cp *locman.Checkpoint) { m.persistCheckpoint(id, cp) }
	}
	if cp := m.loadCheckpoint(id); cp != nil {
		// shards 0 adopts the checkpoint's own partition, which also
		// covers specs that left Shards at 0 (GOMAXPROCS at capture).
		metrics, err := locman.ResumeNetworkCheckpointed(ctx, cfg, spec.Slots, 0, cp, every, sink)
		if err == nil {
			m.mu.Lock()
			m.resumed++
			m.mu.Unlock()
			return metrics, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		// The checkpoint does not describe this run (config drift,
		// partial write from an old binary); fall back to a clean run
		// rather than failing the job.
		m.mu.Lock()
		m.ckptFallbacks++
		m.mu.Unlock()
	}
	return locman.SimulateNetworkCheckpointed(ctx, cfg, spec.Slots, spec.Shards, every, sink)
}

// checkpointPath is where job id's resumable checkpoint lives.
func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.opts.DataDir, "checkpoints", id+".ckpt")
}

// persistCheckpoint writes a checkpoint file atomically (temp file,
// fsync, rename), so the file is always either the old complete
// checkpoint or the new complete one — never a torn mix; the journal's
// checkpoint record is purely informational. Called from a shard
// goroutine mid-run; failures are counted, not fatal (the run itself is
// unaffected, only resumability degrades).
func (m *Manager) persistCheckpoint(id string, cp *locman.Checkpoint) {
	err := func() error {
		data, err := locman.EncodeCheckpoint(cp)
		if err != nil {
			return err
		}
		path := m.checkpointPath(id)
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, path)
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.journalErrs++
		return
	}
	m.ckptWritten++
	m.appendLocked(Record{Kind: KindCheckpoint, Job: id, Slot: cp.Slot})
}

// loadCheckpoint reads and decodes job id's checkpoint file, returning
// nil when there is none (the common case) or when the bytes do not
// decode (counted as a fallback; atomic persistence makes that a
// damaged-disk case, not a crash-timing one).
func (m *Manager) loadCheckpoint(id string) *locman.Checkpoint {
	data, err := os.ReadFile(m.checkpointPath(id))
	if err != nil {
		return nil
	}
	cp, err := locman.DecodeCheckpoint(data)
	if err != nil {
		m.mu.Lock()
		m.ckptFallbacks++
		m.mu.Unlock()
		return nil
	}
	return cp
}

// removeCheckpointLocked deletes a terminal job's checkpoint file.
func (m *Manager) removeCheckpointLocked(id string) {
	if m.journal == nil {
		return
	}
	os.Remove(m.checkpointPath(id))
}

// progressSlots sums the live per-shard progress into completed
// terminal-slots; the caller must hold the lock (the underlying
// counters are atomic, so reading them is always safe). The engines
// report completed work directly (ShardStatus.Work), at sub-batch
// granularity where they have it (the columnar engine publishes per
// cohort), so no slot-times-size arithmetic happens here.
func (j *job) progressSlots() int64 {
	var total int64
	for _, s := range j.progress.Snapshot() {
		total += s.Work
	}
	return total
}

// Cancel requests cancellation of a job. A queued job is cancelled on
// the spot (the worker will skip it); a running job has its context
// cancelled and reaches StateCancelled as soon as its shards stop — the
// engines bound that to well under the service's two-second promise. A
// job already in a terminal state is left untouched; Cancel is
// idempotent.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.finished = m.opts.Clock()
		j.transition(StateCancelled)
		m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateQueued, To: StateCancelled})
		m.removeCheckpointLocked(j.id)
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	return m.viewLocked(j), nil
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return m.viewLocked(j), nil
}

// List returns every job's view in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.viewLocked(m.jobs[id]))
	}
	return out
}

// Result returns a done job's report document: the exact bytes
// pcnsim -json would emit for the same Spec.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != StateDone {
		return nil, fmt.Errorf("%w (state %s)", ErrNotDone, j.state)
	}
	return j.resultJSON, nil
}

// Done returns a channel closed when the job reaches a terminal state,
// for watchers that want to block instead of poll.
func (m *Manager) Done(id string) (<-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Shutdown drains the service: it stops accepting submissions, cancels
// every still-queued job, then waits for in-flight jobs to finish. If
// ctx expires first, the in-flight jobs are cancelled and Shutdown
// still waits for the workers to unwind (bounded by the engines'
// cancellation latency) before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		// Drain and cancel everything still queued; the channel is
		// drained under the lock, so no worker can race a dequeue into a
		// half-cancelled state.
	drain:
		for {
			select {
			case j := <-m.queue:
				// A queue slot can hold a job already cancelled by the
				// client; only still-queued jobs need the transition.
				if j.state == StateQueued {
					j.cancelRequested = true
					j.finished = m.opts.Clock()
					j.transition(StateCancelled)
					m.appendLocked(Record{Kind: KindState, Job: j.id, From: StateQueued, To: StateCancelled})
					m.removeCheckpointLocked(j.id)
				}
			default:
				break drain
			}
		}
		close(m.queue)
	}
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		m.baseCancel()
		<-workersDone
		err = ctx.Err()
	}
	// The workers have unwound, so no append can race the close.
	m.mu.Lock()
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
	m.mu.Unlock()
	return err
}

// Stats is a point-in-time snapshot of the service's operational state,
// the source feeding the Prometheus /metrics endpoint.
type Stats struct {
	// QueueDepth is the number of jobs waiting and QueueCap the bound.
	QueueDepth int
	QueueCap   int
	// Workers is the pool size, BusyWorkers how many are simulating now.
	Workers     int
	BusyWorkers int
	// States counts every job ever submitted by current lifecycle state.
	States map[State]int64
	// TerminalSlots is the cumulative terminal-slots simulated across
	// all jobs: exact totals for finished jobs plus live
	// telemetry.Progress readings for running ones. Monotonically
	// non-decreasing, so it exports as a Prometheus counter and its rate
	// is the service's terminal-slots/s throughput.
	TerminalSlots int64
	// Durability state (zero without a DataDir): whether journal replay
	// is still in progress, the journal's current size, and the recovery
	// counters — records replayed and jobs re-enqueued at the last boot,
	// runs resumed from a checkpoint, checkpoints persisted, checkpoints
	// that had to be abandoned for a clean run, and failed best-effort
	// journal/checkpoint writes.
	Recovering          bool
	JournalBytes        int64
	JournalRecords      int64
	ReplayedRecords     int64
	RecoveredJobs       int64
	ResumedJobs         int64
	CheckpointsWritten  int64
	CheckpointFallbacks int64
	JournalErrors       int64
	// Results-store state (zero without Options.Results): rows the
	// analytics table currently holds, rows rebuilt from the journal at
	// the last boot, and rows that failed to flatten, ingest or persist.
	ResultRows        int64
	ResultsBackfilled int64
	ResultsErrors     int64
}

// Stats returns the current operational snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		QueueDepth:          len(m.queue),
		QueueCap:            m.opts.QueueDepth,
		Workers:             m.opts.Workers,
		BusyWorkers:         m.busy,
		States:              make(map[State]int64, 5),
		Recovering:          m.recovering,
		ReplayedRecords:     m.replayed,
		RecoveredJobs:       m.recovered,
		ResumedJobs:         m.resumed,
		CheckpointsWritten:  m.ckptWritten,
		CheckpointFallbacks: m.ckptFallbacks,
		JournalErrors:       m.journalErrs,
		ResultsBackfilled:   m.resultsBackfilled,
		ResultsErrors:       m.resultsErrs,
	}
	if m.opts.Results != nil {
		st.ResultRows = int64(m.opts.Results.Len())
	}
	if m.journal != nil {
		st.JournalBytes = m.journal.Size()
		st.JournalRecords = m.journal.Records()
	}
	for _, s := range States() {
		st.States[s] = 0
	}
	for _, j := range m.jobs {
		st.States[j.state]++
		if j.state.Terminal() {
			st.TerminalSlots += j.doneSlots
		} else if j.state == StateRunning {
			st.TerminalSlots += j.progressSlots()
		}
	}
	return st
}
