package jobs

import "fmt"

// State is a job's lifecycle state. Jobs move strictly along
//
//	queued → running → done | failed
//	queued | running → cancelled
//	running → queued   (crash recovery only)
//
// and never leave a terminal state; Manager enforces the transition
// relation (CanTransition) on every change, so an illegal move is a
// programming error that surfaces immediately rather than a silently
// corrupted job record. The one backward edge, running → queued, is
// written during journal replay for jobs a crash interrupted mid-run:
// the job re-enters the queue (resuming from its last persisted
// checkpoint when one exists) rather than being lost.
type State string

const (
	// StateQueued: accepted into the bounded FIFO queue, not yet picked
	// up by a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating the job.
	StateRunning State = "running"
	// StateDone: the run completed and the final report is available.
	StateDone State = "done"
	// StateFailed: the run errored (invalid deep configuration, engine
	// failure, or an exceeded per-job deadline).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client or by service shutdown,
	// either before running or mid-run.
	StateCancelled State = "cancelled"
)

// Valid reports whether s is one of the five lifecycle states.
func (s State) Valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Terminal reports whether s is an end state: no further transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// States lists every lifecycle state in progression order, for metrics
// exporters that want a stable iteration order.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// CanTransition reports whether a job may move from one state to
// another.
func CanTransition(from, to State) bool {
	switch from {
	case StateQueued:
		return to == StateRunning || to == StateCancelled
	case StateRunning:
		return to == StateDone || to == StateFailed || to == StateCancelled ||
			to == StateQueued // crash recovery: an interrupted run re-queues
	default:
		return false
	}
}

// transition applies a checked state change to the job; the caller must
// hold the manager's lock. It panics on an illegal move — the state
// machine is entirely service-internal, so a bad transition is a bug,
// never bad input.
func (j *job) transition(to State) {
	if !CanTransition(j.state, to) {
		panic(fmt.Sprintf("jobs: illegal transition %s → %s for %s", j.state, to, j.id))
	}
	j.state = to
	if to.Terminal() {
		close(j.done)
	}
}
