package jobs

import "testing"

// TestCanTransition pins the whole lifecycle transition relation: every
// (from, to) pair, legal and illegal, so any relaxation or tightening of
// the state machine shows up as a diff here.
func TestCanTransition(t *testing.T) {
	legal := map[[2]State]bool{
		{StateQueued, StateRunning}:    true,
		{StateQueued, StateCancelled}:  true,
		{StateRunning, StateDone}:      true,
		{StateRunning, StateFailed}:    true,
		{StateRunning, StateCancelled}: true,
		// The crash-recovery edge: journal replay re-queues jobs a crash
		// interrupted mid-run.
		{StateRunning, StateQueued}: true,
	}
	for _, from := range States() {
		for _, to := range States() {
			want := legal[[2]State{from, to}]
			if got := CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
	// No state may transition to itself, and terminal states go nowhere.
	for _, s := range States() {
		if CanTransition(s, s) {
			t.Errorf("CanTransition(%s, %s) allowed", s, s)
		}
		if s.Terminal() {
			for _, to := range States() {
				if CanTransition(s, to) {
					t.Errorf("terminal state %s may transition to %s", s, to)
				}
			}
		}
	}
}

// TestStatePredicates checks Valid and Terminal against the full
// enumeration plus a junk value.
func TestStatePredicates(t *testing.T) {
	for _, tc := range []struct {
		s        State
		valid    bool
		terminal bool
	}{
		{StateQueued, true, false},
		{StateRunning, true, false},
		{StateDone, true, true},
		{StateFailed, true, true},
		{StateCancelled, true, true},
		{State("exploded"), false, false},
		{State(""), false, false},
	} {
		if got := tc.s.Valid(); got != tc.valid {
			t.Errorf("%q.Valid() = %v, want %v", tc.s, got, tc.valid)
		}
		if got := tc.s.Terminal(); got != tc.terminal {
			t.Errorf("%q.Terminal() = %v, want %v", tc.s, got, tc.terminal)
		}
	}
}

// TestTransitionPanicsOnIllegalMove checks the manager-internal guard:
// an illegal transition is a bug and must crash loudly.
func TestTransitionPanicsOnIllegalMove(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("illegal transition did not panic")
		}
	}()
	j := &job{id: "j000001", state: StateDone, done: make(chan struct{})}
	j.transition(StateRunning)
}
