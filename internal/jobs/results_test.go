package jobs

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/results"
)

// queryJSON runs a query against a store and returns the compact
// response document, the byte string the restart-identity guarantees
// are phrased over.
func queryJSON(t *testing.T, s *results.Store, req string) string {
	t.Helper()
	r, err := results.DecodeRequest([]byte(req))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Query(r)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestManagerIngestsDoneJobs: every job reaching done lands exactly one
// row in the analytics store; failed jobs land none.
func TestManagerIngestsDoneJobs(t *testing.T) {
	store := results.NewStore()
	m := New(Options{QueueDepth: 4, Workers: 1, Results: store})
	defer m.Shutdown(context.Background())

	v1, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec2 := testSpec()
	spec2.Seed = 2
	v2, err := m.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	// A job that fails at run time (threshold beyond the engine cap)
	// must not be flattened.
	bad := testSpec()
	d := 60
	bad.Threshold = &d
	v3, err := m.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{v1.ID, v2.ID, v3.ID} {
		waitTerminal(t, m, id)
	}

	if !store.Has(v1.ID) || !store.Has(v2.ID) || store.Has(v3.ID) {
		t.Fatalf("store rows: has(%s)=%v has(%s)=%v has(%s)=%v",
			v1.ID, store.Has(v1.ID), v2.ID, store.Has(v2.ID), v3.ID, store.Has(v3.ID))
	}
	st := m.Stats()
	if st.ResultRows != 2 || st.ResultsBackfilled != 0 || st.ResultsErrors != 0 {
		t.Fatalf("stats = %+v, want 2 rows, 0 backfilled, 0 errors", st)
	}
	got := queryJSON(t, store, `{"group_by":["seed"],"aggregates":[{"op":"count"}]}`)
	want := `{"schema":1,"group_by":["seed"],"aggregates":["count"],"rows_scanned":2,"rows_matched":2,"groups":[{"key":[1],"values":[1]},{"key":[2],"values":[1]}]}`
	if got != want {
		t.Fatalf("query over ingested rows:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestManagerBackfillsResultsOnRecover is the restart half of the
// analytics contract: a fresh store rebuilt purely from the journal
// answers queries byte-identically to the live store that watched the
// jobs complete.
func TestManagerBackfillsResultsOnRecover(t *testing.T) {
	dir := t.TempDir()
	live := results.NewStore()
	m1 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir, Results: live})
	if err := m1.Recover(); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		spec := testSpec()
		spec.Seed = seed
		v, err := m1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitTerminal(t, m1, id)
	}
	const req = `{"group_by":["seed"],"aggregates":[{"op":"count"},{"op":"mean","column":"total_cost"},{"op":"p95","column":"delay_p95"}]}`
	before := queryJSON(t, live, req)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second life: empty in-memory store, rows rebuilt from the journal.
	rebuilt := results.NewStore()
	m2 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir, Results: rebuilt})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	st := m2.Stats()
	if st.ResultRows != 3 || st.ResultsBackfilled != 3 || st.ResultsErrors != 0 {
		t.Fatalf("backfill stats = %+v, want 3 rows all backfilled", st)
	}
	after := queryJSON(t, rebuilt, req)
	if before != after {
		t.Fatalf("backfilled store answers differently:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestManagerBackfillSkipsLoadedRows: when the store already loaded its
// rows from the table file, Recover must not double-ingest or count
// them as backfilled.
func TestManagerBackfillSkipsLoadedRows(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "results.table.json")

	s1, err := results.Open(table)
	if err != nil {
		t.Fatal(err)
	}
	m1 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir, Results: s1})
	if err := m1.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, v.ID)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := results.Open(table)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("table file reloaded %d rows, want 1", s2.Len())
	}
	m2 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir, Results: s2})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	st := m2.Stats()
	if st.ResultRows != 1 || st.ResultsBackfilled != 0 || st.ResultsErrors != 0 {
		t.Fatalf("stats = %+v, want 1 loaded row and 0 backfilled", st)
	}
}
