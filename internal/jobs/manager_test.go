package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/locman"
)

// testSpec is a small job that completes in well under a second.
func testSpec() Spec {
	return Spec{
		Model:      "2d",
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
		Terminals:  10,
		Slots:      2_000,
		Shards:     2,
		Seed:       1,
	}
}

// waitTerminal blocks until the job leaves the non-terminal states.
func waitTerminal(t *testing.T, m *Manager, id string) View {
	t.Helper()
	done, err := m.Done(id)
	if err != nil {
		t.Fatalf("Done(%s): %v", id, err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state", id)
	}
	v, err := m.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return v
}

// TestManagerRunsJob walks one job through the happy path: submit,
// complete, result available, stats consistent.
func TestManagerRunsJob(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.ID == "" || v.State != StateQueued || v.Schema != SpecSchema {
		t.Fatalf("unexpected submit view: %+v", v)
	}
	if v.TotalTerminalSlots != 20_000 {
		t.Fatalf("TotalTerminalSlots = %d, want 20000", v.TotalTerminalSlots)
	}

	final := waitTerminal(t, m, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.TerminalSlots != final.TotalTerminalSlots {
		t.Fatalf("done job at %d/%d terminal-slots", final.TerminalSlots, final.TotalTerminalSlots)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatal("done job missing lifecycle timestamps")
	}

	raw, err := m.Result(v.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var report locman.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("result does not decode as a report: %v", err)
	}
	if report.Schema != locman.ReportSchema || report.Slots != 2_000 {
		t.Fatalf("unexpected report: schema %d, slots %d", report.Schema, report.Slots)
	}

	st := m.Stats()
	if st.States[StateDone] != 1 || st.TerminalSlots != 20_000 {
		t.Fatalf("stats after completion: %+v", st)
	}
}

// TestManagerDeterminism is the subsystem's acceptance contract: a job
// run through the service yields a final report byte-identical to the
// same configuration run directly through locman.SimulateNetworkSharded
// and encoded the way pcnsim -json encodes it.
func TestManagerDeterminism(t *testing.T) {
	spec := testSpec()
	spec.SnapshotEvery = 500
	spec.Faults = &FaultSpec{UpdateLoss: 0.1}

	m := New(Options{QueueDepth: 4, Workers: 2})
	defer m.Shutdown(context.Background())
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := waitTerminal(t, m, v.ID); got.State != StateDone {
		t.Fatalf("state = %s (%s), want done", got.State, got.Error)
	}
	viaService, err := m.Result(v.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	cfg, err := spec.NetworkConfig()
	if err != nil {
		t.Fatalf("NetworkConfig: %v", err)
	}
	metrics, err := locman.SimulateNetworkSharded(cfg, spec.Slots, spec.Shards)
	if err != nil {
		t.Fatalf("SimulateNetworkSharded: %v", err)
	}
	var direct bytes.Buffer
	enc := json.NewEncoder(&direct)
	enc.SetIndent("", "  ")
	if err := enc.Encode(locman.NewReport(metrics)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(viaService, direct.Bytes()) {
		t.Fatalf("service report diverged from direct run:\nservice %d bytes\ndirect  %d bytes",
			len(viaService), direct.Len())
	}
}

// TestManagerQueueBackpressure fills the bounded queue with a single
// stalled worker and checks overflow is rejected with ErrQueueFull —
// never accepted into unbounded growth — and that every accepted job
// still completes once the worker unblocks.
func TestManagerQueueBackpressure(t *testing.T) {
	const depth = 4
	// One worker, pinned down by a deliberately slow first job.
	m := New(Options{QueueDepth: depth, Workers: 1})
	defer m.Shutdown(context.Background())

	slow := testSpec()
	slow.Terminals = 200
	slow.Slots = 2_000_000
	blocker, err := m.Submit(slow)
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	// Wait until the worker has picked the blocker up, so the queue is
	// genuinely empty before the fill.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := m.Get(blocker.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	var accepted []string
	for i := 0; i < depth; i++ {
		v, err := m.Submit(testSpec())
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		accepted = append(accepted, v.ID)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.QueueDepth != depth || st.QueueCap != depth {
		t.Fatalf("queue stats %d/%d, want %d/%d", st.QueueDepth, st.QueueCap, depth, depth)
	}

	// Unblock and drain: every accepted job completes.
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	if v := waitTerminal(t, m, blocker.ID); v.State != StateCancelled {
		t.Fatalf("blocker state = %s, want cancelled", v.State)
	}
	for _, id := range accepted {
		if v := waitTerminal(t, m, id); v.State != StateDone {
			t.Fatalf("job %s state = %s (%s), want done", id, v.State, v.Error)
		}
	}
}

// TestManagerCancelRunning is the cancel-while-running race test: many
// concurrent cancellations against a job mid-simulation must produce
// exactly one clean queued→running→cancelled lifecycle, promptly.
// Run under -race this also exercises the manager's locking against the
// worker transitions.
func TestManagerCancelRunning(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	big := testSpec()
	big.Terminals = 1_000
	big.Slots = 50_000_000
	v, err := m.Submit(big)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := m.Get(v.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Hammer Cancel from several goroutines at once.
	start := time.Now()
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := m.Cancel(v.ID)
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent Cancel: %v", err)
		}
	}
	final := waitTerminal(t, m, v.ID)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if final.State != StateCancelled || final.Error != "" {
		t.Fatalf("final state = %s (%q), want cancelled with no error", final.State, final.Error)
	}
}

// TestManagerCancelColsEngine is TestManagerCancelRunning on the
// columnar engine: a running cols job must observe cancellation within
// one cohort block and land in the cancelled state through the service,
// inside the same two-second promise the other engines honour.
func TestManagerCancelColsEngine(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	big := testSpec()
	big.Engine = "cols"
	// A population wider than one cohort and a slot count deep enough
	// that the run cannot finish first.
	big.Terminals = 10_000
	big.Slots = 50_000_000
	v, err := m.Submit(big)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := m.Get(v.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitTerminal(t, m, v.ID)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if final.State != StateCancelled || final.Error != "" {
		t.Fatalf("final state = %s (%q), want cancelled with no error", final.State, final.Error)
	}
}

// TestManagerCancelQueued cancels a job before any worker touches it.
func TestManagerCancelQueued(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	slow := testSpec()
	slow.Terminals = 200
	slow.Slots = 2_000_000
	blocker, err := m.Submit(slow)
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	queued, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled immediately", got.State)
	}
	// Idempotent: cancelling again changes nothing.
	if again, err := m.Cancel(queued.ID); err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	waitTerminal(t, m, blocker.ID)
}

// TestManagerDeadline checks the per-job deadline: a job that cannot
// finish inside timeout_sec fails with a deadline error.
func TestManagerDeadline(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	spec := testSpec()
	spec.Terminals = 1_000
	spec.Slots = 50_000_000
	spec.TimeoutSec = 0.2
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitTerminal(t, m, v.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("final state = %s (%q), want failed with deadline error", final.State, final.Error)
	}
}

// TestManagerFailedJob checks that a spec valid at submit time but
// rejected by the engine's deeper validation surfaces as a failed job
// carrying the engine's error, not a wedged worker.
func TestManagerFailedJob(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())

	spec := testSpec()
	d := 60
	spec.Threshold = &d // exceeds the engine's MaxThreshold default of 50
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitTerminal(t, m, v.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("final state = %s (%q), want failed with an error", final.State, final.Error)
	}
}

// TestManagerSubmitValidation checks malformed specs are rejected at the
// door with enumerating errors.
func TestManagerSubmitValidation(t *testing.T) {
	m := New(Options{QueueDepth: 4, Workers: 1})
	defer m.Shutdown(context.Background())
	for _, tc := range []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"zero terminals", func(s *Spec) { s.Terminals = 0 }, "terminals"},
		{"zero slots", func(s *Spec) { s.Slots = 0 }, "slots"},
		{"negative shards", func(s *Spec) { s.Shards = -1 }, "shards"},
		{"negative timeout", func(s *Spec) { s.TimeoutSec = -1 }, "timeout_sec"},
		{"bad model", func(s *Spec) { s.Model = "3d" }, "valid models"},
		{"bad engine", func(s *Spec) { s.Engine = "warp" }, "valid engines"},
		{"bad partition", func(s *Spec) { s.Partition = "spiral" }, "valid schemes"},
		{"bad probabilities", func(s *Spec) { s.MoveProb = 0.9; s.CallProb = 0.9 }, ""},
	} {
		spec := testSpec()
		tc.mutate(&spec)
		_, err := m.Submit(spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestManagerShutdownCancelsQueued checks shutdown semantics: queued
// jobs are cancelled, in-flight jobs get the drain window, and further
// submissions are refused.
func TestManagerShutdownCancelsQueued(t *testing.T) {
	m := New(Options{QueueDepth: 8, Workers: 1})

	slow := testSpec()
	slow.Terminals = 1_000
	slow.Slots = 50_000_000
	running, err := m.Submit(slow)
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	queued, err := m.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	// Give the worker a moment to pick up the slow job, then shut down
	// with an immediate drain deadline: the running job must be
	// cancelled, not awaited.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := m.Get(running.ID)
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: err = %v, want DeadlineExceeded (forced cancel)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}

	if v, _ := m.Get(queued.ID); v.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", v.State)
	}
	if v, _ := m.Get(running.ID); v.State != StateCancelled {
		t.Fatalf("running job state = %s, want cancelled", v.State)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: err = %v, want ErrShuttingDown", err)
	}
}

// TestManagerConcurrentLoad pushes 32 concurrent jobs through a small
// pool — the sustained-throughput acceptance shape — and checks every
// one completes with a coherent final stats picture.
func TestManagerConcurrentLoad(t *testing.T) {
	const n = 32
	m := New(Options{QueueDepth: n, Workers: 4})
	defer m.Shutdown(context.Background())

	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spec := testSpec()
		spec.Seed = uint64(i + 1)
		spec.Shards = 1
		v, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := waitTerminal(t, m, id); v.State != StateDone {
			t.Fatalf("job %s state = %s (%s)", id, v.State, v.Error)
		}
	}
	st := m.Stats()
	if st.States[StateDone] != n {
		t.Fatalf("done count = %d, want %d", st.States[StateDone], n)
	}
	if want := int64(n * 10 * 2_000); st.TerminalSlots != want {
		t.Fatalf("TerminalSlots = %d, want %d", st.TerminalSlots, want)
	}
	if views := m.List(); len(views) != n {
		t.Fatalf("List returned %d jobs, want %d", len(views), n)
	}
}
