package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/locman"
)

// referenceResult computes the byte-exact report document for a spec the
// way pcnsim -json would, bypassing the manager entirely.
func referenceResult(t *testing.T, spec Spec) []byte {
	t.Helper()
	cfg, err := spec.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := locman.SimulateNetworkSharded(cfg, spec.Slots, spec.Shards)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(locman.NewReport(metrics)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyDir replicates a data directory, snapshotting exactly what a
// SIGKILL would leave on disk at that instant (including any torn
// journal tail).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagerRecoversCompletedResults(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()

	m1 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir})
	if _, err := m1.Submit(spec); !errors.Is(err, ErrRecovering) {
		t.Fatalf("submit before Recover: %v, want ErrRecovering", err)
	}
	if !m1.Recovering() {
		t.Error("manager should report recovering before Recover")
	}
	if err := m1.Recover(); err != nil {
		t.Fatal(err)
	}
	if m1.Recovering() {
		t.Error("manager still recovering after Recover")
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, v.ID)
	result, err := m1.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(cv.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, cv.ID)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2 := New(Options{QueueDepth: 4, Workers: 1, DataDir: dir})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	got, err := m2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, result) {
		t.Error("recovered result bytes differ from the original")
	}
	if !bytes.Equal(got, referenceResult(t, spec)) {
		t.Error("recovered result bytes differ from the engine reference")
	}
	cg, err := m2.Get(cv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cg.State != StateCancelled {
		t.Errorf("cancelled job recovered as %s", cg.State)
	}
	st := m2.Stats()
	if st.ReplayedRecords == 0 || st.JournalRecords == 0 || st.JournalBytes == 0 {
		t.Errorf("recovery stats empty: %+v", st)
	}
	// Ids continue past the journaled jobs rather than colliding.
	nv, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID <= cv.ID {
		t.Errorf("post-recovery id %s does not continue past %s", nv.ID, cv.ID)
	}
	waitTerminal(t, m2, nv.ID)
}

// TestManagerCrashResumeByteIdentity is the in-process analogue of the
// CI chaos leg: snapshot the data directory while a checkpointed job is
// mid-run (exactly the bytes a SIGKILL would leave), recover a second
// manager from the snapshot, and require the resumed job's stored
// result to be byte-identical to the engine reference.
func TestManagerCrashResumeByteIdentity(t *testing.T) {
	dirA := t.TempDir()
	dirB := t.TempDir()
	spec := testSpec()
	spec.Slots = 10_000_000
	const every = 250_000

	mA := New(Options{QueueDepth: 4, Workers: 1, DataDir: dirA, CheckpointEvery: every})
	if err := mA.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dirA, "checkpoints", v.ID+".ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint file appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	copyDir(t, dirA, dirB)
	// The original process is now irrelevant; tear it down hard.
	mA.Cancel(v.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	mA.Shutdown(ctx)

	// The snapshot must have caught the job mid-run for the test to
	// exercise resume; with a ~40-checkpoint run this only fails if the
	// machine stalls for the whole run length between poll and copy.
	recs, _, err := ReplayJournal(bytes.NewReader(mustRead(t, filepath.Join(dirB, "journal.ndjson"))))
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Kind == KindState && last.To.Terminal() {
		t.Skip("job finished before the snapshot; nothing to resume")
	}

	mB := New(Options{QueueDepth: 4, Workers: 1, DataDir: dirB, CheckpointEvery: every})
	if err := mB.Recover(); err != nil {
		t.Fatal(err)
	}
	defer mB.Shutdown(context.Background())
	if st := mB.Stats(); st.RecoveredJobs != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", st.RecoveredJobs)
	}
	got := waitTerminal(t, mB, v.ID)
	if got.State != StateDone {
		t.Fatalf("recovered job ended %s (%s)", got.State, got.Error)
	}
	result, err := mB.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, referenceResult(t, spec)) {
		t.Error("resumed job's result is not byte-identical to the engine reference")
	}
	st := mB.Stats()
	if st.ResumedJobs != 1 {
		t.Errorf("ResumedJobs = %d, want 1 (fallbacks %d)", st.ResumedJobs, st.CheckpointFallbacks)
	}
	if _, err := os.Stat(filepath.Join(dirB, "checkpoints", v.ID+".ckpt")); !os.IsNotExist(err) {
		t.Error("terminal job's checkpoint file was not removed")
	}
}

// TestManagerRecoveryGrowsQueue: recovery must never drop acknowledged
// jobs to backpressure, even when more jobs were journaled than the
// configured queue depth.
func TestManagerRecoveryGrowsQueue(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "checkpoints"), 0o755); err != nil {
		t.Fatal(err)
	}
	jl, _, err := OpenJournal(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	ids := []string{"j000001", "j000002", "j000003", "j000004", "j000005"}
	for _, id := range ids {
		if err := jl.Append(Record{Kind: KindSubmit, Job: id, Spec: &spec, Time: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	// The first job was mid-run when the crash hit.
	if err := jl.Append(Record{Kind: KindState, Job: ids[0], From: StateQueued, To: StateRunning, Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	m := New(Options{QueueDepth: 2, Workers: 1, DataDir: dir})
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	if st := m.Stats(); st.RecoveredJobs != int64(len(ids)) {
		t.Fatalf("RecoveredJobs = %d, want %d", st.RecoveredJobs, len(ids))
	}
	want := referenceResult(t, spec)
	for _, id := range ids {
		v := waitTerminal(t, m, id)
		if v.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, v.State, v.Error)
		}
		got, err := m.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %s result differs from the reference", id)
		}
	}
}
