package jobs

import (
	"time"

	"repro/internal/telemetry"
)

// View is the schema-stable JSON representation of a job the API serves:
// the descriptor it was submitted with, its lifecycle state, timestamps,
// and live progress while it runs. Views are snapshots — they carry no
// references into the Manager, so the API layer can marshal them without
// holding any lock.
type View struct {
	// Schema is always SpecSchema.
	Schema int `json:"schema"`
	// ID is the service-assigned job id, unique for the service's
	// lifetime and ordered by submission.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Spec echoes the submitted descriptor verbatim.
	Spec Spec `json:"spec"`
	// Error describes why a failed job failed; empty otherwise.
	Error string `json:"error,omitempty"`
	// Created, Started and Finished stamp the lifecycle edges; Started
	// and Finished are absent until the job reaches them.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// TerminalSlots counts terminal-slots simulated so far (exact for
	// finished jobs, live telemetry.Progress for running ones);
	// TotalTerminalSlots is the job's goal, so the ratio is its
	// completion fraction.
	TerminalSlots      int64 `json:"terminal_slots"`
	TotalTerminalSlots int64 `json:"total_terminal_slots"`
	// Shards is the live per-shard progress of a running job; absent
	// otherwise.
	Shards []telemetry.ShardStatus `json:"shards,omitempty"`
}

// viewLocked snapshots a job; the caller holds the Manager's lock.
func (m *Manager) viewLocked(j *job) View {
	v := View{
		Schema:             SpecSchema,
		ID:                 j.id,
		State:              j.state,
		Spec:               j.spec,
		Error:              j.errText,
		Created:            j.created,
		TotalTerminalSlots: j.spec.Slots * int64(j.spec.Terminals),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	switch {
	case j.state.Terminal():
		v.TerminalSlots = j.doneSlots
	case j.state == StateRunning:
		v.TerminalSlots = j.progressSlots()
		v.Shards = j.progress.Snapshot()
	}
	return v
}
