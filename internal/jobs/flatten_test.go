package jobs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/results"
	"repro/locman"
)

// runReport simulates a spec directly (bypassing the manager) and
// returns the report the job runner would journal.
func runReport(t *testing.T, spec Spec) *locman.Report {
	t.Helper()
	cfg, err := spec.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := locman.SimulateNetworkSharded(cfg, spec.Slots, spec.Shards)
	if err != nil {
		t.Fatal(err)
	}
	return locman.NewReport(metrics)
}

// TestResultRowFlattening pins the knob half of the row: explicit specs
// carry their knobs through with the documented zero-value spellings
// (nil scheme is "distance", nil partition "sdf"), scenario specs
// resolve to the registered model's knobs.
func TestResultRowFlattening(t *testing.T) {
	d := 2
	spec := testSpec()
	spec.Threshold = &d
	report := runReport(t, spec)

	row, err := ResultRow("j000007", spec, report)
	if err != nil {
		t.Fatal(err)
	}
	if row.Job != "j000007" {
		t.Errorf("Job = %q", row.Job)
	}
	if row.Scenario != "" || row.Scheme != "distance" || row.SchemeParam != 0 ||
		row.Partition != "sdf" || row.Model != "2d" || row.Engine != "fast" {
		t.Errorf("default dims wrong: %+v", row)
	}
	if row.D != 2 || row.Q != 0.05 || row.C != 0.01 || row.U != 100 || row.V != 10 ||
		row.M != 3 || row.Dynamic != 0 {
		t.Errorf("knob dims wrong: %+v", row)
	}
	if row.Terminals != int64(report.Terminals) || row.Slots != report.Slots ||
		row.Shards != 2 || row.Seed != 1 {
		t.Errorf("shape dims wrong: %+v", row)
	}
	if row.TotalCost != report.TotalCost || row.Updates != report.Updates ||
		row.Calls != report.Calls || row.Events != int64(report.Events) {
		t.Errorf("metrics wrong: %+v", row)
	}
	if report.DelayHist != nil && row.DelayP95 != report.DelayHist.P95 {
		t.Errorf("DelayP95 = %v, hist %v", row.DelayP95, report.DelayHist.P95)
	}

	// A scenario spec resolves the scenario's model: highway-commute is
	// the 1-D corridor under movement-based updates with M=6.
	sspec := Spec{Scenario: "highway-commute", Terminals: 10, Slots: 2_000, Shards: 2, Seed: 1}
	srow, err := ResultRow("j000008", sspec, runReport(t, sspec))
	if err != nil {
		t.Fatal(err)
	}
	if srow.Scenario != "highway-commute" || srow.Scheme != "movement" ||
		srow.SchemeParam != 6 || srow.Model != "1d" || srow.Q != 0.45 || srow.V != 5 {
		t.Errorf("scenario dims wrong: %+v", srow)
	}
	// No explicit threshold: the network-optimized sentinel flows through.
	if srow.D != -1 {
		t.Errorf("D = %d, want -1 (network-optimized)", srow.D)
	}

	// An invalid spec propagates the resolution error.
	if _, err := ResultRow("j000009", Spec{Scenario: "nope"}, report); err == nil {
		t.Error("unknown scenario flattened without error")
	}
}

// TestResultRowNilHistPercentiles: a report without histograms (e.g.
// hand-built metrics) flattens to NaN percentile columns, which every
// aggregate skips.
func TestResultRowNilHistPercentiles(t *testing.T) {
	spec := testSpec()
	report := runReport(t, spec)
	report.DelayHist = nil
	report.RecoveryHist = nil
	row, err := ResultRow("j000001", spec, report)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"delay_p50": row.DelayP50, "delay_p95": row.DelayP95, "delay_p99": row.DelayP99,
		"recovery_p50": row.RecoveryP50, "recovery_p95": row.RecoveryP95, "recovery_p99": row.RecoveryP99,
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s = %v, want NaN", name, v)
		}
	}
	// NaN metrics must still ingest (only dimensions must be finite).
	if err := results.NewStore().Ingest(row); err != nil {
		t.Fatalf("NaN-percentile row rejected: %v", err)
	}
}

// TestResultRowLiveVsDecodedIdentity proves the restart byte-identity
// premise: flattening the in-memory report (live done edge) and
// flattening the report decoded back from its journaled JSON document
// (recovery backfill) produce bit-identical rows.
func TestResultRowLiveVsDecodedIdentity(t *testing.T) {
	spec := testSpec()
	live := runReport(t, spec)

	// Encode exactly the way the job runner journals results.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(live); err != nil {
		t.Fatal(err)
	}
	var decoded locman.Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}

	a, err := ResultRow("j000001", spec, live)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResultRow("j000001", spec, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsBitIdentical(a, b) {
		t.Fatalf("live and journal-decoded rows differ:\nlive:    %+v\ndecoded: %+v", a, b)
	}
}

// rowsBitIdentical compares two rows field by field, floats at the bit
// level so NaN columns compare equal to themselves.
func rowsBitIdentical(a, b results.Row) bool {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if fa.Kind() == reflect.Float64 {
			if math.Float64bits(fa.Float()) != math.Float64bits(fb.Float()) {
				return false
			}
			continue
		}
		if !fa.Equal(fb) {
			return false
		}
	}
	return true
}
