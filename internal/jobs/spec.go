package jobs

import (
	"fmt"
	"runtime"
	"strings"

	"repro/locman"
)

// SpecSchema versions the JSON job-descriptor layout accepted by the job
// service (pcnserve) and emitted by its API; it increments on any
// breaking change so clients can reject documents they do not
// understand. It also versions the job View documents, which embed the
// Spec.
const SpecSchema = 1

// Spec is the JSON job descriptor: a complete, self-contained
// description of one PCN simulation run — the analytical configuration,
// the population and run length, the fault plan, the engine and shard
// choice, telemetry cadence and seed. It maps one-to-one onto
// locman.NetworkConfig plus the (slots, shards) run arguments, and that
// mapping is the service's determinism contract: a Spec run through the
// job service yields a final report bit-identical to
// locman.SimulateNetworkSharded invoked directly with the same values.
//
// Zero values follow the pcnsim CLI defaults where those defaults are
// themselves zero-like; the two deliberate exceptions are Threshold
// (nil means network-optimized, pcnsim's -d -1) and Shards (0 means
// GOMAXPROCS, like -shards).
type Spec struct {
	// Model is the mobility model: "1d" or "2d" ("" means "2d").
	Model string `json:"model,omitempty"`
	// MoveProb (q) and CallProb (c) are the per-slot movement and
	// call-arrival probabilities.
	MoveProb float64 `json:"move_prob"`
	CallProb float64 `json:"call_prob"`
	// UpdateCost (U) and PollCost (V) are the signalling unit costs.
	UpdateCost float64 `json:"update_cost"`
	PollCost   float64 `json:"poll_cost"`
	// MaxDelay (m) is the paging delay bound in polling cycles; 0 means
	// unbounded.
	MaxDelay int `json:"max_delay,omitempty"`
	// Partition names the paging partitioner ("" means "sdf"); valid
	// names are locman.PartitionNames.
	Partition string `json:"partition,omitempty"`
	// Terminals is the population size and Slots the run length.
	Terminals int   `json:"terminals"`
	Slots     int64 `json:"slots"`
	// Shards is the parallel shard count; 0 selects GOMAXPROCS. Results
	// are bit-identical for every value.
	Shards int `json:"shards,omitempty"`
	// Threshold is the static update threshold; nil means
	// network-optimized once from the analytical parameters.
	Threshold *int `json:"threshold,omitempty"`
	// Dynamic enables per-terminal online estimation with periodic
	// re-optimization every ReoptimizeEvery slots (0 means the engine
	// default).
	Dynamic         bool  `json:"dynamic,omitempty"`
	ReoptimizeEvery int64 `json:"reoptimize_every,omitempty"`
	// Faults optionally injects signalling-plane failures and configures
	// the recovery machinery; nil is a perfect signalling plane.
	Faults *FaultSpec `json:"faults,omitempty"`
	// SnapshotEvery switches on telemetry snapshot frames every N slots;
	// 0 disables the series.
	SnapshotEvery int64 `json:"snapshot_every,omitempty"`
	// Seed seeds the deterministic simulation.
	Seed uint64 `json:"seed"`
	// Engine selects the simulation engine ("" means "fast"); valid
	// names are locman.EngineNames.
	Engine string `json:"engine,omitempty"`
	// TimeoutSec is the per-job wall-clock deadline in seconds; 0 means
	// no deadline. A job exceeding it fails with a deadline error.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// FaultSpec is the JSON view of locman.FaultPlan; see that type for the
// field semantics (including the ExplicitZero sentinel for AckTimeout
// and PageRetries).
type FaultSpec struct {
	UpdateLoss    float64      `json:"update_loss,omitempty"`
	PollLoss      float64      `json:"poll_loss,omitempty"`
	ReplyLoss     float64      `json:"reply_loss,omitempty"`
	UpdateRetries int          `json:"update_retries,omitempty"`
	AckTimeout    int64        `json:"ack_timeout,omitempty"`
	PageRetries   int          `json:"page_retries,omitempty"`
	Outages       []OutageSpec `json:"outages,omitempty"`
}

// OutageSpec is one scheduled HLR outage window in slots [Start, End).
type OutageSpec struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// plan maps the JSON fault section onto the engine's FaultPlan.
func (f *FaultSpec) plan() locman.FaultPlan {
	if f == nil {
		return locman.FaultPlan{}
	}
	p := locman.FaultPlan{
		UpdateLoss:    f.UpdateLoss,
		PollLoss:      f.PollLoss,
		ReplyLoss:     f.ReplyLoss,
		UpdateRetries: f.UpdateRetries,
		AckTimeout:    f.AckTimeout,
		PageRetries:   f.PageRetries,
	}
	for _, w := range f.Outages {
		p.Outages = append(p.Outages, locman.Outage{Start: w.Start, End: w.End})
	}
	return p
}

// model resolves the Spec's model name.
func (s *Spec) model() (locman.Model, error) {
	switch s.Model {
	case "1d":
		return locman.OneDimensional, nil
	case "2d", "":
		return locman.TwoDimensional, nil
	default:
		return 0, fmt.Errorf("jobs: unknown model %q (valid models: 1d, 2d)", s.Model)
	}
}

// NetworkConfig maps the Spec onto the engine configuration it
// describes. The mapping is pure — no defaults beyond the documented
// zero-value meanings — so equal Specs always produce equal configs.
func (s *Spec) NetworkConfig() (locman.NetworkConfig, error) {
	mdl, err := s.model()
	if err != nil {
		return locman.NetworkConfig{}, err
	}
	cfg := locman.NetworkConfig{
		Config: locman.Config{
			Model:      mdl,
			MoveProb:   s.MoveProb,
			CallProb:   s.CallProb,
			UpdateCost: s.UpdateCost,
			PollCost:   s.PollCost,
			MaxDelay:   s.MaxDelay,
		},
		Terminals:       s.Terminals,
		Threshold:       -1,
		Dynamic:         s.Dynamic,
		ReoptimizeEvery: s.ReoptimizeEvery,
		Faults:          s.Faults.plan(),
		SnapshotEvery:   s.SnapshotEvery,
		Seed:            s.Seed,
	}
	if s.Threshold != nil {
		cfg.Threshold = *s.Threshold
	}
	if s.Partition != "" {
		p, err := locman.PartitionByName(s.Partition)
		if err != nil {
			return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
		}
		cfg.Partition = p
	}
	if s.Engine != "" {
		e, err := locman.EngineByName(s.Engine)
		if err != nil {
			return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
		}
		cfg.Engine = e
	}
	return cfg, nil
}

// ResolvedShards is the shard count the run will actually use: the
// GOMAXPROCS default for 0, clamped to the population like the engine
// clamps it.
func (s *Spec) ResolvedShards() int {
	n := s.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > s.Terminals && s.Terminals > 0 {
		n = s.Terminals
	}
	return n
}

// Validate rejects unusable specs with errors phrased for API clients.
// It covers both the service-level constraints (positive run shape,
// sane timeout) and the full engine validation, so a Spec that
// validates here is guaranteed to start simulating when its turn comes.
func (s *Spec) Validate() error {
	var problems []string
	if s.Terminals <= 0 {
		problems = append(problems, fmt.Sprintf("terminals must be positive, got %d", s.Terminals))
	}
	if s.Slots <= 0 {
		problems = append(problems, fmt.Sprintf("slots must be positive, got %d", s.Slots))
	}
	if s.Shards < 0 {
		problems = append(problems, fmt.Sprintf("shards must not be negative, got %d", s.Shards))
	}
	if s.TimeoutSec < 0 {
		problems = append(problems, fmt.Sprintf("timeout_sec must not be negative, got %v", s.TimeoutSec))
	}
	if len(problems) > 0 {
		return fmt.Errorf("jobs: invalid spec: %s", strings.Join(problems, "; "))
	}
	cfg, err := s.NetworkConfig()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("jobs: invalid spec: %w", err)
	}
	return nil
}
