package jobs

import (
	"fmt"
	"runtime"
	"strings"

	"repro/locman"
)

// SpecSchema versions the JSON job-descriptor layout accepted by the job
// service (pcnserve) and emitted by its API; it increments on any
// breaking change so clients can reject documents they do not
// understand. It also versions the job View documents, which embed the
// Spec. Schema 2 added the update-scheme, scenario and fleet fields;
// every schema-1 document is also a valid schema-2 document (the new
// fields all default to the historical behaviour), so SpecSchemaV1
// documents are still accepted on read.
const (
	SpecSchema   = 2
	SpecSchemaV1 = 1
)

// Spec is the JSON job descriptor: a complete, self-contained
// description of one PCN simulation run — the analytical configuration,
// the population and run length, the fault plan, the engine and shard
// choice, telemetry cadence and seed. It maps one-to-one onto
// locman.NetworkConfig plus the (slots, shards) run arguments, and that
// mapping is the service's determinism contract: a Spec run through the
// job service yields a final report bit-identical to
// locman.SimulateNetworkSharded invoked directly with the same values.
//
// Zero values follow the pcnsim CLI defaults where those defaults are
// themselves zero-like; the two deliberate exceptions are Threshold
// (nil means network-optimized, pcnsim's -d -1) and Shards (0 means
// GOMAXPROCS, like -shards).
type Spec struct {
	// Model is the mobility model: "1d" or "2d" ("" means "2d").
	Model string `json:"model,omitempty"`
	// MoveProb (q) and CallProb (c) are the per-slot movement and
	// call-arrival probabilities.
	MoveProb float64 `json:"move_prob"`
	CallProb float64 `json:"call_prob"`
	// UpdateCost (U) and PollCost (V) are the signalling unit costs.
	UpdateCost float64 `json:"update_cost"`
	PollCost   float64 `json:"poll_cost"`
	// MaxDelay (m) is the paging delay bound in polling cycles; 0 means
	// unbounded.
	MaxDelay int `json:"max_delay,omitempty"`
	// Partition names the paging partitioner ("" means "sdf"); valid
	// names are locman.PartitionNames.
	Partition string `json:"partition,omitempty"`
	// Scheme names the location-update trigger ("" means "distance");
	// valid names are locman.UpdateSchemeNames. SchemeParam carries the
	// scheme's parameter — the timer period or movement count in slots —
	// and must be zero for the distance scheme, whose radius is Threshold.
	Scheme      string `json:"scheme,omitempty"`
	SchemeParam int64  `json:"scheme_param,omitempty"`
	// Scenario names a registered modelling scenario
	// (locman.ScenarioNames); it fixes the analytical model — grid,
	// probabilities, costs, delay bound, scheme, fleet, faults — while
	// the Spec keeps the run shape (terminals, slots, seed, shards,
	// engine, telemetry, threshold override). Setting any model field the
	// scenario already fixes is rejected rather than silently overridden.
	Scenario string `json:"scenario,omitempty"`
	// Fleet, when non-nil, declares a heterogeneous population by
	// behavioural group; see locman.Fleet for the interleaving and
	// jitter semantics.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Terminals is the population size and Slots the run length.
	Terminals int   `json:"terminals"`
	Slots     int64 `json:"slots"`
	// Shards is the parallel shard count; 0 selects GOMAXPROCS. Results
	// are bit-identical for every value.
	Shards int `json:"shards,omitempty"`
	// Threshold is the static update threshold; nil means
	// network-optimized once from the analytical parameters.
	Threshold *int `json:"threshold,omitempty"`
	// Dynamic enables per-terminal online estimation with periodic
	// re-optimization every ReoptimizeEvery slots (0 means the engine
	// default).
	Dynamic         bool  `json:"dynamic,omitempty"`
	ReoptimizeEvery int64 `json:"reoptimize_every,omitempty"`
	// Faults optionally injects signalling-plane failures and configures
	// the recovery machinery; nil is a perfect signalling plane.
	Faults *FaultSpec `json:"faults,omitempty"`
	// SnapshotEvery switches on telemetry snapshot frames every N slots;
	// 0 disables the series.
	SnapshotEvery int64 `json:"snapshot_every,omitempty"`
	// Seed seeds the deterministic simulation.
	Seed uint64 `json:"seed"`
	// Engine selects the simulation engine ("" means "fast"); valid
	// names are locman.EngineNames.
	Engine string `json:"engine,omitempty"`
	// TimeoutSec is the per-job wall-clock deadline in seconds; 0 means
	// no deadline. A job exceeding it fails with a deadline error.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// FleetSpec is the JSON view of locman.Fleet: a heterogeneous terminal
// population declared by behavioural group. Terminal i belongs to group
// i mod len(Groups); see locman.Fleet for the jitter semantics.
type FleetSpec struct {
	Groups []FleetGroupSpec `json:"groups"`
}

// FleetGroupSpec is one behavioural class: base movement and call
// probabilities plus optional relative jitter in [0, 1] that spreads
// each member's parameters uniformly over [base·(1−j), base·(1+j)].
type FleetGroupSpec struct {
	MoveProb float64 `json:"move_prob"`
	CallProb float64 `json:"call_prob"`
	QJitter  float64 `json:"q_jitter,omitempty"`
	CJitter  float64 `json:"c_jitter,omitempty"`
}

// fleet maps the JSON fleet section onto the engine's Fleet.
func (f *FleetSpec) fleet() *locman.Fleet {
	if f == nil {
		return nil
	}
	fl := &locman.Fleet{Groups: make([]locman.FleetGroup, len(f.Groups))}
	for i, g := range f.Groups {
		fl.Groups[i] = locman.FleetGroup{
			MoveProb: g.MoveProb,
			CallProb: g.CallProb,
			QJitter:  g.QJitter,
			CJitter:  g.CJitter,
		}
	}
	return fl
}

// HeteroFleet is pcnsim's -hetero population in Spec form: eleven groups
// ramping the movement probability from 0.5x to 1.5x of the base (see
// locman.HeteroFleet). A job submitted with this fleet is bit-identical
// to `pcnsim -hetero` at the same parameters — the CLI↔service parity
// the Spec previously could not express.
func HeteroFleet(moveProb, callProb float64) *FleetSpec {
	src := locman.HeteroFleet(moveProb, callProb)
	fs := &FleetSpec{Groups: make([]FleetGroupSpec, len(src.Groups))}
	for i, g := range src.Groups {
		fs.Groups[i] = FleetGroupSpec{
			MoveProb: g.MoveProb,
			CallProb: g.CallProb,
			QJitter:  g.QJitter,
			CJitter:  g.CJitter,
		}
	}
	return fs
}

// FaultSpec is the JSON view of locman.FaultPlan; see that type for the
// field semantics (including the ExplicitZero sentinel for AckTimeout
// and PageRetries).
type FaultSpec struct {
	UpdateLoss    float64      `json:"update_loss,omitempty"`
	PollLoss      float64      `json:"poll_loss,omitempty"`
	ReplyLoss     float64      `json:"reply_loss,omitempty"`
	UpdateRetries int          `json:"update_retries,omitempty"`
	AckTimeout    int64        `json:"ack_timeout,omitempty"`
	PageRetries   int          `json:"page_retries,omitempty"`
	Outages       []OutageSpec `json:"outages,omitempty"`
}

// OutageSpec is one scheduled HLR outage window in slots [Start, End).
type OutageSpec struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// plan maps the JSON fault section onto the engine's FaultPlan.
func (f *FaultSpec) plan() locman.FaultPlan {
	if f == nil {
		return locman.FaultPlan{}
	}
	p := locman.FaultPlan{
		UpdateLoss:    f.UpdateLoss,
		PollLoss:      f.PollLoss,
		ReplyLoss:     f.ReplyLoss,
		UpdateRetries: f.UpdateRetries,
		AckTimeout:    f.AckTimeout,
		PageRetries:   f.PageRetries,
	}
	for _, w := range f.Outages {
		p.Outages = append(p.Outages, locman.Outage{Start: w.Start, End: w.End})
	}
	return p
}

// model resolves the Spec's model name.
func (s *Spec) model() (locman.Model, error) {
	switch s.Model {
	case "1d":
		return locman.OneDimensional, nil
	case "2d", "":
		return locman.TwoDimensional, nil
	default:
		return 0, fmt.Errorf("jobs: unknown model %q (valid models: 1d, 2d)", s.Model)
	}
}

// scenarioConflicts lists the Spec fields that are set but fixed by the
// named scenario — the model half of the descriptor. The run-shape
// fields (terminals, slots, seed, shards, engine, snapshot_every,
// threshold, timeout_sec) never conflict; they are the caller's half.
func (s *Spec) scenarioConflicts() []string {
	var fields []string
	add := func(set bool, name string) {
		if set {
			fields = append(fields, name)
		}
	}
	add(s.Model != "", "model")
	add(s.MoveProb != 0, "move_prob")
	add(s.CallProb != 0, "call_prob")
	add(s.UpdateCost != 0, "update_cost")
	add(s.PollCost != 0, "poll_cost")
	add(s.MaxDelay != 0, "max_delay")
	add(s.Partition != "", "partition")
	add(s.Scheme != "", "scheme")
	add(s.SchemeParam != 0, "scheme_param")
	add(s.Fleet != nil, "fleet")
	add(s.Dynamic, "dynamic")
	add(s.ReoptimizeEvery != 0, "reoptimize_every")
	add(s.Faults != nil, "faults")
	return fields
}

// NetworkConfig maps the Spec onto the engine configuration it
// describes. The mapping is pure — no defaults beyond the documented
// zero-value meanings — so equal Specs always produce equal configs.
// A scenario Spec loads the registered model and rejects any model
// field set alongside it rather than silently overriding.
func (s *Spec) NetworkConfig() (locman.NetworkConfig, error) {
	var cfg locman.NetworkConfig
	if s.Scenario != "" {
		if conflicts := s.scenarioConflicts(); len(conflicts) > 0 {
			return locman.NetworkConfig{}, fmt.Errorf(
				"jobs: scenario %q fixes the model; drop the conflicting field(s): %s",
				s.Scenario, strings.Join(conflicts, ", "))
		}
		sc, err := locman.ScenarioByName(s.Scenario)
		if err != nil {
			return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
		}
		cfg = sc.Network()
	} else {
		mdl, err := s.model()
		if err != nil {
			return locman.NetworkConfig{}, err
		}
		cfg = locman.NetworkConfig{
			Config: locman.Config{
				Model:      mdl,
				MoveProb:   s.MoveProb,
				CallProb:   s.CallProb,
				UpdateCost: s.UpdateCost,
				PollCost:   s.PollCost,
				MaxDelay:   s.MaxDelay,
			},
			Threshold:       -1,
			Dynamic:         s.Dynamic,
			ReoptimizeEvery: s.ReoptimizeEvery,
			Fleet:           s.Fleet.fleet(),
			Faults:          s.Faults.plan(),
		}
		if s.Scheme != "" || s.SchemeParam != 0 {
			sch, err := locman.UpdateSchemeByName(s.Scheme, s.SchemeParam)
			if err != nil {
				return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
			}
			cfg.Scheme = sch
		}
		if s.Partition != "" {
			p, err := locman.PartitionByName(s.Partition)
			if err != nil {
				return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
			}
			cfg.Partition = p
		}
	}
	cfg.Terminals = s.Terminals
	cfg.SnapshotEvery = s.SnapshotEvery
	cfg.Seed = s.Seed
	if s.Threshold != nil {
		cfg.Threshold = *s.Threshold
	}
	if s.Engine != "" {
		e, err := locman.EngineByName(s.Engine)
		if err != nil {
			return locman.NetworkConfig{}, fmt.Errorf("jobs: %w", err)
		}
		cfg.Engine = e
	}
	return cfg, nil
}

// ResolvedShards is the shard count the run will actually use: the
// GOMAXPROCS default for 0, clamped to the population like the engine
// clamps it.
func (s *Spec) ResolvedShards() int {
	n := s.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > s.Terminals && s.Terminals > 0 {
		n = s.Terminals
	}
	return n
}

// Validate rejects unusable specs with errors phrased for API clients.
// It covers both the service-level constraints (positive run shape,
// sane timeout) and the full engine validation, so a Spec that
// validates here is guaranteed to start simulating when its turn comes.
func (s *Spec) Validate() error {
	var problems []string
	if s.Terminals <= 0 {
		problems = append(problems, fmt.Sprintf("terminals must be positive, got %d", s.Terminals))
	}
	if s.Slots <= 0 {
		problems = append(problems, fmt.Sprintf("slots must be positive, got %d", s.Slots))
	}
	if s.Shards < 0 {
		problems = append(problems, fmt.Sprintf("shards must not be negative, got %d", s.Shards))
	}
	if s.TimeoutSec < 0 {
		problems = append(problems, fmt.Sprintf("timeout_sec must not be negative, got %v", s.TimeoutSec))
	}
	if len(problems) > 0 {
		return fmt.Errorf("jobs: invalid spec: %s", strings.Join(problems, "; "))
	}
	cfg, err := s.NetworkConfig()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("jobs: invalid spec: %w", err)
	}
	// The embedded Config.Validate covers the average-view parameters
	// only; check the population and scheme constraints the engine would
	// otherwise reject at start-of-run, so a Spec that validates here is
	// guaranteed to start simulating.
	if cfg.Fleet != nil {
		if err := cfg.Fleet.Validate(); err != nil {
			return fmt.Errorf("jobs: invalid spec: %w", err)
		}
	}
	if cfg.Dynamic && cfg.Scheme != nil && cfg.Scheme.Name() != "distance" {
		return fmt.Errorf("jobs: invalid spec: the dynamic per-user mechanism requires the distance update scheme (got %s)", cfg.Scheme.Name())
	}
	return nil
}
