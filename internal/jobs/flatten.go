package jobs

import (
	"math"

	"repro/internal/results"
	"repro/locman"
)

// ResultRow flattens one done job — the configuration it resolved to and
// its final report — into the analytics table's row shape. The knobs
// come from the Spec's resolved NetworkConfig (scenario defaults
// applied, zero-value meanings spelled out: nil scheme is "distance",
// nil partition "sdf", shards 0 the GOMAXPROCS resolution), the metrics
// from the report.
//
// The same flattening serves the live done edge (in-memory report) and
// the recovery backfill (report decoded from the journaled result
// bytes); encoding/json round-trips every float bit-for-bit, so the two
// paths produce identical rows — the restart byte-identity guarantee
// rests on that.
func ResultRow(id string, spec Spec, report *locman.Report) (results.Row, error) {
	cfg, err := spec.NetworkConfig()
	if err != nil {
		return results.Row{}, err
	}
	row := results.Row{
		Job:       id,
		Scenario:  spec.Scenario,
		Scheme:    "distance",
		Engine:    cfg.Engine.String(),
		Model:     modelName(cfg.Model),
		Partition: "sdf",
		D:         int64(cfg.Threshold),
		Q:         cfg.MoveProb,
		C:         cfg.CallProb,
		U:         cfg.UpdateCost,
		V:         cfg.PollCost,
		M:         int64(cfg.MaxDelay),
		Terminals: int64(report.Terminals),
		Slots:     report.Slots,
		Shards:    int64(spec.ResolvedShards()),
		Seed:      int64(spec.Seed),

		Updates:         report.Updates,
		LostUpdates:     report.LostUpdates,
		Retransmissions: report.Retransmissions,
		Acks:            report.Acks,
		OutageDeferred:  report.OutageDeferred,
		Calls:           report.Calls,
		PolledCells:     report.PolledCells,
		DroppedCalls:    report.DroppedCalls,
		RePolls:         report.RePolls,
		FallbackCalls:   report.FallbackCalls,
		LostPolls:       report.LostPolls,
		LostReplies:     report.LostReplies,
		NotFound:        report.NotFound,
		UpdateBytes:     report.UpdateBytes,
		PollBytes:       report.PollBytes,
		ReplyBytes:      report.ReplyBytes,
		AckBytes:        report.AckBytes,
		Events:          int64(report.Events),

		UpdateCost: report.UpdateCost,
		PagingCost: report.PagingCost,
		TotalCost:  report.TotalCost,

		DelayMean:    report.Delay.Mean,
		DelayMax:     report.Delay.Max,
		RecoveryMean: report.Recovery.Mean,
		RecoveryMax:  report.Recovery.Max,
	}
	if cfg.Dynamic {
		row.Dynamic = 1
	}
	if cfg.Scheme != nil {
		row.Scheme = cfg.Scheme.Name()
		row.SchemeParam = cfg.Scheme.Param()
	}
	if cfg.Partition != nil {
		row.Partition = cfg.Partition.Name()
	}
	// The percentile columns carry the report's histogram-derived values
	// verbatim; a report without histograms (hand-built metrics) has no
	// percentiles, which the table spells NaN ("not measured" — every
	// aggregate skips it).
	row.DelayP50, row.DelayP95, row.DelayP99 = histQuantiles(report.DelayHist)
	row.RecoveryP50, row.RecoveryP95, row.RecoveryP99 = histQuantiles(report.RecoveryHist)
	return row, nil
}

func histQuantiles(h *locman.HistReport) (p50, p95, p99 float64) {
	if h == nil {
		nan := math.NaN()
		return nan, nan, nan
	}
	return h.P50, h.P95, h.P99
}

// modelName names the mobility model the way Spec.Model spells it.
func modelName(m locman.Model) string {
	switch m {
	case locman.OneDimensional:
		return "1d"
	case locman.TwoDimensionalApprox:
		return "2d-approx"
	default:
		return "2d"
	}
}
