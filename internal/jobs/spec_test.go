package jobs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/locman"
)

// validSpec is a minimal passing descriptor; tests mutate copies.
func validSpec() Spec {
	return Spec{
		MoveProb:   0.05,
		CallProb:   0.01,
		UpdateCost: 100,
		PollCost:   10,
		MaxDelay:   3,
		Terminals:  10,
		Slots:      1_000,
		Seed:       1,
	}
}

// TestSpecValidate is the table-driven gate over the whole descriptor
// surface: service-level run-shape constraints, every name registry
// (model, partition, engine, scheme, scenario), the scheme parameter
// rules, fleet validation, and the scenario conflict policy. Unknown
// names must enumerate the valid ones; conflicts must list the
// offending fields.
func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Spec)
		err    string // "" means the spec must validate
	}{
		{"baseline valid", func(s *Spec) {}, ""},
		{"zero terminals", func(s *Spec) { s.Terminals = 0 },
			"terminals must be positive"},
		{"negative slots", func(s *Spec) { s.Slots = -1 },
			"slots must be positive"},
		{"negative shards", func(s *Spec) { s.Shards = -2 },
			"shards must not be negative"},
		{"negative timeout", func(s *Spec) { s.TimeoutSec = -1 },
			"timeout_sec must not be negative"},
		{"unknown model", func(s *Spec) { s.Model = "3d" },
			`unknown model "3d" (valid models: 1d, 2d)`},
		{"unknown partition", func(s *Spec) { s.Partition = "spiral" },
			`paging: unknown scheme "spiral"`},
		{"unknown engine", func(s *Spec) { s.Engine = "warp" },
			`unknown engine "warp"`},
		{"unknown scheme", func(s *Spec) { s.Scheme = "psychic" },
			`unknown update scheme "psychic" (valid schemes: distance, timer, movement)`},
		{"distance with param", func(s *Spec) { s.SchemeParam = 7 },
			"distance scheme takes no parameter"},
		{"timer without param", func(s *Spec) { s.Scheme = "timer" },
			"timer scheme period 0 slots, want positive"},
		{"timer valid", func(s *Spec) { s.Scheme = "timer"; s.SchemeParam = 500 }, ""},
		{"movement valid", func(s *Spec) { s.Scheme = "movement"; s.SchemeParam = 6 }, ""},
		{"dynamic timer", func(s *Spec) {
			s.Dynamic = true
			s.Scheme = "timer"
			s.SchemeParam = 500
		}, "dynamic per-user mechanism requires the distance update scheme"},
		{"dynamic distance ok", func(s *Spec) { s.Dynamic = true; s.Scheme = "distance" }, ""},
		{"fleet valid", func(s *Spec) {
			s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{
				{MoveProb: 0.1, CallProb: 0.02, QJitter: 0.5},
				{MoveProb: 0.3, CallProb: 0.01},
			}}
		}, ""},
		{"hetero fleet valid", func(s *Spec) { s.Fleet = HeteroFleet(0.1, 0.02) }, ""},
		{"fleet empty", func(s *Spec) { s.Fleet = &FleetSpec{} },
			"fleet has no groups"},
		{"fleet bad jitter", func(s *Spec) {
			s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{
				{MoveProb: 0.1, CallProb: 0.02, QJitter: 2},
			}}
		}, "fleet group 0: move-probability jitter 2 outside [0, 1]"},
		{"fleet extreme escapes", func(s *Spec) {
			s.Fleet = &FleetSpec{Groups: []FleetGroupSpec{
				{MoveProb: 0.1, CallProb: 0.02},
				{MoveProb: 0.8, CallProb: 0.3, QJitter: 0.5},
			}}
		}, "fleet group 1:"},
		{"scenario valid", func(s *Spec) {
			*s = Spec{Scenario: "baseline", Terminals: 10, Slots: 1_000, Seed: 1}
		}, ""},
		{"scenario with run shape", func(s *Spec) {
			d := 4
			*s = Spec{Scenario: "flash-crowd", Terminals: 10, Slots: 1_000,
				Seed: 1, Shards: 3, Engine: "cols", Threshold: &d, SnapshotEvery: 200}
		}, ""},
		{"unknown scenario", func(s *Spec) {
			*s = Spec{Scenario: "rush-hour", Terminals: 10, Slots: 1_000}
		}, `unknown scenario "rush-hour" (valid scenarios: `},
		{"scenario conflicts listed", func(s *Spec) {
			s.Scenario = "baseline"
			s.Scheme = "timer"
			s.SchemeParam = 500
		}, `scenario "baseline" fixes the model; drop the conflicting field(s): move_prob, call_prob, update_cost, poll_cost, max_delay, scheme, scheme_param`},
		{"scenario vs fleet", func(s *Spec) {
			*s = Spec{Scenario: "mixed-fleet", Terminals: 10, Slots: 1_000,
				Fleet: HeteroFleet(0.1, 0.02)}
		}, "drop the conflicting field(s): fleet"},
		{"scenario vs faults", func(s *Spec) {
			*s = Spec{Scenario: "flash-crowd", Terminals: 10, Slots: 1_000,
				Faults: &FaultSpec{UpdateLoss: 0.1}}
		}, "drop the conflicting field(s): faults"},
		{"scenario vs dynamic", func(s *Spec) {
			*s = Spec{Scenario: "baseline", Terminals: 10, Slots: 1_000, Dynamic: true}
		}, "drop the conflicting field(s): dynamic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if tc.err == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want containing %q", err, tc.err)
			}
		})
	}
}

// TestSpecScenarioMapping checks a scenario Spec resolves to the
// registry's model with the Spec's run shape layered on — including the
// threshold override, which stays caller-side in every scheme.
func TestSpecScenarioMapping(t *testing.T) {
	d := 2
	s := Spec{
		Scenario:      "flash-crowd",
		Terminals:     25,
		Slots:         5_000,
		Seed:          9,
		Engine:        "cols",
		Threshold:     &d,
		SnapshotEvery: 300,
	}
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := locman.ScenarioByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Config != sc.Config {
		t.Errorf("model %+v, want the registry's %+v", cfg.Config, sc.Config)
	}
	if cfg.Scheme == nil || cfg.Scheme.Name() != "timer" {
		t.Errorf("scheme %v, want the scenario's timer", cfg.Scheme)
	}
	if len(cfg.Faults.Outages) != 1 || cfg.Faults.UpdateLoss == 0 {
		t.Errorf("fault plan %+v not carried over", cfg.Faults)
	}
	if cfg.Terminals != 25 || cfg.Seed != 9 || cfg.SnapshotEvery != 300 {
		t.Errorf("run shape not applied: %+v", cfg)
	}
	if cfg.Threshold != 2 {
		t.Errorf("threshold override %d, want 2", cfg.Threshold)
	}
	if cfg.Engine != locman.EngineCols {
		t.Errorf("engine %v, want cols", cfg.Engine)
	}
}

// TestSpecHeteroFleetParity holds the Spec's fleet path to the parity
// contract: a Spec carrying jobs.HeteroFleet must produce the same
// network configuration semantics as pcnsim -hetero — same groups, same
// interleaving — by matching locman.HeteroFleet exactly.
func TestSpecHeteroFleetParity(t *testing.T) {
	s := validSpec()
	s.MoveProb, s.CallProb = 0.1, 0.02
	s.Fleet = HeteroFleet(0.1, 0.02)
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	want := locman.HeteroFleet(0.1, 0.02)
	if len(cfg.Fleet.Groups) != len(want.Groups) {
		t.Fatalf("%d groups, want %d", len(cfg.Fleet.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if cfg.Fleet.Groups[i] != want.Groups[i] {
			t.Errorf("group %d = %+v, want %+v", i, cfg.Fleet.Groups[i], want.Groups[i])
		}
	}
}

// TestSpecSchemaCompat pins the schema bump: current documents are v2,
// and a v1 document — one written before the scheme/scenario/fleet
// fields existed — still decodes and validates unchanged, because every
// new field defaults to the historical behaviour.
func TestSpecSchemaCompat(t *testing.T) {
	if SpecSchema != 2 || SpecSchemaV1 != 1 {
		t.Fatalf("schema constants %d/%d, want 2/1", SpecSchema, SpecSchemaV1)
	}
	v1doc := `{
		"model": "2d",
		"move_prob": 0.05, "call_prob": 0.01,
		"update_cost": 100, "poll_cost": 10, "max_delay": 3,
		"terminals": 50, "slots": 100000, "shards": 4, "seed": 7,
		"faults": {"update_loss": 0.1, "update_retries": 2},
		"snapshot_every": 10000
	}`
	dec := json.NewDecoder(strings.NewReader(v1doc))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("v1 document no longer decodes: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("v1 document no longer validates: %v", err)
	}
	cfg, err := s.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != nil || cfg.Fleet != nil {
		t.Error("v1 document grew a scheme or fleet out of thin air")
	}
}

// FuzzSpecValidate hardens the descriptor boundary: arbitrary JSON that
// decodes into a Spec must never panic Validate or NetworkConfig, and
// Validate's verdict must agree with NetworkConfig (a spec that
// validates always maps to a config, and that config re-validates).
func FuzzSpecValidate(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"move_prob":0.05,"call_prob":0.01,"update_cost":100,"poll_cost":10,"max_delay":3,"terminals":10,"slots":1000,"seed":1}`,
		`{"scenario":"baseline","terminals":10,"slots":1000}`,
		`{"scenario":"flash-crowd","terminals":10,"slots":1000,"threshold":4,"engine":"cols"}`,
		`{"scenario":"baseline","move_prob":0.5,"terminals":10,"slots":1000}`,
		`{"scheme":"timer","scheme_param":500,"move_prob":0.1,"call_prob":0.02,"update_cost":50,"poll_cost":1,"max_delay":2,"terminals":5,"slots":100,"seed":3}`,
		`{"scheme":"movement","scheme_param":-1,"terminals":5,"slots":100}`,
		`{"scheme":"nonsense","terminals":5,"slots":100}`,
		`{"fleet":{"groups":[{"move_prob":0.1,"call_prob":0.02,"q_jitter":0.5}]},"move_prob":0.1,"call_prob":0.02,"update_cost":100,"poll_cost":10,"terminals":5,"slots":100}`,
		`{"fleet":{"groups":[]},"terminals":5,"slots":100}`,
		`{"fleet":{"groups":[{"move_prob":0.9,"call_prob":0.4,"q_jitter":2}]},"terminals":5,"slots":100}`,
		`{"dynamic":true,"scheme":"timer","scheme_param":9,"terminals":5,"slots":100}`,
		`{"move_prob":1e308,"call_prob":1e308,"terminals":1,"slots":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			t.Skip()
		}
		err := s.Validate() // must not panic
		if err != nil {
			return
		}
		cfg, cfgErr := s.NetworkConfig()
		if cfgErr != nil {
			t.Fatalf("spec validated but NetworkConfig failed: %v", cfgErr)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("spec validated but config re-validation failed: %v", err)
		}
	})
}
