// Package paging implements the delay-constrained terminal paging mechanism
// of Section 2.2 of Akyildiz & Ho (SIGCOMM '95): partitioning a residing
// area of threshold distance d into at most m subareas of whole rings and
// polling them in order, one polling cycle per subarea.
//
// The paper's partitioner is shortest-distance-first (SDF): with
// ℓ = min(d+1, m) subareas and γ = ⌊(d+1)/ℓ⌋, subarea A_j (1 ≤ j ≤ ℓ−1)
// holds rings r_{(j−1)γ} .. r_{jγ−1} and A_ℓ the remaining rings. The paper
// notes its optimization method applies to any partitioning scheme; this
// package therefore also provides the single-shot, per-ring, equal-cell and
// dynamic-programming-optimal partitioners used as ablations.
package paging

import (
	"fmt"
)

// Unbounded is the MaxDelay value meaning the paging delay is not
// constrained: the residing area is partitioned into one ring per subarea
// (the paper's "no delay bound" curves, delay = ∞).
const Unbounded = 0

// Subarea is a contiguous group of rings polled in a single polling cycle.
type Subarea struct {
	// FirstRing and LastRing are the inclusive ring-index bounds.
	FirstRing, LastRing int
	// Cells is the number of cells in the subarea, Σ N(r_i) over its rings.
	Cells int
}

// Partition is an ordered list of subareas covering rings 0..d exactly
// once. Subareas are polled in slice order; finding the terminal in
// subarea j (0-based index j−1) costs the cumulative number of cells polled
// through that subarea and takes j polling cycles.
type Partition []Subarea

// Rings returns d+1, the total number of rings covered.
func (p Partition) Rings() int {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1].LastRing + 1
}

// Cells returns the total number of cells covered, g(d).
func (p Partition) Cells() int {
	total := 0
	for _, s := range p {
		total += s.Cells
	}
	return total
}

// CumulativeCells returns w_j for each subarea j (paper eq. 64): the number
// of cells polled by the time the terminal is found in subarea j, i.e. the
// prefix sums of subarea sizes.
func (p Partition) CumulativeCells() []int {
	w := make([]int, len(p))
	sum := 0
	for j, s := range p {
		sum += s.Cells
		w[j] = sum
	}
	return w
}

// SubareaProbs returns π_j = Σ_{r_i ∈ A_j} p_i for each subarea (paper
// eq. 63), given the stationary ring probabilities p_0..p_d.
func (p Partition) SubareaProbs(pi []float64) []float64 {
	probs := make([]float64, len(p))
	for j, s := range p {
		for i := s.FirstRing; i <= s.LastRing; i++ {
			probs[j] += pi[i]
		}
	}
	return probs
}

// ExpectedCells returns the expected number of cells polled per call,
// Σ_j π_j·w_j — the paging cost divided by c·V (paper eq. 65).
func (p Partition) ExpectedCells(pi []float64) float64 {
	w := p.CumulativeCells()
	probs := p.SubareaProbs(pi)
	e := 0.0
	for j := range p {
		e += probs[j] * float64(w[j])
	}
	return e
}

// ExpectedDelay returns the expected number of polling cycles per call,
// Σ_j π_j·j (1-based j). The maximum delay is len(p) cycles.
func (p Partition) ExpectedDelay(pi []float64) float64 {
	probs := p.SubareaProbs(pi)
	e := 0.0
	for j := range p {
		e += probs[j] * float64(j+1)
	}
	return e
}

// Validate checks that the partition covers rings 0..d contiguously, in
// increasing order, with consistent cell counts for the given ring sizes.
func (p Partition) Validate(ringSizes []int) error {
	if len(p) == 0 {
		return fmt.Errorf("paging: empty partition")
	}
	next := 0
	for j, s := range p {
		if s.FirstRing != next {
			return fmt.Errorf("paging: subarea %d starts at ring %d, want %d", j, s.FirstRing, next)
		}
		if s.LastRing < s.FirstRing {
			return fmt.Errorf("paging: subarea %d has LastRing < FirstRing", j)
		}
		cells := 0
		for i := s.FirstRing; i <= s.LastRing; i++ {
			if i >= len(ringSizes) {
				return fmt.Errorf("paging: subarea %d exceeds ring range", j)
			}
			cells += ringSizes[i]
		}
		if cells != s.Cells {
			return fmt.Errorf("paging: subarea %d records %d cells, rings total %d", j, s.Cells, cells)
		}
		next = s.LastRing + 1
	}
	if next != len(ringSizes) {
		return fmt.Errorf("paging: partition covers %d rings, want %d", next, len(ringSizes))
	}
	return nil
}

// subareaCount returns ℓ = min(d+1, m) (paper eq. 2), treating
// m = Unbounded (or any m ≥ d+1) as no constraint.
func subareaCount(d, m int) int {
	if m <= Unbounded || m > d+1 {
		return d + 1
	}
	return m
}

// build assembles a Partition from ring-index boundaries: bounds[j] is the
// first ring of subarea j+1 (so len(bounds) = ℓ−1).
func build(ringSizes []int, bounds []int) Partition {
	part := make(Partition, 0, len(bounds)+1)
	first := 0
	flush := func(last int) {
		cells := 0
		for i := first; i <= last; i++ {
			cells += ringSizes[i]
		}
		part = append(part, Subarea{FirstRing: first, LastRing: last, Cells: cells})
		first = last + 1
	}
	for _, b := range bounds {
		flush(b - 1)
	}
	flush(len(ringSizes) - 1)
	return part
}
