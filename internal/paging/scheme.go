package paging

import (
	"fmt"
	"math"
	"strings"
)

// A Scheme partitions the rings 0..d of a residing area into at most m
// subareas. ringSizes[i] is N(r_i); pi, when non-nil, gives the stationary
// ring probabilities p_0..p_d for probability-aware schemes (schemes that
// ignore probabilities accept pi == nil). m follows the paper's convention:
// the terminal must be found within m polling cycles; Unbounded means no
// constraint.
type Scheme interface {
	// Name identifies the scheme in reports and benchmarks.
	Name() string
	// Partition returns a valid partition with at most
	// min(len(ringSizes), m) subareas.
	Partition(ringSizes []int, pi []float64, m int) Partition
}

// SDF is the paper's shortest-distance-first partitioner (Section 2.2):
// ℓ = min(d+1, m) subareas, the first ℓ−1 holding γ = ⌊(d+1)/ℓ⌋ rings each
// and the last holding the remainder. Rings nearer the center — the more
// probable terminal locations under the random-walk model — are polled
// first.
type SDF struct{}

// Name implements Scheme.
func (SDF) Name() string { return "sdf" }

// Partition implements Scheme.
func (SDF) Partition(ringSizes []int, _ []float64, m int) Partition {
	d := len(ringSizes) - 1
	l := subareaCount(d, m)
	gamma := (d + 1) / l
	bounds := make([]int, l-1)
	for j := 1; j < l; j++ {
		bounds[j-1] = j * gamma
	}
	return build(ringSizes, bounds)
}

// Blanket polls the entire residing area in a single cycle regardless of m.
// It is the behaviour forced by m = 1 and the paging discipline of the
// LA-based baseline scheme [Xie, Tabbane & Goodman].
type Blanket struct{}

// Name implements Scheme.
func (Blanket) Name() string { return "blanket" }

// Partition implements Scheme.
func (Blanket) Partition(ringSizes []int, _ []float64, _ int) Partition {
	return build(ringSizes, nil)
}

// PerRing polls one ring per cycle (the unconstrained-delay discipline of
// the paper and of Madhow, Honig & Steiglitz). If m is binding, the last
// subarea absorbs the remaining rings so the delay bound still holds.
type PerRing struct{}

// Name implements Scheme.
func (PerRing) Name() string { return "per-ring" }

// Partition implements Scheme.
func (PerRing) Partition(ringSizes []int, _ []float64, m int) Partition {
	d := len(ringSizes) - 1
	l := subareaCount(d, m)
	bounds := make([]int, l-1)
	for j := 1; j < l; j++ {
		bounds[j-1] = j
	}
	return build(ringSizes, bounds)
}

// EqualCells greedily balances the number of cells per subarea: each of the
// ℓ subareas aims for g(d)/ℓ cells. In the 2-D model outer rings hold many
// more cells than inner ones, so this front-loads many inner rings into the
// first cycle — a natural alternative the paper's "other partitioning
// methods" remark invites.
type EqualCells struct{}

// Name implements Scheme.
func (EqualCells) Name() string { return "equal-cells" }

// Partition implements Scheme.
func (EqualCells) Partition(ringSizes []int, _ []float64, m int) Partition {
	d := len(ringSizes) - 1
	l := subareaCount(d, m)
	total := 0
	for _, n := range ringSizes {
		total += n
	}
	target := float64(total) / float64(l)
	var bounds []int
	cells := 0
	filled := 0 // subareas already closed
	for i := 0; i <= d; i++ {
		cells += ringSizes[i]
		// Close the current subarea once it reaches its share, keeping
		// enough rings for the remaining subareas.
		remainingRings := d - i
		remainingAreas := l - filled - 1
		if remainingAreas > 0 && float64(cells) >= target*float64(filled+1) && remainingRings >= remainingAreas {
			bounds = append(bounds, i+1)
			filled++
		}
	}
	return build(ringSizes, bounds)
}

// OptimalDP computes the partition minimizing the expected number of polled
// cells Σ_j π(A_j)·w_j subject to the delay bound, by dynamic programming
// over ring boundaries (the Rose & Yates optimal sequential paging
// structure applied to whole rings). It needs the stationary ring
// probabilities; with pi == nil it panics.
//
// The paper's future-work section calls for "an optimal method for
// partitioning the residing area"; this scheme is that extension, and the
// partition-ablation benchmark quantifies its gain over SDF.
type OptimalDP struct{}

// Name implements Scheme.
func (OptimalDP) Name() string { return "optimal-dp" }

// Partition implements Scheme.
func (OptimalDP) Partition(ringSizes []int, pi []float64, m int) Partition {
	if pi == nil {
		panic("paging: OptimalDP requires ring probabilities")
	}
	d := len(ringSizes) - 1
	if len(pi) != d+1 {
		panic(fmt.Sprintf("paging: %d probabilities for %d rings", len(pi), d+1))
	}
	l := subareaCount(d, m)

	// Prefix sums: cells[i] = Σ_{k<i} N(r_k), mass[i] = Σ_{k<i} p_k.
	cells := make([]int, d+2)
	mass := make([]float64, d+2)
	for i := 0; i <= d; i++ {
		cells[i+1] = cells[i] + ringSizes[i]
		mass[i+1] = mass[i] + pi[i]
	}

	// cost[j][i]: minimum expected polled cells covering rings 0..i−1 with
	// exactly j subareas, where each subarea ending at ring b−1 contributes
	// π(A_j)·w_j = (mass over the subarea)·(total cells through ring b−1).
	const inf = math.MaxFloat64
	cost := make([][]float64, l+1)
	prev := make([][]int, l+1)
	for j := range cost {
		cost[j] = make([]float64, d+2)
		prev[j] = make([]int, d+2)
		for i := range cost[j] {
			cost[j][i] = inf
			prev[j][i] = -1
		}
	}
	cost[0][0] = 0
	for j := 1; j <= l; j++ {
		for i := j; i <= d+1; i++ {
			for k := j - 1; k < i; k++ {
				if cost[j-1][k] == inf {
					continue
				}
				c := cost[j-1][k] + (mass[i]-mass[k])*float64(cells[i])
				if c < cost[j][i] {
					cost[j][i] = c
					prev[j][i] = k
				}
			}
		}
	}
	// The optimum may use fewer than l subareas only if some subarea would
	// be empty; with all subareas non-empty, using all l is never worse
	// (splitting a subarea cannot increase cost). Take exactly the best
	// j ≤ l covering d+1 rings.
	bestJ, bestCost := 1, cost[1][d+1]
	for j := 2; j <= l; j++ {
		if cost[j][d+1] < bestCost {
			bestJ, bestCost = j, cost[j][d+1]
		}
	}
	_ = bestCost
	// Reconstruct boundaries.
	var bounds []int
	i := d + 1
	for j := bestJ; j > 1; j-- {
		i = prev[j][i]
		bounds = append(bounds, i)
	}
	// bounds collected in reverse order.
	for a, b := 0, len(bounds)-1; a < b; a, b = a+1, b-1 {
		bounds[a], bounds[b] = bounds[b], bounds[a]
	}
	return build(ringSizes, bounds)
}

// schemes lists every registered scheme in resolution order; ByName and
// Names both read it, so the error message can never drift from the
// parser.
var schemes = []Scheme{SDF{}, Blanket{}, PerRing{}, EqualCells{}, OptimalDP{}}

// Names lists the names ByName resolves, in resolution order.
func Names() []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name()
	}
	return out
}

// ByName returns the named scheme, for CLI flag parsing. The error for
// an unknown name enumerates every valid one.
func ByName(name string) (Scheme, error) {
	for _, s := range schemes {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("paging: unknown scheme %q (valid schemes: %s)",
		name, strings.Join(Names(), ", "))
}
