package paging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/grid"
)

func stationary(t testing.TB, model chain.Model, q, c float64, d int) []float64 {
	t.Helper()
	pi, err := chain.Stationary(model, chain.Params{Q: q, C: c}, d)
	if err != nil {
		t.Fatal(err)
	}
	return pi
}

func TestGroupingValidate(t *testing.T) {
	good := Grouping{{0, 2}, {1}}
	if err := good.Validate(3, 2); err != nil {
		t.Errorf("valid grouping rejected: %v", err)
	}
	bad := []struct {
		g        Grouping
		rings, m int
	}{
		{Grouping{}, 3, 2},                // empty
		{Grouping{{0}, {}}, 1, 2},         // empty group
		{Grouping{{0, 1}}, 3, 2},          // uncovered ring
		{Grouping{{0, 0}, {1, 2}}, 3, 2},  // duplicate
		{Grouping{{0, 3}, {1, 2}}, 3, 2},  // out of range
		{Grouping{{0}, {1}, {2}}, 3, 2},   // too many groups
		{Grouping{{-1}, {0, 1, 2}}, 3, 2}, // negative ring
	}
	for i, tc := range bad {
		if err := tc.g.Validate(tc.rings, tc.m); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFromPartitionEquivalence(t *testing.T) {
	pi := stationary(t, chain.TwoDimExact, 0.05, 0.01, 8)
	rings := grid.TwoDimHex.RingSizes(8)
	for m := 1; m <= 9; m++ {
		part := SDF{}.Partition(rings, nil, m)
		g := FromPartition(part)
		if err := g.Validate(9, m); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if a, b := g.ExpectedCells(rings, pi), part.ExpectedCells(pi); math.Abs(a-b) > 1e-12 {
			t.Errorf("m=%d: grouped cells %v vs partition %v", m, a, b)
		}
		if a, b := g.ExpectedDelay(pi), part.ExpectedDelay(pi); math.Abs(a-b) > 1e-12 {
			t.Errorf("m=%d: grouped delay %v vs partition %v", m, a, b)
		}
	}
}

func TestProbOrderDPValid(t *testing.T) {
	pi := stationary(t, chain.TwoDimExact, 0.05, 0.01, 10)
	rings := grid.TwoDimHex.RingSizes(10)
	for m := 0; m <= 11; m++ {
		g := ProbOrderDP(rings, pi, m)
		bound := m
		if m == 0 {
			bound = 11
		}
		if err := g.Validate(11, bound); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// TestProbOrderDPNeverWorseThanContiguous: the probability-ordered DP
// optimizes over a superset of the contiguous partitions, so it can never
// be worse than OptimalDP or SDF. (At m=1 all schemes poll every cell;
// strict gains appear at intermediate m.)
func TestProbOrderDPNeverWorseThanContiguous(t *testing.T) {
	cases := []struct {
		model chain.Model
		q, c  float64
		d     int
	}{
		{chain.TwoDimExact, 0.05, 0.01, 10},
		{chain.TwoDimExact, 0.4, 0.02, 12},
		{chain.OneDim, 0.05, 0.01, 8},
		{chain.TwoDimApprox, 0.01, 0.05, 6},
	}
	for _, tc := range cases {
		pi := stationary(t, tc.model, tc.q, tc.c, tc.d)
		rings := tc.model.Grid().RingSizes(tc.d)
		for m := 1; m <= tc.d+1; m++ {
			grouped := ProbOrderDP(rings, pi, m).ExpectedCells(rings, pi)
			contig := OptimalDP{}.Partition(rings, pi, m).ExpectedCells(pi)
			sdf := SDF{}.Partition(rings, nil, m).ExpectedCells(pi)
			if grouped > contig+1e-9 {
				t.Errorf("%v d=%d m=%d: grouped %v worse than contiguous DP %v",
					tc.model, tc.d, m, grouped, contig)
			}
			if grouped > sdf+1e-9 {
				t.Errorf("%v d=%d m=%d: grouped %v worse than SDF %v",
					tc.model, tc.d, m, grouped, sdf)
			}
		}
	}
}

func TestProbOrderDPStrictlyBeatsSDFSomewhere(t *testing.T) {
	// With small c the stationary distribution peaks at ring 1 (not 0) but
	// per-cell probability still orders differently than distance in 2-D;
	// verify a configuration where the ordered grouping is strictly
	// better than SDF.
	pi := stationary(t, chain.TwoDimExact, 0.3, 0.005, 12)
	rings := grid.TwoDimHex.RingSizes(12)
	improved := false
	for m := 2; m <= 6; m++ {
		grouped := ProbOrderDP(rings, pi, m).ExpectedCells(rings, pi)
		sdf := SDF{}.Partition(rings, nil, m).ExpectedCells(pi)
		if grouped < sdf-1e-9 {
			improved = true
		}
	}
	if !improved {
		t.Error("probability-ordered DP never improved on SDF across m=2..6")
	}
}

func TestProbOrderDPMonotoneInDelay(t *testing.T) {
	pi := stationary(t, chain.TwoDimExact, 0.1, 0.02, 10)
	rings := grid.TwoDimHex.RingSizes(10)
	prev := math.Inf(1)
	for m := 1; m <= 11; m++ {
		e := ProbOrderDP(rings, pi, m).ExpectedCells(rings, pi)
		if e > prev+1e-9 {
			t.Errorf("m=%d: %v > %v", m, e, prev)
		}
		prev = e
	}
}

func TestProbOrderDPUnboundedSortsPerCell(t *testing.T) {
	// Unbounded: one ring per group, ordered by per-cell probability.
	pi := stationary(t, chain.TwoDimExact, 0.05, 0.01, 6)
	rings := grid.TwoDimHex.RingSizes(6)
	g := ProbOrderDP(rings, pi, 0)
	if len(g) != 7 {
		t.Fatalf("%d groups", len(g))
	}
	last := math.Inf(1)
	for j, group := range g {
		if len(group) != 1 {
			t.Fatalf("group %d has %d rings", j, len(group))
		}
		r := group[0]
		perCell := pi[r] / float64(rings[r])
		if perCell > last+1e-15 {
			t.Errorf("group %d (ring %d) out of per-cell order", j, r)
		}
		last = perCell
	}
}

func TestProbOrderDPProperty(t *testing.T) {
	f := func(qr, cr uint16, dr, mr uint8) bool {
		q := float64(qr)/65535.0*0.8 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.5
		d := int(dr%12) + 1
		m := int(mr % uint8(d+2)) // 0..d+1
		pi, err := chain.Stationary(chain.TwoDimExact, chain.Params{Q: q, C: c}, d)
		if err != nil {
			return false
		}
		rings := grid.TwoDimHex.RingSizes(d)
		g := ProbOrderDP(rings, pi, m)
		bound := m
		if m == 0 {
			bound = d + 1
		}
		if g.Validate(d+1, bound) != nil {
			return false
		}
		return g.ExpectedCells(rings, pi) <= OptimalDP{}.Partition(rings, pi, m).ExpectedCells(pi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestProbOrderDPPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ProbOrderDP([]int{1, 6}, []float64{1}, 1)
}

func TestGroupingRingGroup(t *testing.T) {
	g := Grouping{{1, 3}, {0}, {2}}
	rg := g.RingGroup(4)
	want := []int{1, 0, 2, 0}
	for i, w := range want {
		if rg[i] != w {
			t.Errorf("RingGroup[%d] = %d, want %d", i, rg[i], w)
		}
	}
}
