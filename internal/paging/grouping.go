package paging

import (
	"fmt"
	"sort"
)

// Grouping is the generalization of Partition the paper's future-work
// section calls for: an ordered sequence of ring *groups* that need not be
// contiguous in distance. Group j (0-based) is polled in cycle j+1; all
// cells of every ring in the group are polled together.
//
// The paper's SDF partition is the special case of contiguous groups. When
// the stationary ring distribution is not monotone in distance (common for
// small c, where p_1 > p_0), non-contiguous groupings can strictly beat
// every contiguous one.
type Grouping [][]int

// ValidateGrouping checks that g covers rings 0..numRings−1 exactly once
// with every group non-empty and at most maxGroups groups (maxGroups ≤ 0
// means unconstrained).
func (g Grouping) Validate(numRings, maxGroups int) error {
	if len(g) == 0 {
		return fmt.Errorf("paging: empty grouping")
	}
	if maxGroups > 0 && len(g) > maxGroups {
		return fmt.Errorf("paging: %d groups exceed delay bound %d", len(g), maxGroups)
	}
	seen := make([]bool, numRings)
	for j, group := range g {
		if len(group) == 0 {
			return fmt.Errorf("paging: group %d empty", j)
		}
		for _, r := range group {
			if r < 0 || r >= numRings {
				return fmt.Errorf("paging: group %d contains ring %d outside [0,%d)", j, r, numRings)
			}
			if seen[r] {
				return fmt.Errorf("paging: ring %d in two groups", r)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("paging: ring %d uncovered", r)
		}
	}
	return nil
}

// GroupCells returns the number of cells polled in each group.
func (g Grouping) GroupCells(ringSizes []int) []int {
	out := make([]int, len(g))
	for j, group := range g {
		for _, r := range group {
			out[j] += ringSizes[r]
		}
	}
	return out
}

// ExpectedCells returns the expected number of cells polled per call:
// Σ_j P(terminal in group j) · (cells polled through group j).
func (g Grouping) ExpectedCells(ringSizes []int, pi []float64) float64 {
	cells := g.GroupCells(ringSizes)
	cum := 0
	e := 0.0
	for j, group := range g {
		cum += cells[j]
		mass := 0.0
		for _, r := range group {
			mass += pi[r]
		}
		e += mass * float64(cum)
	}
	return e
}

// ExpectedDelay returns the expected polling cycles per call.
func (g Grouping) ExpectedDelay(pi []float64) float64 {
	e := 0.0
	for j, group := range g {
		mass := 0.0
		for _, r := range group {
			mass += pi[r]
		}
		e += mass * float64(j+1)
	}
	return e
}

// RingGroup returns, for each ring index, the group that polls it.
func (g Grouping) RingGroup(numRings int) []int {
	out := make([]int, numRings)
	for j, group := range g {
		for _, r := range group {
			out[r] = j
		}
	}
	return out
}

// FromPartition converts a contiguous Partition into the equivalent
// Grouping.
func FromPartition(p Partition) Grouping {
	g := make(Grouping, len(p))
	for j, s := range p {
		for r := s.FirstRing; r <= s.LastRing; r++ {
			g[j] = append(g[j], r)
		}
	}
	return g
}

// ProbOrderDP computes the minimum-expected-cells grouping under a delay
// bound of m cycles (m ≤ 0 unbounded): rings are sorted by decreasing
// per-cell probability p_i/N(r_i) — the optimal polling order of Rose &
// Yates when each cell of ring i is equally likely — and the sorted
// sequence is cut into at most m consecutive groups by the same dynamic
// program as OptimalDP. An exchange argument shows an optimal ring-whole
// grouping is always consecutive in this order, so the result is optimal
// over ALL groupings, contiguous or not.
func ProbOrderDP(ringSizes []int, pi []float64, m int) Grouping {
	n := len(ringSizes)
	if len(pi) != n {
		panic(fmt.Sprintf("paging: %d probabilities for %d rings", len(pi), n))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa := pi[order[a]] / float64(ringSizes[order[a]])
		pb := pi[order[b]] / float64(ringSizes[order[b]])
		return pa > pb
	})

	l := n
	if m > 0 && m < l {
		l = m
	}
	// Prefix sums over the sorted order.
	cells := make([]int, n+1)
	mass := make([]float64, n+1)
	for i, r := range order {
		cells[i+1] = cells[i] + ringSizes[r]
		mass[i+1] = mass[i] + pi[r]
	}
	const inf = 1e308
	cost := make([][]float64, l+1)
	prev := make([][]int, l+1)
	for j := range cost {
		cost[j] = make([]float64, n+1)
		prev[j] = make([]int, n+1)
		for i := range cost[j] {
			cost[j][i] = inf
			prev[j][i] = -1
		}
	}
	cost[0][0] = 0
	for j := 1; j <= l; j++ {
		for i := j; i <= n; i++ {
			for k := j - 1; k < i; k++ {
				if cost[j-1][k] >= inf {
					continue
				}
				c := cost[j-1][k] + (mass[i]-mass[k])*float64(cells[i])
				if c < cost[j][i] {
					cost[j][i] = c
					prev[j][i] = k
				}
			}
		}
	}
	bestJ := 1
	for j := 2; j <= l; j++ {
		if cost[j][n] < cost[bestJ][n] {
			bestJ = j
		}
	}
	// Reconstruct cut points, then materialize groups in sorted order.
	cuts := make([]int, 0, bestJ)
	i := n
	for j := bestJ; j >= 1; j-- {
		cuts = append(cuts, i)
		i = prev[j][i]
	}
	// cuts are collected from the back; reverse.
	for a, b := 0, len(cuts)-1; a < b; a, b = a+1, b-1 {
		cuts[a], cuts[b] = cuts[b], cuts[a]
	}
	g := make(Grouping, 0, bestJ)
	start := 0
	for _, end := range cuts {
		group := make([]int, end-start)
		copy(group, order[start:end])
		sort.Ints(group)
		g = append(g, group)
		start = end
	}
	return g
}
