package paging

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/grid"
)

func uniformProbs(n int) []float64 {
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	return pi
}

func TestSDFPaperExample(t *testing.T) {
	// d=1, m=2 in 1-D: A_1 = {r_0}, A_2 = {r_1}; w = (1, 3).
	rings := grid.OneDim.RingSizes(1)
	part := SDF{}.Partition(rings, nil, 2)
	if len(part) != 2 {
		t.Fatalf("ℓ = %d, want 2", len(part))
	}
	w := part.CumulativeCells()
	if w[0] != 1 || w[1] != 3 {
		t.Errorf("w = %v, want [1 3]", w)
	}
	if err := part.Validate(rings); err != nil {
		t.Error(err)
	}
}

func TestSDFSubareaCountEquation2(t *testing.T) {
	// ℓ = min(d+1, m) (paper eq. 2).
	for d := 0; d <= 20; d++ {
		rings := grid.TwoDimHex.RingSizes(d)
		for m := 1; m <= 25; m++ {
			part := SDF{}.Partition(rings, nil, m)
			want := d + 1
			if m < want {
				want = m
			}
			if len(part) != want {
				t.Errorf("d=%d m=%d: ℓ=%d, want %d", d, m, len(part), want)
			}
		}
		// Unbounded: one ring per subarea.
		part := SDF{}.Partition(rings, nil, Unbounded)
		if len(part) != d+1 {
			t.Errorf("d=%d unbounded: ℓ=%d, want %d", d, len(part), d+1)
		}
		for j, s := range part {
			if s.FirstRing != j || s.LastRing != j {
				t.Errorf("d=%d unbounded: subarea %d = %+v", d, j, s)
			}
		}
	}
}

func TestSDFRingAssignment(t *testing.T) {
	// Paper Section 2.2: with γ = ⌊(d+1)/ℓ⌋, subarea A_j (1 ≤ j ≤ ℓ−1)
	// holds rings r_{(j−1)γ} .. r_{jγ−1}; the last subarea the rest.
	for d := 0; d <= 15; d++ {
		for m := 1; m <= 18; m++ {
			rings := grid.TwoDimHex.RingSizes(d)
			part := SDF{}.Partition(rings, nil, m)
			l := len(part)
			gamma := (d + 1) / l
			for j := 0; j < l-1; j++ {
				if part[j].FirstRing != j*gamma || part[j].LastRing != (j+1)*gamma-1 {
					t.Errorf("d=%d m=%d subarea %d: got rings %d..%d, want %d..%d",
						d, m, j, part[j].FirstRing, part[j].LastRing, j*gamma, (j+1)*gamma-1)
				}
			}
			if part[l-1].LastRing != d {
				t.Errorf("d=%d m=%d: last subarea ends at %d", d, m, part[l-1].LastRing)
			}
			if err := part.Validate(rings); err != nil {
				t.Errorf("d=%d m=%d: %v", d, m, err)
			}
		}
	}
}

func TestAllSchemesProduceValidPartitions(t *testing.T) {
	schemes := []Scheme{SDF{}, Blanket{}, PerRing{}, EqualCells{}, OptimalDP{}}
	for _, k := range []grid.Kind{grid.OneDim, grid.TwoDimHex} {
		for d := 0; d <= 12; d++ {
			rings := k.RingSizes(d)
			pi := uniformProbs(d + 1)
			for m := 0; m <= 15; m++ {
				for _, s := range schemes {
					part := s.Partition(rings, pi, m)
					if err := part.Validate(rings); err != nil {
						t.Errorf("%s %v d=%d m=%d: %v", s.Name(), k, d, m, err)
					}
					if m >= 1 && len(part) > m {
						t.Errorf("%s %v d=%d m=%d: %d subareas exceed delay bound",
							s.Name(), k, d, m, len(part))
					}
					if got, want := part.Cells(), k.DiskSize(d); got != want {
						t.Errorf("%s %v d=%d m=%d: covers %d cells, want %d",
							s.Name(), k, d, m, got, want)
					}
				}
			}
		}
	}
}

func TestBlanketSingleCycle(t *testing.T) {
	rings := grid.TwoDimHex.RingSizes(5)
	part := Blanket{}.Partition(rings, nil, 7)
	if len(part) != 1 {
		t.Fatalf("blanket: %d subareas", len(part))
	}
	if part[0].Cells != grid.TwoDimHex.DiskSize(5) {
		t.Errorf("blanket cells = %d", part[0].Cells)
	}
}

func TestExpectedCellsBlanketEqualsDisk(t *testing.T) {
	// With one subarea the expected polled cells is g(d) regardless of pi.
	pi, err := chain.Stationary(chain.TwoDimExact, chain.Params{Q: 0.1, C: 0.02}, 6)
	if err != nil {
		t.Fatal(err)
	}
	rings := grid.TwoDimHex.RingSizes(6)
	part := Blanket{}.Partition(rings, nil, 1)
	if got, want := part.ExpectedCells(pi), float64(grid.TwoDimHex.DiskSize(6)); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedCells = %v, want %v", got, want)
	}
	if got := part.ExpectedDelay(pi); math.Abs(got-1) > 1e-12 {
		t.Errorf("ExpectedDelay = %v, want 1", got)
	}
}

func TestSubareaProbsSumToOne(t *testing.T) {
	pi, err := chain.Stationary(chain.OneDim, chain.Params{Q: 0.2, C: 0.05}, 9)
	if err != nil {
		t.Fatal(err)
	}
	rings := grid.OneDim.RingSizes(9)
	for m := 1; m <= 10; m++ {
		part := SDF{}.Partition(rings, nil, m)
		sum := 0.0
		for _, p := range part.SubareaProbs(pi) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("m=%d: subarea probs sum to %v", m, sum)
		}
	}
}

func TestMorePagingDelayNeverIncreasesOptimalCells(t *testing.T) {
	// Under the DP-optimal partitioner a looser delay bound can never
	// increase the expected polled cells: every partition with ≤ m subareas
	// is also feasible at m+1. Note this is NOT true of the paper's SDF
	// scheme, whose floor-based ring allotment is non-monotone in m — the
	// source of the "discontinuities" the paper notes in its cost curves.
	pi, err := chain.Stationary(chain.TwoDimExact, chain.Params{Q: 0.05, C: 0.01}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rings := grid.TwoDimHex.RingSizes(10)
	prev := math.Inf(1)
	for m := 1; m <= 11; m++ {
		e := OptimalDP{}.Partition(rings, pi, m).ExpectedCells(pi)
		if e > prev+1e-9 {
			t.Errorf("m=%d: expected cells %v > previous %v", m, e, prev)
		}
		prev = e
	}
	// And SDF is indeed non-monotone for this configuration: document the
	// artifact so a future "fix" doesn't silently change published curves.
	e5 := SDF{}.Partition(rings, nil, 5).ExpectedCells(pi)
	e6 := SDF{}.Partition(rings, nil, 6).ExpectedCells(pi)
	if e6 <= e5 {
		t.Logf("note: SDF m=5→6 non-monotonicity no longer present (%v → %v)", e5, e6)
	}
}

func TestOptimalDPNeverWorse(t *testing.T) {
	// The DP partition is optimal over ring partitions, so it can never do
	// worse than SDF, per-ring or equal-cells under the same delay bound.
	cases := []struct {
		model chain.Model
		p     chain.Params
		d     int
	}{
		{chain.OneDim, chain.Params{Q: 0.05, C: 0.01}, 8},
		{chain.TwoDimExact, chain.Params{Q: 0.05, C: 0.01}, 8},
		{chain.TwoDimExact, chain.Params{Q: 0.4, C: 0.05}, 12},
		{chain.TwoDimApprox, chain.Params{Q: 0.01, C: 0.05}, 5},
	}
	for _, tc := range cases {
		pi, err := chain.Stationary(tc.model, tc.p, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		rings := tc.model.Grid().RingSizes(tc.d)
		for m := 1; m <= tc.d+1; m++ {
			opt := OptimalDP{}.Partition(rings, pi, m).ExpectedCells(pi)
			for _, s := range []Scheme{SDF{}, PerRing{}, EqualCells{}} {
				other := s.Partition(rings, pi, m).ExpectedCells(pi)
				if opt > other+1e-9 {
					t.Errorf("%v d=%d m=%d: DP %v worse than %s %v",
						tc.model, tc.d, m, opt, s.Name(), other)
				}
			}
		}
	}
}

func TestOptimalDPPropertyNeverWorseThanSDF(t *testing.T) {
	f := func(qr, cr uint16, dr, mr uint8) bool {
		q := float64(qr)/65535.0*0.8 + 0.01
		c := (1 - q) * float64(cr) / 65535.0 * 0.5
		d := int(dr%15) + 1
		m := int(mr%uint8(d+1)) + 1
		pi, err := chain.Stationary(chain.TwoDimExact, chain.Params{Q: q, C: c}, d)
		if err != nil {
			return false
		}
		rings := grid.TwoDimHex.RingSizes(d)
		opt := OptimalDP{}.Partition(rings, pi, m)
		if opt.Validate(rings) != nil || (m >= 1 && len(opt) > m) {
			return false
		}
		return opt.ExpectedCells(pi) <= SDF{}.Partition(rings, nil, m).ExpectedCells(pi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOptimalDPPanicsWithoutProbs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	OptimalDP{}.Partition(grid.OneDim.RingSizes(3), nil, 2)
}

func TestValidateCatchesBadPartitions(t *testing.T) {
	rings := grid.OneDim.RingSizes(2) // [1 2 2]
	bad := []Partition{
		{},                                      // empty
		{{FirstRing: 1, LastRing: 2, Cells: 4}}, // gap at 0
		{{FirstRing: 0, LastRing: 1, Cells: 3}}, // missing ring 2
		{{FirstRing: 0, LastRing: 2, Cells: 4}}, // wrong cell count
		{{FirstRing: 0, LastRing: 0, Cells: 1}, {FirstRing: 0, LastRing: 2, Cells: 5}}, // overlap
		{{FirstRing: 0, LastRing: 3, Cells: 5}},                                        // beyond range
	}
	for i, p := range bad {
		if err := p.Validate(rings); err == nil {
			t.Errorf("case %d: invalid partition accepted: %v", i, p)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sdf", "blanket", "per-ring", "equal-cells", "optimal-dp"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPartitionRings(t *testing.T) {
	rings := grid.TwoDimHex.RingSizes(4)
	part := SDF{}.Partition(rings, nil, 2)
	if got := part.Rings(); got != 5 {
		t.Errorf("Rings() = %d, want 5", got)
	}
	var empty Partition
	if empty.Rings() != 0 {
		t.Error("empty partition Rings() != 0")
	}
}
