package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	if n := s.Drain(); n != 3 {
		t.Fatalf("drained %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("clock = %d", s.Now())
	}
}

func TestFIFOAmongSameTime(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var fired []Time
	s.At(10, func() {
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Drain()
	if len(fired) != 1 || fired[0] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*10, func() { count++ })
	}
	if n := s.RunUntil(50); n != 5 {
		t.Errorf("dispatched %d, want 5", n)
	}
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 50 {
		t.Errorf("clock = %d, want 50", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d", s.Pending())
	}
	// Events scheduled inside the window are picked up too.
	s.At(55, func() {
		count += 10
		s.After(1, func() { count += 100 })
	})
	s.RunUntil(60)
	// 5 prior + the pre-scheduled t=60 event + 10 (t=55) + 100 (t=56).
	if count != 116 {
		t.Errorf("count = %d, want 116", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var s Scheduler
	s.RunUntil(99)
	if s.Now() != 99 {
		t.Errorf("clock = %d", s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Scheduler
	s.At(10, func() {})
	s.Drain()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	s.At(1, nil)
}

func TestProcessedCounter(t *testing.T) {
	var s Scheduler
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Drain()
	if s.Processed() != 7 {
		t.Errorf("Processed = %d", s.Processed())
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestSelfPerpetuatingChainWithRunUntil(t *testing.T) {
	var s Scheduler
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.After(1, tick)
	}
	s.At(0, tick)
	s.RunUntil(100)
	if ticks != 101 { // t = 0..100 inclusive
		t.Errorf("ticks = %d", ticks)
	}
}
