package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	if n := s.Drain(); n != 3 {
		t.Fatalf("drained %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("clock = %d", s.Now())
	}
}

func TestFIFOAmongSameTime(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var fired []Time
	s.At(10, func() {
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Drain()
	if len(fired) != 1 || fired[0] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*10, func() { count++ })
	}
	if n := s.RunUntil(50); n != 5 {
		t.Errorf("dispatched %d, want 5", n)
	}
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 50 {
		t.Errorf("clock = %d, want 50", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d", s.Pending())
	}
	// Events scheduled inside the window are picked up too.
	s.At(55, func() {
		count += 10
		s.After(1, func() { count += 100 })
	})
	s.RunUntil(60)
	// 5 prior + the pre-scheduled t=60 event + 10 (t=55) + 100 (t=56).
	if count != 116 {
		t.Errorf("count = %d, want 116", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var s Scheduler
	s.RunUntil(99)
	if s.Now() != 99 {
		t.Errorf("clock = %d", s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Scheduler
	s.At(10, func() {})
	s.Drain()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	s.At(1, nil)
}

func TestProcessedCounter(t *testing.T) {
	var s Scheduler
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Drain()
	if s.Processed() != 7 {
		t.Errorf("Processed = %d", s.Processed())
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestRunBeforeStopsAtMark(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(10, func() { order = append(order, 1) }) // before t: runs
	s.At(20, func() { order = append(order, 2) }) // at t, stamped before mark: runs
	mark := s.SeqMark()
	s.At(20, func() { order = append(order, 3) }) // at t, stamped after mark: held
	s.At(30, func() { order = append(order, 4) }) // past t: held

	if n := s.RunBefore(20, mark); n != 2 {
		t.Fatalf("dispatched %d events, want 2", n)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if s.Now() != 20 {
		t.Errorf("clock = %d, want 20 (last dispatched event)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want the two held events", s.Pending())
	}
	// The held boundary event is released by a later mark at the same time.
	if n := s.RunBefore(21, s.SeqMark()); n != 1 {
		t.Errorf("release dispatched %d events, want 1", n)
	}
	if len(order) != 3 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

// TestRunBeforeFollowsRescheduling pins that events scheduled during the
// run are themselves dispatched when they precede the point — the paging
// chains the fast path drains within a slot are exactly such cascades.
func TestRunBeforeFollowsRescheduling(t *testing.T) {
	var s Scheduler
	hits := 0
	var chase func()
	chase = func() {
		hits++
		if hits < 5 {
			s.After(1, chase)
		}
	}
	s.At(0, chase)
	mark := s.SeqMark()
	s.At(10, func() { t.Error("event at the point, stamped after the mark, must not run") })
	if n := s.RunBefore(10, mark); n != 5 {
		t.Errorf("dispatched %d events, want the 5-link chain", n)
	}
}

func TestAdvanceTo(t *testing.T) {
	var s Scheduler
	s.AdvanceTo(40)
	if s.Now() != 40 {
		t.Errorf("clock = %d, want 40", s.Now())
	}
	s.AdvanceTo(10) // never moves backwards
	if s.Now() != 40 {
		t.Errorf("clock = %d after backwards advance, want 40", s.Now())
	}
	// Advancing onto a pending event's exact time is fine: it has not
	// been skipped, only reached.
	s.At(50, func() {})
	s.AdvanceTo(50)
	if s.Now() != 50 {
		t.Errorf("clock = %d, want 50", s.Now())
	}
}

func TestAdvanceToPastPendingPanics(t *testing.T) {
	var s Scheduler
	s.At(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("advancing past a pending event did not panic")
		}
	}()
	s.AdvanceTo(11)
}

func TestSeqMarkGrowsWithScheduling(t *testing.T) {
	var s Scheduler
	m0 := s.SeqMark()
	s.At(1, func() {})
	if m1 := s.SeqMark(); m1 <= m0 {
		t.Errorf("mark did not grow: %d then %d", m0, m1)
	}
	s.Drain()
	if m2 := s.SeqMark(); m2 != s.SeqMark() {
		t.Error("mark changed without scheduling")
	}
}

func TestSelfPerpetuatingChainWithRunUntil(t *testing.T) {
	var s Scheduler
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.After(1, tick)
	}
	s.At(0, tick)
	s.RunUntil(100)
	if ticks != 101 { // t = 0..100 inclusive
		t.Errorf("ticks = %d", ticks)
	}
}

func TestCheckpointRestoreReplaysTies(t *testing.T) {
	// Two tagged events at the same time: checkpoint/restore must keep
	// their original insertion stamps, so the FIFO tie-break replays.
	var s Scheduler
	var order []uint64
	s.AfterTag(5, 1, func() { order = append(order, 1) })
	s.AfterTag(5, 2, func() { order = append(order, 2) })
	now, seq, ran, pending := s.Checkpoint()
	if len(pending) != 2 || pending[0].Tag != 1 || pending[1].Tag != 2 {
		t.Fatalf("pending = %+v", pending)
	}

	var r Scheduler
	r.Restore(now, seq, ran, pending, func(tag uint64) func() {
		return func() { order = append(order, 10+tag) }
	})
	if r.Now() != now || r.Pending() != 2 || r.Processed() != ran {
		t.Fatalf("restored state: now=%d pending=%d ran=%d", r.Now(), r.Pending(), r.Processed())
	}
	r.Drain()
	if len(order) != 2 || order[0] != 11 || order[1] != 12 {
		t.Errorf("dispatch order = %v, want [11 12]", order)
	}
}

func TestCheckpointPanicsOnUntaggedPending(t *testing.T) {
	var s Scheduler
	s.After(1, func() {})
	defer func() {
		if recover() == nil {
			t.Error("checkpoint with an untagged pending event should panic")
		}
	}()
	s.Checkpoint()
}

func TestAfterTagRejectsZeroTag(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Error("AfterTag with tag 0 should panic")
		}
	}()
	s.AfterTag(1, 0, func() {})
}

func TestInsertAtLosesOriginalTies(t *testing.T) {
	// An event re-created with a pre-checkpoint stamp must dispatch
	// before same-time events that were scheduled after it originally:
	// stamp 0 was claimed before the tagged event's stamp 1, so after a
	// restore that re-inserts it, it still wins the time-3 tie.
	var order []int
	var r Scheduler
	r.Restore(0, 2, 1, []PendingEvent{{At: 3, Seq: 1, Tag: 7}},
		func(uint64) func() {
			return func() { order = append(order, 2) }
		})
	r.InsertAt(3, 0, func() { order = append(order, 1) })
	r.Drain()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("dispatch order = %v, want [1 2]", order)
	}
}

func TestRestoreRejectsStampAboveCounter(t *testing.T) {
	var r Scheduler
	defer func() {
		if recover() == nil {
			t.Error("restoring an event stamped at the counter should panic")
		}
	}()
	r.Restore(0, 1, 0, []PendingEvent{{At: 1, Seq: 1, Tag: 3}},
		func(uint64) func() { return func() {} })
}
