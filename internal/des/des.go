// Package des is a minimal discrete-event simulation kernel: a scheduler
// with a binary-heap event queue, deterministic FIFO ordering among
// same-time events, and a monotonic virtual clock. It underlies the PCN
// system simulator in package sim.
package des

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a virtual timestamp. Its unit is defined by the simulation that
// uses the scheduler (package sim uses 1 slot = SlotTicks ticks so that
// polling cycles can be scheduled within a slot).
type Time uint64

// Scheduler dispatches scheduled events in (time, insertion-order) order.
// The zero value is ready to use. Scheduler is not safe for concurrent use;
// discrete-event simulations are inherently sequential.
type Scheduler struct {
	q   eventQueue
	now Time
	seq uint64
	ran uint64
}

type event struct {
	at  Time
	seq uint64
	tag uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.q) }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.ran }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a simulation bug.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	heap.Push(&s.q, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn delay ticks from now.
func (s *Scheduler) After(delay Time, fn func()) {
	s.At(s.now+delay, fn)
}

// AfterTag is After with a caller-supplied non-zero tag attached to the
// event. Tags exist for checkpointing: closures cannot be serialized, so
// an event that may be pending when a simulation state snapshot is taken
// must carry enough identity (packed into the tag by the caller) for
// Restore to rebuild its closure. Untagged events (tag 0) cannot cross a
// checkpoint; Checkpoint panics if one is pending.
func (s *Scheduler) AfterTag(delay Time, tag uint64, fn func()) {
	if tag == 0 {
		panic("des: AfterTag with zero tag")
	}
	t := s.now + delay
	if fn == nil {
		panic("des: nil event function")
	}
	heap.Push(&s.q, event{at: t, seq: s.seq, tag: tag, fn: fn})
	s.seq++
}

// PendingEvent is one queued event in serializable form: its due time,
// its insertion stamp (the FIFO tie-break among same-time events) and the
// caller-assigned tag identifying its closure.
type PendingEvent struct {
	At  Time
	Seq uint64
	Tag uint64
}

// Checkpoint exports the scheduler's complete state: the clock, the
// insertion-stamp counter, the dispatched-event count, and every pending
// event sorted by (time, stamp). Every pending event must have been
// scheduled with AfterTag — an untagged pending event has no serializable
// identity, so its presence is a checkpoint-placement bug and panics.
func (s *Scheduler) Checkpoint() (now Time, seq, ran uint64, pending []PendingEvent) {
	if len(s.q) > 0 {
		pending = make([]PendingEvent, len(s.q))
		for i, e := range s.q {
			if e.tag == 0 {
				panic(fmt.Sprintf("des: checkpoint with untagged pending event at %d", e.at))
			}
			pending[i] = PendingEvent{At: e.at, Seq: e.seq, Tag: e.tag}
		}
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].At != pending[j].At {
				return pending[i].At < pending[j].At
			}
			return pending[i].Seq < pending[j].Seq
		})
	}
	return s.now, s.seq, s.ran, pending
}

// Restore reinitializes s (which must be the zero value) to a state
// previously exported by Checkpoint: the clock, counters and pending
// events are reinstated exactly, with bind mapping each pending event's
// tag back to its closure. Because the original insertion stamps are
// preserved, every (time, stamp) comparison — heap ordering, RunBefore
// classification against a SeqMark — behaves identically to the
// scheduler the checkpoint was taken from.
func (s *Scheduler) Restore(now Time, seq, ran uint64, pending []PendingEvent, bind func(tag uint64) func()) {
	if len(s.q) != 0 || s.seq != 0 || s.ran != 0 {
		panic("des: restoring a non-zero scheduler")
	}
	s.now, s.seq, s.ran = now, seq, ran
	for _, p := range pending {
		fn := bind(p.Tag)
		if fn == nil {
			panic(fmt.Sprintf("des: restore bind returned nil for tag %#x", p.Tag))
		}
		if p.Seq >= seq {
			panic(fmt.Sprintf("des: restored event stamp %d not below counter %d", p.Seq, seq))
		}
		heap.Push(&s.q, event{at: p.At, seq: p.Seq, tag: p.Tag, fn: fn})
	}
}

// InsertAt schedules fn at absolute time t with an explicit insertion
// stamp, for resume paths that re-create an event whose stamp was
// assigned before the checkpoint (a restored run's next periodic event
// must keep losing exactly the ties it lost originally). The stamp must
// lie below the current counter — InsertAt never mints new stamps; use At
// for that.
func (s *Scheduler) InsertAt(t Time, seq uint64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: inserting at %d before now %d", t, s.now))
	}
	if seq >= s.seq {
		panic(fmt.Sprintf("des: inserted stamp %d not below counter %d", seq, s.seq))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	heap.Push(&s.q, event{at: t, seq: seq, fn: fn})
}

// Step dispatches the next event, advancing the clock to its timestamp.
// It reports whether an event was dispatched.
func (s *Scheduler) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// SeqMark returns the insertion stamp the next scheduled event will
// receive. Together with RunBefore it lets a caller replay the FIFO
// tie-break among same-time events without keeping those events on this
// scheduler: an event scheduled after a mark loses ties against the mark.
func (s *Scheduler) SeqMark() uint64 { return s.seq }

// RunBefore dispatches every queued event that precedes the scheduling
// point (t, seq): events with timestamps strictly before t, plus events at
// exactly t whose insertion stamp is below seq. Events scheduled during
// the run are dispatched too if they precede the point. The clock advances
// to each dispatched event's time but never past it; it is not advanced to
// t (use AdvanceTo). It returns the number of events dispatched.
func (s *Scheduler) RunBefore(t Time, seq uint64) uint64 {
	start := s.ran
	for len(s.q) > 0 && (s.q[0].at < t || (s.q[0].at == t && s.q[0].seq < seq)) {
		s.Step()
	}
	return s.ran - start
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// Advancing past a pending event would silently reorder the simulation, so
// that panics: the caller must RunBefore (or otherwise dispatch) first.
func (s *Scheduler) AdvanceTo(t Time) {
	if len(s.q) > 0 && s.q[0].at < t {
		panic(fmt.Sprintf("des: advancing to %d past pending event at %d", t, s.q[0].at))
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntil dispatches events with timestamps ≤ deadline (inclusive) and
// advances the clock to deadline. Events scheduled during the run are
// dispatched too if they fall within the deadline. It returns the number
// of events dispatched.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.ran
	for len(s.q) > 0 && s.q[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.ran - start
}

// Drain dispatches every remaining event. It returns the number of events
// dispatched. Use with care: self-perpetuating event chains never drain.
func (s *Scheduler) Drain() uint64 {
	start := s.ran
	for s.Step() {
	}
	return s.ran - start
}
