// Package des is a minimal discrete-event simulation kernel: a scheduler
// with a binary-heap event queue, deterministic FIFO ordering among
// same-time events, and a monotonic virtual clock. It underlies the PCN
// system simulator in package sim.
package des

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp. Its unit is defined by the simulation that
// uses the scheduler (package sim uses 1 slot = SlotTicks ticks so that
// polling cycles can be scheduled within a slot).
type Time uint64

// Scheduler dispatches scheduled events in (time, insertion-order) order.
// The zero value is ready to use. Scheduler is not safe for concurrent use;
// discrete-event simulations are inherently sequential.
type Scheduler struct {
	q   eventQueue
	now Time
	seq uint64
	ran uint64
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.q) }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.ran }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a simulation bug.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	heap.Push(&s.q, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn delay ticks from now.
func (s *Scheduler) After(delay Time, fn func()) {
	s.At(s.now+delay, fn)
}

// Step dispatches the next event, advancing the clock to its timestamp.
// It reports whether an event was dispatched.
func (s *Scheduler) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// SeqMark returns the insertion stamp the next scheduled event will
// receive. Together with RunBefore it lets a caller replay the FIFO
// tie-break among same-time events without keeping those events on this
// scheduler: an event scheduled after a mark loses ties against the mark.
func (s *Scheduler) SeqMark() uint64 { return s.seq }

// RunBefore dispatches every queued event that precedes the scheduling
// point (t, seq): events with timestamps strictly before t, plus events at
// exactly t whose insertion stamp is below seq. Events scheduled during
// the run are dispatched too if they precede the point. The clock advances
// to each dispatched event's time but never past it; it is not advanced to
// t (use AdvanceTo). It returns the number of events dispatched.
func (s *Scheduler) RunBefore(t Time, seq uint64) uint64 {
	start := s.ran
	for len(s.q) > 0 && (s.q[0].at < t || (s.q[0].at == t && s.q[0].seq < seq)) {
		s.Step()
	}
	return s.ran - start
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// Advancing past a pending event would silently reorder the simulation, so
// that panics: the caller must RunBefore (or otherwise dispatch) first.
func (s *Scheduler) AdvanceTo(t Time) {
	if len(s.q) > 0 && s.q[0].at < t {
		panic(fmt.Sprintf("des: advancing to %d past pending event at %d", t, s.q[0].at))
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntil dispatches events with timestamps ≤ deadline (inclusive) and
// advances the clock to deadline. Events scheduled during the run are
// dispatched too if they fall within the deadline. It returns the number
// of events dispatched.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.ran
	for len(s.q) > 0 && s.q[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.ran - start
}

// Drain dispatches every remaining event. It returns the number of events
// dispatched. Use with care: self-perpetuating event chains never drain.
func (s *Scheduler) Drain() uint64 {
	start := s.ran
	for s.Step() {
	}
	return s.ran - start
}
