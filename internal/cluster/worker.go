package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/locman"
)

// Worker defaults.
const (
	// DefaultHeartbeatEvery is the worker's heartbeat cadence — several
	// beats fit inside DefaultHeartbeatTimeout, so one lost request does
	// not mark the node dead.
	DefaultHeartbeatEvery = 2 * time.Second
	// DefaultStreamEvery is the progress-frame cadence on a slice
	// stream. It is far inside DefaultLeaseTimeout, so a healthy worker
	// never trips the coordinator's watchdog even when a shard computes
	// slowly.
	DefaultStreamEvery = 250 * time.Millisecond
)

// WorkerOptions configures a cluster worker.
type WorkerOptions struct {
	// Join is the coordinator's base URL; Advertise the base URL at
	// which the coordinator can reach this worker's slice endpoint.
	Join      string
	Advertise string

	HeartbeatEvery time.Duration
	StreamEvery    time.Duration
	Client         *http.Client
}

// Worker is the follower half of a cluster: it registers with the
// coordinator, heartbeats, and serves slice leases by running
// locman.SimulateNetworkSlice and streaming progress plus the final
// partial back. Workers are stateless between leases — every lease
// carries its full Spec — so one can crash and rejoin (or a fresh one
// join) at any point.
type Worker struct {
	opts   WorkerOptions
	id     atomic.Value // string
	served atomic.Int64
	failed atomic.Int64
}

// NewWorker builds a worker. Join and Advertise must both be set.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Join == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL to join")
	}
	if opts.Advertise == "" {
		return nil, errors.New("cluster: worker needs an advertise URL")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if opts.StreamEvery <= 0 {
		opts.StreamEvery = DefaultStreamEvery
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	w := &Worker{opts: opts}
	w.id.Store("")
	return w, nil
}

// ID returns the node id the coordinator issued, or "" before the first
// successful registration.
func (w *Worker) ID() string { return w.id.Load().(string) }

// SlicesServed and SlicesFailed expose the worker's lease counters for
// its Prometheus exposition.
func (w *Worker) SlicesServed() int64 { return w.served.Load() }
func (w *Worker) SlicesFailed() int64 { return w.failed.Load() }

// Run keeps the worker joined: it registers (retrying until the
// coordinator is reachable), then heartbeats until ctx ends,
// re-registering whenever the coordinator stops recognizing the node id
// (e.g. after a coordinator restart). It returns only when ctx ends.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.opts.HeartbeatEvery / 4
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for w.ID() == "" {
		if err := w.register(ctx); err != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			continue
		}
	}
	ticker := time.NewTicker(w.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			err := w.heartbeat(ctx)
			if errors.Is(err, ErrUnknownNode) {
				// Coordinator forgot us; re-register under a fresh id.
				w.register(ctx)
			}
		}
	}
}

// register announces the worker and stores the issued node id.
func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	err := w.post(ctx, "/api/v1/cluster/register",
		RegisterRequest{Schema: WireSchema, Addr: w.opts.Advertise}, &resp)
	if err != nil {
		return err
	}
	if resp.Schema != WireSchema || resp.ID == "" {
		return fmt.Errorf("cluster: register reply schema %d id %q", resp.Schema, resp.ID)
	}
	w.id.Store(resp.ID)
	return nil
}

// heartbeat refreshes the worker's liveness with the coordinator.
func (w *Worker) heartbeat(ctx context.Context) error {
	return w.post(ctx, "/api/v1/cluster/heartbeat",
		HeartbeatRequest{Schema: WireSchema, ID: w.ID()}, nil)
}

// post sends one JSON request to the coordinator; a 404 maps to
// ErrUnknownNode (the re-register signal).
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Join+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return ErrUnknownNode
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SliceHandler serves POST /api/v1/slices: it validates the lease,
// recomputes the spec revision to refuse coordinator/worker skew, runs
// the slice, and streams NDJSON frames — progress on a ticker (doubling
// as the lease keepalive), then exactly one terminal partial or error
// frame. Cancelling the request (coordinator watchdog, connection loss)
// cancels the simulation.
func (w *Worker) SliceHandler() http.Handler {
	return http.HandlerFunc(w.handleSlice)
}

func (w *Worker) handleSlice(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var sr SliceRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		http.Error(rw, fmt.Sprintf("bad slice request: %v", err), http.StatusBadRequest)
		return
	}
	if sr.Schema != WireSchema {
		http.Error(rw, fmt.Sprintf("wire schema %d, want %d", sr.Schema, WireSchema), http.StatusBadRequest)
		return
	}
	if err := sr.Spec.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Shards < 1 || sr.Lo < 0 || sr.Hi <= sr.Lo || sr.Hi > sr.Shards {
		http.Error(rw, fmt.Sprintf("shard slice [%d,%d) of %d", sr.Lo, sr.Hi, sr.Shards), http.StatusBadRequest)
		return
	}
	if rev := SpecRevision(sr.Spec, sr.Shards); rev != sr.SpecRev {
		http.Error(rw, fmt.Sprintf("spec revision skew: computed %s, lease says %s", rev, sr.SpecRev),
			http.StatusBadRequest)
		return
	}
	cfg, err := sr.Spec.NetworkConfig()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	prog := &telemetry.Progress{}
	cfg.Progress = prog

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	flusher, _ := rw.(http.Flusher)
	enc := json.NewEncoder(rw)
	emit := func(f SliceFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	progressFrame := func() SliceFrame {
		f := SliceFrame{Type: FrameProgress}
		for _, s := range prog.Snapshot() {
			if s.Shard >= sr.Lo && s.Shard < sr.Hi {
				f.Shards = append(f.Shards, s)
			}
		}
		return f
	}

	type sliceOut struct {
		p   *locman.Partial
		err error
	}
	done := make(chan sliceOut, 1)
	go func() {
		p, err := locman.SimulateNetworkSlice(req.Context(), cfg, sr.Spec.Slots, sr.Shards, sr.Lo, sr.Hi)
		done <- sliceOut{p, err}
	}()

	// Immediate empty progress frame: the lease-accepted signal.
	if !emit(progressFrame()) {
		return
	}
	ticker := time.NewTicker(w.opts.StreamEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if !emit(progressFrame()) {
				return // coordinator gone; the request context ends the sim
			}
		case out := <-done:
			if out.err != nil {
				w.failed.Add(1)
				if req.Context().Err() == nil {
					emit(SliceFrame{Type: FrameError, Error: out.err.Error()})
				}
				return
			}
			data, err := locman.EncodePartial(out.p)
			if err != nil {
				w.failed.Add(1)
				emit(SliceFrame{Type: FrameError, Error: err.Error()})
				return
			}
			// Final progress frame so the coordinator's telemetry lands
			// on the true end-of-slice counters, then the partial.
			if !emit(progressFrame()) {
				return
			}
			w.served.Add(1)
			emit(SliceFrame{Type: FramePartial, Partial: &PartialDoc{
				Schema: WireSchema, Job: sr.Job, Node: w.ID(), SpecRev: sr.SpecRev,
				Shards: sr.Shards, Lo: sr.Lo, Hi: sr.Hi, Data: data,
			}})
			return
		}
	}
}
