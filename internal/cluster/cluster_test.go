package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// testSpec is a deliberately awkward distributed workload: a population
// that does not divide evenly by the shard count, dynamic thresholds,
// fault injection and telemetry snapshots — every merge-sensitive
// feature at once.
func testSpec() jobs.Spec {
	return jobs.Spec{
		Model:           "2d",
		MoveProb:        0.2,
		CallProb:        0.05,
		UpdateCost:      100,
		PollCost:        10,
		MaxDelay:        2,
		Dynamic:         true,
		ReoptimizeEvery: 100,
		Faults: &jobs.FaultSpec{
			UpdateLoss:    0.2,
			PollLoss:      0.1,
			ReplyLoss:     0.05,
			UpdateRetries: 2,
		},
		Terminals:     23,
		Slots:         400,
		Shards:        5,
		SnapshotEvery: 100,
		Seed:          42,
		Engine:        "fast",
	}
}

// startWorker boots one worker behind an httptest server, optionally
// wrapping its slice handler (to inject deaths and corruption), and
// registers it with the coordinator's registry.
func startWorker(t *testing.T, reg *Registry, wrap func(http.Handler) http.Handler) *Worker {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	w, err := NewWorker(WorkerOptions{
		Join:        "http://coordinator.invalid",
		Advertise:   ts.URL,
		StreamEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(w.SliceHandler())
	if wrap != nil {
		h = wrap(h)
	}
	mux.Handle("/api/v1/slices", h)
	if _, err := reg.Register(ts.URL); err != nil {
		t.Fatal(err)
	}
	return w
}

// runManagerJob submits one spec to a fresh manager and returns the
// stored result bytes.
func runManagerJob(t *testing.T, opts jobs.Options, spec jobs.Spec) []byte {
	t.Helper()
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 4
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	mgr := jobs.New(opts)
	if opts.DataDir != "" {
		if err := mgr.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := mgr.Done(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", v.ID)
	}
	got, err := mgr.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone {
		t.Fatalf("job %s finished %s: %s", v.ID, got.State, got.Error)
	}
	raw, err := mgr.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestClusterByteIdentity is the differential test the whole subsystem
// hangs off: a job run through a coordinator and three workers must
// produce result bytes identical to the same job run by a plain
// single-node manager (which is itself byte-identical to pcnsim -json).
func TestClusterByteIdentity(t *testing.T) {
	spec := testSpec()
	single := runManagerJob(t, jobs.Options{}, spec)

	reg := NewRegistry(time.Minute, nil)
	for i := 0; i < 3; i++ {
		startWorker(t, reg, nil)
	}
	coord := NewCoordinator(reg, Options{LeaseTimeout: 10 * time.Second})
	dist := runManagerJob(t, jobs.Options{Runner: coord}, spec)

	if !bytes.Equal(single, dist) {
		t.Fatalf("distributed report differs from single-node report:\nsingle: %d bytes\ndistributed: %d bytes",
			len(single), len(dist))
	}
	var partials, dispatches int64
	for _, n := range reg.Status() {
		partials += n.Partials
		dispatches += n.Dispatches
	}
	if partials != 3 || dispatches != 3 {
		t.Fatalf("expected 3 clean leases across 3 workers, got %d dispatches, %d partials",
			dispatches, partials)
	}
	if st := coord.Status(); len(st.Leases) != 0 || st.Releases != 0 {
		t.Fatalf("leases should be retired cleanly: %+v", st)
	}
}

// dieOnce aborts the first slice stream mid-flight — one progress frame,
// then the connection drops, the stand-in for a worker killed mid-job —
// and serves normally afterwards (the worker restarted).
func dieOnce(next http.Handler) http.Handler {
	var died atomic.Bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if died.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, `{"type":"progress"}`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// TestClusterWorkerLossByteIdentity kills one worker mid-slice and
// requires graceful degradation: the slice is re-leased (visible as a
// KindLease journal record and a bumped release counter) and the final
// report is still byte-identical to the single-node run.
func TestClusterWorkerLossByteIdentity(t *testing.T) {
	spec := testSpec()
	single := runManagerJob(t, jobs.Options{}, spec)

	reg := NewRegistry(time.Minute, nil)
	startWorker(t, reg, dieOnce)
	startWorker(t, reg, nil)
	startWorker(t, reg, nil)
	coord := NewCoordinator(reg, Options{LeaseTimeout: 10 * time.Second})
	dir := t.TempDir()
	dist := runManagerJob(t, jobs.Options{Runner: coord, DataDir: dir}, spec)

	if !bytes.Equal(single, dist) {
		t.Fatal("report after worker loss differs from single-node report")
	}
	if st := coord.Status(); st.Releases != 1 {
		t.Fatalf("expected exactly one re-leased slice, got %d", st.Releases)
	}

	// The journal carries the full lease history: one dispatch per
	// lease (3 initial + 1 re-lease) and one lease record for the death.
	data, err := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := jobs.ReplayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var nDispatch, nLease int
	for _, rec := range recs {
		switch rec.Kind {
		case jobs.KindDispatch:
			nDispatch++
		case jobs.KindLease:
			nLease++
			if rec.Error == "" {
				t.Fatal("lease record without a failure reason")
			}
			if rec.Hi <= rec.Lo {
				t.Fatalf("lease record with slice [%d,%d)", rec.Lo, rec.Hi)
			}
		}
	}
	if nDispatch != 4 || nLease != 1 {
		t.Fatalf("journal has %d dispatch and %d lease records, want 4 and 1", nDispatch, nLease)
	}

	// A restarted manager must replay the lease-history records without
	// complaint and restore the distributed result byte-for-byte.
	mgr2 := jobs.New(jobs.Options{QueueDepth: 4, Workers: 1, DataDir: dir})
	if err := mgr2.Recover(); err != nil {
		t.Fatalf("recovery over a journal with lease records: %v", err)
	}
	views := mgr2.List()
	if len(views) != 1 || views[0].State != jobs.StateDone {
		t.Fatalf("recovered job table: %+v", views)
	}
	restored, err := mgr2.Result(views[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, dist) {
		t.Fatal("recovered result differs from the distributed run's bytes")
	}
}

// corruptRev rewrites the spec revision on the first partial a worker
// delivers — the stale-worker scenario satellite 1 demands a typed
// rejection for.
func corruptRev(next http.Handler) http.Handler {
	var corrupted atomic.Bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		next.ServeHTTP(rec, r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(rec.Code)
		for _, line := range bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n")) {
			var f SliceFrame
			if json.Unmarshal(line, &f) == nil && f.Type == FramePartial && f.Partial != nil &&
				corrupted.CompareAndSwap(false, true) {
				f.Partial.SpecRev = "r0000000000000000"
				line, _ = json.Marshal(f)
			}
			w.Write(append(line, '\n'))
		}
	})
}

// TestClusterRejectsWrongRevisionPartial drives a worker that returns a
// partial for the wrong Spec revision straight into the coordinator and
// requires the typed wire-layer error.
func TestClusterRejectsWrongRevisionPartial(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	startWorker(t, reg, corruptRev)
	coord := NewCoordinator(reg, Options{LeaseTimeout: 10 * time.Second, MaxAttempts: 1})

	var journaled []jobs.Record
	rc := jobs.RunContext{
		ID:       "j-rev",
		Spec:     testSpec(),
		Progress: &telemetry.Progress{},
		Journal:  func(rec jobs.Record) { journaled = append(journaled, rec) },
	}
	_, err := coord.Run(context.Background(), rc)
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want *MismatchError, got %v", err)
	}
	if me.Field != "spec_rev" || me.Job != "j-rev" || me.Got != "r0000000000000000" {
		t.Fatalf("wrong mismatch detail: %+v", me)
	}

	// The rejected lease must be journaled with the mismatch as its
	// failure reason, after its dispatch record.
	var sawDispatch, sawLease bool
	for _, rec := range journaled {
		switch rec.Kind {
		case jobs.KindDispatch:
			sawDispatch = true
		case jobs.KindLease:
			sawLease = true
			if !strings.Contains(rec.Error, "spec_rev") {
				t.Fatalf("lease record does not carry the mismatch reason: %+v", rec)
			}
		}
	}
	if !sawDispatch || !sawLease {
		t.Fatalf("journal missing dispatch/lease records: %+v", journaled)
	}
}

// TestClusterRecoversMergedRejection covers the same wrong-revision
// worker under a coordinator allowed to retry: the bad delivery is
// rejected, the slice re-leased, and the job still completes with
// byte-identical output because dieOnce-style corruption only strikes
// once.
func TestClusterRecoversFromWrongRevisionPartial(t *testing.T) {
	spec := testSpec()
	single := runManagerJob(t, jobs.Options{}, spec)

	reg := NewRegistry(time.Minute, nil)
	startWorker(t, reg, corruptRev)
	coord := NewCoordinator(reg, Options{LeaseTimeout: 10 * time.Second})
	dist := runManagerJob(t, jobs.Options{Runner: coord}, spec)
	if !bytes.Equal(single, dist) {
		t.Fatal("report after a rejected partial differs from single-node report")
	}
	if st := coord.Status(); st.Releases == 0 {
		t.Fatal("the mismatched delivery should have burned a lease")
	}
}

// TestWorkerRejectsSkewedLease checks the worker-side half of the
// revision handshake: a lease whose revision does not match the shipped
// spec is refused before any simulation starts.
func TestWorkerRejectsSkewedLease(t *testing.T) {
	w, err := NewWorker(WorkerOptions{Join: "http://c.invalid", Advertise: "http://w.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	for name, mutate := range map[string]func(*SliceRequest){
		"wrong-schema":   func(sr *SliceRequest) { sr.Schema = 99 },
		"wrong-revision": func(sr *SliceRequest) { sr.SpecRev = "r0000000000000000" },
		"stale-spec":     func(sr *SliceRequest) { sr.Spec.Seed++ },
		"bad-slice":      func(sr *SliceRequest) { sr.Lo, sr.Hi = 4, 2 },
	} {
		sr := SliceRequest{
			Schema: WireSchema, Job: "j1", Spec: spec, Shards: 5, Lo: 0, Hi: 2,
		}
		sr.SpecRev = SpecRevision(sr.Spec, sr.Shards)
		mutate(&sr)
		body, _ := json.Marshal(sr)
		req := httptest.NewRequest(http.MethodPost, "/api/v1/slices", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		w.SliceHandler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

func TestRegistry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	reg := NewRegistry(5*time.Second, clock)

	if _, err := reg.Register("not-a-url"); err == nil {
		t.Fatal("registered a non-URL address")
	}
	if _, err := reg.Register("ftp://x"); err == nil {
		t.Fatal("registered a non-http address")
	}
	id1, err := reg.Register("http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := reg.Register("http://b:1")
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("distinct addresses share id %s", id1)
	}
	if again, _ := reg.Register("http://a:1"); again != id1 {
		t.Fatalf("re-registering the same address got %s, want %s", again, id1)
	}
	if err := reg.Heartbeat("n999"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat for unknown node: %v", err)
	}

	if alive := reg.Alive(); len(alive) != 2 {
		t.Fatalf("alive: %v", alive)
	}
	// Only node 2 heartbeats across the timeout horizon.
	now = now.Add(4 * time.Second)
	if err := reg.Heartbeat(id2); err != nil {
		t.Fatal(err)
	}
	now = now.Add(3 * time.Second)
	alive := reg.Alive()
	if len(alive) != 1 || alive[0].ID != id2 {
		t.Fatalf("alive after silence: %v", alive)
	}
	st := reg.Status()
	if len(st) != 2 || st[0].Alive || !st[1].Alive {
		t.Fatalf("status: %+v", st)
	}
	if st[0].SinceHeartbeatMS != 7000 {
		t.Fatalf("silent node heartbeat age %dms, want 7000", st[0].SinceHeartbeatMS)
	}
}

// TestWorkerJoinLifecycle runs the real register/heartbeat loop against
// a fake coordinator that forgets the node once, exercising the
// re-register path.
func TestWorkerJoinLifecycle(t *testing.T) {
	var registers, beats atomic.Int64
	var forget atomic.Bool
	forget.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		n := registers.Add(1)
		json.NewEncoder(w).Encode(RegisterResponse{Schema: WireSchema, ID: fmt.Sprintf("n%03d", n)})
	})
	mux.HandleFunc("POST /api/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if forget.CompareAndSwap(true, false) {
			http.Error(w, "unknown node", http.StatusNotFound)
			return
		}
		beats.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	w, err := NewWorker(WorkerOptions{
		Join: ts.URL, Advertise: "http://me:1", HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if registers.Load() >= 2 && beats.Load() >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if registers.Load() < 2 {
		t.Fatalf("worker never re-registered after the 404: %d registrations", registers.Load())
	}
	if beats.Load() < 1 {
		t.Fatal("worker never heartbeat successfully")
	}
	if w.ID() == "" {
		t.Fatal("worker has no id after joining")
	}
}

func TestSpecRevision(t *testing.T) {
	spec := testSpec()
	base := SpecRevision(spec, 5)
	if base != SpecRevision(testSpec(), 5) {
		t.Fatal("revision not deterministic")
	}
	if base == SpecRevision(spec, 6) {
		t.Fatal("revision ignores the shard count")
	}
	bumped := spec
	bumped.Seed++
	if base == SpecRevision(bumped, 5) {
		t.Fatal("revision ignores the spec")
	}
	if len(base) != 17 || base[0] != 'r' {
		t.Fatalf("revision %q has unexpected shape", base)
	}
}

// TestPickNodeSteersAroundLastFailure: a kill -9'd worker keeps looking
// alive until its heartbeats age out, so a re-lease must prefer any other
// node over the one that just failed the slice — falling back to it only
// when it is the last node standing.
func TestPickNodeSteersAroundLastFailure(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	a, err := reg.Register("http://10.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register("http://10.0.0.2:8080")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(reg, Options{})

	// b is busier, a is idle: unconstrained pick takes a.
	c.inflight[b] = 1
	if got := c.pickNode(""); got.ID != a {
		t.Fatalf("pickNode(\"\") = %s, want idle node %s", got.ID, a)
	}
	// But if a just failed the slice, the re-lease goes to b anyway.
	if got := c.pickNode(a); got.ID != b {
		t.Fatalf("pickNode(avoid=%s) = %s, want %s", a, got.ID, b)
	}
	// With a as the only node, avoidance yields: better a suspect node
	// than no dispatch at all.
	reg2 := NewRegistry(time.Minute, nil)
	only, err := reg2.Register("http://10.0.0.1:8080")
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(reg2, Options{})
	if got := c2.pickNode(only); got.ID != only {
		t.Fatalf("pickNode(avoid=only) = %q, want %s", got.ID, only)
	}
}
