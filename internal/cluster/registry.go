package cluster

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"sync"
	"time"
)

// ErrUnknownNode reports a heartbeat for a node id the registry does not
// know — a coordinator restart lost the registration, or the id was
// never issued. Workers respond by re-registering.
var ErrUnknownNode = errors.New("cluster: unknown node")

// Registry is the coordinator's worker-node table: who has joined, where
// to reach them, when they last heartbeat, and their per-node dispatch
// counters. A node is alive while its last heartbeat is within the
// configured timeout; the coordinator leases slices only to alive nodes
// and treats silence on an open slice stream as lease expiry (see
// Coordinator), so the registry's timeout only gates new leases.
type Registry struct {
	mu      sync.Mutex
	clock   func() time.Time
	timeout time.Duration
	seq     int
	nodes   map[string]*node // by id
	byAddr  map[string]string
}

type node struct {
	id, addr   string
	registered time.Time
	lastBeat   time.Time

	dispatches int64
	partials   int64
	failures   int64
}

// DefaultHeartbeatTimeout is how long after its last heartbeat a node
// still counts as alive when NewRegistry is given no timeout.
const DefaultHeartbeatTimeout = 5 * time.Second

// NewRegistry builds a registry. timeout <= 0 selects
// DefaultHeartbeatTimeout; a nil clock selects time.Now (injectable for
// tests, like jobs.Options.Clock).
func NewRegistry(timeout time.Duration, clock func() time.Time) *Registry {
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	if clock == nil {
		clock = time.Now
	}
	return &Registry{
		clock:   clock,
		timeout: timeout,
		nodes:   make(map[string]*node),
		byAddr:  make(map[string]string),
	}
}

// Register admits a worker reachable at addr (a http:// or https:// base
// URL) and returns its node id. Re-registering the same address — a
// restarted worker, or one whose id the coordinator forgot — refreshes
// the existing node and returns its id, so counters survive reconnects
// and the table cannot grow past the set of distinct addresses.
func (r *Registry) Register(addr string) (string, error) {
	u, err := url.Parse(addr)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("cluster: node address %q is not an http(s) base URL", addr)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	if id, ok := r.byAddr[addr]; ok {
		n := r.nodes[id]
		n.lastBeat = now
		return id, nil
	}
	r.seq++
	id := fmt.Sprintf("n%03d", r.seq)
	r.nodes[id] = &node{id: id, addr: addr, registered: now, lastBeat: now}
	r.byAddr[addr] = id
	return id, nil
}

// Heartbeat refreshes a node's liveness; ErrUnknownNode tells the worker
// to re-register.
func (r *Registry) Heartbeat(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	n.lastBeat = r.clock()
	return nil
}

// Node is one alive node's lease target, as returned by Alive.
type Node struct {
	ID   string
	Addr string
}

// Alive returns the nodes whose last heartbeat is within the timeout,
// sorted by id for deterministic iteration.
func (r *Registry) Alive() []Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	dead := r.clock().Add(-r.timeout)
	var out []Node
	for _, n := range r.nodes {
		if !n.lastBeat.Before(dead) {
			out = append(out, Node{ID: n.id, Addr: n.addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) note(id string, f func(*node)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[id]; ok {
		f(n)
	}
}

func (r *Registry) noteDispatch(id string) { r.note(id, func(n *node) { n.dispatches++ }) }
func (r *Registry) notePartial(id string)  { r.note(id, func(n *node) { n.partials++ }) }
func (r *Registry) noteFailure(id string)  { r.note(id, func(n *node) { n.failures++ }) }

// NodeStatus is one node's row in the /cluster status document and the
// label source for the per-node Prometheus series.
type NodeStatus struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// SinceHeartbeatMS is the age of the last heartbeat in milliseconds.
	SinceHeartbeatMS int64 `json:"since_heartbeat_ms"`
	// Dispatches counts slices leased to the node, Partials the partial
	// results it delivered, Failures the leases that ended without one.
	Dispatches int64 `json:"dispatches"`
	Partials   int64 `json:"partials"`
	Failures   int64 `json:"failures"`
}

// Status returns every known node's row, sorted by id.
func (r *Registry) Status() []NodeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	out := make([]NodeStatus, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, NodeStatus{
			ID:               n.id,
			Addr:             n.addr,
			Alive:            now.Sub(n.lastBeat) <= r.timeout,
			SinceHeartbeatMS: now.Sub(n.lastBeat).Milliseconds(),
			Dispatches:       n.dispatches,
			Partials:         n.partials,
			Failures:         n.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
