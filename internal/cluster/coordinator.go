package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/locman"
)

// Coordinator defaults.
const (
	// DefaultLeaseTimeout is how long a slice stream may stay silent (no
	// frame at all) before the coordinator declares the lease dead.
	// Workers emit progress frames every few hundred milliseconds, so
	// the watchdog only fires on a genuinely gone worker.
	DefaultLeaseTimeout = 15 * time.Second
	// DefaultMaxAttempts bounds how many times one slice is re-leased
	// before the whole job fails.
	DefaultMaxAttempts = 8
	// DefaultPollEvery is the cadence at which a coordinator with no
	// alive workers re-checks the registry.
	DefaultPollEvery = 100 * time.Millisecond
)

// Options tunes a Coordinator. The zero value selects every default.
type Options struct {
	LeaseTimeout time.Duration
	MaxAttempts  int
	PollEvery    time.Duration
	// Client issues the slice requests. It must not set a global
	// timeout: slice responses are long-lived streams, and the lease
	// watchdog already bounds silence.
	Client *http.Client
}

// Coordinator drives distributed jobs: it implements jobs.Runner, so a
// jobs.Manager built with Options.Runner pointing here keeps its whole
// lifecycle (queueing, journal, results, reports) while the simulate
// step fans out across the registered workers. The determinism contract
// of jobs.Runner holds because every worker computes positionally-seeded
// shards and MergeNetworkPartials re-folds them in global order — see
// the package comment.
type Coordinator struct {
	reg  *Registry
	opts Options

	mu       sync.Mutex
	leaseSeq int64
	leases   map[int64]LeaseStatus
	inflight map[string]int // node id → active leases
	releases int64
}

// NewCoordinator builds a coordinator over a worker registry.
func NewCoordinator(reg *Registry, opts Options) *Coordinator {
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = DefaultLeaseTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = DefaultPollEvery
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	return &Coordinator{
		reg:      reg,
		opts:     opts,
		leases:   make(map[int64]LeaseStatus),
		inflight: make(map[string]int),
	}
}

// Registry returns the worker registry the coordinator leases from.
func (c *Coordinator) Registry() *Registry { return c.reg }

// LeaseStatus is one active lease's row in the /cluster document.
type LeaseStatus struct {
	Job  string `json:"job"`
	Node string `json:"node"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// Status is the /cluster document: the full node table, the active
// leases, and the total number of leases that ended without a partial
// and were re-queued.
type Status struct {
	Schema   int           `json:"schema"`
	Nodes    []NodeStatus  `json:"nodes"`
	Leases   []LeaseStatus `json:"leases"`
	Releases int64         `json:"releases"`
}

// Status snapshots the cluster for /cluster and the Prometheus
// exposition.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	leases := make([]LeaseStatus, 0, len(c.leases))
	for _, l := range c.leases {
		leases = append(leases, l)
	}
	releases := c.releases
	c.mu.Unlock()
	// Sort for a stable document: by slice start, then node.
	for i := 1; i < len(leases); i++ {
		for j := i; j > 0 && (leases[j].Lo < leases[j-1].Lo ||
			(leases[j].Lo == leases[j-1].Lo && leases[j].Node < leases[j-1].Node)); j-- {
			leases[j], leases[j-1] = leases[j-1], leases[j]
		}
	}
	return Status{Schema: WireSchema, Nodes: c.reg.Status(), Leases: leases, Releases: releases}
}

// slice is one unit of pending work: shards [lo, hi), how many leases it
// has burned, and the node that failed it last. A killed worker looks
// alive until its heartbeats age out, so without steering a re-lease away
// from lastNode the coordinator could burn every attempt on fast
// connection-refused failures inside the liveness window.
type slice struct {
	lo, hi   int
	attempts int
	lastNode string
}

type leaseResult struct {
	sl   slice
	node string
	p    *locman.Partial
	err  error
}

// Run executes one job across the cluster and returns metrics
// bit-identical to a single-node locman.SimulateNetworkSharded of the
// same Spec. Slices are leased to alive workers; a lease that ends
// without a valid partial (worker death, stream loss, mismatched
// delivery) puts its slice back in the pending set, so the job survives
// any worker loss as long as some worker remains to finish the work.
func (c *Coordinator) Run(ctx context.Context, rc jobs.RunContext) (*locman.NetworkMetrics, error) {
	spec := rc.Spec
	cfg, err := spec.NetworkConfig()
	if err != nil {
		return nil, err
	}
	shards := spec.ResolvedShards()
	rev := SpecRevision(spec, shards)
	rc.Progress.Init(shards)

	// Plan the initial partition: one contiguous slice per alive worker
	// (capped at one shard per slice). Workers that join later still
	// participate via re-leases.
	alive, err := c.waitWorkers(ctx)
	if err != nil {
		return nil, err
	}
	nSlices := len(alive)
	if nSlices > shards {
		nSlices = shards
	}
	pending := make([]slice, 0, nSlices)
	for i := 0; i < nSlices; i++ {
		pending = append(pending, slice{lo: i * shards / nSlices, hi: (i + 1) * shards / nSlices})
	}

	results := make(chan leaseResult)
	parts := make([]*locman.Partial, 0, nSlices)
	active := 0
	for len(parts) < nSlices {
		// Dispatch everything pending to the least-loaded alive nodes.
		for len(pending) > 0 {
			sl := pending[0]
			node := c.pickNode(sl.lastNode)
			if node.ID == "" {
				break
			}
			pending = pending[1:]
			active++
			c.grant(rc, node, sl, rev)
			req := SliceRequest{
				Schema: WireSchema, Job: rc.ID, SpecRev: rev, Spec: spec,
				Shards: shards, Lo: sl.lo, Hi: sl.hi,
			}
			go func(sl slice, node Node) {
				p, err := c.lease(ctx, rc, req, node)
				select {
				case results <- leaseResult{sl: sl, node: node.ID, p: p, err: err}:
				case <-ctx.Done():
				}
			}(sl, node)
		}
		if active == 0 {
			// Nothing running and work still pending: no alive workers.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.opts.PollEvery):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case r := <-results:
			active--
			c.release(rc, r)
			if r.err != nil {
				c.reg.noteFailure(r.node)
				r.sl.attempts++
				if r.sl.attempts >= c.opts.MaxAttempts {
					return nil, fmt.Errorf("cluster: slice [%d,%d) failed %d times, last: %w",
						r.sl.lo, r.sl.hi, r.sl.attempts, r.err)
				}
				r.sl.lastNode = r.node
				pending = append(pending, r.sl)
				continue
			}
			c.reg.notePartial(r.node)
			parts = append(parts, r.p)
		}
	}
	return locman.MergeNetworkPartials(cfg, spec.Slots, shards, parts)
}

// waitWorkers blocks until the registry has at least one alive node.
func (c *Coordinator) waitWorkers(ctx context.Context) ([]Node, error) {
	for {
		if alive := c.reg.Alive(); len(alive) > 0 {
			return alive, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: no alive workers: %w", ctx.Err())
		case <-time.After(c.opts.PollEvery):
		}
	}
}

// pickNode returns the alive node with the fewest active leases,
// steering around avoid (the node that last failed the slice) unless it
// is the only node alive. Returns a zero Node when none is alive.
func (c *Coordinator) pickNode(avoid string) Node {
	alive := c.reg.Alive()
	if len(alive) == 0 {
		return Node{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	best := Node{}
	for _, n := range alive {
		if n.ID == avoid {
			continue
		}
		if best.ID == "" || c.inflight[n.ID] < c.inflight[best.ID] {
			best = n
		}
	}
	if best.ID == "" {
		best = alive[0]
	}
	return best
}

// grant records a new lease: the status table, the per-node dispatch
// counter, and a KindDispatch journal record.
func (c *Coordinator) grant(rc jobs.RunContext, node Node, sl slice, rev string) {
	c.mu.Lock()
	c.leaseSeq++
	c.leases[c.leaseSeq] = LeaseStatus{Job: rc.ID, Node: node.ID, Lo: sl.lo, Hi: sl.hi}
	c.inflight[node.ID]++
	c.mu.Unlock()
	c.reg.noteDispatch(node.ID)
	if rc.Journal != nil {
		rc.Journal(jobs.Record{Kind: jobs.KindDispatch, Job: rc.ID, Node: node.ID, Lo: sl.lo, Hi: sl.hi})
	}
}

// release retires a lease from the status table; a failed lease also
// bumps the release counter and journals the KindLease edge with its
// failure reason.
func (c *Coordinator) release(rc jobs.RunContext, r leaseResult) {
	c.mu.Lock()
	for id, l := range c.leases {
		if l.Node == r.node && l.Lo == r.sl.lo && l.Hi == r.sl.hi && l.Job == rc.ID {
			delete(c.leases, id)
			break
		}
	}
	if c.inflight[r.node] > 0 {
		c.inflight[r.node]--
	}
	if r.err != nil {
		c.releases++
	}
	c.mu.Unlock()
	if r.err != nil && rc.Journal != nil {
		rc.Journal(jobs.Record{
			Kind: jobs.KindLease, Job: rc.ID, Node: r.node,
			Lo: r.sl.lo, Hi: r.sl.hi, Error: r.err.Error(),
		})
	}
}

// lease runs one slice on one worker: POST the request, relay progress
// frames into the job's telemetry, and return the validated partial. A
// watchdog cancels the request if the stream stays silent longer than
// the lease timeout, which is how a dead worker's lease expires — frames
// of any type reset it.
func (c *Coordinator) lease(ctx context.Context, rc jobs.RunContext, req SliceRequest, node Node) (*locman.Partial, error) {
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(c.opts.LeaseTimeout, cancel)
	defer watchdog.Stop()
	expired := func(err error) error {
		if lctx.Err() != nil && ctx.Err() == nil {
			return fmt.Errorf("cluster: node %s: lease expired after %s of silence on shards [%d,%d)",
				node.ID, c.opts.LeaseTimeout, req.Lo, req.Hi)
		}
		return err
	}

	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(lctx, http.MethodPost, node.Addr+"/api/v1/slices", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(hreq)
	if err != nil {
		return nil, expired(fmt.Errorf("cluster: node %s: %w", node.ID, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: node %s rejected shards [%d,%d): %s: %s",
			node.ID, req.Lo, req.Hi, resp.Status, strings.TrimSpace(string(msg)))
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var f SliceFrame
		if err := dec.Decode(&f); err != nil {
			return nil, expired(fmt.Errorf("cluster: node %s: slice stream: %w", node.ID, err))
		}
		watchdog.Reset(c.opts.LeaseTimeout)
		switch f.Type {
		case FrameProgress:
			for _, s := range f.Shards {
				if s.Shard >= req.Lo && s.Shard < req.Hi {
					rc.Progress.Set(s.Shard, s.Slot, s.Work, s.Events)
				}
			}
		case FramePartial:
			if f.Partial == nil {
				return nil, fmt.Errorf("cluster: node %s: partial frame without a partial", node.ID)
			}
			return c.acceptPartial(node.ID, req, f.Partial)
		case FrameError:
			return nil, fmt.Errorf("cluster: node %s failed shards [%d,%d) remotely: %s",
				node.ID, req.Lo, req.Hi, f.Error)
		default:
			return nil, fmt.Errorf("cluster: node %s: unknown slice frame type %q", node.ID, f.Type)
		}
	}
}

// acceptPartial admits a delivered partial into the job, or rejects it
// with a typed *MismatchError when it does not describe the lease — the
// wire-layer surface of the merge layer's slot-mismatch rejection. A
// rejected partial fails the lease, so the slice is re-dispatched rather
// than merged wrong.
func (c *Coordinator) acceptPartial(nodeID string, req SliceRequest, doc *PartialDoc) (*locman.Partial, error) {
	mism := func(field, got, want string) error {
		return &MismatchError{Node: nodeID, Job: req.Job, Field: field, Got: got, Want: want}
	}
	if doc.Job != req.Job {
		return nil, mism("job", doc.Job, req.Job)
	}
	if doc.SpecRev != req.SpecRev {
		return nil, mism("spec_rev", doc.SpecRev, req.SpecRev)
	}
	if doc.Shards != req.Shards {
		return nil, mism("shards", fmt.Sprint(doc.Shards), fmt.Sprint(req.Shards))
	}
	if doc.Lo != req.Lo || doc.Hi != req.Hi {
		return nil, mism("slice",
			fmt.Sprintf("[%d,%d)", doc.Lo, doc.Hi), fmt.Sprintf("[%d,%d)", req.Lo, req.Hi))
	}
	p, err := doc.Decode()
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", nodeID, err)
	}
	if p.Slots != req.Spec.Slots {
		return nil, mism("slots", fmt.Sprint(p.Slots), fmt.Sprint(req.Spec.Slots))
	}
	if p.Seed != req.Spec.Seed {
		return nil, mism("seed", fmt.Sprint(p.Seed), fmt.Sprint(req.Spec.Seed))
	}
	return p, nil
}
