package cluster

import (
	"context"
	"encoding/json"
	"testing"

	"repro/locman"
)

// validPartialDoc builds one genuine wire envelope for the fuzz corpus.
func validPartialDoc(t testing.TB) []byte {
	t.Helper()
	spec := testSpec()
	spec.Slots = 50
	cfg, err := spec.NetworkConfig()
	if err != nil {
		t.Fatal(err)
	}
	p, err := locman.SimulateNetworkSlice(context.Background(), cfg, spec.Slots, 5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := locman.EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(PartialDoc{
		Schema: WireSchema, Job: "j1", Node: "n001",
		SpecRev: SpecRevision(spec, 5), Shards: 5, Lo: 1, Hi: 3, Data: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// FuzzPartialDocDecode hammers the partial-result wire path a
// coordinator exposes to worker-supplied bytes: whatever arrives, Decode
// must return a validated partial or an error — never panic, and never
// accept an envelope that disagrees with its payload.
func FuzzPartialDocDecode(f *testing.F) {
	seed := validPartialDoc(f)
	f.Add(seed)
	// A handful of structured corruptions so coverage starts beyond the
	// JSON layer: truncated payload, flipped payload byte, envelope lies.
	var doc PartialDoc
	if err := json.Unmarshal(seed, &doc); err != nil {
		f.Fatal(err)
	}
	truncated := doc
	truncated.Data = doc.Data[:len(doc.Data)/2]
	if b, err := json.Marshal(truncated); err == nil {
		f.Add(b)
	}
	flipped := doc
	flipped.Data = append([]byte(nil), doc.Data...)
	flipped.Data[len(flipped.Data)/2] ^= 0x40
	if b, err := json.Marshal(flipped); err == nil {
		f.Add(b)
	}
	lying := doc
	lying.Lo, lying.Hi = 0, 5
	if b, err := json.Marshal(lying); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"schema":1,"job":"j","node":"n","spec_rev":"r0","shards":1,"lo":0,"hi":1,"data":""}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d PartialDoc
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		p, err := d.Decode()
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("Decode returned neither a partial nor an error")
		}
		// Anything Decode admits must agree with its envelope and pass
		// the structural validator — the merge layer's precondition.
		if p.Shards != d.Shards || p.Lo != d.Lo || p.Hi != d.Hi {
			t.Fatalf("Decode accepted a lying envelope: payload [%d,%d)/%d, envelope [%d,%d)/%d",
				p.Lo, p.Hi, p.Shards, d.Lo, d.Hi, d.Shards)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid partial: %v", err)
		}
	})
}
