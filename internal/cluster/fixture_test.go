package cluster

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite checked-in fixtures")

// TestPartialFixture pins the checked-in wire envelope CI pipes through
// schemacheck -kind partial. The gob payload embeds a map, so the bytes
// are not reproducible run-to-run; the contract is that the fixture
// decodes to exactly the partial a fresh worker computes for the same
// lease, spec revision included. Regenerate with -update after wire or
// engine changes.
func TestPartialFixture(t *testing.T) {
	path := filepath.Join("testdata", "partial.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(validPartialDoc(t), '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	var doc PartialDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	got, err := doc.Decode()
	if err != nil {
		t.Fatal(err)
	}

	var fresh PartialDoc
	if err := json.Unmarshal(validPartialDoc(t), &fresh); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checked-in partial fixture no longer decodes to a fresh worker's computation; regenerate with -update")
	}
	if doc.SpecRev != fresh.SpecRev {
		t.Fatalf("fixture spec revision %s, fresh computation %s", doc.SpecRev, fresh.SpecRev)
	}
}
