// Package cluster turns pcnserve into a coordinator/worker fleet for a
// single job. The coordinator accepts ordinary job Specs, partitions the
// terminal range into per-node shard slices, leases the slices to
// registered workers over HTTP/NDJSON, and folds the partial results
// back into a report byte-identical to a single-node run.
//
// Determinism is the whole design: terminal i's RNG stream is seeded
// positionally (stats.SeedSubStream(seed, i)) and shard geometry is a
// pure function of (terminals, shards), so any worker computes exactly
// the shards it is asked for, and locman.MergeNetworkPartials re-folds
// the per-terminal state in global id order. The coordinator therefore
// resolves the shard count once, ships it explicitly in every lease, and
// pins each lease to a spec revision hash so a stale or misdirected
// partial can never silently contaminate a merge — it is rejected with a
// typed *MismatchError and the slice is re-leased.
//
// Wire protocol (all JSON, schema-versioned):
//
//	POST {coordinator}/api/v1/cluster/register   RegisterRequest → RegisterResponse
//	POST {coordinator}/api/v1/cluster/heartbeat  HeartbeatRequest → 204 (404 → re-register)
//	POST {worker}/api/v1/slices                  SliceRequest → NDJSON stream of SliceFrame
//
// The slice response stream doubles as the lease: progress frames reset
// the coordinator's lease watchdog, so a worker that dies (process kill,
// network partition) goes silent, the watchdog fires, and the slice
// returns to the pending set for another node. The stream ends with a
// single partial (or error) frame.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/jobs"
	"repro/internal/telemetry"
	"repro/locman"
)

// WireSchema versions every cluster wire document (requests, frames,
// partial envelopes). A peer speaking a different schema is rejected
// outright rather than half-understood.
const WireSchema = 1

// SpecRevision fingerprints the exact work a lease describes: the full
// Spec document plus the resolved slot and shard counts (the two values
// a worker must not re-derive locally — a GOMAXPROCS-defaulted shard
// count would differ across machines). Workers recompute it from the
// shipped Spec and refuse mismatched leases; the coordinator stamps it
// on every dispatch and rejects partials carrying any other revision.
func SpecRevision(spec jobs.Spec, shards int) string {
	doc, err := json.Marshal(spec)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on one.
		panic(fmt.Sprintf("cluster: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write(doc)
	fmt.Fprintf(h, "|slots=%d|shards=%d", spec.Slots, shards)
	return "r" + hex.EncodeToString(h.Sum(nil))[:16]
}

// RegisterRequest announces a worker to the coordinator. Addr is the
// base URL at which the coordinator can reach the worker's slice
// endpoint.
type RegisterRequest struct {
	Schema int    `json:"schema"`
	Addr   string `json:"addr"`
}

// RegisterResponse carries the node id the worker must heartbeat under.
type RegisterResponse struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
}

// HeartbeatRequest refreshes a node's liveness.
type HeartbeatRequest struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
}

// SliceRequest is a lease: the coordinator asks a worker to simulate
// shards [Lo, Hi) of a Shards-way partition of the job's population.
// The Spec travels whole so workers are stateless; SpecRev pins the
// revision the coordinator computed so both sides agree on the exact
// work before any simulation starts.
type SliceRequest struct {
	Schema  int       `json:"schema"`
	Job     string    `json:"job"`
	SpecRev string    `json:"spec_rev"`
	Spec    jobs.Spec `json:"spec"`
	Shards  int       `json:"shards"`
	Lo      int       `json:"lo"`
	Hi      int       `json:"hi"`
}

// Slice frame types.
const (
	// FrameProgress carries live per-shard counters and doubles as the
	// lease keepalive.
	FrameProgress = "progress"
	// FramePartial ends the stream with the slice's partial result.
	FramePartial = "partial"
	// FrameError ends the stream with a remote failure description.
	FrameError = "error"
)

// SliceFrame is one NDJSON line of a slice response stream.
type SliceFrame struct {
	Type string `json:"type"`

	// Progress payload: per-shard counters for the leased slice,
	// indexed by global shard id.
	Shards []telemetry.ShardStatus `json:"shards,omitempty"`

	// Partial payload.
	Partial *PartialDoc `json:"partial,omitempty"`

	// Error payload.
	Error string `json:"error,omitempty"`
}

// PartialDoc is the wire envelope for one slice's partial result: the
// lease identity (job, revision, slice geometry) repeated alongside the
// opaque partial bytes, so the coordinator can reject a mismatched
// delivery before decoding a single gob byte. Data is the
// locman.EncodePartial serialization (base64 inside JSON).
type PartialDoc struct {
	Schema  int    `json:"schema"`
	Job     string `json:"job"`
	Node    string `json:"node"`
	SpecRev string `json:"spec_rev"`
	Shards  int    `json:"shards"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Data    []byte `json:"data"`
}

// Decode unwraps and fully validates the envelope's payload: wire
// schema, the self-checking partial format, the partial's structural
// invariants, and envelope↔payload agreement on the slice geometry. The
// returned partial is safe to hand to locman.MergeNetworkPartials.
func (d *PartialDoc) Decode() (*locman.Partial, error) {
	if d.Schema != WireSchema {
		return nil, fmt.Errorf("cluster: partial wire schema %d, want %d", d.Schema, WireSchema)
	}
	p, err := locman.DecodePartial(d.Data)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Shards != d.Shards || p.Lo != d.Lo || p.Hi != d.Hi {
		return nil, fmt.Errorf("cluster: partial payload covers [%d,%d) of %d shards, envelope says [%d,%d) of %d",
			p.Lo, p.Hi, p.Shards, d.Lo, d.Hi, d.Shards)
	}
	return p, nil
}

// MismatchError reports a partial result that does not belong to the
// lease it was delivered for — wrong job, spec revision, slice geometry,
// slot count or seed. It is the wire-layer face of the merge layer's
// slot-mismatch rejection: the coordinator refuses the partial before
// locman.MergeNetworkPartials ever sees it, fails the lease, and
// re-dispatches the slice. Match it with errors.As.
type MismatchError struct {
	Node  string // delivering node id
	Job   string // lease's job id
	Field string // "job", "spec_rev", "shards", "slice", "slots" or "seed"
	Got   string
	Want  string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("cluster: node %s delivered a partial for the wrong %s on job %s: got %s, want %s",
		e.Node, e.Field, e.Job, e.Got, e.Want)
}
