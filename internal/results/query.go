package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// QuerySchema versions the query request and response documents served
// at POST /query and validated by schemacheck -kind queryresult; it
// increments on any breaking change.
const QuerySchema = 1

// Request is the JSON query descriptor: optional row filters (ANDed),
// an optional group-by column list, and the aggregates to compute per
// group. With no group_by, all matched rows form one group (with an
// empty key); with no matched rows there are no groups at all.
type Request struct {
	// Schema must be QuerySchema or 0 (meaning the current schema).
	Schema int `json:"schema,omitempty"`
	// Filter rows must satisfy every predicate to be aggregated.
	Filter []Filter `json:"filter,omitempty"`
	// GroupBy partitions the matched rows by these columns' values;
	// duplicates are rejected.
	GroupBy []string `json:"group_by,omitempty"`
	// Aggregates are computed per group, in order; at least one is
	// required and duplicates are rejected.
	Aggregates []Aggregate `json:"aggregates"`
}

// Filter is one row predicate: column OP value.
//
// String columns compare lexicographically and require a string value;
// numeric columns compare numerically and require a number. Comparisons
// against a NaN metric follow IEEE semantics: eq/lt/le/gt/ge are false,
// ne is true.
type Filter struct {
	Column string `json:"column"`
	// Op is one of eq, ne, lt, le, gt, ge.
	Op string `json:"op"`
	// Value is a JSON string (string columns) or number (numeric ones).
	Value any `json:"value"`
}

// filterOps lists the valid filter operators.
var filterOps = []string{"eq", "ne", "lt", "le", "gt", "ge"}

// Aggregate is one per-group computation. count takes no column and
// counts the group's rows; every other op takes a numeric column and
// skips NaN values (an all-NaN or non-finite result reports null).
type Aggregate struct {
	// Op is one of count, mean, min, max, p50, p95, p99.
	Op string `json:"op"`
	// Column is the numeric column to aggregate; empty for count.
	Column string `json:"column,omitempty"`
}

// aggregateOps maps each valid aggregate op to its percentile (0 for
// the non-percentile ops).
var aggregateOps = map[string]float64{
	"count": 0, "mean": 0, "min": 0, "max": 0,
	"p50": 0.50, "p95": 0.95, "p99": 0.99,
}

// aggregateOpNames lists the valid aggregate ops in documentation
// order, for error messages.
var aggregateOpNames = []string{"count", "mean", "min", "max", "p50", "p95", "p99"}

// Label is the aggregate's canonical response label: "count" or
// "op(column)".
func (a Aggregate) Label() string {
	if a.Op == "count" {
		return "count"
	}
	return a.Op + "(" + a.Column + ")"
}

// Response is the query result document. Groups are sorted by their key
// values (column by column: strings lexicographically, numbers
// numerically), key and value slices are positional — Key[i] is the
// GroupBy[i] value, Values[j] the Aggregates[j] result — and every
// float is encoded shortest-round-trip, so the same table content
// always yields byte-identical response documents.
type Response struct {
	// Schema is always QuerySchema.
	Schema int `json:"schema"`
	// GroupBy echoes the request's grouping columns and Aggregates the
	// canonical labels of its aggregates, in request order.
	GroupBy    []string `json:"group_by"`
	Aggregates []string `json:"aggregates"`
	// RowsScanned is the table size at query time and RowsMatched how
	// many rows passed the filters (the groups partition exactly these).
	RowsScanned int `json:"rows_scanned"`
	RowsMatched int `json:"rows_matched"`
	// Groups holds one entry per distinct key among the matched rows.
	Groups []Group `json:"groups"`
}

// Group is one aggregated result row. Key values are typed (string or
// number); Values are numbers — integers for count, floats otherwise —
// or null for an aggregate with no finite result.
type Group struct {
	Key    []any `json:"key"`
	Values []any `json:"values"`
}

// DecodeRequest strictly decodes and validates a query request:
// unknown fields, trailing data, unknown columns/ops, type-mismatched
// filter values and duplicate group-by columns or aggregates are all
// errors, never panics (FuzzQueryDecode holds it to that).
func DecodeRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("results: invalid query request: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("results: invalid query request: trailing data after the document")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate rejects unusable requests with errors phrased for API
// clients; valid name sets are enumerated the way EngineByName and
// SchemeByName do.
func (r *Request) Validate() error {
	if r.Schema != 0 && r.Schema != QuerySchema {
		return fmt.Errorf("results: query schema %d, want %d", r.Schema, QuerySchema)
	}
	for _, f := range r.Filter {
		i, err := columnByName(f.Column)
		if err != nil {
			return err
		}
		if !validOp(f.Op) {
			return fmt.Errorf("results: unknown filter op %q (valid ops: %s)",
				f.Op, strings.Join(filterOps, ", "))
		}
		switch v := f.Value.(type) {
		case string:
			if columns[i].kind != KindString {
				return fmt.Errorf("results: filter on %s column %q needs a number, got string %q",
					columns[i].kind, f.Column, v)
			}
		case float64:
			if columns[i].kind == KindString {
				return fmt.Errorf("results: filter on string column %q needs a string, got number %v",
					f.Column, v)
			}
		default:
			return fmt.Errorf("results: filter on column %q has unsupported value %v (want a string or number)",
				f.Column, f.Value)
		}
	}
	seen := make(map[string]bool, len(r.GroupBy))
	for _, name := range r.GroupBy {
		i, err := columnByName(name)
		if err != nil {
			return err
		}
		// Only dimension columns group: dimensions are finite by
		// construction (Ingest enforces it), so group keys always have a
		// JSON encoding and a total order. Metric columns may hold NaN,
		// which has neither.
		if !columns[i].dim {
			return fmt.Errorf("results: group_by column %q is a metric; group by dimension columns (valid dimensions: %s)",
				name, strings.Join(DimensionNames(), ", "))
		}
		if seen[name] {
			return fmt.Errorf("results: duplicate group_by column %q", name)
		}
		seen[name] = true
	}
	if len(r.Aggregates) == 0 {
		return fmt.Errorf("results: at least one aggregate is required (valid ops: %s)",
			strings.Join(aggregateOpNames, ", "))
	}
	seenAgg := make(map[string]bool, len(r.Aggregates))
	for _, a := range r.Aggregates {
		if _, ok := aggregateOps[a.Op]; !ok {
			return fmt.Errorf("results: unknown aggregate op %q (valid ops: %s)",
				a.Op, strings.Join(aggregateOpNames, ", "))
		}
		if a.Op == "count" {
			if a.Column != "" {
				return fmt.Errorf("results: aggregate count takes no column (got %q)", a.Column)
			}
		} else {
			i, err := columnByName(a.Column)
			if err != nil {
				return err
			}
			if columns[i].kind == KindString {
				return fmt.Errorf("results: aggregate %s needs a numeric column; %q is a string column",
					a.Op, a.Column)
			}
		}
		if seenAgg[a.Label()] {
			return fmt.Errorf("results: duplicate aggregate %s", a.Label())
		}
		seenAgg[a.Label()] = true
	}
	return nil
}

func validOp(op string) bool {
	for _, o := range filterOps {
		if op == o {
			return true
		}
	}
	return false
}

// Query evaluates a request against the table. The walk is columnar:
// filters and group keys read the referenced columns directly, rows are
// visited in the canonical job-id order, and every aggregate folds its
// group's values in that order — which, with the sorted group output,
// makes the response deterministic for a given table content however
// the table was filled.
func (s *Store) Query(req *Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	match := make([]int, 0, len(s.order))
	for _, row := range s.order {
		ok := true
		for _, f := range req.Filter {
			if !s.rowMatches(row, f) {
				ok = false
				break
			}
		}
		if ok {
			match = append(match, row)
		}
	}

	type bucket struct {
		key  []any
		rows []int
	}
	groups := make(map[string]*bucket)
	var keys []string
	for _, row := range match {
		key := make([]any, len(req.GroupBy))
		var enc strings.Builder
		for i, name := range req.GroupBy {
			ci := colIndex[name]
			switch columns[ci].kind {
			case KindString:
				v := s.cols[ci].strs[row]
				key[i] = v
				fmt.Fprintf(&enc, "s%d:%s\x00", len(v), v)
			case KindInt:
				v := s.cols[ci].ints[row]
				key[i] = v
				fmt.Fprintf(&enc, "i%d\x00", v)
			case KindFloat:
				v := s.cols[ci].floats[row]
				key[i] = v
				fmt.Fprintf(&enc, "f%x\x00", math.Float64bits(v))
			}
		}
		k := enc.String()
		b := groups[k]
		if b == nil {
			b = &bucket{key: key}
			groups[k] = b
			keys = append(keys, k)
		}
		b.rows = append(b.rows, row)
	}
	sort.Slice(keys, func(i, j int) bool {
		return lessKey(groups[keys[i]].key, groups[keys[j]].key)
	})

	resp := &Response{
		Schema:      QuerySchema,
		GroupBy:     append([]string{}, req.GroupBy...),
		Aggregates:  make([]string, 0, len(req.Aggregates)),
		RowsScanned: len(s.order),
		RowsMatched: len(match),
		Groups:      make([]Group, 0, len(keys)),
	}
	for _, a := range req.Aggregates {
		resp.Aggregates = append(resp.Aggregates, a.Label())
	}
	for _, k := range keys {
		b := groups[k]
		g := Group{Key: b.key, Values: make([]any, 0, len(req.Aggregates))}
		if g.Key == nil {
			g.Key = []any{}
		}
		for _, a := range req.Aggregates {
			g.Values = append(g.Values, s.aggregate(a, b.rows))
		}
		resp.Groups = append(resp.Groups, g)
	}
	return resp, nil
}

// rowMatches evaluates one filter against one row.
func (s *Store) rowMatches(row int, f Filter) bool {
	ci := colIndex[f.Column]
	if columns[ci].kind == KindString {
		cmp := strings.Compare(s.cols[ci].strs[row], f.Value.(string))
		switch f.Op {
		case "eq":
			return cmp == 0
		case "ne":
			return cmp != 0
		case "lt":
			return cmp < 0
		case "le":
			return cmp <= 0
		case "gt":
			return cmp > 0
		default: // ge
			return cmp >= 0
		}
	}
	var v float64
	if columns[ci].kind == KindInt {
		v = float64(s.cols[ci].ints[row])
	} else {
		v = s.cols[ci].floats[row]
	}
	w := f.Value.(float64)
	switch f.Op {
	case "eq":
		return v == w
	case "ne":
		return v != w
	case "lt":
		return v < w
	case "le":
		return v <= w
	case "gt":
		return v > w
	default: // ge
		return v >= w
	}
}

// aggregate computes one aggregate over a group's rows (in canonical
// order). count reports the row count as an integer; the numeric ops
// fold the column's non-NaN values — mean as a plain left-to-right sum,
// percentiles by nearest rank over the ascending sort (index
// ceil(p·n)−1), both exactly the brute-force recomputation the property
// suite performs. An aggregate with no finite result reports nil, which
// encodes as JSON null (NaN and infinity have no JSON encoding).
func (s *Store) aggregate(a Aggregate, rows []int) any {
	if a.Op == "count" {
		return int64(len(rows))
	}
	ci := colIndex[a.Column]
	vals := make([]float64, 0, len(rows))
	for _, row := range rows {
		var v float64
		if columns[ci].kind == KindInt {
			v = float64(s.cols[ci].ints[row])
		} else {
			v = s.cols[ci].floats[row]
		}
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	var out float64
	switch a.Op {
	case "mean":
		var sum float64
		for _, v := range vals {
			sum += v
		}
		out = sum / float64(len(vals))
	case "min":
		out = vals[0]
		for _, v := range vals[1:] {
			if v < out {
				out = v
			}
		}
	case "max":
		out = vals[0]
		for _, v := range vals[1:] {
			if v > out {
				out = v
			}
		}
	default: // p50, p95, p99
		sort.Float64s(vals)
		idx := int(math.Ceil(aggregateOps[a.Op]*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		out = vals[idx]
	}
	if math.IsNaN(out) || math.IsInf(out, 0) {
		return nil
	}
	return out
}

// lessKey orders group keys column by column: strings
// lexicographically, numbers numerically. Kinds are positionally
// aligned by construction (same group-by columns). Floats compare in
// IEEE-754 total order, which matches numeric order for the finite
// values dimensions are limited to but also breaks the -0/+0 tie
// deterministically (they are distinct group keys).
func lessKey(a, b []any) bool {
	for i := range a {
		switch av := a[i].(type) {
		case string:
			bv := b[i].(string)
			if av != bv {
				return av < bv
			}
		case int64:
			bv := b[i].(int64)
			if av != bv {
				return av < bv
			}
		case float64:
			ao, bo := floatOrd(av), floatOrd(b[i].(float64))
			if ao != bo {
				return ao < bo
			}
		}
	}
	return false
}

// floatOrd maps a float64 onto an integer whose natural order is the
// IEEE-754 total order.
func floatOrd(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}
