// Package results is the sweep-analytics layer of the job service: an
// in-memory columnar table (Store) that flattens every completed
// simulation job — the configuration knobs it ran with and the final
// report's metrics — into typed columns, plus a small deterministic
// query API (filter, group-by, aggregate) over it.
//
// The paper's whole product is a cost surface: C_T(d, m) swept over
// thresholds and mobility parameters, minimized at d*. A sweep of jobs
// through pcnserve produces exactly that surface, but as opaque per-job
// JSON blobs; this package turns the blobs back into a table so
// questions like "p95 paging delay vs threshold across last night's
// sweep" are one query instead of five hundred file reads.
//
// Determinism contract: the table is canonically ordered by job id
// regardless of ingestion order (jobs finish and backfill in whatever
// order they please), every aggregate folds values in that canonical
// order, and groups sort by their key values — so a query's JSON
// response is byte-identical for the same table content, whether the
// store was filled live, backfilled from a journal replay, or loaded
// from its persistence file. The pre/post-restart CI leg holds the
// service to exactly that.
package results

import (
	"fmt"
	"strings"
)

// Kind is a column's value type.
type Kind int

const (
	// KindString columns hold dimension labels (scheme, scenario, ...).
	KindString Kind = iota
	// KindInt columns hold exact integer dimensions and counters.
	KindInt
	// KindFloat columns hold real-valued dimensions and metrics; metric
	// columns may contain NaN (meaning "not measured"), which every
	// aggregate skips.
	KindFloat
)

// String names the kind as it appears in the persistence file.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func kindByName(name string) (Kind, error) {
	switch name {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	default:
		return 0, fmt.Errorf("results: unknown column kind %q (valid kinds: string, int, float)", name)
	}
}

// Row is one completed job flattened into the table's column values:
// the resolved configuration knobs (what the job ran with, scenario
// defaults applied) and the report's final metrics. jobs.ResultRow
// builds one from a job Spec and its locman.Report.
//
// Dimension fields (Job through Seed) must be finite; Ingest rejects a
// row with a NaN or infinite dimension, because dimensions become group
// keys and filters. Metric fields may be NaN — a metric the run did not
// measure — and every aggregate skips NaN values (KindFloat).
type Row struct {
	// Job is the service-assigned job id; it is the table's primary key
	// and its canonical sort order.
	Job string

	// Resolved configuration knobs.
	Scenario    string  // registered scenario name, "" for an explicit model
	Scheme      string  // update scheme name ("distance", "timer", "movement")
	SchemeParam int64   // timer period / movement count in slots; 0 for distance
	Engine      string  // simulation engine name ("fast", "des", "cols")
	Model       string  // mobility model ("1d", "2d")
	Partition   string  // paging partitioner name
	Dynamic     int64   // 1 when the dynamic per-user mechanism was on
	D           int64   // static update threshold; -1 = network-optimized
	Q           float64 // per-slot movement probability (fleet average view)
	C           float64 // per-slot call-arrival probability
	U           float64 // location-update unit cost
	V           float64 // per-cell polling unit cost
	M           int64   // paging delay bound in polling cycles; 0 = unbounded
	Terminals   int64   // population size
	Slots       int64   // run length in slots
	Shards      int64   // resolved shard count the run used
	Seed        int64   // simulation seed

	// Report counters.
	Updates         int64
	LostUpdates     int64
	Retransmissions int64
	Acks            int64
	OutageDeferred  int64
	Calls           int64
	PolledCells     int64
	DroppedCalls    int64
	RePolls         int64
	FallbackCalls   int64
	LostPolls       int64
	LostReplies     int64
	NotFound        int64
	UpdateBytes     int64
	PollBytes       int64
	ReplyBytes      int64
	AckBytes        int64
	Events          int64

	// Cost averages in the paper's U/V units (per slot per terminal).
	UpdateCost float64
	PagingCost float64
	TotalCost  float64

	// Paging-delay distribution: mean/max from the exact accumulator,
	// percentiles from the fixed-bucket histogram (bit-for-bit the
	// report's histogram-derived values). NaN when the report carried no
	// histogram.
	DelayMean float64
	DelayMax  float64
	DelayP50  float64
	DelayP95  float64
	DelayP99  float64

	// Recovery-latency distribution, same provenance as the delay one.
	RecoveryMean float64
	RecoveryMax  float64
	RecoveryP50  float64
	RecoveryP95  float64
	RecoveryP99  float64
}

// columnDef binds a column name to its kind and its Row accessor.
// Exactly one accessor is set, matching the kind.
type columnDef struct {
	name string
	kind Kind
	dim  bool // dimension (must be finite) vs metric (may be NaN)
	str  func(*Row) string
	i64  func(*Row) int64
	f64  func(*Row) float64
}

// columns is the table schema, in presentation order. The order is part
// of the persistence format (TableSchema) but not of the query API,
// which addresses columns by name only.
var columns = []columnDef{
	{name: "job", kind: KindString, dim: true, str: func(r *Row) string { return r.Job }},
	{name: "scenario", kind: KindString, dim: true, str: func(r *Row) string { return r.Scenario }},
	{name: "scheme", kind: KindString, dim: true, str: func(r *Row) string { return r.Scheme }},
	{name: "scheme_param", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.SchemeParam }},
	{name: "engine", kind: KindString, dim: true, str: func(r *Row) string { return r.Engine }},
	{name: "model", kind: KindString, dim: true, str: func(r *Row) string { return r.Model }},
	{name: "partition", kind: KindString, dim: true, str: func(r *Row) string { return r.Partition }},
	{name: "dynamic", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.Dynamic }},
	{name: "d", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.D }},
	{name: "q", kind: KindFloat, dim: true, f64: func(r *Row) float64 { return r.Q }},
	{name: "c", kind: KindFloat, dim: true, f64: func(r *Row) float64 { return r.C }},
	{name: "u", kind: KindFloat, dim: true, f64: func(r *Row) float64 { return r.U }},
	{name: "v", kind: KindFloat, dim: true, f64: func(r *Row) float64 { return r.V }},
	{name: "m", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.M }},
	{name: "terminals", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.Terminals }},
	{name: "slots", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.Slots }},
	{name: "shards", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.Shards }},
	{name: "seed", kind: KindInt, dim: true, i64: func(r *Row) int64 { return r.Seed }},

	{name: "updates", kind: KindInt, i64: func(r *Row) int64 { return r.Updates }},
	{name: "lost_updates", kind: KindInt, i64: func(r *Row) int64 { return r.LostUpdates }},
	{name: "retransmissions", kind: KindInt, i64: func(r *Row) int64 { return r.Retransmissions }},
	{name: "acks", kind: KindInt, i64: func(r *Row) int64 { return r.Acks }},
	{name: "outage_deferred", kind: KindInt, i64: func(r *Row) int64 { return r.OutageDeferred }},
	{name: "calls", kind: KindInt, i64: func(r *Row) int64 { return r.Calls }},
	{name: "polled_cells", kind: KindInt, i64: func(r *Row) int64 { return r.PolledCells }},
	{name: "dropped_calls", kind: KindInt, i64: func(r *Row) int64 { return r.DroppedCalls }},
	{name: "re_polls", kind: KindInt, i64: func(r *Row) int64 { return r.RePolls }},
	{name: "fallback_calls", kind: KindInt, i64: func(r *Row) int64 { return r.FallbackCalls }},
	{name: "lost_polls", kind: KindInt, i64: func(r *Row) int64 { return r.LostPolls }},
	{name: "lost_replies", kind: KindInt, i64: func(r *Row) int64 { return r.LostReplies }},
	{name: "not_found", kind: KindInt, i64: func(r *Row) int64 { return r.NotFound }},
	{name: "update_bytes", kind: KindInt, i64: func(r *Row) int64 { return r.UpdateBytes }},
	{name: "poll_bytes", kind: KindInt, i64: func(r *Row) int64 { return r.PollBytes }},
	{name: "reply_bytes", kind: KindInt, i64: func(r *Row) int64 { return r.ReplyBytes }},
	{name: "ack_bytes", kind: KindInt, i64: func(r *Row) int64 { return r.AckBytes }},
	{name: "events", kind: KindInt, i64: func(r *Row) int64 { return r.Events }},

	{name: "update_cost", kind: KindFloat, f64: func(r *Row) float64 { return r.UpdateCost }},
	{name: "paging_cost", kind: KindFloat, f64: func(r *Row) float64 { return r.PagingCost }},
	{name: "total_cost", kind: KindFloat, f64: func(r *Row) float64 { return r.TotalCost }},

	{name: "delay_mean", kind: KindFloat, f64: func(r *Row) float64 { return r.DelayMean }},
	{name: "delay_max", kind: KindFloat, f64: func(r *Row) float64 { return r.DelayMax }},
	{name: "delay_p50", kind: KindFloat, f64: func(r *Row) float64 { return r.DelayP50 }},
	{name: "delay_p95", kind: KindFloat, f64: func(r *Row) float64 { return r.DelayP95 }},
	{name: "delay_p99", kind: KindFloat, f64: func(r *Row) float64 { return r.DelayP99 }},

	{name: "recovery_mean", kind: KindFloat, f64: func(r *Row) float64 { return r.RecoveryMean }},
	{name: "recovery_max", kind: KindFloat, f64: func(r *Row) float64 { return r.RecoveryMax }},
	{name: "recovery_p50", kind: KindFloat, f64: func(r *Row) float64 { return r.RecoveryP50 }},
	{name: "recovery_p95", kind: KindFloat, f64: func(r *Row) float64 { return r.RecoveryP95 }},
	{name: "recovery_p99", kind: KindFloat, f64: func(r *Row) float64 { return r.RecoveryP99 }},
}

// colIndex resolves a column name to its schema position.
var colIndex = func() map[string]int {
	m := make(map[string]int, len(columns))
	for i, c := range columns {
		if _, dup := m[c.name]; dup {
			panic("results: duplicate column name " + c.name)
		}
		m[c.name] = i
	}
	return m
}()

// ColumnNames lists every queryable column in schema order, for CLI
// help strings and error messages.
func ColumnNames() []string {
	names := make([]string, len(columns))
	for i, c := range columns {
		names[i] = c.name
	}
	return names
}

// DimensionNames lists the groupable (dimension) columns in schema
// order; only these may appear in a query's group_by.
func DimensionNames() []string {
	var names []string
	for _, c := range columns {
		if c.dim {
			names = append(names, c.name)
		}
	}
	return names
}

// ColumnKind reports a column's kind; the error for an unknown name
// enumerates every valid one, following the EngineByName convention.
func ColumnKind(name string) (Kind, error) {
	i, err := columnByName(name)
	if err != nil {
		return 0, err
	}
	return columns[i].kind, nil
}

func columnByName(name string) (int, error) {
	if i, ok := colIndex[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("results: unknown column %q (valid columns: %s)",
		name, strings.Join(ColumnNames(), ", "))
}
