package results

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIngestRejections(t *testing.T) {
	s := NewStore()
	base := fourRows()[0]

	if err := s.Ingest(Row{}); err == nil || !strings.Contains(err.Error(), "no job id") {
		t.Fatalf("empty job id: %v", err)
	}

	if err := s.Ingest(base); err != nil {
		t.Fatal(err)
	}
	err := s.Ingest(base)
	if !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate ingest: %v", err)
	}

	nan := base
	nan.Job = "j000099"
	nan.Q = math.NaN()
	if err := s.Ingest(nan); err == nil || !strings.Contains(err.Error(), "must be finite") {
		t.Fatalf("NaN dimension: %v", err)
	}
	inf := base
	inf.Job = "j000098"
	inf.U = math.Inf(1)
	if err := s.Ingest(inf); err == nil || !strings.Contains(err.Error(), "must be finite") {
		t.Fatalf("Inf dimension: %v", err)
	}
	// The rejected rows must not have left partial column state behind.
	if s.Len() != 1 || s.Has("j000099") || s.Has("j000098") {
		t.Fatalf("rejected rows leaked into the table: len %d", s.Len())
	}
}

func TestOpenMissingFileIsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "results.table.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("missing file loaded %d rows", s.Len())
	}
}

// TestPersistRoundTrip proves the table file carries every value —
// including NaN metrics — bit for bit, and that a persistence-backed
// store rewrites the file on every ingest.
func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.table.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows := fourRows()
	for _, r := range rows {
		if err := s.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("ingest did not persist the table: %v", err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(rows) {
		t.Fatalf("reloaded %d rows, want %d", re.Len(), len(rows))
	}
	req, err := DecodeRequest([]byte(`{"group_by":["scenario","d"],"aggregates":[{"op":"count"},{"op":"mean","column":"total_cost"},{"op":"p95","column":"delay_p95"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("reloaded store answers differently:\n%s\nvs\n%s", wj, gj)
	}

	// The file spells NaN metrics out as strings (JSON numbers cannot).
	if !strings.Contains(string(mustRead(t, path)), `"NaN"`) {
		t.Fatal("persisted table does not carry the NaN metric")
	}
}

// TestLoadRejections holds the loader to strict validation: a damaged
// table file must fail loudly, never silently drop or mangle rows.
func TestLoadRejections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fourRows() {
		if err := s.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	good := string(mustRead(t, path))

	cases := []struct {
		name    string
		mutate  func(string) string
		wantSub string
	}{
		{"wrong schema", func(d string) string {
			return strings.Replace(d, `"schema": 1`, `"schema": 7`, 1)
		}, "table schema 7, want 1"},
		{"renamed column", func(d string) string {
			return strings.Replace(d, `"name": "scenario"`, `"name": "scenery"`, 1)
		}, `is "scenery", want "scenario"`},
		{"wrong kind", func(d string) string {
			return strings.Replace(d, `"name": "d",
   "kind": "int"`, `"name": "d",
   "kind": "float"`, 1)
		}, `column "d" is kind float`},
		{"unknown kind", func(d string) string {
			return strings.Replace(d, `"kind": "string"`, `"kind": "varchar"`, 1)
		}, "unknown column kind"},
		{"unparseable float", func(d string) string {
			return strings.Replace(d, `"0.05"`, `"zero"`, 1)
		}, `value "zero"`},
		{"non-finite dimension", func(d string) string {
			return strings.Replace(d, `"0.05"`, `"NaN"`, 1)
		}, "must be finite"},
		{"duplicate job id", func(d string) string {
			return strings.Replace(d, `"j000002"`, `"j000001"`, 1)
		}, "duplicate job"},
		{"empty job id", func(d string) string {
			return strings.Replace(d, `"j000001"`, `""`, 1)
		}, "has no job id"},
		{"column length mismatch", func(d string) string {
			return strings.Replace(d, `"rows": 4`, `"rows": 5`, 1)
		}, "values, want 5"},
		{"not json", func(string) string { return "not json {" }, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(good)
			if bad == good {
				t.Fatal("mutation did not change the document")
			}
			badPath := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(badPath)
			if err == nil {
				t.Fatal("damaged table loaded without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestJobsOrder(t *testing.T) {
	s := NewStore()
	rows := fourRows()
	// Ingest backwards; Jobs must still list ascending.
	for i := len(rows) - 1; i >= 0; i-- {
		if err := s.Ingest(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	jobs := s.Jobs()
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1] >= jobs[i] {
			t.Fatalf("jobs not in ascending order: %v", jobs)
		}
	}
	if !s.Has("j000003") || s.Has("j999999") {
		t.Fatal("Has is wrong")
	}
}
