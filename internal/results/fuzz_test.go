package results

import (
	"strings"
	"testing"
)

// FuzzQueryDecode holds the /query request decoder to its contract:
// arbitrary bytes either decode into a validated request — which must
// then evaluate cleanly against a table — or return an error; never a
// panic. The seed corpus covers the malformed-filter, huge-group-by and
// duplicate-aggregate shapes, plus valid documents so the fuzzer
// mutates from both sides of the boundary.
func FuzzQueryDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`null`,
		`"aggregates"`,
		`[{"op":"count"}]`,
		`{"aggregates":[{"op":"count"}]}`,
		`{"schema":1,"filter":[{"column":"d","op":"le","value":3}],"group_by":["scenario","d"],"aggregates":[{"op":"count"},{"op":"mean","column":"total_cost"}]}`,
		`{"filter":[{"column":"nope","op":"eq","value":"x"}],"aggregates":[{"op":"count"}]}`,
		`{"filter":[{"column":"d","op":"eq","value":{"deep":[1,2]}}],"aggregates":[{"op":"count"}]}`,
		`{"filter":[{"column":"scenario","op":"like","value":"%a%"}],"aggregates":[{"op":"count"}]}`,
		`{"group_by":["d","d"],"aggregates":[{"op":"count"}]}`,
		`{"group_by":["total_cost"],"aggregates":[{"op":"count"}]}`,
		`{"group_by":["` + strings.Repeat(`x","`, 500) + `y"],"aggregates":[{"op":"count"}]}`,
		`{"aggregates":[{"op":"p50","column":"delay_p50"},{"op":"p50","column":"delay_p50"}]}`,
		`{"aggregates":[{"op":"count","column":"d"}]}`,
		`{"aggregates":[{"op":"mean","column":"scenario"}]}`,
		`{"schema":-1,"aggregates":[{"op":"count"}]}`,
		`{"aggregates":[{"op":"count"}]} trailing`,
		`{"unknown_field":true,"aggregates":[{"op":"count"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// Two small tables to evaluate decoded requests against: empty, and
	// a few rows with NaN metrics.
	filled := NewStore()
	for _, r := range fourRows() {
		if err := filled.Ingest(r); err != nil {
			f.Fatal(err)
		}
	}
	empty := NewStore()

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// A request that decoded and validated must evaluate without
		// error on any table.
		for _, s := range []*Store{empty, filled} {
			if _, qerr := s.Query(req); qerr != nil {
				t.Fatalf("validated request failed to evaluate: %v\nrequest: %s", qerr, data)
			}
		}
	})
}
