package results

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// The brute-force equivalence property: for random synthetic tables and
// random queries, every aggregate of every group the store computes
// must equal — bit for bit, compared through the JSON encoding — an
// independent recomputation that sorts rows itself, filters with naive
// loops, groups with naive key comparison, and aggregates with plain
// sums and sort+index percentiles. Rows are ingested in shuffled order,
// so the property also pins the canonical-order guarantee: ingestion
// order must never show through.

// genRow synthesizes one row: dimensions from small vocabularies (so
// groups actually collide) and metrics from wide random ranges with NaN
// sprinkled into the float metric columns.
func genRow(rnd *rand.Rand, job string) Row {
	scenarios := []string{"", "baseline", "rush-hour-hotspot", "highway-commute"}
	schemes := []string{"distance", "timer", "movement"}
	engines := []string{"fast", "des", "cols"}
	models := []string{"1d", "2d"}
	partitions := []string{"sdf", "blanket"}
	qs := []float64{0.01, 0.05, 0.2}
	cs := []float64{0.005, 0.01}

	metric := func() float64 {
		switch rnd.Intn(6) {
		case 0:
			return math.NaN()
		case 1:
			return 0
		case 2:
			return -rnd.ExpFloat64() * 10
		default:
			return rnd.ExpFloat64() * 100
		}
	}
	counter := func() int64 { return rnd.Int63n(1_000_000) }

	r := Row{
		Job:         job,
		Scenario:    scenarios[rnd.Intn(len(scenarios))],
		Scheme:      schemes[rnd.Intn(len(schemes))],
		SchemeParam: int64(rnd.Intn(3) * 6),
		Engine:      engines[rnd.Intn(len(engines))],
		Model:       models[rnd.Intn(len(models))],
		Partition:   partitions[rnd.Intn(len(partitions))],
		Dynamic:     int64(rnd.Intn(2)),
		D:           int64(rnd.Intn(5)) - 1,
		Q:           qs[rnd.Intn(len(qs))],
		C:           cs[rnd.Intn(len(cs))],
		U:           100,
		V:           10,
		M:           int64(rnd.Intn(4)),
		Terminals:   int64(10 + rnd.Intn(90)),
		Slots:       int64(1000 * (1 + rnd.Intn(5))),
		Shards:      int64(1 + rnd.Intn(8)),
		Seed:        rnd.Int63n(100),
	}
	// Metric columns: every int counter random, every float metric from
	// the NaN-sprinkling generator.
	for _, c := range columns {
		if c.dim {
			continue
		}
		switch c.kind {
		case KindInt:
			setInt(&r, c.name, counter())
		case KindFloat:
			setFloat(&r, c.name, metric())
		}
	}
	return r
}

// setInt / setFloat poke a metric column's field through the schema's
// accessor table, so the generator never drifts from the column list.
func setInt(r *Row, name string, v int64) {
	switch name {
	case "updates":
		r.Updates = v
	case "lost_updates":
		r.LostUpdates = v
	case "retransmissions":
		r.Retransmissions = v
	case "acks":
		r.Acks = v
	case "outage_deferred":
		r.OutageDeferred = v
	case "calls":
		r.Calls = v
	case "polled_cells":
		r.PolledCells = v
	case "dropped_calls":
		r.DroppedCalls = v
	case "re_polls":
		r.RePolls = v
	case "fallback_calls":
		r.FallbackCalls = v
	case "lost_polls":
		r.LostPolls = v
	case "lost_replies":
		r.LostReplies = v
	case "not_found":
		r.NotFound = v
	case "update_bytes":
		r.UpdateBytes = v
	case "poll_bytes":
		r.PollBytes = v
	case "reply_bytes":
		r.ReplyBytes = v
	case "ack_bytes":
		r.AckBytes = v
	case "events":
		r.Events = v
	default:
		panic("unknown int metric column " + name)
	}
}

func setFloat(r *Row, name string, v float64) {
	switch name {
	case "update_cost":
		r.UpdateCost = v
	case "paging_cost":
		r.PagingCost = v
	case "total_cost":
		r.TotalCost = v
	case "delay_mean":
		r.DelayMean = v
	case "delay_max":
		r.DelayMax = v
	case "delay_p50":
		r.DelayP50 = v
	case "delay_p95":
		r.DelayP95 = v
	case "delay_p99":
		r.DelayP99 = v
	case "recovery_mean":
		r.RecoveryMean = v
	case "recovery_max":
		r.RecoveryMax = v
	case "recovery_p50":
		r.RecoveryP50 = v
	case "recovery_p95":
		r.RecoveryP95 = v
	case "recovery_p99":
		r.RecoveryP99 = v
	default:
		panic("unknown float metric column " + name)
	}
}

// rowValue reads one row's value for a column as the store would.
func rowValue(r *Row, ci int) (s string, f float64) {
	switch columns[ci].kind {
	case KindString:
		return columns[ci].str(r), 0
	case KindInt:
		return "", float64(columns[ci].i64(r))
	default:
		return "", columns[ci].f64(r)
	}
}

// genQuery synthesizes a random valid query over the schema.
func genQuery(rnd *rand.Rand) *Request {
	names := ColumnNames()
	var numeric []string
	for _, c := range columns {
		if c.kind != KindString {
			numeric = append(numeric, c.name)
		}
	}
	stringVocab := []string{"", "baseline", "rush-hour-hotspot", "distance", "timer", "fast", "cols", "1d", "zzz"}
	ops := []string{"eq", "ne", "lt", "le", "gt", "ge"}

	req := &Request{}
	for i, n := 0, rnd.Intn(3); i < n; i++ {
		col := names[rnd.Intn(len(names))]
		f := Filter{Column: col, Op: ops[rnd.Intn(len(ops))]}
		if k, _ := ColumnKind(col); k == KindString {
			f.Value = stringVocab[rnd.Intn(len(stringVocab))]
		} else {
			// Mix thresholds likely to split the data with exact small
			// integers that can hit eq on int columns.
			if rnd.Intn(2) == 0 {
				f.Value = float64(rnd.Intn(6) - 1)
			} else {
				f.Value = rnd.ExpFloat64() * 50
			}
		}
		req.Filter = append(req.Filter, f)
	}
	dims := DimensionNames()
	seen := map[string]bool{}
	for i, n := 0, rnd.Intn(4); i < n; i++ {
		col := dims[rnd.Intn(len(dims))]
		if !seen[col] {
			seen[col] = true
			req.GroupBy = append(req.GroupBy, col)
		}
	}
	aggOps := []string{"mean", "min", "max", "p50", "p95", "p99"}
	seenAgg := map[string]bool{}
	for i, n := 0, 1+rnd.Intn(4); i < n; i++ {
		var a Aggregate
		if rnd.Intn(4) == 0 {
			a = Aggregate{Op: "count"}
		} else {
			a = Aggregate{Op: aggOps[rnd.Intn(len(aggOps))], Column: numeric[rnd.Intn(len(numeric))]}
		}
		if !seenAgg[a.Label()] {
			seenAgg[a.Label()] = true
			req.Aggregates = append(req.Aggregates, a)
		}
	}
	return req
}

// bruteQuery recomputes a query from first principles over the raw
// rows: sort by job id, naive filter loops, naive grouping, plain
// left-to-right sums, sort+index percentiles. It shares no evaluation
// code with the store.
func bruteQuery(rows []Row, req *Request) *Response {
	sorted := append([]Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Job < sorted[j].Job })

	var match []*Row
	for i := range sorted {
		r := &sorted[i]
		ok := true
		for _, f := range req.Filter {
			if !bruteMatch(r, f) {
				ok = false
				break
			}
		}
		if ok {
			match = append(match, r)
		}
	}

	type grp struct {
		key  []any
		rows []*Row
	}
	var groups []*grp
	for _, r := range match {
		key := make([]any, len(req.GroupBy))
		for i, name := range req.GroupBy {
			ci := colIndex[name]
			switch columns[ci].kind {
			case KindString:
				key[i] = columns[ci].str(r)
			case KindInt:
				key[i] = columns[ci].i64(r)
			default:
				key[i] = columns[ci].f64(r)
			}
		}
		var g *grp
		for _, cand := range groups {
			if sameKey(cand.key, key) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &grp{key: key}
			groups = append(groups, g)
		}
		g.rows = append(g.rows, r)
	}
	sort.SliceStable(groups, func(i, j int) bool { return bruteLess(groups[i].key, groups[j].key) })

	resp := &Response{
		Schema:      QuerySchema,
		GroupBy:     append([]string{}, req.GroupBy...),
		Aggregates:  []string{},
		RowsScanned: len(rows),
		RowsMatched: len(match),
		Groups:      []Group{},
	}
	for _, a := range req.Aggregates {
		resp.Aggregates = append(resp.Aggregates, a.Label())
	}
	for _, g := range groups {
		out := Group{Key: g.key, Values: []any{}}
		for _, a := range req.Aggregates {
			out.Values = append(out.Values, bruteAggregate(a, g.rows))
		}
		resp.Groups = append(resp.Groups, out)
	}
	return resp
}

func bruteMatch(r *Row, f Filter) bool {
	ci := colIndex[f.Column]
	if columns[ci].kind == KindString {
		v, _ := rowValue(r, ci)
		w := f.Value.(string)
		switch f.Op {
		case "eq":
			return v == w
		case "ne":
			return v != w
		case "lt":
			return v < w
		case "le":
			return v <= w
		case "gt":
			return v > w
		default:
			return v >= w
		}
	}
	_, v := rowValue(r, ci)
	w := f.Value.(float64)
	switch f.Op {
	case "eq":
		return v == w
	case "ne":
		return v != w
	case "lt":
		return v < w
	case "le":
		return v <= w
	case "gt":
		return v > w
	default:
		return v >= w
	}
}

func bruteAggregate(a Aggregate, rows []*Row) any {
	if a.Op == "count" {
		return int64(len(rows))
	}
	ci := colIndex[a.Column]
	var vals []float64
	for _, r := range rows {
		_, v := rowValue(r, ci)
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	var out float64
	switch a.Op {
	case "mean":
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		out = sum / float64(len(vals))
	case "min":
		out = vals[0]
		for _, v := range vals {
			if v < out {
				out = v
			}
		}
	case "max":
		out = vals[0]
		for _, v := range vals {
			if v > out {
				out = v
			}
		}
	case "p50", "p95", "p99":
		p := map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}[a.Op]
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out = sorted[idx]
	}
	if math.IsNaN(out) || math.IsInf(out, 0) {
		return nil
	}
	return out
}

func sameKey(a, b []any) bool {
	for i := range a {
		switch av := a[i].(type) {
		case string:
			if bv, ok := b[i].(string); !ok || av != bv {
				return false
			}
		case int64:
			if bv, ok := b[i].(int64); !ok || av != bv {
				return false
			}
		case float64:
			bv, ok := b[i].(float64)
			if !ok || math.Float64bits(av) != math.Float64bits(bv) {
				return false
			}
		}
	}
	return true
}

func bruteLess(a, b []any) bool {
	for i := range a {
		switch av := a[i].(type) {
		case string:
			bv := b[i].(string)
			if av != bv {
				return av < bv
			}
		case int64:
			bv := b[i].(int64)
			if av != bv {
				return av < bv
			}
		case float64:
			bv := b[i].(float64)
			if av != bv {
				return av < bv
			}
		}
	}
	return false
}

func TestQueryBruteForceEquivalence(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		rnd := rand.New(rand.NewSource(int64(1000 + trial)))

		rows := make([]Row, rnd.Intn(40))
		for i := range rows {
			rows[i] = genRow(rnd, fmt.Sprintf("j%06d", i+1))
		}
		store := NewStore()
		for _, i := range rnd.Perm(len(rows)) { // shuffled ingestion order
			if err := store.Ingest(rows[i]); err != nil {
				t.Fatalf("trial %d: ingest %s: %v", trial, rows[i].Job, err)
			}
		}

		for q := 0; q < 8; q++ {
			req := genQuery(rnd)
			if err := req.Validate(); err != nil {
				t.Fatalf("trial %d query %d: generated invalid query: %v", trial, q, err)
			}
			got, err := store.Query(req)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, q, err)
			}
			want := bruteQuery(rows, req)

			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("trial %d query %d: encode store response: %v", trial, q, err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatalf("trial %d query %d: encode brute response: %v", trial, q, err)
			}
			if string(gotJSON) != string(wantJSON) {
				reqJSON, _ := json.Marshal(req)
				t.Fatalf("trial %d query %d: store and brute force disagree\nquery: %s\nstore: %s\nbrute: %s",
					trial, q, reqJSON, gotJSON, wantJSON)
			}
		}
	}
}

// TestQueryIngestionOrderInvariance pins the determinism contract
// directly: two stores with the same rows ingested in different orders
// answer every query with byte-identical JSON and save byte-identical
// table files.
func TestQueryIngestionOrderInvariance(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	rows := make([]Row, 25)
	for i := range rows {
		rows[i] = genRow(rnd, fmt.Sprintf("j%06d", i+1))
	}

	a, b := NewStore(), NewStore()
	for i := range rows {
		if err := a.Ingest(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range rnd.Perm(len(rows)) {
		if err := b.Ingest(rows[i]); err != nil {
			t.Fatal(err)
		}
	}

	for q := 0; q < 20; q++ {
		req := genQuery(rnd)
		ra, err := a.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(ra)
		jb, _ := json.Marshal(rb)
		if string(ja) != string(jb) {
			t.Fatalf("query %d: ingestion order leaked into the response:\n%s\nvs\n%s", q, ja, jb)
		}
	}

	dir := t.TempDir()
	pa, pb := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := a.Save(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(pb); err != nil {
		t.Fatal(err)
	}
	da := mustRead(t, pa)
	db := mustRead(t, pb)
	if string(da) != string(db) {
		t.Fatal("ingestion order leaked into the persistence file")
	}

	// A store loaded back from the file answers identically too.
	c, err := Open(pa)
	if err != nil {
		t.Fatal(err)
	}
	req := genQuery(rnd)
	ra, err := a.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(ra)
	jc, _ := json.Marshal(rc)
	if string(ja) != string(jc) {
		t.Fatalf("loaded store diverges from the original:\n%s\nvs\n%s", ja, jc)
	}
}
