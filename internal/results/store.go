package results

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
)

// TableSchema versions the persistence file layout written by Save and
// read by Open; it increments on any breaking change.
const TableSchema = 1

// ErrDuplicateJob rejects ingesting a job id the table already holds.
// The table's primary key is the job id, so a duplicate is always a
// re-ingestion (live edge racing a backfill, a replayed journal) and
// never new data; callers treat it as "already done".
var ErrDuplicateJob = errors.New("results: job already ingested")

// Store is the in-memory columnar results table: one typed slice per
// schema column, rows addressed by append position, plus a canonical
// row order sorted by job id. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	persist string // when non-empty, Save here after every ingest

	cols   []colData      // parallel to the columns schema
	jobRow map[string]int // job id → row position
	order  []int          // row positions in ascending job-id order
}

// colData is one column's backing storage; exactly one slice is used,
// matching the column's kind.
type colData struct {
	strs   []string
	ints   []int64
	floats []float64
}

// NewStore returns an empty, memory-only store.
func NewStore() *Store {
	return &Store{
		cols:   make([]colData, len(columns)),
		jobRow: make(map[string]int),
	}
}

// Open returns a store persisted at path: if the file exists its rows
// are loaded (the file must be a valid TableSchema document, anything
// else is an error, not silent data loss), and every subsequent Ingest
// rewrites it atomically. A missing file is simply an empty store.
func Open(path string) (*Store, error) {
	s := NewStore()
	s.persist = path
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	if err := s.load(data); err != nil {
		return nil, fmt.Errorf("results: loading table %s: %w", path, err)
	}
	return s, nil
}

// Len reports the number of rows in the table.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Has reports whether the table already holds the job.
func (s *Store) Has(job string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.jobRow[job]
	return ok
}

// Jobs lists the ingested job ids in canonical (ascending id) order.
func (s *Store) Jobs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.order))
	for i, row := range s.order {
		out[i] = s.cols[colIndex["job"]].strs[row]
	}
	return out
}

// Ingest appends one job's row to the table. The job id must be
// non-empty and new (ErrDuplicateJob otherwise), and every dimension
// value must be finite — dimensions become group keys and filter
// operands, where NaN and infinity have no stable meaning. Metric
// columns may carry NaN.
//
// When the store is persistence-backed, the table file is rewritten
// (atomically: temp file, fsync, rename) before Ingest returns; a
// persistence failure is returned but the row stays ingested — the
// in-memory table remains authoritative for the running process,
// mirroring the job journal's best-effort policy after boot.
func (s *Store) Ingest(row Row) error {
	if row.Job == "" {
		return fmt.Errorf("results: row has no job id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobRow[row.Job]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateJob, row.Job)
	}
	for _, c := range columns {
		if c.dim && c.kind == KindFloat {
			if v := c.f64(&row); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("results: dimension column %q must be finite, got %v", c.name, v)
			}
		}
	}
	pos := len(s.order)
	for i, c := range columns {
		switch c.kind {
		case KindString:
			s.cols[i].strs = append(s.cols[i].strs, c.str(&row))
		case KindInt:
			s.cols[i].ints = append(s.cols[i].ints, c.i64(&row))
		case KindFloat:
			s.cols[i].floats = append(s.cols[i].floats, c.f64(&row))
		}
	}
	s.jobRow[row.Job] = pos
	// Keep the canonical order sorted by job id whatever the ingestion
	// order: completion order (live), submission order (backfill) and
	// file order (load) all converge on the same table.
	jobs := s.cols[colIndex["job"]].strs
	at := sort.Search(len(s.order), func(i int) bool { return jobs[s.order[i]] > row.Job })
	s.order = append(s.order, 0)
	copy(s.order[at+1:], s.order[at:])
	s.order[at] = pos

	if s.persist != "" {
		if err := s.saveLocked(s.persist); err != nil {
			return fmt.Errorf("results: persisting table: %w", err)
		}
	}
	return nil
}

// fileTable is the persistence document: the schema version and one
// entry per column in schema order, rows already in canonical job-id
// order. Float columns are encoded as shortest-round-trip strings
// (strconv 'g', precision -1) so every finite value — and NaN — loads
// back bit-for-bit; encoding/json cannot carry NaN as a number.
type fileTable struct {
	Schema  int          `json:"schema"`
	Rows    int          `json:"rows"`
	Columns []fileColumn `json:"columns"`
}

type fileColumn struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Strs   []string `json:"strs,omitempty"`
	Ints   []int64  `json:"ints,omitempty"`
	Floats []string `json:"floats,omitempty"`
}

// Save writes the table to path atomically. The document is canonical:
// rows in job-id order, columns in schema order — two stores with the
// same content save byte-identical files regardless of ingestion order.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saveLocked(path)
}

func (s *Store) saveLocked(path string) error {
	doc := fileTable{Schema: TableSchema, Rows: len(s.order)}
	for i, c := range columns {
		fc := fileColumn{Name: c.name, Kind: c.kind.String()}
		switch c.kind {
		case KindString:
			fc.Strs = make([]string, 0, len(s.order))
			for _, row := range s.order {
				fc.Strs = append(fc.Strs, s.cols[i].strs[row])
			}
		case KindInt:
			fc.Ints = make([]int64, 0, len(s.order))
			for _, row := range s.order {
				fc.Ints = append(fc.Ints, s.cols[i].ints[row])
			}
		case KindFloat:
			fc.Floats = make([]string, 0, len(s.order))
			for _, row := range s.order {
				fc.Floats = append(fc.Floats, strconv.FormatFloat(s.cols[i].floats[row], 'g', -1, 64))
			}
		}
		doc.Columns = append(doc.Columns, fc)
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// load replays a persistence document into the (empty) store.
func (s *Store) load(data []byte) error {
	var doc fileTable
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Schema != TableSchema {
		return fmt.Errorf("table schema %d, want %d", doc.Schema, TableSchema)
	}
	if len(doc.Columns) != len(columns) {
		return fmt.Errorf("table has %d columns, want %d", len(doc.Columns), len(columns))
	}
	for i, fc := range doc.Columns {
		c := columns[i]
		if fc.Name != c.name {
			return fmt.Errorf("column %d is %q, want %q", i, fc.Name, c.name)
		}
		kind, err := kindByName(fc.Kind)
		if err != nil {
			return err
		}
		if kind != c.kind {
			return fmt.Errorf("column %q is kind %s, want %s", fc.Name, kind, c.kind)
		}
		n := len(fc.Strs) + len(fc.Ints) + len(fc.Floats)
		if n != doc.Rows {
			return fmt.Errorf("column %q has %d values, want %d", fc.Name, n, doc.Rows)
		}
		switch c.kind {
		case KindString:
			s.cols[i].strs = append([]string(nil), fc.Strs...)
		case KindInt:
			s.cols[i].ints = append([]int64(nil), fc.Ints...)
		case KindFloat:
			s.cols[i].floats = make([]float64, 0, doc.Rows)
			for _, repr := range fc.Floats {
				v, err := strconv.ParseFloat(repr, 64)
				if err != nil {
					return fmt.Errorf("column %q value %q: %v", fc.Name, repr, err)
				}
				if c.dim && (math.IsNaN(v) || math.IsInf(v, 0)) {
					return fmt.Errorf("dimension column %q must be finite, got %v", fc.Name, v)
				}
				s.cols[i].floats = append(s.cols[i].floats, v)
			}
		}
	}
	jobs := s.cols[colIndex["job"]].strs
	for pos, job := range jobs {
		if job == "" {
			return fmt.Errorf("row %d has no job id", pos)
		}
		if _, dup := s.jobRow[job]; dup {
			return fmt.Errorf("duplicate job %s", job)
		}
		s.jobRow[job] = pos
		s.order = append(s.order, pos)
	}
	// The file is canonical (saved in job order), but trust nothing:
	// re-sort so a hand-edited file still yields the canonical table.
	sort.Slice(s.order, func(i, j int) bool { return jobs[s.order[i]] < jobs[s.order[j]] })
	return nil
}
