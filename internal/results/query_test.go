package results

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fourRows is a small fixed table exercising every semantic corner:
// two scenarios, thresholds 1/2, one NaN metric, one all-NaN group.
func fourRows() []Row {
	nan := math.NaN()
	r1 := Row{Job: "j000001", Scenario: "baseline", Scheme: "distance", Engine: "fast",
		Model: "2d", Partition: "sdf", D: 1, Q: 0.05, C: 0.01, U: 100, V: 10,
		Terminals: 20, Slots: 1000, Shards: 2, TotalCost: 10, Calls: 5, DelayP95: 2}
	r2 := Row{Job: "j000002", Scenario: "baseline", Scheme: "distance", Engine: "fast",
		Model: "2d", Partition: "sdf", D: 2, Q: 0.05, C: 0.01, U: 100, V: 10,
		Terminals: 20, Slots: 1000, Shards: 2, TotalCost: 30, Calls: 7, DelayP95: nan}
	r3 := Row{Job: "j000003", Scenario: "rush", Scheme: "timer", SchemeParam: 6, Engine: "cols",
		Model: "1d", Partition: "sdf", D: 1, Q: 0.2, C: 0.01, U: 100, V: 10,
		Terminals: 20, Slots: 1000, Shards: 2, TotalCost: 20, Calls: 9, DelayP95: nan}
	r4 := Row{Job: "j000004", Scenario: "rush", Scheme: "timer", SchemeParam: 6, Engine: "cols",
		Model: "1d", Partition: "sdf", D: 1, Q: 0.2, C: 0.01, U: 100, V: 10,
		Terminals: 20, Slots: 1000, Shards: 2, TotalCost: 40, Calls: 11, DelayP95: nan}
	return []Row{r1, r2, r3, r4}
}

func storeWith(t *testing.T, rows []Row) *Store {
	t.Helper()
	s := NewStore()
	for _, r := range rows {
		if err := s.Ingest(r); err != nil {
			t.Fatalf("ingest %s: %v", r.Job, err)
		}
	}
	return s
}

// TestQuerySemantics pins the filter/group-by/aggregate semantics on a
// hand-checked table, comparing the full JSON response documents.
func TestQuerySemantics(t *testing.T) {
	cases := []struct {
		name string
		rows []Row
		req  string // JSON request
		want string // JSON response (compact)
	}{
		{
			name: "empty store, ungrouped count",
			rows: nil,
			req:  `{"aggregates":[{"op":"count"}]}`,
			want: `{"schema":1,"group_by":[],"aggregates":["count"],"rows_scanned":0,"rows_matched":0,"groups":[]}`,
		},
		{
			name: "no group_by folds all rows into one group with an empty key",
			rows: fourRows(),
			req:  `{"aggregates":[{"op":"count"},{"op":"mean","column":"total_cost"}]}`,
			want: `{"schema":1,"group_by":[],"aggregates":["count","mean(total_cost)"],"rows_scanned":4,"rows_matched":4,"groups":[{"key":[],"values":[4,25]}]}`,
		},
		{
			name: "filter matching nothing yields no groups at all",
			rows: fourRows(),
			req:  `{"filter":[{"column":"scenario","op":"eq","value":"nope"}],"aggregates":[{"op":"count"}]}`,
			want: `{"schema":1,"group_by":[],"aggregates":["count"],"rows_scanned":4,"rows_matched":0,"groups":[]}`,
		},
		{
			name: "group by scenario and d, sorted by key",
			rows: fourRows(),
			req:  `{"group_by":["scenario","d"],"aggregates":[{"op":"count"},{"op":"max","column":"total_cost"}]}`,
			want: `{"schema":1,"group_by":["scenario","d"],"aggregates":["count","max(total_cost)"],"rows_scanned":4,"rows_matched":4,"groups":[{"key":["baseline",1],"values":[1,10]},{"key":["baseline",2],"values":[1,30]},{"key":["rush",1],"values":[2,40]}]}`,
		},
		{
			name: "single-row groups",
			rows: fourRows(),
			req:  `{"group_by":["job"],"aggregates":[{"op":"min","column":"calls"}]}`,
			want: `{"schema":1,"group_by":["job"],"aggregates":["min(calls)"],"rows_scanned":4,"rows_matched":4,"groups":[{"key":["j000001"],"values":[5]},{"key":["j000002"],"values":[7]},{"key":["j000003"],"values":[9]},{"key":["j000004"],"values":[11]}]}`,
		},
		{
			name: "NaN metrics are skipped, all-NaN aggregates report null",
			rows: fourRows(),
			req:  `{"group_by":["scenario"],"aggregates":[{"op":"mean","column":"delay_p95"},{"op":"p50","column":"delay_p95"}]}`,
			want: `{"schema":1,"group_by":["scenario"],"aggregates":["mean(delay_p95)","p50(delay_p95)"],"rows_scanned":4,"rows_matched":4,"groups":[{"key":["baseline"],"values":[2,2]},{"key":["rush"],"values":[null,null]}]}`,
		},
		{
			name: "numeric filters on int columns take JSON numbers",
			rows: fourRows(),
			req:  `{"filter":[{"column":"d","op":"le","value":1.5},{"column":"calls","op":"gt","value":5}],"aggregates":[{"op":"count"}]}`,
			want: `{"schema":1,"group_by":[],"aggregates":["count"],"rows_scanned":4,"rows_matched":2,"groups":[{"key":[],"values":[2]}]}`,
		},
		{
			name: "ne on a NaN metric is true (IEEE semantics), eq false",
			rows: fourRows(),
			req:  `{"filter":[{"column":"delay_p95","op":"ne","value":2}],"group_by":["scenario"],"aggregates":[{"op":"count"}]}`,
			want: `{"schema":1,"group_by":["scenario"],"aggregates":["count"],"rows_scanned":4,"rows_matched":3,"groups":[{"key":["baseline"],"values":[1]},{"key":["rush"],"values":[2]}]}`,
		},
		{
			name: "float dimension group keys",
			rows: fourRows(),
			req:  `{"group_by":["q"],"aggregates":[{"op":"p99","column":"total_cost"}]}`,
			want: `{"schema":1,"group_by":["q"],"aggregates":["p99(total_cost)"],"rows_scanned":4,"rows_matched":4,"groups":[{"key":[0.05],"values":[30]},{"key":[0.2],"values":[40]}]}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := storeWith(t, tc.rows)
			req, err := DecodeRequest([]byte(tc.req))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			resp, err := s.Query(req)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			got, err := json.Marshal(resp)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if string(got) != tc.want {
				t.Fatalf("response mismatch\ngot:  %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestRequestValidation holds every rejection to the enumerate-the-
// valid-names error convention.
func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name    string
		req     string
		wantSub string
	}{
		{"unknown filter column", `{"filter":[{"column":"nope","op":"eq","value":1}],"aggregates":[{"op":"count"}]}`,
			"valid columns:"},
		{"unknown filter op", `{"filter":[{"column":"d","op":"like","value":1}],"aggregates":[{"op":"count"}]}`,
			`unknown filter op "like" (valid ops: eq, ne, lt, le, gt, ge)`},
		{"string value on numeric column", `{"filter":[{"column":"d","op":"eq","value":"x"}],"aggregates":[{"op":"count"}]}`,
			"needs a number"},
		{"number value on string column", `{"filter":[{"column":"scenario","op":"eq","value":3}],"aggregates":[{"op":"count"}]}`,
			"needs a string"},
		{"bool filter value", `{"filter":[{"column":"d","op":"eq","value":true}],"aggregates":[{"op":"count"}]}`,
			"unsupported value"},
		{"unknown group_by column", `{"group_by":["nope"],"aggregates":[{"op":"count"}]}`,
			"valid columns:"},
		{"metric group_by column", `{"group_by":["total_cost"],"aggregates":[{"op":"count"}]}`,
			"valid dimensions:"},
		{"duplicate group_by", `{"group_by":["d","d"],"aggregates":[{"op":"count"}]}`,
			`duplicate group_by column "d"`},
		{"no aggregates", `{"group_by":["d"]}`,
			"at least one aggregate is required (valid ops: count, mean, min, max, p50, p95, p99)"},
		{"unknown aggregate op", `{"aggregates":[{"op":"median","column":"total_cost"}]}`,
			`unknown aggregate op "median" (valid ops: count, mean, min, max, p50, p95, p99)`},
		{"count with a column", `{"aggregates":[{"op":"count","column":"d"}]}`,
			"count takes no column"},
		{"aggregate without a column", `{"aggregates":[{"op":"mean"}]}`,
			"valid columns:"},
		{"aggregate on a string column", `{"aggregates":[{"op":"mean","column":"scenario"}]}`,
			"needs a numeric column"},
		{"duplicate aggregate", `{"aggregates":[{"op":"count"},{"op":"count"}]}`,
			"duplicate aggregate count"},
		{"wrong schema", `{"schema":9,"aggregates":[{"op":"count"}]}`,
			"query schema 9, want 1"},
		{"unknown field", `{"nope":1,"aggregates":[{"op":"count"}]}`,
			"invalid query request"},
		{"trailing data", `{"aggregates":[{"op":"count"}]} {}`,
			"trailing data"},
		{"not an object", `[1,2,3]`,
			"invalid query request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.req))
			if err == nil {
				t.Fatalf("request %s decoded without error", tc.req)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// TestColumnLookup covers the name helpers the CLIs build on.
func TestColumnLookup(t *testing.T) {
	if _, err := ColumnKind("nope"); err == nil || !strings.Contains(err.Error(), "valid columns:") {
		t.Fatalf("unknown column error %v does not enumerate valid names", err)
	}
	k, err := ColumnKind("scenario")
	if err != nil || k != KindString {
		t.Fatalf("scenario kind = %v, %v", k, err)
	}
	if k, _ := ColumnKind("d"); k != KindInt {
		t.Fatalf("d kind = %v", k)
	}
	if k, _ := ColumnKind("total_cost"); k != KindFloat {
		t.Fatalf("total_cost kind = %v", k)
	}
	names := ColumnNames()
	dims := DimensionNames()
	if len(dims) == 0 || len(dims) >= len(names) {
		t.Fatalf("%d dimensions of %d columns", len(dims), len(names))
	}
	for _, d := range dims {
		if _, err := ColumnKind(d); err != nil {
			t.Fatalf("dimension %q unknown: %v", d, err)
		}
	}
}
