package baseline

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Analysis holds the analytical per-slot costs of a baseline scheme, in
// the same units as Result, plus the underlying rates.
type Analysis struct {
	// UpdateRate is the per-slot probability of a location update.
	UpdateRate float64
	// CellsPerCall is the expected number of cells polled per call.
	CellsPerCall float64
	// UpdateCost, PagingCost and TotalCost are per-slot averages.
	UpdateCost, PagingCost, TotalCost float64
	// ExpectedDelay is the mean paging delay in polling cycles.
	ExpectedDelay float64
}

// Analyze computes the analytical steady-state costs of the configured
// baseline scheme, the closed-form counterpart of Simulate:
//
//   - LA: the position within a location area is a random walk on a
//     vertex-transitive quotient graph (a cycle of Size cells in 1-D, a
//     torus quotient of the radius-R cluster in 2-D), whose stationary
//     distribution is uniform. The update rate is the uniform boundary
//     exit rate and every call blanket-polls the whole LA.
//   - TimeBased / MovementBased: renewal analysis. Cycles end at the
//     first call or at the scheme's trigger; the distance distribution at
//     age k evolves through the transient ring chain, exactly in 1-D and
//     with the paper's ring-averaged rates in 2-D (a ≈1% lumping
//     approximation, see the package tests).
//   - DistanceBased: handled exactly by package core; Analyze returns an
//     error directing callers there.
func Analyze(cfg Config) (Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return Analysis{}, err
	}
	switch cfg.Scheme {
	case LA:
		return analyzeLA(cfg), nil
	case TimeBased:
		return analyzeTimeBased(cfg), nil
	case MovementBased:
		return analyzeMovementBased(cfg), nil
	default:
		return Analysis{}, fmt.Errorf("baseline: %v has no Analyze; use package core's exact solution", cfg.Scheme)
	}
}

func (a Analysis) withCosts(cfg Config, callRate float64) Analysis {
	a.UpdateCost = a.UpdateRate * cfg.Costs.Update
	a.PagingCost = callRate * a.CellsPerCall * cfg.Costs.Poll
	a.TotalCost = a.UpdateCost + a.PagingCost
	return a
}

// analyzeLA: uniform within-LA position.
//
//	1-D, size L:  exit rate q/L           cells per call L
//	2-D, radius R: exit rate q(2R+1)/g(R)  cells per call g(R)
//
// (In 2-D the cluster has 6(2R+1) outward boundary half-edges out of
// 6·g(R) total; uniformity gives the rate.)
func analyzeLA(cfg Config) Analysis {
	var exitRate float64
	var cells int
	if cfg.Kind == grid.OneDim {
		cells = cfg.Param
		exitRate = cfg.Params.Q / float64(cfg.Param)
	} else {
		r := cfg.Param
		cells = grid.TwoDimHex.DiskSize(r)
		exitRate = cfg.Params.Q * float64(2*r+1) / float64(cells)
	}
	a := Analysis{
		UpdateRate:    exitRate,
		CellsPerCall:  float64(cells),
		ExpectedDelay: 1,
	}
	return a.withCosts(cfg, cfg.Params.C)
}

// OptimalLA returns the LA size (1-D) or radius (2-D) minimizing the
// analytical total cost, scanning 1..maxParam (resp. 0..maxParam in 2-D).
// In 1-D the continuous optimum is the classic square-root law
// L* = sqrt(qU/(cV)).
func OptimalLA(cfg Config, maxParam int) (int, Analysis, error) {
	cfg.Scheme = LA
	lo := 1
	if cfg.Kind == grid.TwoDimHex {
		lo = 0
	}
	bestParam := lo
	best := Analysis{TotalCost: math.Inf(1)}
	for p := lo; p <= maxParam; p++ {
		c := cfg
		c.Param = p
		a, err := Analyze(c)
		if err != nil {
			return 0, Analysis{}, err
		}
		if a.TotalCost < best.TotalCost {
			bestParam, best = p, a
		}
	}
	return bestParam, best, nil
}

// transientStep advances a ring-distance distribution by one conditional
// step that moves with probability moveProb (uniform neighbor, ring-
// averaged rates for the hex grid).
func transientStep(kind grid.Kind, dist []float64, moveProb float64) []float64 {
	n := len(dist)
	next := make([]float64, n+1)
	for i, p := range dist {
		if p == 0 {
			continue
		}
		up := moveProb * kind.UpProb(i)
		down := moveProb * kind.DownProb(i)
		next[i+1] += p * up
		if i > 0 {
			next[i-1] += p * down
		}
		next[i] += p * (1 - up - down)
	}
	return next
}

// expectedDisk returns E[g(D)] and E[D] for a ring distribution.
func expectedDisk(kind grid.Kind, dist []float64) (cells, mean float64) {
	for i, p := range dist {
		cells += p * float64(kind.DiskSize(i))
		mean += p * float64(i)
	}
	return cells, mean
}

// analyzeTimeBased: ages advance on call-free slots; a call at age k pages
// a disk of the distance reached after k conditional moves; age τ triggers
// an update. P(reach age k) = (1−c)^k.
func analyzeTimeBased(cfg Config) Analysis {
	q, c := cfg.Params.Q, cfg.Params.C
	tau := cfg.Param
	moveProb := 0.0
	if q > 0 {
		moveProb = q / (1 - c)
	}
	survive := 1.0 // (1−c)^k
	dist := []float64{1}
	var pageMass, cellsAcc, delayAcc float64
	for k := 0; k < tau; k++ {
		cells, meanD := expectedDisk(cfg.Kind, dist)
		w := survive * c
		pageMass += w
		cellsAcc += w * cells
		delayAcc += w * (meanD + 1)
		survive *= 1 - c
		if k < tau-1 {
			dist = transientStep(cfg.Kind, dist, moveProb)
		}
	}
	// Cycle length in slots: Σ (k+1)(1−c)^k c + τ(1−c)^τ = (1−(1−c)^τ)/c,
	// degenerating to τ when c = 0 (cycles always end at the timer).
	cycleLen := float64(tau)
	if c > 0 {
		cycleLen = (1 - survive) / c
	}
	a := Analysis{
		UpdateRate:    survive / cycleLen,
		CellsPerCall:  1,
		ExpectedDelay: 1,
	}
	if pageMass > 0 {
		a.CellsPerCall = cellsAcc / pageMass
		a.ExpectedDelay = delayAcc / pageMass
	}
	// Per-slot paging cost: pages per cycle (pageMass) × cells each,
	// divided by cycle length — equivalently call rate × E[cells | call]
	// with the call rate being pageMass/cycleLen.
	return a.withCosts(cfg, pageMass/cycleLen)
}

// analyzeMovementBased: in event time (events occur w.p. q+c per slot),
// each event is a call with probability γ = c/(q+c); a call after j moves
// pages a disk of the distance after j unconditional moves; the M-th move
// triggers an update.
func analyzeMovementBased(cfg Config) Analysis {
	q, c := cfg.Params.Q, cfg.Params.C
	m := cfg.Param
	if q == 0 {
		// No movement: no updates ever; every call polls the center cell.
		return Analysis{
			UpdateRate: 0, CellsPerCall: 1, ExpectedDelay: 1,
		}.withCosts(cfg, c)
	}
	gamma := c / (q + c)
	survive := 1.0 // (1−γ)^j
	dist := []float64{1}
	var pageMass, cellsAcc, delayAcc float64
	for j := 0; j < m; j++ {
		cells, meanD := expectedDisk(cfg.Kind, dist)
		w := survive * gamma
		pageMass += w
		cellsAcc += w * cells
		delayAcc += w * (meanD + 1)
		survive *= 1 - gamma
		if j < m-1 {
			dist = transientStep(cfg.Kind, dist, 1) // a definite move
		}
	}
	var cycleSlots float64
	if gamma == 0 {
		// No calls: every cycle is exactly M moves.
		cycleSlots = float64(m) / q
	} else {
		cycleSlots = (1 - survive) / gamma / (q + c)
	}
	a := Analysis{
		UpdateRate:   survive / cycleSlots,
		CellsPerCall: 1,
	}
	if pageMass > 0 {
		a.CellsPerCall = cellsAcc / pageMass
		a.ExpectedDelay = delayAcc / pageMass
	} else {
		a.ExpectedDelay = 1
	}
	callRate := 0.0
	if cycleSlots > 0 {
		callRate = pageMass / cycleSlots
	}
	return a.withCosts(cfg, callRate)
}
