package baseline

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
)

func cfg(kind grid.Kind, scheme Scheme, param int) Config {
	return Config{
		Kind:   kind,
		Params: chain.Params{Q: 0.05, C: 0.01},
		Costs:  core.Costs{Update: 100, Poll: 10},
		Scheme: scheme,
		Param:  param,
	}
}

func TestDistanceBasedMatchesAnalysis(t *testing.T) {
	// The distance-based baseline with a delay bound IS the paper's
	// mechanism; its simulated cost must match core's analytical C_T.
	for _, tc := range []struct {
		kind  grid.Kind
		model chain.Model
		d, m  int
	}{
		{grid.OneDim, chain.OneDim, 3, 2},
		{grid.TwoDimHex, chain.TwoDimExact, 3, 0},
	} {
		c := cfg(tc.kind, DistanceBased, tc.d)
		c.MaxDelay = tc.m
		r, err := Simulate(c, 3_000_000, 5)
		if err != nil {
			t.Fatal(err)
		}
		ana := core.Config{
			Model:    tc.model,
			Params:   c.Params,
			Costs:    c.Costs,
			MaxDelay: tc.m,
		}
		want, err := ana.Evaluate(tc.d)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(r.TotalCost-want.Total) / want.Total; rel > 0.03 {
			t.Errorf("%v d=%d: simulated %v vs analytical %v", tc.kind, tc.d, r.TotalCost, want.Total)
		}
	}
}

func TestLASchemeBasics(t *testing.T) {
	// Single-cell LAs (size 1 / radius 0): every move crosses an LA
	// boundary, so the update rate is q and each call polls one cell.
	for _, tc := range []struct {
		kind  grid.Kind
		param int
		cells int
	}{
		{grid.OneDim, 1, 1},
		{grid.TwoDimHex, 0, 1},
	} {
		r, err := Simulate(cfg(tc.kind, LA, tc.param), 500_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rate := float64(r.Updates) / float64(r.Slots); math.Abs(rate-0.05) > 0.005 {
			t.Errorf("%v: update rate %v, want ≈ q", tc.kind, rate)
		}
		if r.Calls > 0 {
			if per := float64(r.PolledCells) / float64(r.Calls); per != float64(tc.cells) {
				t.Errorf("%v: %v cells per call", tc.kind, per)
			}
		}
		if r.Delay.Mean() != 1 {
			t.Errorf("%v: LA paging delay %v, want 1", tc.kind, r.Delay.Mean())
		}
	}
}

func TestLALargerAreasFewerUpdates(t *testing.T) {
	small, err := Simulate(cfg(grid.TwoDimHex, LA, 1), 500_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Simulate(cfg(grid.TwoDimHex, LA, 4), 500_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.Updates >= small.Updates {
		t.Errorf("updates: radius 4 %d vs radius 1 %d", large.Updates, small.Updates)
	}
	if large.PolledCells <= small.PolledCells {
		t.Errorf("polled: radius 4 %d vs radius 1 %d", large.PolledCells, small.PolledCells)
	}
}

func TestTimeBasedUpdateRate(t *testing.T) {
	// The timer restarts on calls (a call re-centers the network's
	// knowledge), so cycles are renewals ending at the first call or at
	// the τ-th call-free slot: rate = (1−c)^τ / E[cycle], with
	// E[cycle] = (1 − (1−c)^τ)/c.
	const tau = 20
	const c = 0.01
	r, err := Simulate(cfg(grid.OneDim, TimeBased, tau), 500_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	noCall := math.Pow(1-c, tau)
	want := noCall / ((1 - noCall) / c)
	if rate := float64(r.Updates) / float64(r.Slots); math.Abs(rate-want) > 0.003 {
		t.Errorf("update rate %v, want ≈ %v", rate, want)
	}
}

func TestMovementBasedUpdateRate(t *testing.T) {
	// The move counter restarts on calls, so with event probability q+c
	// per slot and move fraction r = q/(q+c), an update ends a cycle with
	// probability r^M, cycles average ((1−r^M)/(1−r))/(q+c) slots:
	// rate = r^M·(q+c)·(1−r)/(1−r^M).
	const m = 5
	const q, c = 0.05, 0.01
	res, err := Simulate(cfg(grid.TwoDimHex, MovementBased, m), 1_000_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := q / (q + c)
	rm := math.Pow(r, m)
	want := rm * (q + c) * (1 - r) / (1 - rm)
	if rate := float64(res.Updates) / float64(res.Slots); math.Abs(rate-want) > 0.002 {
		t.Errorf("update rate %v, want ≈ %v", rate, want)
	}
}

func TestMovementBasedPagingBounded(t *testing.T) {
	// Between updates the terminal makes at most M−1 unreported moves plus
	// the one that just arrived, so the search radius never exceeds M.
	const m = 4
	c := cfg(grid.TwoDimHex, MovementBased, m)
	c.Params = chain.Params{Q: 0.5, C: 0.1}
	r, err := Simulate(c, 200_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Calls == 0 {
		t.Fatal("no calls")
	}
	maxCells := float64(grid.TwoDimHex.DiskSize(m))
	if per := float64(r.PolledCells) / float64(r.Calls); per > maxCells {
		t.Errorf("mean cells per call %v exceeds disk of radius M (%v)", per, maxCells)
	}
	if r.Delay.Mean() > float64(m+1) {
		t.Errorf("mean delay %v exceeds M+1", r.Delay.Mean())
	}
}

func TestDistanceBeatsTimeAndMovementAtOptimum(t *testing.T) {
	// Bar-Noy et al.'s headline result: distance-based updating performs
	// best among the three triggers. Compare each scheme at its own
	// simulated-optimal parameter under identical workload.
	base := Config{
		Kind:   grid.TwoDimHex,
		Params: chain.Params{Q: 0.1, C: 0.01},
		Costs:  core.Costs{Update: 100, Poll: 10},
	}
	const slots = 400_000
	dist := base
	dist.Scheme = DistanceBased
	_, bestDist, err := OptimizeParam(dist, 0, 12, slots, 7)
	if err != nil {
		t.Fatal(err)
	}
	tb := base
	tb.Scheme = TimeBased
	_, bestTime, err := OptimizeParam(tb, 1, 60, slots, 7)
	if err != nil {
		t.Fatal(err)
	}
	mb := base
	mb.Scheme = MovementBased
	_, bestMove, err := OptimizeParam(mb, 1, 12, slots, 7)
	if err != nil {
		t.Fatal(err)
	}
	if bestDist.TotalCost > bestTime.TotalCost*1.02 {
		t.Errorf("distance %v worse than time %v", bestDist.TotalCost, bestTime.TotalCost)
	}
	if bestDist.TotalCost > bestMove.TotalCost*1.02 {
		t.Errorf("distance %v worse than movement %v", bestDist.TotalCost, bestMove.TotalCost)
	}
}

func TestOptimizeParamFindsInteriorOptimum(t *testing.T) {
	c := cfg(grid.OneDim, DistanceBased, 0)
	c.MaxDelay = 1
	best, r, err := OptimizeParam(c, 0, 10, 300_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Analytical optimum for these parameters (Table 1, U=100, m=1) is 3.
	if best < 2 || best > 4 {
		t.Errorf("optimal d = %d (cost %v), want ≈ 3", best, r.TotalCost)
	}
}

func TestValidateAndErrors(t *testing.T) {
	bad := []Config{
		{Kind: grid.OneDim, Params: chain.Params{Q: 2}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: LA, Param: 1},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: -1, Poll: 1}, Scheme: LA, Param: 1},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: LA, Param: 0},
		{Kind: grid.TwoDimHex, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: LA, Param: -1},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: TimeBased, Param: 0},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: MovementBased, Param: 0},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: DistanceBased, Param: -1},
		{Kind: grid.OneDim, Params: chain.Params{Q: 0.1}, Costs: core.Costs{Update: 1, Poll: 1}, Scheme: Scheme(99), Param: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := cfg(grid.OneDim, LA, 3)
	if _, err := Simulate(good, 0, 1); err == nil {
		t.Error("zero slots accepted")
	}
	if _, _, err := OptimizeParam(good, 5, 4, 100, 1); err == nil {
		t.Error("empty range accepted")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		LA:            "location-area",
		TimeBased:     "time-based",
		MovementBased: "movement-based",
		DistanceBased: "distance-based",
		Scheme(42):    "Scheme(42)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
