package baseline

import (
	"math"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
)

func analyzeVsSimulate(t *testing.T, cfg Config, slots int64, relTol float64) {
	t.Helper()
	ana, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(cfg, slots, 13)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want float64) {
		if want == 0 {
			if got != 0 {
				t.Errorf("%v %s: analytical %v, simulated %v", cfg.Scheme, name, got, want)
			}
			return
		}
		if rel := math.Abs(got-want) / want; rel > relTol {
			t.Errorf("%v param=%d %s: analytical %v vs simulated %v (rel %.3f)",
				cfg.Scheme, cfg.Param, name, got, want, rel)
		}
	}
	check("total cost", ana.TotalCost, sim.TotalCost)
	check("update cost", ana.UpdateCost, sim.UpdateCost)
	check("paging cost", ana.PagingCost, sim.PagingCost)
	if sim.Calls > 0 {
		check("cells/call", ana.CellsPerCall, float64(sim.PolledCells)/float64(sim.Calls))
		check("delay", ana.ExpectedDelay, sim.Delay.Mean())
	}
}

func TestAnalyzeLA1DMatchesSimulation(t *testing.T) {
	for _, L := range []int{1, 3, 8, 20} {
		analyzeVsSimulate(t, cfg(grid.OneDim, LA, L), 2_000_000, 0.04)
	}
}

func TestAnalyzeLA2DMatchesSimulation(t *testing.T) {
	for _, R := range []int{0, 1, 2, 4} {
		analyzeVsSimulate(t, cfg(grid.TwoDimHex, LA, R), 2_000_000, 0.04)
	}
}

func TestAnalyzeLA1DClosedForm(t *testing.T) {
	// C_T(L) = qU/L + cLV.
	c := cfg(grid.OneDim, LA, 5)
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.05*100/5 + 0.01*5*10
	if math.Abs(a.TotalCost-want) > 1e-12 {
		t.Errorf("C_T = %v, want %v", a.TotalCost, want)
	}
	if a.ExpectedDelay != 1 {
		t.Errorf("delay %v", a.ExpectedDelay)
	}
}

func TestOptimalLASquareRootLaw(t *testing.T) {
	// 1-D: L* ≈ sqrt(qU/(cV)), the classic square-root law.
	c := cfg(grid.OneDim, LA, 1)
	best, _, err := OptimalLA(c, 60)
	if err != nil {
		t.Fatal(err)
	}
	cont := math.Sqrt(0.05 * 100 / (0.01 * 10))
	if math.Abs(float64(best)-cont) > 1.0 {
		t.Errorf("L* = %d, continuous optimum %v", best, cont)
	}
}

func TestAnalyzeTimeBasedMatchesSimulation(t *testing.T) {
	for _, tau := range []int{1, 5, 20, 60} {
		analyzeVsSimulate(t, cfg(grid.OneDim, TimeBased, tau), 2_000_000, 0.05)
	}
	// 2-D uses the ring-averaged transient chain (lumping approximation);
	// allow slightly more.
	for _, tau := range []int{5, 25} {
		analyzeVsSimulate(t, cfg(grid.TwoDimHex, TimeBased, tau), 2_000_000, 0.06)
	}
}

func TestAnalyzeMovementBasedMatchesSimulation(t *testing.T) {
	for _, m := range []int{1, 3, 8} {
		analyzeVsSimulate(t, cfg(grid.OneDim, MovementBased, m), 2_000_000, 0.05)
		analyzeVsSimulate(t, cfg(grid.TwoDimHex, MovementBased, m), 2_000_000, 0.06)
	}
}

func TestAnalyzeDegenerateParams(t *testing.T) {
	// c = 0: no calls, pure update cost.
	noCalls := Config{
		Kind:   grid.OneDim,
		Params: chain.Params{Q: 0.3, C: 0},
		Costs:  core.Costs{Update: 10, Poll: 1},
		Scheme: TimeBased,
		Param:  4,
	}
	a, err := Analyze(noCalls)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.UpdateRate-0.25) > 1e-12 {
		t.Errorf("c=0 time-based update rate %v, want 1/τ", a.UpdateRate)
	}
	if a.PagingCost != 0 {
		t.Errorf("paging cost %v with no calls", a.PagingCost)
	}
	// q = 0: movement-based never updates.
	frozen := noCalls
	frozen.Params = chain.Params{Q: 0, C: 0.3}
	frozen.Scheme = MovementBased
	a, err = Analyze(frozen)
	if err != nil {
		t.Fatal(err)
	}
	if a.UpdateRate != 0 {
		t.Errorf("q=0 movement-based update rate %v", a.UpdateRate)
	}
	if a.CellsPerCall != 1 {
		t.Errorf("q=0 cells/call %v", a.CellsPerCall)
	}
}

func TestAnalyzeMovementBasedNoCalls(t *testing.T) {
	c := Config{
		Kind:   grid.TwoDimHex,
		Params: chain.Params{Q: 0.4, C: 0},
		Costs:  core.Costs{Update: 10, Poll: 1},
		Scheme: MovementBased,
		Param:  5,
	}
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// One update every M moves, moves at rate q: rate = q/M.
	if math.Abs(a.UpdateRate-0.4/5) > 1e-12 {
		t.Errorf("update rate %v, want q/M", a.UpdateRate)
	}
}

func TestAnalyzeRejects(t *testing.T) {
	c := cfg(grid.OneDim, DistanceBased, 3)
	if _, err := Analyze(c); err == nil {
		t.Error("distance-based Analyze should defer to core")
	}
	bad := cfg(grid.OneDim, LA, 0)
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOptimalLAAgainstSimulatedScan(t *testing.T) {
	// The analytical optimum should agree with the simulated scan.
	c := cfg(grid.TwoDimHex, LA, 0)
	anaBest, _, err := OptimalLA(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	simBest, _, err := OptimizeParam(c, 0, 10, 400_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	diff := anaBest - simBest
	if diff < -1 || diff > 1 {
		t.Errorf("analytical R* = %d vs simulated %d", anaBest, simBest)
	}
}
