// Package baseline implements the location-management schemes the paper
// compares against, so the cost of the paper's mechanism can be put in
// context on identical workloads:
//
//   - LA: the static location-area scheme of Xie, Tabbane & Goodman [8] —
//     the coverage area is statically partitioned into equal location
//     areas, a terminal updates whenever it enters a new LA, and the
//     network pages the terminal's whole LA in a single polling cycle.
//   - TimeBased: Bar-Noy, Kessler & Sidi [3] — the terminal updates every
//     τ slots regardless of movement; paging searches rings outward from
//     the last report.
//   - MovementBased: [3] — the terminal updates after M movements since
//     its last report; paging searches rings outward.
//   - DistanceBased: Madhow, Honig & Steiglitz [6] and this paper — the
//     terminal updates beyond threshold distance d (the unconstrained-
//     delay variant is [6]; with a delay bound it is the paper's scheme,
//     available analytically in package core).
//
// All schemes are evaluated by Monte-Carlo simulation on the real cell
// grids under the same random-walk/call workload, reporting per-slot
// average costs in the paper's U/V units.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/stats"
)

// Scheme identifies a location-management discipline.
type Scheme int

const (
	// LA is the static location-area scheme [8]. Param is the LA size:
	// segment length in 1-D, hexagonal cluster radius in 2-D.
	LA Scheme = iota
	// TimeBased updates every Param slots [3].
	TimeBased
	// MovementBased updates after Param movements [3].
	MovementBased
	// DistanceBased updates beyond distance Param ([6]; this paper).
	DistanceBased
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case LA:
		return "location-area"
	case TimeBased:
		return "time-based"
	case MovementBased:
		return "movement-based"
	case DistanceBased:
		return "distance-based"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config describes one baseline evaluation.
type Config struct {
	// Kind selects the grid (1-D line or 2-D hex).
	Kind grid.Kind
	// Params is the random-walk workload.
	Params chain.Params
	// Costs are the paper's U and V units.
	Costs core.Costs
	// Scheme is the discipline under test.
	Scheme Scheme
	// Param is the scheme parameter: LA size/radius, τ slots, M moves, or
	// threshold distance d. For LA in 1-D it must be ≥ 1; elsewhere ≥ 0
	// with scheme-specific meaning.
	Param int
	// MaxDelay bounds paging for DistanceBased (0 = unbounded, matching
	// [6]); other schemes have fixed paging disciplines: LA pages in one
	// cycle, time- and movement-based page per ring.
	MaxDelay int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	switch c.Scheme {
	case LA:
		if c.Kind == grid.OneDim && c.Param < 1 {
			return fmt.Errorf("baseline: 1-D LA size %d < 1", c.Param)
		}
		if c.Param < 0 {
			return fmt.Errorf("baseline: negative LA radius %d", c.Param)
		}
	case TimeBased:
		if c.Param < 1 {
			return fmt.Errorf("baseline: time-based period %d < 1", c.Param)
		}
	case MovementBased:
		if c.Param < 1 {
			return fmt.Errorf("baseline: movement threshold %d < 1", c.Param)
		}
	case DistanceBased:
		if c.Param < 0 {
			return fmt.Errorf("baseline: negative distance threshold %d", c.Param)
		}
	default:
		return fmt.Errorf("baseline: unknown scheme %d", int(c.Scheme))
	}
	return nil
}

// Result reports a simulation run.
type Result struct {
	Slots                             int64
	Updates, Calls, PolledCells       int64
	UpdateCost, PagingCost, TotalCost float64
	// Delay is the paging delay per call in polling cycles (always 1 for
	// the LA scheme).
	Delay stats.Accumulator
}

// Simulate runs the configured scheme for the given number of slots.
func Simulate(cfg Config, slots int64, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if slots <= 0 {
		return Result{}, errors.New("baseline: slots must be positive")
	}
	rng := stats.NewRNG(seed)
	var res Result
	res.Slots = slots
	if cfg.Kind == grid.OneDim {
		simulateLine(cfg, slots, rng, &res)
	} else {
		simulateHex(cfg, slots, rng, &res)
	}
	res.UpdateCost = float64(res.Updates) * cfg.Costs.Update / float64(slots)
	res.PagingCost = float64(res.PolledCells) * cfg.Costs.Poll / float64(slots)
	res.TotalCost = res.UpdateCost + res.PagingCost
	return res, nil
}

// OptimizeParam scans the scheme parameter over lo..hi and returns the
// value minimizing the simulated per-slot total cost. Each candidate is
// simulated for the same number of slots with the same seed, so the scan is
// a fair common-random-numbers comparison.
func OptimizeParam(cfg Config, lo, hi int, slots int64, seed uint64) (int, Result, error) {
	if lo > hi {
		return 0, Result{}, fmt.Errorf("baseline: empty parameter range [%d,%d]", lo, hi)
	}
	bestParam := lo
	best := Result{TotalCost: math.Inf(1)}
	for p := lo; p <= hi; p++ {
		c := cfg
		c.Param = p
		r, err := Simulate(c, slots, seed)
		if err != nil {
			return 0, Result{}, err
		}
		if r.TotalCost < best.TotalCost {
			bestParam, best = p, r
		}
	}
	return bestParam, best, nil
}
