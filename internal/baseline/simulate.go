package baseline

import (
	"repro/internal/grid"
	"repro/internal/paging"
	"repro/internal/stats"
)

// geomOps adapts the two grids to one simulation loop. Positions are
// represented as hex axial coordinates; the 1-D line embeds as R = 0 with
// moves along Q only.
type geomOps struct {
	kind    grid.Kind
	move    func(grid.Hex, *stats.RNG) grid.Hex
	la      func(grid.Hex) grid.Hex
	laCells int
}

func makeOps(cfg Config) geomOps {
	if cfg.Kind == grid.OneDim {
		ops := geomOps{
			kind: grid.OneDim,
			move: func(h grid.Hex, rng *stats.RNG) grid.Hex {
				if rng.Intn(2) == 0 {
					return grid.Hex{Q: h.Q - 1}
				}
				return grid.Hex{Q: h.Q + 1}
			},
		}
		if cfg.Scheme == LA {
			size := cfg.Param
			ops.la = func(h grid.Hex) grid.Hex {
				return grid.Hex{Q: int(grid.LineLAStart(grid.Line(h.Q), size))}
			}
			ops.laCells = size
		}
		return ops
	}
	ops := geomOps{
		kind: grid.TwoDimHex,
		move: func(h grid.Hex, rng *stats.RNG) grid.Hex {
			return h.Neighbor(rng.Intn(6))
		},
	}
	if cfg.Scheme == LA {
		radius := cfg.Param
		ops.la = func(h grid.Hex) grid.Hex { return grid.HexLACenter(h, radius) }
		ops.laCells = grid.TwoDimHex.DiskSize(radius)
	}
	return ops
}

// dist is the ring distance appropriate to the embedding (hex distance
// reduces to |ΔQ| on the line since R is always 0 there).
func (g geomOps) dist(a, b grid.Hex) int { return a.Dist(b) }

func simulateLine(cfg Config, slots int64, rng *stats.RNG, res *Result) {
	simulate(cfg, slots, rng, res)
}

func simulateHex(cfg Config, slots int64, rng *stats.RNG, res *Result) {
	simulate(cfg, slots, rng, res)
}

func simulate(cfg Config, slots int64, rng *stats.RNG, res *Result) {
	ops := makeOps(cfg)
	pos := grid.Hex{}
	center := grid.Hex{} // last reported position (non-LA schemes)
	curLA := grid.Hex{}  // current location area (LA scheme)
	if cfg.Scheme == LA {
		curLA = ops.la(pos)
	}
	moveProb := 0.0
	if cfg.Params.Q > 0 {
		moveProb = cfg.Params.Q / (1 - cfg.Params.C)
	}
	var timer, moves int

	// Distance-based paging plan, fixed per run.
	var ringSubarea []int
	var cumCells []int
	if cfg.Scheme == DistanceBased {
		rings := cfg.Kind.RingSizes(cfg.Param)
		part := paging.SDF{}.Partition(rings, nil, cfg.MaxDelay)
		cumCells = part.CumulativeCells()
		ringSubarea = make([]int, cfg.Param+1)
		for j, s := range part {
			for i := s.FirstRing; i <= s.LastRing; i++ {
				ringSubarea[i] = j
			}
		}
	}

	page := func() {
		res.Calls++
		switch cfg.Scheme {
		case LA:
			// Blanket-poll the whole location area, one cycle.
			res.PolledCells += int64(ops.laCells)
			res.Delay.Add(1)
			// The network learns the exact cell but the scheme's state
			// (the current LA) is unchanged by construction.
		case TimeBased, MovementBased:
			// Expanding ring search from the last reported position.
			d := ops.dist(pos, center)
			res.PolledCells += int64(cfg.Kind.DiskSize(d))
			res.Delay.Add(float64(d + 1))
			center = pos
			timer, moves = 0, 0
		case DistanceBased:
			d := ops.dist(pos, center)
			j := ringSubarea[d]
			res.PolledCells += int64(cumCells[j])
			res.Delay.Add(float64(j + 1))
			center = pos
		}
	}

	update := func() {
		res.Updates++
	}

	for t := int64(0); t < slots; t++ {
		if rng.Bernoulli(cfg.Params.C) {
			page()
			continue
		}
		if rng.Bernoulli(moveProb) {
			pos = ops.move(pos, rng)
			moves++
			switch cfg.Scheme {
			case LA:
				if la := ops.la(pos); la != curLA {
					curLA = la
					update()
				}
			case MovementBased:
				if moves >= cfg.Param {
					center = pos
					moves = 0
					update()
				}
			case DistanceBased:
				if ops.dist(pos, center) > cfg.Param {
					center = pos
					update()
				}
			}
		}
		if cfg.Scheme == TimeBased {
			timer++
			if timer >= cfg.Param {
				center = pos
				timer = 0
				update()
			}
		}
	}
}
