// Integration tests: one operating point evaluated through every
// independent path in the repository — exact analysis, closed forms, the
// dense generic Markov solver, the Monte-Carlo walk, the discrete-event
// PCN system, the trace replay, and the baseline simulator's
// distance-based mode — all of which must agree on the paper's C_T.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/markov"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/walk"
)

// TestAllPathsAgree evaluates 2-D, q=0.05, c=0.01, U=100, V=10, d=3, m=2
// through seven code paths.
func TestAllPathsAgree(t *testing.T) {
	const (
		d     = 3
		m     = 2
		slots = 3_000_000
	)
	params := chain.Params{Q: 0.05, C: 0.01}
	costs := core.Costs{Update: 100, Poll: 10}
	cfg := core.Config{Model: chain.TwoDimExact, Params: params, Costs: costs, MaxDelay: m}

	// Path 1: the structured cut-balance solver through the cost model.
	exact, err := cfg.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: the dense generic Markov solver, costs assembled by hand.
	mc, err := markov.DistanceChain(chain.TwoDimExact, params, d)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := mc.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	rings := grid.TwoDimHex.RingSizes(d)
	part := paging.SDF{}.Partition(rings, nil, m)
	dense := chain.UpdateProb(chain.TwoDimExact, params, pi)*costs.Update +
		params.C*costs.Poll*part.ExpectedCells(pi)
	if math.Abs(dense-exact.Total) > 1e-10 {
		t.Errorf("dense solver path: %v vs %v", dense, exact.Total)
	}

	// Path 3: power iteration on the same chain.
	piPow, err := mc.PowerIteration(1e-14, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	power := chain.UpdateProb(chain.TwoDimExact, params, piPow)*costs.Update +
		params.C*costs.Poll*part.ExpectedCells(piPow)
	if math.Abs(power-exact.Total) > 1e-6 {
		t.Errorf("power iteration path: %v vs %v", power, exact.Total)
	}

	// Path 4: Monte-Carlo walk on the real hexagonal grid.
	w, err := walk.Run(cfg, d, slots, 101)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(w.TotalCost-exact.Total) / exact.Total; rel > 0.03 {
		t.Errorf("walk path: %v vs %v (rel %.3f)", w.TotalCost, exact.Total, rel)
	}

	// Path 5: the discrete-event PCN system.
	metrics, err := sim.Run(sim.Config{Core: cfg, Terminals: 4, Threshold: d, Seed: 55}, slots/4)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.NotFound != 0 {
		t.Fatalf("PCN path: %d paging failures", metrics.NotFound)
	}
	if rel := math.Abs(metrics.TotalCost-exact.Total) / exact.Total; rel > 0.03 {
		t.Errorf("PCN path: %v vs %v (rel %.3f)", metrics.TotalCost, exact.Total, rel)
	}

	// Path 6: generated trace replayed through the mechanism.
	tr, err := trace.Generate(grid.TwoDimHex, params, slots, 77)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.Replay(tr, d, m, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.TotalCost-exact.Total) / exact.Total; rel > 0.03 {
		t.Errorf("trace path: %v vs %v (rel %.3f)", rep.TotalCost, exact.Total, rel)
	}

	// Path 7: the baseline simulator's distance-based mode.
	bl, err := baseline.Simulate(baseline.Config{
		Kind: grid.TwoDimHex, Params: params, Costs: costs,
		Scheme: baseline.DistanceBased, Param: d, MaxDelay: m,
	}, slots, 33)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(bl.TotalCost-exact.Total) / exact.Total; rel > 0.03 {
		t.Errorf("baseline path: %v vs %v (rel %.3f)", bl.TotalCost, exact.Total, rel)
	}

	// The delay metric agrees across analysis, walk and the PCN system.
	for name, got := range map[string]float64{
		"walk": w.Delay.Mean(),
		"sim":  metrics.Delay.Mean(),
		"rep":  rep.Delay.Mean(),
	} {
		if math.Abs(got-exact.ExpectedDelay) > 0.03 {
			t.Errorf("%s delay: %v vs analytical %v", name, got, exact.ExpectedDelay)
		}
	}
}

// TestClosedFormPathAgrees covers the 1-D closed form end to end: the
// paper's Table 1 configuration evaluated through the closed-form
// stationary solution must equal the structured solver's cost exactly.
func TestClosedFormPathAgrees(t *testing.T) {
	params := chain.Params{Q: 0.05, C: 0.01}
	costs := core.Costs{Update: 100, Poll: 10}
	for d := 0; d <= 12; d++ {
		for _, m := range []int{1, 2, 3, 0} {
			cfg := core.Config{Model: chain.OneDim, Params: params, Costs: costs, MaxDelay: m}
			exact, err := cfg.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			pi, err := chain.StationaryClosedForm(chain.OneDim, params, d)
			if err != nil {
				t.Fatal(err)
			}
			rings := grid.OneDim.RingSizes(d)
			part := paging.SDF{}.Partition(rings, nil, m)
			closed := chain.UpdateProb(chain.OneDim, params, pi)*costs.Update +
				params.C*costs.Poll*part.ExpectedCells(pi)
			if math.Abs(closed-exact.Total) > 1e-10 {
				t.Errorf("d=%d m=%d: closed form %v vs solver %v", d, m, closed, exact.Total)
			}
		}
	}
}
