// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (Section 7) and prints them as plain text, with the
// published values alongside for comparison:
//
//	paperfigs -exp table1     # Table 1 (1-D optimal thresholds and costs)
//	paperfigs -exp table2     # Table 2 (2-D exact vs near-optimal)
//	paperfigs -exp fig4a      # Figure 4(a): cost vs movement probability, 1-D
//	paperfigs -exp fig4b      # Figure 4(b): cost vs movement probability, 2-D
//	paperfigs -exp fig5a      # Figure 5(a): cost vs call probability, 1-D
//	paperfigs -exp fig5b      # Figure 5(b): cost vs call probability, 2-D
//	paperfigs -exp all        # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4a, fig4b, fig5a, fig5b or all")
	svgDir := flag.String("svg", "", "also write the figures as SVG charts into this directory")
	flag.Parse()

	out := os.Stdout
	run := map[string]func(io.Writer) error{
		"table1": Table1,
		"table2": Table2,
		"fig4a":  func(w io.Writer) error { return Figure(w, "4a", chain.OneDim, true) },
		"fig4b":  func(w io.Writer) error { return Figure(w, "4b", chain.TwoDimExact, true) },
		"fig5a":  func(w io.Writer) error { return Figure(w, "5a", chain.OneDim, false) },
		"fig5b":  func(w io.Writer) error { return Figure(w, "5b", chain.TwoDimExact, false) },
	}
	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4a", "fig4b", "fig5a", "fig5b"}
	}
	for _, name := range names {
		fn, ok := run[name]
		if !ok {
			log.Fatalf("unknown experiment %q", name)
		}
		if err := fn(out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(out)
		if *svgDir != "" && strings.HasPrefix(name, "fig") {
			if err := writeSVG(*svgDir, name); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// writeSVG renders one figure into dir/<name>.svg.
func writeSVG(dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	model := chain.OneDim
	if strings.HasSuffix(name, "b") {
		model = chain.TwoDimExact
	}
	sweepQ := strings.HasPrefix(name, "fig4")
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := FigureSVG(f, strings.TrimPrefix(name, "fig"), model, sweepQ); err != nil {
		return err
	}
	return f.Close()
}

func delayName(m int) string {
	if m == 0 {
		return "unbounded"
	}
	return fmt.Sprintf("m=%d", m)
}

// Table1 reproduces the paper's Table 1: the 1-D model with c=0.01,
// q=0.05, V=10 and U swept over three decades, for maximum paging delays
// 1, 2, 3 and unbounded. The published numbers require the legacy d=0
// update rate (DESIGN.md §4), which is what this harness uses.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: Optimal Threshold Distance and Average Total Cost, 1-D model")
	fmt.Fprintln(w, "(columns: ours vs [paper]; c=0.01, q=0.05, V=10, legacy d=0 rate)")
	headers := []string{"U"}
	for _, m := range paperdata.Table1Delays {
		headers = append(headers,
			delayName(m)+" d*", "[d*]",
			delayName(m)+" C_T", "[C_T]")
	}
	t := table.New(headers...)
	for _, row := range paperdata.Table1 {
		cells := []string{fmt.Sprintf("%.0f", row.U)}
		for col, m := range paperdata.Table1Delays {
			cfg := core.Config{
				Model:          chain.OneDim,
				Params:         chain.Params{Q: paperdata.TableMoveProb, C: paperdata.TableCallProb},
				Costs:          core.Costs{Update: row.U, Poll: paperdata.TablePollCost},
				MaxDelay:       m,
				LegacyZeroRate: true,
			}
			res, err := core.Scan(cfg, 100)
			if err != nil {
				return err
			}
			cells = append(cells,
				fmt.Sprintf("%d", res.Best.Threshold),
				fmt.Sprintf("[%d]", row.D[col]),
				fmt.Sprintf("%.3f", res.Best.Total),
				fmt.Sprintf("[%.3f]", row.CT[col]))
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}

// Table2 reproduces the paper's Table 2: the 2-D model, exact optimum
// (d*, C_T) against the uncorrected near-optimal pipeline (d′, C′_T).
func Table2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2: Optimal Threshold Distance and Average Total Cost, 2-D model")
	fmt.Fprintln(w, "(columns: ours vs [paper]; c=0.01, q=0.05, V=10)")
	headers := []string{"U"}
	for _, m := range paperdata.Table2Delays {
		n := delayName(m)
		headers = append(headers,
			n+" d*", "[d*]", n+" d'", "[d']",
			n+" C_T", "[C_T]", n+" C'_T", "[C'_T]")
	}
	t := table.New(headers...)
	for _, row := range paperdata.Table2 {
		cells := []string{fmt.Sprintf("%.0f", row.U)}
		for col, m := range paperdata.Table2Delays {
			params := chain.Params{Q: paperdata.TableMoveProb, C: paperdata.TableCallProb}
			costs := core.Costs{Update: row.U, Poll: paperdata.TablePollCost}
			exactCfg := core.Config{Model: chain.TwoDimExact, Params: params, Costs: costs, MaxDelay: m}
			exact, err := core.Scan(exactCfg, 60)
			if err != nil {
				return err
			}
			nearCfg := exactCfg
			nearCfg.LegacyZeroRate = true
			near, err := core.NearOptimal(nearCfg, 60, false)
			if err != nil {
				return err
			}
			cell := row.Cells[col]
			cells = append(cells,
				fmt.Sprintf("%d", exact.Best.Threshold), fmt.Sprintf("[%d]", cell.DStar),
				fmt.Sprintf("%d", near.Best.Threshold), fmt.Sprintf("[%d]", cell.DNear),
				fmt.Sprintf("%.3f", exact.Best.Total), fmt.Sprintf("[%.3f]", cell.CT),
				fmt.Sprintf("%.3f", near.Best.Total), fmt.Sprintf("[%.3f]", cell.CTNear))
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}

// figureData computes one figure's curves: the optimal average total cost
// C_T(d*(·,m), m) as the movement probability (sweepQ) or the call-arrival
// probability varies, for maximum paging delays 1, 2, 3 and unbounded.
// Costs: U=100, V=1.
func figureData(model chain.Model, sweepQ bool) (xs []float64, names []string, curves map[string][]float64, err error) {
	xs = paperdata.Fig4MoveProbs
	if !sweepQ {
		xs = paperdata.Fig5CallProbs
	}
	// All (delay, x) grid points are independent; fan them out.
	n := len(paperdata.FigDelays) * len(xs)
	flat, err := sweep.Map(n, 0, func(k int) (float64, error) {
		m := paperdata.FigDelays[k/len(xs)]
		x := xs[k%len(xs)]
		params := chain.Params{Q: x, C: paperdata.Fig4CallProb}
		if !sweepQ {
			params = chain.Params{Q: paperdata.Fig5MoveProb, C: x}
		}
		cfg := core.Config{
			Model:    model,
			Params:   params,
			Costs:    core.Costs{Update: paperdata.FigUpdateCost, Poll: paperdata.FigPollCost},
			MaxDelay: m,
		}
		res, err := core.Scan(cfg, 100)
		if err != nil {
			return 0, err
		}
		return res.Best.Total, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	curves = make(map[string][]float64)
	for mi, m := range paperdata.FigDelays {
		name := delayName(m)
		names = append(names, name)
		curves[name] = flat[mi*len(xs) : (mi+1)*len(xs)]
	}
	return xs, names, curves, nil
}

// Figure prints one of the paper's figures as a plain-text series table.
func Figure(w io.Writer, name string, model chain.Model, sweepQ bool) error {
	xs, names, curves, err := figureData(model, sweepQ)
	if err != nil {
		return err
	}
	xLabel, which := "q", "movement probability"
	if !sweepQ {
		xLabel, which = "c", "call arrival probability"
	}
	fmt.Fprintf(w, "Figure %s: optimal average total cost vs %s (%v model; c/q fixed per paper, U=100, V=1)\n",
		name, which, model)
	return table.Series(w, xLabel, xs, names, curves)
}

// FigureSVG renders one of the paper's figures as an SVG line chart with a
// log-scaled probability axis, matching the paper's presentation.
func FigureSVG(w io.Writer, name string, model chain.Model, sweepQ bool) error {
	xs, names, curves, err := figureData(model, sweepQ)
	if err != nil {
		return err
	}
	xLabel := "probability of moving (q)"
	if !sweepQ {
		xLabel = "call arrival probability (c)"
	}
	p := &svgplot.Plot{
		Title:  fmt.Sprintf("Figure %s — %v model", name, model),
		XLabel: xLabel,
		YLabel: "average total cost",
		LogX:   true,
	}
	for _, n := range names {
		if err := p.Line("max delay "+n, xs, curves[n]); err != nil {
			return err
		}
	}
	return p.WriteSVG(w)
}
