package main

import (
	"bytes"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/paperdata"
)

func TestTable1OutputMatchesPaperColumnwise(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header (2) + rule (1) ... actually: 2 description lines + header +
	// rule + data rows.
	if got, want := len(lines), 4+len(paperdata.Table1); got != want {
		t.Fatalf("%d lines, want %d:\n%s", got, want, out)
	}
	// Every measured cell is immediately followed by the identical paper
	// value in brackets.
	for _, line := range lines[4:] {
		fields := strings.Fields(line)
		for i, f := range fields {
			if strings.HasPrefix(f, "[") {
				want := strings.Trim(f, "[]")
				if fields[i-1] != want {
					t.Errorf("mismatch in row %q: %s vs %s", fields[0], fields[i-1], f)
				}
			}
		}
	}
}

func TestTable2OutputMatchesPaperColumnwise(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if got, want := len(lines), 4+len(paperdata.Table2); got != want {
		t.Fatalf("%d lines, want %d", got, want)
	}
	for _, line := range lines[4:] {
		fields := strings.Fields(line)
		for i, f := range fields {
			if strings.HasPrefix(f, "[") {
				want := strings.Trim(f, "[]")
				if fields[i-1] != want {
					t.Errorf("mismatch in row %q: %s vs %s", fields[0], fields[i-1], f)
				}
			}
		}
	}
}

func TestFigureSeriesShape(t *testing.T) {
	for _, tc := range []struct {
		model  chain.Model
		sweepQ bool
	}{
		{chain.OneDim, true},
		{chain.TwoDimExact, true},
		{chain.OneDim, false},
		{chain.TwoDimExact, false},
	} {
		xs, names, curves, err := figureData(tc.model, tc.sweepQ)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 4 {
			t.Fatalf("%d delay curves", len(names))
		}
		// The four delay curves are ordered: for every x,
		// C(m=1) ≥ C(m=2) ≥ C(m=3) ≥ C(unbounded).
		for i := range xs {
			for j := 1; j < len(names); j++ {
				hi := curves[names[j-1]][i]
				lo := curves[names[j]][i]
				if lo > hi+1e-9 {
					t.Errorf("%v sweepQ=%v x=%v: %s (%v) above %s (%v)",
						tc.model, tc.sweepQ, xs[i], names[j], lo, names[j-1], hi)
				}
			}
		}
		// Costs increase with the swept probability for the m=1 curve.
		m1 := curves[names[0]]
		for i := 1; i < len(m1); i++ {
			if m1[i] < m1[i-1]-1e-9 {
				t.Errorf("%v sweepQ=%v: m=1 curve not increasing at %v", tc.model, tc.sweepQ, xs[i])
			}
		}
	}
}

func TestFigureTextOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure(&buf, "4a", chain.OneDim, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4a") || !strings.Contains(out, "unbounded") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if got, want := strings.Count(out, "\n"), 3+len(paperdata.Fig4MoveProbs); got != want {
		t.Errorf("%d lines, want %d", got, want)
	}
}

func TestFigureSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := FigureSVG(&buf, "5b", chain.TwoDimExact, false); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	if c := strings.Count(buf.String(), "<polyline"); c != 4 {
		t.Errorf("%d polylines, want 4", c)
	}
}

func TestDelayName(t *testing.T) {
	if delayName(0) != "unbounded" || delayName(3) != "m=3" {
		t.Error("delayName wrong")
	}
}

func TestWriteSVGCreatesFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"fig4a", "fig5b"} {
		if err := writeSVG(dir, name); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"fig4a.svg", "fig5b.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "</svg>") {
			t.Errorf("%s: incomplete SVG", name)
		}
	}
}
