// Command schemacheck validates a pcnsim -json document on stdin: it must
// decode into locman.Report with no unknown fields and satisfy the
// report's cross-field invariants. CI pipes a smoke run through it so any
// drift between the emitted JSON and the published schema fails the
// build.
//
//	pcnsim -terminals 200 -slots 2000 -telemetry-every 500 -json | schemacheck
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schemacheck: ")

	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	var r locman.Report
	if err := dec.Decode(&r); err != nil {
		log.Fatalf("document does not match locman.Report: %v", err)
	}
	if err := check(&r); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ok: schema %d, %d terminals, %d slots, %d snapshots\n",
		r.Schema, r.Terminals, r.Slots, len(r.Snapshots))
}

// check enforces the invariants every well-formed report satisfies.
func check(r *locman.Report) error {
	if r.Schema != locman.ReportSchema {
		return fmt.Errorf("schema %d, want %d", r.Schema, locman.ReportSchema)
	}
	if r.Terminals <= 0 || r.Slots <= 0 {
		return fmt.Errorf("empty run shape: %d terminals, %d slots", r.Terminals, r.Slots)
	}
	if r.Delay.N != r.Calls-r.DroppedCalls {
		return fmt.Errorf("delay samples %d != calls %d - dropped %d",
			r.Delay.N, r.Calls, r.DroppedCalls)
	}
	if err := checkHist("delay_hist", r.DelayHist, r.Delay.N); err != nil {
		return err
	}
	if err := checkHist("recovery_hist", r.RecoveryHist, r.Recovery.N); err != nil {
		return err
	}
	var prevSlot int64
	for i, f := range r.Snapshots {
		if f.Slot <= prevSlot {
			return fmt.Errorf("snapshot %d at slot %d not after %d", i, f.Slot, prevSlot)
		}
		prevSlot = f.Slot
	}
	if n := len(r.Snapshots); n > 0 {
		last := r.Snapshots[n-1]
		if last.Slot != r.Slots {
			return fmt.Errorf("final snapshot at slot %d, want %d", last.Slot, r.Slots)
		}
		if last.Updates != r.Updates || last.Calls != r.Calls ||
			last.PolledCells != r.PolledCells || last.Events != r.Events {
			return fmt.Errorf("final snapshot counters diverge from report totals")
		}
	}
	return nil
}

// checkHist validates one histogram section against its summary count.
func checkHist(name string, h *locman.HistReport, n int64) error {
	if h == nil {
		return fmt.Errorf("%s missing", name)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum+h.Overflow != h.N {
		return fmt.Errorf("%s: buckets %d + overflow %d != n %d", name, sum, h.Overflow, h.N)
	}
	if h.N != n {
		return fmt.Errorf("%s: n %d != summary n %d", name, h.N, n)
	}
	if h.N > 0 && (h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max) {
		return fmt.Errorf("%s: quantiles not ordered: %v %v %v max %v",
			name, h.P50, h.P95, h.P99, h.Max)
	}
	return nil
}
