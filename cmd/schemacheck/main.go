// Command schemacheck validates the project's machine-readable JSON
// documents on stdin against their published schemas. -kind selects the
// document type:
//
//	pcnsim -terminals 200 -slots 2000 -telemetry-every 500 -json | schemacheck
//	pcnctl get j000001 | schemacheck -kind job
//	schemacheck -kind journal < data/journal.ndjson
//
// "report" (the default) is a pcnsim -json / pcnserve result document:
// it must decode into locman.Report with no unknown fields and satisfy
// the report's cross-field invariants. "job" is a pcnserve job document
// (jobs.View) as served by GET /api/v1/jobs/{id}. "journal" is a
// pcnserve durable job journal (checksummed NDJSON), validated
// strictly: every record must carry a valid checksum, a strictly
// increasing sequence number, and a well-formed payload — the check the
// service itself applies leniently (longest valid prefix) at boot. CI
// pipes smoke runs of all three through it so any drift between the
// emitted documents and the published schemas fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/jobs"
	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schemacheck: ")

	kind := flag.String("kind", "report",
		"document kind on stdin: report (pcnsim -json), job (pcnserve job document), or journal (pcnserve job journal)")
	flag.Parse()

	if *kind == "journal" {
		// NDJSON, not a single document: validated record-by-record.
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		n, err := jobs.CheckJournal(data)
		if err != nil {
			log.Fatalf("journal invalid after %d good records: %v", n, err)
		}
		fmt.Printf("ok: journal schema %d, %d records, %d bytes\n", jobs.JournalSchema, n, len(data))
		return
	}

	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	switch *kind {
	case "report":
		var r locman.Report
		if err := dec.Decode(&r); err != nil {
			log.Fatalf("document does not match locman.Report: %v", err)
		}
		if err := check(&r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, %d terminals, %d slots, %d snapshots\n",
			r.Schema, r.Terminals, r.Slots, len(r.Snapshots))
	case "job":
		var v jobs.View
		if err := dec.Decode(&v); err != nil {
			log.Fatalf("document does not match jobs.View: %v", err)
		}
		if err := checkJob(&v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, job %s %s, %d/%d terminal-slots\n",
			v.Schema, v.ID, v.State, v.TerminalSlots, v.TotalTerminalSlots)
	default:
		log.Fatalf("unknown -kind %q (valid kinds: report, job, journal)", *kind)
	}
}

// checkJob enforces the invariants every well-formed job document
// satisfies: a current schema, a known lifecycle state, a spec the
// service itself would accept, lifecycle timestamps consistent with the
// state, and progress within the run's bounds.
func checkJob(v *jobs.View) error {
	switch v.Schema {
	case jobs.SpecSchema, jobs.SpecSchemaV1:
	default:
		return fmt.Errorf("schema %d, want %d (or legacy %d)", v.Schema, jobs.SpecSchema, jobs.SpecSchemaV1)
	}
	if v.ID == "" {
		return fmt.Errorf("job id missing")
	}
	if !v.State.Valid() {
		return fmt.Errorf("unknown state %q", v.State)
	}
	if err := v.Spec.Validate(); err != nil {
		return fmt.Errorf("embedded spec invalid: %v", err)
	}
	if v.Created.IsZero() {
		return fmt.Errorf("created timestamp missing")
	}
	switch v.State {
	case jobs.StateQueued:
		if v.Started != nil || v.Finished != nil {
			return fmt.Errorf("queued job carries started/finished timestamps")
		}
	case jobs.StateRunning:
		if v.Started == nil {
			return fmt.Errorf("running job has no started timestamp")
		}
		if v.Finished != nil {
			return fmt.Errorf("running job carries a finished timestamp")
		}
	case jobs.StateDone, jobs.StateFailed:
		if v.Started == nil || v.Finished == nil {
			return fmt.Errorf("%s job missing started/finished timestamps", v.State)
		}
	}
	if v.State == jobs.StateFailed && v.Error == "" {
		return fmt.Errorf("failed job has no error")
	}
	if want := v.Spec.Slots * int64(v.Spec.Terminals); v.TotalTerminalSlots != want {
		return fmt.Errorf("total_terminal_slots %d != slots*terminals %d",
			v.TotalTerminalSlots, want)
	}
	if v.TerminalSlots < 0 || v.TerminalSlots > v.TotalTerminalSlots {
		return fmt.Errorf("terminal_slots %d outside [0, %d]",
			v.TerminalSlots, v.TotalTerminalSlots)
	}
	if v.State == jobs.StateDone && v.TerminalSlots != v.TotalTerminalSlots {
		return fmt.Errorf("done job at %d/%d terminal-slots",
			v.TerminalSlots, v.TotalTerminalSlots)
	}
	return nil
}

// check enforces the invariants every well-formed report satisfies.
func check(r *locman.Report) error {
	if r.Schema != locman.ReportSchema {
		return fmt.Errorf("schema %d, want %d", r.Schema, locman.ReportSchema)
	}
	if r.Terminals <= 0 || r.Slots <= 0 {
		return fmt.Errorf("empty run shape: %d terminals, %d slots", r.Terminals, r.Slots)
	}
	if r.Delay.N != r.Calls-r.DroppedCalls {
		return fmt.Errorf("delay samples %d != calls %d - dropped %d",
			r.Delay.N, r.Calls, r.DroppedCalls)
	}
	if err := checkHist("delay_hist", r.DelayHist, r.Delay.N); err != nil {
		return err
	}
	if err := checkHist("recovery_hist", r.RecoveryHist, r.Recovery.N); err != nil {
		return err
	}
	var prevSlot int64
	for i, f := range r.Snapshots {
		if f.Slot <= prevSlot {
			return fmt.Errorf("snapshot %d at slot %d not after %d", i, f.Slot, prevSlot)
		}
		prevSlot = f.Slot
	}
	if n := len(r.Snapshots); n > 0 {
		last := r.Snapshots[n-1]
		if last.Slot != r.Slots {
			return fmt.Errorf("final snapshot at slot %d, want %d", last.Slot, r.Slots)
		}
		if last.Updates != r.Updates || last.Calls != r.Calls ||
			last.PolledCells != r.PolledCells || last.Events != r.Events {
			return fmt.Errorf("final snapshot counters diverge from report totals")
		}
	}
	return nil
}

// checkHist validates one histogram section against its summary count.
func checkHist(name string, h *locman.HistReport, n int64) error {
	if h == nil {
		return fmt.Errorf("%s missing", name)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum+h.Overflow != h.N {
		return fmt.Errorf("%s: buckets %d + overflow %d != n %d", name, sum, h.Overflow, h.N)
	}
	if h.N != n {
		return fmt.Errorf("%s: n %d != summary n %d", name, h.N, n)
	}
	if h.N > 0 && (h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max) {
		return fmt.Errorf("%s: quantiles not ordered: %v %v %v max %v",
			name, h.P50, h.P95, h.P99, h.Max)
	}
	return nil
}
