// Command schemacheck validates the project's machine-readable JSON
// documents on stdin against their published schemas. -kind selects the
// document type:
//
//	pcnsim -terminals 200 -slots 2000 -telemetry-every 500 -json | schemacheck
//	pcnctl get j000001 | schemacheck -kind job
//	schemacheck -kind journal < data/journal.ndjson
//	pcnctl query -by scenario -agg count | schemacheck -kind queryresult
//
// "report" (the default) is a pcnsim -json / pcnserve result document:
// it must decode into locman.Report with no unknown fields and satisfy
// the report's cross-field invariants. "job" is a pcnserve job document
// (jobs.View) as served by GET /api/v1/jobs/{id}. "journal" is a
// pcnserve durable job journal (checksummed NDJSON), validated
// strictly: every record must carry a valid checksum, a strictly
// increasing sequence number, and a well-formed payload — the check the
// service itself applies leniently (longest valid prefix) at boot.
// "queryresult" is a pcnserve POST /query response, checked for schema,
// positional key/value consistency, strictly ascending group order and
// count-sum consistency. "partial" is a cluster partial-result envelope
// (cluster.PartialDoc JSON): the wire schema, the envelope fields, and
// the embedded self-checking payload are all validated, including
// envelope↔payload agreement on the slice geometry. CI pipes smoke runs
// of the document kinds through it so any drift between the emitted
// documents and the published schemas fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/results"
	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schemacheck: ")

	kind := flag.String("kind", "report",
		"document kind on stdin: report (pcnsim -json), job (pcnserve job document), journal (pcnserve job journal), queryresult (pcnserve /query response), or partial (cluster partial-result envelope)")
	flag.Parse()

	if *kind == "journal" {
		// NDJSON, not a single document: validated record-by-record.
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		n, err := jobs.CheckJournal(data)
		if err != nil {
			log.Fatalf("journal invalid after %d good records: %v", n, err)
		}
		fmt.Printf("ok: journal schema %d, %d records, %d bytes\n", jobs.JournalSchema, n, len(data))
		return
	}

	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	switch *kind {
	case "report":
		var r locman.Report
		if err := dec.Decode(&r); err != nil {
			log.Fatalf("document does not match locman.Report: %v", err)
		}
		if err := check(&r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, %d terminals, %d slots, %d snapshots\n",
			r.Schema, r.Terminals, r.Slots, len(r.Snapshots))
	case "job":
		var v jobs.View
		if err := dec.Decode(&v); err != nil {
			log.Fatalf("document does not match jobs.View: %v", err)
		}
		if err := checkJob(&v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, job %s %s, %d/%d terminal-slots\n",
			v.Schema, v.ID, v.State, v.TerminalSlots, v.TotalTerminalSlots)
	case "queryresult":
		var q results.Response
		if err := dec.Decode(&q); err != nil {
			log.Fatalf("document does not match results.Response: %v", err)
		}
		if err := checkQueryResult(&q); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, %d/%d rows matched, %d groups × %d aggregates\n",
			q.Schema, q.RowsMatched, q.RowsScanned, len(q.Groups), len(q.Aggregates))
	case "partial":
		var d cluster.PartialDoc
		if err := dec.Decode(&d); err != nil {
			log.Fatalf("document does not match cluster.PartialDoc: %v", err)
		}
		p, err := checkPartial(&d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: schema %d, job %s node %s, shards [%d,%d) of %d, %d slots, seed %d\n",
			d.Schema, d.Job, d.Node, d.Lo, d.Hi, d.Shards, p.Slots, p.Seed)
	default:
		log.Fatalf("unknown -kind %q (valid kinds: report, job, journal, queryresult, partial)", *kind)
	}
}

// checkPartial enforces the invariants every well-formed cluster
// partial envelope satisfies: complete envelope identity fields, and a
// payload that decodes, self-validates and agrees with the envelope —
// the same gauntlet a coordinator runs before merging.
func checkPartial(d *cluster.PartialDoc) (*locman.Partial, error) {
	if d.Job == "" {
		return nil, fmt.Errorf("partial envelope without a job id")
	}
	if d.Node == "" {
		return nil, fmt.Errorf("partial envelope without a node id")
	}
	if d.SpecRev == "" {
		return nil, fmt.Errorf("partial envelope without a spec revision")
	}
	p, err := d.Decode()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// checkJob enforces the invariants every well-formed job document
// satisfies: a current schema, a known lifecycle state, a spec the
// service itself would accept, lifecycle timestamps consistent with the
// state, and progress within the run's bounds.
func checkJob(v *jobs.View) error {
	switch v.Schema {
	case jobs.SpecSchema, jobs.SpecSchemaV1:
	default:
		return fmt.Errorf("schema %d, want %d (or legacy %d)", v.Schema, jobs.SpecSchema, jobs.SpecSchemaV1)
	}
	if v.ID == "" {
		return fmt.Errorf("job id missing")
	}
	if !v.State.Valid() {
		return fmt.Errorf("unknown state %q", v.State)
	}
	if err := v.Spec.Validate(); err != nil {
		return fmt.Errorf("embedded spec invalid: %v", err)
	}
	if v.Created.IsZero() {
		return fmt.Errorf("created timestamp missing")
	}
	switch v.State {
	case jobs.StateQueued:
		if v.Started != nil || v.Finished != nil {
			return fmt.Errorf("queued job carries started/finished timestamps")
		}
	case jobs.StateRunning:
		if v.Started == nil {
			return fmt.Errorf("running job has no started timestamp")
		}
		if v.Finished != nil {
			return fmt.Errorf("running job carries a finished timestamp")
		}
	case jobs.StateDone, jobs.StateFailed:
		if v.Started == nil || v.Finished == nil {
			return fmt.Errorf("%s job missing started/finished timestamps", v.State)
		}
	}
	if v.State == jobs.StateFailed && v.Error == "" {
		return fmt.Errorf("failed job has no error")
	}
	if want := v.Spec.Slots * int64(v.Spec.Terminals); v.TotalTerminalSlots != want {
		return fmt.Errorf("total_terminal_slots %d != slots*terminals %d",
			v.TotalTerminalSlots, want)
	}
	if v.TerminalSlots < 0 || v.TerminalSlots > v.TotalTerminalSlots {
		return fmt.Errorf("terminal_slots %d outside [0, %d]",
			v.TerminalSlots, v.TotalTerminalSlots)
	}
	if v.State == jobs.StateDone && v.TerminalSlots != v.TotalTerminalSlots {
		return fmt.Errorf("done job at %d/%d terminal-slots",
			v.TerminalSlots, v.TotalTerminalSlots)
	}
	return nil
}

// checkQueryResult enforces the invariants every well-formed /query
// response satisfies: a current schema, known group-by columns with
// kind-consistent key values, well-formed aggregate labels, positional
// key/value widths, groups in strictly ascending key order (the
// determinism guarantee made visible), and count aggregates that sum
// back to rows_matched.
func checkQueryResult(q *results.Response) error {
	if q.Schema != results.QuerySchema {
		return fmt.Errorf("schema %d, want %d", q.Schema, results.QuerySchema)
	}
	if q.RowsMatched < 0 || q.RowsMatched > q.RowsScanned {
		return fmt.Errorf("rows_matched %d outside [0, rows_scanned %d]", q.RowsMatched, q.RowsScanned)
	}
	kinds := make([]results.Kind, len(q.GroupBy))
	for i, col := range q.GroupBy {
		k, err := results.ColumnKind(col)
		if err != nil {
			return fmt.Errorf("group_by[%d]: %v", i, err)
		}
		kinds[i] = k
	}
	if len(q.Aggregates) == 0 {
		return fmt.Errorf("no aggregates")
	}
	counts := make([]int64, len(q.Aggregates)) // summed count(...) values
	countIdx := -1
	for j, label := range q.Aggregates {
		a, err := parseLabel(label)
		if err != nil {
			return err
		}
		if a.Op == "count" {
			countIdx = j
		}
	}
	for gi, g := range q.Groups {
		if len(g.Key) != len(q.GroupBy) {
			return fmt.Errorf("group %d: key width %d != group_by width %d", gi, len(g.Key), len(q.GroupBy))
		}
		if len(g.Values) != len(q.Aggregates) {
			return fmt.Errorf("group %d: %d values != %d aggregates", gi, len(g.Values), len(q.Aggregates))
		}
		for i, kv := range g.Key {
			_, isStr := kv.(string)
			_, isNum := kv.(float64)
			if kinds[i] == results.KindString && !isStr {
				return fmt.Errorf("group %d: key %q is %T, want string", gi, q.GroupBy[i], kv)
			}
			if kinds[i] != results.KindString && !isNum {
				return fmt.Errorf("group %d: key %q is %T, want number", gi, q.GroupBy[i], kv)
			}
		}
		if gi > 0 && !keyLess(q.Groups[gi-1].Key, g.Key) {
			return fmt.Errorf("group %d: key %v not after %v (groups must sort strictly ascending)",
				gi, g.Key, q.Groups[gi-1].Key)
		}
		for j, v := range g.Values {
			if v == nil {
				continue // no finite result for this aggregate
			}
			n, ok := v.(float64)
			if !ok {
				return fmt.Errorf("group %d: value %d is %T, want number or null", gi, j, v)
			}
			if j == countIdx {
				if n < 1 || n != float64(int64(n)) {
					return fmt.Errorf("group %d: count %v is not a positive integer", gi, n)
				}
				counts[j] += int64(n)
			}
		}
	}
	if countIdx >= 0 && counts[countIdx] != int64(q.RowsMatched) {
		return fmt.Errorf("count aggregates sum to %d, want rows_matched %d",
			counts[countIdx], q.RowsMatched)
	}
	return nil
}

// parseLabel validates one aggregate label, "count" or "op(column)".
func parseLabel(label string) (results.Aggregate, error) {
	if label == "count" {
		return results.Aggregate{Op: "count"}, nil
	}
	open := -1
	for i := range label {
		if label[i] == '(' {
			open = i
			break
		}
	}
	if open <= 0 || label[len(label)-1] != ')' {
		return results.Aggregate{}, fmt.Errorf("aggregate label %q is not count or op(column)", label)
	}
	a := results.Aggregate{Op: label[:open], Column: label[open+1 : len(label)-1]}
	switch a.Op {
	case "mean", "min", "max", "p50", "p95", "p99":
	default:
		return results.Aggregate{}, fmt.Errorf("aggregate label %q has unknown op %q", label, a.Op)
	}
	if _, err := results.ColumnKind(a.Column); err != nil {
		return results.Aggregate{}, fmt.Errorf("aggregate label %q: %v", label, err)
	}
	return a, nil
}

// keyLess orders two group keys the way the service sorts them.
func keyLess(a, b []any) bool {
	for i := range a {
		switch av := a[i].(type) {
		case string:
			bv, _ := b[i].(string)
			if av != bv {
				return av < bv
			}
		case float64:
			bv, _ := b[i].(float64)
			if av != bv {
				return av < bv
			}
		}
	}
	return false
}

// check enforces the invariants every well-formed report satisfies.
func check(r *locman.Report) error {
	if r.Schema != locman.ReportSchema {
		return fmt.Errorf("schema %d, want %d", r.Schema, locman.ReportSchema)
	}
	if r.Terminals <= 0 || r.Slots <= 0 {
		return fmt.Errorf("empty run shape: %d terminals, %d slots", r.Terminals, r.Slots)
	}
	if r.Delay.N != r.Calls-r.DroppedCalls {
		return fmt.Errorf("delay samples %d != calls %d - dropped %d",
			r.Delay.N, r.Calls, r.DroppedCalls)
	}
	if err := checkHist("delay_hist", r.DelayHist, r.Delay.N); err != nil {
		return err
	}
	if err := checkHist("recovery_hist", r.RecoveryHist, r.Recovery.N); err != nil {
		return err
	}
	var prevSlot int64
	for i, f := range r.Snapshots {
		if f.Slot <= prevSlot {
			return fmt.Errorf("snapshot %d at slot %d not after %d", i, f.Slot, prevSlot)
		}
		prevSlot = f.Slot
	}
	if n := len(r.Snapshots); n > 0 {
		last := r.Snapshots[n-1]
		if last.Slot != r.Slots {
			return fmt.Errorf("final snapshot at slot %d, want %d", last.Slot, r.Slots)
		}
		if last.Updates != r.Updates || last.Calls != r.Calls ||
			last.PolledCells != r.PolledCells || last.Events != r.Events {
			return fmt.Errorf("final snapshot counters diverge from report totals")
		}
	}
	return nil
}

// checkHist validates one histogram section against its summary count.
func checkHist(name string, h *locman.HistReport, n int64) error {
	if h == nil {
		return fmt.Errorf("%s missing", name)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum+h.Overflow != h.N {
		return fmt.Errorf("%s: buckets %d + overflow %d != n %d", name, sum, h.Overflow, h.N)
	}
	if h.N != n {
		return fmt.Errorf("%s: n %d != summary n %d", name, h.N, n)
	}
	if h.N > 0 && (h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max) {
		return fmt.Errorf("%s: quantiles not ordered: %v %v %v max %v",
			name, h.P50, h.P95, h.P99, h.Max)
	}
	return nil
}
