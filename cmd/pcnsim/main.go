// Command pcnsim runs the discrete-event PCN system simulator — terminals,
// HLR, binary signalling messages, polling cycles — and compares the
// measured per-slot costs with the paper's analytical prediction:
//
//	pcnsim -model 2d -q 0.05 -c 0.01 -U 100 -V 10 -m 3 -terminals 50 -slots 200000
//	pcnsim -dynamic -hetero   # per-terminal online estimation demo
//	pcnsim -terminals 100000 -slots 1000 -shards 8   # sharded parallel engine
//	pcnsim -loss 0.2 -poll-loss 0.1 -reply-loss 0.1 -update-retries 3 \
//	       -outage 50000:60000   # fault injection + recovery subsystem
//
// The population is partitioned across -shards parallel simulation engines
// (default GOMAXPROCS); metrics are bit-identical for any shard count.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/locman"
)

// percent formats part as a percentage of whole, tolerating a zero whole.
func percent(part, whole int64) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// parseOutages parses the -outage flag: comma-separated start:end slot
// windows.
func parseOutages(s string) ([]locman.Outage, error) {
	var out []locman.Outage
	for _, w := range strings.Split(s, ",") {
		start, end, ok := strings.Cut(w, ":")
		if !ok {
			return nil, fmt.Errorf("outage window %q is not start:end", w)
		}
		a, err := strconv.ParseInt(strings.TrimSpace(start), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		b, err := strconv.ParseInt(strings.TrimSpace(end), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		out = append(out, locman.Outage{Start: a, End: b})
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnsim: ")

	model := flag.String("model", "2d", "mobility model: 1d or 2d")
	q := flag.Float64("q", 0.05, "per-slot movement probability")
	c := flag.Float64("c", 0.01, "per-slot call-arrival probability")
	u := flag.Float64("U", 100, "location-update cost")
	v := flag.Float64("V", 10, "per-cell polling cost")
	m := flag.Int("m", 3, "maximum paging delay in polling cycles (0 = unbounded)")
	terminals := flag.Int("terminals", 20, "number of mobile terminals")
	slots := flag.Int64("slots", 200_000, "time slots to simulate")
	threshold := flag.Int("d", -1, "static threshold (-1 = network-optimized)")
	dynamic := flag.Bool("dynamic", false, "per-terminal online estimation and re-optimization")
	hetero := flag.Bool("hetero", false, "heterogeneous population (per-terminal q varies ±50%)")
	loss := flag.Float64("loss", 0, "update-message loss probability (failure injection)")
	pollLoss := flag.Float64("poll-loss", 0, "downlink paging-poll loss probability")
	replyLoss := flag.Float64("reply-loss", 0, "uplink paging-reply loss probability")
	updateRetries := flag.Int("update-retries", 0,
		"acked-update retransmission budget (0 = fire-and-forget updates)")
	ackTimeout := flag.Int64("ack-timeout", 0,
		"first retransmission timeout in scheduler ticks (0 = default, doubles per retry)")
	pageRetries := flag.Int("page-retries", 0,
		"recovery paging rounds before a call is dropped (0 = default)")
	outages := flag.String("outage", "",
		"HLR outage windows in slots, e.g. 1000:2000 or 1000:2000,5000:5500")
	seed := flag.Uint64("seed", 1, "simulation seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0),
		"parallel simulation shards (results are identical for any shard count)")
	flag.Parse()

	var mdl locman.Model
	switch *model {
	case "1d":
		mdl = locman.OneDimensional
	case "2d":
		mdl = locman.TwoDimensional
	default:
		log.Fatalf("unknown model %q (want 1d or 2d)", *model)
	}
	cfg := locman.NetworkConfig{
		Config: locman.Config{
			Model:      mdl,
			MoveProb:   *q,
			CallProb:   *c,
			UpdateCost: *u,
			PollCost:   *v,
			MaxDelay:   *m,
		},
		Terminals: *terminals,
		Threshold: *threshold,
		Dynamic:   *dynamic,
		Faults: locman.FaultPlan{
			UpdateLoss:    *loss,
			PollLoss:      *pollLoss,
			ReplyLoss:     *replyLoss,
			UpdateRetries: *updateRetries,
			AckTimeout:    *ackTimeout,
			PageRetries:   *pageRetries,
		},
		Seed: *seed,
	}
	if *outages != "" {
		windows, err := parseOutages(*outages)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults.Outages = windows
	}
	if *hetero {
		base := *q
		cfg.PerTerminal = func(i int) (float64, float64) {
			f := 0.5 + float64(i%11)/10.0 // 0.5x .. 1.5x
			return base * f, *c
		}
	}

	metrics, err := locman.SimulateNetworkSharded(cfg, *slots, *shards)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terminals        %d\n", metrics.Terminals)
	fmt.Printf("slots            %d (%d scheduler events)\n", metrics.Slots, metrics.Events)
	fmt.Printf("updates          %d (%d bytes)\n", metrics.Updates, metrics.UpdateBytes)
	fmt.Printf("calls            %d (replies: %d bytes)\n", metrics.Calls, metrics.ReplyBytes)
	fmt.Printf("polled cells     %d (%d bytes)\n", metrics.PolledCells, metrics.PollBytes)
	fmt.Printf("paging failures  %d\n", metrics.NotFound)
	fmt.Printf("lost updates     %d (%s of sent)\n", metrics.LostUpdates,
		percent(metrics.LostUpdates, metrics.Updates))
	fmt.Printf("lost polls       %d   lost replies %d\n", metrics.LostPolls, metrics.LostReplies)
	fmt.Printf("retransmissions  %d (acks: %d, %d bytes)\n",
		metrics.Retransmissions, metrics.Acks, metrics.AckBytes)
	fmt.Printf("fallback pages   %d (%s of calls)   re-poll rounds %d\n",
		metrics.FallbackCalls, percent(metrics.FallbackCalls, metrics.Calls), metrics.RePolls)
	fmt.Printf("dropped calls    %d (%s of calls)\n", metrics.DroppedCalls,
		percent(metrics.DroppedCalls, metrics.Calls))
	fmt.Printf("outage deferred  %d registrations\n", metrics.OutageDeferred)
	if metrics.Recovery.N() > 0 {
		fmt.Printf("recovery latency %.2f slots mean, %.0f worst (%d episodes)\n",
			metrics.Recovery.Mean(), metrics.Recovery.Max(), metrics.Recovery.N())
	}
	fmt.Printf("mean delay       %.3f polling cycles (worst observed %.0f)\n",
		metrics.Delay.Mean(), metrics.Delay.Max())
	fmt.Printf("update cost      %.6f per slot per terminal\n", metrics.UpdateCost)
	fmt.Printf("paging cost      %.6f per slot per terminal\n", metrics.PagingCost)
	fmt.Printf("total cost       %.6f per slot per terminal\n", metrics.TotalCost)

	// Threshold usage histogram.
	ds := make([]int, 0, len(metrics.ThresholdSlots))
	for d := range metrics.ThresholdSlots {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	fmt.Printf("threshold usage ")
	for _, d := range ds {
		fmt.Printf("  d=%d: %.1f%%", d,
			100*float64(metrics.ThresholdSlots[d])/(float64(metrics.Slots)*float64(metrics.Terminals)))
	}
	fmt.Println()

	// Analytical comparison for the homogeneous static case.
	if !*dynamic && !*hetero {
		d := *threshold
		if d < 0 {
			res, err := locman.Optimize(cfg.Config)
			if err != nil {
				log.Fatal(err)
			}
			d = res.Best.Threshold
		}
		want, err := locman.Evaluate(cfg.Config, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nanalytical C_T(d=%d) = %.6f  (simulated %.6f, rel. diff %+.2f%%)\n",
			d, want.Total, metrics.TotalCost, 100*(metrics.TotalCost-want.Total)/want.Total)
		fmt.Printf("analytical E[delay]  = %.3f  (simulated %.3f)\n",
			want.ExpectedDelay, metrics.Delay.Mean())
	}
}
