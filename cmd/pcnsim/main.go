// Command pcnsim runs the discrete-event PCN system simulator — terminals,
// HLR, binary signalling messages, polling cycles — and compares the
// measured per-slot costs with the paper's analytical prediction:
//
//	pcnsim -model 2d -q 0.05 -c 0.01 -U 100 -V 10 -m 3 -terminals 50 -slots 200000
//	pcnsim -dynamic -hetero   # per-terminal online estimation demo
//	pcnsim -terminals 100000 -slots 1000 -shards 8   # sharded parallel engine
//
// The population is partitioned across -shards parallel simulation engines
// (default GOMAXPROCS); metrics are bit-identical for any shard count.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"

	"repro/locman"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnsim: ")

	model := flag.String("model", "2d", "mobility model: 1d or 2d")
	q := flag.Float64("q", 0.05, "per-slot movement probability")
	c := flag.Float64("c", 0.01, "per-slot call-arrival probability")
	u := flag.Float64("U", 100, "location-update cost")
	v := flag.Float64("V", 10, "per-cell polling cost")
	m := flag.Int("m", 3, "maximum paging delay in polling cycles (0 = unbounded)")
	terminals := flag.Int("terminals", 20, "number of mobile terminals")
	slots := flag.Int64("slots", 200_000, "time slots to simulate")
	threshold := flag.Int("d", -1, "static threshold (-1 = network-optimized)")
	dynamic := flag.Bool("dynamic", false, "per-terminal online estimation and re-optimization")
	hetero := flag.Bool("hetero", false, "heterogeneous population (per-terminal q varies ±50%)")
	loss := flag.Float64("loss", 0, "update-message loss probability (failure injection)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0),
		"parallel simulation shards (results are identical for any shard count)")
	flag.Parse()

	var mdl locman.Model
	switch *model {
	case "1d":
		mdl = locman.OneDimensional
	case "2d":
		mdl = locman.TwoDimensional
	default:
		log.Fatalf("unknown model %q (want 1d or 2d)", *model)
	}
	cfg := locman.NetworkConfig{
		Config: locman.Config{
			Model:      mdl,
			MoveProb:   *q,
			CallProb:   *c,
			UpdateCost: *u,
			PollCost:   *v,
			MaxDelay:   *m,
		},
		Terminals:      *terminals,
		Threshold:      *threshold,
		Dynamic:        *dynamic,
		UpdateLossProb: *loss,
		Seed:           *seed,
	}
	if *hetero {
		base := *q
		cfg.PerTerminal = func(i int) (float64, float64) {
			f := 0.5 + float64(i%11)/10.0 // 0.5x .. 1.5x
			return base * f, *c
		}
	}

	metrics, err := locman.SimulateNetworkSharded(cfg, *slots, *shards)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terminals        %d\n", metrics.Terminals)
	fmt.Printf("slots            %d (%d scheduler events)\n", metrics.Slots, metrics.Events)
	fmt.Printf("updates          %d (%d bytes)\n", metrics.Updates, metrics.UpdateBytes)
	fmt.Printf("calls            %d (replies: %d bytes)\n", metrics.Calls, metrics.ReplyBytes)
	fmt.Printf("polled cells     %d (%d bytes)\n", metrics.PolledCells, metrics.PollBytes)
	fmt.Printf("paging failures  %d\n", metrics.NotFound)
	if *loss > 0 {
		fmt.Printf("lost updates     %d (%.1f%% of sent)\n", metrics.LostUpdates,
			100*float64(metrics.LostUpdates)/float64(metrics.Updates))
		fmt.Printf("fallback pages   %d (%.2f%% of calls)\n", metrics.FallbackCalls,
			100*float64(metrics.FallbackCalls)/float64(metrics.Calls))
	}
	fmt.Printf("mean delay       %.3f polling cycles (worst observed %.0f)\n",
		metrics.Delay.Mean(), metrics.Delay.Max())
	fmt.Printf("update cost      %.6f per slot per terminal\n", metrics.UpdateCost)
	fmt.Printf("paging cost      %.6f per slot per terminal\n", metrics.PagingCost)
	fmt.Printf("total cost       %.6f per slot per terminal\n", metrics.TotalCost)

	// Threshold usage histogram.
	ds := make([]int, 0, len(metrics.ThresholdSlots))
	for d := range metrics.ThresholdSlots {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	fmt.Printf("threshold usage ")
	for _, d := range ds {
		fmt.Printf("  d=%d: %.1f%%", d,
			100*float64(metrics.ThresholdSlots[d])/(float64(metrics.Slots)*float64(metrics.Terminals)))
	}
	fmt.Println()

	// Analytical comparison for the homogeneous static case.
	if !*dynamic && !*hetero {
		d := *threshold
		if d < 0 {
			res, err := locman.Optimize(cfg.Config)
			if err != nil {
				log.Fatal(err)
			}
			d = res.Best.Threshold
		}
		want, err := locman.Evaluate(cfg.Config, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nanalytical C_T(d=%d) = %.6f  (simulated %.6f, rel. diff %+.2f%%)\n",
			d, want.Total, metrics.TotalCost, 100*(metrics.TotalCost-want.Total)/want.Total)
		fmt.Printf("analytical E[delay]  = %.3f  (simulated %.3f)\n",
			want.ExpectedDelay, metrics.Delay.Mean())
	}
}
