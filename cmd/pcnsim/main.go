// Command pcnsim runs the discrete-event PCN system simulator — terminals,
// HLR, binary signalling messages, polling cycles — and compares the
// measured per-slot costs with the paper's analytical prediction:
//
//	pcnsim -model 2d -q 0.05 -c 0.01 -U 100 -V 10 -m 3 -terminals 50 -slots 200000
//	pcnsim -dynamic -hetero   # per-terminal online estimation demo
//	pcnsim -terminals 100000 -slots 1000 -shards 8   # sharded parallel engine
//	pcnsim -scheme timer -scheme-param 500      # timer-based updates
//	pcnsim -scheme movement -scheme-param 6     # movement-based updates
//	pcnsim -scenario rush-hour-hotspot          # registered named scenario
//	pcnsim -scenarios                           # list the registry
//	pcnsim -loss 0.2 -poll-loss 0.1 -reply-loss 0.1 -update-retries 3 \
//	       -outage 50000:60000   # fault injection + recovery subsystem
//	pcnsim -telemetry-every 10000 -json   # machine-readable run report
//	pcnsim -pprof localhost:6060          # live progress + profiling
//
// A -scenario fixes the model half of the run (grid, probabilities,
// costs, delay bound, update scheme, fleet, faults) from the shared
// locman registry — the same names pcnctl and the job service resolve —
// while the run shape (-terminals, -slots, -seed, -shards, -engine,
// -telemetry-every, -d) stays with the flags; model flags set alongside
// it are rejected rather than silently overridden.
//
// The population is partitioned across -shards parallel simulation engines
// (default GOMAXPROCS); metrics are bit-identical for any shard count.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/locman"
)

// percent formats part as a percentage of whole, tolerating a zero whole.
func percent(part, whole int64) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// parseOutages parses the -outage flag: comma-separated start:end slot
// windows. Windows must be well-formed up front — non-negative start,
// end strictly after start — matching the FaultPlan validation so a bad
// flag fails before any simulation work starts.
func parseOutages(s string) ([]locman.Outage, error) {
	var out []locman.Outage
	for _, w := range strings.Split(s, ",") {
		start, end, ok := strings.Cut(w, ":")
		if !ok {
			return nil, fmt.Errorf("outage window %q is not start:end", w)
		}
		a, err := strconv.ParseInt(strings.TrimSpace(start), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		b, err := strconv.ParseInt(strings.TrimSpace(end), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage window %q: %v", w, err)
		}
		if a < 0 {
			return nil, fmt.Errorf("outage window %q starts at a negative slot", w)
		}
		if b <= a {
			return nil, fmt.Errorf("outage window %q is inverted or empty", w)
		}
		out = append(out, locman.Outage{Start: a, End: b})
	}
	return out, nil
}

// printReport writes the human-readable run summary. Lost updates are
// reported against update transmission attempts (first sends and
// retransmissions alike — the same population the loss probability
// applies to), so the percentage is a direct estimate of the injected
// loss rate and can never exceed 100%.
func printReport(w io.Writer, r *locman.Report) {
	fmt.Fprintf(w, "terminals        %d\n", r.Terminals)
	fmt.Fprintf(w, "slots            %d (%d scheduler events)\n", r.Slots, r.Events)
	fmt.Fprintf(w, "updates          %d (%d bytes)\n", r.Updates, r.UpdateBytes)
	fmt.Fprintf(w, "calls            %d (replies: %d bytes)\n", r.Calls, r.ReplyBytes)
	fmt.Fprintf(w, "polled cells     %d (%d bytes)\n", r.PolledCells, r.PollBytes)
	fmt.Fprintf(w, "paging failures  %d\n", r.NotFound)
	fmt.Fprintf(w, "lost updates     %d (%s of %d attempts)\n", r.LostUpdates,
		percent(r.LostUpdates, r.Updates), r.Updates)
	fmt.Fprintf(w, "lost polls       %d   lost replies %d\n", r.LostPolls, r.LostReplies)
	fmt.Fprintf(w, "retransmissions  %d (acks: %d, %d bytes)\n",
		r.Retransmissions, r.Acks, r.AckBytes)
	fmt.Fprintf(w, "fallback pages   %d (%s of calls)   re-poll rounds %d\n",
		r.FallbackCalls, percent(r.FallbackCalls, r.Calls), r.RePolls)
	fmt.Fprintf(w, "dropped calls    %d (%s of calls)\n", r.DroppedCalls,
		percent(r.DroppedCalls, r.Calls))
	fmt.Fprintf(w, "outage deferred  %d registrations\n", r.OutageDeferred)
	if r.Recovery.N > 0 {
		fmt.Fprintf(w, "recovery latency %.2f slots mean, %.0f worst (%d episodes)\n",
			r.Recovery.Mean, r.Recovery.Max, r.Recovery.N)
	}
	if h := r.RecoveryHist; h != nil && h.N > 0 {
		fmt.Fprintf(w, "recovery tail    p50 %.0f  p95 %.0f  p99 %.0f slots\n", h.P50, h.P95, h.P99)
	}
	fmt.Fprintf(w, "mean delay       %.3f polling cycles (worst observed %.0f)\n",
		r.Delay.Mean, r.Delay.Max)
	if h := r.DelayHist; h != nil && h.N > 0 {
		fmt.Fprintf(w, "delay tail       p50 %.0f  p95 %.0f  p99 %.0f cycles\n", h.P50, h.P95, h.P99)
	}
	fmt.Fprintf(w, "update cost      %.6f per slot per terminal\n", r.UpdateCost)
	fmt.Fprintf(w, "paging cost      %.6f per slot per terminal\n", r.PagingCost)
	fmt.Fprintf(w, "total cost       %.6f per slot per terminal\n", r.TotalCost)

	// Threshold usage histogram; omitted entirely when nothing was
	// recorded rather than printing a bare label.
	if len(r.ThresholdSlots) > 0 {
		ds := make([]int, 0, len(r.ThresholdSlots))
		for d := range r.ThresholdSlots {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		fmt.Fprintf(w, "threshold usage ")
		for _, d := range ds {
			fmt.Fprintf(w, "  d=%d: %.1f%%", d,
				100*float64(r.ThresholdSlots[d])/(float64(r.Slots)*float64(r.Terminals)))
		}
		fmt.Fprintln(w)
	}
}

// scenarioFlagConflicts lists (in flag spelling, with the dash) the
// model-half flags present in set — the flags a -scenario fixes and
// therefore refuses to combine with. Run-shape flags (-terminals,
// -slots, -seed, -shards, -engine, -telemetry-every, -d, -json,
// -pprof) never conflict.
func scenarioFlagConflicts(set map[string]bool) []string {
	var conflicts []string
	for _, name := range []string{
		"model", "q", "c", "U", "V", "m", "dynamic", "hetero",
		"scheme", "scheme-param", "loss", "poll-loss", "reply-loss",
		"update-retries", "ack-timeout", "page-retries", "outage",
	} {
		if set[name] {
			conflicts = append(conflicts, "-"+name)
		}
	}
	return conflicts
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcnsim: ")

	model := flag.String("model", "2d", "mobility model: 1d or 2d")
	q := flag.Float64("q", 0.05, "per-slot movement probability")
	c := flag.Float64("c", 0.01, "per-slot call-arrival probability")
	u := flag.Float64("U", 100, "location-update cost")
	v := flag.Float64("V", 10, "per-cell polling cost")
	m := flag.Int("m", 3, "maximum paging delay in polling cycles (0 = unbounded)")
	terminals := flag.Int("terminals", 20, "number of mobile terminals")
	slots := flag.Int64("slots", 200_000, "time slots to simulate")
	threshold := flag.Int("d", -1, "static threshold (-1 = network-optimized)")
	dynamic := flag.Bool("dynamic", false, "per-terminal online estimation and re-optimization")
	hetero := flag.Bool("hetero", false, "heterogeneous population (per-terminal q varies ±50%)")
	loss := flag.Float64("loss", 0, "update-message loss probability (failure injection)")
	pollLoss := flag.Float64("poll-loss", 0, "downlink paging-poll loss probability")
	replyLoss := flag.Float64("reply-loss", 0, "uplink paging-reply loss probability")
	updateRetries := flag.Int("update-retries", 0,
		"acked-update retransmission budget (0 = fire-and-forget updates)")
	ackTimeout := flag.Int64("ack-timeout", 0,
		"first retransmission timeout in scheduler ticks (0 = default, doubles per retry)")
	pageRetries := flag.Int("page-retries", 0,
		"recovery paging rounds before a call is dropped (0 = default)")
	outages := flag.String("outage", "",
		"HLR outage windows in slots, e.g. 1000:2000 or 1000:2000,5000:5500")
	seed := flag.Uint64("seed", 1, "simulation seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0),
		"parallel simulation shards (results are identical for any shard count)")
	jsonOut := flag.Bool("json", false,
		"emit the run report as a schema-stable JSON document instead of text")
	telemetryEvery := flag.Int64("telemetry-every", 0,
		"capture a telemetry snapshot frame every N slots (0 = off)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof and expvar live shard progress on this address")
	engineName := flag.String("engine", "fast",
		"simulation engine: "+strings.Join(locman.EngineNames(), " or ")+
			" (slot-batched vs reference event-driven); results are bit-identical")
	schemeName := flag.String("scheme", "distance",
		"location-update scheme: "+strings.Join(locman.UpdateSchemeNames(), ", "))
	schemeParam := flag.Int64("scheme-param", 0,
		"update-scheme parameter: timer period or movement count in slots (distance takes none; its threshold is -d)")
	scenario := flag.String("scenario", "",
		"run a registered scenario: "+strings.Join(locman.ScenarioNames(), ", ")+
			" (fixes the model; run-shape flags still apply)")
	listScenarios := flag.Bool("scenarios", false,
		"list the registered scenarios and exit")
	flag.Parse()

	if *listScenarios {
		for _, sc := range locman.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	engine, err := locman.EngineByName(*engineName)
	if err != nil {
		log.Fatalf("-engine: %v", err)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var cfg locman.NetworkConfig
	if *scenario != "" {
		// The scenario fixes the model half of the run; a model flag set
		// alongside it is a contradiction, not an override.
		if conflicts := scenarioFlagConflicts(set); len(conflicts) > 0 {
			log.Fatalf("-scenario %s fixes the model; drop the conflicting flag(s): %s",
				*scenario, strings.Join(conflicts, ", "))
		}
		sc, err := locman.ScenarioByName(*scenario)
		if err != nil {
			log.Fatalf("-scenario: %v", err)
		}
		cfg = sc.Network()
		cfg.Terminals = *terminals
		cfg.SnapshotEvery = *telemetryEvery
		cfg.Seed = *seed
		cfg.Engine = engine
		if set["d"] {
			cfg.Threshold = *threshold
		}
	} else {
		var mdl locman.Model
		switch *model {
		case "1d":
			mdl = locman.OneDimensional
		case "2d":
			mdl = locman.TwoDimensional
		default:
			log.Fatalf("unknown model %q (want 1d or 2d)", *model)
		}
		scheme, err := locman.UpdateSchemeByName(*schemeName, *schemeParam)
		if err != nil {
			log.Fatalf("-scheme: %v", err)
		}
		cfg = locman.NetworkConfig{
			Config: locman.Config{
				Model:      mdl,
				MoveProb:   *q,
				CallProb:   *c,
				UpdateCost: *u,
				PollCost:   *v,
				MaxDelay:   *m,
			},
			Terminals: *terminals,
			Threshold: *threshold,
			Dynamic:   *dynamic,
			Scheme:    scheme,
			Faults: locman.FaultPlan{
				UpdateLoss:    *loss,
				PollLoss:      *pollLoss,
				ReplyLoss:     *replyLoss,
				UpdateRetries: *updateRetries,
				AckTimeout:    *ackTimeout,
				PageRetries:   *pageRetries,
			},
			SnapshotEvery: *telemetryEvery,
			Seed:          *seed,
			Engine:        engine,
		}
		if *outages != "" {
			windows, err := parseOutages(*outages)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Faults.Outages = windows
		}
		if *hetero {
			// The historical ±50% movement-probability ramp, now expressed
			// through the same declarative fleet the jobs Spec carries.
			cfg.Fleet = locman.HeteroFleet(*q, *c)
		}
	}
	if *pprofAddr != "" {
		prog := &locman.Progress{}
		cfg.Progress = prog
		expvar.Publish("pcnsim.progress", expvar.Func(func() any {
			return prog.Snapshot()
		}))
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving pprof and expvar on http://%s", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				log.Print(err)
			}
		}()
	}

	metrics, err := locman.SimulateNetworkSharded(cfg, *slots, *shards)
	if err != nil {
		log.Fatal(err)
	}
	report := locman.NewReport(metrics)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		return
	}

	printReport(os.Stdout, report)

	// Analytical comparison for the homogeneous static distance case; the
	// paper's cost model prices neither heterogeneous populations nor the
	// timer/movement triggers, and scenarios may carry any of those.
	if !*dynamic && !*hetero && *scenario == "" && *schemeName == "distance" {
		d := *threshold
		if d < 0 {
			res, err := locman.Optimize(cfg.Config)
			if err != nil {
				log.Fatal(err)
			}
			d = res.Best.Threshold
		}
		want, err := locman.Evaluate(cfg.Config, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nanalytical C_T(d=%d) = %.6f  (simulated %.6f, rel. diff %+.2f%%)\n",
			d, want.Total, metrics.TotalCost, 100*(metrics.TotalCost-want.Total)/want.Total)
		fmt.Printf("analytical E[delay]  = %.3f  (simulated %.3f)\n",
			want.ExpectedDelay, metrics.Delay.Mean())
	}
}
