package main

import (
	"strings"
	"testing"

	"repro/locman"
)

func TestParseOutages(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
		want []locman.Outage
		err  string
	}{
		{"single", "100:200", []locman.Outage{{Start: 100, End: 200}}, ""},
		{"multiple", "100:200,5000:5500",
			[]locman.Outage{{Start: 100, End: 200}, {Start: 5000, End: 5500}}, ""},
		{"spaces", " 1 : 2 ", []locman.Outage{{Start: 1, End: 2}}, ""},
		{"zero start", "0:10", []locman.Outage{{Start: 0, End: 10}}, ""},
		{"no colon", "100", nil, "not start:end"},
		{"garbage start", "x:200", nil, "invalid syntax"},
		{"garbage end", "100:y", nil, "invalid syntax"},
		{"inverted", "200:100", nil, "inverted or empty"},
		{"empty window", "100:100", nil, "inverted or empty"},
		{"negative start", "-5:10", nil, "negative slot"},
		{"negative both", "-10:-5", nil, "negative slot"},
		{"bad second window", "100:200,300:250", nil, "inverted or empty"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseOutages(tc.in)
			if tc.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("err = %v, want containing %q", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("window %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestScenarioFlagConflicts checks the -scenario guard: every model
// flag is caught, in flag spelling, and the run-shape flags pass.
func TestScenarioFlagConflicts(t *testing.T) {
	if got := scenarioFlagConflicts(map[string]bool{}); len(got) != 0 {
		t.Errorf("empty set conflicts: %v", got)
	}
	runShape := map[string]bool{
		"terminals": true, "slots": true, "seed": true, "shards": true,
		"engine": true, "telemetry-every": true, "d": true, "json": true,
	}
	if got := scenarioFlagConflicts(runShape); len(got) != 0 {
		t.Errorf("run-shape flags reported as conflicts: %v", got)
	}
	model := map[string]bool{"q": true, "scheme": true, "hetero": true, "outage": true}
	got := scenarioFlagConflicts(model)
	want := []string{"-q", "-hetero", "-scheme", "-outage"}
	if len(got) != len(want) {
		t.Fatalf("conflicts = %v, want %v", got, want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			found = found || g == w
		}
		if !found {
			t.Errorf("conflicts %v missing %s", got, w)
		}
	}
}

func TestPercent(t *testing.T) {
	for _, tc := range []struct {
		part, whole int64
		want        string
	}{
		{0, 0, "0.00%"},
		{5, 0, "0.00%"},
		{1, 4, "25.00%"},
		{4, 4, "100.00%"},
		{1, 3, "33.33%"},
	} {
		if got := percent(tc.part, tc.whole); got != tc.want {
			t.Errorf("percent(%d, %d) = %q, want %q", tc.part, tc.whole, got, tc.want)
		}
	}
}

// runReport produces a real report from a small deterministic faulty run,
// so printReport is exercised against engine-shaped data.
func runReport(t *testing.T) *locman.Report {
	t.Helper()
	m, err := locman.SimulateNetworkSharded(locman.NetworkConfig{
		Config: locman.Config{
			Model: locman.TwoDimensional, MoveProb: 0.15, CallProb: 0.03,
			UpdateCost: 20, PollCost: 1, MaxDelay: 3,
		},
		Terminals: 6,
		Threshold: 2,
		Faults:    locman.FaultPlan{UpdateLoss: 0.3, UpdateRetries: 2, PageRetries: 2},
		Seed:      11,
	}, 2_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	return locman.NewReport(m)
}

// TestPrintReportLostUpdates checks the lost-updates line is labelled and
// computed against transmission attempts — the population the loss
// probability applies to — so the printed rate tracks the injected one.
func TestPrintReportLostUpdates(t *testing.T) {
	r := runReport(t)
	if r.LostUpdates == 0 {
		t.Fatal("run injected no losses")
	}
	var b strings.Builder
	printReport(&b, r)
	out := b.String()
	want := "(" + percent(r.LostUpdates, r.Updates) + " of "
	line := lineContaining(out, "lost updates")
	if line == "" || !strings.Contains(line, want) || !strings.Contains(line, "attempts") {
		t.Errorf("lost-updates line %q does not report against attempts (want %q)", line, want)
	}
}

// TestPrintReportThresholdUsage checks the threshold-usage line appears
// exactly when there is usage to show.
func TestPrintReportThresholdUsage(t *testing.T) {
	r := runReport(t)
	var with strings.Builder
	printReport(&with, r)
	if !strings.Contains(with.String(), "threshold usage") {
		t.Error("threshold usage line missing from a run that recorded usage")
	}

	r.ThresholdSlots = nil
	var without strings.Builder
	printReport(&without, r)
	if strings.Contains(without.String(), "threshold usage") {
		t.Error("empty threshold usage printed a bare label line")
	}
}

// TestPrintReportQuantiles checks the tail-quantile lines follow the
// histograms: present with samples, absent without.
func TestPrintReportQuantiles(t *testing.T) {
	r := runReport(t)
	var b strings.Builder
	printReport(&b, r)
	if !strings.Contains(b.String(), "delay tail") {
		t.Error("delay tail line missing despite samples")
	}

	r.DelayHist = nil
	r.RecoveryHist = nil
	var bare strings.Builder
	printReport(&bare, r)
	if strings.Contains(bare.String(), "delay tail") || strings.Contains(bare.String(), "recovery tail") {
		t.Error("tail lines printed without histograms")
	}
}

// lineContaining returns the first output line containing substr.
func lineContaining(out, substr string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}
