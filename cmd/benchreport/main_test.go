package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRuns builds a plausible pair of engine measurements without running
// real benchmarks (which would take minutes); the report-assembly and
// validation logic is what these tests pin down.
func fakeRuns(p Params) []Run {
	mk := func(engine string, terminals int, ns float64) Run {
		tslots := float64(terminals) * float64(p.Slots)
		return Run{
			Engine:              engine,
			Terminals:           terminals,
			Shards:              p.Shards,
			Slots:               p.Slots,
			NsPerTerminalSlot:   ns,
			TerminalSlotsPerSec: 1e9 / ns,
			AllocsPerOp:         int64(tslots / 100),
			BytesPerOp:          int64(tslots / 10),
		}
	}
	return []Run{
		mk("fast", 10_000, 13), mk("fast", 100_000, 13.5),
		mk("des", 10_000, 40), mk("des", 100_000, 45),
	}
}

func fakeReport() *Report {
	p := defaultParams(256, 1)
	hot := HotLoop{NsPerTerminalSlot: 25}
	return buildReport(p, fakeRuns(p), hot)
}

// TestBuildReportSpeedups checks the derived speedups: one per population,
// the ratio of the engines' throughputs.
func TestBuildReportSpeedups(t *testing.T) {
	rep := fakeReport()
	if len(rep.Speedups) != 2 {
		t.Fatalf("got %d speedups, want 2", len(rep.Speedups))
	}
	want := map[int]float64{10_000: 40.0 / 13, 100_000: 45.0 / 13.5}
	for _, s := range rep.Speedups {
		w, ok := want[s.Terminals]
		if !ok {
			t.Fatalf("unexpected speedup population %d", s.Terminals)
		}
		if diff := s.FastOverDES - w; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("speedup at %d terminals = %v, want %v", s.Terminals, s.FastOverDES, w)
		}
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
}

// TestValidateReport walks the invariants: the assembled report passes,
// and each single-field corruption is caught with a diagnostic naming it.
func TestValidateReport(t *testing.T) {
	if err := validateReport(fakeReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "bench-engine/v0" }, "schema"},
		{"no runs", func(r *Report) { r.Runs = nil }, "no runs"},
		{"unknown engine", func(r *Report) { r.Runs[0].Engine = "warp" }, "unknown engine"},
		{"zero throughput", func(r *Report) { r.Runs[1].TerminalSlotsPerSec = 0 }, "non-positive"},
		{"duplicate run", func(r *Report) { r.Runs[1] = r.Runs[0] }, "duplicate"},
		{"orphan speedup", func(r *Report) { r.Speedups[0].Terminals = 777 }, "no run pair"},
		{"inconsistent speedup", func(r *Report) { r.Speedups[0].FastOverDES *= 2 }, "inconsistent"},
		{"allocating hot loop", func(r *Report) { r.HotLoop.AllocsPerOp = 3 }, "must not allocate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := fakeReport()
			tc.mutate(rep)
			err := validateReport(rep)
			if err == nil {
				t.Fatal("corrupted report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateFileRoundTrip writes the assembled report and validates it
// through the CLI path, then checks strict decoding rejects unknown
// fields.
func TestValidateFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := writeReport(path, fakeReport()); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatalf("round-trip validation failed: %v", err)
	}
	if !strings.Contains(out.String(), "valid bench-engine/v1 report") {
		t.Errorf("confirmation missing from %q", out.String())
	}

	// An extension field must fail strict decoding.
	var doc map[string]any
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["vendor_extension"] = true
	data, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}, &strings.Builder{}); err == nil {
		t.Error("report with unknown field validated")
	}
}

// TestRunFlagValidation is the table-driven error-path coverage for the
// CLI surface.
func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"bad terminals", []string{"-terminals", "10,x"}, "terminals"},
		{"negative terminals", []string{"-terminals", "-5"}, "terminals"},
		{"zero slots", []string{"-slots", "0"}, "slots"},
		{"zero reps", []string{"-reps", "0"}, "reps"},
		{"missing validate file", []string{"-validate", "no/such/report.json"}, "no such file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &strings.Builder{})
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTerminals pins the list parser.
func TestParseTerminals(t *testing.T) {
	got, err := parseTerminals("10000, 100000,1000000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10_000 || got[1] != 100_000 || got[2] != 1_000_000 {
		t.Errorf("parseTerminals = %v", got)
	}
	if _, err := parseTerminals(""); err == nil {
		t.Error("empty list accepted")
	}
}
