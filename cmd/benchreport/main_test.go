package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRuns builds a plausible set of engine measurements without running
// real benchmarks (which would take minutes); the report-assembly and
// validation logic is what these tests pin down.
func fakeRuns(p Params) []Run {
	mk := func(engine string, terminals int, ns float64, hotAllocs int64) Run {
		tslots := float64(terminals) * float64(p.Slots)
		setup := int64(tslots / 100)
		return Run{
			Engine:              engine,
			Terminals:           terminals,
			Shards:              p.Shards,
			Slots:               p.Slots,
			NsPerTerminalSlot:   ns,
			TerminalSlotsPerSec: 1e9 / ns,
			AllocsPerOp:         setup + hotAllocs,
			BytesPerOp:          int64(tslots / 10),
			SetupAllocsPerOp:    setup,
			HotAllocsPerOp:      hotAllocs,
		}
	}
	return []Run{
		mk("fast", 10_000, 13, 0), mk("fast", 100_000, 13.5, 0),
		mk("cols", 10_000, 9, 0), mk("cols", 100_000, 8.5, 0),
		mk("des", 10_000, 40, 900), mk("des", 100_000, 45, 9000),
	}
}

func fakeHotLoops() []HotLoop {
	return []HotLoop{
		{Engine: "fast", NsPerTerminalSlot: 25},
		{Engine: "cols", NsPerTerminalSlot: 18},
	}
}

func fakeReport() *Report {
	p := defaultParams(256, 1)
	return buildReport(p, fakeRuns(p), fakeHotLoops())
}

// fakeV1Document is a legacy bench-engine/v1 report exactly as the v1
// writer produced it: fast and des runs without the allocation split, a
// single untagged hot_loop object, speedups with only the fast ratio.
// The compat read path must keep accepting it verbatim.
const fakeV1Document = `{
  "schema": "bench-engine/v1",
  "params": {
    "model": "2d",
    "q": 0.2,
    "c": 0.03,
    "update_cost": 100,
    "poll_cost": 1,
    "max_delay": 3,
    "threshold": 3,
    "slots": 256,
    "shards": 1
  },
  "runs": [
    {
      "engine": "fast",
      "terminals": 10000,
      "shards": 1,
      "slots": 256,
      "ns_per_terminal_slot": 13,
      "terminal_slots_per_sec": 76923076.9,
      "allocs_per_op": 10000,
      "bytes_per_op": 800000
    },
    {
      "engine": "des",
      "terminals": 10000,
      "shards": 1,
      "slots": 256,
      "ns_per_terminal_slot": 39,
      "terminal_slots_per_sec": 25641025.6,
      "allocs_per_op": 30000,
      "bytes_per_op": 2400000
    }
  ],
  "hot_loop": {
    "ns_per_terminal_slot": 25,
    "allocs_per_op": 0,
    "bytes_per_op": 0
  },
  "speedups": [
    {
      "terminals": 10000,
      "fast_over_des": 3.0000000003
    }
  ]
}
`

// TestBuildReportSpeedups checks the derived speedups: one per population
// with a des run, carrying both batched engines' throughput ratios.
func TestBuildReportSpeedups(t *testing.T) {
	rep := fakeReport()
	if len(rep.Speedups) != 2 {
		t.Fatalf("got %d speedups, want 2", len(rep.Speedups))
	}
	wantFast := map[int]float64{10_000: 40.0 / 13, 100_000: 45.0 / 13.5}
	wantCols := map[int]float64{10_000: 40.0 / 9, 100_000: 45.0 / 8.5}
	near := func(got, want float64) bool {
		diff := got - want
		return diff < 1e-9 && diff > -1e-9
	}
	for _, s := range rep.Speedups {
		wf, ok := wantFast[s.Terminals]
		if !ok {
			t.Fatalf("unexpected speedup population %d", s.Terminals)
		}
		if !near(s.FastOverDES, wf) {
			t.Errorf("fast speedup at %d terminals = %v, want %v", s.Terminals, s.FastOverDES, wf)
		}
		if wc := wantCols[s.Terminals]; !near(s.ColsOverDES, wc) {
			t.Errorf("cols speedup at %d terminals = %v, want %v", s.Terminals, s.ColsOverDES, wc)
		}
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
}

// TestValidateReport walks the invariants: the assembled report passes,
// and each single-field corruption is caught with a diagnostic naming it.
func TestValidateReport(t *testing.T) {
	if err := validateReport(fakeReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "bench-engine/v0" }, "schema"},
		{"no runs", func(r *Report) { r.Runs = nil }, "no runs"},
		{"unknown engine", func(r *Report) { r.Runs[0].Engine = "warp" }, "unknown engine"},
		{"zero throughput", func(r *Report) { r.Runs[1].TerminalSlotsPerSec = 0 }, "non-positive"},
		{"duplicate run", func(r *Report) { r.Runs[1] = r.Runs[0] }, "duplicate"},
		{"broken alloc split", func(r *Report) { r.Runs[4].SetupAllocsPerOp++ }, "inconsistent with total"},
		{"allocating cols loop", func(r *Report) {
			r.Runs[2].AllocsPerOp += 7
			r.Runs[2].HotAllocsPerOp += 7
		}, "must not allocate"},
		{"orphan speedup", func(r *Report) { r.Speedups[0].Terminals = 777 }, "no des run"},
		{"inconsistent speedup", func(r *Report) { r.Speedups[0].ColsOverDES *= 2 }, "inconsistent with runs"},
		{"missing hot loops", func(r *Report) { r.HotLoops = nil }, "hot_loops"},
		{"both hot loop sections", func(r *Report) { r.HotLoop = &HotLoop{NsPerTerminalSlot: 1} }, "not hot_loop"},
		{"des hot loop", func(r *Report) { r.HotLoops[0].Engine = "des" }, "invalid engine"},
		{"duplicate hot loop", func(r *Report) { r.HotLoops[1].Engine = "fast" }, "duplicate engine"},
		{"allocating hot loop", func(r *Report) { r.HotLoops[1].AllocsPerOp = 3 }, "must not allocate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := fakeReport()
			tc.mutate(rep)
			err := validateReport(rep)
			if err == nil {
				t.Fatal("corrupted report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateV1Compat decodes and validates a verbatim legacy document
// through the CLI path, then checks the v1-specific rejections: a v2-only
// field smuggled into a v1 document must fail.
func TestValidateV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := os.WriteFile(path, []byte(fakeV1Document), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatalf("legacy report rejected: %v", err)
	}
	if !strings.Contains(out.String(), "valid bench-engine/v1 report") {
		t.Errorf("confirmation missing from %q", out.String())
	}

	for _, tc := range []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"cols speedup", func(r *Report) { r.Speedups[0].ColsOverDES = 2 }, "v1 document"},
		{"tagged hot loop", func(r *Report) { r.HotLoop.Engine = "fast" }, "v1 document"},
		{"hot_loops section", func(r *Report) { r.HotLoops = []HotLoop{{Engine: "fast", NsPerTerminalSlot: 1}} }, "hot_loop"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var rep Report
			if err := json.Unmarshal([]byte(fakeV1Document), &rep); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&rep)
			err := validateReport(&rep)
			if err == nil {
				t.Fatal("corrupted v1 report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateFileRoundTrip writes the assembled report and validates it
// through the CLI path, then checks strict decoding rejects unknown
// fields.
func TestValidateFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := writeReport(path, fakeReport()); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatalf("round-trip validation failed: %v", err)
	}
	if !strings.Contains(out.String(), "valid bench-engine/v2 report") {
		t.Errorf("confirmation missing from %q", out.String())
	}

	// An extension field must fail strict decoding.
	var doc map[string]any
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["vendor_extension"] = true
	data, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}, &strings.Builder{}); err == nil {
		t.Error("report with unknown field validated")
	}
}

// TestRunFlagValidation is the table-driven error-path coverage for the
// CLI surface.
func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"bad terminals", []string{"-terminals", "10,x"}, "terminals"},
		{"negative terminals", []string{"-terminals", "-5"}, "terminals"},
		{"unknown engine", []string{"-engines", "warp"}, "unknown engine"},
		{"duplicate engine", []string{"-engines", "cols,cols"}, "duplicate"},
		{"zero slots", []string{"-slots", "0"}, "slots"},
		{"zero reps", []string{"-reps", "0"}, "reps"},
		{"missing validate file", []string{"-validate", "no/such/report.json"}, "no such file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &strings.Builder{})
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTerminals pins the list parser.
func TestParseTerminals(t *testing.T) {
	got, err := parseTerminals("10000, 100000,1000000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10_000 || got[1] != 100_000 || got[2] != 1_000_000 {
		t.Errorf("parseTerminals = %v", got)
	}
	if _, err := parseTerminals(""); err == nil {
		t.Error("empty list accepted")
	}
}

// TestParseEngines pins the engine-list parser.
func TestParseEngines(t *testing.T) {
	got, err := parseEngines("fast, cols")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].String() != "fast" || got[1].String() != "cols" {
		t.Errorf("parseEngines = %v", got)
	}
}
