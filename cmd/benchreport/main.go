// Command benchreport measures the simulation engines' throughput and
// writes a machine-readable benchmark report:
//
//	benchreport -out BENCH_engine.json
//	benchreport -validate BENCH_engine.json
//
// The report (schema bench-engine/v2) records terminal-slots per second
// and allocation rates for the slot-batched fast engine, the columnar
// cohort engine and the reference event-driven engine across population
// sizes, the batched engines' steady-state hot-loop costs, and the
// resulting per-engine speedups over DES. Per-run allocations are split
// into one-time setup (shard construction) and the residual charged to
// the slot loop, so "zero hot-loop allocs" is a measured claim rather
// than an asymptotic one. All engines produce bit-identical results
// (locman's TestEngineEquivalence); this report tracks the wall-clock
// side of that contract. The -validate mode decodes a report strictly
// (unknown fields rejected) and checks its internal invariants, so CI
// can verify both the writer and a checked-in baseline; legacy
// bench-engine/v1 documents are still accepted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/sim"
)

// Schema identifies the report layout; bump on breaking changes.
// SchemaV1 documents (fast and des engines only, a single fast hot
// loop, no setup/hot allocation split) are still accepted by -validate.
const (
	Schema   = "bench-engine/v2"
	SchemaV1 = "bench-engine/v1"
)

// Params pins the workload the measurements ran under: the paper's
// Table 1/2 parameters on the exact 2-D model.
type Params struct {
	Model      string  `json:"model"`
	Q          float64 `json:"q"`
	C          float64 `json:"c"`
	UpdateCost float64 `json:"update_cost"`
	PollCost   float64 `json:"poll_cost"`
	MaxDelay   int     `json:"max_delay"`
	Threshold  int     `json:"threshold"`
	Slots      int64   `json:"slots"`
	Shards     int     `json:"shards"`
}

// Run is one engine × population measurement. AllocsPerOp counts every
// allocation in a full run; since v2 it is split into SetupAllocsPerOp —
// the one-time shard-construction cost (terminal array, flat RNG
// backing, scheduler state), measured by a one-slot run of the same
// configuration — and HotAllocsPerOp, the residual charged to the slot
// loop (AllocsPerOp − SetupAllocsPerOp, clamped at zero).
type Run struct {
	Engine              string  `json:"engine"`
	Terminals           int     `json:"terminals"`
	Shards              int     `json:"shards"`
	Slots               int64   `json:"slots"`
	NsPerTerminalSlot   float64 `json:"ns_per_terminal_slot"`
	TerminalSlotsPerSec float64 `json:"terminal_slots_per_sec"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
	SetupAllocsPerOp    int64   `json:"setup_allocs_per_op"`
	HotAllocsPerOp      int64   `json:"hot_allocs_per_op"`
}

// HotLoop is a batched engine's steady-state cost with a single
// long-running terminal: slots scale with b.N so setup amortizes to
// nothing, making AllocsPerOp the slot loop's true allocation rate.
// Engine is empty in legacy v1 documents (implicitly the fast engine).
type HotLoop struct {
	Engine            string  `json:"engine,omitempty"`
	NsPerTerminalSlot float64 `json:"ns_per_terminal_slot"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
}

// Speedup is the batched engines' throughput advantage over the
// reference event-driven engine at one population. A ratio is zero when
// that engine was not measured (the -engines flag excluded it).
type Speedup struct {
	Terminals   int     `json:"terminals"`
	FastOverDES float64 `json:"fast_over_des,omitempty"`
	ColsOverDES float64 `json:"cols_over_des,omitempty"`
}

// Report is the full document written to -out. Exactly one of HotLoop
// (v1) and HotLoops (v2) is set, per the schema tag.
type Report struct {
	Schema   string    `json:"schema"`
	Params   Params    `json:"params"`
	Runs     []Run     `json:"runs"`
	HotLoop  *HotLoop  `json:"hot_loop,omitempty"`
	HotLoops []HotLoop `json:"hot_loops,omitempty"`
	Speedups []Speedup `json:"speedups"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process scaffolding, so tests can drive the full
// flag-to-output path in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	out := fs.String("out", "BENCH_engine.json", "output file for the report")
	termList := fs.String("terminals", "10000,100000,1000000", "comma-separated population sizes")
	engList := fs.String("engines", strings.Join(sim.EngineNames(), ","), "comma-separated engines to measure")
	slots := fs.Int64("slots", 256, "slots per run (large enough to amortize setup)")
	shards := fs.Int("shards", 1, "shard count for every run")
	reps := fs.Int("reps", 3, "repetitions per measurement; the best is kept")
	validate := fs.String("validate", "", "validate the report in this file instead of measuring")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		rep, err := readReport(*validate)
		if err != nil {
			return err
		}
		if err := validateReport(rep); err != nil {
			return fmt.Errorf("%s: %w", *validate, err)
		}
		fmt.Fprintf(stdout, "%s: valid %s report (%d runs)\n", *validate, rep.Schema, len(rep.Runs))
		return nil
	}

	terminals, err := parseTerminals(*termList)
	if err != nil {
		return err
	}
	engines, err := parseEngines(*engList)
	if err != nil {
		return err
	}
	if *slots <= 0 {
		return fmt.Errorf("slots %d must be positive", *slots)
	}
	if *reps <= 0 {
		return fmt.Errorf("reps %d must be positive", *reps)
	}

	params := defaultParams(*slots, *shards)
	var runs []Run
	for _, engine := range engines {
		for _, terms := range terminals {
			r := measureEngine(params, engine, terms, *reps)
			runs = append(runs, r)
			fmt.Fprintf(stdout, "%-4s %8d terminals: %11.0f terminal-slots/s (%.1f ns each, %d setup + %d hot allocs)\n",
				r.Engine, r.Terminals, r.TerminalSlotsPerSec, r.NsPerTerminalSlot,
				r.SetupAllocsPerOp, r.HotAllocsPerOp)
		}
	}
	var hots []HotLoop
	for _, engine := range engines {
		if engine == sim.EngineDES {
			continue // no slot loop to isolate: DES is event-driven
		}
		h := measureHotLoop(engine)
		hots = append(hots, h)
		fmt.Fprintf(stdout, "%-4s hot loop: %.1f ns/terminal-slot, %d allocs/op\n",
			h.Engine, h.NsPerTerminalSlot, h.AllocsPerOp)
	}

	rep := buildReport(params, runs, hots)
	for _, s := range rep.Speedups {
		fmt.Fprintf(stdout, "speedup %8d terminals: %.2fx fast, %.2fx cols over des\n",
			s.Terminals, s.FastOverDES, s.ColsOverDES)
	}
	if err := writeReport(*out, rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

// parseTerminals parses the -terminals list.
func parseTerminals(list string) ([]int, error) {
	var terminals []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("terminals %q: want a comma-separated list of positive counts", list)
		}
		terminals = append(terminals, n)
	}
	return terminals, nil
}

// parseEngines parses the -engines list, rejecting duplicates.
func parseEngines(list string) ([]sim.Engine, error) {
	var engines []sim.Engine
	for _, f := range strings.Split(list, ",") {
		e, err := sim.EngineByName(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("engines %q: %w", list, err)
		}
		for _, have := range engines {
			if have == e {
				return nil, fmt.Errorf("engines %q: duplicate %s", list, e)
			}
		}
		engines = append(engines, e)
	}
	return engines, nil
}

// defaultParams is the paper-typical workload every run measures under.
func defaultParams(slots int64, shards int) Params {
	return Params{
		Model:      "2d",
		Q:          paperdata.TableMoveProb,
		C:          paperdata.TableCallProb,
		UpdateCost: 100,
		PollCost:   paperdata.TablePollCost,
		MaxDelay:   3,
		Threshold:  3,
		Slots:      slots,
		Shards:     shards,
	}
}

// simConfig translates the report params into a simulator configuration.
func simConfig(p Params, engine sim.Engine, terminals int) sim.Config {
	return sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: p.Q, C: p.C},
			Costs:    core.Costs{Update: p.UpdateCost, Poll: p.PollCost},
			MaxDelay: p.MaxDelay,
		},
		Terminals: terminals,
		Threshold: p.Threshold,
		Seed:      1,
		Engine:    engine,
	}
}

// measureEngine benchmarks one engine at one population size, keeping the
// best of reps repetitions (the minimum-noise estimate on a shared
// machine). A single-rep one-slot run of the same configuration measures
// the setup allocations; the rest of AllocsPerOp is charged to the slot
// loop.
func measureEngine(p Params, engine sim.Engine, terminals, reps int) Run {
	cfg := simConfig(p, engine, terminals)
	best := testing.BenchmarkResult{}
	for i := 0; i < reps; i++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSharded(cfg, p.Slots, p.Shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		if best.N == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	setup := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunSharded(cfg, 1, p.Shards); err != nil {
				b.Fatal(err)
			}
		}
	})
	hotAllocs := best.AllocsPerOp() - setup.AllocsPerOp()
	if hotAllocs < 0 {
		hotAllocs = 0
	}
	tslots := float64(terminals) * float64(p.Slots)
	nsPerOp := float64(best.NsPerOp())
	return Run{
		Engine:              engine.String(),
		Terminals:           terminals,
		Shards:              p.Shards,
		Slots:               p.Slots,
		NsPerTerminalSlot:   nsPerOp / tslots,
		TerminalSlotsPerSec: tslots / (nsPerOp / 1e9),
		AllocsPerOp:         best.AllocsPerOp(),
		BytesPerOp:          best.AllocedBytesPerOp(),
		SetupAllocsPerOp:    setup.AllocsPerOp(),
		HotAllocsPerOp:      hotAllocs,
	}
}

// measureHotLoop benchmarks a batched engine's steady-state slot loop:
// one terminal, slots scaling with b.N, calls off so the loop is isolated
// from the paging machinery (movement stays heavy: q = 0.5 crosses the
// threshold and sends real updates through the wire codec).
func measureHotLoop(engine sim.Engine) HotLoop {
	cfg := sim.Config{
		Core: core.Config{
			Model:    chain.TwoDimExact,
			Params:   chain.Params{Q: 0.5, C: 0},
			Costs:    core.Costs{Update: 100, Poll: 10},
			MaxDelay: 3,
		},
		Terminals: 1,
		Threshold: 3,
		Seed:      1,
		Engine:    engine,
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if _, err := sim.Run(cfg, int64(b.N)+1); err != nil {
			b.Fatal(err)
		}
	})
	return HotLoop{
		Engine:            engine.String(),
		NsPerTerminalSlot: float64(res.NsPerOp()),
		AllocsPerOp:       res.AllocsPerOp(),
		BytesPerOp:        res.AllocedBytesPerOp(),
	}
}

// buildReport assembles the document: the raw runs, the hot loops, and
// the per-population speedups over DES derived from the runs.
func buildReport(p Params, runs []Run, hots []HotLoop) *Report {
	byKey := make(map[string]Run, len(runs))
	for _, r := range runs {
		byKey[fmt.Sprintf("%s/%d", r.Engine, r.Terminals)] = r
	}
	ratio := func(engine string, terminals int, des Run) float64 {
		r, ok := byKey[fmt.Sprintf("%s/%d", engine, terminals)]
		if !ok || des.TerminalSlotsPerSec <= 0 {
			return 0
		}
		return r.TerminalSlotsPerSec / des.TerminalSlotsPerSec
	}
	var speedups []Speedup
	for _, r := range runs {
		if r.Engine != sim.EngineDES.String() {
			continue
		}
		s := Speedup{
			Terminals:   r.Terminals,
			FastOverDES: ratio(sim.EngineFast.String(), r.Terminals, r),
			ColsOverDES: ratio(sim.EngineCols.String(), r.Terminals, r),
		}
		if s.FastOverDES > 0 || s.ColsOverDES > 0 {
			speedups = append(speedups, s)
		}
	}
	return &Report{Schema: Schema, Params: p, Runs: runs, HotLoops: hots, Speedups: speedups}
}

// readReport decodes a report strictly: unknown fields are schema
// violations, not extensions. The Report struct is a superset of the v1
// layout, so legacy documents decode into it unchanged.
func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// validateReport checks a report's internal invariants: schema tag,
// positive finite measurements, speedups consistent with the runs they
// derive from, zero-alloc hot loops, and (v2) a setup/hot allocation
// split that sums back to the total with nothing charged to a batched
// engine's slot loop.
func validateReport(r *Report) error {
	switch r.Schema {
	case Schema, SchemaV1:
	default:
		return fmt.Errorf("schema %q, want %q (or legacy %q)", r.Schema, Schema, SchemaV1)
	}
	v1 := r.Schema == SchemaV1
	if len(r.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	tsps := make(map[string]float64, len(r.Runs))
	for i, run := range r.Runs {
		if _, err := sim.EngineByName(run.Engine); err != nil {
			return fmt.Errorf("run %d: unknown engine %q", i, run.Engine)
		}
		if run.Terminals <= 0 || run.Slots <= 0 || run.Shards <= 0 {
			return fmt.Errorf("run %d: non-positive dimensions", i)
		}
		if !positiveFinite(run.NsPerTerminalSlot) || !positiveFinite(run.TerminalSlotsPerSec) {
			return fmt.Errorf("run %d: non-positive measurements", i)
		}
		if run.AllocsPerOp < 0 || run.BytesPerOp < 0 || run.SetupAllocsPerOp < 0 || run.HotAllocsPerOp < 0 {
			return fmt.Errorf("run %d: negative allocation counts", i)
		}
		if !v1 {
			hot := run.AllocsPerOp - run.SetupAllocsPerOp
			if hot < 0 {
				hot = 0
			}
			if run.HotAllocsPerOp != hot {
				return fmt.Errorf("run %d: hot allocs %d inconsistent with total %d − setup %d",
					i, run.HotAllocsPerOp, run.AllocsPerOp, run.SetupAllocsPerOp)
			}
			if run.Engine != sim.EngineDES.String() && run.HotAllocsPerOp != 0 {
				return fmt.Errorf("run %d: %s engine charged %d hot-loop allocs/op — the slot loop must not allocate",
					i, run.Engine, run.HotAllocsPerOp)
			}
		}
		key := fmt.Sprintf("%s/%d", run.Engine, run.Terminals)
		if _, dup := tsps[key]; dup {
			return fmt.Errorf("run %d: duplicate %s", i, key)
		}
		tsps[key] = run.TerminalSlotsPerSec
	}
	for i, s := range r.Speedups {
		des, okD := tsps[fmt.Sprintf("des/%d", s.Terminals)]
		if !okD {
			return fmt.Errorf("speedup %d: no des run at %d terminals", i, s.Terminals)
		}
		if s.FastOverDES == 0 && s.ColsOverDES == 0 {
			return fmt.Errorf("speedup %d: empty entry at %d terminals", i, s.Terminals)
		}
		check := func(engine string, got float64) error {
			batched, ok := tsps[fmt.Sprintf("%s/%d", engine, s.Terminals)]
			if !ok {
				if got != 0 {
					return fmt.Errorf("speedup %d: no %s run at %d terminals", i, engine, s.Terminals)
				}
				return nil
			}
			want := batched / des
			if !positiveFinite(got) || math.Abs(got-want) > 1e-6*want {
				return fmt.Errorf("speedup %d: %s ratio %v inconsistent with runs (want %v)", i, engine, got, want)
			}
			return nil
		}
		if err := check("fast", s.FastOverDES); err != nil {
			return err
		}
		if v1 {
			if s.ColsOverDES != 0 {
				return fmt.Errorf("speedup %d: cols ratio in a v1 document", i)
			}
			continue
		}
		if err := check("cols", s.ColsOverDES); err != nil {
			return err
		}
	}
	hots := r.HotLoops
	if v1 {
		if r.HotLoop == nil || len(r.HotLoops) != 0 {
			return fmt.Errorf("v1 document must carry exactly the single hot_loop section")
		}
		hots = []HotLoop{*r.HotLoop}
	} else if r.HotLoop != nil || len(r.HotLoops) == 0 {
		return fmt.Errorf("v2 document must carry the hot_loops section (and not hot_loop)")
	}
	seen := make(map[string]bool, len(hots))
	for i, h := range hots {
		name := h.Engine
		if v1 {
			if name != "" {
				return fmt.Errorf("hot loop: engine tag %q in a v1 document", name)
			}
			name = sim.EngineFast.String()
		} else if e, err := sim.EngineByName(name); err != nil || e == sim.EngineDES {
			return fmt.Errorf("hot loop %d: invalid engine %q", i, name)
		}
		if seen[name] {
			return fmt.Errorf("hot loop %d: duplicate engine %s", i, name)
		}
		seen[name] = true
		if !positiveFinite(h.NsPerTerminalSlot) {
			return fmt.Errorf("hot loop %d: non-positive cost", i)
		}
		if h.AllocsPerOp != 0 || h.BytesPerOp != 0 {
			return fmt.Errorf("hot loop %d (%s): %d allocs/op, %d B/op — the steady-state loop must not allocate",
				i, name, h.AllocsPerOp, h.BytesPerOp)
		}
	}
	return nil
}

func positiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// writeReport marshals the report with a trailing newline.
func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
